#!/usr/bin/env bash
# Perf smoke check: run the benches listed in bench/perf_baseline.txt
# and fail on a crash or a gross (> MARGIN x) wall-clock regression
# against the stored per-bench baseline.  Additionally records the
# multithreaded Monte-Carlo engine's thread-scaling efficiency
# (N-thread vs 1-thread speedup reported by bench_sim_montecarlo as
# "parallel-efficiency@4") and warns when it drops under
# EFF_WARN_THRESHOLD — a warning, not a failure, because CI runners
# and laptops legitimately have fewer than 4 cores.
#
# Usage: scripts/perf_smoke.sh [build-dir]
#
# When PERF_HISTORY_JSON is set (CI does this), a machine-readable
# record of the run — per-bench wall clock vs baseline, the
# thread-scaling efficiency, the CPU dispatch level the kernels ran
# at (vs the compile-time word backend), the end-to-end hot-path
# speedup vs the PR-7 generation (baseline kernels + scalar extract,
# no memo/reach-cache), the per-batch and cross-batch (process-
# global tier) decode-memo hit rates and the compiled-artifact
# cache speedup from bench_sim_montecarlo, the persistent-store
# warm-restart speedup from bench_service_throughput, and the
# per-decoder decode-latency lines from bench_decoder_throughput —
# is written there as one JSON document; CI uploads it as a dated
# perf-history artifact so regressions can be traced across
# commits, not just against the static baseline.
#
# The baseline file holds "<bench-binary> <baseline-seconds>" pairs;
# baselines are deliberately loose (they bound machine-class, not
# noise) and the 3x margin on top makes the check a tripwire for
# pathological slowdowns, not a micro-benchmark.
set -euo pipefail

BUILD_DIR="${1:-build}"
BASELINE_FILE="$(dirname "$0")/../bench/perf_baseline.txt"
MARGIN=3
EFF_WARN_THRESHOLD=0.6

fail=0
outfile=$(mktemp)
trap 'rm -f "$outfile"' EXIT
efficiency=""
bench_json=""
latency_json=""
dispatch_runtime=""
dispatch_compiled=""
speedup_json=""
speedup_lines=""
memo_json=""
cross_memo_json=""
compile_cache_json=""
warm_restart=""
stream_rps=""
stream_first_ms=""

while read -r name baseline; do
    case "$name" in
      ''|\#*) continue ;;
    esac
    bin="$BUILD_DIR/$name"
    if [[ ! -x "$bin" ]]; then
        echo "perf-smoke: MISSING $bin" >&2
        fail=1
        continue
    fi
    start=$(date +%s%N)
    if ! "$bin" > "$outfile"; then
        echo "perf-smoke: CRASH $name" >&2
        fail=1
        continue
    fi
    end=$(date +%s%N)
    elapsed=$(awk -v s="$start" -v e="$end" \
        'BEGIN { printf "%.3f", (e - s) / 1e9 }')
    limit=$(awk -v b="$baseline" -v m="$MARGIN" \
        'BEGIN { printf "%.3f", b * m }')
    status=OK
    if awk -v e="$elapsed" -v l="$limit" \
        'BEGIN { exit !(e > l) }'; then
        echo "perf-smoke: FAIL $name took ${elapsed}s" \
             "(baseline ${baseline}s, limit ${limit}s)" >&2
        fail=1
        status=FAIL
    else
        echo "perf-smoke: OK   $name ${elapsed}s" \
             "(baseline ${baseline}s, limit ${limit}s)"
    fi
    bench_json="${bench_json:+$bench_json, }{\"bench\": \"$name\",\
 \"elapsed_s\": $elapsed, \"baseline_s\": $baseline,\
 \"status\": \"$status\"}"
    if [[ "$name" == "bench_sim_montecarlo" ]]; then
        efficiency=$(awk '/^parallel-efficiency@4:/ { print $2 }' \
            "$outfile")
        # cpu-dispatch: <runtime> (compiled <backend>)
        dispatch_runtime=$(awk '/^cpu-dispatch:/ { print $2; exit }' \
            "$outfile")
        dispatch_compiled=$(awk '/^cpu-dispatch:/ \
            { gsub(/\)/, "", $4); print $4; exit }' "$outfile")
        # hotpath-speedup-vs-pr7[<fixture>]: <X.XX>x (...)
        speedup_json=$(awk -F'[][]' '/^hotpath-speedup-vs-pr7\[/ {
            split($3, f, " "); sub(/x$/, "", f[2]);
            printf "%s{\"fixture\": \"%s\", \"speedup\": %s}",
                (n++ ? ", " : ""), $2, f[2] }' "$outfile")
        # decode-memo-hit-rate[<fixture>]: <rate>
        memo_json=$(awk -F'[][]' '/^decode-memo-hit-rate\[/ {
            split($3, f, " ");
            printf "%s{\"fixture\": \"%s\", \"hit_rate\": %s}",
                (n++ ? ", " : ""), $2, f[2] }' "$outfile")
        # cross-batch-memo-hit-rate[<fixture>]: <rate> (...)
        cross_memo_json=$(awk -F'[][]' \
            '/^cross-batch-memo-hit-rate\[/ {
            split($3, f, " ");
            printf "%s{\"fixture\": \"%s\", \"hit_rate\": %s}",
                (n++ ? ", " : ""), $2, f[2] }' "$outfile")
        # compile-cache-speedup[<fixture>]: <X.XX>x (...)
        compile_cache_json=$(awk -F'[][]' \
            '/^compile-cache-speedup\[/ {
            split($3, f, " "); sub(/x$/, "", f[2]);
            printf "%s{\"fixture\": \"%s\", \"speedup\": %s}",
                (n++ ? ", " : ""), $2, f[2] }' "$outfile")
        speedup_lines=$(awk -F'[][]' \
            '/^hotpath-speedup-vs-pr7\[/ { split($3, f, " ");
            printf "perf-smoke: OK   hotpath-speedup-vs-pr7[%s] =\
 %s\n", $2, f[2] }' "$outfile")
    fi
    if [[ "$name" == "bench_service_throughput" ]]; then
        # warm-restart-speedup: <X.X>x (...)
        warm_restart=$(awk '/^warm-restart-speedup:/ {
            sub(/x$/, "", $2); print $2; exit }' "$outfile")
        # service-throughput[stream]: <req/s> req/s (...)
        stream_rps=$(awk -F'[][]' \
            '/^service-throughput\[stream\]/ {
            split($3, f, " "); print f[2]; exit }' "$outfile")
        # stream-first-result: <ms> ms (...)
        stream_first_ms=$(awk '/^stream-first-result:/ {
            print $2; exit }' "$outfile")
    fi
    if [[ "$name" == "bench_decoder_throughput" ]]; then
        # decode-latency[<kind>]: <us> us/round <PASS|WARN> (...)
        latency_json=$(awk -F'[][]' '/^decode-latency\[/ {
            split($3, f, " ");
            printf "%s{\"decoder\": \"%s\", \"us_per_round\": %s,\
 \"status\": \"%s\"}", (n++ ? ", " : ""), $2, f[2], f[4] }' \
            "$outfile")
    fi
done < "$BASELINE_FILE"

# Thread-scaling efficiency of the sharded Monte-Carlo engine
# (ROADMAP: track scaling, not just wall-clock).
if [[ -n "$efficiency" ]]; then
    if awk -v e="$efficiency" -v t="$EFF_WARN_THRESHOLD" \
        'BEGIN { exit !(e < t) }'; then
        echo "perf-smoke: WARN thread-scaling efficiency@4 =" \
             "$efficiency (< $EFF_WARN_THRESHOLD; expected on" \
             "< 4-core machines, investigate on larger ones)"
    else
        echo "perf-smoke: OK   thread-scaling efficiency@4 =" \
             "$efficiency (threshold $EFF_WARN_THRESHOLD)"
    fi
else
    echo "perf-smoke: WARN no parallel-efficiency@4 line from" \
         "bench_sim_montecarlo"
fi

# Runtime dispatch level and the end-to-end hot-path win vs the PR-7
# generation (informational: the binary is the same either way, so a
# baseline-only CI runner legitimately prints "baseline").
if [[ -n "$dispatch_runtime" ]]; then
    echo "perf-smoke: OK   cpu-dispatch = $dispatch_runtime" \
         "(compiled $dispatch_compiled)"
else
    echo "perf-smoke: WARN no cpu-dispatch line from" \
         "bench_sim_montecarlo"
fi
if [[ -n "$speedup_lines" ]]; then
    echo "$speedup_lines"
fi

# Caching tiers (informational; the hard gates are the bench-level
# target lines and the test suite's bit-identity checks).
if [[ -n "$warm_restart" ]]; then
    echo "perf-smoke: OK   warm-restart-speedup = ${warm_restart}x"
else
    echo "perf-smoke: WARN no warm-restart-speedup line from" \
         "bench_service_throughput"
fi

# Streaming service tier (informational): completion-order throughput
# and the latency a streaming client pays for its first result.
if [[ -n "$stream_rps" ]]; then
    echo "perf-smoke: OK   stream-throughput = $stream_rps req/s," \
         "first result after ${stream_first_ms:-?} ms"
else
    echo "perf-smoke: WARN no service-throughput[stream] line from" \
         "bench_service_throughput"
fi

if [[ -n "${PERF_HISTORY_JSON:-}" ]]; then
    {
        echo "{"
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"commit\": \"${GITHUB_SHA:-unknown}\","
        echo "  \"margin\": $MARGIN,"
        echo "  \"parallel_efficiency_at_4\": ${efficiency:-null},"
        if [[ -n "$dispatch_runtime" ]]; then
            echo "  \"cpu_dispatch\": \"$dispatch_runtime\","
            echo "  \"word_backend_compiled\":" \
                 "\"$dispatch_compiled\","
        else
            echo "  \"cpu_dispatch\": null,"
            echo "  \"word_backend_compiled\": null,"
        fi
        echo "  \"hotpath_speedup_vs_pr7\": [$speedup_json],"
        echo "  \"decode_memo_hit_rate\": [$memo_json],"
        echo "  \"cross_batch_memo_hit_rate\": [$cross_memo_json],"
        echo "  \"compile_cache_speedup\": [$compile_cache_json],"
        echo "  \"warm_restart_speedup\": ${warm_restart:-null},"
        echo "  \"stream_req_per_s\": ${stream_rps:-null},"
        echo "  \"stream_first_result_ms\":" \
             "${stream_first_ms:-null},"
        echo "  \"benches\": [$bench_json],"
        echo "  \"decode_latency_us_per_round\": [$latency_json]"
        echo "}"
    } > "$PERF_HISTORY_JSON"
    echo "perf-smoke: history written to $PERF_HISTORY_JSON"
fi

exit "$fail"
