#!/usr/bin/env bash
# Perf smoke check: run the benches listed in bench/perf_baseline.txt
# and fail on a crash or a gross (> MARGIN x) wall-clock regression
# against the stored per-bench baseline.
#
# Usage: scripts/perf_smoke.sh [build-dir]
#
# The baseline file holds "<bench-binary> <baseline-seconds>" pairs;
# baselines are deliberately loose (they bound machine-class, not
# noise) and the 3x margin on top makes the check a tripwire for
# pathological slowdowns, not a micro-benchmark.
set -euo pipefail

BUILD_DIR="${1:-build}"
BASELINE_FILE="$(dirname "$0")/../bench/perf_baseline.txt"
MARGIN=3

fail=0
while read -r name baseline; do
    case "$name" in
      ''|\#*) continue ;;
    esac
    bin="$BUILD_DIR/$name"
    if [[ ! -x "$bin" ]]; then
        echo "perf-smoke: MISSING $bin" >&2
        fail=1
        continue
    fi
    start=$(date +%s%N)
    if ! "$bin" > /dev/null; then
        echo "perf-smoke: CRASH $name" >&2
        fail=1
        continue
    fi
    end=$(date +%s%N)
    elapsed=$(awk -v s="$start" -v e="$end" \
        'BEGIN { printf "%.3f", (e - s) / 1e9 }')
    limit=$(awk -v b="$baseline" -v m="$MARGIN" \
        'BEGIN { printf "%.3f", b * m }')
    if awk -v e="$elapsed" -v l="$limit" \
        'BEGIN { exit !(e > l) }'; then
        echo "perf-smoke: FAIL $name took ${elapsed}s" \
             "(baseline ${baseline}s, limit ${limit}s)" >&2
        fail=1
    else
        echo "perf-smoke: OK   $name ${elapsed}s" \
             "(baseline ${baseline}s, limit ${limit}s)"
    fi
done < "$BASELINE_FILE"

exit "$fail"
