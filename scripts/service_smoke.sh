#!/usr/bin/env bash
# Service front-end smoke check: pipe the checked-in request set
# through traq_serve and require
#
#   1. byte-identical stdout for 1 vs N worker threads (the JobQueue
#      determinism contract: submission order, not worker identity,
#      decides where results land),
#   2. byte-identical stdout with the canonicalKey cache off (the
#      cache changes evaluation counts, never bytes),
#   3. an exact match against the checked-in golden output
#      (tests/data/service_requests.golden.jsonl), and
#   4. cache hits actually reported for the duplicated request lines.
#
# Usage: scripts/service_smoke.sh [build-dir]
#
# Regenerate the golden after an intentional estimator/output change:
#   build/traq_serve --threads 1 \
#       < tests/data/service_requests.jsonl \
#       > tests/data/service_requests.golden.jsonl
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(dirname "$0")/.."
REQUESTS="$ROOT/tests/data/service_requests.jsonl"
GOLDEN="$ROOT/tests/data/service_requests.golden.jsonl"
SERVE="$BUILD_DIR/traq_serve"

if [[ ! -x "$SERVE" ]]; then
    echo "service-smoke: MISSING $SERVE" >&2
    exit 1
fi

out1=$(mktemp)
outn=$(mktemp)
stats=$(mktemp)
cachefile=$(mktemp)
trap 'rm -f "$out1" "$outn" "$stats" "$cachefile"' EXIT

"$SERVE" --threads 1 < "$REQUESTS" > "$out1" 2> "$stats"
"$SERVE" --threads 4 < "$REQUESTS" > "$outn" 2> /dev/null
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL 1-thread vs 4-thread output differs" >&2
    exit 1
fi
echo "service-smoke: OK   1 vs 4 threads byte-identical"

"$SERVE" --threads 4 --cache off < "$REQUESTS" > "$outn" 2> /dev/null
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL cache-on vs cache-off output differs" >&2
    exit 1
fi
echo "service-smoke: OK   cache on vs off byte-identical"

if ! diff -u "$GOLDEN" "$out1"; then
    echo "service-smoke: FAIL output differs from golden" \
         "($GOLDEN; see header of scripts/service_smoke.sh to" \
         "regenerate after an intentional change)" >&2
    exit 1
fi
echo "service-smoke: OK   golden output matches"

# The request set duplicates two single requests and repeats one
# more inside a batch — the cache must report those three hits.
if ! grep -q " 3 cache hits" "$stats"; then
    echo "service-smoke: FAIL expected 3 cache hits, stderr was:" >&2
    cat "$stats" >&2
    exit 1
fi
echo "service-smoke: OK   $(cat "$stats")"

# Noise-model leg: "noise.<source>.<param>" request keys and the
# erasureAware toggle through the same service path.  Pinned to the
# scalar64 word backend (one lane in every build) so the golden
# bytes survive the CI word-backend matrix.  Regenerate with:
#   TRAQ_WORD_BACKEND=scalar64 build/traq_serve --threads 1 \
#       < tests/data/noise_requests.jsonl \
#       > tests/data/noise_requests.golden.jsonl
NOISE_REQUESTS="$ROOT/tests/data/noise_requests.jsonl"
NOISE_GOLDEN="$ROOT/tests/data/noise_requests.golden.jsonl"

TRAQ_WORD_BACKEND=scalar64 "$SERVE" --threads 1 \
    < "$NOISE_REQUESTS" > "$out1" 2> "$stats"
TRAQ_WORD_BACKEND=scalar64 "$SERVE" --threads 4 \
    < "$NOISE_REQUESTS" > "$outn" 2> /dev/null
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL noise leg 1 vs 4 threads differs" >&2
    exit 1
fi
echo "service-smoke: OK   noise leg 1 vs 4 threads byte-identical"

if ! diff -u "$NOISE_GOLDEN" "$out1"; then
    echo "service-smoke: FAIL noise output differs from golden" \
         "($NOISE_GOLDEN; see above to regenerate after an" \
         "intentional change)" >&2
    exit 1
fi
echo "service-smoke: OK   noise golden output matches"

# The noise set repeats its first request — one cache hit — and its
# erasure-aware line must beat the erasure-blind twin on hits.
if ! grep -q " 1 cache hits" "$stats"; then
    echo "service-smoke: FAIL expected 1 noise cache hit:" >&2
    cat "$stats" >&2
    exit 1
fi
echo "service-smoke: OK   $(cat "$stats")"

# Warm-restart leg (caching tier 3): serve the request set with a
# persistent cache file, let the process exit, then restart against
# the same store.  The rerun must be byte-identical (stored outcomes
# replay the exact JSON an evaluation would emit) and served from
# the persistent tier (nonzero persistent hits, zero evaluations).
"$SERVE" --threads 2 --cache-file "$cachefile" \
    < "$REQUESTS" > "$out1" 2> /dev/null
"$SERVE" --threads 2 --cache-file "$cachefile" \
    < "$REQUESTS" > "$outn" 2> "$stats"
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL warm-restart output differs" >&2
    exit 1
fi
if ! diff -u "$GOLDEN" "$outn"; then
    echo "service-smoke: FAIL warm-restart differs from golden" >&2
    exit 1
fi
if ! grep -Eq " [1-9][0-9]* persistent hits" "$stats"; then
    echo "service-smoke: FAIL expected persistent-cache hits:" >&2
    cat "$stats" >&2
    exit 1
fi
if ! grep -q " 0 evaluated" "$stats"; then
    echo "service-smoke: FAIL warm restart re-evaluated jobs:" >&2
    cat "$stats" >&2
    exit 1
fi
echo "service-smoke: OK   warm restart $(cat "$stats")"
