#!/usr/bin/env bash
# Service front-end smoke check: pipe the checked-in request set
# through traq_serve (and the traq_dispatch sharder) and require
#
#   1. byte-identical stdout for 1 vs N worker threads (the service
#      determinism contract: submission order, not worker identity,
#      decides where results land),
#   2. byte-identical stdout with the canonicalKey cache off (the
#      cache changes evaluation counts, never bytes),
#   3. an exact match against the checked-in golden output
#      (tests/data/service_requests.golden.jsonl),
#   4. cache hits actually reported for the duplicated request lines,
#   5. traq_dispatch --ordered byte-identical to the golden for 2 and
#      4 worker processes,
#   6. traq_dispatch streaming mode a permutation: every index exactly
#      once, untagged payloads matching the golden after reorder, and
#   7. a worker killed mid-run losing and duplicating nothing.
#
# Byte-identity legs use --ordered (traq_serve's default output is a
# completion-order stream of {"index":N,...} tagged lines).
#
# Usage: scripts/service_smoke.sh [build-dir]
#
# Regenerate the golden after an intentional estimator/output change:
#   build/traq_serve --ordered --threads 1 \
#       < tests/data/service_requests.jsonl \
#       > tests/data/service_requests.golden.jsonl
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(dirname "$0")/.."
REQUESTS="$ROOT/tests/data/service_requests.jsonl"
GOLDEN="$ROOT/tests/data/service_requests.golden.jsonl"
SERVE="$BUILD_DIR/traq_serve"
DISPATCH="$BUILD_DIR/traq_dispatch"

if [[ ! -x "$SERVE" ]]; then
    echo "service-smoke: MISSING $SERVE" >&2
    exit 1
fi
if [[ ! -x "$DISPATCH" ]]; then
    echo "service-smoke: MISSING $DISPATCH" >&2
    exit 1
fi

out1=$(mktemp)
outn=$(mktemp)
stats=$(mktemp)
cachefile=$(mktemp)
bigreq=$(mktemp)
bigexp=$(mktemp)
trap 'rm -f "$out1" "$outn" "$stats" "$cachefile" "$bigreq" "$bigexp"' EXIT

# Prefix each tagged {"index":N,...} line with its index and a tab,
# sort numerically, drop the prefix: completion order -> input order.
sort_by_index() {
    sed -E $'s/^\\{"index":([0-9]+)/\\1\t&/' | sort -n -k1,1 | cut -f2-
}

# Strip the {"index":N, wire tag, recovering the --ordered payload.
untag() {
    sed -E 's/^\{"index":[0-9]+,"batch":(\[.*\])\}$/\1/;
            s/^\{"index":[0-9]+\}$/{}/;
            s/^\{"index":[0-9]+,/{/'
}

"$SERVE" --ordered --threads 1 < "$REQUESTS" > "$out1" 2> "$stats"
"$SERVE" --ordered --threads 4 < "$REQUESTS" > "$outn" 2> /dev/null
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL 1-thread vs 4-thread output differs" >&2
    exit 1
fi
echo "service-smoke: OK   1 vs 4 threads byte-identical"

"$SERVE" --ordered --threads 4 --cache off < "$REQUESTS" > "$outn" 2> /dev/null
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL cache-on vs cache-off output differs" >&2
    exit 1
fi
echo "service-smoke: OK   cache on vs off byte-identical"

if ! diff -u "$GOLDEN" "$out1"; then
    echo "service-smoke: FAIL output differs from golden" \
         "($GOLDEN; see header of scripts/service_smoke.sh to" \
         "regenerate after an intentional change)" >&2
    exit 1
fi
echo "service-smoke: OK   golden output matches"

# The request set duplicates two single requests and repeats one
# more inside a batch — the cache must report those three hits.
if ! grep -q " 3 cache hits" "$stats"; then
    echo "service-smoke: FAIL expected 3 cache hits, stderr was:" >&2
    cat "$stats" >&2
    exit 1
fi
echo "service-smoke: OK   $(cat "$stats")"

# Noise-model leg: "noise.<source>.<param>" request keys and the
# erasureAware toggle through the same service path.  Pinned to the
# scalar64 word backend (one lane in every build) so the golden
# bytes survive the CI word-backend matrix.  Regenerate with:
#   TRAQ_WORD_BACKEND=scalar64 build/traq_serve --ordered --threads 1 \
#       < tests/data/noise_requests.jsonl \
#       > tests/data/noise_requests.golden.jsonl
NOISE_REQUESTS="$ROOT/tests/data/noise_requests.jsonl"
NOISE_GOLDEN="$ROOT/tests/data/noise_requests.golden.jsonl"

TRAQ_WORD_BACKEND=scalar64 "$SERVE" --ordered --threads 1 \
    < "$NOISE_REQUESTS" > "$out1" 2> "$stats"
TRAQ_WORD_BACKEND=scalar64 "$SERVE" --ordered --threads 4 \
    < "$NOISE_REQUESTS" > "$outn" 2> /dev/null
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL noise leg 1 vs 4 threads differs" >&2
    exit 1
fi
echo "service-smoke: OK   noise leg 1 vs 4 threads byte-identical"

if ! diff -u "$NOISE_GOLDEN" "$out1"; then
    echo "service-smoke: FAIL noise output differs from golden" \
         "($NOISE_GOLDEN; see above to regenerate after an" \
         "intentional change)" >&2
    exit 1
fi
echo "service-smoke: OK   noise golden output matches"

# The noise set repeats its first request — one cache hit — and its
# erasure-aware line must beat the erasure-blind twin on hits.
if ! grep -q " 1 cache hits" "$stats"; then
    echo "service-smoke: FAIL expected 1 noise cache hit:" >&2
    cat "$stats" >&2
    exit 1
fi
echo "service-smoke: OK   $(cat "$stats")"

# Warm-restart leg (caching tier 3): serve the request set with a
# persistent cache file, let the process exit, then restart against
# the same store.  The rerun must be byte-identical (stored outcomes
# replay the exact JSON an evaluation would emit) and served from
# the persistent tier (nonzero persistent hits, zero evaluations).
"$SERVE" --ordered --threads 2 --cache-file "$cachefile" \
    < "$REQUESTS" > "$out1" 2> /dev/null
"$SERVE" --ordered --threads 2 --cache-file "$cachefile" \
    < "$REQUESTS" > "$outn" 2> "$stats"
if ! diff -u "$out1" "$outn"; then
    echo "service-smoke: FAIL warm-restart output differs" >&2
    exit 1
fi
if ! diff -u "$GOLDEN" "$outn"; then
    echo "service-smoke: FAIL warm-restart differs from golden" >&2
    exit 1
fi
if ! grep -Eq " [1-9][0-9]* persistent hits" "$stats"; then
    echo "service-smoke: FAIL expected persistent-cache hits:" >&2
    cat "$stats" >&2
    exit 1
fi
if ! grep -q " 0 evaluated" "$stats"; then
    echo "service-smoke: FAIL warm restart re-evaluated jobs:" >&2
    cat "$stats" >&2
    exit 1
fi
echo "service-smoke: OK   warm restart $(cat "$stats")"

# Dispatcher legs: sharding across worker processes must not change a
# byte.  --ordered output is diffed against the same golden for 2 and
# 4 workers.
for w in 2 4; do
    "$DISPATCH" --workers "$w" --ordered --threads 2 \
        < "$REQUESTS" > "$outn" 2> /dev/null
    if ! diff -u "$GOLDEN" "$outn"; then
        echo "service-smoke: FAIL $w-worker dispatch differs from" \
             "golden" >&2
        exit 1
    fi
    echo "service-smoke: OK   $w-worker dispatch matches golden"
done

# Streaming (default) dispatch is a tagged permutation: every global
# index exactly once, and untagging + reordering recovers the golden.
"$DISPATCH" --workers 2 --threads 2 \
    < "$REQUESTS" > "$outn" 2> /dev/null
nlines=$(wc -l < "$GOLDEN")
if ! sed -E 's/^\{"index":([0-9]+).*/\1/' "$outn" | sort -n \
        | diff -u <(seq 0 $((nlines - 1))) - > /dev/null; then
    echo "service-smoke: FAIL streaming dispatch index set is not" \
         "0..$((nlines - 1)) exactly once" >&2
    exit 1
fi
if ! sort_by_index < "$outn" | untag | diff -u "$GOLDEN" -; then
    echo "service-smoke: FAIL streaming dispatch payloads differ" \
         "from golden after reorder" >&2
    exit 1
fi
echo "service-smoke: OK   streaming dispatch is an exact permutation"

# Worker-kill leg: throttle a 30x request stream through two workers
# and SIGKILL one mid-run.  Requeue + index dedup must keep the
# output exactly-once: every index present once, bytes matching the
# golden after reorder.  (The deterministic mid-flight kill lives in
# tests/test_service_layers.cc; this leg checks the same invariants
# end-to-end through the shipped binaries.)
grep -vE '^[[:space:]]*(#|$)' "$REQUESTS" > /dev/null  # sanity
for _ in $(seq 30); do
    grep -vE '^[[:space:]]*(#|$)' "$REQUESTS"
done > "$bigreq"
for _ in $(seq 30); do cat "$GOLDEN"; done > "$bigexp"
total=$(wc -l < "$bigreq")
(
    while IFS= read -r line; do
        printf '%s\n' "$line"
        sleep 0.004
    done < "$bigreq"
) | "$DISPATCH" --workers 2 --threads 1 --inflight 4 \
    > "$outn" 2> /dev/null &
dpid=$!
sleep 0.4
victim=$(pgrep -P "$dpid" | head -n 1 || true)
if [[ -n "$victim" ]]; then
    kill -9 "$victim" 2> /dev/null || true
fi
if ! wait "$dpid"; then
    echo "service-smoke: FAIL dispatcher died after worker kill" >&2
    exit 1
fi
if [[ -z "$victim" ]]; then
    echo "service-smoke: FAIL kill leg found no worker to kill" >&2
    exit 1
fi
if ! sed -E 's/^\{"index":([0-9]+).*/\1/' "$outn" | sort -n \
        | diff -u <(seq 0 $((total - 1))) - > /dev/null; then
    echo "service-smoke: FAIL kill leg lost or duplicated indices" >&2
    exit 1
fi
if ! sort_by_index < "$outn" | untag | diff -u "$bigexp" -; then
    echo "service-smoke: FAIL kill leg payloads differ from golden" >&2
    exit 1
fi
echo "service-smoke: OK   worker kill lost and duplicated nothing" \
     "($total jobs, worker $victim killed)"
