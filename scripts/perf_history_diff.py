#!/usr/bin/env python3
"""Diff dated perf-history records written by scripts/perf_smoke.sh.

CI uploads one PERF_HISTORY_JSON document per run (wall clock per
bench, thread-scaling efficiency, per-decoder decode latency).  This
tool takes two or more such documents -- given as files and/or
directories to scan for ``*.json`` -- sorts them by their ``date``
field, and reports what moved between the two most recent records:
per-bench elapsed deltas, per-decoder decode-latency deltas,
per-fixture hot-path speedup (vs the PR-7 generation), the
caching-tier metrics (per-batch and cross-batch decode-memo hit
rates, compile-cache sweep speedup, persistent-store warm-restart
speedup), and the CPU dispatch level each run executed at (a
dispatch change explains most wall-clock moves, so it is printed
before the numbers).  Top-level keys this tool does
not recognize are listed explicitly rather than silently dropped,
so a perf_smoke.sh that starts recording something new is visible
here the day it lands, not when someone updates this script.

It is a report, not a gate: the exit code is always 0 unless the
inputs cannot be parsed.  The hard tripwire stays perf_smoke.sh's
3x-baseline check; this exists so a human scanning CI output can see
drift long before it trips that wire.

Usage:
    scripts/perf_history_diff.py RECORD... [--full]

    --full    also print every record's raw numbers, oldest first
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load_records(paths: list[str]) -> list[dict]:
    files: list[Path] = []
    for p in map(Path, paths):
        if p.is_dir():
            files.extend(sorted(p.glob("*.json")))
        else:
            files.append(p)
    records = []
    for f in files:
        try:
            doc = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as err:
            raise SystemExit(f"perf-history-diff: cannot read {f}: {err}")
        if not isinstance(doc, dict) or "benches" not in doc:
            raise SystemExit(
                f"perf-history-diff: {f} is not a perf-history record"
            )
        doc["_source"] = str(f)
        records.append(doc)
    records.sort(key=lambda r: r.get("date", ""))
    return records


def fmt_delta(base: float, head: float) -> str:
    if base <= 0:
        return "n/a"
    pct = 100.0 * (head - base) / base
    return f"{pct:+.1f}%"


def by_bench(record: dict) -> dict[str, float]:
    return {
        b["bench"]: float(b["elapsed_s"])
        for b in record.get("benches", [])
    }


def by_decoder(record: dict) -> dict[str, float]:
    return {
        d["decoder"]: float(d["us_per_round"])
        for d in record.get("decode_latency_us_per_round", [])
    }


#: Top-level keys print_diff knows how to render.  Anything else in
#: a record is reported as unknown instead of silently dropped.
KNOWN_KEYS = {
    "date",
    "commit",
    "margin",
    "parallel_efficiency_at_4",
    "cpu_dispatch",
    "word_backend_compiled",
    "hotpath_speedup_vs_pr7",
    "decode_memo_hit_rate",
    "cross_batch_memo_hit_rate",
    "compile_cache_speedup",
    "warm_restart_speedup",
    "stream_req_per_s",
    "stream_first_result_ms",
    "benches",
    "decode_latency_us_per_round",
    "_source",
}


def by_fixture(record: dict, key: str, field: str) -> dict[str, float]:
    return {
        e["fixture"]: float(e[field]) for e in record.get(key, [])
    }


def print_fixture_diff(
    base: dict, head: dict, key: str, field: str, title: str
) -> None:
    base_f = by_fixture(base, key, field)
    head_f = by_fixture(head, key, field)
    if not (base_f or head_f):
        return
    print(f"\n{title}:")
    for name in sorted(set(base_f) | set(head_f)):
        b, h = base_f.get(name), head_f.get(name)
        if b is None or h is None:
            status = "added" if b is None else "removed"
            print(f"  {name:32s} {status}")
        else:
            print(f"  {name:32s} {b:8.3f} -> {h:8.3f}  {fmt_delta(b, h)}")


def print_diff(base: dict, head: dict) -> None:
    print(
        f"perf-history-diff: {base.get('date', '?')} "
        f"({base.get('commit', '?')[:12]}) -> "
        f"{head.get('date', '?')} ({head.get('commit', '?')[:12]})"
    )

    # Dispatch level first: a runner-class change (avx512 box vs
    # baseline box) explains most wall-clock movement below.
    disp_b = base.get("cpu_dispatch")
    disp_h = head.get("cpu_dispatch")
    if disp_b is not None or disp_h is not None:
        marker = "" if disp_b == disp_h else "  <- CHANGED"
        print(f"\ncpu-dispatch: {disp_b} -> {disp_h}{marker}")

    base_b, head_b = by_bench(base), by_bench(head)
    print("\nbench wall clock (s):")
    for name in sorted(set(base_b) | set(head_b)):
        b, h = base_b.get(name), head_b.get(name)
        if b is None or h is None:
            status = "added" if b is None else "removed"
            print(f"  {name:32s} {status}")
        else:
            print(f"  {name:32s} {b:8.3f} -> {h:8.3f}  {fmt_delta(b, h)}")

    base_d, head_d = by_decoder(base), by_decoder(head)
    if base_d or head_d:
        print("\ndecode latency (us/round, hardest fixture):")
        for name in sorted(set(base_d) | set(head_d)):
            b, h = base_d.get(name), head_d.get(name)
            if b is None or h is None:
                status = "added" if b is None else "removed"
                print(f"  {name:32s} {status}")
            else:
                print(
                    f"  {name:32s} {b:8.2f} -> {h:8.2f}  "
                    f"{fmt_delta(b, h)}"
                )

    print_fixture_diff(
        base, head, "hotpath_speedup_vs_pr7", "speedup",
        "hot-path speedup vs PR-7 generation (x)")
    print_fixture_diff(
        base, head, "decode_memo_hit_rate", "hit_rate",
        "decode-memo hit rate (per-batch)")
    print_fixture_diff(
        base, head, "cross_batch_memo_hit_rate", "hit_rate",
        "cross-batch memo hit rate (process-global tier)")
    print_fixture_diff(
        base, head, "compile_cache_speedup", "speedup",
        "compile-cache sweep speedup (x)")

    eff_b = base.get("parallel_efficiency_at_4")
    eff_h = head.get("parallel_efficiency_at_4")
    if eff_b is not None and eff_h is not None:
        print(f"\nparallel-efficiency@4: {eff_b} -> {eff_h}")

    wr_b = base.get("warm_restart_speedup")
    wr_h = head.get("warm_restart_speedup")
    if wr_b is not None or wr_h is not None:
        print(f"\nwarm-restart-speedup (x): {wr_b} -> {wr_h}")

    # Streaming service tier (absent from records predating it).
    sr_b = base.get("stream_req_per_s")
    sr_h = head.get("stream_req_per_s")
    if sr_b is not None or sr_h is not None:
        print(f"\nstream-throughput (req/s): {sr_b} -> {sr_h}")
    sf_b = base.get("stream_first_result_ms")
    sf_h = head.get("stream_first_result_ms")
    if sf_b is not None or sf_h is not None:
        print(f"stream-first-result (ms): {sf_b} -> {sf_h}")

    unknown = sorted((set(base) | set(head)) - KNOWN_KEYS)
    if unknown:
        print(
            "\nkeys this tool does not render (update "
            "perf_history_diff.py): " + ", ".join(unknown)
        )


def main(argv: list[str]) -> int:
    full = "--full" in argv
    paths = [a for a in argv if a != "--full"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    records = load_records(paths)
    if full:
        for r in records:
            print(f"--- {r['_source']} ({r.get('date', '?')})")
            print(json.dumps({k: v for k, v in r.items()
                              if k != "_source"}, indent=2))
        print()
    if len(records) < 2:
        print(
            "perf-history-diff: only "
            f"{len(records)} record(s) -- nothing to diff yet"
        )
        return 0
    print_diff(records[-2], records[-1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
