#!/usr/bin/env python3
"""Unit test for scripts/perf_history_diff.py.

Runs the diff tool as a subprocess (exactly as CI invokes it) over
the golden two-record fixture in tests/data/perf_history/ and checks
the report contract:

  - per-bench wall-clock deltas, including added/removed benches,
  - per-decoder decode-latency deltas,
  - the caching-tier metrics (per-batch and cross-batch memo hit
    rates, compile-cache and warm-restart speedups),
  - unrecognized top-level keys are listed explicitly, never
    silently dropped,
  - the exit code is 0 for every well-formed input (it is a report,
    not a gate) and nonzero only when an input cannot be parsed.

Wired into ctest by CMakeLists.txt when a Python3 interpreter is
found; also runnable directly:  python3 tests/test_perf_history_diff.py
"""

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "perf_history_diff.py"
FIXTURES = REPO / "tests" / "data" / "perf_history"


def run_tool(*args):
    """Run the diff tool; returns (exit_code, stdout, stderr)."""
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout, proc.stderr


class PerfHistoryDiffTest(unittest.TestCase):
    def diff_output(self):
        code, out, err = run_tool(FIXTURES)
        self.assertEqual(code, 0, err)
        return out

    def test_exit_zero_and_header(self):
        out = self.diff_output()
        # Oldest record is the base, newest the head (sorted by the
        # "date" field, not by filename).
        self.assertIn("2026-08-01T00:00:00Z", out)
        self.assertIn("2026-08-02T00:00:00Z", out)
        self.assertIn("aaaaaaaaaaaa", out)
        self.assertIn("bbbbbbbbbbbb", out)

    def test_per_bench_deltas(self):
        out = self.diff_output()
        # 9.500 -> 10.450 is +10.0%.
        self.assertRegex(
            out, r"bench_sim_montecarlo\s+9\.500 ->\s+10\.450\s+\+10\.0%"
        )
        self.assertRegex(
            out, r"bench_decoder_throughput\s+1\.200 ->\s+1\.100\s+-8\.3%"
        )
        self.assertRegex(out, r"bench_added_here\s+added")
        self.assertRegex(out, r"bench_retired_elsewhere\s+removed")

    def test_per_decoder_latency_deltas(self):
        out = self.diff_output()
        self.assertIn("decode latency (us/round", out)
        self.assertRegex(out, r"fallback\s+12\.40 ->\s+11\.90\s+-4\.0%")
        self.assertRegex(out, r"correlated\s+55\.10 ->\s+61\.30\s+\+11\.3%")

    def test_caching_tier_metrics(self):
        out = self.diff_output()
        self.assertIn("decode-memo hit rate (per-batch)", out)
        self.assertIn("cross-batch memo hit rate", out)
        self.assertRegex(out, r"memory d=5\s+0\.760 ->\s+0\.776")
        self.assertIn("compile-cache sweep speedup", out)
        self.assertRegex(out, r"mc-sweep d=5\s+4\.800 ->\s+5\.400")
        self.assertIn("warm-restart-speedup (x): 11.0 -> 12.5", out)

    def test_dispatch_change_flagged(self):
        out = self.diff_output()
        self.assertIn("cpu-dispatch: avx2 -> avx512  <- CHANGED", out)

    def test_unknown_top_level_key_listed(self):
        out = self.diff_output()
        self.assertIn("keys this tool does not render", out)
        self.assertIn("experimental_new_metric", out)
        # Known keys must not be reported as unknown.
        self.assertNotIn("warm_restart_speedup,", out)

    def test_single_record_still_exits_zero(self):
        code, out, err = run_tool(FIXTURES / "base.json")
        self.assertEqual(code, 0, err)
        self.assertIn("nothing to diff yet", out)

    def test_full_dump_exits_zero(self):
        code, out, err = run_tool(FIXTURES, "--full")
        self.assertEqual(code, 0, err)
        self.assertIn('"warm_restart_speedup": 11.0', out)

    def test_unparsable_input_fails_loudly(self):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as f:
            f.write("{not json")
            bad = f.name
        try:
            code, _, err = run_tool(bad)
            self.assertNotEqual(code, 0)
            self.assertIn("cannot read", err)
        finally:
            Path(bad).unlink()

    def test_non_record_json_fails_loudly(self):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as f:
            f.write('{"date": "2026-01-01", "no_benches": true}')
            bad = f.name
        try:
            code, _, err = run_tool(bad)
            self.assertNotEqual(code, 0)
            self.assertIn("not a perf-history record", err)
        finally:
            Path(bad).unlink()


if __name__ == "__main__":
    unittest.main()
