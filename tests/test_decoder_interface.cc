/**
 * @file
 * Tests for the polymorphic Decoder interface / factory and the
 * sharded multithreaded MonteCarloEngine: decoder parity on
 * hand-built syndromes, bit-identical results for any thread count,
 * stream-split RNG determinism, tally merging, and exact tail-shot
 * accounting.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/sim/dem.hh"

namespace traq::decoder {
namespace {

using codes::CircuitMeta;
using sim::DetectorErrorModel;
using sim::ErrorMechanism;

/** 1D repetition-code-like chain of n detectors (see test_decoder). */
DetectorErrorModel
chainDem(int n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n;
    dem.numObservables = 1;
    ErrorMechanism left;
    left.probability = p;
    left.detectors = {0};
    left.observables = 1;
    dem.errors.push_back(left);
    for (int i = 0; i + 1 < n; ++i) {
        ErrorMechanism e;
        e.probability = p;
        e.detectors = {static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(i + 1)};
        dem.errors.push_back(e);
    }
    ErrorMechanism right;
    right.probability = p;
    right.detectors = {static_cast<std::uint32_t>(n - 1)};
    dem.errors.push_back(right);
    return dem;
}

CircuitMeta
chainMeta(int n)
{
    CircuitMeta meta;
    meta.detectorIsX.assign(n, 0);
    meta.observableIsX.assign(1, 0);
    return meta;
}

TEST(DecoderFactory, MakesAllBuiltinKinds)
{
    auto dem = chainDem(5, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(5));
    for (auto kind : {DecoderKind::UnionFind, DecoderKind::Mwpm,
                      DecoderKind::Fallback, DecoderKind::Correlated,
                      DecoderKind::Windowed}) {
        auto dec = makeDecoder(kind, g);
        ASSERT_NE(dec, nullptr);
        EXPECT_STREQ(dec->name(), decoderKindName(kind));
        EXPECT_EQ(dec->decode({}), 0u);
        EXPECT_EQ(dec->fallbacks(), 0u);
    }
}

TEST(DecoderFactory, TableDrivenKindNameRoundTrip)
{
    // Every registered kind round-trips kind -> name -> kind and
    // instantiates a decoder that reports the same name.
    auto dem = chainDem(5, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(5));
    const auto kinds = registeredDecoderKinds();
    EXPECT_EQ(kinds.size(), 5u);
    for (DecoderKind kind : kinds) {
        const char *name = decoderKindName(kind);
        ASSERT_NE(name, nullptr);
        EXPECT_EQ(decoderKindFromName(name), kind);
        auto dec = makeDecoder(kind, g);
        ASSERT_NE(dec, nullptr);
        EXPECT_STREQ(dec->name(), name);
    }
}

TEST(DecoderFactory, UnknownKindsFailLoudly)
{
    auto dem = chainDem(3, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(3));
    const auto bogus = static_cast<DecoderKind>(1000);
    // No silent "unknown" string and no silent default decoder.
    EXPECT_THROW(decoderKindName(bogus), FatalError);
    EXPECT_THROW(makeDecoder(bogus, g), FatalError);
    EXPECT_THROW(decoderKindFromName("no-such-decoder"),
                 FatalError);
    EXPECT_THROW(decoderKindFromName(""), FatalError);
}

TEST(DecoderFactory, EnvironmentOverrideSelectsKind)
{
    ASSERT_EQ(setenv("TRAQ_DECODER", "union-find", 1), 0);
    EXPECT_EQ(resolveDecoderKind(DecoderKind::Fallback),
              DecoderKind::UnionFind);
    ASSERT_EQ(setenv("TRAQ_DECODER", "", 1), 0);
    EXPECT_EQ(resolveDecoderKind(DecoderKind::Fallback),
              DecoderKind::Fallback);
    ASSERT_EQ(setenv("TRAQ_DECODER", "bogus", 1), 0);
    EXPECT_THROW(resolveDecoderKind(DecoderKind::Fallback),
                 FatalError);
    ASSERT_EQ(unsetenv("TRAQ_DECODER"), 0);
    EXPECT_EQ(resolveDecoderKind(DecoderKind::Correlated),
              DecoderKind::Correlated);
}

TEST(MonteCarloEngine, EnvironmentOverridesDecoderKind)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.01));
    McOptions opts;
    opts.shots = 256;
    ASSERT_EQ(setenv("TRAQ_DECODER", "union-find", 1), 0);
    auto res = runMonteCarlo(e, opts);
    ASSERT_EQ(unsetenv("TRAQ_DECODER"), 0);
    EXPECT_STREQ(res.decoder, "union-find");
    auto plain = runMonteCarlo(e, opts);
    EXPECT_STREQ(plain.decoder, "mwpm+uf-fallback");
}

TEST(DecoderFactory, CustomRegistrationPlugsIn)
{
    // A new decoder can take over a kind without touching the
    // harness; restore the builtin afterwards.
    struct Fixed final : Decoder
    {
        std::uint32_t
        decode(const std::vector<std::uint32_t> &) override
        {
            return 42;
        }
        const char *name() const override { return "fixed"; }
    };
    registerDecoder(DecoderKind::UnionFind,
                    [](const DecodingGraph &, const DecoderConfig &) {
                        return std::unique_ptr<Decoder>(new Fixed);
                    });
    auto dem = chainDem(3, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(3));
    EXPECT_EQ(makeDecoder(DecoderKind::UnionFind, g)->decode({0}),
              42u);
    registerDecoder(DecoderKind::UnionFind,
                    [](const DecodingGraph &g2,
                       const DecoderConfig &) {
                        return std::make_unique<UnionFindDecoder>(g2);
                    });
    EXPECT_STREQ(makeDecoder(DecoderKind::UnionFind, g)->name(),
                 "union-find");
}

TEST(DecoderParity, AgreeOnHandBuiltSyndromes)
{
    // On single defects and adjacent pairs of a uniform chain the
    // minimum-weight explanation is unique, so union-find, exact
    // MWPM, and the fallback composite must all agree.
    const int n = 9;
    auto dem = chainDem(n, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(n));
    auto uf = makeDecoder(DecoderKind::UnionFind, g);
    auto mwpm = makeDecoder(DecoderKind::Mwpm, g);
    auto fb = makeDecoder(DecoderKind::Fallback, g);

    std::vector<std::vector<std::uint32_t>> syndromes;
    for (const auto &mech : dem.errors)
        syndromes.push_back(mech.detectors);
    syndromes.push_back({3, 4});
    syndromes.push_back({0, 8});

    for (const auto &syn : syndromes) {
        const std::uint32_t expected = mwpm->decode(syn);
        EXPECT_EQ(uf->decode(syn), expected)
            << "uf vs mwpm, |syn|=" << syn.size();
        EXPECT_EQ(fb->decode(syn), expected)
            << "fallback vs mwpm, |syn|=" << syn.size();
    }
    EXPECT_EQ(fb->fallbacks(), 0u);
}

TEST(FallbackDecoder, RoutesOversizedToUnionFindAndCounts)
{
    auto dem = chainDem(15, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(15));
    FallbackDecoder fb(g, /*mwpmMaxDefects=*/2);
    EXPECT_EQ(fb.decode({4, 5}), 0u);
    EXPECT_EQ(fb.fallbacks(), 0u);
    fb.decode({0, 4, 5, 9});
    EXPECT_EQ(fb.fallbacks(), 1u);
    fb.reset();
    EXPECT_EQ(fb.fallbacks(), 0u);
}

TEST(Rng, StreamZeroMatchesPlainSeed)
{
    Rng a(12345);
    Rng b(12345, 0);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreDistinctAndDeterministic)
{
    Rng s1(777, 1), s2(777, 2), s1again(777, 1);
    bool anyDiff = false;
    for (int i = 0; i < 16; ++i) {
        std::uint64_t x = s1.next();
        anyDiff |= (x != s2.next());
        EXPECT_EQ(x, s1again.next());
    }
    EXPECT_TRUE(anyDiff);
}

TEST(Tally, MergeAddsCounts)
{
    Tally a, b;
    a.ensureBins(2);
    b.ensureBins(2);
    a.shots = 100;
    a.anyHits = 5;
    a.weight = 40;
    a.aux = 1;
    a.binHits = {3, 2};
    b.shots = 50;
    b.anyHits = 1;
    b.weight = 10;
    b.aux = 0;
    b.binHits = {1, 0};
    a.merge(b);
    EXPECT_EQ(a.shots, 150u);
    EXPECT_EQ(a.anyHits, 6u);
    EXPECT_EQ(a.weight, 50u);
    EXPECT_EQ(a.aux, 1u);
    EXPECT_EQ(a.binHits[0], 4u);
    EXPECT_EQ(a.binHits[1], 2u);
    EXPECT_EQ(a.binProportion(0).hits, 4u);
    EXPECT_EQ(a.anyProportion().shots, 150u);
}

TEST(MonteCarloEngine, ThreadCountDoesNotChangeResults)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.01));
    McOptions opts;
    opts.shots = 4000;
    opts.seed = 424242;
    opts.shardShots = 256; // force many shards
    opts.mwpmMaxDefects = 8;

    McResult ref;
    bool first = true;
    for (unsigned threads : {1u, 2u, 4u}) {
        opts.threads = threads;
        auto res = runMonteCarlo(e, opts);
        EXPECT_EQ(res.threadsUsed, threads);
        EXPECT_EQ(res.shards, (opts.shots + 255) / 256);
        if (first) {
            ref = res;
            first = false;
            EXPECT_GT(ref.anyObservable.hits, 0u);
            continue;
        }
        EXPECT_EQ(res.shots, ref.shots);
        EXPECT_EQ(res.sampledShots, ref.sampledShots);
        EXPECT_EQ(res.anyObservable.hits, ref.anyObservable.hits);
        ASSERT_EQ(res.perObservable.size(),
                  ref.perObservable.size());
        for (std::size_t k = 0; k < ref.perObservable.size(); ++k)
            EXPECT_EQ(res.perObservable[k].hits,
                      ref.perObservable[k].hits);
        EXPECT_EQ(res.mwpmFallbacks, ref.mwpmFallbacks);
        EXPECT_DOUBLE_EQ(res.avgDefects, ref.avgDefects);
    }
}

TEST(MonteCarloEngine, TailShotsAccountedExactly)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.005));
    McOptions opts;
    opts.shots = 100; // not a multiple of 64
    opts.threads = 1;
    opts.wordBackend = WordBackend::Scalar64;
    auto res = runMonteCarlo(e, opts);
    EXPECT_EQ(res.shots, 100u);
    EXPECT_EQ(res.wordLanes, 1u);
    EXPECT_EQ(res.sampledShots, 128u); // two 64-shot batches
    EXPECT_EQ(res.anyObservable.shots, 100u);
}

TEST(MonteCarloEngine, TailShotsRoundToWideBatches)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.005));
    McOptions opts;
    opts.shots = 100;
    opts.threads = 1;
    opts.wordBackend = WordBackend::Wide;
    auto res = runMonteCarlo(e, opts);
    const std::uint64_t batch = 64ULL * kWideWordLanes;
    EXPECT_EQ(res.shots, 100u);
    EXPECT_EQ(res.wordLanes, kWideWordLanes);
    EXPECT_EQ(res.sampledShots, (100 + batch - 1) / batch * batch);
    EXPECT_EQ(res.anyObservable.shots, 100u);
}

TEST(MonteCarloEngine, UnionFindKindUsesNoFallback)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.02));
    McOptions opts;
    opts.shots = 512;
    opts.decoder = DecoderKind::UnionFind;
    auto res = runMonteCarlo(e, opts);
    EXPECT_EQ(res.mwpmFallbacks, 0u);
}

} // namespace
} // namespace traq::decoder
