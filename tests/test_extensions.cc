/**
 * @file
 * Tests for the extension analyses: rotation synthesis (Fig. 1 /
 * Sec. III.3) and hybrid qLDPC dense storage (Sec. IV.3.4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/assert.hh"
#include "src/estimator/qldpc.hh"
#include "src/gadgets/rotation.hh"

namespace traq {
namespace {

using gadgets::RotationCost;
using platform::AtomArrayParams;

TEST(Rotation, CliffordTScalesLogarithmically)
{
    auto p = AtomArrayParams::paperDefaults();
    auto c6 = gadgets::synthesizeCliffordT(1e-6, p);
    auto c12 = gadgets::synthesizeCliffordT(1e-12, p);
    // T-count grows by ~1.15 * 20 when eps drops 1e-6 -> 1e-12...
    // (log2(1e6) ~ 19.9 extra bits).
    EXPECT_NEAR(c12.tCount - c6.tCount, 1.15 * 19.93, 0.5);
    EXPECT_GT(c6.tCount, 10.0);
    EXPECT_GT(c12.time, c6.time);
}

TEST(Rotation, PhaseGradientUsesOneAdditionOfBBits)
{
    auto p = AtomArrayParams::paperDefaults();
    auto r = gadgets::synthesizePhaseGradient(1e-9, p);
    EXPECT_EQ(r.gradientBits, 30);
    EXPECT_DOUBLE_EQ(r.cczCount, 30.0);
    EXPECT_DOUBLE_EQ(r.tCount, 0.0);
    EXPECT_NEAR(r.time, 60.0 * p.reactionTime(), 1e-12);
}

TEST(Rotation, RouteChoiceIsConsistent)
{
    auto p = AtomArrayParams::paperDefaults();
    for (double eps : {1e-3, 1e-6, 1e-9, 1e-12}) {
        auto best = gadgets::chooseRotationRoute(eps, p);
        auto direct = gadgets::synthesizeCliffordT(eps, p);
        auto grad = gadgets::synthesizePhaseGradient(eps, p);
        double bestT = best.tCount + 4.0 * best.cczCount;
        EXPECT_LE(bestT, direct.tCount + 1e-9);
        EXPECT_LE(bestT, 4.0 * grad.cczCount + 1e-9);
    }
}

TEST(Rotation, RejectsBadAccuracy)
{
    auto p = AtomArrayParams::paperDefaults();
    EXPECT_THROW(gadgets::synthesizeCliffordT(0.0, p), FatalError);
    EXPECT_THROW(gadgets::synthesizePhaseGradient(2.0, p),
                 FatalError);
}

class QldpcFixture : public ::testing::Test
{
  protected:
    est::FactoringSpec spec;
    est::FactoringReport base = est::estimateFactoring(spec);
};

TEST_F(QldpcFixture, TenXCompressionSavesAboutTwentyPercent)
{
    est::QldpcStorageSpec qs;   // 10x, 85% eligible
    auto r = est::applyQldpcStorage(base, spec, qs);
    // Paper Sec. IV.3.4: ~20% footprint reduction.
    EXPECT_GT(r.footprintReduction, 0.15);
    EXPECT_LT(r.footprintReduction, 0.35);
    EXPECT_LT(r.physicalQubits, base.physicalQubits);
    EXPECT_NEAR(r.spacetimeVolume,
                r.physicalQubits * base.totalSeconds, 1.0);
}

TEST_F(QldpcFixture, CompressionMonotone)
{
    double prev = base.physicalQubits;
    for (double comp : {2.0, 5.0, 10.0, 20.0}) {
        est::QldpcStorageSpec qs;
        qs.compressionFactor = comp;
        auto r = est::applyQldpcStorage(base, spec, qs);
        EXPECT_LT(r.physicalQubits, prev);
        prev = r.physicalQubits;
    }
}

TEST_F(QldpcFixture, SavingsSaturateWithEligibility)
{
    // The ineligible (actively-streamed) fraction bounds the gain.
    est::QldpcStorageSpec all;
    all.eligibleFraction = 1.0;
    all.compressionFactor = 1e6;
    auto r = est::applyQldpcStorage(base, spec, all);
    double bound = base.storageQubits / base.physicalQubits;
    EXPECT_NEAR(r.footprintReduction, bound, 1e-6);
}

TEST_F(QldpcFixture, AccessCycleLongerThanCompute)
{
    est::QldpcStorageSpec qs;
    auto r = est::applyQldpcStorage(base, spec, qs);
    EXPECT_GT(r.accessCycleTime, r.computeCycleTime);
}

TEST_F(QldpcFixture, RejectsBadSpecs)
{
    est::QldpcStorageSpec bad;
    bad.compressionFactor = 0.5;
    EXPECT_THROW(est::applyQldpcStorage(base, spec, bad),
                 FatalError);
    est::QldpcStorageSpec badFrac;
    badFrac.eligibleFraction = 1.5;
    EXPECT_THROW(est::applyQldpcStorage(base, spec, badFrac),
                 FatalError);
}

} // namespace
} // namespace traq
