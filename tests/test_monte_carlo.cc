/**
 * @file
 * Integration tests: end-to-end Monte-Carlo logical-error estimation
 * on memory and transversal-CNOT experiments.  These validate the
 * paper-relevant qualitative behaviours: error suppression with
 * distance below threshold, failure above threshold scaling, and
 * error-rate elevation with CNOT density (the decoding factor).
 */

#include <gtest/gtest.h>

#include "src/codes/experiments.hh"
#include "src/decoder/monte_carlo.hh"

namespace traq::decoder {
namespace {

using codes::NoiseParams;
using codes::SurfaceCode;

TEST(MonteCarlo, NoiselessNeverFails)
{
    SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3, NoiseParams::none());
    McOptions opts;
    opts.shots = 256;
    auto res = runMonteCarlo(e, opts);
    EXPECT_EQ(res.anyObservable.hits, 0u);
    EXPECT_EQ(res.avgDefects, 0.0);
}

TEST(MonteCarlo, HighNoiseFailsOften)
{
    SurfaceCode sc(3);
    auto e =
        codes::buildMemory(sc, 'Z', 3, NoiseParams::uniform(0.08));
    McOptions opts;
    opts.shots = 2048;
    opts.decoder = DecoderKind::UnionFind;
    auto res = runMonteCarlo(e, opts);
    // Far above threshold: logical failure should approach 50%.
    EXPECT_GT(res.perObservable[0].mean, 0.2);
}

TEST(MonteCarlo, DistanceSuppressionBelowThreshold)
{
    // At p = 0.2% (well below the ~0.7-1% circuit threshold), d = 5
    // must beat d = 3 with the matching decoder.
    const double p = 0.002;
    McOptions opts;
    opts.shots = 6000;
    opts.seed = 1234;
    opts.decoder = DecoderKind::Fallback;

    SurfaceCode sc3(3);
    auto e3 = codes::buildMemory(sc3, 'Z', 3,
                                 NoiseParams::uniform(p));
    auto r3 = runMonteCarlo(e3, opts);

    SurfaceCode sc5(5);
    auto e5 = codes::buildMemory(sc5, 'Z', 5,
                                 NoiseParams::uniform(p));
    auto r5 = runMonteCarlo(e5, opts);

    EXPECT_GT(r3.perObservable[0].mean, 0.0);
    EXPECT_LT(r5.perObservable[0].mean, r3.perObservable[0].mean)
        << "d=3: " << r3.perObservable[0].mean
        << " d=5: " << r5.perObservable[0].mean;
}

TEST(MonteCarlo, XBasisMemoryAlsoDecodes)
{
    SurfaceCode sc(3);
    auto e =
        codes::buildMemory(sc, 'X', 3, NoiseParams::uniform(0.003));
    McOptions opts;
    opts.shots = 4000;
    auto res = runMonteCarlo(e, opts);
    // Should be suppressed well below raw physical accumulation.
    EXPECT_LT(res.perObservable[0].mean, 0.05);
}

TEST(MonteCarlo, TransversalCnotDecodes)
{
    codes::TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 4;
    spec.cnotsPerBatch = 1;
    spec.seRoundsPerBatch = 1;
    spec.noise = NoiseParams::uniform(0.002);
    auto e = codes::buildTransversalCnot(spec);
    McOptions opts;
    opts.shots = 4000;
    auto res = runMonteCarlo(e, opts);
    ASSERT_EQ(res.perObservable.size(), 2u);
    // Both logical qubits decode with suppressed error.
    EXPECT_LT(res.perObservable[0].mean, 0.1);
    EXPECT_LT(res.perObservable[1].mean, 0.1);
    EXPECT_GT(res.avgDefects, 0.0);
}

TEST(MonteCarlo, CnotPackingTradeoffMatchesEq4)
{
    // The heart of Eq. (4): with the total CNOT count fixed, packing
    // more transversal CNOTs per SE round (larger x) lowers the total
    // error below threshold (fewer SE rounds' worth of noise), but
    // the *per-SE-round* error rate is elevated by the (1 + alpha x)
    // factor.  Both effects must be visible.
    McOptions opts;
    opts.shots = 6000;
    opts.seed = 99;
    const double p = 0.004;

    auto run = [&](int cnotsPerBatch) {
        codes::TransversalCnotSpec spec;
        spec.distance = 3;
        spec.cnotLayers = 8;
        spec.cnotsPerBatch = cnotsPerBatch;
        spec.seRoundsPerBatch = 1;
        spec.noise = NoiseParams::uniform(p);
        auto e = codes::buildTransversalCnot(spec);
        auto r = runMonteCarlo(e, opts);
        return r.anyObservable.mean;
    };

    double sparse = run(1);   // 8 SE blocks, x = 1
    double dense = run(4);    // 2 SE blocks, x = 4
    // Total error: dense packing wins below threshold (Fig. 6(b):
    // optimal SE rounds per CNOT <= 1).
    EXPECT_LT(dense, sparse)
        << "dense=" << dense << " sparse=" << sparse;
    // Per-SE-round error: dense is elevated (alpha > 0 in Eq. (4)).
    EXPECT_GT(dense / 2.0, sparse / 8.0)
        << "dense=" << dense << " sparse=" << sparse;
}

TEST(MonteCarlo, MwpmFallbackCounted)
{
    SurfaceCode sc(3);
    auto e =
        codes::buildMemory(sc, 'Z', 3, NoiseParams::uniform(0.05));
    McOptions opts;
    opts.shots = 1024;
    opts.decoder = DecoderKind::Fallback;
    opts.mwpmMaxDefects = 2;   // force frequent fallback
    auto res = runMonteCarlo(e, opts);
    EXPECT_GT(res.mwpmFallbacks, 0u);
}

} // namespace
} // namespace traq::decoder
