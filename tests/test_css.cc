/**
 * @file
 * Tests for the generic CSS machinery and the [[8,3,2]] colour code
 * used by the 8T-to-CCZ factory.
 */

#include <gtest/gtest.h>

#include "src/codes/css.hh"
#include "src/common/assert.hh"
#include "src/sim/circuit.hh"
#include "src/sim/conjugate.hh"

namespace traq::codes {
namespace {

TEST(Css, RejectsNonCommutingChecks)
{
    auto hx = Gf2Matrix::fromRows({{1, 0}});
    auto hz = Gf2Matrix::fromRows({{1, 0}});
    EXPECT_THROW(CssCode(hx, hz), traq::FatalError);
}

TEST(Css, SteaneCodeParameters)
{
    // [[7,1,3]] Steane code: Hx = Hz = Hamming(7,4) checks.
    std::vector<std::vector<int>> rows = {
        {1, 0, 1, 0, 1, 0, 1},
        {0, 1, 1, 0, 0, 1, 1},
        {0, 0, 0, 1, 1, 1, 1},
    };
    CssCode steane(Gf2Matrix::fromRows(rows),
                   Gf2Matrix::fromRows(rows));
    EXPECT_EQ(steane.numQubits(), 7u);
    EXPECT_EQ(steane.numLogical(), 1u);
    EXPECT_EQ(steane.bruteForceDistance(), 3u);
}

TEST(Css, LogicalPairingIsSymplectic)
{
    CssCode code = makeCode832();
    const std::size_t k = code.numLogical();
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            bool commutes = code.logicalXPauli(i).commutesWith(
                code.logicalZPauli(j));
            EXPECT_EQ(commutes, i != j)
                << "pairing failed at " << i << "," << j;
        }
    }
}

TEST(Css, LogicalsCommuteWithStabilizers)
{
    CssCode code = makeCode832();
    for (std::size_t i = 0; i < code.numLogical(); ++i) {
        for (std::size_t r = 0; r < code.hz().rows(); ++r) {
            EXPECT_TRUE(code.logicalXPauli(i).commutesWith(
                code.stabilizerZPauli(r)));
        }
        for (std::size_t r = 0; r < code.hx().rows(); ++r) {
            EXPECT_TRUE(code.logicalZPauli(i).commutesWith(
                code.stabilizerXPauli(r)));
        }
    }
}

TEST(Code832, Parameters)
{
    CssCode code = makeCode832();
    EXPECT_EQ(code.numQubits(), 8u);
    EXPECT_EQ(code.numLogical(), 3u);
    EXPECT_EQ(code.bruteForceDistance(), 2u);
}

TEST(Code832, FaceStabilizersHaveWeightFour)
{
    CssCode code = makeCode832();
    for (std::size_t r = 0; r < code.hz().rows(); ++r)
        EXPECT_EQ(code.hz().rowWeight(r), 4u);
    EXPECT_EQ(code.hx().rowWeight(0), 8u);
}

/**
 * The S/S_DAG checkerboard pattern on the cube (S on even-parity
 * vertices, S_DAG on odd) preserves the stabilizer group — the
 * Clifford shadow of the transversal-T CCZ property that the factory
 * exploits (Sec. III.6).
 */
TEST(Code832, CheckerboardSPatternIsCodeAutomorphism)
{
    CssCode code = makeCode832();
    sim::Circuit pattern;
    for (std::uint32_t v = 0; v < 8; ++v) {
        int parity = __builtin_popcount(v) % 2;
        if (parity == 0)
            pattern.s(v);
        else
            pattern.sdag(v);
    }
    // Every stabilizer must map to an element of the stabilizer group
    // (up to sign, which post-selection handles in the factory).
    // X^8 maps to a product involving Zs; check the Z-face images
    // exactly: diag patterns fix Z-type operators.
    for (std::size_t r = 0; r < code.hz().rows(); ++r) {
        sim::PauliString img = sim::conjugateByCircuit(
            code.stabilizerZPauli(r), pattern);
        sim::PauliString orig = code.stabilizerZPauli(r);
        img.setPhase(0);
        orig.setPhase(0);
        EXPECT_EQ(img, orig);
    }
    // The X^8 stabilizer maps to X^8 times Z-type content that must
    // lie inside the Z-stabilizer group: verify commutation with all
    // logical operators is preserved.
    sim::PauliString imgX = sim::conjugateByCircuit(
        code.stabilizerXPauli(0), pattern);
    for (std::size_t i = 0; i < code.numLogical(); ++i) {
        EXPECT_TRUE(imgX.commutesWith(code.logicalXPauli(i)));
        EXPECT_TRUE(imgX.commutesWith(code.logicalZPauli(i)));
    }
    for (std::size_t r = 0; r < code.hz().rows(); ++r)
        EXPECT_TRUE(imgX.commutesWith(code.stabilizerZPauli(r)));
}

TEST(Css, SurfaceCodeCssDistanceFive)
{
    // k and commutation already covered; verify d=5 logical count and
    // that the brute-force path is guarded for large n.
    CssCode c5 = makeSurfaceCodeCss(5);
    EXPECT_EQ(c5.numLogical(), 1u);
    EXPECT_THROW(c5.bruteForceDistance(), traq::FatalError);
}

} // namespace
} // namespace traq::codes
