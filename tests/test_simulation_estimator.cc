/**
 * @file
 * Tests for the simulation-backed estimators ("mc-logical-error",
 * "mc-alpha"): registry resolution, SweepRunner grids over
 * Monte-Carlo jobs with thread-count-invariant results, metric
 * shapes for memory vs transversal-CNOT circuits, and the Fig. 6(a)
 * acceptance: alpha fitted from fully in-repo Monte-Carlo data lands
 * in the paper's quoted ballpark.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/assert.hh"
#include "src/estimator/simulation.hh"
#include "src/estimator/sweep.hh"

namespace traq::est {
namespace {

TEST(McEstimators, ResolveThroughRegistry)
{
    auto kinds = registeredEstimators();
    for (const char *kind : {"mc-logical-error", "mc-alpha"}) {
        EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind),
                  kinds.end())
            << kind;
        auto e = makeEstimator(kind);
        ASSERT_NE(e, nullptr);
        EXPECT_STREQ(e->kind(), kind);
    }
}

TEST(McEstimators, UnknownParameterThrows)
{
    auto e = makeEstimator("mc-logical-error");
    EXPECT_THROW(
        e->estimate({"mc-logical-error", {{"distnace", 3}}}),
        FatalError);
    auto a = makeEstimator("mc-alpha");
    EXPECT_THROW(a->estimate({"mc-alpha", {{"bogus", 1}}}),
                 FatalError);
}

TEST(McEstimators, NegativeCountsRejectedBeforeUnsignedWrap)
{
    // shots = -1 must throw, not wrap to 2^64 - 1 and launch an
    // unbounded run; same for thread counts.
    auto e = makeEstimator("mc-logical-error");
    EXPECT_THROW(
        e->estimate({"mc-logical-error", {{"shots", -1}}}),
        FatalError);
    EXPECT_THROW(
        e->estimate({"mc-logical-error", {{"mcThreads", -2}}}),
        FatalError);
    auto a = makeEstimator("mc-alpha");
    EXPECT_THROW(a->estimate({"mc-alpha", {{"shots", -1}}}),
                 FatalError);
    EXPECT_THROW(a->estimate({"mc-alpha", {{"sweepThreads", -4}}}),
                 FatalError);
}

TEST(McEstimators, MemoryMetricsAndNoiseMonotonicity)
{
    auto e = makeEstimator("mc-logical-error");
    EstimateRequest lo{"mc-logical-error",
                       {{"p", 0.02}, {"shots", 2048}}};
    EstimateRequest hi{"mc-logical-error",
                       {{"p", 0.06}, {"shots", 2048}}};
    EstimateResult rLo = e->estimate(lo);
    EstimateResult rHi = e->estimate(hi);
    for (const char *m : {"pLogical", "pLogicalLo", "pLogicalHi",
                          "hits", "shots", "seRounds", "pPerRound",
                          "avgDefects", "wordLanes"})
        EXPECT_TRUE(rLo.hasMetric(m)) << m;
    EXPECT_FALSE(rLo.hasMetric("x")); // memory circuit: no density
    EXPECT_EQ(rLo.metric("shots"), 2048.0);
    EXPECT_GT(rHi.metric("pLogical"), rLo.metric("pLogical"));
    EXPECT_GT(rHi.metric("avgDefects"), rLo.metric("avgDefects"));
}

TEST(McEstimators, CnotMetricsExposeDensity)
{
    auto e = makeEstimator("mc-logical-error");
    EstimateRequest req{"mc-logical-error",
                        {{"p", 0.01},
                         {"shots", 1024},
                         {"cnotLayers", 4},
                         {"cnotsPerBatch", 2}}};
    EstimateResult r = e->estimate(req);
    EXPECT_EQ(r.metric("x"), 2.0);
    EXPECT_TRUE(r.hasMetric("pPerCnot"));
    EXPECT_DOUBLE_EQ(r.metric("pPerCnot"),
                     r.metric("pLogical") / 4.0);
    // 2 blocks of 1 SE round each.
    EXPECT_EQ(r.metric("seRounds"), 2.0);
}

TEST(McEstimators, SweepGridIsThreadCountInvariant)
{
    // A (d, p) grid of Monte-Carlo jobs through SweepRunner must be
    // bit-identical for any worker count — the property that makes
    // batch alpha-extraction sweeps trustworthy.
    auto run = [](unsigned threads) {
        SweepRunner sweep(
            EstimateRequest{"mc-logical-error", {{"shots", 1024}}},
            SweepOptions{threads, true});
        sweep.addAxis("distance", {3, 5});
        sweep.addAxis("p", {0.01, 0.03});
        return sweep.run();
    };
    SweepResult one = run(1);
    SweepResult four = run(4);
    ASSERT_EQ(one.results.size(), 4u);
    ASSERT_EQ(four.results.size(), 4u);
    for (std::size_t i = 0; i < one.results.size(); ++i) {
        const auto &a = one.results[i].metrics;
        const auto &b = four.results[i].metrics;
        ASSERT_EQ(a.size(), b.size());
        for (const auto &[name, v] : a)
            EXPECT_EQ(v, b.at(name)) << name; // bit-identical
    }
}

TEST(McEstimators, AlphaLandsInPaperBallpark)
{
    // The Fig. 6(a) acceptance: alpha extracted from in-repo
    // Monte-Carlo data (memory anchors pin Lambda, the transversal
    // CNOT x-grid bends out alpha) must land in the paper's quoted
    // ballpark.  Fixed seed + the engine's determinism make this a
    // regression check, not a flaky statistical assertion.
    EstimateRequest req{"mc-alpha",
                        {{"p", 4e-3},
                         {"shots", 20000},
                         {"seed", 3}}};
    EstimateResult fit = makeEstimator("mc-alpha")->estimate(req);
    EXPECT_TRUE(fit.feasible);
    const double alpha = fit.metric("alpha");
    EXPECT_GE(alpha, 0.1);
    EXPECT_LE(alpha, 0.25);
    EXPECT_GT(fit.metric("lambda"), 1.0);
    EXPECT_GT(fit.metric("prefactorC"), 0.0);
    EXPECT_LT(fit.metric("rmsLogResidual"), 0.3);
    EXPECT_GE(fit.metric("dataPoints"), 3.0);
}

} // namespace
} // namespace traq::est
