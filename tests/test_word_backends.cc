/**
 * @file
 * Width-backend agreement tests for the wide bit-plane sampling
 * stack: the scalar (1-lane), wide (kWideWordLanes), and wide512
 * (kWide512WordLanes) backends must agree exactly on deterministic
 * circuits, statistically on noisy ones, and each backend must stay
 * bit-identical across thread counts.  Also covers extractSyndromes
 * and extractSyndromeBlock for non-64 widths and partial live masks,
 * TRAQ_WORD_BACKEND resolution (including the loud-failure contract
 * on unknown values), and the noise-fusion path.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/word.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/sim/frame.hh"

namespace traq::sim {
namespace {

/** All-lane popcount of one observable plane. */
std::uint64_t
planeCount(const FrameBatch &b, std::size_t k)
{
    std::uint64_t n = 0;
    for (std::uint64_t w : b.observable(k))
        n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
}

TEST(WordBackends, DeterministicCircuitAgreesExactly)
{
    // p = 1 noise and forced propagation: every shot of every lane
    // must flip identically on both backends.
    Circuit c;
    c.xError(1.0, {0});
    c.cx(0, 1);
    c.m(0);
    c.m(1);
    c.detector({2});
    c.detector({1});
    c.observable(0, {1, 2});
    for (unsigned lanes :
         {1u, kWideWordLanes, kWide512WordLanes, 3u}) {
        FrameSimulator sim(7, lanes);
        FrameBatch b = sim.sample(c);
        ASSERT_EQ(b.lanes, lanes);
        ASSERT_EQ(b.numDetectors(), 2u);
        for (std::uint64_t w : b.detector(0))
            EXPECT_EQ(w, ~0ULL);
        for (std::uint64_t w : b.detector(1))
            EXPECT_EQ(w, ~0ULL);
        // X on both qubits: the XOR observable never flips.
        EXPECT_EQ(planeCount(b, 0), 0u);
    }
}

TEST(WordBackends, ObservableFlipCountsAgreeStatistically)
{
    // Same seed, both backends: the statistical path must produce
    // matching observable-flip counts within tight Monte-Carlo
    // tolerance (the backends consume randomness in different
    // orders, so equality is distributional, not bitwise).
    Circuit c;
    c.xError(0.3, {0});
    c.m(0);
    c.observable(0, {1});
    const std::uint64_t minShots = 1 << 17;
    std::vector<double> rates;
    for (unsigned lanes : {1u, kWideWordLanes, kWide512WordLanes}) {
        FrameSimulator sim(99, lanes);
        std::uint64_t shots = 0;
        auto counts = sim.countObservableFlips(c, minShots, &shots);
        ASSERT_EQ(counts.size(), 1u);
        EXPECT_GE(shots, minShots);
        rates.push_back(static_cast<double>(counts[0]) / shots);
    }
    EXPECT_NEAR(rates[0], 0.3, 0.01);
    EXPECT_NEAR(rates[1], rates[0], 0.01);
    EXPECT_NEAR(rates[2], rates[0], 0.01);
}

TEST(WordBackends, EngineBackendsAgreeStatistically)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.02));
    decoder::McOptions opts;
    opts.shots = 20000;
    opts.seed = 77;
    opts.decoder = decoder::DecoderKind::UnionFind;

    opts.wordBackend = WordBackend::Scalar64;
    auto scalar = decoder::runMonteCarlo(e, opts);
    opts.wordBackend = WordBackend::Wide;
    auto wide = decoder::runMonteCarlo(e, opts);
    opts.wordBackend = WordBackend::Wide512;
    auto wide512 = decoder::runMonteCarlo(e, opts);

    EXPECT_EQ(scalar.wordLanes, 1u);
    EXPECT_EQ(wide.wordLanes, kWideWordLanes);
    EXPECT_EQ(wide512.wordLanes, kWide512WordLanes);
    EXPECT_EQ(scalar.shots, wide.shots);
    EXPECT_EQ(scalar.shots, wide512.shots);
    // ~5 sigma of a binomial proportion at these settings.
    const double sigma =
        std::sqrt(scalar.anyObservable.mean *
                  (1 - scalar.anyObservable.mean) / scalar.shots);
    EXPECT_NEAR(wide.anyObservable.mean, scalar.anyObservable.mean,
                5.0 * sigma + 1e-12);
    EXPECT_NEAR(wide512.anyObservable.mean,
                scalar.anyObservable.mean, 5.0 * sigma + 1e-12);
    EXPECT_NEAR(wide.avgDefects, scalar.avgDefects,
                0.05 * scalar.avgDefects);
    EXPECT_NEAR(wide512.avgDefects, scalar.avgDefects,
                0.05 * scalar.avgDefects);
}

TEST(WordBackends, WideBackendsThreadCountInvariant)
{
    // The per-backend determinism guarantee: for each wide backend,
    // any thread count reproduces the 1-thread tallies exactly.
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.01));
    decoder::McOptions opts;
    opts.shots = 4000;
    opts.seed = 4242;
    opts.shardShots = 512; // force many shards

    for (auto [backend, lanes] :
         {std::pair{WordBackend::Wide, kWideWordLanes},
          std::pair{WordBackend::Wide512, kWide512WordLanes}}) {
        opts.wordBackend = backend;
        decoder::McResult ref;
        bool first = true;
        for (unsigned threads : {1u, 2u, 4u}) {
            opts.threads = threads;
            auto res = decoder::runMonteCarlo(e, opts);
            EXPECT_EQ(res.wordLanes, lanes);
            if (first) {
                ref = res;
                first = false;
                EXPECT_GT(ref.anyObservable.hits, 0u);
                continue;
            }
            EXPECT_EQ(res.anyObservable.hits,
                      ref.anyObservable.hits);
            EXPECT_EQ(res.shots, ref.shots);
            EXPECT_EQ(res.sampledShots, ref.sampledShots);
            ASSERT_EQ(res.perObservable.size(),
                      ref.perObservable.size());
            for (std::size_t k = 0; k < ref.perObservable.size();
                 ++k)
                EXPECT_EQ(res.perObservable[k].hits,
                          ref.perObservable[k].hits);
            EXPECT_DOUBLE_EQ(res.avgDefects, ref.avgDefects);
        }
    }
}

TEST(WordBackends, EnvResolutionParsesKnownNamesAndFailsLoudly)
{
    // Explicit backends pass through untouched regardless of env.
    ASSERT_EQ(setenv("TRAQ_WORD_BACKEND", "512", 1), 0);
    EXPECT_EQ(resolveWordBackend(WordBackend::Scalar64),
              WordBackend::Scalar64);
    EXPECT_EQ(resolveWordBackend(WordBackend::Wide),
              WordBackend::Wide);

    // Auto resolves every documented spelling.
    const std::pair<const char *, WordBackend> spellings[] = {
        {"64", WordBackend::Scalar64},
        {"scalar", WordBackend::Scalar64},
        {"scalar64", WordBackend::Scalar64},
        {"256", WordBackend::Wide},
        {"wide", WordBackend::Wide},
        {"wide256", WordBackend::Wide},
        {"512", WordBackend::Wide512},
        {"wide512", WordBackend::Wide512},
    };
    for (const auto &[name, want] : spellings) {
        ASSERT_EQ(setenv("TRAQ_WORD_BACKEND", name, 1), 0);
        EXPECT_EQ(resolveWordBackend(WordBackend::Auto), want)
            << name;
    }

    // Unset / empty default to Wide.
    ASSERT_EQ(setenv("TRAQ_WORD_BACKEND", "", 1), 0);
    EXPECT_EQ(resolveWordBackend(WordBackend::Auto),
              WordBackend::Wide);
    ASSERT_EQ(unsetenv("TRAQ_WORD_BACKEND"), 0);
    EXPECT_EQ(resolveWordBackend(WordBackend::Auto),
              WordBackend::Wide);

    // A typo must throw, not silently fall back to the default.
    ASSERT_EQ(setenv("TRAQ_WORD_BACKEND", "wide-512", 1), 0);
    EXPECT_THROW(resolveWordBackend(WordBackend::Auto), FatalError);
    ASSERT_EQ(unsetenv("TRAQ_WORD_BACKEND"), 0);

    EXPECT_STREQ(wordBackendName(WordBackend::Wide512),
                 kWide512WordLanes == 8 ? "wide512"
                                        : "wide512(64)");
    // Compile-time codegen label is one of the three documented
    // values (the runtime dispatch level is tested separately in
    // test_cpu_dispatch.cc).
    const std::string cg = wordBackendCompiled();
    EXPECT_TRUE(cg == "avx512f" || cg == "avx2" || cg == "baseline");
}

TEST(WordBackends, ExtractSyndromesRoundTripsNon64Widths)
{
    // Hand-built batch over 2 lanes (128 shots), 3 detectors.
    FrameBatch b;
    b.lanes = 2;
    b.detectors = {
        // d0: shots 0, 64 (bit 0 of each lane)
        1ULL, 1ULL,
        // d1: shots 3 and 127
        8ULL, 1ULL << 63,
        // d2: all shots of lane 1 only
        0ULL, ~0ULL,
    };
    ASSERT_EQ(b.numDetectors(), 3u);

    const std::vector<std::uint64_t> full{~0ULL, ~0ULL};
    std::vector<std::vector<std::uint32_t>> out(b.shots());
    extractSyndromes(b, full, out);
    EXPECT_EQ(out[0], (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(out[3], (std::vector<std::uint32_t>{1}));
    EXPECT_EQ(out[64], (std::vector<std::uint32_t>{0, 2}));
    EXPECT_EQ(out[127], (std::vector<std::uint32_t>{1, 2}));
    EXPECT_TRUE(out[1].empty());
    std::size_t total = 0;
    for (const auto &s : out)
        total += s.size();
    EXPECT_EQ(total, 2u + 2u + 64u);

    // Partial live mask: only shots 0..2 of lane 0 and 64..66 of
    // lane 1 are live; everything else must be dropped.
    const std::vector<std::uint64_t> partial{7ULL, 7ULL};
    std::vector<std::vector<std::uint32_t>> masked(b.shots());
    extractSyndromes(b, partial, masked);
    EXPECT_EQ(masked[0], (std::vector<std::uint32_t>{0}));
    EXPECT_TRUE(masked[3].empty());  // shot 3 masked out
    EXPECT_EQ(masked[64], (std::vector<std::uint32_t>{0, 2}));
    EXPECT_EQ(masked[65], (std::vector<std::uint32_t>{2}));
    EXPECT_TRUE(masked[127].empty());
    total = 0;
    for (const auto &s : masked)
        total += s.size();
    EXPECT_EQ(total, 1u + 1u + 3u);
}

TEST(WordBackends, ExtractSyndromeBlockMatchesPerShotExtraction)
{
    // Same hand-built 2-lane batch as above, plus observable planes;
    // the CSR block must match extractSyndromes shot for shot and
    // scatter the observable masks correctly.
    FrameBatch b;
    b.lanes = 2;
    b.detectors = {
        1ULL,        1ULL,        // d0: shots 0, 64
        8ULL,        1ULL << 63,  // d1: shots 3, 127
        0ULL,        ~0ULL,       // d2: all of lane 1
    };
    b.observables = {
        2ULL,        0ULL,        // obs0 flips shot 1
        1ULL << 63,  ~0ULL,       // obs1 flips shot 63 + lane 1
    };

    const std::vector<std::uint64_t> full{~0ULL, ~0ULL};
    SyndromeBlock blk;
    extractSyndromeBlock(b, full, blk);
    ASSERT_EQ(blk.lanes, 2u);
    ASSERT_EQ(blk.offsets.size(), b.shots() + 1);
    ASSERT_EQ(blk.observables.size(), b.shots());

    std::vector<std::vector<std::uint32_t>> ref(b.shots());
    extractSyndromes(b, full, ref);
    for (std::uint64_t s = 0; s < b.shots(); ++s) {
        const auto syn = blk.syndrome(s);
        ASSERT_EQ(std::vector<std::uint32_t>(syn.begin(),
                                             syn.end()),
                  ref[s])
            << "shot " << s;
    }
    EXPECT_EQ(blk.observables[0], 0u);
    EXPECT_EQ(blk.observables[1], 1u);  // obs0
    EXPECT_EQ(blk.observables[63], 2u); // obs1
    EXPECT_EQ(blk.observables[64], 2u); // obs1 (lane 1)
    EXPECT_EQ(blk.observables[127], 2u);

    // Partial live mask: dead shots come out empty with zero masks.
    const std::vector<std::uint64_t> partial{7ULL, 7ULL};
    extractSyndromeBlock(b, partial, blk);
    std::vector<std::vector<std::uint32_t>> maskedRef(b.shots());
    extractSyndromes(b, partial, maskedRef);
    for (std::uint64_t s = 0; s < b.shots(); ++s) {
        const auto syn = blk.syndrome(s);
        ASSERT_EQ(std::vector<std::uint32_t>(syn.begin(),
                                             syn.end()),
                  maskedRef[s])
            << "shot " << s;
    }
    EXPECT_EQ(blk.observables[63], 0u); // masked out
    EXPECT_EQ(blk.observables[64], 2u); // still live

    // Simulator-sampled batch: the block and the per-shot extraction
    // must agree on real noisy data across every backend width.
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.05));
    for (unsigned lanes : {1u, kWideWordLanes, kWide512WordLanes}) {
        FrameSimulator sim(31337, lanes);
        FrameBatch nb = sim.sample(e.circuit);
        const std::vector<std::uint64_t> live(lanes, ~0ULL);
        SyndromeBlock nblk;
        extractSyndromeBlock(nb, live, nblk);
        std::vector<std::vector<std::uint32_t>> nref(nb.shots());
        extractSyndromes(nb, live, nref);
        std::uint64_t defects = 0;
        for (std::uint64_t s = 0; s < nb.shots(); ++s) {
            const auto syn = nblk.syndrome(s);
            ASSERT_EQ(std::vector<std::uint32_t>(syn.begin(),
                                                 syn.end()),
                      nref[s])
                << "lanes " << lanes << " shot " << s;
            defects += syn.size();
        }
        EXPECT_GT(defects, 0u) << "lanes " << lanes;
    }
}

TEST(WordBackends, FusedNoiseMatchesCombinedProbability)
{
    // Two certain X errors back-to-back cancel (XOR), on every
    // backend — exercises the fusion path end to end.
    Circuit cancel;
    cancel.xError(1.0, {0});
    cancel.xError(1.0, {0});
    cancel.m(0);
    cancel.detector({1});
    for (unsigned lanes : {1u, kWideWordLanes}) {
        FrameSimulator sim(5, lanes);
        FrameBatch b = sim.sample(cancel);
        for (std::uint64_t w : b.detector(0))
            EXPECT_EQ(w, 0u);
    }

    // Two p = 0.5 flips fuse to an effective 0.5 flip rate.
    Circuit half;
    half.xError(0.5, {0});
    half.xError(0.5, {0});
    half.m(0);
    half.observable(0, {1});
    FrameSimulator sim(11, kWideWordLanes);
    std::uint64_t shots = 0;
    auto counts = sim.countObservableFlips(half, 1 << 16, &shots);
    const double rate = static_cast<double>(counts[0]) / shots;
    EXPECT_NEAR(rate, 0.5, 0.02);
}

} // namespace
} // namespace traq::sim
