/**
 * @file
 * Unit and property tests for PauliString algebra and Heisenberg
 * conjugation through Clifford circuits.
 */

#include <gtest/gtest.h>

#include "src/common/rng.hh"
#include "src/sim/circuit.hh"
#include "src/sim/conjugate.hh"
#include "src/sim/pauli.hh"

namespace traq::sim {
namespace {

TEST(Pauli, ParseAndPrint)
{
    PauliString p = PauliString::fromText("+XZIY");
    EXPECT_EQ(p.numQubits(), 4u);
    EXPECT_EQ(p.pauli(0), 'X');
    EXPECT_EQ(p.pauli(1), 'Z');
    EXPECT_EQ(p.pauli(2), 'I');
    EXPECT_EQ(p.pauli(3), 'Y');
    EXPECT_EQ(p.str(), "+XZIY");
    EXPECT_EQ(PauliString::fromText("-ZZ").str(), "-ZZ");
    EXPECT_EQ(PauliString::fromText("iX").phase(), 1);
    EXPECT_EQ(PauliString::fromText("-iX").phase(), 3);
}

TEST(Pauli, Weight)
{
    EXPECT_EQ(PauliString::fromText("XIZY").weight(), 3u);
    EXPECT_EQ(PauliString(5).weight(), 0u);
}

TEST(Pauli, SingleQubitProducts)
{
    // X * Y = i Z.
    PauliString x = PauliString::fromText("X");
    x.multiplyBy(PauliString::fromText("Y"));
    EXPECT_EQ(x.str(), "iZ");
    // Y * X = -i Z.
    PauliString y = PauliString::fromText("Y");
    y.multiplyBy(PauliString::fromText("X"));
    EXPECT_EQ(y.str(), "-iZ");
    // Z * X = i Y.
    PauliString z = PauliString::fromText("Z");
    z.multiplyBy(PauliString::fromText("X"));
    EXPECT_EQ(z.str(), "iY");
    // X * X = I.
    PauliString xx = PauliString::fromText("X");
    xx.multiplyBy(PauliString::fromText("X"));
    EXPECT_EQ(xx.str(), "+I");
}

TEST(Pauli, CommutationRules)
{
    auto X = PauliString::fromText("X");
    auto Y = PauliString::fromText("Y");
    auto Z = PauliString::fromText("Z");
    auto I = PauliString::fromText("I");
    EXPECT_FALSE(X.commutesWith(Y));
    EXPECT_FALSE(X.commutesWith(Z));
    EXPECT_FALSE(Y.commutesWith(Z));
    EXPECT_TRUE(X.commutesWith(X));
    EXPECT_TRUE(I.commutesWith(X));
    // Two anticommuting sites make the strings commute overall.
    EXPECT_TRUE(PauliString::fromText("XX").commutesWith(
        PauliString::fromText("ZZ")));
    EXPECT_FALSE(PauliString::fromText("XI").commutesWith(
        PauliString::fromText("ZI")));
}

/** Property: P*Q and Q*P agree up to the commutation sign. */
TEST(Pauli, ProductCommutatorProperty)
{
    traq::Rng rng(1234);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + rng.below(6);
        PauliString p(n), q(n);
        for (std::size_t i = 0; i < n; ++i) {
            p.setPauli(i, "IXYZ"[rng.below(4)]);
            q.setPauli(i, "IXYZ"[rng.below(4)]);
        }
        PauliString pq = p;
        pq.multiplyBy(q);
        PauliString qp = q;
        qp.multiplyBy(p);
        int expectDelta = p.commutesWith(q) ? 0 : 2;
        EXPECT_EQ(((pq.phase() - qp.phase()) % 4 + 4) % 4,
                  expectDelta);
        // Bit content must match regardless of order.
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(pq.pauli(i), qp.pauli(i));
    }
}

/** Property: multiplication is associative. */
TEST(Pauli, Associativity)
{
    traq::Rng rng(99);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 1 + rng.below(5);
        PauliString a(n), b(n), c(n);
        for (std::size_t i = 0; i < n; ++i) {
            a.setPauli(i, "IXYZ"[rng.below(4)]);
            b.setPauli(i, "IXYZ"[rng.below(4)]);
            c.setPauli(i, "IXYZ"[rng.below(4)]);
        }
        PauliString ab_c = a;
        ab_c.multiplyBy(b);
        ab_c.multiplyBy(c);
        PauliString bc = b;
        bc.multiplyBy(c);
        PauliString a_bc = a;
        a_bc.multiplyBy(bc);
        EXPECT_EQ(ab_c, a_bc);
    }
}

TEST(Conjugate, HadamardSwapsXZ)
{
    Circuit c;
    c.h(0);
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("X"), c).str(),
              "+Z");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("Z"), c).str(),
              "+X");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("Y"), c).str(),
              "-Y");
}

TEST(Conjugate, PhaseGate)
{
    Circuit c;
    c.s(0);
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("X"), c).str(),
              "+Y");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("Y"), c).str(),
              "-X");
    Circuit cd;
    cd.sdag(0);
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("X"), cd).str(),
              "-Y");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("Y"), cd).str(),
              "+X");
}

TEST(Conjugate, CxSpreadsPaulis)
{
    Circuit c;
    c.cx(0, 1);
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("XI"), c).str(),
              "+XX");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("IZ"), c).str(),
              "+ZZ");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("ZI"), c).str(),
              "+ZI");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("IX"), c).str(),
              "+IX");
    // Y on control: Y_c -> Y_c X_t.
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("YI"), c).str(),
              "+YX");
    // Y on target: Y_t -> Z_c Y_t.
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("IY"), c).str(),
              "+ZY");
}

TEST(Conjugate, CzSpreadsPaulis)
{
    Circuit c;
    c.cz(0, 1);
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("XI"), c).str(),
              "+XZ");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("IX"), c).str(),
              "+ZX");
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("ZI"), c).str(),
              "+ZI");
    // X_a X_b -> (X_a Z_b)(Z_a X_b) = Y_a Y_b.
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("XX"), c).str(),
              "+YY");
    // Y_a X_b -> -X_a Y_b (see tableau sign analysis).
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("YX"), c).str(),
              "-XY");
}

TEST(Conjugate, SwapMovesOperators)
{
    Circuit c;
    c.swapq(0, 1);
    EXPECT_EQ(conjugateByCircuit(PauliString::fromText("XZ"), c).str(),
              "+ZX");
}

/** Property: conjugation preserves commutation relations. */
TEST(Conjugate, PreservesCommutation)
{
    traq::Rng rng(2024);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 3;
        Circuit c;
        for (int g = 0; g < 12; ++g) {
            switch (rng.below(5)) {
              case 0:
                c.h(static_cast<std::uint32_t>(rng.below(n)));
                break;
              case 1:
                c.s(static_cast<std::uint32_t>(rng.below(n)));
                break;
              case 2: {
                std::uint32_t a =
                    static_cast<std::uint32_t>(rng.below(n));
                std::uint32_t b =
                    static_cast<std::uint32_t>(rng.below(n));
                if (a != b)
                    c.cx(a, b);
                break;
              }
              case 3: {
                std::uint32_t a =
                    static_cast<std::uint32_t>(rng.below(n));
                std::uint32_t b =
                    static_cast<std::uint32_t>(rng.below(n));
                if (a != b)
                    c.cz(a, b);
                break;
              }
              default:
                c.sdag(static_cast<std::uint32_t>(rng.below(n)));
                break;
            }
        }
        PauliString p(n), q(n);
        for (std::size_t i = 0; i < n; ++i) {
            p.setPauli(i, "IXYZ"[rng.below(4)]);
            q.setPauli(i, "IXYZ"[rng.below(4)]);
        }
        PauliString pc = conjugateByCircuit(p, c);
        PauliString qc = conjugateByCircuit(q, c);
        EXPECT_EQ(p.commutesWith(q), pc.commutesWith(qc));
    }
}

/** Property: conjugation is multiplicative: U(PQ)U' = (UPU')(UQU'). */
TEST(Conjugate, Multiplicative)
{
    traq::Rng rng(777);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 3;
        Circuit c;
        c.h(0);
        c.cx(0, 1);
        c.s(1);
        c.cz(1, 2);
        c.sdag(2);
        c.cx(2, 0);
        PauliString p(n), q(n);
        for (std::size_t i = 0; i < n; ++i) {
            p.setPauli(i, "IXYZ"[rng.below(4)]);
            q.setPauli(i, "IXYZ"[rng.below(4)]);
        }
        PauliString pq = p;
        pq.multiplyBy(q);
        PauliString lhs = conjugateByCircuit(pq, c);
        PauliString rhs = conjugateByCircuit(p, c);
        rhs.multiplyBy(conjugateByCircuit(q, c));
        EXPECT_EQ(lhs, rhs) << "trial " << trial;
    }
}

} // namespace
} // namespace traq::sim
