/**
 * @file
 * Tests for decoding-graph construction, the union-find decoder, and
 * the exact MWPM decoder on hand-built graphs and small experiments.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/decoder/decode_graph.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/union_find.hh"
#include "src/sim/dem.hh"

namespace traq::decoder {
namespace {

using codes::CircuitMeta;
using sim::DetectorErrorModel;
using sim::ErrorMechanism;

/** Hand-built DEM: a 1D repetition-code-like chain of n detectors. */
DetectorErrorModel
chainDem(int n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n;
    dem.numObservables = 1;
    // Boundary edge at node 0 carries the observable.
    ErrorMechanism left;
    left.probability = p;
    left.detectors = {0};
    left.observables = 1;
    dem.errors.push_back(left);
    for (int i = 0; i + 1 < n; ++i) {
        ErrorMechanism e;
        e.probability = p;
        e.detectors = {static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(i + 1)};
        dem.errors.push_back(e);
    }
    ErrorMechanism right;
    right.probability = p;
    right.detectors = {static_cast<std::uint32_t>(n - 1)};
    dem.errors.push_back(right);
    return dem;
}

CircuitMeta
chainMeta(int n)
{
    CircuitMeta meta;
    meta.detectorIsX.assign(n, 0);
    meta.observableIsX.assign(1, 0);
    return meta;
}

TEST(Graph, ChainStructure)
{
    auto dem = chainDem(4, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(4));
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.edges().size(), 5u);
    EXPECT_EQ(g.numUnsplittable(), 0u);
    EXPECT_EQ(g.numUndetectableLogical(), 0u);
    // Node 0 must touch 2 edges (boundary + chain).
    EXPECT_EQ(g.incident(0).size(), 2u);
    EXPECT_EQ(g.incident(1).size(), 2u);
}

TEST(Graph, MergesParallelMechanisms)
{
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 0;
    ErrorMechanism a;
    a.probability = 0.1;
    a.detectors = {0, 1};
    dem.errors.push_back(a);
    dem.errors.push_back(a);
    CircuitMeta meta;
    meta.detectorIsX.assign(2, 0);
    DecodingGraph g = DecodingGraph::fromDem(dem, meta);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_NEAR(g.edges()[0].probability, 0.1 * 0.9 + 0.9 * 0.1,
                1e-12);
}

TEST(Graph, SplitsByBasis)
{
    // A Y-like mechanism touching one X-basis and one Z-basis
    // detector becomes two boundary edges, one per basis subgraph.
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    ErrorMechanism y;
    y.probability = 0.05;
    y.detectors = {0, 1};
    y.observables = 1;
    dem.errors.push_back(y);
    CircuitMeta meta;
    meta.detectorIsX = {0, 1};   // detector 0 Z-basis, detector 1 X
    meta.observableIsX = {0};    // Z observable
    DecodingGraph g = DecodingGraph::fromDem(dem, meta);
    ASSERT_EQ(g.edges().size(), 2u);
    // The Z-basis part (detector 0) carries the observable.
    for (const auto &e : g.edges()) {
        if (e.v == 0)
            EXPECT_EQ(e.observables, 1u);
        else
            EXPECT_EQ(e.observables, 0u);
    }
}

TEST(Graph, CountsUndetectableLogical)
{
    DetectorErrorModel dem;
    dem.numDetectors = 1;
    dem.numObservables = 1;
    ErrorMechanism bad;
    bad.probability = 0.01;
    bad.detectors = {};
    bad.observables = 1;
    dem.errors.push_back(bad);
    CircuitMeta meta;
    meta.detectorIsX = {0};
    meta.observableIsX = {0};
    DecodingGraph g = DecodingGraph::fromDem(dem, meta);
    EXPECT_EQ(g.numUndetectableLogical(), 1u);
}

class ChainDecoders
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ChainDecoders, SingleErrorsCorrected)
{
    auto [n, which] = GetParam();
    auto dem = chainDem(n, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(n));
    UnionFindDecoder uf(g);
    MwpmDecoder mwpm(g);
    // Every single mechanism's syndrome must decode back to its own
    // observable effect.
    for (const auto &mech : dem.errors) {
        std::uint32_t predicted =
            which == 0 ? uf.decode(mech.detectors)
                       : mwpm.decode(mech.detectors);
        EXPECT_EQ(predicted, mech.observables);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChainDecoders,
    ::testing::Combine(::testing::Values(3, 5, 9, 15),
                       ::testing::Values(0, 1)));

TEST(UnionFind, EmptySyndromeIsTrivial)
{
    auto dem = chainDem(5, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(5));
    UnionFindDecoder uf(g);
    EXPECT_EQ(uf.decode({}), 0u);
}

TEST(UnionFind, PairPreferredOverDoubleBoundary)
{
    // Two adjacent defects in the middle of a long chain should be
    // matched together (no logical flip), not via two boundary exits.
    auto dem = chainDem(9, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(9));
    UnionFindDecoder uf(g);
    EXPECT_EQ(uf.decode({4, 5}), 0u);
}

TEST(UnionFind, EdgeDefectExitsBoundary)
{
    auto dem = chainDem(9, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(9));
    UnionFindDecoder uf(g);
    // Defect at node 0: nearest explanation is the left boundary
    // edge, which flips the observable.
    EXPECT_EQ(uf.decode({0}), 1u);
    // Defect at the right end: right boundary, no observable.
    EXPECT_EQ(uf.decode({8}), 0u);
}

TEST(Mwpm, MatchesBruteForceOnSmallGraphs)
{
    // Triangle-ish graph with distinct weights; enumerate all defect
    // subsets of size <= 4 and compare MWPM to exhaustive search over
    // edge subsets.
    DetectorErrorModel dem;
    dem.numDetectors = 4;
    dem.numObservables = 1;
    auto addE = [&](std::vector<std::uint32_t> d, double p,
                    std::uint32_t obs) {
        ErrorMechanism e;
        e.detectors = std::move(d);
        e.probability = p;
        e.observables = obs;
        dem.errors.push_back(e);
    };
    addE({0}, 0.03, 1);
    addE({0, 1}, 0.01, 0);
    addE({1, 2}, 0.02, 0);
    addE({2, 3}, 0.01, 1);
    addE({3}, 0.015, 0);
    addE({0, 2}, 0.004, 1);
    CircuitMeta meta;
    meta.detectorIsX.assign(4, 0);
    meta.observableIsX.assign(1, 0);
    DecodingGraph g = DecodingGraph::fromDem(dem, meta);
    MwpmDecoder mwpm(g);

    // Brute force: over all subsets of mechanisms, find min weight
    // subset reproducing the syndrome; compare observable parity.
    auto bruteForce = [&](const std::vector<std::uint32_t> &syn) {
        double bestW = 1e300;
        std::uint32_t bestObs = 0;
        const std::size_t m = dem.errors.size();
        for (std::size_t mask = 0; mask < (1u << m); ++mask) {
            std::vector<int> par(4, 0);
            double w = 0;
            std::uint32_t obs = 0;
            for (std::size_t i = 0; i < m; ++i) {
                if (!(mask & (1u << i)))
                    continue;
                const auto &e = dem.errors[i];
                for (auto d : e.detectors)
                    par[d] ^= 1;
                obs ^= e.observables;
                w += std::log((1 - e.probability) / e.probability);
            }
            std::vector<int> want(4, 0);
            for (auto d : syn)
                want[d] = 1;
            if (par == want && w < bestW) {
                bestW = w;
                bestObs = obs;
            }
        }
        return bestObs;
    };

    std::vector<std::vector<std::uint32_t>> syndromes = {
        {}, {0}, {1}, {3}, {0, 1}, {1, 2}, {0, 3}, {1, 3},
        {0, 1, 2, 3}, {0, 2}, {2, 3}, {0, 1, 3},
    };
    for (const auto &syn : syndromes) {
        if (syn.empty()) {
            EXPECT_EQ(mwpm.decode(syn), 0u);
            continue;
        }
        EXPECT_EQ(mwpm.decode(syn), bruteForce(syn))
            << "syndrome size " << syn.size();
    }
}

TEST(Mwpm, CapEnforced)
{
    auto dem = chainDem(30, 0.01);
    DecodingGraph g = DecodingGraph::fromDem(dem, chainMeta(30));
    MwpmDecoder mwpm(g, 4);
    std::vector<std::uint32_t> syn{0, 3, 7, 11, 15};
    EXPECT_FALSE(mwpm.canDecode(syn));
    EXPECT_THROW(mwpm.decode(syn), traq::FatalError);
    EXPECT_THROW(MwpmDecoder(g, 30), traq::FatalError);
}

TEST(DecoderOnRealCircuit, GraphIsCleanForMemory)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(1e-3));
    auto dem = sim::buildDem(e.circuit);
    DecodingGraph g = DecodingGraph::fromDem(dem, e.meta);
    EXPECT_EQ(g.numUnsplittable(), 0u);
    EXPECT_EQ(g.numUndetectableLogical(), 0u);
    EXPECT_GT(g.edges().size(), 50u);
}

TEST(DecoderOnRealCircuit, TransversalCnotHasHyperedgesButNoBlindSpots)
{
    // Transversal CNOTs genuinely create >2-detector mechanisms per
    // basis (an X error that propagates across patches fires Z
    // detectors in both) — that is the correlated-decoding structure
    // of Refs [17,18].  The graph builder decomposes them into pairs
    // linked as partners; what must never happen is an invisible
    // logical error.
    codes::TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 3;
    spec.noise = codes::NoiseParams::uniform(1e-3);
    auto e = codes::buildTransversalCnot(spec);
    auto dem = sim::buildDem(e.circuit);
    DecodingGraph g = DecodingGraph::fromDem(dem, e.meta);
    EXPECT_GT(g.numUnsplittable(), 0u);
    EXPECT_EQ(g.numUndetectableLogical(), 0u);
    // The decomposed halves remember each other.
    EXPECT_GT(g.numPartnerLinks(), 0u);
}

} // namespace
} // namespace traq::decoder
