/**
 * @file
 * Cross-validation of the two simulation engines: the fast bit-sliced
 * Pauli-frame sampler must agree statistically with the exact
 * Aaronson-Gottesman tableau simulator on detector flip rates, for
 * random Clifford circuits with random noise placements.  This is the
 * substrate-level guarantee behind every Monte-Carlo number in the
 * benches.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/sim/circuit.hh"
#include "src/sim/frame.hh"
#include "src/sim/tableau.hh"

namespace traq::sim {
namespace {

/**
 * Build a random small stabilizer circuit with noise and detectors:
 * a layer structure of reset, random Cliffords, noise, measure-reset
 * cycles, and detectors comparing consecutive rounds.
 */
Circuit
randomNoisyCircuit(std::uint64_t seed, double p)
{
    traq::Rng rng(seed);
    const std::uint32_t n = 4;
    Circuit c;
    for (std::uint32_t q = 0; q < n; ++q)
        c.r(q);
    // Two rounds of random Cliffords on qubits 0-2 with noise, each
    // followed by a parity extraction onto qubit 3 that is measured
    // *twice back to back* with noise in between.  Repeated
    // measurements of the same qubit are deterministically equal, so
    // the detector comparing them is valid even though the parity
    // value itself is random — exactly the kind of detector the
    // frame formalism must get right.
    for (int round = 0; round < 2; ++round) {
        for (int g = 0; g < 6; ++g) {
            std::uint32_t a = static_cast<std::uint32_t>(
                rng.below(3));
            std::uint32_t b = static_cast<std::uint32_t>(
                rng.below(3));
            switch (rng.below(3)) {
              case 0:
                if (a != b)
                    c.cx(a, b);
                break;
              case 1:
                if (a != b)
                    c.cz(a, b);
                break;
              default:
                c.h(a);
                break;
            }
        }
        c.depolarize1(p, {0, 1, 2});
        c.append(Gate::CX, {0, 3, 1, 3, 2, 3});
        c.m(3);
        c.xError(p, {3});
        c.depolarize1(p, {3});
        c.m(3);
        c.detector({1, 2});
        c.r(3);
    }
    return c;
}

class CrossValidation : public ::testing::TestWithParam<int>
{
};

TEST_P(CrossValidation, DetectorRatesAgree)
{
    const std::uint64_t seed = 9000 + GetParam();
    const double p = 0.05;
    Circuit c = randomNoisyCircuit(seed, p);

    // Frame sampler estimate.
    FrameSimulator fs(seed * 31 + 1);
    std::uint64_t frameFlips = 0, frameShots = 0;
    for (int i = 0; i < 400; ++i) {
        auto batch = fs.sample(c);
        frameFlips += __builtin_popcountll(batch.detectors[1]);
        frameShots += 64;
    }

    // Tableau Monte Carlo: evaluate the detector from raw records.
    std::uint64_t tabFlips = 0, tabShots = 3000;
    for (std::uint64_t s = 0; s < tabShots; ++s) {
        TableauSim sim(c.numQubits(), seed * 77 + s);
        auto rec = sim.run(c);
        bool det = rec[rec.size() - 1] ^ rec[rec.size() - 2];
        tabFlips += det ? 1 : 0;
    }

    auto pf = wilson(frameFlips, frameShots, 3.0);
    auto pt = wilson(tabFlips, tabShots, 3.0);
    // Three-sigma intervals must overlap.
    EXPECT_LT(pf.lo, pt.hi) << "frame " << pf.mean << " vs tableau "
                            << pt.mean;
    EXPECT_LT(pt.lo, pf.hi) << "frame " << pf.mean << " vs tableau "
                            << pt.mean;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Range(0, 8));

TEST(CrossValidationExact, NoiselessAgreementOnRecordCount)
{
    Circuit c = randomNoisyCircuit(123, 0.0);
    TableauSim sim(c.numQubits(), 5);
    auto rec = sim.run(c);
    EXPECT_EQ(rec.size(), c.numMeasurements());
    FrameSimulator fs(5);
    auto batch = fs.sample(c);
    EXPECT_EQ(batch.detectors.size(), c.numDetectors());
    EXPECT_EQ(batch.detectors[0], 0u);
}

} // namespace
} // namespace traq::sim
