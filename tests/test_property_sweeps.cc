/**
 * @file
 * Parameterized property sweeps (TEST_P) over the analytic stack:
 * closed-form identities, inversions and monotonicities that must
 * hold across the whole parameter space, not just at the paper's
 * operating point.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/estimator/shor.hh"
#include "src/gadgets/adder.hh"
#include "src/gadgets/factory.hh"
#include "src/gadgets/lookup.hh"
#include "src/model/error_model.hh"

namespace traq {
namespace {

// ---------------------------------------------------------------
// Error model identities over a (d, x) grid.
// ---------------------------------------------------------------

class ErrorModelGrid
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(ErrorModelGrid, Eq4ClosedFormIdentity)
{
    auto [d, x] = GetParam();
    model::ErrorModelParams p;
    double lhs = model::cnotLogicalError(d, x, p) * x / 2.0;
    double rhs = p.prefactorC *
                 std::pow((1.0 + p.alpha * x) / p.lambda(),
                          (d + 1) / 2.0);
    EXPECT_NEAR(lhs / rhs, 1.0, 1e-12);
}

TEST_P(ErrorModelGrid, DistanceInversionTight)
{
    auto [d, x] = GetParam();
    model::ErrorModelParams p;
    double target = model::cnotLogicalError(d, x, p);
    // Solving for this exact target must return exactly d.
    EXPECT_EQ(model::requiredDistanceCnot(target, x, p), d);
}

TEST_P(ErrorModelGrid, SuppressionPerDistanceStep)
{
    auto [d, x] = GetParam();
    model::ErrorModelParams p;
    double ratio = model::cnotLogicalError(d, x, p) /
                   model::cnotLogicalError(d + 2, x, p);
    // One distance step buys Lambda_eff = Lambda / (1 + alpha x).
    EXPECT_NEAR(ratio, p.lambdaEff(x), 1e-9 * ratio);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ErrorModelGrid,
    ::testing::Combine(::testing::Values(3, 7, 13, 21, 27, 35),
                       ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0)));

// ---------------------------------------------------------------
// Adder design properties over an (nBits, rsep) grid.
// ---------------------------------------------------------------

class AdderGrid
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(AdderGrid, StructuralInvariants)
{
    auto [nBits, rsep] = GetParam();
    gadgets::AdderSpec spec;
    spec.nBits = nBits;
    spec.rsep = rsep;
    auto r = gadgets::designAdder(spec);
    // Segments cover the register.
    EXPECT_GE(r.segments * rsep, nBits);
    EXPECT_LT((r.segments - 1) * rsep, nBits);
    // One CCZ per bit including runway bits.
    EXPECT_DOUBLE_EQ(r.cczPerAddition, r.bitsWithRunways);
    EXPECT_EQ(r.bitsWithRunways, nBits + r.segments * spec.rpad);
    // Reaction-limited time: independent of nBits at fixed rsep.
    EXPECT_NEAR(r.timePerAddition,
                2.0 * (rsep + spec.rpad) * spec.kappaAdd * 1e-3,
                1e-9);
    // Space scales with segment count.
    EXPECT_DOUBLE_EQ(r.activeLogicalQubits, 17.0 * r.segments);
}

TEST_P(AdderGrid, ErrorScalesWithBits)
{
    auto [nBits, rsep] = GetParam();
    gadgets::AdderSpec a;
    a.nBits = nBits;
    a.rsep = rsep;
    gadgets::AdderSpec b = a;
    b.nBits = nBits * 2;
    auto ra = gadgets::designAdder(a);
    auto rb = gadgets::designAdder(b);
    EXPECT_GT(rb.logicalErrorPerAddition,
              ra.logicalErrorPerAddition * 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdderGrid,
    ::testing::Combine(::testing::Values(256, 1024, 2048, 4096),
                       ::testing::Values(32, 96, 256)));

// ---------------------------------------------------------------
// Lookup design properties over address sizes.
// ---------------------------------------------------------------

class LookupSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(LookupSizes, CountFormulas)
{
    int m = GetParam();
    gadgets::LookupSpec spec;
    spec.addressBits = m;
    auto r = gadgets::designLookup(spec);
    EXPECT_EQ(r.entries, 1ULL << m);
    EXPECT_DOUBLE_EQ(r.cczPerLookup,
                     std::pow(2.0, m) - m - 1);
    EXPECT_NEAR(r.unlookupCcz, std::pow(2.0, m / 2.0), 1e-9);
    // Iteration dominates the clock for large tables.
    if (m >= 7)
        EXPECT_GT(r.iterationTime, r.fanoutTime);
}

TEST_P(LookupSizes, TimeMonotoneInAddressBits)
{
    int m = GetParam();
    gadgets::LookupSpec a, b;
    a.addressBits = m;
    b.addressBits = m + 1;
    EXPECT_GT(gadgets::designLookup(b).timePerLookup,
              gadgets::designLookup(a).timePerLookup);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LookupSizes,
                         ::testing::Values(3, 5, 7, 8, 10, 12));

// ---------------------------------------------------------------
// Factory designs across CCZ error targets.
// ---------------------------------------------------------------

class FactoryTargets : public ::testing::TestWithParam<double>
{
};

TEST_P(FactoryTargets, MeetsItsBudget)
{
    double target = GetParam();
    gadgets::FactorySpec spec;
    spec.targetCczError = target;
    auto r = gadgets::designFactory(spec);
    EXPECT_LE(r.cczError, target * 1.05);
    EXPECT_GE(r.distance, 3);
    // Below ~1e-12 per CCZ, direct cultivation supply becomes
    // unbalanced (one would stack a distillation round instead);
    // the design must flag that rather than silently oversize.
    if (target >= 1e-12)
        EXPECT_TRUE(r.cultivationFits);
    else
        EXPECT_FALSE(r.cultivationFits);
    EXPECT_GT(r.throughput, 0.0);
    // Footprint width is always 12d.
    EXPECT_EQ(r.footprintWidthSites, 12 * r.distance);
}

INSTANTIATE_TEST_SUITE_P(Targets, FactoryTargets,
                         ::testing::Values(1e-8, 1e-9, 1e-10,
                                           1.6e-11, 1e-12, 1e-13));

// ---------------------------------------------------------------
// Factoring estimates across modulus sizes.
// ---------------------------------------------------------------

class FactoringSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(FactoringSizes, CostsGrowWithModulus)
{
    int n = GetParam();
    est::FactoringSpec small, large;
    small.nBits = n;
    large.nBits = n * 2;
    auto rs = est::estimateFactoring(small);
    auto rl = est::estimateFactoring(large);
    // Lookup-additions grow ~quadratically in n.
    EXPECT_NEAR(rl.lookupAdditions / rs.lookupAdditions, 4.0, 0.3);
    EXPECT_GT(rl.cczTotal, rs.cczTotal * 4.0);
    EXPECT_GT(rl.physicalQubits, rs.physicalQubits);
    EXPECT_GT(rl.totalSeconds, rs.totalSeconds);
}

TEST_P(FactoringSizes, VolumeIsQubitsTimesSeconds)
{
    int n = GetParam();
    est::FactoringSpec s;
    s.nBits = n;
    auto r = est::estimateFactoring(s);
    EXPECT_NEAR(r.spacetimeVolume,
                r.physicalQubits * r.totalSeconds,
                1e-6 * r.spacetimeVolume);
    EXPECT_NEAR(r.days, r.totalSeconds / 86400.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactoringSizes,
                         ::testing::Values(512, 1024, 2048, 3072));

} // namespace
} // namespace traq
