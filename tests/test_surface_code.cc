/**
 * @file
 * Tests for the rotated surface code layout: stabilizer counts,
 * commutation, logical operators, CX-schedule conflict freedom, and
 * cross-validation against the generic CSS machinery.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/codes/css.hh"
#include "src/common/assert.hh"
#include "src/codes/surface_code.hh"
#include "src/sim/pauli.hh"

namespace traq::codes {
namespace {

class SurfaceCodeP : public ::testing::TestWithParam<int>
{
};

TEST_P(SurfaceCodeP, Counts)
{
    const int d = GetParam();
    SurfaceCode sc(d);
    EXPECT_EQ(sc.numData(), static_cast<std::uint32_t>(d * d));
    EXPECT_EQ(sc.numAncilla(), static_cast<std::uint32_t>(d * d - 1));
    EXPECT_EQ(sc.plaquettes().size(),
              static_cast<std::size_t>(d * d - 1));
    // Equal numbers of X and Z plaquettes.
    int nx = 0, nz = 0;
    for (const auto &p : sc.plaquettes())
        (p.isX ? nx : nz)++;
    EXPECT_EQ(nx, (d * d - 1) / 2);
    EXPECT_EQ(nz, (d * d - 1) / 2);
}

TEST_P(SurfaceCodeP, PlaquetteWeights)
{
    SurfaceCode sc(GetParam());
    for (const auto &p : sc.plaquettes()) {
        EXPECT_TRUE(p.support.size() == 2 || p.support.size() == 4);
        // Schedule entries match the support set.
        std::set<int> sched;
        for (int s : p.schedule)
            if (s >= 0)
                sched.insert(s);
        EXPECT_EQ(sched.size(), p.support.size());
    }
}

TEST_P(SurfaceCodeP, StabilizersCommute)
{
    SurfaceCode sc(GetParam());
    const auto &ps = sc.plaquettes();
    auto toPauli = [&](const Plaquette &p) {
        sim::PauliString s(sc.numData());
        for (std::uint32_t q : p.support)
            s.setPauli(q, p.isX ? 'X' : 'Z');
        return s;
    };
    for (std::size_t i = 0; i < ps.size(); ++i)
        for (std::size_t j = i + 1; j < ps.size(); ++j)
            EXPECT_TRUE(toPauli(ps[i]).commutesWith(toPauli(ps[j])))
                << "plaquettes " << i << "," << j;
}

TEST_P(SurfaceCodeP, LogicalsCommuteWithStabilizersAnticommuteEachOther)
{
    SurfaceCode sc(GetParam());
    sim::PauliString lx(sc.numData()), lz(sc.numData());
    for (std::uint32_t q : sc.logicalX())
        lx.setPauli(q, 'X');
    for (std::uint32_t q : sc.logicalZ())
        lz.setPauli(q, 'Z');
    for (const auto &p : sc.plaquettes()) {
        sim::PauliString s(sc.numData());
        for (std::uint32_t q : p.support)
            s.setPauli(q, p.isX ? 'X' : 'Z');
        EXPECT_TRUE(lx.commutesWith(s));
        EXPECT_TRUE(lz.commutesWith(s));
    }
    EXPECT_FALSE(lx.commutesWith(lz));
    EXPECT_EQ(lx.weight(), static_cast<std::size_t>(sc.distance()));
    EXPECT_EQ(lz.weight(), static_cast<std::size_t>(sc.distance()));
}

TEST_P(SurfaceCodeP, ScheduleConflictFree)
{
    SurfaceCode sc(GetParam());
    for (int layer = 0; layer < 4; ++layer) {
        std::set<int> used;
        for (const auto &p : sc.plaquettes()) {
            int dq = p.schedule[layer];
            if (dq < 0)
                continue;
            EXPECT_TRUE(used.insert(dq).second)
                << "data qubit " << dq << " reused in layer "
                << layer;
        }
    }
}

TEST_P(SurfaceCodeP, CssParametersMatch)
{
    const int d = GetParam();
    CssCode css = makeSurfaceCodeCss(d);
    EXPECT_EQ(css.numQubits(), static_cast<std::size_t>(d * d));
    EXPECT_EQ(css.numLogical(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Distances, SurfaceCodeP,
                         ::testing::Values(3, 5, 7, 9));

TEST(SurfaceCodeDistance, BruteForceD3)
{
    CssCode css = makeSurfaceCodeCss(3);
    EXPECT_EQ(css.bruteForceDistance(), 3u);
}

TEST(SurfaceCode, RejectsBadDistance)
{
    EXPECT_THROW(SurfaceCode(2), traq::FatalError);
    EXPECT_THROW(SurfaceCode(4), traq::FatalError);
    EXPECT_THROW(SurfaceCode(1), traq::FatalError);
}

TEST(SurfaceCode, IndexingLayout)
{
    SurfaceCode sc(5);
    EXPECT_EQ(sc.dataIndex(0, 0), 0u);
    EXPECT_EQ(sc.dataIndex(1, 0), 5u);
    EXPECT_EQ(sc.dataIndex(4, 4), 24u);
    EXPECT_EQ(sc.ancillaIndex(0), 25u);
    EXPECT_EQ(sc.numQubits(), 49u);
}

TEST(SurfaceCode, EveryDataQubitCovered)
{
    SurfaceCode sc(5);
    // Each data qubit must appear in at least one X and one Z
    // plaquette (otherwise errors there are undetectable).
    std::vector<int> xCover(sc.numData(), 0), zCover(sc.numData(), 0);
    for (const auto &p : sc.plaquettes())
        for (std::uint32_t q : p.support)
            (p.isX ? xCover : zCover)[q]++;
    for (std::uint32_t q = 0; q < sc.numData(); ++q) {
        EXPECT_GE(xCover[q], 1) << "qubit " << q;
        EXPECT_GE(zCover[q], 1) << "qubit " << q;
    }
}

} // namespace
} // namespace traq::codes
