/**
 * @file
 * Runtime CPU dispatch, transpose extraction, decode memoization and
 * MWPM reach-cache invariants.
 *
 * The standing contract of every throughput knob in this codebase is
 * bit-identity: dispatch levels, the transpose extractor, the
 * per-batch decode memo and the Dijkstra reach cache may only change
 * *when* work happens, never what comes out.  These tests lock that
 * in — sampler planes across dispatch levels, CSR blocks against the
 * scalar reference extractor, decodeBatchSorted against per-shot
 * decoding for every registered kind, and engine results across memo
 * / cache / dispatch / thread-count settings — plus the loud-failure
 * contract of the TRAQ_CPU_DISPATCH / TRAQ_DECODE_MEMO /
 * TRAQ_REACH_CACHE environment variables.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/word.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/noise/noise.hh"
#include "src/sim/frame.hh"
#include "src/sim/frame_kernels.hh"

namespace {

using namespace traq;

/** Save/restore one environment variable around a test. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        if (const char *v = std::getenv(name))
            saved_ = v;
        else
            wasSet_ = false;
    }
    ~EnvGuard()
    {
        if (wasSet_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    std::string saved_;
    bool wasSet_ = true;
};

/** Dispatch levels supported on this build/CPU (always >= 1). */
std::vector<CpuDispatch>
supportedLevels()
{
    std::vector<CpuDispatch> levels{CpuDispatch::Baseline};
    if (cpuDispatchSupported(CpuDispatch::Avx2))
        levels.push_back(CpuDispatch::Avx2);
    if (cpuDispatchSupported(CpuDispatch::Avx512))
        levels.push_back(CpuDispatch::Avx512);
    return levels;
}

/** Memory experiment with atom-loss noise (herald-emitting). */
sim::Circuit
heraldedMemoryCircuit(int d, double p, double lossP)
{
    codes::SurfaceCode sc(d);
    auto e =
        codes::buildMemory(sc, 'Z', d, codes::NoiseParams::uniform(p));
    noise::NoiseSpec spec;
    spec.setFlat("noise.atom-loss.p", lossP);
    return noise::NoiseModel::fromSpec(spec).compile(e.circuit);
}

void
expectBlocksEqual(const sim::SyndromeBlock &a,
                  const sim::SyndromeBlock &b, const char *what)
{
    EXPECT_EQ(a.offsets, b.offsets) << what;
    EXPECT_EQ(a.defects, b.defects) << what;
    EXPECT_EQ(a.observables, b.observables) << what;
    EXPECT_EQ(a.heraldOffsets, b.heraldOffsets) << what;
    EXPECT_EQ(a.heraldIds, b.heraldIds) << what;
}

TEST(CpuDispatch, NamesSupportAndResolution)
{
    EnvGuard guard("TRAQ_CPU_DISPATCH");
    unsetenv("TRAQ_CPU_DISPATCH");

    EXPECT_TRUE(cpuDispatchSupported(CpuDispatch::Baseline));
    EXPECT_TRUE(cpuDispatchSupported(CpuDispatch::Auto));
    EXPECT_STREQ(cpuDispatchName(CpuDispatch::Auto), "auto");
    EXPECT_STREQ(cpuDispatchName(CpuDispatch::Baseline), "baseline");
    EXPECT_STREQ(cpuDispatchName(CpuDispatch::Avx2), "avx2");
    EXPECT_STREQ(cpuDispatchName(CpuDispatch::Avx512), "avx512");

    // A concrete supported request resolves to itself; Auto resolves
    // to a concrete supported level (never Auto back).
    EXPECT_EQ(resolveCpuDispatch(CpuDispatch::Baseline),
              CpuDispatch::Baseline);
    const CpuDispatch best = resolveCpuDispatch(CpuDispatch::Auto);
    EXPECT_NE(best, CpuDispatch::Auto);
    EXPECT_TRUE(cpuDispatchSupported(best));

    // An unsupported concrete request refuses loudly instead of
    // silently degrading.
    if (!cpuDispatchSupported(CpuDispatch::Avx512))
        EXPECT_THROW(resolveCpuDispatch(CpuDispatch::Avx512),
                     FatalError);
    if (!cpuDispatchSupported(CpuDispatch::Avx2))
        EXPECT_THROW(resolveCpuDispatch(CpuDispatch::Avx2),
                     FatalError);
}

TEST(CpuDispatch, EnvOverridesAutoAndFailsLoudly)
{
    EnvGuard guard("TRAQ_CPU_DISPATCH");

    ASSERT_EQ(setenv("TRAQ_CPU_DISPATCH", "baseline", 1), 0);
    EXPECT_EQ(resolveCpuDispatch(CpuDispatch::Auto),
              CpuDispatch::Baseline);
    // ...but never overrides an explicit concrete request.
    const CpuDispatch best = [] {
        EnvGuard inner("TRAQ_CPU_DISPATCH");
        unsetenv("TRAQ_CPU_DISPATCH");
        return resolveCpuDispatch(CpuDispatch::Auto);
    }();
    if (best != CpuDispatch::Baseline)
        EXPECT_EQ(resolveCpuDispatch(best), best);

    // Empty and "auto" mean best-supported, same as unset.
    ASSERT_EQ(setenv("TRAQ_CPU_DISPATCH", "", 1), 0);
    EXPECT_EQ(resolveCpuDispatch(CpuDispatch::Auto), best);
    ASSERT_EQ(setenv("TRAQ_CPU_DISPATCH", "auto", 1), 0);
    EXPECT_EQ(resolveCpuDispatch(CpuDispatch::Auto), best);

    // Requesting a level by name either yields it or throws when
    // this machine cannot run it — never a silent substitute.
    for (const char *name : {"avx2", "avx512", "avx512f"}) {
        ASSERT_EQ(setenv("TRAQ_CPU_DISPATCH", name, 1), 0);
        const CpuDispatch want = name[3] == '2' ? CpuDispatch::Avx2
                                                : CpuDispatch::Avx512;
        if (cpuDispatchSupported(want))
            EXPECT_EQ(resolveCpuDispatch(CpuDispatch::Auto), want);
        else
            EXPECT_THROW(resolveCpuDispatch(CpuDispatch::Auto),
                         FatalError);
    }

    ASSERT_EQ(setenv("TRAQ_CPU_DISPATCH", "sse9", 1), 0);
    EXPECT_THROW(resolveCpuDispatch(CpuDispatch::Auto), FatalError);
}

TEST(CpuDispatch, SamplerPlanesBitIdenticalAcrossLevels)
{
    const sim::Circuit circuit =
        heraldedMemoryCircuit(3, 0.01, 0.02);
    for (unsigned lanes : {1u, 3u, 8u}) {
        sim::FrameSimulator ref(99, lanes, CpuDispatch::Baseline);
        sim::FrameBatch refBatch;
        ref.sampleInto(circuit, refBatch);
        for (CpuDispatch level : supportedLevels()) {
            sim::FrameSimulator fs(99, lanes, level);
            sim::FrameBatch batch;
            fs.sampleInto(circuit, batch);
            const std::string what =
                std::string(cpuDispatchName(level)) + " lanes=" +
                std::to_string(lanes);
            EXPECT_EQ(batch.detectors, refBatch.detectors) << what;
            EXPECT_EQ(batch.observables, refBatch.observables)
                << what;
            EXPECT_EQ(batch.heralds, refBatch.heralds) << what;
        }
    }
}

TEST(CpuDispatch, TransposeExtractionMatchesScalarReference)
{
    const sim::Circuit circuit =
        heraldedMemoryCircuit(3, 0.01, 0.02);
    for (unsigned lanes : {1u, 3u, 8u}) {
        sim::FrameSimulator fs(7, lanes, CpuDispatch::Baseline);
        sim::FrameBatch batch;
        fs.sampleInto(circuit, batch);
        // Full mask, then a ragged partial mask (dead tail shots,
        // holes in the middle).
        std::vector<std::uint64_t> full(lanes, ~0ULL);
        std::vector<std::uint64_t> partial(lanes);
        for (unsigned l = 0; l < lanes; ++l)
            partial[l] = 0x5a5a00ff0f0f33ccULL >> l;
        for (const auto &mask : {full, partial}) {
            sim::SyndromeBlock ref;
            sim::extractSyndromeBlockScalar(batch, mask, ref);
            for (CpuDispatch level : supportedLevels()) {
                sim::SyndromeBlock got;
                sim::kernels::frameKernels(level).extractBlock(
                    batch, mask, got);
                expectBlocksEqual(got, ref,
                                  cpuDispatchName(level));
            }
        }
    }
}

TEST(CpuDispatch, TransposeHandlesZeroPlanesAndHandMadeBits)
{
    // Hand-built batch: 2 lanes, 70 detector planes (tests the
    // all-zero tile fast path and the 64-crossing plane ids), 2
    // observables, 3 herald channels.
    sim::FrameBatch batch;
    batch.lanes = 2;
    batch.detectors.assign(70 * 2, 0);
    batch.observables.assign(2 * 2, 0);
    batch.heralds.assign(3 * 2, 0);
    auto set = [&](std::vector<std::uint64_t> &planes,
                   std::size_t plane, std::uint64_t shot) {
        planes[plane * 2 + shot / 64] |= 1ULL << (shot % 64);
    };
    set(batch.detectors, 0, 0);
    set(batch.detectors, 0, 63);
    set(batch.detectors, 1, 64);
    set(batch.detectors, 65, 127);
    set(batch.detectors, 69, 1);
    set(batch.detectors, 69, 127);
    set(batch.observables, 1, 1);
    set(batch.observables, 0, 127);
    set(batch.heralds, 2, 0);
    set(batch.heralds, 0, 90);

    const std::vector<std::uint64_t> mask = {~0ULL,
                                             ~(1ULL << 63)};
    sim::SyndromeBlock ref;
    sim::extractSyndromeBlockScalar(batch, mask, ref);
    // Spot-check the reference itself before locking others to it.
    EXPECT_EQ(ref.syndrome(0).size(), 1u);
    EXPECT_EQ(ref.syndrome(0)[0], 0u);
    EXPECT_EQ(ref.syndrome(1).size(), 1u);
    EXPECT_EQ(ref.syndrome(1)[0], 69u);
    ASSERT_EQ(ref.syndrome(127).size(), 0u);  // masked out
    EXPECT_EQ(ref.heralds(90).size(), 1u);
    EXPECT_EQ(ref.heralds(90)[0], 0u);
    EXPECT_EQ(ref.observables[1], 2u);

    for (CpuDispatch level : supportedLevels()) {
        sim::SyndromeBlock got;
        sim::kernels::frameKernels(level).extractBlock(batch, mask,
                                                       got);
        expectBlocksEqual(got, ref, cpuDispatchName(level));
    }
}

TEST(DecodeMemoEnv, TriStateAndLoudness)
{
    EnvGuard guard("TRAQ_DECODE_MEMO");
    unsetenv("TRAQ_DECODE_MEMO");
    EXPECT_TRUE(decoder::resolveDecodeMemo(-1));  // default ON
    EXPECT_FALSE(decoder::resolveDecodeMemo(0));
    EXPECT_TRUE(decoder::resolveDecodeMemo(1));

    ASSERT_EQ(setenv("TRAQ_DECODE_MEMO", "off", 1), 0);
    EXPECT_FALSE(decoder::resolveDecodeMemo(-1));
    EXPECT_TRUE(decoder::resolveDecodeMemo(1));  // forced wins
    ASSERT_EQ(setenv("TRAQ_DECODE_MEMO", "1", 1), 0);
    EXPECT_TRUE(decoder::resolveDecodeMemo(-1));
    ASSERT_EQ(setenv("TRAQ_DECODE_MEMO", "", 1), 0);
    EXPECT_TRUE(decoder::resolveDecodeMemo(-1));  // empty = default
    ASSERT_EQ(setenv("TRAQ_DECODE_MEMO", "maybe", 1), 0);
    EXPECT_THROW(decoder::resolveDecodeMemo(-1), FatalError);
}

TEST(ReachCacheEnv, TriStateAndLoudness)
{
    EnvGuard guard("TRAQ_REACH_CACHE");
    unsetenv("TRAQ_REACH_CACHE");
    EXPECT_TRUE(decoder::resolveReachCache(-1));  // default ON
    EXPECT_FALSE(decoder::resolveReachCache(0));
    EXPECT_TRUE(decoder::resolveReachCache(1));

    ASSERT_EQ(setenv("TRAQ_REACH_CACHE", "false", 1), 0);
    EXPECT_FALSE(decoder::resolveReachCache(-1));
    ASSERT_EQ(setenv("TRAQ_REACH_CACHE", "on", 1), 0);
    EXPECT_TRUE(decoder::resolveReachCache(-1));
    ASSERT_EQ(setenv("TRAQ_REACH_CACHE", "2", 1), 0);
    EXPECT_THROW(decoder::resolveReachCache(-1), FatalError);
}

/** d=3 memory syndromes packed into CSR, capped at `maxDefects` so
 *  even the bare MWPM kind accepts every row. */
struct SampledBatch
{
    std::vector<std::uint32_t> offsets{0};
    std::vector<std::uint32_t> defects;

    explicit SampledBatch(std::size_t maxDefects)
    {
        codes::SurfaceCode sc(3);
        exp = std::make_unique<codes::Experiment>(codes::buildMemory(
            sc, 'Z', 3, codes::NoiseParams::uniform(0.004)));
        const auto &e = *exp;
        sim::FrameSimulator fs(21, 8, CpuDispatch::Baseline);
        sim::FrameBatch batch;
        sim::SyndromeBlock block;
        const std::vector<std::uint64_t> live(8, ~0ULL);
        for (int rep = 0; rep < 2; ++rep) {
            fs.sampleInto(e.circuit, batch);
            sim::extractSyndromeBlock(batch, live, block);
            for (std::uint64_t s = 0; s < block.shots(); ++s) {
                const auto syn = block.syndrome(s);
                if (syn.size() > maxDefects)
                    continue;
                defects.insert(defects.end(), syn.begin(),
                               syn.end());
                offsets.push_back(static_cast<std::uint32_t>(
                    defects.size()));
            }
        }
        graph = std::make_unique<decoder::DecodeGraph>(
            decoder::DecodeGraph::build(e));
    }

    decoder::SyndromeBatch view() const
    {
        decoder::SyndromeBatch b;
        b.offsets = offsets;
        b.defects = defects;
        return b;
    }
    std::uint64_t shots() const { return offsets.size() - 1; }

    std::unique_ptr<codes::Experiment> exp;
    std::unique_ptr<decoder::DecodeGraph> graph;
};

TEST(DecodeBatchSorted, MemoOnOffBitIdenticalForAllKinds)
{
    const SampledBatch fixture(12);
    const auto view = fixture.view();
    const std::uint64_t n = fixture.shots();
    ASSERT_GT(n, 128u);

    for (decoder::DecoderKind kind :
         decoder::registeredDecoderKinds()) {
        decoder::DecoderConfig cfg;
        cfg.predecode = 1;  // exercise peel-counter replay too
        auto decPlain =
            decoder::makeDecoder(kind, *fixture.graph, cfg);
        auto decOff =
            decoder::makeDecoder(kind, *fixture.graph, cfg);
        auto decOn =
            decoder::makeDecoder(kind, *fixture.graph, cfg);
        const char *name = decoder::decoderKindName(kind);

        // Reference: straight per-shot decoding in shot order.
        std::vector<std::uint32_t> ref(n);
        for (std::uint64_t s = 0; s < n; ++s)
            ref[s] = decPlain->decodeSpan(view.syndrome(s));

        decoder::BatchDecodeScratch scratch;
        std::vector<std::uint32_t> outOff(n), outOn(n);
        const auto stOff = decoder::decodeBatchSorted(
            *decOff, view, outOff, scratch, false);
        const auto stOn = decoder::decodeBatchSorted(
            *decOn, view, outOn, scratch, true);

        EXPECT_EQ(outOff, ref) << name;
        EXPECT_EQ(outOn, ref) << name;
        EXPECT_EQ(stOff.memoHits, 0u) << name;
        EXPECT_GT(stOn.memoHits, 0u) << name;
        // Counter-delta replay: decoder counters + replayed deltas
        // agree with the non-memo decode exactly.
        EXPECT_EQ(decOn->fallbacks() + stOn.replayedFallbacks,
                  decOff->fallbacks())
            << name;
        EXPECT_EQ(decOn->predecodedPairs() + stOn.replayedPeels,
                  decOff->predecodedPairs())
            << name;
    }
}

TEST(ReachCache, OnOffBitIdenticalForAllKinds)
{
    const SampledBatch fixture(12);
    const auto view = fixture.view();
    const std::uint64_t n = fixture.shots();

    for (decoder::DecoderKind kind :
         decoder::registeredDecoderKinds()) {
        decoder::DecoderConfig on, off;
        on.reachCache = 1;
        off.reachCache = 0;
        auto decOn = decoder::makeDecoder(kind, *fixture.graph, on);
        auto decOff =
            decoder::makeDecoder(kind, *fixture.graph, off);
        for (std::uint64_t s = 0; s < n; ++s)
            EXPECT_EQ(decOn->decodeSpan(view.syndrome(s)),
                      decOff->decodeSpan(view.syndrome(s)))
                << decoder::decoderKindName(kind) << " shot " << s;
    }
}

/** Engine results that must be invariant under throughput knobs. */
struct EngineSignature
{
    std::uint64_t anyHits, fallbacks, peels, heralded;
    std::vector<std::uint64_t> perObs;

    explicit EngineSignature(const decoder::McResult &r)
        : anyHits(r.anyObservable.hits), fallbacks(r.mwpmFallbacks),
          peels(r.predecodedPairs), heralded(r.heraldedShots)
    {
        for (const auto &p : r.perObservable)
            perObs.push_back(p.hits);
    }
    bool operator==(const EngineSignature &) const = default;
};

TEST(Engine, MemoThreadAndDispatchInvarianceBatchPath)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.003));
    decoder::McOptions opts;
    opts.shots = 6000;
    opts.seed = 77;
    opts.predecode = 1;

    opts.decodeMemo = 1;
    opts.threads = 1;
    decoder::MonteCarloEngine engine(e, opts);
    const auto base = engine.run(opts);
    const EngineSignature want(base);
    EXPECT_GT(base.memoHits, 0u);
    EXPECT_STRNE(base.cpuDispatch, "");

    for (int memo : {0, 1}) {
        for (unsigned threads : {1u, 2u, 4u}) {
            auto o = opts;
            o.decodeMemo = memo;
            o.threads = threads;
            const auto res = engine.run(o);
            EXPECT_EQ(EngineSignature(res), want)
                << "memo=" << memo << " threads=" << threads;
            if (!memo)
                EXPECT_EQ(res.memoHits, 0u);
        }
    }

    // Reach cache off and baseline dispatch: same answers again.
    auto o = opts;
    o.reachCache = 0;
    EXPECT_EQ(EngineSignature(engine.run(o)), want);
    o = opts;
    o.cpuDispatch = CpuDispatch::Baseline;
    const auto resBase = engine.run(o);
    EXPECT_EQ(EngineSignature(resBase), want);
    EXPECT_STREQ(resBase.cpuDispatch, "baseline");
}

TEST(Engine, MemoInvarianceErasurePath)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.002));
    decoder::McOptions opts;
    opts.shots = 4096;
    opts.seed = 31;
    opts.noiseSpec.setFlat("noise.atom-loss.p", 0.01);
    ASSERT_TRUE(opts.erasureAware);

    opts.decodeMemo = 1;
    opts.threads = 1;
    decoder::MonteCarloEngine engine(e, opts);
    const auto base = engine.run(opts);
    const EngineSignature want(base);
    EXPECT_GT(base.heraldedShots, 0u);
    EXPECT_GT(base.memoHits, 0u);

    for (int memo : {0, 1}) {
        for (unsigned threads : {1u, 2u}) {
            auto o = opts;
            o.decodeMemo = memo;
            o.threads = threads;
            const auto res = engine.run(o);
            EXPECT_EQ(EngineSignature(res), want)
                << "memo=" << memo << " threads=" << threads;
        }
    }
}

} // namespace
