/**
 * @file
 * Tests for the layered service tier: the JobState machine (job.hh),
 * parse/validation structured errors (validation.hh), scheduler
 * backpressure (scheduler.hh), the wire tag format (wire.hh), the
 * CaStore single-writer lock, and the multi-process dispatcher
 * (dispatcher.hh) — including N-worker --ordered byte-identity and
 * the kill-a-worker retry path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/common/assert.hh"
#include "src/common/castore.hh"
#include "src/common/serialize.hh"
#include "src/estimator/estimator.hh"
#include "src/service/dispatcher.hh"
#include "src/service/job_service.hh"
#include "src/service/scheduler.hh"
#include "src/service/validation.hh"
#include "src/service/wire.hh"

namespace traq {
namespace {

using service::JobState;

// ---------------------------------------------------------------
// Job state machine
// ---------------------------------------------------------------

TEST(JobStateMachine, LegalityTableIsExhaustive)
{
    const JobState all[] = {
        JobState::Submitted, JobState::Validated,
        JobState::Scheduled, JobState::Running,
        JobState::Done,      JobState::Failed,
    };
    ASSERT_EQ(static_cast<int>(std::size(all)),
              service::kJobStateCount);
    // The only legal transitions, spelled out; every other (from,
    // to) pair — including self-loops and exits from terminal
    // states — must be rejected.
    const std::set<std::pair<JobState, JobState>> legal = {
        {JobState::Submitted, JobState::Validated},
        {JobState::Submitted, JobState::Failed},
        {JobState::Validated, JobState::Scheduled},
        {JobState::Validated, JobState::Done},
        {JobState::Validated, JobState::Failed},
        {JobState::Scheduled, JobState::Running},
        {JobState::Running, JobState::Done},
        {JobState::Running, JobState::Failed},
    };
    for (const JobState from : all) {
        for (const JobState to : all) {
            EXPECT_EQ(service::jobStateCanStep(from, to),
                      legal.count({from, to}) == 1)
                << service::jobStateName(from) << " -> "
                << service::jobStateName(to);
        }
    }
    EXPECT_TRUE(service::jobStateTerminal(JobState::Done));
    EXPECT_TRUE(service::jobStateTerminal(JobState::Failed));
    EXPECT_FALSE(service::jobStateTerminal(JobState::Running));
}

TEST(JobStateMachine, StepEnforcesTheTable)
{
    service::JobStateMachine sm;
    EXPECT_EQ(sm.state(), JobState::Submitted);
    sm.step(JobState::Validated);
    sm.step(JobState::Scheduled);
    sm.step(JobState::Running);
    sm.step(JobState::Done);
    EXPECT_THROW(sm.step(JobState::Failed), FatalError);

    service::JobStateMachine bad;
    EXPECT_THROW(bad.step(JobState::Running), FatalError);
}

// ---------------------------------------------------------------
// Parse + validation structured errors
// ---------------------------------------------------------------

TEST(Validation, ParseclassifiesJsonVsShape)
{
    // Not JSON at all -> errc::json.
    for (const char *text : {"{", "tru", "1 2", "{\"a\":}"}) {
        const service::ParsedLine line =
            service::parseRequestLine(text);
        EXPECT_EQ(line.error.code, service::errc::json) << text;
        EXPECT_FALSE(line.error.message.empty()) << text;
        EXPECT_TRUE(line.requests.empty()) << text;
    }
    // Valid JSON, wrong shape for an EstimateRequest -> errc::shape
    // (the malformed-request table of test_service.cc, via the
    // parse layer; "[]" parses as an empty batch, not an error).
    for (const char *text :
         {"{}", "{\"kind\":\"\"}", "{\"kind\":42}",
          "{\"kind\":\"x\",\"bogus\":{}}",
          "{\"kind\":\"x\",\"params\":{\"p\":true}}",
          "{\"kind\":\"x\",\"params\":{\"p\":\"oops\"}}",
          "{\"kind\":\"x\",\"params\":[1]}",
          "[{\"kind\":\"factoring\"},{}]"}) {
        const service::ParsedLine line =
            service::parseRequestLine(text);
        EXPECT_EQ(line.error.code, service::errc::shape) << text;
        EXPECT_FALSE(line.error.message.empty()) << text;
        EXPECT_TRUE(line.requests.empty()) << text;
    }
    // Well-formed single and batch lines.
    EXPECT_TRUE(service::parseRequestLine(
                    "{\"kind\":\"factoring\"}")
                    .error.empty());
    const service::ParsedLine batch = service::parseRequestLine(
        "[{\"kind\":\"a\"},{\"kind\":\"b\"}]");
    EXPECT_TRUE(batch.error.empty());
    EXPECT_TRUE(batch.batch);
    ASSERT_EQ(batch.requests.size(), 2u);
    // Empty batch: legal, zero requests.
    const service::ParsedLine empty =
        service::parseRequestLine("[]");
    EXPECT_TRUE(empty.error.empty());
    EXPECT_TRUE(empty.batch);
    EXPECT_TRUE(empty.requests.empty());
}

TEST(Validation, KindAndParamErrorsAreStructured)
{
    auto pool = std::make_shared<service::EstimatorPool>();
    const service::Validator validator(pool, true);

    const service::Validated unknownKind =
        validator.validate({"no-such-kind", {}});
    EXPECT_FALSE(unknownKind.ok());
    EXPECT_EQ(unknownKind.error.code, service::errc::kind);
    EXPECT_NE(unknownKind.error.message.find(
                  "no estimator registered"),
              std::string::npos)
        << unknownKind.error.message;

    const service::Validated badParam =
        validator.validate({"factoring", {{"bogus", 1.0}}});
    EXPECT_FALSE(badParam.ok());
    EXPECT_EQ(badParam.error.code, service::errc::param);
    EXPECT_NE(badParam.error.message.find(
                  "unknown factoring parameter"),
              std::string::npos)
        << badParam.error.message;

    const service::Validated good =
        validator.validate({"gidney-ekera", {}});
    EXPECT_TRUE(good.ok());
    EXPECT_FALSE(good.key.empty());
}

TEST(Validation, CheckParamsCatchesEveryBuiltinKindStatically)
{
    // Every built-in estimator implements checkParams by running
    // its spec-application phase, so a misspelled parameter is a
    // validation error (errc::param) — not an evaluation error —
    // for all of them.
    auto pool = std::make_shared<service::EstimatorPool>();
    const service::Validator validator(pool, true);
    for (const std::string &kind :
         {"factoring", "chemistry", "gidney-ekera",
          "factory-design", "idle-storage", "mc-logical-error",
          "mc-alpha"}) {
        const service::Validated v = validator.validate(
            {kind, {{"definitely-not-a-parameter", 1.0}}});
        EXPECT_FALSE(v.ok()) << kind;
        EXPECT_EQ(v.error.code, service::errc::param) << kind;
        EXPECT_NE(v.error.message.find(
                      "unknown " + kind + " parameter"),
                  std::string::npos)
            << kind << ": " << v.error.message;
    }
    // qldpc-storage forwards non-storage parameters to its inner
    // factoring solve; the rejection is still a validation-time
    // param error, with the inner kind's message.
    const service::Validated qldpc = validator.validate(
        {"qldpc-storage", {{"definitely-not-a-parameter", 1.0}}});
    EXPECT_FALSE(qldpc.ok());
    EXPECT_EQ(qldpc.error.code, service::errc::param);
    EXPECT_NE(
        qldpc.error.message.find("unknown factoring parameter"),
        std::string::npos)
        << qldpc.error.message;
}

TEST(Validation, OutcomeCarriesTheErrorClass)
{
    service::JobService queue;
    const auto id = queue.submit({"no-such-kind", {}});
    const service::JobOutcome &out = queue.wait(id);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.errorCode, service::errc::kind);
    // The error code is service metadata: the wire JSON stays the
    // exact pre-split {"error":...} shape.
    EXPECT_EQ(out.toJson(),
              "{\"error\":" + jsonQuote(out.error) + "}");
}

// ---------------------------------------------------------------
// Scheduler backpressure
// ---------------------------------------------------------------

/** Gate shared with the blocking test estimator. */
struct BlockGate
{
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;

    void release()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            open = true;
        }
        cv.notify_all();
    }

    void wait()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return open; });
    }
};

BlockGate &
blockGate()
{
    static BlockGate gate;
    return gate;
}

/** Estimator that blocks until the gate opens; registered once. */
void
registerBlockingEstimator()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    struct Blocking : est::Estimator
    {
        const char *kind() const override
        {
            return "test-blocking";
        }
        est::EstimateResult
        estimate(const est::EstimateRequest &req) const override
        {
            blockGate().wait();
            est::EstimateResult r;
            r.kind = kind();
            r.params = req.params;
            r.metrics["answer"] = req.params.at("i");
            return r;
        }
    };
    est::registerEstimator(
        "test-blocking",
        [] { return std::make_unique<Blocking>(); });
}

TEST(Scheduler, BoundedReadyQueueBlocksSubmitWithoutDeadlock)
{
    registerBlockingEstimator();
    service::JobQueueOptions opts;
    opts.threads = 1;
    opts.readyCapacity = 2;
    service::JobService queue(opts);

    constexpr std::size_t kJobs = 6;
    std::atomic<std::size_t> submitted{0};
    std::thread producer([&] {
        for (std::size_t i = 0; i < kJobs; ++i) {
            queue.submit({"test-blocking",
                          {{"i", static_cast<double>(i)}}});
            submitted.fetch_add(1);
        }
    });

    // With one (gated) worker and a ready bound of 2, at most
    // 1 running + 2 queued + 1 blocked-in-submit can have been
    // admitted; the producer must stall short of all six.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_LE(submitted.load(), 4u);
    EXPECT_LT(submitted.load(), kJobs);

    blockGate().release();
    producer.join();
    queue.drain();

    const service::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, kJobs);
    EXPECT_EQ(stats.evaluated, kJobs);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_LE(stats.readyHighWater, 2u);
    for (std::size_t i = 0; i < kJobs; ++i)
        EXPECT_TRUE(queue.wait(i).ok) << i;
}

TEST(Scheduler, CompletionStreamAnnouncesEveryIdOnce)
{
    service::JobService queue;
    const std::vector<est::EstimateRequest> reqs = {
        {"gidney-ekera", {}},
        {"no-such-kind", {}},
        {"gidney-ekera", {}}, // cache hit on job 0
        {"idle-storage", {{"distance", 17}}},
    };
    std::set<service::JobId> seen;
    std::thread consumer([&] {
        while (const auto id = queue.waitCompleted())
            EXPECT_TRUE(seen.insert(*id).second) << *id;
    });
    queue.submitBatch(reqs);
    queue.closeSubmissions();
    consumer.join();
    EXPECT_EQ(seen.size(), reqs.size());
    EXPECT_EQ(*seen.rbegin(), reqs.size() - 1);
}

// ---------------------------------------------------------------
// Wire tag format
// ---------------------------------------------------------------

TEST(Wire, TagAndSplitAreInverses)
{
    const std::pair<std::size_t, const char *> cases[] = {
        {0, "{\"kind\":\"factoring\",\"metrics\":{\"x\":1}}"},
        {7, "{\"error\":\"no estimator registered\"}"},
        {12, "[{\"kind\":\"a\"},{\"kind\":\"b\"}]"},
        {3, "[]"},
        {42, "{}"},
    };
    for (const auto &[index, payload] : cases) {
        const std::string tagged =
            service::wire::tagLine(index, payload);
        EXPECT_EQ(tagged.find("{\"index\":" +
                              std::to_string(index)),
                  0u)
            << tagged;
        const service::wire::TaggedLine back =
            service::wire::splitTagged(tagged);
        EXPECT_EQ(back.index, index) << tagged;
        EXPECT_EQ(back.payload, payload) << tagged;
    }
}

TEST(Wire, SplitRejectsGarbageLoudly)
{
    for (const char *bad :
         {"", "{\"kind\":\"x\"}", "{\"index\":}", "{\"index\":x}",
          "plain text", "{\"index\":3x}"}) {
        EXPECT_THROW(service::wire::splitTagged(bad), FatalError)
            << bad;
    }
}

// ---------------------------------------------------------------
// CaStore single-writer lock
// ---------------------------------------------------------------

/** mkstemp-backed file deleted at scope exit. */
class TempFile
{
  public:
    TempFile()
    {
        char buf[] = "/tmp/traq_test_layers_XXXXXX";
        const int fd = mkstemp(buf);
        TRAQ_REQUIRE(fd >= 0, "mkstemp failed");
        close(fd);
        path_ = buf;
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(CaStoreLock, SecondWriterFailsLoudly)
{
    TempFile file;
    {
        CaStore first;
        first.open(file.path());
        first.put("k", "{\"v\":1}");
        // A second writer on the same store — same process or
        // another one, flock covers both — must fail loudly, not
        // interleave appends.
        CaStore second;
        EXPECT_THROW(second.open(file.path()), FatalError);
    }
    // The lock dies with its holder: a sequential reopen (the
    // warm-restart path) works.
    CaStore again;
    again.open(file.path());
    std::string v;
    EXPECT_TRUE(again.get("k", v));
    EXPECT_EQ(v, "{\"v\":1}");
}

// ---------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------

/** Path to a sibling binary of the running test executable. */
std::string
buildSibling(const char *name)
{
    char buf[4096];
    const ssize_t n =
        readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    TRAQ_REQUIRE(n > 0, "readlink(/proc/self/exe) failed");
    std::string self(buf, static_cast<std::size_t>(n));
    return self.substr(0, self.rfind('/') + 1) + name;
}

/** The request lines and their expected ordered payloads. */
std::vector<std::pair<std::string, std::string>>
dispatchFixture()
{
    const std::vector<est::EstimateRequest> reqs = {
        {"gidney-ekera", {{"tReaction", 1e-3}}},
        {"idle-storage", {{"distance", 17}}},
        {"no-such-kind", {}},
        {"gidney-ekera", {{"tReaction", 2e-3}}},
        {"factory-design", {}},
        {"gidney-ekera", {{"tReaction", 1e-3}}}, // duplicate
    };
    std::vector<std::pair<std::string, std::string>> fixture;
    for (const est::EstimateRequest &req : reqs) {
        std::string expected;
        try {
            expected = est::toJson(
                est::makeEstimator(req.kind)->estimate(req));
        } catch (const FatalError &e) {
            expected = "{\"error\":" +
                       jsonQuote(std::string(e.what())) + "}";
        }
        fixture.emplace_back(est::toJson(req),
                             std::move(expected));
    }
    // One malformed line exercises the per-worker parse error
    // path end to end.
    fixture.emplace_back(
        "{\"kind\":42}",
        "{\"error\":" +
            jsonQuote(service::parseRequestLine("{\"kind\":42}")
                          .error.message) +
            "}");
    return fixture;
}

/** Run the fixture through a dispatcher; payloads by index. */
std::map<std::size_t, std::string>
runDispatch(service::Dispatcher &dispatcher,
            const std::vector<std::pair<std::string, std::string>>
                &fixture)
{
    std::map<std::size_t, std::string> got;
    std::thread consumer([&] {
        while (const auto r = dispatcher.waitResult())
            EXPECT_TRUE(
                got.emplace(r->index, r->payload).second)
                << "duplicate result for index " << r->index;
    });
    for (std::size_t i = 0; i < fixture.size(); ++i)
        dispatcher.submit(i, fixture[i].first);
    dispatcher.closeSubmissions();
    consumer.join();
    return got;
}

TEST(Dispatcher, NWorkerOutputMatchesSingleServeByteForByte)
{
    const auto fixture = dispatchFixture();
    for (const unsigned workers : {1u, 2u, 4u}) {
        SCOPED_TRACE(workers);
        service::DispatcherOptions opts;
        opts.servePath = buildSibling("traq_serve");
        opts.workers = workers;
        opts.inflight = 4;
        opts.workerArgs = {"--threads", "2"};
        service::Dispatcher dispatcher(opts);
        const auto got = runDispatch(dispatcher, fixture);
        ASSERT_EQ(got.size(), fixture.size());
        for (std::size_t i = 0; i < fixture.size(); ++i)
            EXPECT_EQ(got.at(i), fixture[i].second) << i;
    }
}

TEST(Dispatcher, KilledWorkerLosesAndDuplicatesNothing)
{
    const auto fixture = dispatchFixture();
    service::DispatcherOptions opts;
    opts.servePath = buildSibling("traq_serve");
    opts.workers = 2;
    opts.inflight = 4;
    service::Dispatcher dispatcher(opts);

    std::map<std::size_t, std::string> got;
    std::mutex gotMu;
    std::thread consumer([&] {
        while (const auto r = dispatcher.waitResult()) {
            std::lock_guard<std::mutex> lock(gotMu);
            EXPECT_TRUE(
                got.emplace(r->index, r->payload).second)
                << "duplicate result for index " << r->index;
        }
    });

    // First wave, then SIGKILL one worker while its answers may
    // still be anywhere between unsent, inflight, and acked; the
    // exactly-once contract must hold regardless of where the kill
    // lands.
    std::size_t index = 0;
    for (std::size_t i = 0; i < fixture.size(); ++i)
        dispatcher.submit(index++, fixture[i].first);
    const std::vector<pid_t> pids = dispatcher.workerPids();
    ASSERT_EQ(pids.size(), 2u);
    if (pids[0] > 0)
        kill(pids[0], SIGKILL);
    // Second wave lands after (or while) the worker dies: the
    // survivor absorbs both the requeues and the new lines.
    for (std::size_t i = 0; i < fixture.size(); ++i)
        dispatcher.submit(index++, fixture[i].first);
    dispatcher.closeSubmissions();
    consumer.join();

    EXPECT_LE(dispatcher.liveWorkers(), 1u);
    ASSERT_EQ(got.size(), 2 * fixture.size());
    for (std::size_t i = 0; i < 2 * fixture.size(); ++i) {
        ASSERT_TRUE(got.count(i)) << "lost index " << i;
        EXPECT_EQ(got.at(i), fixture[i % fixture.size()].second)
            << i;
    }
}

TEST(Dispatcher, DrainedWorkerAbsorbsDeathAfterCloseSubmissions)
{
    // One slow Monte-Carlo request pins worker 0 (~1.3 s) while
    // worker 1 sits idle.  After closeSubmissions(), idle workers'
    // stdins must stay open until every submitted index is
    // answered: killing the busy worker mid-run has to requeue its
    // job onto the drained-but-live worker 1.  Releasing idle
    // stdins at close time instead lets worker 1 exit on EOF, and
    // the requeue then finds no live shard — a fatal "every worker
    // is dead with work outstanding" despite a healthy survivor.
    service::DispatcherOptions opts;
    opts.servePath = buildSibling("traq_serve");
    opts.workers = 2;
    opts.inflight = 4;
    service::Dispatcher dispatcher(opts);

    const std::string slow =
        "{\"kind\":\"mc-logical-error\",\"params\":"
        "{\"distance\":5,\"shots\":100000,\"seed\":7}}";
    dispatcher.submit(0, slow); // round-robin starts at worker 0
    dispatcher.closeSubmissions();

    // Let the line reach worker 0 and start evaluating, then kill
    // it mid-run.  (If the job somehow finishes first, the result
    // was already acknowledged and the test still must pass — the
    // kill then just exercises the idle-death path.)
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const std::vector<pid_t> pids = dispatcher.workerPids();
    ASSERT_EQ(pids.size(), 2u);
    if (pids[0] > 0)
        kill(pids[0], SIGKILL);

    std::map<std::size_t, std::string> got;
    while (const auto r = dispatcher.waitResult())
        EXPECT_TRUE(got.emplace(r->index, r->payload).second)
            << "duplicate result for index " << r->index;
    ASSERT_EQ(got.size(), 1u);
    ASSERT_TRUE(got.count(0));
    EXPECT_NE(got.at(0).find("\"feasible\":true"),
              std::string::npos)
        << got.at(0);
}

} // namespace
} // namespace traq
