/**
 * @file
 * The three caching tiers added for cross-batch / cross-job /
 * cross-process amortization:
 *
 *  - tier 1, the process-global syndrome memo (GlobalDecodeMemo):
 *    env tri-state loudness, lookup/insert content exactness,
 *    capacity eviction and concurrent fill leaving corrections and
 *    tallies bit-identical, cross-batch hits actually occurring;
 *  - tier 2, the compiled-artifact cache (compileDecodeSetup):
 *    env loudness, hit accounting, engine results bit-identical
 *    cache on/off;
 *  - tier 3, the persistent content-addressed store (CaStore +
 *    JobQueue cache file): round-trip and reopen, loud TRAQ_FATAL-
 *    free recovery from truncated and corrupted files, loud failure
 *    on an unopenable path, and a restarted queue serving the same
 *    bytes from the persistent tier alone.
 *
 * Same contract as tests/test_cpu_dispatch.cc: throughput knobs may
 * change *when* work happens, never what comes out.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/castore.hh"
#include "src/decoder/compile_cache.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/global_memo.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/estimator/estimator.hh"
#include "src/service/job_queue.hh"
#include "src/sim/frame.hh"

namespace {

using namespace traq;

/** Save/restore one environment variable around a test. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        if (const char *v = std::getenv(name))
            saved_ = v;
        else
            wasSet_ = false;
    }
    ~EnvGuard()
    {
        if (wasSet_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    std::string saved_;
    bool wasSet_ = true;
};

/** mkstemp-backed file deleted at scope exit. */
class TempFile
{
  public:
    TempFile()
    {
        char buf[] = "/tmp/traq_test_castore_XXXXXX";
        const int fd = mkstemp(buf);
        TRAQ_REQUIRE(fd >= 0, "mkstemp failed");
        close(fd);
        path_ = buf;
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(GlobalMemoEnv, TriStateAndLoudness)
{
    EnvGuard guard("TRAQ_GLOBAL_MEMO");
    unsetenv("TRAQ_GLOBAL_MEMO");
    EXPECT_TRUE(decoder::resolveGlobalMemo(-1));  // default ON
    EXPECT_FALSE(decoder::resolveGlobalMemo(0));
    EXPECT_TRUE(decoder::resolveGlobalMemo(1));

    ASSERT_EQ(setenv("TRAQ_GLOBAL_MEMO", "off", 1), 0);
    EXPECT_FALSE(decoder::resolveGlobalMemo(-1));
    EXPECT_TRUE(decoder::resolveGlobalMemo(1));  // forced wins
    ASSERT_EQ(setenv("TRAQ_GLOBAL_MEMO", "1", 1), 0);
    EXPECT_TRUE(decoder::resolveGlobalMemo(-1));
    ASSERT_EQ(setenv("TRAQ_GLOBAL_MEMO", "", 1), 0);
    EXPECT_TRUE(decoder::resolveGlobalMemo(-1));  // empty = default
    ASSERT_EQ(setenv("TRAQ_GLOBAL_MEMO", "sometimes", 1), 0);
    EXPECT_THROW(decoder::resolveGlobalMemo(-1), FatalError);
}

TEST(CompileCacheEnv, TriStateAndLoudness)
{
    EnvGuard guard("TRAQ_COMPILE_CACHE");
    unsetenv("TRAQ_COMPILE_CACHE");
    EXPECT_TRUE(decoder::resolveCompileCache(-1));  // default ON
    EXPECT_FALSE(decoder::resolveCompileCache(0));
    EXPECT_TRUE(decoder::resolveCompileCache(1));

    ASSERT_EQ(setenv("TRAQ_COMPILE_CACHE", "false", 1), 0);
    EXPECT_FALSE(decoder::resolveCompileCache(-1));
    ASSERT_EQ(setenv("TRAQ_COMPILE_CACHE", "on", 1), 0);
    EXPECT_TRUE(decoder::resolveCompileCache(-1));
    ASSERT_EQ(setenv("TRAQ_COMPILE_CACHE", "2", 1), 0);
    EXPECT_THROW(decoder::resolveCompileCache(-1), FatalError);
}

TEST(CacheFileEnv, ResolutionAndLoudness)
{
    EnvGuard guard("TRAQ_CACHE_FILE");
    unsetenv("TRAQ_CACHE_FILE");
    EXPECT_EQ(resolveCacheFile(""), "");
    EXPECT_EQ(resolveCacheFile("/a/b.cas"), "/a/b.cas");

    ASSERT_EQ(setenv("TRAQ_CACHE_FILE", "/env/c.cas", 1), 0);
    EXPECT_EQ(resolveCacheFile(""), "/env/c.cas");
    // An explicit request always beats the environment.
    EXPECT_EQ(resolveCacheFile("/a/b.cas"), "/a/b.cas");

    // An unopenable path is a configuration error: loud, not a
    // silent in-memory fallback.
    unsetenv("TRAQ_CACHE_FILE");
    CaStore store;
    EXPECT_THROW(store.open("/no_such_traq_dir_9321/x.cas"),
                 FatalError);
    EXPECT_FALSE(store.attached());

    // A cache file without the result cache is refused loudly too —
    // the store is the cache's disk form, not a separate feature.
    service::JobQueueOptions opts;
    opts.cache = false;
    opts.cacheFile = "/tmp/whatever.cas";
    EXPECT_THROW(service::JobQueue{opts}, FatalError);
}

TEST(GlobalMemo, LookupServesExactContentOnly)
{
    decoder::GlobalDecodeMemo memo(1024);
    const decoder::DecodeSetupKey a{1, 2};
    const decoder::DecodeSetupKey b{1, 3};
    const std::vector<std::uint32_t> defects{4, 7, 9};
    const std::vector<std::uint32_t> heralds{2};

    decoder::GlobalDecodeMemo::Value v;
    EXPECT_FALSE(memo.lookup(a, defects, heralds, v));
    memo.insert(a, defects, heralds, {5, 1, 2});

    ASSERT_TRUE(memo.lookup(a, defects, heralds, v));
    EXPECT_EQ(v.predicted, 5u);
    EXPECT_EQ(v.fallbacks, 1u);
    EXPECT_EQ(v.peels, 2u);

    // Any component changing — setup key, defects, heralds, or the
    // defect/herald split at identical concatenation — must miss.
    EXPECT_FALSE(memo.lookup(b, defects, heralds, v));
    EXPECT_FALSE(memo.lookup(a, {defects.data(), 2}, heralds, v));
    EXPECT_FALSE(memo.lookup(a, defects, {}, v));
    const std::vector<std::uint32_t> joined{4, 7, 9, 2};
    EXPECT_FALSE(memo.lookup(a, joined, {}, v));

    const auto st = memo.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.inserts, 1u);
    EXPECT_EQ(st.entries, 1u);
    memo.clear();
    EXPECT_EQ(memo.stats().entries, 0u);
}

/** d=3 memory syndromes in CSR form plus their decode graph. */
struct Sampled
{
    std::vector<std::uint32_t> offsets{0};
    std::vector<std::uint32_t> defects;
    std::unique_ptr<codes::Experiment> exp;
    std::unique_ptr<decoder::DecodeGraph> graph;

    Sampled()
    {
        codes::SurfaceCode sc(3);
        exp = std::make_unique<codes::Experiment>(codes::buildMemory(
            sc, 'Z', 3, codes::NoiseParams::uniform(0.004)));
        sim::FrameSimulator fs(21, 8, CpuDispatch::Baseline);
        sim::FrameBatch batch;
        sim::SyndromeBlock block;
        const std::vector<std::uint64_t> live(8, ~0ULL);
        for (int rep = 0; rep < 2; ++rep) {
            fs.sampleInto(exp->circuit, batch);
            sim::extractSyndromeBlock(batch, live, block);
            for (std::uint64_t s = 0; s < block.shots(); ++s) {
                const auto syn = block.syndrome(s);
                defects.insert(defects.end(), syn.begin(),
                               syn.end());
                offsets.push_back(
                    static_cast<std::uint32_t>(defects.size()));
            }
        }
        graph = std::make_unique<decoder::DecodeGraph>(
            decoder::DecodeGraph::build(*exp));
    }

    decoder::SyndromeBatch view() const
    {
        decoder::SyndromeBatch b;
        b.offsets = offsets;
        b.defects = defects;
        return b;
    }
    std::uint64_t shots() const { return offsets.size() - 1; }
};

TEST(GlobalMemo, CapacityEvictionKeepsCorrectionsBitIdentical)
{
    const Sampled fixture;
    const auto view = fixture.view();
    const std::uint64_t n = fixture.shots();
    ASSERT_GT(n, 128u);

    decoder::DecoderConfig cfg;
    cfg.predecode = 1;
    const auto setup = decoder::decodeSetupKey(
        *fixture.graph, decoder::DecoderKind::Fallback, cfg);

    // Reference: no memo of any kind.
    auto decRef = decoder::makeDecoder(decoder::DecoderKind::Fallback,
                                       *fixture.graph, cfg);
    std::vector<std::uint32_t> ref(n);
    for (std::uint64_t s = 0; s < n; ++s)
        ref[s] = decRef->decodeSpan(view.syndrome(s));

    // A pathologically small global tier: one entry per shard, so
    // inserts evict almost every batch.  Decode the batch twice —
    // second pass mixes hits, misses and evicted re-decodes — and
    // both passes must replay the reference bit-identically, with
    // counter deltas summing to the reference decoder's counters.
    decoder::GlobalDecodeMemo tiny(1);
    auto dec = decoder::makeDecoder(decoder::DecoderKind::Fallback,
                                    *fixture.graph, cfg);
    decoder::BatchDecodeScratch scratch;
    for (int pass = 0; pass < 2; ++pass) {
        auto decOff = decoder::makeDecoder(
            decoder::DecoderKind::Fallback, *fixture.graph, cfg);
        std::vector<std::uint32_t> out(n), outOff(n);
        const auto st = decoder::decodeBatchSorted(
            *dec, view, out, scratch, true, &tiny, setup);
        const auto stOff = decoder::decodeBatchSorted(
            *decOff, view, outOff, scratch, true);
        EXPECT_EQ(out, ref) << "pass " << pass;
        EXPECT_EQ(outOff, ref) << "pass " << pass;
        EXPECT_EQ(dec->fallbacks() + st.replayedFallbacks,
                  static_cast<std::uint64_t>(pass + 1) *
                      (decOff->fallbacks() +
                       stOff.replayedFallbacks))
            << "pass " << pass;
    }
    const auto st = tiny.stats();
    EXPECT_GT(st.evictions, 0u);
    EXPECT_LE(st.entries, 64u);  // one per shard at capacity 1
}

/** Engine results that must be invariant under throughput knobs. */
struct EngineSignature
{
    std::uint64_t anyHits, fallbacks, peels, heralded;
    std::vector<std::uint64_t> perObs;

    explicit EngineSignature(const decoder::McResult &r)
        : anyHits(r.anyObservable.hits), fallbacks(r.mwpmFallbacks),
          peels(r.predecodedPairs), heralded(r.heraldedShots)
    {
        for (const auto &p : r.perObservable)
            perObs.push_back(p.hits);
    }
    bool operator==(const EngineSignature &) const = default;
};

TEST(Engine, GlobalMemoThreadInvarianceAndCrossBatchHits)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.003));
    decoder::McOptions opts;
    opts.shots = 6000;
    opts.seed = 77;
    opts.predecode = 1;
    opts.threads = 1;
    opts.globalMemo = 0;

    decoder::MonteCarloEngine engine(e, opts);
    const auto base = engine.run(opts);
    const EngineSignature want(base);
    EXPECT_EQ(base.crossBatchHits, 0u);  // tier off -> no hits

    decoder::GlobalDecodeMemo::instance().clear();
    for (int global : {0, 1}) {
        for (unsigned threads : {1u, 2u, 4u}) {
            auto o = opts;
            o.globalMemo = global;
            o.threads = threads;
            const auto res = engine.run(o);
            EXPECT_EQ(EngineSignature(res), want)
                << "globalMemo=" << global
                << " threads=" << threads;
            if (!global)
                EXPECT_EQ(res.crossBatchHits, 0u);
        }
    }

    // The tier is warm from the runs above: a fresh run over the
    // same problem must now be served across engine runs.
    auto o = opts;
    o.globalMemo = 1;
    const auto warm = engine.run(o);
    EXPECT_EQ(EngineSignature(warm), want);
    EXPECT_GT(warm.crossBatchHits, 0u);
}

TEST(Engine, GlobalMemoInvarianceErasurePath)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.002));
    decoder::McOptions opts;
    opts.shots = 4096;
    opts.seed = 31;
    opts.threads = 1;
    opts.noiseSpec.setFlat("noise.atom-loss.p", 0.01);
    ASSERT_TRUE(opts.erasureAware);

    opts.globalMemo = 0;
    decoder::MonteCarloEngine engine(e, opts);
    const auto base = engine.run(opts);
    const EngineSignature want(base);
    EXPECT_GT(base.heraldedShots, 0u);

    decoder::GlobalDecodeMemo::instance().clear();
    for (int global : {0, 1}) {
        for (unsigned threads : {1u, 2u}) {
            auto o = opts;
            o.globalMemo = global;
            o.threads = threads;
            const auto res = engine.run(o);
            EXPECT_EQ(EngineSignature(res), want)
                << "globalMemo=" << global
                << " threads=" << threads;
        }
    }
    auto o = opts;
    o.globalMemo = 1;
    EXPECT_GT(engine.run(o).crossBatchHits, 0u);
}

TEST(Engine, CompileCacheOnOffBitIdenticalAndShared)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.003));
    decoder::McOptions opts;
    opts.shots = 2048;
    opts.seed = 5;
    opts.threads = 1;

    decoder::clearCompileCache();
    auto off = opts;
    off.compileCache = 0;
    decoder::MonteCarloEngine engineOff(e, off);
    const auto resOff = engineOff.run(off);
    EXPECT_EQ(decoder::compileCacheStats().entries, 0u);

    auto on = opts;
    on.compileCache = 1;
    decoder::MonteCarloEngine engineOn(e, on);
    const auto resOn = engineOn.run(on);
    EXPECT_EQ(EngineSignature(resOn), EngineSignature(resOff));

    // A second engine over the same experiment shares the artifact.
    const auto before = decoder::compileCacheStats();
    decoder::MonteCarloEngine engineOn2(e, on);
    const auto resOn2 = engineOn2.run(on);
    EXPECT_EQ(EngineSignature(resOn2), EngineSignature(resOff));
    const auto after = decoder::compileCacheStats();
    EXPECT_GT(after.hits, before.hits);
    EXPECT_EQ(after.entries, before.entries);
}

TEST(CaStore, RoundTripAndReopen)
{
    TempFile file;
    {
        CaStore store;
        store.open(file.path());
        EXPECT_TRUE(store.attached());
        EXPECT_EQ(store.size(), 0u);
        EXPECT_TRUE(store.put("k1", "v1"));
        EXPECT_TRUE(store.put("k2", "value two"));
        EXPECT_FALSE(store.put("k1", "other"));  // append-only
        std::string v;
        ASSERT_TRUE(store.get("k1", v));
        EXPECT_EQ(v, "v1");
        EXPECT_FALSE(store.get("nope", v));
        EXPECT_EQ(store.size(), 2u);
    }
    CaStore store;
    store.open(file.path());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.loadStats().entries, 2u);
    EXPECT_EQ(store.loadStats().droppedRecords, 0u);
    EXPECT_FALSE(store.loadStats().recovered);
    std::string v;
    ASSERT_TRUE(store.get("k2", v));
    EXPECT_EQ(v, "value two");
    std::size_t seen = 0;
    store.forEach([&](const std::string &, const std::string &) {
        ++seen;
    });
    EXPECT_EQ(seen, 2u);
}

TEST(CaStore, TruncatedTailRecoveredWithoutFatal)
{
    TempFile file;
    {
        CaStore store;
        store.open(file.path());
        store.put("k1", "v1");
        store.put("k2", "v2");
        store.put("k3", "v3");
    }
    ASSERT_EQ(truncate(file.path().c_str(), 8 + 3 * 24 - 5), 0);

    std::string v;
    {
        CaStore store;
        store.open(file.path());  // must recover, not throw
        EXPECT_TRUE(store.attached());
        EXPECT_TRUE(store.loadStats().recovered);
        EXPECT_EQ(store.loadStats().droppedRecords, 1u);
        EXPECT_EQ(store.size(), 2u);
        ASSERT_TRUE(store.get("k2", v));
        EXPECT_EQ(v, "v2");
        EXPECT_FALSE(store.get("k3", v));

        // The rebuilt file is clean: appends work.
        EXPECT_TRUE(store.put("k3", "v3 again"));
    }  // stores are single-writer: release the flock before reopening

    // A further (sequential) reopen reports no recovery.
    CaStore again;
    again.open(file.path());
    EXPECT_FALSE(again.loadStats().recovered);
    EXPECT_EQ(again.size(), 3u);
    ASSERT_TRUE(again.get("k3", v));
    EXPECT_EQ(v, "v3 again");
}

TEST(CaStore, CorruptedRecordDropsItAndItsSuffix)
{
    TempFile file;
    {
        CaStore store;
        store.open(file.path());
        store.put("k1", "v1");
        store.put("k2", "v2");
        store.put("k3", "v3");
    }
    {
        // Flip one byte inside record 2's key ("k2"): the checksum
        // catches it, and the unverifiable suffix goes with it.
        std::FILE *f = std::fopen(file.path().c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 8 + 24 + 20, SEEK_SET), 0);
        std::fputc('X', f);
        std::fclose(f);
    }
    CaStore store;
    store.open(file.path());
    EXPECT_TRUE(store.loadStats().recovered);
    // One *detected* bad record; the suffix behind its corrupt
    // length/checksum cannot be parsed into records and is dropped
    // wholesale (reported by byte count on stderr).
    EXPECT_EQ(store.loadStats().droppedRecords, 1u);
    EXPECT_EQ(store.size(), 1u);
    std::string v;
    ASSERT_TRUE(store.get("k1", v));
    EXPECT_EQ(v, "v1");
}

TEST(JobQueue, PersistentRestartServesIdenticalBytes)
{
    TempFile file;
    std::vector<est::EstimateRequest> reqs = {
        {"idle-storage", {{"distance", 13}, {"sePeriod", 1e-4}}},
        {"gidney-ekera", {{"tReaction", 2e-5}}},
        // A deterministic failure: unknown kinds throw FatalError,
        // which is cacheable — and persistable — like a result.
        {"no-such-kind-xyz", {}},
    };

    std::vector<std::string> firstRun;
    {
        service::JobQueueOptions o;
        o.threads = 2;
        o.cacheFile = file.path();
        service::JobQueue q(o);
        std::vector<service::JobQueue::JobId> ids;
        for (const auto &r : reqs)
            ids.push_back(q.submit(r));
        for (auto id : ids)
            firstRun.push_back(q.wait(id).toJson());
        const auto st = q.stats();
        EXPECT_EQ(st.evaluated, reqs.size());
        EXPECT_EQ(st.persistentHits, 0u);
        EXPECT_EQ(st.failed, 1u);
    }
    ASSERT_FALSE(firstRun[2].empty());
    EXPECT_NE(firstRun[2].find("error"), std::string::npos);

    // Fresh process stand-in: a new queue on the same store file
    // must serve byte-identical outcomes without evaluating.
    {
        service::JobQueueOptions o;
        o.threads = 2;
        o.cacheFile = file.path();
        service::JobQueue q(o);
        std::vector<service::JobQueue::JobId> ids;
        for (const auto &r : reqs)
            ids.push_back(q.submit(r));
        for (std::size_t i = 0; i < ids.size(); ++i)
            EXPECT_EQ(q.wait(ids[i]).toJson(), firstRun[i])
                << "request " << i;
        const auto st = q.stats();
        EXPECT_EQ(st.evaluated, 0u);
        EXPECT_EQ(st.persistentHits, reqs.size());
    }
}

} // namespace
