/**
 * @file
 * Tests for the gadget generators: factory design, Cuccaro adder
 * (including gate-level functional correctness), QROM lookup
 * (including unary-iteration emulation), GHZ preparation (verified
 * on the tableau simulator), and Bell-pair parallelization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/assert.hh"
#include "src/common/rng.hh"
#include "src/gadgets/adder.hh"
#include "src/gadgets/factory.hh"
#include "src/gadgets/ghz.hh"
#include "src/gadgets/lookup.hh"
#include "src/gadgets/parallel.hh"
#include "src/sim/tableau.hh"

namespace traq::gadgets {
namespace {

TEST(Factory, PaperOperatingPoint)
{
    FactorySpec spec;   // 1.6e-11 CCZ budget
    auto r = designFactory(spec);
    EXPECT_EQ(r.distance, 27);                 // Table II
    EXPECT_LE(r.cczError, 1.6e-11 * 1.05);
    // Quadratic suppression: p_T ~ sqrt(budget/2/28) ~ 5e-7
    // (paper quotes 7.7e-7 with the full budget on the T term).
    EXPECT_GT(r.tInputError, 3e-7);
    EXPECT_LT(r.tInputError, 8e-7);
    EXPECT_EQ(r.footprintWidthSites, 12 * 27);
    EXPECT_TRUE(r.cultivationFits);
    EXPECT_GT(r.throughput, 100.0);
    EXPECT_NEAR(r.retryOverhead, 1.0, 0.01);
}

TEST(Factory, QuadraticSuppression)
{
    // Tighter CCZ targets need only sqrt-tighter T inputs.
    FactorySpec a, b;
    a.targetCczError = 1e-10;
    b.targetCczError = 1e-12;
    auto ra = designFactory(a);
    auto rb = designFactory(b);
    EXPECT_NEAR(ra.tInputError / rb.tInputError, 10.0, 0.5);
}

TEST(Factory, DistanceGrowsWithTarget)
{
    FactorySpec a, b;
    a.targetCczError = 1e-9;
    b.targetCczError = 1e-13;
    EXPECT_LT(designFactory(a).distance,
              designFactory(b).distance);
}

TEST(Factory, SeRoundsTradeoffHasInteriorOptimum)
{
    // Fig. 11(a): volume vs SE rounds per gate dips near 1.
    auto volumeAt = [](double rounds) {
        FactorySpec s;
        s.seRoundsPerGate = rounds;
        auto r = designFactory(s);
        return r.qubits * r.cczTime;
    };
    double v1 = volumeAt(1.0);
    EXPECT_LE(v1, volumeAt(4.0));
    EXPECT_LE(v1, volumeAt(0.25) * 1.5);
}

TEST(Factory, ForcedDistanceRespected)
{
    FactorySpec s;
    s.forcedDistance = 31;
    EXPECT_EQ(designFactory(s).distance, 31);
}

TEST(Adder, DesignMatchesPaperNumbers)
{
    AdderSpec spec;   // n=2048, rsep=96, rpad=43, d=27
    spec.kappaAdd = 1.0;
    auto r = designAdder(spec);
    EXPECT_EQ(r.segments, 22);   // ceil(2048/96)
    EXPECT_EQ(r.bitsWithRunways, 2048 + 22 * 43);
    // Paper: each addition takes 0.28 s.
    EXPECT_NEAR(r.timePerAddition, 0.278, 0.01);
    // Fig. 9(c): max move sqrt(2) d sites.
    EXPECT_NEAR(r.maxMoveSites, std::sqrt(2.0) * 27, 1e-9);
    EXPECT_GT(r.cczRate, 1e4);
}

TEST(Adder, RunwayApproxErrorScaling)
{
    AdderSpec spec;
    auto r43 = designAdder(spec);
    spec.rpad = 20;
    auto r20 = designAdder(spec);
    EXPECT_NEAR(r20.runwayApproxError / r43.runwayApproxError,
                std::pow(2.0, 23), 1e6);
}

TEST(Adder, CuccaroEmulationExhaustiveSmall)
{
    // Exhaustive over 5-bit operands: 1024 cases.
    for (std::uint64_t a = 0; a < 32; ++a)
        for (std::uint64_t b = 0; b < 32; ++b)
            ASSERT_EQ(cuccaroEmulate(a, b, 5), (a + b) & 31)
                << a << "+" << b;
}

TEST(Adder, CuccaroEmulationRandomWide)
{
    Rng rng(42);
    for (int trial = 0; trial < 300; ++trial) {
        int bits = 6 + static_cast<int>(rng.below(55));
        std::uint64_t mask =
            (bits >= 63) ? ~0ULL : ((1ULL << bits) - 1);
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        ASSERT_EQ(cuccaroEmulate(a, b, bits), (a + b) & mask);
    }
}

TEST(Adder, RunwayEmulationMatchesPlainAddition)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        std::uint64_t a = rng.next() & ((1ULL << 48) - 1);
        std::uint64_t b = rng.next() & ((1ULL << 48) - 1);
        for (int rsep : {5, 8, 16, 48}) {
            ASSERT_EQ(runwayAddEmulate(a, b, 48, rsep),
                      (a + b) & ((1ULL << 48) - 1))
                << "rsep=" << rsep;
        }
    }
}

TEST(Adder, RejectsBadSpecs)
{
    AdderSpec s;
    s.nBits = 0;
    EXPECT_THROW(designAdder(s), FatalError);
    EXPECT_THROW(cuccaroEmulate(1, 2, 64), FatalError);
    EXPECT_THROW(cuccaroEmulate(1, 2, 0), FatalError);
}

TEST(Lookup, DesignMatchesPaperNumbers)
{
    LookupSpec spec;   // m = 7, d = 27
    spec.targetBits = 2048 + 22 * 43;
    auto r = designLookup(spec);
    EXPECT_EQ(r.entries, 128u);
    EXPECT_EQ(r.cczPerLookup, 128.0 - 7 - 1);
    // Paper: each lookup takes 0.17 s.
    EXPECT_NEAR(r.timePerLookup, 0.17, 0.01);
    // Fig. 10(c): 2d max move.
    EXPECT_NEAR(r.maxMoveSites, 2.0 * 27, 1e-9);
}

TEST(Lookup, PipeliningReducesFanoutTime)
{
    LookupSpec one;
    LookupSpec two = one;
    two.pipelineCopies = 2;
    EXPECT_LT(designLookup(two).fanoutTime,
              designLookup(one).fanoutTime);
}

TEST(Lookup, GhzSpacingTradesQubits)
{
    LookupSpec tight;
    tight.ghzSpacing = 1;
    LookupSpec sparse;
    sparse.ghzSpacing = 4;
    EXPECT_GT(designLookup(tight).ghzLogicalQubits,
              designLookup(sparse).ghzLogicalQubits);
}

TEST(Lookup, QromEmulationAllAddresses)
{
    Rng rng(3);
    for (int m = 1; m <= 6; ++m) {
        std::vector<std::uint64_t> table(std::size_t{1} << m);
        for (auto &v : table)
            v = rng.next() & 0xffffffffULL;
        for (std::uint64_t addr = 0; addr < table.size(); ++addr)
            ASSERT_EQ(qromEmulate(table, addr), table[addr])
                << "m=" << m << " addr=" << addr;
    }
}

TEST(Lookup, GhzFanoutEmulation)
{
    EXPECT_EQ(ghzFanoutEmulate(0xdeadULL, true), 0xdeadULL);
    EXPECT_EQ(ghzFanoutEmulate(0xdeadULL, false), 0u);
}

TEST(Ghz, CircuitPreparesGhzUpToCorrections)
{
    // Verify with the tableau simulator: after the helper
    // measurements, X^n stabilizes the register, and each ZZ pair is
    // stabilized up to the sign fixed by the helper outcome.
    for (int n : {2, 3, 5, 8}) {
        sim::Circuit c = ghzPrepCircuit(n);
        sim::TableauSim sim(c.numQubits(), 17 + n);
        auto rec = sim.run(c);
        ASSERT_EQ(rec.size(), static_cast<std::size_t>(n - 1));
        sim::PauliString xs(c.numQubits());
        for (int q = 0; q < n; ++q)
            xs.setPauli(q, 'X');
        EXPECT_TRUE(sim.stateStabilizedBy(xs)) << "n=" << n;
        for (int h = 0; h < n - 1; ++h) {
            sim::PauliString zz(c.numQubits());
            zz.setPauli(h, 'Z');
            zz.setPauli(h + 1, 'Z');
            if (rec[h])
                zz.setPhase(2);   // -ZZ when the helper clicked
            EXPECT_TRUE(sim.stateStabilizedBy(zz))
                << "n=" << n << " pair " << h;
        }
    }
}

TEST(Ghz, CostScalesLinearly)
{
    auto atom = platform::AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    auto small = ghzCost(100, 27, atom, em);
    auto large = ghzCost(1000, 27, atom, em);
    EXPECT_NEAR(large.logicalQubits / small.logicalQubits, 10.0,
                0.2);
    EXPECT_NEAR(large.logicalError / small.logicalError, 10.0,
                0.2);
    // Constant depth: time does not scale with n.
    EXPECT_NEAR(large.time, small.time, 1e-12);
}

TEST(Parallel, CopiesFromBlockRatio)
{
    auto plan = planBellParallel(0.01, 1e-3);
    EXPECT_EQ(plan.copies, 10);
    EXPECT_NEAR(plan.effectiveRate, 1000.0, 1.0);
    EXPECT_NEAR(plan.qubitOverhead, 10.0, 1e-9);
}

TEST(Parallel, ShortBlocksNeedNoCopies)
{
    auto plan = planBellParallel(1e-4, 1e-3);
    EXPECT_EQ(plan.copies, 1);
}

TEST(Parallel, ActiveFractionReducesOverhead)
{
    auto full = planBellParallel(0.01, 1e-3, 1.0);
    auto half = planBellParallel(0.01, 1e-3, 0.5);
    EXPECT_NEAR(half.qubitOverhead, full.qubitOverhead / 2.0,
                1e-9);
}

TEST(Parallel, RejectsBadInputs)
{
    EXPECT_THROW(planBellParallel(-1.0, 1e-3), FatalError);
    EXPECT_THROW(planBellParallel(1.0, 1e-3, 0.0), FatalError);
}

} // namespace
} // namespace traq::gadgets
