/**
 * @file
 * Tests for the platform (Table I, Eq. (1) movement) and architecture
 * (QEC-cycle timing, idle-SE scheduling, space-time ledger) layers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/arch/qec_cycle.hh"
#include "src/arch/se_schedule.hh"
#include "src/arch/tracker.hh"
#include "src/common/assert.hh"
#include "src/platform/movement.hh"
#include "src/platform/params.hh"

namespace traq {
namespace {

using platform::AtomArrayParams;

TEST(Platform, MoveTimeEq1)
{
    auto p = AtomArrayParams::paperDefaults();
    // Table I calibration: 55 um in 200 us.
    EXPECT_NEAR(platform::moveTime(55e-6, p), 200e-6, 1e-6);
    EXPECT_DOUBLE_EQ(platform::moveTime(0.0, p), 0.0);
}

TEST(Platform, MoveTimeSqrtScaling)
{
    auto p = AtomArrayParams::paperDefaults();
    double t1 = platform::moveTime(100e-6, p);
    double t4 = platform::moveTime(400e-6, p);
    EXPECT_NEAR(t4 / t1, 2.0, 1e-9);
}

TEST(Platform, PatchMoveNear500usAtD27)
{
    auto p = AtomArrayParams::paperDefaults();
    // "Moving a code patch across the distance of a logical qubit
    // takes around 500 us" (Sec. IV.2).
    double t = platform::patchMoveTime(27, p);
    EXPECT_GT(t, 400e-6);
    EXPECT_LT(t, 550e-6);
}

TEST(Platform, ReactionTimeIsOneMs)
{
    auto p = AtomArrayParams::paperDefaults();
    EXPECT_DOUBLE_EQ(p.reactionTime(), 1e-3);
}

TEST(Platform, MoveScheduleAccumulates)
{
    auto p = AtomArrayParams::paperDefaults();
    platform::MoveSchedule sched(p);
    sched.addMoveSites(1.0);
    sched.addGateLayer();
    sched.addMeasurement();
    EXPECT_EQ(sched.steps().size(), 3u);
    double expected = platform::moveTimeSites(1.0, p) + p.gateTime +
                      p.measureTime;
    EXPECT_NEAR(sched.totalTime(), expected, 1e-12);
    EXPECT_NEAR(sched.maxMoveDistance(), p.siteSpacing, 1e-12);
}

TEST(Platform, PipelinedMeasureMoveTakesMax)
{
    auto p = AtomArrayParams::paperDefaults();
    platform::MoveSchedule sched(p);
    sched.addPipelinedMeasureMove(27.0);
    // Patch move (485 us) < measure (500 us): pipelining hides it.
    EXPECT_NEAR(sched.totalTime(), p.measureTime, 1e-9);
    platform::MoveSchedule far(p);
    far.addPipelinedMeasureMove(200.0);
    EXPECT_GT(far.totalTime(), p.measureTime);
}

TEST(Platform, RejectsBadInputs)
{
    auto p = AtomArrayParams::paperDefaults();
    EXPECT_THROW(platform::moveTime(-1.0, p), FatalError);
    EXPECT_THROW(platform::patchWidth(0, p), FatalError);
}

TEST(QecCycle, PaperTimingQuotes)
{
    auto p = AtomArrayParams::paperDefaults();
    auto cyc = arch::qecCycle(27, p);
    // "gates in a QEC cycle taking around 400 us".
    EXPECT_GT(cyc.seGatePhase, 300e-6);
    EXPECT_LT(cyc.seGatePhase, 450e-6);
    // Patch move pipelined under the 500 us measurement.
    EXPECT_NEAR(cyc.measurePhase, 500e-6, 1e-9);
    EXPECT_NEAR(cyc.total, cyc.seGatePhase + cyc.measurePhase,
                1e-12);
    EXPECT_LT(cyc.total, 1e-3);
}

TEST(QecCycle, LongMovesStretchTheCycle)
{
    auto p = AtomArrayParams::paperDefaults();
    auto local = arch::qecCycle(27, p);
    auto longMove = arch::qecCycle(27, p, /*moveSites=*/500.0);
    EXPECT_GT(longMove.total, local.total);
}

TEST(QecCycle, FasterAccelerationShortensCycle)
{
    auto p = AtomArrayParams::paperDefaults();
    auto slow = arch::qecCycle(27, p);
    p.acceleration *= 10.0;
    auto fast = arch::qecCycle(27, p);
    EXPECT_LT(fast.seGatePhase, slow.seGatePhase);
}

TEST(SeSchedule, IdleErrorLinearRegime)
{
    auto p = AtomArrayParams::paperDefaults();
    EXPECT_NEAR(arch::idleError(1e-3, p), 1e-4, 1e-6);
    EXPECT_NEAR(arch::idleError(0.0, p), 0.0, 1e-15);
}

TEST(SeSchedule, OptimalPeriodNearPaper8ms)
{
    auto p = AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    double tau = arch::optimalIdlePeriod(27, p, em);
    // Paper: "a QEC round for storage qubits every 8 ms".
    EXPECT_GT(tau, 2e-3);
    EXPECT_LT(tau, 30e-3);
    double approx = arch::optimalIdlePeriodApprox(27, p, em);
    EXPECT_GT(approx, 1e-3);
    EXPECT_LT(approx, 20e-3);
}

TEST(SeSchedule, OptimumLargelyDistanceIndependent)
{
    // Fig. 11(c): weak dependence on code distance.
    auto p = AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    double t13 = arch::optimalIdlePeriod(13, p, em);
    double t31 = arch::optimalIdlePeriod(31, p, em);
    EXPECT_LT(t13 / t31, 4.0);
    EXPECT_GT(t13 / t31, 1.0);   // slightly longer at small d
}

TEST(SeSchedule, OptimumScalesWithCoherence)
{
    auto p = AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    double t10 = arch::optimalIdlePeriod(27, p, em);
    p.coherenceTime = 1.0;
    double t1 = arch::optimalIdlePeriod(27, p, em);
    EXPECT_LT(t1, t10);
}

TEST(SeSchedule, PeriodFlooredByQecCycle)
{
    auto p = AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    p.coherenceTime = 0.01;   // absurdly short
    double tau = arch::optimalIdlePeriod(27, p, em);
    EXPECT_GE(tau, arch::qecCycle(27, p).total * 0.999);
}

TEST(SeSchedule, RateMinimizedAtOptimum)
{
    auto p = AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    double tau = arch::optimalIdlePeriod(27, p, em);
    double rOpt = arch::idleLogicalErrorRate(tau, 27, p, em);
    EXPECT_LE(rOpt,
              arch::idleLogicalErrorRate(tau * 3.0, 27, p, em));
    EXPECT_LE(rOpt,
              arch::idleLogicalErrorRate(tau / 3.0, 27, p, em));
}

TEST(Ledger, TotalsAndFractions)
{
    arch::SpaceTimeLedger ledger;
    ledger.add("a", 100.0, 2.0, 0.01);
    ledger.add("b", 300.0, 1.0, 0.03);
    EXPECT_DOUBLE_EQ(ledger.totalQubits(), 400.0);
    EXPECT_DOUBLE_EQ(ledger.makespan(), 2.0);
    EXPECT_DOUBLE_EQ(ledger.totalVolume(), 500.0);
    EXPECT_DOUBLE_EQ(ledger.totalError(), 0.04);
    auto space = ledger.spaceFractions();
    EXPECT_DOUBLE_EQ(space[0].second, 0.25);
    EXPECT_DOUBLE_EQ(space[1].second, 0.75);
    auto err = ledger.errorFractions();
    EXPECT_DOUBLE_EQ(err[0].second, 0.25);
    EXPECT_DOUBLE_EQ(err[1].second, 0.75);
}

TEST(Ledger, RejectsNegativeEntries)
{
    arch::SpaceTimeLedger ledger;
    EXPECT_THROW(ledger.add("x", -1.0, 1.0), FatalError);
}

} // namespace
} // namespace traq
