/**
 * @file
 * Tests for the end-to-end estimators: the factoring headline, the
 * parameter optimizer, the lattice-surgery baselines, the chemistry
 * estimator, and the sensitivity behaviours of Figs. 13/14.
 */

#include <gtest/gtest.h>

#include "src/common/assert.hh"
#include "src/estimator/baselines.hh"
#include "src/estimator/chemistry.hh"
#include "src/estimator/optimizer.hh"
#include "src/estimator/shor.hh"

namespace traq::est {
namespace {

TEST(Factoring, HeadlineReproduction)
{
    // Paper: 2048-bit RSA with 19M qubits in 5.6 days at Table II
    // parameters; we must land within ~15%.
    FactoringSpec spec;
    FactoringReport r = estimateFactoring(spec);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.distance, 27);
    EXPECT_EQ(r.rpad, 43);
    EXPECT_NEAR(r.days, 5.6, 0.9);
    EXPECT_NEAR(r.physicalQubits / 19e6, 1.0, 0.15);
    EXPECT_NEAR(r.lookupAdditions / 1.07e6, 1.0, 0.05);
    EXPECT_NEAR(r.cczTotal / 3e9, 1.0, 0.15);
    EXPECT_NEAR(r.timePerLookup, 0.17, 0.02);
    EXPECT_NEAR(r.timePerAddition, 0.28, 0.02);
}

TEST(Factoring, FiftyXSpeedupVsLatticeSurgery)
{
    FactoringSpec spec;
    FactoringReport ours = estimateFactoring(spec);
    GidneyEkeraSpec ge;
    ge.tCycle = 900e-6;
    ge.tReaction = 1e-3;
    BaselinePoint base = gidneyEkera(ge);
    double speedup = base.seconds / ours.totalSeconds;
    EXPECT_GT(speedup, 35.0);
    EXPECT_LT(speedup, 80.0);
    // No increase in space footprint (paper Fig. 2).
    EXPECT_NEAR(ours.physicalQubits / base.physicalQubits, 1.0,
                0.25);
}

TEST(Factoring, ErrorBudgetsRespected)
{
    FactoringSpec spec;
    FactoringReport r = estimateFactoring(spec);
    EXPECT_LE(r.cczError, spec.cczErrorBudget * 1.2);
    EXPECT_LE(r.algorithmLogicalError + r.idleError,
              spec.logicalErrorBudget);
    EXPECT_LE(r.runwayError, spec.runwayErrorBudget * 10);
}

TEST(Factoring, SmallerModulusIsCheaper)
{
    FactoringSpec big, small;
    small.nBits = 1024;
    small.rsep = 64;
    auto rb = estimateFactoring(big);
    auto rs = estimateFactoring(small);
    EXPECT_LT(rs.totalSeconds, rb.totalSeconds);
    EXPECT_LT(rs.physicalQubits, rb.physicalQubits);
    EXPECT_LT(rs.cczTotal, rb.cczTotal);
}

TEST(Factoring, LargerRsepFewerFactoriesSlowerAdds)
{
    FactoringSpec narrow, wide;
    narrow.rsep = 96;
    wide.rsep = 512;
    auto rn = estimateFactoring(narrow);
    auto rw = estimateFactoring(wide);
    EXPECT_GT(rw.timePerAddition, rn.timePerAddition);
    EXPECT_LT(rw.factories, rn.factories);
}

TEST(Factoring, AlphaSensitivityBounded)
{
    // Fig. 13(a): threshold drop 0.86% -> 0.6% costs <= ~50% volume.
    FactoringSpec base;
    auto ref = estimateFactoring(base);
    FactoringSpec worse = base;
    worse.errorModel.alpha = 2.0 / 3.0;   // pth_eff(x=1) = 0.6%
    auto r = estimateFactoring(worse);
    double ratio = r.spacetimeVolume / ref.spacetimeVolume;
    EXPECT_GE(ratio, 1.0);
    EXPECT_LE(ratio, 1.6);
}

TEST(Factoring, CoherenceKneeBelowOneSecond)
{
    // Fig. 13(b): volume accelerates below ~1 s coherence.
    FactoringSpec base;
    base.idlePeriod = -1.0;   // auto-optimized
    auto at = [&](double tcoh) {
        FactoringSpec s = base;
        s.atom.coherenceTime = tcoh;
        return estimateFactoring(s).spacetimeVolume;
    };
    double v10 = at(10.0);
    double v1 = at(1.0);
    double v01 = at(0.1);
    EXPECT_LE(v1 / v10, 1.5);    // mild until ~1 s
    EXPECT_GT(v01 / v10, 1.3);   // accelerating below
    EXPECT_GT(v01, v1);
}

TEST(Factoring, ReactionTimeSweepHasFanoutFloor)
{
    // Fig. 14(c): faster reaction helps, but gains flatten.
    FactoringSpec base;
    auto at = [&](double tr) {
        FactoringSpec s = base;
        s.atom.measureTime = tr / 2;
        s.atom.decodeTime = tr / 2;
        return estimateFactoring(s);
    };
    auto r1 = at(1e-3);
    auto r01 = at(0.1e-3);
    auto r10 = at(10e-3);
    EXPECT_LT(r01.totalSeconds, r1.totalSeconds);
    EXPECT_GT(r10.totalSeconds, r1.totalSeconds);
    // Far less than 10x gain at 10x faster reaction: fan-out floor.
    double gain = r1.totalSeconds / r01.totalSeconds;
    EXPECT_LT(gain, 10.0);
    EXPECT_GT(gain, 2.0);
}

TEST(Factoring, AccelerationSpeedsQecCycle)
{
    FactoringSpec base;
    auto slow = estimateFactoring(base);
    FactoringSpec fast = base;
    fast.atom.acceleration *= 10.0;
    auto rf = estimateFactoring(fast);
    EXPECT_LE(rf.totalSeconds, slow.totalSeconds);
}

TEST(Factoring, ForcedParametersRespected)
{
    FactoringSpec s;
    s.distance = 31;
    s.rpad = 50;
    s.factories = 200;
    auto r = estimateFactoring(s);
    EXPECT_EQ(r.distance, 31);
    EXPECT_EQ(r.rpad, 50);
    EXPECT_EQ(r.factories, 200);
}

TEST(Factoring, LedgersAreConsistent)
{
    FactoringSpec spec;
    auto r = estimateFactoring(spec);
    EXPECT_EQ(r.lookupPhase.entries().size(), 4u);
    EXPECT_EQ(r.additionPhase.entries().size(), 4u);
    // Each phase ledger covers everything except the other phase's
    // active gadget.
    EXPECT_NEAR(r.lookupPhase.totalQubits(),
                r.physicalQubits - r.adderQubits,
                r.physicalQubits * 1e-9);
    EXPECT_NEAR(r.additionPhase.totalQubits(),
                r.physicalQubits - r.lookupQubits,
                r.physicalQubits * 1e-9);
}

TEST(Factoring, RejectsBadSpecs)
{
    FactoringSpec s;
    s.nBits = 8;
    EXPECT_THROW(estimateFactoring(s), FatalError);
}

TEST(Optimizer, FindsTableIIClassParameters)
{
    FactoringSpec base;
    OptimizerOptions opts;
    auto res = optimizeFactoring(base, opts);
    ASSERT_TRUE(res.found);
    EXPECT_GT(res.evaluated, 100u);
    // Table II neighbourhood: small windows, short runways.
    EXPECT_GE(res.bestSpec.wExp, 2);
    EXPECT_LE(res.bestSpec.wExp, 4);
    EXPECT_GE(res.bestSpec.wMul, 3);
    EXPECT_LE(res.bestSpec.wMul, 6);
    EXPECT_LE(res.bestSpec.rsep, 256);
    // The optimum cannot be worse than the paper's configuration.
    auto paperRep = estimateFactoring(base);
    EXPECT_LE(res.bestReport.spacetimeVolume,
              paperRep.spacetimeVolume * 1.001);
}

TEST(Optimizer, QubitCapProducesTradeoff)
{
    // Fig. 14(d): tighter qubit caps stretch the runtime.
    FactoringSpec base;
    OptimizerOptions loose;
    OptimizerOptions tight;
    tight.maxQubits = 13e6;
    auto rl = optimizeFactoring(base, loose);
    auto rt = optimizeFactoring(base, tight);
    ASSERT_TRUE(rl.found);
    ASSERT_TRUE(rt.found);
    EXPECT_LE(rt.bestReport.physicalQubits, 13e6);
    EXPECT_GE(rt.bestReport.totalSeconds,
              rl.bestReport.totalSeconds);
}

TEST(Baselines, GidneyEkeraAnchor)
{
    // Their headline: ~8 hours at 1 us cycle, 10 us reaction.
    GidneyEkeraSpec ge;
    auto p = gidneyEkera(ge);
    EXPECT_NEAR(p.seconds / 3600.0, 8.0, 1.0);
    EXPECT_NEAR(p.physicalQubits, 20e6, 1e5);
}

TEST(Baselines, CycleTimeScalesRuntime)
{
    GidneyEkeraSpec a, b;
    b.tCycle = 900e-6;
    auto pa = gidneyEkera(a);
    auto pb = gidneyEkera(b);
    EXPECT_NEAR(pb.seconds / pa.seconds, 900.0, 5.0);
}

TEST(Baselines, ReactionFloorAtFastCycles)
{
    GidneyEkeraSpec fast;
    fast.tCycle = 1e-7;          // 100 ns cycles
    fast.tReaction = 10e-6;
    auto p = gidneyEkera(fast);
    GidneyEkeraSpec faster = fast;
    faster.tCycle = 1e-8;
    // Reaction-limited: no further gain.
    EXPECT_NEAR(gidneyEkera(faster).seconds, p.seconds, 1e-6);
}

TEST(Baselines, BeverlandAnchorShape)
{
    auto p = beverlandAnchor();
    EXPECT_GT(p.seconds, 3.0 * 365.25 * 86400.0);
    EXPECT_GT(p.physicalQubits, 20e6);
}

TEST(Chemistry, FeMoCoClassEstimate)
{
    ChemistrySpec spec;
    auto r = estimateChemistry(spec);
    EXPECT_GT(r.iterations, 1e6);
    EXPECT_GT(r.cczTotal, 1e8);
    EXPECT_GT(r.speedup, 5.0);   // the O(d) story carries over
    EXPECT_GT(r.physicalQubits, 1e5);
    EXPECT_LT(r.days, 365.0);
}

TEST(Chemistry, AccuracyDrivesIterations)
{
    ChemistrySpec coarse, fine;
    fine.energyError = coarse.energyError / 10.0;
    auto rc = estimateChemistry(coarse);
    auto rf = estimateChemistry(fine);
    EXPECT_NEAR(rf.iterations / rc.iterations, 10.0, 0.1);
}

TEST(Chemistry, RejectsBadSpecs)
{
    ChemistrySpec s;
    s.energyError = 0.0;
    EXPECT_THROW(estimateChemistry(s), FatalError);
}

} // namespace
} // namespace traq::est
