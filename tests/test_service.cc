/**
 * @file
 * Tests for the service front-end stack: the common/json parser
 * (loud FatalError diagnostics on every malformed input), the
 * est::requestFromJson / resultFromJson inverses and the shared
 * non-finite policy, and the JobQueue (submission-order indexing,
 * thread-count byte-identity, canonicalKey cache accounting,
 * per-job error capture).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/common/assert.hh"
#include "src/common/json.hh"
#include "src/common/serialize.hh"
#include "src/estimator/estimator.hh"
#include "src/service/job_queue.hh"

namespace traq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Json, ParsesCompositeDocument)
{
    const json::Value v = json::parse(
        "  {\"b\": [1, 2.5, -3e-2], \"a\": {\"x\": true, "
        "\"y\": false, \"z\": null}, \"s\": \"hi\\n\\u0041\"} ");
    ASSERT_TRUE(v.isObject());
    const json::Value &b = v.at("b");
    ASSERT_TRUE(b.isArray());
    ASSERT_EQ(b.asArray().size(), 3u);
    EXPECT_EQ(b.asArray()[0].asNumber(), 1.0);
    EXPECT_EQ(b.asArray()[1].asNumber(), 2.5);
    EXPECT_EQ(b.asArray()[2].asNumber(), -3e-2);
    EXPECT_TRUE(v.at("a").at("x").asBool());
    EXPECT_FALSE(v.at("a").at("y").asBool());
    EXPECT_TRUE(v.at("a").at("z").isNull());
    EXPECT_EQ(v.at("s").asString(), "hi\nA");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), FatalError);
}

TEST(Json, DumpIsCanonicalAndRoundTrips)
{
    // Keys come back sorted, numbers in exact round-trip form, so
    // dump() is a fixed point under parse().
    const json::Value v = json::parse(
        "{\"z\": 0.0001234567890123, \"a\": [true, null, "
        "\"t\\\"x\"], \"m\": {}}");
    const std::string dumped = v.dump();
    EXPECT_EQ(dumped,
              "{\"a\":[true,null,\"t\\\"x\"],\"m\":{},"
              "\"z\":0.0001234567890123}");
    EXPECT_EQ(json::parse(dumped).dump(), dumped);
}

TEST(Json, NumbersParseExactly)
{
    for (double want :
         {0.0, 1e-3, -1.5, 0.0001234567890123, 1e300, 1e-300,
          4.9406564584124654e-324, 3.141592653589793}) {
        const std::string text = fmtRoundTrip(want);
        EXPECT_EQ(json::parse(text).asNumber(), want) << text;
    }
    // Underflow rounds toward zero (like every mainstream JSON
    // parser); only overflow is out of range.
    EXPECT_EQ(json::parse("1e-400").asNumber(), 0.0);
    EXPECT_EQ(json::parse("-1e-400").asNumber(), 0.0);
}

TEST(Json, MalformedInputsThrowLoudly)
{
    // Fuzz-ish table: every case must throw FatalError — never an
    // uncaught std:: exception, never a crash, never a silent
    // truncation.
    const char *bad[] = {
        "",
        "   ",
        "{",
        "}",
        "[1,",
        "[1 2]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{\"a\":1,}",
        "{\"a\":1 \"b\":2}",
        "{a:1}",
        "tru",
        "truex",
        "nul",
        "falsey",
        "01",
        "+1",
        "-",
        ".5",
        "1.",
        "1e",
        "1e+",
        "1e999",
        "-1e999",
        "1.2.3",
        "nan",
        "inf",
        "\"unterminated",
        "\"bad\\q\"",
        "\"\\u12\"",
        "\"\\u12zz\"",
        "\"\\ud800\"",        // unpaired high surrogate
        "\"\\udc00\"",        // unpaired low surrogate
        "\"ctrl\x01\"",       // raw control character
        "1 2",                // trailing garbage
        "{} {}",
        "{\"a\":1} x",
        "{\"a\":1,\"a\":2}",  // duplicate key
    };
    for (const char *text : bad)
        EXPECT_THROW(json::parse(text), FatalError) << text;
}

TEST(Json, DiagnosticsCarryLineAndColumn)
{
    try {
        json::parse("{\"a\": 1,\n  \"b\": bogus}");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("column"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Json, DeepNestingIsBoundedNotFatal)
{
    // 200 unclosed arrays: must throw (depth limit), not overflow
    // the stack.
    EXPECT_THROW(json::parse(std::string(200, '[')), FatalError);
    // ... and a document inside the limit parses fine.
    std::string ok = std::string(40, '[') + "1" +
                     std::string(40, ']');
    EXPECT_EQ(json::parse(ok).kind(), json::Kind::Array);
}

TEST(Json, NonFiniteTagsAccepted)
{
    EXPECT_TRUE(std::isnan(
        json::parse("\"nan\"").asNumberOrTag()));
    EXPECT_EQ(json::parse("\"inf\"").asNumberOrTag(), kInf);
    EXPECT_EQ(json::parse("\"-inf\"").asNumberOrTag(), -kInf);
    EXPECT_EQ(json::parse("2.5").asNumberOrTag(), 2.5);
    EXPECT_THROW(json::parse("\"infinity\"").asNumberOrTag(),
                 FatalError);
    EXPECT_THROW(json::parse("true").asNumberOrTag(), FatalError);
}

TEST(RequestJson, RoundTripsIncludingNonFinite)
{
    est::EstimateRequest req{
        "factoring",
        {{"rsep", 96},
         {"weird.nan", std::nan("")},
         {"weird.pinf", kInf},
         {"weird.ninf", -kInf},
         {"tiny", 4.9406564584124654e-324}}};
    const std::string text = est::toJson(req);
    const est::EstimateRequest back = est::requestFromJson(text);
    EXPECT_EQ(back.kind, req.kind);
    ASSERT_EQ(back.params.size(), req.params.size());
    // request -> JSON -> parse -> canonicalKey is a fixed point.
    EXPECT_EQ(est::canonicalKey(back), est::canonicalKey(req));
    // ... and the re-emitted JSON is byte-identical.
    EXPECT_EQ(est::toJson(back), text);
}

TEST(RequestJson, MalformedRequestsThrow)
{
    EXPECT_THROW(est::requestFromJson("[]"), FatalError);
    EXPECT_THROW(est::requestFromJson("{}"), FatalError);
    EXPECT_THROW(est::requestFromJson("{\"kind\":\"\"}"),
                 FatalError);
    EXPECT_THROW(est::requestFromJson("{\"kind\":42}"), FatalError);
    EXPECT_THROW(
        est::requestFromJson("{\"kind\":\"x\",\"bogus\":{}}"),
        FatalError);
    EXPECT_THROW(est::requestFromJson(
                     "{\"kind\":\"x\",\"params\":{\"p\":true}}"),
                 FatalError);
    EXPECT_THROW(est::requestFromJson(
                     "{\"kind\":\"x\",\"params\":{\"p\":\"oops\"}}"),
                 FatalError);
    EXPECT_THROW(est::requestFromJson(
                     "{\"kind\":\"x\",\"params\":[1]}"),
                 FatalError);
}

TEST(RequestJson, ParamsMayBeOmitted)
{
    const est::EstimateRequest req =
        est::requestFromJson("{\"kind\":\"factoring\"}");
    EXPECT_EQ(req.kind, "factoring");
    EXPECT_TRUE(req.params.empty());
}

TEST(ResultJson, RoundTripsEveryBuiltinKind)
{
    // Cheap-but-real parameters per kind; the Monte-Carlo kinds run
    // reduced grids so the suite stays quick.
    const std::vector<est::EstimateRequest> requests = {
        {"factoring", {{"rsep", 96}}},
        {"chemistry", {}},
        {"gidney-ekera", {}},
        {"qldpc-storage", {{"compressionFactor", 5}}},
        {"factory-design", {}},
        {"idle-storage", {{"sePeriod", 0.004}}},
        {"mc-logical-error", {{"p", 0.02}, {"shots", 1024}}},
        // fixLambda skips the memory-anchor Lambda fit, and a
        // raised p keeps failures observable at unit-test shot
        // counts (the fit needs >= 3 grid points with failures).
        {"mc-alpha",
         {{"p", 8e-3}, {"shots", 2048}, {"fixLambda", 2.0}}},
    };
    for (const est::EstimateRequest &req : requests) {
        SCOPED_TRACE(req.kind);
        // Request side.
        const est::EstimateRequest reqBack =
            est::requestFromJson(est::toJson(req));
        EXPECT_EQ(est::canonicalKey(reqBack),
                  est::canonicalKey(req));
        // Result side: bit-exact metric round-trip, byte-exact
        // re-serialization.
        const est::EstimateResult res =
            est::makeEstimator(req.kind)->estimate(req);
        const std::string text = est::toJson(res);
        const est::EstimateResult back = est::resultFromJson(text);
        EXPECT_EQ(back.kind, res.kind);
        EXPECT_EQ(back.feasible, res.feasible);
        ASSERT_EQ(back.metrics.size(), res.metrics.size());
        for (const auto &[name, v] : res.metrics) {
            ASSERT_TRUE(back.metrics.count(name)) << name;
            const double got = back.metrics.at(name);
            if (std::isnan(v))
                EXPECT_TRUE(std::isnan(got)) << name;
            else
                EXPECT_EQ(got, v) << name;
        }
        EXPECT_EQ(est::toJson(back), text);
    }
}

TEST(ResultJson, DefaultsAndUnknownMembers)
{
    const est::EstimateResult res = est::resultFromJson(
        "{\"kind\":\"factoring\",\"metrics\":{\"days\":9.5}}");
    EXPECT_TRUE(res.feasible);
    EXPECT_TRUE(res.params.empty());
    EXPECT_EQ(res.metric("days"), 9.5);
    EXPECT_THROW(
        est::resultFromJson("{\"kind\":\"x\",\"bogus\":1}"),
        FatalError);
    EXPECT_THROW(
        est::resultFromJson(
            "{\"kind\":\"x\",\"feasible\":\"yes\"}"),
        FatalError);
}

std::vector<est::EstimateRequest>
mixedRequests()
{
    return {
        {"gidney-ekera", {{"tReaction", 1e-3}}},
        {"idle-storage", {{"distance", 17}}},
        {"gidney-ekera", {{"tReaction", 1e-3}}},  // duplicate of 0
        {"factory-design", {}},
        {"no-such-kind", {}},                     // fails loudly
        {"gidney-ekera", {{"tReaction", 2e-3}}},
        {"no-such-kind", {}},                     // duplicate failure
        {"idle-storage", {{"distance", 17}}},     // duplicate of 1
    };
}

/** Outcome JSON lines in submission order. */
std::string
serveAll(const std::vector<est::EstimateRequest> &reqs,
         unsigned threads, bool cache)
{
    service::JobQueueOptions opts;
    opts.threads = threads;
    opts.cache = cache;
    service::JobQueue queue(opts);
    const std::vector<service::JobQueue::JobId> ids =
        queue.submitBatch(reqs);
    std::string out;
    for (const service::JobQueue::JobId id : ids) {
        out += queue.wait(id).toJson();
        out += '\n';
    }
    return out;
}

TEST(JobQueue, SubmissionOrderIdsAndResults)
{
    service::JobQueue queue;
    const auto ids = queue.submitBatch(mixedRequests());
    ASSERT_EQ(ids.size(), 8u);
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], i);
    // Duplicates resolve to identical outcomes.
    EXPECT_EQ(queue.wait(0).toJson(), queue.wait(2).toJson());
    EXPECT_EQ(queue.wait(1).toJson(), queue.wait(7).toJson());
    // The known-good jobs succeeded.
    EXPECT_TRUE(queue.wait(0).ok);
    EXPECT_TRUE(queue.wait(3).ok);
}

TEST(JobQueue, ByteIdenticalAcrossThreadCounts)
{
    const auto reqs = mixedRequests();
    const std::string one = serveAll(reqs, 1, true);
    EXPECT_EQ(serveAll(reqs, 4, true), one);
    EXPECT_EQ(serveAll(reqs, 3, true), one);
    // The cache only affects evaluation counts, never bytes.
    EXPECT_EQ(serveAll(reqs, 4, false), one);
}

TEST(JobQueue, CacheHitAccountingIsDeterministic)
{
    const auto reqs = mixedRequests();
    for (unsigned threads : {1u, 4u}) {
        service::JobQueueOptions opts;
        opts.threads = threads;
        service::JobQueue queue(opts);
        queue.submitBatch(reqs);
        queue.drain();
        const service::JobQueueStats stats = queue.stats();
        EXPECT_EQ(stats.submitted, 8u);
        EXPECT_EQ(stats.evaluated, 5u);  // unique canonical keys
        EXPECT_EQ(stats.cacheHits, 3u);
        EXPECT_EQ(stats.failed, 1u);     // one failing unique key
        EXPECT_EQ(stats.inflight, 0u);
    }
}

TEST(JobQueue, CacheOffEvaluatesEverything)
{
    service::JobQueueOptions opts;
    opts.cache = false;
    service::JobQueue queue(opts);
    queue.submitBatch(mixedRequests());
    queue.drain();
    const service::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.evaluated, 8u);
    EXPECT_EQ(stats.cacheHits, 0u);
    EXPECT_EQ(stats.failed, 2u);  // both failing jobs evaluated
}

TEST(JobQueue, ErrorsAreCapturedPerJobNotThrown)
{
    service::JobQueue queue;
    const auto unknownKind =
        queue.submit({"no-such-kind", {}});
    const auto unknownParam =
        queue.submit({"factoring", {{"bogus", 1.0}}});
    const auto good = queue.submit({"gidney-ekera", {}});

    const service::JobOutcome &a = queue.wait(unknownKind);
    EXPECT_FALSE(a.ok);
    EXPECT_NE(a.error.find("no estimator registered"),
              std::string::npos)
        << a.error;
    EXPECT_NE(a.toJson().find("{\"error\":"), std::string::npos);

    const service::JobOutcome &b = queue.wait(unknownParam);
    EXPECT_FALSE(b.ok);
    EXPECT_NE(b.error.find("unknown factoring parameter"),
              std::string::npos)
        << b.error;

    // The queue keeps serving after failures.
    EXPECT_TRUE(queue.wait(good).ok);
}

TEST(JobQueue, FailuresAreCachedLikeResults)
{
    service::JobQueue queue;
    const auto first = queue.submit({"no-such-kind", {}});
    queue.wait(first);
    const auto second = queue.submit({"no-such-kind", {}});
    EXPECT_EQ(queue.wait(first).toJson(),
              queue.wait(second).toJson());
    const service::JobQueueStats stats = queue.stats();
    EXPECT_EQ(stats.evaluated, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.failed, 1u);
}

TEST(JobQueue, WaitRejectsUnknownIds)
{
    service::JobQueue queue;
    EXPECT_THROW(queue.wait(0), FatalError);
}

TEST(JobQueue, NonFiniteParamsServeThroughJsonUnharmed)
{
    // A request with non-finite parameters survives the full
    // service path: JSON in, canonicalKey cache, JSON out.
    est::EstimateRequest req{"no-such-kind",
                             {{"weird", kInf}, {"odd", -kInf}}};
    const est::EstimateRequest parsed =
        est::requestFromJson(est::toJson(req));
    service::JobQueue queue;
    const auto a = queue.submit(req);
    const auto b = queue.submit(parsed);
    queue.drain();
    EXPECT_EQ(queue.stats().evaluated, 1u);  // same canonical key
    EXPECT_EQ(queue.stats().cacheHits, 1u);
    EXPECT_EQ(queue.wait(a).toJson(), queue.wait(b).toJson());
}

} // namespace
} // namespace traq
