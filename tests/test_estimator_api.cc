/**
 * @file
 * Tests for the unified Estimator API and the parallel SweepRunner:
 * registry round-trips, parameter application against the original
 * free-function entry points, sweep determinism across thread
 * counts, memoization accounting, serialization round-trips, the
 * shared TRAQ_THREADS policy, and the retained optimizer frontier.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/common/assert.hh"
#include "src/common/serialize.hh"
#include "src/common/strings.hh"
#include "src/common/threads.hh"
#include "src/estimator/optimizer.hh"
#include "src/estimator/sweep.hh"

namespace traq::est {
namespace {

void
expectSameResult(const EstimateResult &a, const EstimateResult &b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.feasible, b.feasible);
    ASSERT_EQ(a.params.size(), b.params.size());
    for (const auto &[name, v] : a.params) {
        ASSERT_TRUE(b.params.count(name)) << name;
        EXPECT_EQ(v, b.params.at(name)) << name;  // bit-identical
    }
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (const auto &[name, v] : a.metrics) {
        ASSERT_TRUE(b.metrics.count(name)) << name;
        EXPECT_EQ(v, b.metrics.at(name)) << name; // bit-identical
    }
}

TEST(EstimatorRegistry, RoundTripAllKinds)
{
    for (const char *kind : {"factoring", "chemistry",
                             "gidney-ekera", "qldpc-storage",
                             "factory-design", "idle-storage"}) {
        auto e = makeEstimator(kind);
        ASSERT_NE(e, nullptr) << kind;
        EXPECT_STREQ(e->kind(), kind);
        // A default request must be servable by every kind.
        EstimateResult r = e->estimate({kind, {}});
        EXPECT_EQ(r.kind, kind);
        EXPECT_FALSE(r.metrics.empty()) << kind;
    }
}

TEST(EstimatorRegistry, ListsBuiltins)
{
    auto kinds = registeredEstimators();
    for (const char *kind : {"factoring", "chemistry",
                             "gidney-ekera", "qldpc-storage"})
        EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind),
                  kinds.end())
            << kind;
}

TEST(EstimatorRegistry, UnknownKindThrows)
{
    EXPECT_THROW(makeEstimator("no-such-estimator"), FatalError);
}

TEST(EstimatorRegistry, CustomKindRegisters)
{
    class Fixed : public Estimator
    {
      public:
        const char *kind() const override { return "fixed"; }
        EstimateResult
        estimate(const EstimateRequest &req) const override
        {
            EstimateResult r;
            r.kind = kind();
            r.params = req.params;
            r.metrics["answer"] = 42.0;
            return r;
        }
    };
    registerEstimator("fixed",
                      [] { return std::make_unique<Fixed>(); });
    auto e = makeEstimator("fixed");
    EXPECT_EQ(e->estimate({"fixed", {}}).metric("answer"), 42.0);
}

TEST(EstimatorApi, FactoringMatchesFreeFunction)
{
    auto e = makeEstimator("factoring");
    EstimateResult r = e->estimate({"factoring", {}});
    FactoringReport rep = estimateFactoring(FactoringSpec{});
    EXPECT_EQ(r.feasible, rep.feasible);
    EXPECT_EQ(r.metric("physicalQubits"), rep.physicalQubits);
    EXPECT_EQ(r.metric("totalSeconds"), rep.totalSeconds);
    EXPECT_EQ(r.metric("spacetimeVolume"), rep.spacetimeVolume);
    EXPECT_EQ(r.metric("distance"), rep.distance);
}

TEST(EstimatorApi, FactoringParamsApply)
{
    auto e = makeEstimator("factoring");
    EstimateResult r = e->estimate(
        {"factoring", {{"rsep", 256}, {"errorModel.alpha", 0.5}}});
    FactoringSpec spec;
    spec.rsep = 256;
    spec.errorModel.alpha = 0.5;
    FactoringReport rep = estimateFactoring(spec);
    EXPECT_EQ(r.metric("physicalQubits"), rep.physicalQubits);
    EXPECT_EQ(r.metric("totalSeconds"), rep.totalSeconds);
}

TEST(EstimatorApi, ReactionTimeSplitsEvenly)
{
    auto e = makeEstimator("factoring");
    EstimateResult joint = e->estimate(
        {"factoring", {{"atom.reactionTime", 2e-3}}});
    EstimateResult split = e->estimate(
        {"factoring",
         {{"atom.measureTime", 1e-3}, {"atom.decodeTime", 1e-3}}});
    EXPECT_EQ(joint.metric("totalSeconds"),
              split.metric("totalSeconds"));
}

TEST(EstimatorApi, ChemistryMatchesFreeFunction)
{
    auto e = makeEstimator("chemistry");
    EstimateResult r =
        e->estimate({"chemistry", {{"energyError", 1e-4}}});
    ChemistrySpec spec;
    spec.energyError = 1e-4;
    ChemistryReport rep = estimateChemistry(spec);
    EXPECT_EQ(r.metric("iterations"), rep.iterations);
    EXPECT_EQ(r.metric("speedup"), rep.speedup);
}

TEST(EstimatorApi, GidneyEkeraMatchesFreeFunction)
{
    auto e = makeEstimator("gidney-ekera");
    EstimateResult r = e->estimate(
        {"gidney-ekera", {{"tCycle", 900e-6}, {"tReaction", 1e-3}}});
    GidneyEkeraSpec spec;
    spec.tCycle = 900e-6;
    spec.tReaction = 1e-3;
    BaselinePoint p = gidneyEkera(spec);
    EXPECT_EQ(r.metric("physicalQubits"), p.physicalQubits);
    EXPECT_EQ(r.metric("totalSeconds"), p.seconds);
}

TEST(EstimatorApi, QldpcStorageMatchesFreeFunctions)
{
    auto e = makeEstimator("qldpc-storage");
    EstimateResult r = e->estimate(
        {"qldpc-storage", {{"compressionFactor", 5.0}}});
    FactoringSpec spec;
    FactoringReport base = estimateFactoring(spec);
    QldpcStorageSpec qs;
    qs.compressionFactor = 5.0;
    QldpcStorageReport rep = applyQldpcStorage(base, spec, qs);
    EXPECT_EQ(r.metric("physicalQubits"), rep.physicalQubits);
    EXPECT_EQ(r.metric("footprintReduction"),
              rep.footprintReduction);
    EXPECT_EQ(r.metric("accessCycleTime"), rep.accessCycleTime);
}

TEST(EstimatorApi, UnknownParameterThrows)
{
    EXPECT_THROW(makeEstimator("factoring")
                     ->estimate({"factoring", {{"bogus", 1.0}}}),
                 FatalError);
    EXPECT_THROW(makeEstimator("chemistry")
                     ->estimate({"chemistry", {{"rsep", 96}}}),
                 FatalError);
    EXPECT_THROW(
        makeEstimator("qldpc-storage")
            ->estimate({"qldpc-storage", {{"bogus", 1.0}}}),
        FatalError);
}

TEST(EstimatorApi, CanonicalKeyDistinguishesRequests)
{
    EstimateRequest a{"factoring", {{"rsep", 96}}};
    EstimateRequest b{"factoring", {{"rsep", 256}}};
    EstimateRequest c{"factoring", {{"rsep", 96}}};
    EXPECT_NE(canonicalKey(a), canonicalKey(b));
    EXPECT_EQ(canonicalKey(a), canonicalKey(c));
    EXPECT_NE(canonicalKey({"chemistry", {}}),
              canonicalKey({"factoring", {}}));
}

TEST(Sweep, GridExpansionIsRowMajor)
{
    SweepRunner sweep(EstimateRequest{"factoring", {}});
    sweep.addAxis("wExp", {2, 3}).addAxis("rsep", {96, 256, 512});
    ASSERT_EQ(sweep.numJobs(), 6u);
    // First axis slowest, last axis fastest.
    EXPECT_EQ(sweep.request(0).params.at("wExp"), 2);
    EXPECT_EQ(sweep.request(0).params.at("rsep"), 96);
    EXPECT_EQ(sweep.request(2).params.at("wExp"), 2);
    EXPECT_EQ(sweep.request(2).params.at("rsep"), 512);
    EXPECT_EQ(sweep.request(3).params.at("wExp"), 3);
    EXPECT_EQ(sweep.request(3).params.at("rsep"), 96);
}

TEST(Sweep, DeterministicAcrossThreadCounts)
{
    auto runWith = [](unsigned threads) {
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner sweep(EstimateRequest{"factoring", {}}, opts);
        sweep.addAxis("rsep", {96, 256, 512})
            .addAxis("errorModel.alpha", {1.0 / 6.0, 0.5});
        return sweep.run();
    };
    SweepResult one = runWith(1);
    SweepResult four = runWith(4);
    EXPECT_EQ(one.threadsUsed, 1u);
    EXPECT_EQ(four.threadsUsed, 4u);
    ASSERT_EQ(one.results.size(), four.results.size());
    for (std::size_t i = 0; i < one.results.size(); ++i)
        expectSameResult(one.results[i], four.results[i]);
    // Identical serialization, byte for byte.
    EXPECT_EQ(one.toCsv(), four.toCsv());
    EXPECT_EQ(one.toJson(), four.toJson());
}

TEST(Sweep, MemoizationCountsHits)
{
    SweepRunner sweep(EstimateRequest{"factoring", {}});
    sweep.addAxis("rsep", {96, 96, 256});
    SweepResult r = sweep.run();
    ASSERT_EQ(r.results.size(), 3u);
    EXPECT_EQ(r.evaluated, 2u);
    EXPECT_EQ(r.memoHits, 1u);
    expectSameResult(r.results[0], r.results[1]);
}

TEST(Sweep, MemoizationCanBeDisabled)
{
    SweepOptions opts;
    opts.memoize = false;
    SweepRunner sweep(EstimateRequest{"factoring", {}}, opts);
    sweep.addAxis("rsep", {96, 96});
    SweepResult r = sweep.run();
    EXPECT_EQ(r.evaluated, 2u);
    EXPECT_EQ(r.memoHits, 0u);
    expectSameResult(r.results[0], r.results[1]);
}

TEST(Sweep, ExplicitRequestListPreservesOrder)
{
    auto e = makeEstimator("gidney-ekera");
    std::vector<EstimateRequest> jobs = {
        {"gidney-ekera", {{"tReaction", 10e-3}}},
        {"gidney-ekera", {{"tReaction", 0.1e-3}}},
        {"gidney-ekera", {{"tReaction", 10e-3}}},
    };
    SweepResult r = runRequests(*e, jobs);
    ASSERT_EQ(r.results.size(), 3u);
    EXPECT_EQ(r.results[0].params.at("tReaction"), 10e-3);
    EXPECT_EQ(r.results[1].params.at("tReaction"), 0.1e-3);
    EXPECT_EQ(r.memoHits, 1u);
    expectSameResult(r.results[0], r.results[2]);
}

TEST(Sweep, ErrorsPropagate)
{
    SweepRunner sweep(EstimateRequest{"factoring", {}});
    sweep.addAxis("bogusParameter", {1, 2, 3});
    EXPECT_THROW(sweep.run(), FatalError);
}

TEST(Sweep, CsvRoundTrips)
{
    SweepRunner sweep(EstimateRequest{"factoring", {}});
    sweep.addAxis("rsep", {96, 256});
    SweepResult r = sweep.run();
    std::string csv = r.toCsv({"rsep", "physicalQubits",
                               "spacetimeVolume"});
    auto lines = splitChar(trim(csv), '\n');
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "rsep,physicalQubits,spacetimeVolume");
    for (std::size_t i = 0; i < 2; ++i) {
        auto fields = splitChar(lines[i + 1], ',');
        ASSERT_EQ(fields.size(), 3u);
        // Exact round-trip back to the original doubles.
        EXPECT_EQ(std::strtod(fields[0].c_str(), nullptr),
                  r.results[i].params.at("rsep"));
        EXPECT_EQ(std::strtod(fields[1].c_str(), nullptr),
                  r.results[i].metric("physicalQubits"));
        EXPECT_EQ(std::strtod(fields[2].c_str(), nullptr),
                  r.results[i].metric("spacetimeVolume"));
    }
}

TEST(Sweep, JsonSerializesEveryJob)
{
    SweepRunner sweep(EstimateRequest{"factoring", {}});
    sweep.addAxis("rsep", {96, 256});
    SweepResult r = sweep.run();
    std::string json = r.toJson();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    // One object per job, each carrying kind and feasibility.
    std::size_t count = 0, pos = 0;
    while ((pos = json.find("\"kind\":\"factoring\"", pos)) !=
           std::string::npos) {
        ++count;
        pos += 1;
    }
    EXPECT_EQ(count, 2u);
    EXPECT_NE(json.find("\"rsep\":96"), std::string::npos);
    EXPECT_NE(json.find("\"rsep\":256"), std::string::npos);
}

TEST(Sweep, TableSelectsColumns)
{
    SweepRunner sweep(EstimateRequest{"factoring", {}});
    sweep.addAxis("rsep", {96, 256});
    SweepResult r = sweep.run();
    Table t = r.toTable({"rsep", "feasible", "kind"});
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(r.cell(0, "rsep"), "96");
    EXPECT_EQ(r.cell(0, "kind"), "factoring");
    EXPECT_EQ(r.cell(0, "feasible"), "true");
    EXPECT_EQ(r.cell(0, "noSuchColumn"), "");
}

TEST(Threads, ExplicitRequestWins)
{
    EXPECT_EQ(resolveThreadCount(3), 3u);
}

TEST(Threads, EnvOverrideApplies)
{
    ::setenv("TRAQ_THREADS", "2", 1);
    EXPECT_EQ(resolveThreadCount(0), 2u);
    EXPECT_EQ(resolveThreadCount(5), 5u);  // explicit still wins
    // Malformed values throw (same loudness as TRAQ_WORD_BACKEND):
    // a typo in a determinism harness must not silently change the
    // thread count.
    ::setenv("TRAQ_THREADS", "garbage", 1);
    EXPECT_THROW(resolveThreadCount(0), FatalError);
    ::setenv("TRAQ_THREADS", "-4", 1);
    EXPECT_THROW(resolveThreadCount(0), FatalError);
    ::setenv("TRAQ_THREADS", "0", 1);
    EXPECT_THROW(resolveThreadCount(0), FatalError);
    ::setenv("TRAQ_THREADS", "4x", 1);
    EXPECT_THROW(resolveThreadCount(0), FatalError);
    ::setenv("TRAQ_THREADS", "99999999999999999999", 1);
    EXPECT_THROW(resolveThreadCount(0), FatalError);
    // Unset and empty still mean "use the hardware".
    ::setenv("TRAQ_THREADS", "", 1);
    EXPECT_GE(resolveThreadCount(0), 1u);
    ::unsetenv("TRAQ_THREADS");
    EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(Threads, SweepHonorsEnv)
{
    ::setenv("TRAQ_THREADS", "2", 1);
    SweepRunner sweep(EstimateRequest{"gidney-ekera", {}});
    sweep.addAxis("tReaction", {1e-3, 2e-3, 4e-3});
    SweepResult r = sweep.run();
    ::unsetenv("TRAQ_THREADS");
    EXPECT_EQ(r.threadsUsed, 2u);
}

TEST(Threads, MonteCarloHonorsEnv)
{
    // Resolution is shared; the engine clamps to the shard count.
    ::setenv("TRAQ_THREADS", "2", 1);
    EXPECT_EQ(resolveThreadCount(0), 2u);
    ::unsetenv("TRAQ_THREADS");
}

TEST(OptimizerFrontier, RetainsAllFeasiblePoints)
{
    FactoringSpec base;
    OptimizerOptions opts;
    auto res = optimizeFactoring(base, opts);
    ASSERT_TRUE(res.found);
    EXPECT_EQ(res.evaluated,
              opts.wExpCandidates.size() *
                  opts.wMulCandidates.size() *
                  opts.rsepCandidates.size());
    EXPECT_FALSE(res.feasiblePoints.empty());
    EXPECT_LE(res.feasiblePoints.size(), res.evaluated);
    // The best is one of the retained points.
    const OptimizerPoint *best = res.bestUnder(-1.0);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->spec.wExp, res.bestSpec.wExp);
    EXPECT_EQ(best->spec.wMul, res.bestSpec.wMul);
    EXPECT_EQ(best->spec.rsep, res.bestSpec.rsep);
    EXPECT_EQ(best->spacetimeVolume,
              res.bestReport.spacetimeVolume);
}

TEST(OptimizerFrontier, BestUnderMatchesCappedRun)
{
    // One uncapped sweep answers the capped query exactly as a
    // dedicated capped run does (the Fig. 14(d) pattern).
    FactoringSpec base;
    auto frontier = optimizeFactoring(base);
    OptimizerOptions capped;
    capped.maxQubits = 13e6;
    auto direct = optimizeFactoring(base, capped);
    ASSERT_TRUE(direct.found);
    const OptimizerPoint *p = frontier.bestUnder(13e6);
    ASSERT_NE(p, nullptr);
    EXPECT_LE(p->physicalQubits, 13e6);
    EXPECT_EQ(p->spec.wExp, direct.bestSpec.wExp);
    EXPECT_EQ(p->spec.wMul, direct.bestSpec.wMul);
    EXPECT_EQ(p->spec.rsep, direct.bestSpec.rsep);
    EXPECT_EQ(p->spacetimeVolume,
              direct.bestReport.spacetimeVolume);
}

TEST(OptimizerFrontier, DeterministicAcrossThreadCounts)
{
    FactoringSpec base;
    OptimizerOptions one, four;
    one.threads = 1;
    four.threads = 4;
    auto a = optimizeFactoring(base, one);
    auto b = optimizeFactoring(base, four);
    ASSERT_EQ(a.feasiblePoints.size(), b.feasiblePoints.size());
    for (std::size_t i = 0; i < a.feasiblePoints.size(); ++i) {
        EXPECT_EQ(a.feasiblePoints[i].spec.rsep,
                  b.feasiblePoints[i].spec.rsep);
        EXPECT_EQ(a.feasiblePoints[i].spacetimeVolume,
                  b.feasiblePoints[i].spacetimeVolume);
    }
    EXPECT_EQ(a.bestSpec.rsep, b.bestSpec.rsep);
}

} // namespace
} // namespace traq::est
