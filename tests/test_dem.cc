/**
 * @file
 * Tests for detector-error-model extraction: hand-checkable circuits
 * (repetition code), component probabilities, merging, and agreement
 * with Monte-Carlo detector statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/sim/circuit.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"

namespace traq::sim {
namespace {

/** Three-qubit repetition code, one round: hand-checkable DEM. */
Circuit
repetitionCircuit(double p)
{
    // Data: 0, 1, 2; ancillas 3 (checks 0,1) and 4 (checks 1,2).
    Circuit c;
    c.append(Gate::R, {0, 1, 2, 3, 4});
    c.xError(p, {0, 1, 2});
    c.append(Gate::CX, {0, 3, 1, 4});
    c.append(Gate::CX, {1, 3, 2, 4});
    c.append(Gate::MR, {3, 4});
    c.detector({2});           // ancilla 3
    c.detector({1});           // ancilla 4
    c.m(0);
    c.m(1);
    c.m(2);
    c.observable(0, {3});      // data 0
    return c;
}

TEST(Dem, RepetitionCodeStructure)
{
    DetectorErrorModel dem = buildDem(repetitionCircuit(0.01));
    EXPECT_EQ(dem.numDetectors, 2u);
    EXPECT_EQ(dem.numObservables, 1u);
    // Three mechanisms: X0 -> {D0, obs}, X1 -> {D0, D1}, X2 -> {D1}.
    ASSERT_EQ(dem.errors.size(), 3u);
    std::map<std::vector<std::uint32_t>,
             std::pair<double, std::uint32_t>> found;
    for (const auto &e : dem.errors)
        found[e.detectors] = {e.probability, e.observables};
    const std::vector<std::uint32_t> d0{0};
    const std::vector<std::uint32_t> d01{0, 1};
    const std::vector<std::uint32_t> d1{1};
    ASSERT_TRUE(found.count(d0));
    ASSERT_TRUE(found.count(d01));
    ASSERT_TRUE(found.count(d1));
    EXPECT_NEAR(found[d0].first, 0.01, 1e-12);
    EXPECT_EQ(found[d0].second, 1u);      // flips the observable
    EXPECT_EQ(found[d01].second, 0u);
    EXPECT_EQ(found[d1].second, 0u);
}

TEST(Dem, MergesIdenticalSymptoms)
{
    // Two X_ERROR instructions on the same qubit before measurement
    // merge into one mechanism with XOR-combined probability.
    Circuit c;
    c.xError(0.1, {0});
    c.xError(0.2, {0});
    c.m(0);
    c.detector({1});
    DetectorErrorModel dem = buildDem(c);
    ASSERT_EQ(dem.errors.size(), 1u);
    EXPECT_NEAR(dem.errors[0].probability, 0.1 * 0.8 + 0.2 * 0.9,
                1e-12);
}

// Local reference for XOR probability combination.
double
pXorRef(double a, double b)
{
    return a * (1 - b) + b * (1 - a);
}

TEST(Dem, Depolarize1SplitsComponents)
{
    // X and Y components flip a Z measurement; Z component is
    // invisible and dropped.
    Circuit c;
    c.depolarize1(0.3, {0});
    c.m(0);
    c.detector({1});
    DetectorErrorModel dem = buildDem(c);
    ASSERT_EQ(dem.errors.size(), 1u);
    EXPECT_NEAR(dem.errors[0].probability, pXorRef(0.1, 0.1), 1e-12);
}

TEST(Dem, KeepInvisibleFlagCountsNoiseVolume)
{
    Circuit c;
    c.zError(0.25, {0});
    c.m(0);
    c.detector({1});
    DetectorErrorModel demDrop = buildDem(c, true);
    EXPECT_TRUE(demDrop.errors.empty());
    DetectorErrorModel demKeep = buildDem(c, false);
    ASSERT_EQ(demKeep.errors.size(), 1u);
    EXPECT_TRUE(demKeep.errors[0].detectors.empty());
}

TEST(Dem, ErrorAfterGatePropagates)
{
    // Noise between two CX gates: the X error on qubit 0 spreads to
    // qubit 1 through the second CX only.
    Circuit c;
    c.append(Gate::R, {0, 1});
    c.cx(0, 1);
    c.xError(1.0, {0});
    c.cx(0, 1);
    c.m(0);
    c.m(1);
    c.detector({2});
    c.detector({1});
    DetectorErrorModel dem = buildDem(c);
    ASSERT_EQ(dem.errors.size(), 1u);
    EXPECT_EQ(dem.errors[0].detectors.size(), 2u);
}

TEST(Dem, TotalErrorWeightSums)
{
    Circuit c;
    c.xError(0.1, {0, 1});
    c.m(0);
    c.m(1);
    c.detector({2});
    c.detector({1});
    DetectorErrorModel dem = buildDem(c);
    EXPECT_NEAR(dem.totalErrorWeight(), 0.2, 1e-12);
}

/**
 * Property: detector flip rates predicted by the DEM (to first order)
 * match frame-simulator Monte Carlo on the repetition circuit.
 */
TEST(Dem, MatchesMonteCarloRates)
{
    const double p = 0.02;
    Circuit c = repetitionCircuit(p);
    DetectorErrorModel dem = buildDem(c);

    // Exact per-detector flip probability from the DEM (independent
    // mechanisms, XOR semantics).
    std::vector<double> predicted(dem.numDetectors, 0.0);
    for (const auto &e : dem.errors)
        for (std::uint32_t d : e.detectors)
            predicted[d] = predicted[d] * (1 - e.probability) +
                           e.probability * (1 - predicted[d]);

    FrameSimulator sim(2718);
    std::vector<std::uint64_t> flips(dem.numDetectors, 0);
    std::uint64_t shots = 0;
    for (int i = 0; i < 3000; ++i) {
        FrameBatch b = sim.sample(c);
        for (std::size_t d = 0; d < flips.size(); ++d)
            flips[d] += __builtin_popcountll(b.detectors[d]);
        shots += 64;
    }
    for (std::size_t d = 0; d < flips.size(); ++d) {
        double observed = static_cast<double>(flips[d]) / shots;
        EXPECT_NEAR(observed, predicted[d], 0.004) << "detector " << d;
    }
}

} // namespace
} // namespace traq::sim
