/**
 * @file
 * Tests for the circuit IR: building, validation, counting, and
 * text round-tripping.
 */

#include <gtest/gtest.h>

#include <iterator>

#include "src/common/assert.hh"
#include "src/sim/circuit.hh"

namespace traq::sim {
namespace {

TEST(Circuit, CountsQubitsAndMeasurements)
{
    Circuit c;
    c.h(0);
    c.cx(0, 5);
    c.m(0);
    c.m(5);
    EXPECT_EQ(c.numQubits(), 6u);
    EXPECT_EQ(c.numMeasurements(), 2u);
    EXPECT_EQ(c.numDetectors(), 0u);
}

TEST(Circuit, DetectorLookbacksValidated)
{
    Circuit c;
    c.m(0);
    EXPECT_NO_THROW(c.detector({1}));
    EXPECT_THROW(c.detector({2}), traq::FatalError);
    EXPECT_THROW(c.detector({0}), traq::FatalError);
}

TEST(Circuit, ObservableIndexTracked)
{
    Circuit c;
    c.m(0);
    c.m(1);
    c.observable(3, {1, 2});
    EXPECT_EQ(c.numObservables(), 4u);
}

TEST(Circuit, TwoQubitParityEnforced)
{
    Circuit c;
    EXPECT_THROW(c.append(Gate::CX, {0, 1, 2}), traq::FatalError);
    EXPECT_THROW(c.append(Gate::CX, {1, 1}), traq::FatalError);
    EXPECT_NO_THROW(c.append(Gate::CX, {0, 1, 2, 3}));
}

TEST(Circuit, NoiseProbabilityValidated)
{
    Circuit c;
    EXPECT_THROW(c.xError(1.5, {0}), traq::FatalError);
    EXPECT_THROW(c.xError(-0.1, {0}), traq::FatalError);
    EXPECT_NO_THROW(c.xError(0.5, {0}));
}

TEST(Circuit, BatchedMeasurementCount)
{
    Circuit c;
    c.append(Gate::MR, {0, 1, 2, 3});
    EXPECT_EQ(c.numMeasurements(), 4u);
    c.detector({1, 4});
    EXPECT_EQ(c.numDetectors(), 1u);
}

TEST(Circuit, ParsePrintRoundTrip)
{
    const char *text =
        "R 0 1 2\n"
        "H 0\n"
        "CX 0 1 1 2\n"
        "DEPOLARIZE2(0.001) 0 1\n"
        "X_ERROR(0.002) 2\n"
        "M 0 1\n"
        "DETECTOR rec[-1] rec[-2]\n"
        "OBSERVABLE_INCLUDE(0) rec[-1]\n";
    Circuit c = Circuit::parse(text);
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.numMeasurements(), 2u);
    EXPECT_EQ(c.numDetectors(), 1u);
    EXPECT_EQ(c.numObservables(), 1u);
    // Round trip: parse(print(c)) yields identical text.
    Circuit c2 = Circuit::parse(c.str());
    EXPECT_EQ(c.str(), c2.str());
}

TEST(Circuit, NoiseArgsRoundTripBitExactly)
{
    // str() must emit noise probabilities in exact-round-trip form:
    // the old "%g" path printed 6 significant digits, so awkward
    // probabilities came back corrupted from parse(str()).
    const double awkward[] = {
        1e-3,
        0.0001234567890123,
        1.0 / 3.0,
        4.9406564584124654e-324,  // smallest subnormal
        2.2250738585072009e-308,  // largest subnormal
        1e-300,
    };
    Circuit c;
    for (double p : awkward)
        c.xError(p, {0});
    Circuit back = Circuit::parse(c.str());
    ASSERT_EQ(back.instructions().size(), std::size(awkward));
    for (std::size_t i = 0; i < std::size(awkward); ++i)
        EXPECT_EQ(back.instructions()[i].arg, awkward[i])
            << "probability " << awkward[i];
    EXPECT_EQ(back.str(), c.str());
}

TEST(Circuit, ParseRejectsMalformedNumbersLoudly)
{
    // Every malformed numeric token must surface as FatalError with
    // the offending line — never a raw std::invalid_argument /
    // std::out_of_range out of the standard library.
    const char *bad[] = {
        "X_ERROR(abc) 0",        // non-numeric argument
        "X_ERROR() 0",           // empty argument
        "X_ERROR(1e999) 0",      // argument out of double range
        "X_ERROR(0.5x) 0",       // trailing garbage in argument
        "X_ERROR(0.5) 12x",      // trailing garbage in target
        "H 0x1",                 // hex-ish target
        "H abc",                 // non-numeric target
        "H -1",                  // negative target
        "H 4294967296",          // target beyond uint32
        "M 0\nDETECTOR rec[-]",  // empty lookback
        "M 0\nDETECTOR rec[-x]", // non-numeric lookback
        "M 0\nDETECTOR rec[-0]", // zero lookback
        "OBSERVABLE_INCLUDE(nan) rec[-1]", // non-finite index
        // Index whose + 1 would wrap the uint32 observable count.
        "M 0\nOBSERVABLE_INCLUDE(4294967295) rec[-1]",
        // Fractional index str() would silently truncate.
        "M 0\nOBSERVABLE_INCLUDE(1.5) rec[-1]",
        "H(0.5) 0",              // argument on an argless gate
        "M 0\nDETECTOR(1) rec[-1]",
    };
    for (const char *text : bad)
        EXPECT_THROW(Circuit::parse(text), traq::FatalError)
            << text;
}

TEST(Circuit, ParseSkipsCommentsAndBlanks)
{
    Circuit c = Circuit::parse("# comment\n\n  H 0 \n");
    EXPECT_EQ(c.instructions().size(), 1u);
}

TEST(Circuit, ParseRejectsUnknownGate)
{
    EXPECT_THROW(Circuit::parse("FROB 0"), traq::FatalError);
}

TEST(Circuit, AppendCircuitKeepsAnnotationsValid)
{
    Circuit a;
    a.m(0);
    a.detector({1});
    Circuit b;
    b.m(1);
    b.detector({1});
    Circuit joined;
    joined.append(a);
    joined.append(b);
    EXPECT_EQ(joined.numDetectors(), 2u);
    EXPECT_EQ(joined.numMeasurements(), 2u);
}

TEST(Circuit, TotalTargets)
{
    Circuit c;
    c.cx(0, 1);
    c.m(0);
    EXPECT_EQ(c.totalTargets(), 3u);
}

TEST(Gates, MetadataConsistency)
{
    EXPECT_TRUE(gateInfo(Gate::CX).twoQubit);
    EXPECT_TRUE(gateInfo(Gate::CX).unitary);
    EXPECT_TRUE(gateInfo(Gate::DEPOLARIZE2).twoQubit);
    EXPECT_TRUE(gateInfo(Gate::DEPOLARIZE2).noise);
    EXPECT_TRUE(gateInfo(Gate::MR).measurement);
    EXPECT_TRUE(gateInfo(Gate::MR).reset);
    EXPECT_TRUE(gateInfo(Gate::DETECTOR).annotation);
    EXPECT_FALSE(gateInfo(Gate::H).noise);
}

TEST(Gates, NameLookupRoundTrip)
{
    for (auto g : {Gate::H, Gate::CX, Gate::M, Gate::DEPOLARIZE1,
                   Gate::OBSERVABLE_INCLUDE, Gate::SQRT_X_DAG}) {
        auto name = gateName(g);
        auto back = gateFromName(name);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, g);
    }
    EXPECT_FALSE(gateFromName("NOPE").has_value());
}

} // namespace
} // namespace traq::sim
