/**
 * @file
 * Tests for the composable noise subsystem (src/noise): spec
 * round-trips and loud-failure contracts, per-source statistical
 * rates at ~1e6 shots, herald-channel provenance through the DEM and
 * decode graph, herald determinism across thread counts and word
 * backends, the noise-off bit-identity regression lock, and the
 * headline acceptance criterion — erasure-aware decoding strictly
 * beating erasure-blind at a fixed atom-loss rate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/word.hh"
#include "src/decoder/decode_graph.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/noise/noise.hh"
#include "src/platform/movement.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"

namespace traq::noise {
namespace {

using codes::NoiseParams;
using decoder::McOptions;
using codes::SurfaceCode;

NoiseSpec oneSource(const std::string &name,
                    std::map<std::string, double> params)
{
    NoiseSpec spec;
    spec.sources.push_back({name, std::move(params)});
    return spec;
}

/** Per-plane event counts over >= minShots sampled shots. */
struct PlaneCounts
{
    std::uint64_t shots = 0;
    std::vector<std::uint64_t> detector;
    std::vector<std::uint64_t> herald;
};

PlaneCounts
tallyPlanes(const sim::Circuit &c, std::uint64_t minShots,
            std::uint64_t seed = 0x401e)
{
    sim::FrameSimulator sim(seed, kWide512WordLanes);
    sim::FrameBatch b;
    PlaneCounts out;
    while (out.shots < minShots) {
        sim.sampleInto(c, b);
        out.shots += sim.shotsPerBatch();
        out.detector.resize(b.numDetectors(), 0);
        out.herald.resize(b.numHeraldChannels(), 0);
        for (std::size_t k = 0; k < b.numDetectors(); ++k)
            for (std::uint64_t w : b.detector(k))
                out.detector[k] +=
                    static_cast<std::uint64_t>(std::popcount(w));
        for (std::size_t k = 0; k < b.numHeraldChannels(); ++k)
            for (std::uint64_t w : b.herald(k))
                out.herald[k] +=
                    static_cast<std::uint64_t>(std::popcount(w));
    }
    return out;
}

/** Observed rate within 5 sigma of the expected binomial rate. */
void expectRate(std::uint64_t hits, std::uint64_t shots, double p)
{
    const double mean =
        static_cast<double>(hits) / static_cast<double>(shots);
    const double sd = std::sqrt(
        std::max(p * (1.0 - p), 1e-12) / static_cast<double>(shots));
    EXPECT_NEAR(mean, p, 5.0 * sd + 1e-9);
}

// ---------------------------------------------------------------
// Spec plumbing.

TEST(NoiseSpec, FlatKeysRoundTrip)
{
    NoiseSpec spec;
    spec.setFlat("noise.atom-loss.p", 0.005);
    spec.setFlat("noise.atom-loss.heraldEff", 0.8);
    spec.setFlat("noise.biased-measurement.p", 0.002);
    ASSERT_EQ(spec.sources.size(), 2u);
    EXPECT_EQ(spec.sources[0].name, "atom-loss");
    EXPECT_EQ(spec.sources[0].params.at("heraldEff"), 0.8);

    // flat() -> setFlat() reconstructs an equivalent spec.
    NoiseSpec again;
    for (const auto &[k, v] : spec.flat())
        again.setFlat(k, v);
    EXPECT_EQ(again.canonical(), spec.canonical());
    EXPECT_EQ(again.flat(), spec.flat());

    EXPECT_TRUE(NoiseSpec{}.empty());
    EXPECT_FALSE(spec.empty());
    EXPECT_NE(spec.canonical(), NoiseSpec{}.canonical());
}

TEST(NoiseSpec, MalformedFlatKeysThrow)
{
    NoiseSpec spec;
    EXPECT_THROW(spec.setFlat("shots", 1.0), FatalError);
    EXPECT_THROW(spec.setFlat("noise.atom-loss", 1.0), FatalError);
    EXPECT_THROW(spec.setFlat("noise..p", 1.0), FatalError);
}

TEST(NoiseRegistry, ListsBuiltinsAndFailsLoudly)
{
    auto names = registeredNoiseSources();
    for (const char *s :
         {"atom-loss", "leakage", "idle-dephasing",
          "correlated-pauli", "biased-measurement"})
        EXPECT_NE(std::find(names.begin(), names.end(), s),
                  names.end())
            << s;

    EXPECT_THROW(makeNoiseSource({"no-such-source", {}}),
                 FatalError);
    // Unknown parameter on a known source: must not silently no-op.
    EXPECT_THROW(
        makeNoiseSource({"atom-loss", {{"bogus", 0.1}}}),
        FatalError);
    EXPECT_THROW(NoiseModel::fromSpec(oneSource(
                     "leakage", {{"heraldEf", 0.5}})),
                 FatalError);
}

TEST(NoiseModel, CompilePreservesCircuitStructure)
{
    SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                NoiseParams::uniform(0.001));
    auto model = NoiseModel::fromSpec(
        oneSource("atom-loss", {{"p", 0.01}}));
    sim::Circuit compiled = model.compile(e.circuit);

    // Only noise instructions are inserted: detector / observable
    // structure is untouched, herald channels appear.
    auto dem0 = sim::buildDem(e.circuit);
    auto dem1 = sim::buildDem(compiled);
    EXPECT_EQ(dem1.numDetectors, dem0.numDetectors);
    EXPECT_EQ(dem1.numObservables, dem0.numObservables);
    EXPECT_EQ(dem0.numHeraldChannels, 0u);
    EXPECT_GT(compiled.numHeraldChannels(), 0u);
    EXPECT_EQ(dem1.numHeraldChannels,
              compiled.numHeraldChannels());

    // An empty model is the identity.
    EXPECT_TRUE(NoiseModel::fromSpec(NoiseSpec{}).empty());
}

// ---------------------------------------------------------------
// Per-source statistical rates (~1e6 shots, 5 sigma bounds).

TEST(NoiseSources, AtomLossHeraldAndFlipRates)
{
    const double p = 0.01;
    sim::Circuit c;
    c.cx(0, 1);
    c.m(0);
    c.m(1);
    c.detector({2});
    c.detector({1});
    auto compiled =
        NoiseModel::fromSpec(
            oneSource("atom-loss", {{"p", p}, {"heraldEff", 1.0}}))
            .compile(c);
    ASSERT_EQ(compiled.numHeraldChannels(), 2u);

    auto t = tallyPlanes(compiled, 1000000);
    // One herald channel per CX target, each firing at p.
    expectRate(t.herald[0], t.shots, p);
    expectRate(t.herald[1], t.shots, p);
    // A fired erasure applies I/X/Y/Z at 1/4 each; X and Y flip the
    // Z-basis measurement of that qubit -> flip rate p/2.
    expectRate(t.detector[0], t.shots, p / 2.0);
    expectRate(t.detector[1], t.shots, p / 2.0);
}

TEST(NoiseSources, AtomLossUnheraldedResidue)
{
    // heraldEff = 0: pure depolarizing residue 3p/4, of which X and
    // Y (2/3) flip a Z-basis measurement -> p/2 flips, no heralds.
    const double p = 0.02;
    sim::Circuit c;
    c.cx(0, 1);
    c.m(0);
    c.detector({1});
    auto compiled =
        NoiseModel::fromSpec(
            oneSource("atom-loss", {{"p", p}, {"heraldEff", 0.0}}))
            .compile(c);
    EXPECT_EQ(compiled.numHeraldChannels(), 0u);
    auto t = tallyPlanes(compiled, 1000000);
    expectRate(t.detector[0], t.shots, p / 2.0);
}

TEST(NoiseSources, LeakageHeraldRateScalesWithEfficiency)
{
    const double p = 0.004, eta = 0.5;
    sim::Circuit c;
    c.h(0);
    c.m(0);
    c.detector({1});
    auto compiled =
        NoiseModel::fromSpec(oneSource(
                                 "leakage",
                                 {{"p", p}, {"heraldEff", eta}}))
            .compile(c);
    ASSERT_EQ(compiled.numHeraldChannels(), 1u);
    auto t = tallyPlanes(compiled, 1000000);
    expectRate(t.herald[0], t.shots, p * eta);
}

TEST(NoiseSources, IdleDephasingMatchesMovementDuration)
{
    // Before each measurement every *other* qubit dephases with
    // p = (1 - exp(-t / T2)) / 2, t from the pipelined
    // measure-while-move schedule the source consults.
    const double t2 = 0.5, moveSites = 2.0;
    platform::MoveSchedule sched(
        platform::AtomArrayParams::paperDefaults());
    sched.addPipelinedMeasureMove(moveSites);
    const double expected =
        0.5 * (1.0 - std::exp(-sched.totalTime() / t2));
    ASSERT_GT(expected, 0.0);

    sim::Circuit c;
    c.m(1);      // qubit 0 idles -> Z error on it
    c.mx(0);     // Z flips the X-basis readout
    c.detector({1});
    auto compiled =
        NoiseModel::fromSpec(oneSource("idle-dephasing",
                                       {{"t2", t2},
                                        {"moveSites", moveSites}}))
            .compile(c);
    auto t = tallyPlanes(compiled, 1000000);
    expectRate(t.detector[0], t.shots, expected);
}

TEST(NoiseSources, CorrelatedPauliFlipsBothSidesTogether)
{
    const double p = 0.03;
    sim::Circuit c;
    c.cx(0, 1);
    c.m(0);
    c.m(1);
    c.detector({2});    // m(0)
    c.detector({1});    // m(1)
    c.detector({1, 2}); // parity: XX/YY/ZZ never fire it
    auto compiled =
        NoiseModel::fromSpec(
            oneSource("correlated-pauli", {{"p", p}}))
            .compile(c);
    auto t = tallyPlanes(compiled, 1000000);
    // XX or YY (2p/3) flips each single measurement; both flip
    // together, so the parity detector stays silent.
    expectRate(t.detector[0], t.shots, 2.0 * p / 3.0);
    expectRate(t.detector[1], t.shots, 2.0 * p / 3.0);
    EXPECT_EQ(t.detector[2], 0u);
}

TEST(NoiseSources, BiasedMeasurementRespectsBias)
{
    const double p = 0.01;
    sim::Circuit cz;
    cz.m(0);
    cz.detector({1});
    sim::Circuit cx;
    cx.mx(0);
    cx.detector({1});

    // bias = +1: Z-basis readout flips at 2p, X-basis readout is
    // error-free (zero-probability channels are not emitted).
    auto spec = oneSource("biased-measurement",
                          {{"p", p}, {"bias", 1.0}});
    auto model = NoiseModel::fromSpec(spec);
    auto tz = tallyPlanes(model.compile(cz), 1000000);
    expectRate(tz.detector[0], tz.shots, 2.0 * p);
    auto tx = tallyPlanes(model.compile(cx), 200000);
    EXPECT_EQ(tx.detector[0], 0u);

    // bias = 0: both bases flip at p.
    auto flat = NoiseModel::fromSpec(
        oneSource("biased-measurement", {{"p", p}}));
    auto tz0 = tallyPlanes(flat.compile(cz), 1000000);
    expectRate(tz0.detector[0], tz0.shots, p);
    auto tx0 = tallyPlanes(flat.compile(cx), 1000000);
    expectRate(tx0.detector[0], tx0.shots, p);
}

// ---------------------------------------------------------------
// Provenance: herald channels through DEM and decode graph.

TEST(NoiseProvenance, ChannelEdgeMapsAreConsistent)
{
    SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                NoiseParams::uniform(0.001));
    auto compiled =
        NoiseModel::fromSpec(
            oneSource("atom-loss", {{"p", 0.01}}))
            .compile(e.circuit);
    auto dem = sim::buildDem(compiled);
    ASSERT_GT(dem.numHeraldChannels, 0u);

    // Every erasure component carries its channel into the DEM.
    bool anyTagged = false;
    for (const auto &m : dem.errors) {
        EXPECT_TRUE(std::is_sorted(m.channels.begin(),
                                   m.channels.end()));
        for (std::uint32_t ch : m.channels) {
            EXPECT_LT(ch, dem.numHeraldChannels);
            anyTagged = true;
        }
    }
    EXPECT_TRUE(anyTagged);

    auto g = decoder::DecodeGraph::fromDem(dem, e.meta);
    ASSERT_EQ(g.numHeraldChannels(), dem.numHeraldChannels);

    // edgeChannels and channelEdges are exact transposes.
    std::uint64_t fwd = 0, rev = 0;
    for (std::uint32_t ei = 0; ei < g.edges().size(); ++ei)
        for (std::uint32_t ch : g.edgeChannels(ei)) {
            ++fwd;
            auto back = g.channelEdges(ch);
            EXPECT_NE(std::find(back.begin(), back.end(), ei),
                      back.end());
        }
    for (std::uint32_t ch = 0; ch < g.numHeraldChannels(); ++ch)
        for (std::uint32_t ei : g.channelEdges(ch)) {
            ++rev;
            auto fc = g.edgeChannels(ei);
            EXPECT_NE(std::find(fc.begin(), fc.end(), ch),
                      fc.end());
        }
    EXPECT_EQ(fwd, rev);
    EXPECT_GT(fwd, 0u);
}

// ---------------------------------------------------------------
// Engine integration.

TEST(NoiseMc, HeraldsDeterministicAcrossThreadsAndBackends)
{
    SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                NoiseParams::uniform(0.003));
    for (WordBackend wb :
         {WordBackend::Scalar64, WordBackend::Wide,
          WordBackend::Wide512}) {
        McOptions opts;
        opts.shots = 4096;
        opts.seed = 0xd00d;
        opts.wordBackend = wb;
        opts.noiseSpec.setFlat("noise.atom-loss.p", 0.01);
        decoder::McResult ref{};
        for (unsigned threads : {1u, 2u, 4u}) {
            opts.threads = threads;
            auto res = decoder::runMonteCarlo(e, opts);
            EXPECT_GT(res.heraldedShots, 0u);
            if (threads == 1u) {
                ref = res;
                continue;
            }
            EXPECT_EQ(res.heraldedShots, ref.heraldedShots);
            EXPECT_EQ(res.anyObservable.hits,
                      ref.anyObservable.hits);
            EXPECT_EQ(res.avgDefects, ref.avgDefects);
        }
    }
}

TEST(NoiseMc, NoiseOffSamplingIsBitIdentical)
{
    // The herald machinery must be invisible without herald-emitting
    // noise: an empty-model compile is the identity, the sampler
    // allocates no herald planes, and the Monte-Carlo result is
    // byte-for-byte what the pre-noise sampler produced (golden
    // values locked per backend at this seed).
    SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                NoiseParams::uniform(0.003));

    sim::FrameSimulator s1(42, 2), s2(42, 2);
    auto b1 = s1.sample(e.circuit);
    auto b2 = s2.sample(
        NoiseModel::fromSpec(NoiseSpec{}).compile(e.circuit));
    EXPECT_EQ(b1.numHeraldChannels(), 0u);
    EXPECT_EQ(b1.detectors, b2.detectors);
    EXPECT_EQ(b1.observables, b2.observables);

    McOptions opts;
    opts.shots = 4096;
    opts.seed = 0x901d;
    opts.threads = 2;
    opts.wordBackend = WordBackend::Scalar64;
    auto res = decoder::runMonteCarlo(e, opts);
    EXPECT_EQ(res.heraldedShots, 0u);

    // erasureAware is a no-op without heralds.
    opts.erasureAware = false;
    auto blind = decoder::runMonteCarlo(e, opts);
    EXPECT_EQ(blind.anyObservable.hits, res.anyObservable.hits);
    EXPECT_EQ(blind.avgDefects, res.avgDefects);
}

TEST(NoiseMc, ErasureAwareBeatsErasureBlind)
{
    // The acceptance criterion: at a fixed atom-loss rate on d = 5
    // memory, herald-driven edge reweighting must strictly lower the
    // logical error rate versus ignoring the flags — with
    // non-overlapping Wilson intervals, so a regression that weakens
    // the reweighting (not just breaks it) still trips this.
    SurfaceCode sc(5);
    auto e = codes::buildMemory(sc, 'Z', 5,
                                NoiseParams::uniform(0.001));
    McOptions opts;
    opts.shots = 10000;
    opts.seed = 0xe7a5;
    opts.threads = 2;
    opts.wordBackend = WordBackend::Scalar64;
    opts.noiseSpec.setFlat("noise.atom-loss.p", 0.02);

    opts.erasureAware = true;
    auto aware = decoder::runMonteCarlo(e, opts);
    opts.erasureAware = false;
    auto blind = decoder::runMonteCarlo(e, opts);

    EXPECT_GT(aware.heraldedShots, 0u);
    EXPECT_EQ(aware.heraldedShots, blind.heraldedShots);
    EXPECT_LT(aware.anyObservable.hits, blind.anyObservable.hits);
    EXPECT_LT(aware.anyObservable.hi, blind.anyObservable.lo);
}

} // namespace
} // namespace traq::noise
