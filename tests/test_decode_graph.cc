/**
 * @file
 * Tests for the shared DecodeGraph layer: metadata defaults for
 * hand-built DEMs, round/patch bookkeeping from real circuits,
 * partner correlation hints with conditional posteriors, and the
 * DecodeContext plumbing (weight overrides, round horizons,
 * used-edge reporting) the composite decoders build on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/decoder/decode_graph.hh"
#include "src/decoder/mwpm.hh"
#include "src/sim/dem.hh"

namespace traq::decoder {
namespace {

using codes::CircuitMeta;
using sim::DetectorErrorModel;
using sim::ErrorMechanism;

ErrorMechanism
mech(double p, std::vector<std::uint32_t> dets,
     std::uint32_t obs = 0)
{
    ErrorMechanism m;
    m.probability = p;
    m.detectors = std::move(dets);
    m.observables = obs;
    return m;
}

TEST(DecodeGraph, HandBuiltMetaDefaultsToOnePatchOneRound)
{
    DetectorErrorModel dem;
    dem.numDetectors = 3;
    dem.numObservables = 1;
    dem.errors = {mech(0.01, {0}, 1), mech(0.01, {0, 1}),
                  mech(0.01, {1, 2}), mech(0.01, {2})};
    CircuitMeta meta;
    meta.detectorIsX.assign(3, 0);
    meta.observableIsX.assign(1, 0);
    // No patch/round/observable-patch metadata at all.
    DecodeGraph g = DecodeGraph::fromDem(dem, meta);
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.edges().size(), 4u);
    EXPECT_EQ(g.numRounds(), 1);
    for (std::uint32_t d = 0; d < 3; ++d) {
        EXPECT_EQ(g.detectorRound(d), 0);
        EXPECT_EQ(g.detectorPatch(d), 0);
    }
    for (const auto &e : g.edges()) {
        EXPECT_EQ(e.round, 0);
        EXPECT_NEAR(e.weight, std::log(0.99 / 0.01), 1e-12);
    }
    // Single-part mechanisms carry no correlation hints.
    EXPECT_EQ(g.numPartnerLinks(), 0u);
}

TEST(DecodeGraph, YLikeMechanismLinksItsBasisHalvesAsPartners)
{
    // One Y-type mechanism (two X-basis + two Z-basis detectors)
    // plus an independent Z-basis-only mechanism on the same edge.
    DetectorErrorModel dem;
    dem.numDetectors = 4;
    dem.numObservables = 0;
    const double pY = 0.001, pZ = 0.003;
    dem.errors = {mech(pY, {0, 1, 2, 3}), mech(pZ, {2, 3})};
    CircuitMeta meta;
    meta.detectorIsX = {1, 1, 0, 0};
    DecodeGraph g = DecodeGraph::fromDem(dem, meta);
    ASSERT_EQ(g.edges().size(), 2u);

    // Locate the X-half (0,1) and the shared Z edge (2,3).
    const auto &e0 = g.edges()[0];
    const std::uint32_t xEdge = (e0.u == 0 || e0.v == 0) ? 0 : 1;
    const std::uint32_t zEdge = 1 - xEdge;
    EXPECT_NEAR(g.edges()[xEdge].probability, pY, 1e-15);
    EXPECT_NEAR(g.edges()[zEdge].probability,
                pY + pZ - 2 * pY * pZ, 1e-15);

    // Partners are mutual; the conditional is the shared mechanism
    // mass over the source edge's probability.
    ASSERT_EQ(g.partners(xEdge).size(), 1u);
    ASSERT_EQ(g.partners(zEdge).size(), 1u);
    EXPECT_EQ(g.partners(xEdge)[0], zEdge);
    EXPECT_EQ(g.partners(zEdge)[0], xEdge);
    EXPECT_NEAR(g.partnerCond(xEdge)[0], 1.0, 1e-12);
    EXPECT_NEAR(g.partnerCond(zEdge)[0],
                pY / (pY + pZ - 2 * pY * pZ), 1e-12);
}

TEST(DecodeGraph, MemoryCircuitRoundsMatchBuilderMetadata)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 4,
                                codes::NoiseParams::uniform(1e-3));
    // 4 SE rounds plus the closing data-measurement round.
    ASSERT_EQ(e.meta.detectorRound.size(),
              e.circuit.numDetectors());
    DecodeGraph g = DecodeGraph::build(e);
    EXPECT_EQ(g.numRounds(), 5);
    // Detector rounds are non-decreasing in emission order.
    for (std::size_t d = 1; d < e.meta.detectorRound.size(); ++d)
        EXPECT_LE(e.meta.detectorRound[d - 1],
                  e.meta.detectorRound[d]);
    // Every edge's round is the max over its real endpoints.
    for (const auto &edge : g.edges()) {
        std::int32_t want = 0;
        if (edge.u != kBoundary)
            want = std::max(want, g.detectorRound(edge.u));
        if (edge.v != kBoundary)
            want = std::max(want, g.detectorRound(edge.v));
        EXPECT_EQ(edge.round, want);
    }
}

TEST(DecodeGraph, TransversalCnotCarriesPatchesAndCrossHints)
{
    codes::TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 2;
    spec.noise = codes::NoiseParams::uniform(1e-3);
    auto e = codes::buildTransversalCnot(spec);
    DecodeGraph g = DecodeGraph::build(e);
    // Both patches appear in the metadata.
    bool sawPatch0 = false, sawPatch1 = false;
    for (std::uint32_t d = 0; d < g.numNodes(); ++d) {
        sawPatch0 |= g.detectorPatch(d) == 0;
        sawPatch1 |= g.detectorPatch(d) == 1;
    }
    EXPECT_TRUE(sawPatch0);
    EXPECT_TRUE(sawPatch1);
    // Observables live on their own patches.
    EXPECT_EQ(g.observablePatch(0), 0);
    EXPECT_EQ(g.observablePatch(1), 1);
    EXPECT_GT(g.numPartnerLinks(), 0u);
    EXPECT_EQ(g.numUndetectableLogical(), 0u);
    // Conditionals are probabilities.
    for (std::uint32_t ei = 0;
         ei < static_cast<std::uint32_t>(g.edges().size()); ++ei) {
        const auto cond = g.partnerCond(ei);
        for (double c : cond) {
            EXPECT_GT(c, 0.0);
            EXPECT_LE(c, 1.0);
        }
    }
}

TEST(DecodeGraph, ContextWeightOverrideRedirectsMatching)
{
    // Chain 0-1-2 with boundary exits at both ends; only the left
    // boundary edge flips the observable.  Base weights prefer the
    // through-path for syndrome {0, 2}; a context override that
    // makes the boundary edges nearly free flips the decision.
    DetectorErrorModel dem;
    dem.numDetectors = 3;
    dem.numObservables = 1;
    dem.errors = {mech(0.01, {0}, 1), mech(0.05, {0, 1}),
                  mech(0.05, {1, 2}), mech(0.01, {2})};
    CircuitMeta meta;
    meta.detectorIsX.assign(3, 0);
    meta.observableIsX.assign(1, 0);
    DecodeGraph g = DecodeGraph::fromDem(dem, meta);
    MwpmDecoder dec(g);

    EXPECT_EQ(dec.decode({0, 2}), 0u);  // through-path, no flip

    std::vector<double> w;
    std::vector<std::uint32_t> boundaryEdges;
    for (const auto &edge : g.edges()) {
        w.push_back(edge.weight);
        if (edge.u == kBoundary)
            boundaryEdges.push_back(
                static_cast<std::uint32_t>(w.size() - 1));
    }
    ASSERT_EQ(boundaryEdges.size(), 2u);
    for (std::uint32_t ei : boundaryEdges)
        w[ei] = 0.0;
    DecodeContext ctx;
    ctx.weights = w;
    std::vector<std::uint32_t> used;
    const std::vector<std::uint32_t> syn{0, 2};
    EXPECT_EQ(dec.decodeEx(syn, ctx, &used), 1u);
    // Both boundary exits appear in the used-edge report.
    for (std::uint32_t ei : boundaryEdges)
        EXPECT_NE(std::find(used.begin(), used.end(), ei),
                  used.end());
}

TEST(DecodeGraph, ContextRoundHorizonHidesFutureEdges)
{
    // Two detectors in different rounds.  Detector 0's own boundary
    // edge is expensive, so the cheapest lone-defect explanation
    // routes through the round-1 joining edge and out the far
    // boundary (no observable flip).  A horizon at round 0 hides
    // that route and forces the direct, observable-flipping exit.
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.errors = {mech(1e-4, {0}, 1), mech(0.2, {0, 1}),
                  mech(0.01, {1})};
    CircuitMeta meta;
    meta.detectorIsX.assign(2, 0);
    meta.observableIsX.assign(1, 0);
    meta.detectorRound = {0, 1};
    meta.detectorPatch = {0, 0};
    meta.observablePatch = {0};
    meta.numRounds = 2;
    DecodeGraph g = DecodeGraph::fromDem(dem, meta);
    EXPECT_EQ(g.numRounds(), 2);
    MwpmDecoder dec(g);

    EXPECT_EQ(dec.decode({0}), 0u);  // via round-1 edge, far exit

    DecodeContext ctx;
    ctx.maxRound = 0;
    const std::vector<std::uint32_t> lone{0};
    EXPECT_EQ(dec.decodeEx(lone, ctx, nullptr), 1u);
}

TEST(DecodeGraph, MetadataSizeMismatchFailsLoudly)
{
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.errors = {mech(0.01, {0, 1})};
    CircuitMeta meta;
    meta.detectorIsX.assign(2, 0);
    meta.detectorRound = {0};  // wrong size
    EXPECT_THROW(DecodeGraph::fromDem(dem, meta), FatalError);
    meta.detectorRound.clear();
    meta.detectorPatch = {0, 0, 0};  // wrong size
    EXPECT_THROW(DecodeGraph::fromDem(dem, meta), FatalError);
}

} // namespace
} // namespace traq::decoder
