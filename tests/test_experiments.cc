/**
 * @file
 * Tests for the experiment circuit builders: detector determinism in
 * the noiseless limit (via the tableau simulator), detector counts,
 * and transversal-CNOT stabilizer-frame bookkeeping.
 */

#include <gtest/gtest.h>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/sim/frame.hh"
#include "src/sim/tableau.hh"

namespace traq::codes {
namespace {

/** Evaluate detector values from a raw measurement record. */
std::vector<bool>
detectorValues(const sim::Circuit &c, const std::vector<bool> &rec)
{
    std::vector<bool> out;
    std::size_t seen = 0;
    for (const auto &inst : c.instructions()) {
        if (sim::gateInfo(inst.gate).measurement) {
            seen += inst.targets.size();
        } else if (inst.gate == sim::Gate::DETECTOR) {
            bool v = false;
            for (std::uint32_t lb : inst.targets)
                v = v ^ rec[seen - lb];
            out.push_back(v);
        }
    }
    return out;
}

/** All detectors of a noiseless run must be zero (deterministic). */
void
expectNoiselessDeterminism(const Experiment &exp, std::uint64_t seed)
{
    sim::TableauSim sim(exp.circuit.numQubits(), seed);
    auto rec = sim.run(exp.circuit, /*noiseless=*/false);
    // No noise instructions are present (NoiseParams::none), but
    // measurement randomness is real: detectors must still be
    // deterministic parity checks.
    auto dets = detectorValues(exp.circuit, rec);
    for (std::size_t i = 0; i < dets.size(); ++i)
        ASSERT_FALSE(dets[i]) << "detector " << i << " fired";
}

TEST(MemoryExperiment, DetectorAndObservableCounts)
{
    SurfaceCode sc(3);
    Experiment e =
        buildMemory(sc, 'Z', 3, NoiseParams::uniform(1e-3));
    // Round 1: only Z-type plaquettes (4 of them); rounds 2,3: all 8;
    // final: 4 Z-type closures.
    EXPECT_EQ(e.circuit.numDetectors(), 4u + 8u + 8u + 4u);
    EXPECT_EQ(e.circuit.numObservables(), 1u);
    EXPECT_EQ(e.meta.detectorIsX.size(), e.circuit.numDetectors());
    EXPECT_EQ(e.meta.observableIsX.size(), 1u);
    EXPECT_EQ(e.meta.observableIsX[0], 0);
}

TEST(MemoryExperiment, NoiselessDeterminismZ)
{
    SurfaceCode sc(3);
    Experiment e = buildMemory(sc, 'Z', 4, NoiseParams::none());
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        expectNoiselessDeterminism(e, 1000 + seed);
}

TEST(MemoryExperiment, NoiselessDeterminismX)
{
    SurfaceCode sc(3);
    Experiment e = buildMemory(sc, 'X', 3, NoiseParams::none());
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        expectNoiselessDeterminism(e, 2000 + seed);
}

TEST(MemoryExperiment, NoiselessDeterminismD5)
{
    SurfaceCode sc(5);
    Experiment e = buildMemory(sc, 'Z', 3, NoiseParams::none());
    expectNoiselessDeterminism(e, 31);
}

TEST(MemoryExperiment, FrameSamplerSilentWithoutNoise)
{
    SurfaceCode sc(5);
    Experiment e = buildMemory(sc, 'Z', 4, NoiseParams::none());
    sim::FrameSimulator fs(7);
    auto batch = fs.sample(e.circuit);
    for (auto w : batch.detectors)
        EXPECT_EQ(w, 0u);
    for (auto w : batch.observables)
        EXPECT_EQ(w, 0u);
}

TEST(MemoryExperiment, NoiseProducesDetectionEvents)
{
    SurfaceCode sc(3);
    Experiment e =
        buildMemory(sc, 'Z', 3, NoiseParams::uniform(0.01));
    sim::FrameSimulator fs(11);
    std::uint64_t events = 0;
    for (int i = 0; i < 20; ++i) {
        auto batch = fs.sample(e.circuit);
        for (auto w : batch.detectors)
            events += __builtin_popcountll(w);
    }
    EXPECT_GT(events, 100u);
}

TEST(MemoryExperiment, RejectsBadArguments)
{
    SurfaceCode sc(3);
    EXPECT_THROW(buildMemory(sc, 'Y', 3, NoiseParams::none()),
                 traq::FatalError);
    EXPECT_THROW(buildMemory(sc, 'Z', 0, NoiseParams::none()),
                 traq::FatalError);
}

TEST(TransversalCnot, NoiselessDeterminismOneCnotPerRound)
{
    TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 4;
    spec.cnotsPerBatch = 1;
    spec.seRoundsPerBatch = 1;
    spec.noise = NoiseParams::none();
    Experiment e = buildTransversalCnot(spec);
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        expectNoiselessDeterminism(e, 3000 + seed);
}

TEST(TransversalCnot, NoiselessDeterminismManyCnotsPerRound)
{
    TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 6;
    spec.cnotsPerBatch = 3;
    spec.seRoundsPerBatch = 1;
    spec.noise = NoiseParams::none();
    Experiment e = buildTransversalCnot(spec);
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        expectNoiselessDeterminism(e, 4000 + seed);
}

TEST(TransversalCnot, NoiselessDeterminismSparseSe)
{
    TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 2;
    spec.cnotsPerBatch = 1;
    spec.seRoundsPerBatch = 3;
    spec.noise = NoiseParams::none();
    Experiment e = buildTransversalCnot(spec);
    expectNoiselessDeterminism(e, 77);
}

TEST(TransversalCnot, NoiselessDeterminismFixedDirection)
{
    TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 3;
    spec.alternateDirection = false;
    spec.noise = NoiseParams::none();
    Experiment e = buildTransversalCnot(spec);
    expectNoiselessDeterminism(e, 88);
}

TEST(TransversalCnot, TwoObservables)
{
    TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 2;
    spec.noise = NoiseParams::none();
    Experiment e = buildTransversalCnot(spec);
    EXPECT_EQ(e.circuit.numObservables(), 2u);
    EXPECT_EQ(e.meta.observableIsX.size(), 2u);
}

TEST(TransversalCnot, CrossPatchErrorPropagation)
{
    // An X error injected on patch A's data just before a CX layer
    // must light detectors on patch B too: that is the correlated
    // decoding problem.  We approximate by checking detection events
    // exist in the second patch's detector range under one-sided
    // noise... simplest: noiseless circuit + manual X error via a
    // unit-probability channel on one control qubit.
    TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 1;
    spec.warmupRounds = 1;
    spec.noise = NoiseParams::none();
    Experiment clean = buildTransversalCnot(spec);

    // Rebuild with an injected X on patch A data qubit 4 (center)
    // right after initialization: easiest is to prepend the error via
    // a new circuit sharing qubit numbering.
    sim::Circuit tweaked;
    bool injected = false;
    for (const auto &inst : clean.circuit.instructions()) {
        tweaked.append(inst);
        if (!injected && inst.gate == sim::Gate::R &&
            inst.targets.size() > 10) {
            // First bulk data reset: inject afterwards.
            tweaked.xError(1.0, {4});
            injected = true;
        }
    }
    ASSERT_TRUE(injected);
    sim::FrameSimulator fs(5);
    auto batch = fs.sample(tweaked);
    // Patch B's detectors occupy odd patch slots: detectors are
    // emitted patch-major each round, so just check that *some*
    // detector beyond patch A's first-round block fired.
    std::uint64_t fired = 0;
    for (auto w : batch.detectors)
        fired += __builtin_popcountll(w);
    EXPECT_GT(fired, 0u);
}

} // namespace
} // namespace traq::codes
