/**
 * @file
 * Unit tests for the common utilities: RNG, math helpers, statistics,
 * GF(2) linear algebra, tables and string utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include "src/common/assert.hh"
#include "src/common/gf2.hh"
#include "src/common/math.hh"
#include "src/common/rng.hh"
#include "src/common/serialize.hh"
#include "src/common/stats.hh"
#include "src/common/strings.hh"
#include "src/common/table.hh"

namespace traq {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t v = r.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliWordDensity)
{
    Rng r(9);
    const double p = 0.25;
    std::uint64_t bits = 0;
    const int words = 4000;
    for (int i = 0; i < words; ++i)
        bits += __builtin_popcountll(r.bernoulliWord(p));
    double density = static_cast<double>(bits) / (64.0 * words);
    EXPECT_NEAR(density, p, 0.01);
}

TEST(Rng, BernoulliWordExtremes)
{
    Rng r(13);
    EXPECT_EQ(r.bernoulliWord(0.0), 0u);
    EXPECT_EQ(r.bernoulliWord(1.0), ~0ULL);
}

TEST(Rng, BernoulliWordEdgeProbabilitiesExact)
{
    // p = 0 and p = 1 must be exact for every draw, including
    // out-of-range and non-finite inputs (clamped semantics).
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(r.bernoulliWord(0.0), 0u);
        EXPECT_EQ(r.bernoulliWord(-0.25), 0u);
        EXPECT_EQ(r.bernoulliWord(1.0), ~0ULL);
        EXPECT_EQ(r.bernoulliWord(1.5), ~0ULL);
    }
}

TEST(Rng, BernoulliWordTinyPUnbiased)
{
    // Sparse path: 1e6 words at p = 1e-6 is 6.4e7 trials with 64
    // expected successes (sd = 8); a systematic per-word bias of
    // even one part in 1e5 would blow far past the 5-sigma window.
    Rng r(21);
    const double p = 1e-6;
    const int words = 1000000;
    std::uint64_t bits = 0;
    for (int i = 0; i < words; ++i)
        bits += __builtin_popcountll(r.bernoulliWord(p));
    const double expected = 64.0 * words * p;
    EXPECT_NEAR(static_cast<double>(bits), expected,
                5.0 * std::sqrt(expected));
}

TEST(Rng, BernoulliWordSubUlpProbabilityRepresentable)
{
    // Probabilities below the 2^-53 uniform() granularity used to be
    // impossible to realize per-bit; the geometric path honors them
    // in expectation.  At p = 1e-12 over 1e5 words the expected
    // count is 6.4e-6, so observing any success is a > 5-sigma
    // fluke.
    Rng r(23);
    std::uint64_t bits = 0;
    for (int i = 0; i < 100000; ++i)
        bits += __builtin_popcountll(r.bernoulliWord(1e-12));
    EXPECT_EQ(bits, 0u);
}

TEST(Rng, BernoulliPlaneDensityAcrossWidths)
{
    // The plane sampler must hit the target density for sparse,
    // mid-range and dense p at several widths (covering all three
    // internal sampling strategies).
    for (double p : {0.01, 0.5, 0.93}) {
        for (std::size_t width : {1u, 4u, 7u}) {
            Rng r(29);
            std::vector<std::uint64_t> plane(width);
            std::uint64_t bits = 0;
            const int draws = 60000 / static_cast<int>(width);
            for (int i = 0; i < draws; ++i) {
                r.bernoulliPlane(p, plane.data(), width);
                for (std::uint64_t w : plane)
                    bits += __builtin_popcountll(w);
            }
            const double trials = 64.0 * width * draws;
            EXPECT_NEAR(bits / trials, p,
                        5.0 * std::sqrt(p * (1 - p) / trials))
                << "p=" << p << " width=" << width;
        }
    }
}

TEST(MathHelpers, PXor)
{
    EXPECT_DOUBLE_EQ(pXor(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(pXor(1.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(pXor(1.0, 1.0), 0.0);
    EXPECT_NEAR(pXor(0.1, 0.2), 0.1 * 0.8 + 0.2 * 0.9, 1e-12);
}

TEST(MathHelpers, POr)
{
    EXPECT_DOUBLE_EQ(pOr(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(pOr(1.0, 0.5), 1.0);
    EXPECT_NEAR(pOr(0.1, 0.2), 1.0 - 0.9 * 0.8, 1e-12);
}

TEST(MathHelpers, PAtLeastOnce)
{
    EXPECT_NEAR(pAtLeastOnceOf(0.5, 2), 0.75, 1e-12);
    EXPECT_NEAR(pAtLeastOnceOf(1e-10, 1e6), 1e-4, 1e-8);
    EXPECT_DOUBLE_EQ(pAtLeastOnceOf(0.0, 100), 0.0);
}

TEST(MathHelpers, CeilOdd)
{
    EXPECT_EQ(ceilOdd(2.1), 3);
    EXPECT_EQ(ceilOdd(3.0), 3);
    EXPECT_EQ(ceilOdd(3.5), 5);
    EXPECT_EQ(ceilOdd(4.0), 5);
    EXPECT_EQ(ceilOdd(0.5), 3);
    EXPECT_EQ(ceilOdd(26.2), 27);
}

TEST(MathHelpers, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(roundUp(10, 4), 12);
    EXPECT_EQ(roundUp(12, 4), 12);
}

TEST(MathHelpers, POddOf)
{
    // Exact: odd successes among n Bernoulli(p).
    EXPECT_NEAR(pOddOf(0.5, 3), 0.5, 1e-12);
    EXPECT_NEAR(pOddOf(0.1, 1), 0.1, 1e-12);
    // Two trials: p(1-p)*2.
    EXPECT_NEAR(pOddOf(0.1, 2), 2 * 0.1 * 0.9, 1e-12);
    // Small p, large n: approximately n*p.
    EXPECT_NEAR(pOddOf(1e-6, 100), 1e-4, 1e-7);
}

TEST(MathHelpers, BinomialCoeff)
{
    EXPECT_DOUBLE_EQ(binomialCoeff(5, 2), 10.0);
    EXPECT_DOUBLE_EQ(binomialCoeff(8, 0), 1.0);
    EXPECT_DOUBLE_EQ(binomialCoeff(8, 8), 1.0);
    EXPECT_DOUBLE_EQ(binomialCoeff(3, 5), 0.0);
}

TEST(MathHelpers, Interp)
{
    std::vector<double> xs{0, 1, 2};
    std::vector<double> ys{0, 10, 40};
    EXPECT_DOUBLE_EQ(interp(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(interp(xs, ys, 1.5), 25.0);
    EXPECT_DOUBLE_EQ(interp(xs, ys, -1), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(interp(xs, ys, 5), 40.0);   // clamped
}

TEST(Stats, WilsonBasics)
{
    Proportion p = wilson(5, 100);
    EXPECT_DOUBLE_EQ(p.mean, 0.05);
    EXPECT_GT(p.hi, p.mean);
    EXPECT_LT(p.lo, p.mean);
    EXPECT_GE(p.lo, 0.0);
    EXPECT_LE(p.hi, 1.0);
}

TEST(Stats, WilsonZeroHits)
{
    Proportion p = wilson(0, 1000);
    EXPECT_DOUBLE_EQ(p.mean, 0.0);
    EXPECT_EQ(p.lo, 0.0);
    EXPECT_GT(p.hi, 0.0);
    EXPECT_LT(p.hi, 0.01);
}

TEST(Stats, WilsonEmpty)
{
    Proportion p = wilson(0, 0);
    EXPECT_EQ(p.shots, 0u);
    EXPECT_DOUBLE_EQ(p.mean, 0.0);
}

TEST(Stats, RunningStats)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, FitLineRecovers)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 + 2.0 * i);
    }
    LineFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.intercept, 3.0, 1e-10);
    EXPECT_NEAR(f.slope, 2.0, 1e-10);
    EXPECT_NEAR(f.r2, 1.0, 1e-10);
}

TEST(Gf2, RankAndReduce)
{
    auto m = Gf2Matrix::fromRows({
        {1, 0, 1},
        {0, 1, 1},
        {1, 1, 0},
    });
    EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2, NullSpace)
{
    auto m = Gf2Matrix::fromRows({
        {1, 1, 0},
        {0, 1, 1},
    });
    Gf2Matrix ns = m.nullSpace();
    EXPECT_EQ(ns.rows(), 1u);
    // Null vector must satisfy M x = 0.
    for (std::size_t r = 0; r < m.rows(); ++r) {
        int parity = 0;
        for (std::size_t c = 0; c < 3; ++c)
            parity ^= m.get(r, c) && ns.get(0, c);
        EXPECT_EQ(parity, 0);
    }
    EXPECT_GT(ns.rowWeight(0), 0u);
}

TEST(Gf2, SolveConsistent)
{
    auto m = Gf2Matrix::fromRows({
        {1, 0, 1},
        {0, 1, 1},
    });
    std::vector<int> x;
    ASSERT_TRUE(m.solve({1, 0}, &x));
    // Verify M x = b.
    EXPECT_EQ((x[0] ^ x[2]) & 1, 1);
    EXPECT_EQ((x[1] ^ x[2]) & 1, 0);
}

TEST(Gf2, SolveInconsistent)
{
    auto m = Gf2Matrix::fromRows({
        {1, 1, 0},
        {1, 1, 0},
    });
    std::vector<int> x;
    EXPECT_FALSE(m.solve({1, 0}, &x));
}

TEST(Gf2, MultiplyAndTranspose)
{
    auto a = Gf2Matrix::fromRows({{1, 1}, {0, 1}});
    auto b = Gf2Matrix::fromRows({{1, 0}, {1, 1}});
    Gf2Matrix c = a.multiply(b);
    // [[1,1],[0,1]] * [[1,0],[1,1]] = [[0,1],[1,1]] over GF(2).
    EXPECT_FALSE(c.get(0, 0));
    EXPECT_TRUE(c.get(0, 1));
    EXPECT_TRUE(c.get(1, 0));
    EXPECT_TRUE(c.get(1, 1));
    Gf2Matrix at = a.transpose();
    EXPECT_TRUE(at.get(1, 0));
    EXPECT_FALSE(at.get(0, 1));
}

TEST(Gf2, AppendRowGrows)
{
    Gf2Matrix m(0, 0);
    m.appendRow({1, 0, 1});
    m.appendRow({0, 1, 1});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.rank(), 2u);
}

TEST(TableFmt, RendersAligned)
{
    Table t({"a", "bbbb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::string s = t.str();
    EXPECT_NE(s.find("| a   | bbbb |"), std::string::npos);
    EXPECT_NE(s.find("| 333 | 4    |"), std::string::npos);
}

TEST(TableFmt, Formatters)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtE(1.6e-11, 2), "1.6e-11");
    EXPECT_EQ(fmtSi(19.2e6, 1), "19.2M");
    EXPECT_EQ(fmtSi(250.0, 0), "250");
    EXPECT_EQ(fmtDuration(0.4e-3), "400.0 us");
    EXPECT_EQ(fmtDuration(0.004), "4.00 ms");
    EXPECT_EQ(fmtDuration(484000), "5.6 days");
}

TEST(TableFmt, EdgeCasesAreStable)
{
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();

    EXPECT_EQ(fmtF(nan, 2), "nan");
    EXPECT_EQ(fmtF(inf, 2), "inf");
    EXPECT_EQ(fmtF(-inf, 2), "-inf");
    EXPECT_EQ(fmtF(0.0, 2), "0.00");
    EXPECT_EQ(fmtF(-0.0, 2), "0.00");  // never "-0.00"
    EXPECT_EQ(fmtF(-1.5, 1), "-1.5");

    EXPECT_EQ(fmtE(nan, 2), "nan");
    EXPECT_EQ(fmtE(-inf, 3), "-inf");
    EXPECT_EQ(fmtE(-0.0, 2), "0.0e+00");

    EXPECT_EQ(fmtSi(nan, 1), "nan");
    EXPECT_EQ(fmtSi(inf, 1), "inf");
    EXPECT_EQ(fmtSi(0.0, 1), "0.0");
    EXPECT_EQ(fmtSi(-0.0, 1), "0.0");
    EXPECT_EQ(fmtSi(-19.2e6, 1), "-19.2M");
    EXPECT_EQ(fmtSi(-250.0, 0), "-250");

    EXPECT_EQ(fmtDuration(nan), "nan");
    EXPECT_EQ(fmtDuration(inf), "inf");
    EXPECT_EQ(fmtDuration(-inf), "-inf");
    EXPECT_EQ(fmtDuration(0.0), "0.0 us");
    EXPECT_EQ(fmtDuration(-0.0), "0.0 us");
    EXPECT_EQ(fmtDuration(-484000), "-5.6 days");
    EXPECT_EQ(fmtDuration(-0.004), "-4.00 ms");
}

TEST(Serialize, RoundTripNumbers)
{
    for (double v : {0.0, -0.0, 1.0, -1.5, 0.1, 1e-300, 1e300,
                     3.141592653589793, 469169.9789845182}) {
        std::string s = fmtRoundTrip(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
    EXPECT_EQ(fmtRoundTrip(0.0), "0");
    EXPECT_EQ(fmtRoundTrip(-0.0), "0");
    EXPECT_EQ(fmtRoundTrip(std::nan("")), "nan");
    EXPECT_EQ(fmtRoundTrip(
                  std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(fmtRoundTrip(
                  -std::numeric_limits<double>::infinity()),
              "-inf");
}

TEST(Serialize, JsonHelpers)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote("line\nbreak\ttab"),
              "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(jsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
    EXPECT_EQ(jsonNumber(2.5), "2.5");
    // Non-finite values use the same quoted tags canonicalKey's
    // fmtRoundTrip encoding uses, so the two round-trip together.
    EXPECT_EQ(jsonNumber(std::nan("")), "\"nan\"");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "\"inf\"");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "\"-inf\"");
}

TEST(Serialize, CsvFieldQuoting)
{
    EXPECT_EQ(csvField("plain"), "plain");
    EXPECT_EQ(csvField("has,comma"), "\"has,comma\"");
    EXPECT_EQ(csvField("has\"quote"), "\"has\"\"quote\"");
    EXPECT_EQ(csvField("has\nnewline"), "\"has\nnewline\"");
    EXPECT_EQ(csvField(""), "");
}

TEST(Strings, SplitAndTrim)
{
    auto parts = splitWhitespace("  a  bb\tccc \n");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "ccc");
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
    auto fields = splitChar("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[2], "");
}

TEST(Strings, JoinStartsUpper)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_TRUE(startsWith("rec[-3]", "rec["));
    EXPECT_FALSE(startsWith("re", "rec"));
    EXPECT_EQ(toUpper("cx"), "CX");
}

TEST(Asserts, FatalThrows)
{
    EXPECT_THROW(TRAQ_FATAL("boom"), FatalError);
    EXPECT_THROW(TRAQ_REQUIRE(false, "nope"), FatalError);
    EXPECT_NO_THROW(TRAQ_REQUIRE(true, "fine"));
}

} // namespace
} // namespace traq
