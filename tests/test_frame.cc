/**
 * @file
 * Tests for the bit-sliced Pauli-frame sampler: noiseless silence,
 * forced-error propagation through every gate type, and statistical
 * agreement of noise channels with expectations.
 */

#include <gtest/gtest.h>

#include "src/sim/circuit.hh"
#include "src/sim/frame.hh"

namespace traq::sim {
namespace {

TEST(Frame, NoiselessCircuitHasNoEvents)
{
    Circuit c;
    c.h(0);
    c.cx(0, 1);
    c.m(0);
    c.m(1);
    c.detector({1, 2});
    c.observable(0, {1});
    FrameSimulator sim(1);
    FrameBatch batch = sim.sample(c);
    ASSERT_EQ(batch.detectors.size(), 1u);
    EXPECT_EQ(batch.detectors[0], 0u);
    EXPECT_EQ(batch.observables[0], 0u);
}

TEST(Frame, CertainXErrorFlipsMeasurement)
{
    Circuit c;
    c.xError(1.0, {0});
    c.m(0);
    c.detector({1});
    FrameSimulator sim(2);
    FrameBatch batch = sim.sample(c);
    EXPECT_EQ(batch.detectors[0], ~0ULL);
}

TEST(Frame, ZErrorInvisibleToZMeasurement)
{
    Circuit c;
    c.zError(1.0, {0});
    c.m(0);
    c.detector({1});
    FrameSimulator sim(2);
    EXPECT_EQ(sim.sample(c).detectors[0], 0u);
}

TEST(Frame, ZErrorVisibleToXMeasurement)
{
    Circuit c;
    c.zError(1.0, {0});
    c.mx(0);
    c.detector({1});
    FrameSimulator sim(2);
    EXPECT_EQ(sim.sample(c).detectors[0], ~0ULL);
}

TEST(Frame, HadamardRotatesFrame)
{
    // Z error, then H, then Z-measure: error becomes X-like, flips.
    Circuit c;
    c.zError(1.0, {0});
    c.h(0);
    c.m(0);
    c.detector({1});
    FrameSimulator sim(3);
    EXPECT_EQ(sim.sample(c).detectors[0], ~0ULL);
}

TEST(Frame, CxPropagatesXForward)
{
    Circuit c;
    c.xError(1.0, {0});
    c.cx(0, 1);
    c.m(1);
    c.detector({1});
    FrameSimulator sim(4);
    EXPECT_EQ(sim.sample(c).detectors[0], ~0ULL);
}

TEST(Frame, CxPropagatesZBackward)
{
    Circuit c;
    c.zError(1.0, {1});
    c.cx(0, 1);
    c.mx(0);
    c.detector({1});
    FrameSimulator sim(4);
    EXPECT_EQ(sim.sample(c).detectors[0], ~0ULL);
}

TEST(Frame, CzConvertsXToZOnPartner)
{
    Circuit c;
    c.xError(1.0, {0});
    c.cz(0, 1);
    c.mx(1);
    c.detector({1});
    FrameSimulator sim(4);
    EXPECT_EQ(sim.sample(c).detectors[0], ~0ULL);
}

TEST(Frame, SwapMovesFrame)
{
    Circuit c;
    c.xError(1.0, {0});
    c.swapq(0, 1);
    c.m(0);
    c.m(1);
    c.detector({2});  // qubit 0 measurement
    c.detector({1});  // qubit 1 measurement
    FrameSimulator sim(4);
    FrameBatch b = sim.sample(c);
    EXPECT_EQ(b.detectors[0], 0u);
    EXPECT_EQ(b.detectors[1], ~0ULL);
}

TEST(Frame, SGateMixesXintoZ)
{
    // X error + S + X-measurement: S X S^dag = Y which anticommutes
    // with X, so the X-basis measurement flips.
    Circuit c;
    c.xError(1.0, {0});
    c.s(0);
    c.mx(0);
    c.detector({1});
    FrameSimulator sim(4);
    EXPECT_EQ(sim.sample(c).detectors[0], ~0ULL);
}

TEST(Frame, ResetClearsFrame)
{
    Circuit c;
    c.xError(1.0, {0});
    c.r(0);
    c.m(0);
    c.detector({1});
    FrameSimulator sim(4);
    EXPECT_EQ(sim.sample(c).detectors[0], 0u);
}

TEST(Frame, MrRecordsThenClears)
{
    Circuit c;
    c.xError(1.0, {0});
    c.mr(0);
    c.m(0);
    c.detector({2});
    c.detector({1});
    FrameSimulator sim(4);
    FrameBatch b = sim.sample(c);
    EXPECT_EQ(b.detectors[0], ~0ULL);  // first measurement flipped
    EXPECT_EQ(b.detectors[1], 0u);     // after reset, clean
}

TEST(Frame, ObservableAccumulatesMultipleRecords)
{
    Circuit c;
    c.xError(1.0, {0});
    c.m(0);
    c.m(1);
    c.observable(0, {2, 1});  // XOR of both measurements
    FrameSimulator sim(4);
    FrameBatch b = sim.sample(c);
    EXPECT_EQ(b.observables[0], ~0ULL);
}

TEST(Frame, XErrorRateMatches)
{
    Circuit c;
    c.xError(0.3, {0});
    c.m(0);
    c.detector({1});
    FrameSimulator sim(99);
    std::uint64_t flips = 0, shots = 0;
    for (int i = 0; i < 500; ++i) {
        flips += __builtin_popcountll(sim.sample(c).detectors[0]);
        shots += 64;
    }
    double rate = static_cast<double>(flips) / shots;
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Frame, Depolarize1VisibleFraction)
{
    // Depolarizing errors show in Z measurement 2/3 of the time
    // (X and Y components).
    Circuit c;
    c.depolarize1(0.9, {0});
    c.m(0);
    c.detector({1});
    FrameSimulator sim(123);
    std::uint64_t flips = 0, shots = 0;
    for (int i = 0; i < 500; ++i) {
        flips += __builtin_popcountll(sim.sample(c).detectors[0]);
        shots += 64;
    }
    double rate = static_cast<double>(flips) / shots;
    EXPECT_NEAR(rate, 0.9 * 2.0 / 3.0, 0.02);
}

TEST(Frame, Depolarize2MarginalVisibleFraction)
{
    // Of the 15 two-qubit components, 8 have an X/Y on the first
    // qubit; a Z measurement of qubit 0 flips for those.
    Circuit c;
    c.depolarize2(0.9, {0, 1});
    c.m(0);
    c.detector({1});
    FrameSimulator sim(321);
    std::uint64_t flips = 0, shots = 0;
    for (int i = 0; i < 500; ++i) {
        flips += __builtin_popcountll(sim.sample(c).detectors[0]);
        shots += 64;
    }
    double rate = static_cast<double>(flips) / shots;
    EXPECT_NEAR(rate, 0.9 * 8.0 / 15.0, 0.02);
}

TEST(Frame, CountObservableFlipsHelper)
{
    Circuit c;
    c.xError(0.5, {0});
    c.m(0);
    c.observable(0, {1});
    FrameSimulator sim(55);
    std::uint64_t shots = 0;
    auto counts = sim.countObservableFlips(c, 10000, &shots);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_GE(shots, 10000u);
    double rate = static_cast<double>(counts[0]) / shots;
    EXPECT_NEAR(rate, 0.5, 0.03);
}

} // namespace
} // namespace traq::sim
