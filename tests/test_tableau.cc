/**
 * @file
 * Tests for the Aaronson–Gottesman tableau simulator: gate semantics,
 * measurement statistics, entangled-state correlations, and the
 * stabilizer-membership test hook.
 */

#include <gtest/gtest.h>

#include "src/sim/circuit.hh"
#include "src/sim/tableau.hh"

namespace traq::sim {
namespace {

TEST(Tableau, InitialStateStabilizers)
{
    TableauSim sim(3);
    for (std::size_t q = 0; q < 3; ++q) {
        PauliString z(3);
        z.setPauli(q, 'Z');
        EXPECT_TRUE(sim.stateStabilizedBy(z));
        PauliString x(3);
        x.setPauli(q, 'X');
        EXPECT_FALSE(sim.stateStabilizedBy(x));
    }
}

TEST(Tableau, DeterministicMeasurementOfZero)
{
    TableauSim sim(1);
    auto res = sim.measure(0);
    EXPECT_FALSE(res.value);
    EXPECT_FALSE(res.random);
}

TEST(Tableau, XFlipsMeasurement)
{
    TableauSim sim(1);
    sim.x(0);
    auto res = sim.measure(0);
    EXPECT_TRUE(res.value);
    EXPECT_FALSE(res.random);
}

TEST(Tableau, PlusStateIsRandomThenSticky)
{
    TableauSim sim(1, 5);
    sim.h(0);
    auto first = sim.measure(0);
    EXPECT_TRUE(first.random);
    // Repeated measurement must reproduce the collapsed value.
    for (int i = 0; i < 5; ++i) {
        auto again = sim.measure(0);
        EXPECT_FALSE(again.random);
        EXPECT_EQ(again.value, first.value);
    }
}

TEST(Tableau, MeasurementStatisticsFair)
{
    int ones = 0;
    for (int i = 0; i < 400; ++i) {
        TableauSim sim(1, 1000 + i);
        sim.h(0);
        ones += sim.measure(0).value ? 1 : 0;
    }
    EXPECT_GT(ones, 140);
    EXPECT_LT(ones, 260);
}

TEST(Tableau, BellPairCorrelations)
{
    for (int i = 0; i < 50; ++i) {
        TableauSim sim(2, 42 + i);
        sim.h(0);
        sim.cx(0, 1);
        // State (|00> + |11>)/sqrt(2): stabilized by XX and ZZ.
        EXPECT_TRUE(
            sim.stateStabilizedBy(PauliString::fromText("XX")));
        EXPECT_TRUE(
            sim.stateStabilizedBy(PauliString::fromText("ZZ")));
        EXPECT_FALSE(
            sim.stateStabilizedBy(PauliString::fromText("ZI")));
        auto a = sim.measure(0);
        auto b = sim.measure(1);
        EXPECT_TRUE(a.random);
        EXPECT_FALSE(b.random);
        EXPECT_EQ(a.value, b.value);
    }
}

TEST(Tableau, GhzCorrelations)
{
    TableauSim sim(3, 7);
    sim.h(0);
    sim.cx(0, 1);
    sim.cx(1, 2);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("XXX")));
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("ZZI")));
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("IZZ")));
    auto a = sim.measure(0);
    EXPECT_EQ(sim.measure(1).value, a.value);
    EXPECT_EQ(sim.measure(2).value, a.value);
}

TEST(Tableau, GateIdentitiesViaStabilizers)
{
    // H Z H = X: start in |0> (stabilized by Z), apply H -> |+>.
    TableauSim sim(1);
    sim.h(0);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("X")));
    // S|+> has stabilizer Y.
    sim.s(0);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("Y")));
    // S again: S Y S^dag = -X... state stabilizer becomes -X.
    sim.s(0);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("-X")));
}

TEST(Tableau, SdagUndoesS)
{
    TableauSim sim(1);
    sim.h(0);
    sim.s(0);
    sim.sdag(0);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("X")));
}

TEST(Tableau, SqrtXBehaviour)
{
    // SQRT_X |0> is stabilized by -Y.
    TableauSim sim(1);
    sim.sqrtX(0);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("-Y")));
    sim.sqrtXDag(0);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("Z")));
}

TEST(Tableau, CzMakesClusterState)
{
    TableauSim sim(2);
    sim.h(0);
    sim.h(1);
    sim.cz(0, 1);
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("XZ")));
    EXPECT_TRUE(sim.stateStabilizedBy(PauliString::fromText("ZX")));
}

TEST(Tableau, SwapMovesState)
{
    TableauSim sim(2);
    sim.x(0);
    sim.swapq(0, 1);
    EXPECT_FALSE(sim.measure(0).value);
    EXPECT_TRUE(sim.measure(1).value);
}

TEST(Tableau, ResetAfterEntanglement)
{
    TableauSim sim(2, 3);
    sim.h(0);
    sim.cx(0, 1);
    sim.reset(0);
    EXPECT_FALSE(sim.measure(0).value);
    // The reset's internal measurement collapsed the partner too, so
    // its value is now deterministic.
    EXPECT_FALSE(sim.measure(1).random);
}

TEST(Tableau, MeasureXBasis)
{
    TableauSim sim(1);
    sim.h(0);  // |+>
    auto res = sim.measureX(0);
    EXPECT_FALSE(res.value);
    EXPECT_FALSE(res.random);
    TableauSim sim2(1);
    sim2.x(0);
    sim2.h(0);  // |->
    auto res2 = sim2.measureX(0);
    EXPECT_TRUE(res2.value);
    EXPECT_FALSE(res2.random);
}

TEST(Tableau, RunCircuitRecordsMeasurements)
{
    Circuit c;
    c.x(0);
    c.m(0);
    c.m(1);
    TableauSim sim(2);
    auto rec = sim.run(c);
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_TRUE(rec[0]);
    EXPECT_FALSE(rec[1]);
}

TEST(Tableau, NoiselessRunForcesZeroOnRandom)
{
    Circuit c;
    c.h(0);
    c.m(0);
    TableauSim sim(1, 9);
    auto rec = sim.run(c, /*noiseless=*/true);
    ASSERT_EQ(rec.size(), 1u);
    EXPECT_FALSE(rec[0]);
}

TEST(Tableau, NoiseChannelsSkippedWhenNoiseless)
{
    Circuit c;
    c.xError(1.0, {0});
    c.m(0);
    TableauSim sim(1);
    auto rec = sim.run(c, /*noiseless=*/true);
    EXPECT_FALSE(rec[0]);
    TableauSim sim2(1);
    auto rec2 = sim2.run(c, /*noiseless=*/false);
    EXPECT_TRUE(rec2[0]);
}

TEST(Tableau, MrMeasuresAndResets)
{
    Circuit c;
    c.x(0);
    c.mr(0);
    c.m(0);
    TableauSim sim(1);
    auto rec = sim.run(c);
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_TRUE(rec[0]);
    EXPECT_FALSE(rec[1]);
}

/** Random Clifford circuits preserve the stabilizer-group size. */
TEST(Tableau, StabilizerConsistencyUnderRandomCircuits)
{
    for (int trial = 0; trial < 10; ++trial) {
        TableauSim sim(4, 100 + trial);
        Circuit c;
        traq::Rng rng(50 + trial);
        for (int g = 0; g < 30; ++g) {
            std::uint32_t a =
                static_cast<std::uint32_t>(rng.below(4));
            std::uint32_t b =
                static_cast<std::uint32_t>(rng.below(4));
            switch (rng.below(4)) {
              case 0:
                c.h(a);
                break;
              case 1:
                c.s(a);
                break;
              case 2:
                if (a != b)
                    c.cx(a, b);
                break;
              default:
                if (a != b)
                    c.cz(a, b);
                break;
            }
        }
        sim.run(c);
        // Every stabilizer row must stabilize the state, trivially by
        // construction; verify via the membership hook (exercises the
        // GF(2) solve path end-to-end).
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_TRUE(sim.stateStabilizedBy(sim.stabilizer(i)));
        // Destabilizers must anticommute with their stabilizer
        // partner and commute with the others.
        for (std::size_t i = 0; i < 4; ++i) {
            for (std::size_t j = 0; j < 4; ++j) {
                bool comm = sim.destabilizer(i).commutesWith(
                    sim.stabilizer(j));
                EXPECT_EQ(comm, i != j);
            }
        }
    }
}

} // namespace
} // namespace traq::sim
