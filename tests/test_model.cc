/**
 * @file
 * Tests for the logical error model (Eqs. (2)-(6)), the Nelder-Mead
 * fitter, and the cultivation cost model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/assert.hh"
#include "src/model/cultivation.hh"
#include "src/model/error_model.hh"
#include "src/model/fit.hh"

namespace traq::model {
namespace {

TEST(ErrorModel, MemoryEq2Values)
{
    ErrorModelParams p;   // C=0.1, Lambda=10
    // d=3: 0.1 * 0.1^2 = 1e-3; d=5: 1e-4.
    EXPECT_NEAR(memoryErrorPerRound(3, p), 1e-3, 1e-12);
    EXPECT_NEAR(memoryErrorPerRound(5, p), 1e-4, 1e-13);
    EXPECT_NEAR(memoryErrorPerRound(27, p), 0.1 * 1e-14, 1e-20);
}

TEST(ErrorModel, Eq4RecoversMemoryLimit)
{
    // As x -> 0, per-CNOT error must approach the accumulated
    // memory error of 1/x rounds x 2 qubits.
    ErrorModelParams p;
    for (int d : {3, 11, 27}) {
        double x = 1e-6;
        double perCnot = cnotLogicalError(d, x, p);
        double memoryAccum = 2.0 * memoryErrorPerRound(d, p) / x;
        EXPECT_NEAR(perCnot / memoryAccum, 1.0, 1e-3) << "d=" << d;
    }
}

TEST(ErrorModel, Eq5EffectiveThresholds)
{
    ErrorModelParams p;   // alpha = 1/6
    EXPECT_NEAR(effectiveThreshold(1.0, p), 0.01 / (1 + 1.0 / 6.0),
                1e-12);
    EXPECT_NEAR(100 * effectiveThreshold(1.0, p), 0.857, 1e-2);
    ErrorModelParams ph;
    ph.alpha = 0.5;
    EXPECT_NEAR(100 * effectiveThreshold(1.0, ph), 0.667, 1e-2);
}

TEST(ErrorModel, CnotErrorPackingTradeoff)
{
    ErrorModelParams p;
    // At small d the 1/x amortization dominates: per-CNOT error
    // falls as CNOTs pack densely.
    double prev = cnotLogicalError(3, 0.25, p);
    for (double x : {0.5, 1.0, 2.0, 4.0}) {
        double cur = cnotLogicalError(3, x, p);
        EXPECT_LT(cur, prev);
        prev = cur;
    }
    // At large d the (1 + alpha x)^((d+1)/2) elevation wins: packing
    // more CNOTs per round *raises* the per-CNOT error — which is
    // why Eq. (6) (volume, with its 4/x SE overhead) rather than the
    // raw error sets the optimal cadence.
    EXPECT_GT(cnotLogicalError(27, 4.0, p),
              cnotLogicalError(27, 1.0, p));
    EXPECT_GT(cnotLogicalError(27, 1.0, p),
              cnotLogicalError(27, 0.25, p));
}

TEST(ErrorModel, RequiredDistanceInvertsModel)
{
    ErrorModelParams p;
    // Boundary targets like 1e-6 sit within 1 ulp of the model
    // value at Lambda = 10; compare with matching relative slack.
    const double slack = 1.0 + 1e-9;
    for (double target : {1e-6, 1e-9, 1e-12, 1e-15}) {
        int d = requiredDistanceMemory(target, p);
        EXPECT_LE(memoryErrorPerRound(d, p), target * slack);
        if (d > 3)
            EXPECT_GT(memoryErrorPerRound(d - 2, p),
                      target * slack);
        int dc = requiredDistanceCnot(target, 1.0, p);
        EXPECT_LE(cnotLogicalError(dc, 1.0, p), target * slack);
        if (dc > 3)
            EXPECT_GT(cnotLogicalError(dc - 2, 1.0, p),
                      target * slack);
    }
}

TEST(ErrorModel, FactoringDistanceIs27)
{
    // The paper's operating point: per-CCZ Clifford budget at
    // x = 1 leads to d = 27 (Table II).
    ErrorModelParams p;
    int d = requiredDistanceCnot(1.33e-13, 1.0, p);
    EXPECT_EQ(d, 27);
}

TEST(ErrorModel, AboveThresholdThrows)
{
    ErrorModelParams p;
    p.pPhys = 0.02;   // Lambda = 0.5 < 1
    EXPECT_THROW(requiredDistanceMemory(1e-9, p), traq::FatalError);
}

TEST(ErrorModel, Eq6OptimumAtLeastOneCnotPerRound)
{
    ErrorModelParams p;
    double xOpt = optimalCnotsPerRound(1e-12, p);
    EXPECT_GE(xOpt, 1.0) << "paper: optimal SE rounds <= 1";
    // Larger alpha pushes the optimum to smaller x.
    ErrorModelParams ph;
    ph.alpha = 1.0;
    EXPECT_LE(optimalCnotsPerRound(1e-12, ph), xOpt * 2.0);
}

TEST(ErrorModel, VolumeIncreasesWithAlpha)
{
    ErrorModelParams lo, hi;
    hi.alpha = 0.5;
    EXPECT_LE(volumePerCnot(1.0, 1e-12, lo),
              volumePerCnot(1.0, 1e-12, hi));
}

TEST(NelderMead, MinimizesQuadratic)
{
    auto fn = [](const std::vector<double> &v) {
        double dx = v[0] - 3.0, dy = v[1] + 2.0;
        return dx * dx + 2 * dy * dy + 5.0;
    };
    auto res = nelderMead(fn, {0.0, 0.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 3.0, 1e-4);
    EXPECT_NEAR(res.x[1], -2.0, 1e-4);
    EXPECT_NEAR(res.value, 5.0, 1e-6);
}

TEST(NelderMead, MinimizesRosenbrock)
{
    auto fn = [](const std::vector<double> &v) {
        double a = 1.0 - v[0];
        double b = v[1] - v[0] * v[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions opts;
    opts.maxIterations = 20000;
    auto res = nelderMead(fn, {-1.0, 1.0}, opts);
    EXPECT_NEAR(res.x[0], 1.0, 1e-2);
    EXPECT_NEAR(res.x[1], 1.0, 2e-2);
}

TEST(Fit, RecoversAlphaFromReferenceData)
{
    auto data = referenceRef17Data();
    CnotFit fit = fitCnotModel(data, /*fixLambda=*/20.0);
    // Reference data was generated at alpha = 1/6 with bounded
    // jitter: the fit must land close (paper reports alpha ~ 1/6).
    EXPECT_NEAR(fit.alpha, 1.0 / 6.0, 0.05);
    EXPECT_NEAR(fit.prefactorC, 0.1, 0.03);
    EXPECT_LT(fit.rmsLogResidual, 0.2);
}

TEST(Fit, FreeLambdaFitAlsoCloses)
{
    auto data = referenceRef17Data();
    CnotFit fit = fitCnotModel(data);
    EXPECT_NEAR(fit.lambda, 20.0, 6.0);
    EXPECT_NEAR(fit.alpha, 1.0 / 6.0, 0.08);
}

TEST(Fit, RejectsTinyDatasets)
{
    std::vector<CnotDataPoint> two(2);
    EXPECT_THROW(fitCnotModel(two), traq::FatalError);
}

TEST(Cultivation, AnchorPoint)
{
    CultivationModel c;
    EXPECT_NEAR(c.volumeQubitRounds(7.7e-7), 1.5e4, 1.0);
}

TEST(Cultivation, InverseConsistency)
{
    CultivationModel c;
    for (double eps : {1e-5, 7.7e-7, 1e-8}) {
        double v = c.volumeQubitRounds(eps);
        EXPECT_NEAR(c.errorForVolume(v) / eps, 1.0, 1e-9);
    }
}

TEST(Cultivation, MonotoneInError)
{
    CultivationModel c;
    EXPECT_GT(c.volumeQubitRounds(1e-8),
              c.volumeQubitRounds(1e-6));
    EXPECT_GT(c.volumeQubitRounds(1e-6),
              c.volumeQubitRounds(1e-4));
}

TEST(Cultivation, PhysicalErrorScaling)
{
    CultivationModel c;
    // Lower physical error rate cheapens post-selection.
    EXPECT_LT(c.volumeAtPhysicalError(7.7e-7, 5e-4),
              c.volumeAtPhysicalError(7.7e-7, 1e-3));
    EXPECT_GT(c.volumeAtPhysicalError(7.7e-7, 2e-3),
              c.volumeAtPhysicalError(7.7e-7, 1e-3));
}

TEST(Cultivation, RejectsBadInputs)
{
    CultivationModel c;
    EXPECT_THROW(c.volumeQubitRounds(0.0), traq::FatalError);
    EXPECT_THROW(c.volumeQubitRounds(1.5), traq::FatalError);
    EXPECT_THROW(c.errorForVolume(-1.0), traq::FatalError);
}

} // namespace
} // namespace traq::model
