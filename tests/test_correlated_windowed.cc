/**
 * @file
 * Tests for the two new decode-graph clients.
 *
 * The headline regression lock: with the `correlated` decoder,
 * transversal-CNOT logical error is again monotonically suppressed
 * with distance at p = 1e-3 — d=5 beats d=3 — while the plain joint
 * matcher shows no suppression (the exact gap recorded in ROADMAP
 * that pinned `mc-alpha` to a single CNOT distance).  And the
 * `windowed` decoder reproduces whole-history decoding bit for bit
 * on memory circuits at its default window/commit depths.
 *
 * All Monte-Carlo runs pin the scalar word backend so the sampled
 * streams (and therefore the asserted hit counts) are identical in
 * the wide and TRAQ_FORCE_WORD64 CI configurations.
 */

#include <gtest/gtest.h>

#include <span>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/decoder/correlated.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/decoder/windowed.hh"
#include "src/estimator/simulation.hh"
#include "src/sim/frame.hh"

namespace traq::decoder {
namespace {

McResult
runCnot(int distance, DecoderKind kind, std::uint64_t shots)
{
    codes::TransversalCnotSpec spec;
    spec.distance = distance;
    spec.cnotLayers = 4;
    spec.noise = codes::NoiseParams::uniform(1e-3);
    auto e = codes::buildTransversalCnot(spec);
    McOptions o;
    o.shots = shots;
    o.seed = 20260728;
    o.decoder = kind;
    o.wordBackend = WordBackend::Scalar64;
    return runMonteCarlo(e, o);
}

TEST(CorrelatedDecoder, RestoresCrossDistanceSuppressionAtP1em3)
{
    const std::uint64_t shots = 30000;
    const McResult fb3 = runCnot(3, DecoderKind::Fallback, shots);
    const McResult fb5 = runCnot(5, DecoderKind::Fallback, shots);
    const McResult co3 = runCnot(3, DecoderKind::Correlated, shots);
    const McResult co5 = runCnot(5, DecoderKind::Correlated, shots);

    // Enough statistics to make the comparison meaningful.
    ASSERT_GT(co3.anyObservable.hits, 100u);
    ASSERT_GT(co5.anyObservable.hits, 100u);

    // The documented gap: plain joint matching shows no distance
    // suppression on transversal-CNOT circuits at p = 1e-3.
    EXPECT_GT(fb5.anyObservable.mean,
              0.8 * fb3.anyObservable.mean);

    // Correlation reweighting restores monotone suppression with
    // margin: d=5 beats d=3 by at least 15%.
    EXPECT_LT(co5.anyObservable.mean,
              0.85 * co3.anyObservable.mean);

    // And it beats the plain matcher outright at both distances.
    EXPECT_LT(co3.anyObservable.mean, fb3.anyObservable.mean);
    EXPECT_LT(co5.anyObservable.mean, fb5.anyObservable.mean);
}

TEST(CorrelatedDecoder, McAlphaFitsAcrossBothDistances)
{
    // The full (d, x) grid — memory anchors d in {3,5} and CNOT
    // points d in {3,5} x x in {1,2,4} — fits Eq. (4) end to end
    // with the correlated decoder (high p keeps shots cheap).
    est::McAlphaSpec spec;
    spec.pPhys = 6e-3;
    spec.shots = 1500;
    spec.cnotDMax = 5;
    spec.decoder = DecoderKind::Correlated;
    auto r = est::makeMcAlphaEstimator(spec)->estimate(
        {"mc-alpha", {}});
    EXPECT_EQ(r.metric("dataPoints"), 6.0);
    EXPECT_GT(r.metric("alpha"), 0.03);
    EXPECT_LT(r.metric("alpha"), 0.6);
    EXPECT_GT(r.metric("lambda"), 1.0);
    EXPECT_GT(r.metric("prefactorC"), 0.0);
}

TEST(CorrelatedDecoder, FallsBackToPlainDecodeWithoutHints)
{
    // A hand-built chain DEM has single-part mechanisms only, so
    // the correlated decoder must agree with the plain composite.
    sim::DetectorErrorModel dem;
    dem.numDetectors = 5;
    dem.numObservables = 1;
    for (int i = 0; i + 1 < 5; ++i) {
        sim::ErrorMechanism m;
        m.probability = 0.01;
        m.detectors = {static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(i + 1)};
        dem.errors.push_back(m);
    }
    sim::ErrorMechanism left;
    left.probability = 0.01;
    left.detectors = {0};
    left.observables = 1;
    dem.errors.push_back(left);
    sim::ErrorMechanism right;
    right.probability = 0.01;
    right.detectors = {4};
    dem.errors.push_back(right);
    codes::CircuitMeta meta;
    meta.detectorIsX.assign(5, 0);
    meta.observableIsX.assign(1, 0);
    DecodeGraph g = DecodeGraph::fromDem(dem, meta);
    ASSERT_EQ(g.numPartnerLinks(), 0u);

    CorrelatedDecoder corr(g, {});
    FallbackDecoder plain(g);
    for (const auto &syn :
         std::vector<std::vector<std::uint32_t>>{
             {}, {0}, {2, 3}, {0, 4}, {1, 2, 3, 4}}) {
        EXPECT_EQ(corr.decode(syn), plain.decode(syn));
    }
    EXPECT_EQ(corr.reweightedPasses(), 0u);
}

/** Sample per-shot syndromes and compare two decoders bit for bit. */
int
countMismatches(const codes::Experiment &e, const DecodeGraph &g,
                Decoder &a, Decoder &b, int shots,
                std::uint64_t seed)
{
    sim::FrameSimulator fs(seed);
    sim::FrameBatch batch;
    const std::uint64_t live = ~0ULL;
    std::vector<std::vector<std::uint32_t>> syn(64);
    int mismatches = 0, done = 0;
    while (done < shots) {
        fs.sampleInto(e.circuit, batch);
        for (auto &s : syn)
            s.clear();
        sim::extractSyndromes(batch, {&live, 1}, syn);
        for (int s = 0; s < 64 && done < shots; ++s, ++done)
            mismatches += a.decode(syn[s]) != b.decode(syn[s]);
    }
    return mismatches;
}

TEST(WindowedDecoder, BitIdenticalToWholeHistoryOnMemoryD3)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 12,
                                codes::NoiseParams::uniform(3e-3));
    DecodeGraph g = DecodeGraph::build(e);
    DecoderConfig cfg;  // default windowRounds=6, commitRounds=2
    auto whole = makeDecoder(DecoderKind::Fallback, g, cfg);
    auto win = makeDecoder(DecoderKind::Windowed, g, cfg);
    EXPECT_EQ(countMismatches(e, g, *whole, *win, 4096, 99), 0);
    // The stream genuinely ran in windows, not one shot.
    auto &w = dynamic_cast<WindowedDecoder &>(*win);
    EXPECT_GT(w.windowsDecoded(), 4096u);
}

TEST(WindowedDecoder, BitIdenticalToWholeHistoryOnMemoryD5)
{
    codes::SurfaceCode sc(5);
    auto e = codes::buildMemory(sc, 'Z', 10,
                                codes::NoiseParams::uniform(1e-3));
    DecodeGraph g = DecodeGraph::build(e);
    auto whole = makeDecoder(DecoderKind::Fallback, g, {});
    auto win = makeDecoder(DecoderKind::Windowed, g, {});
    EXPECT_EQ(countMismatches(e, g, *whole, *win, 1024, 99), 0);
}

TEST(WindowedDecoder, DegenerateWindowIsWholeHistory)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(5e-3));
    DecodeGraph g = DecodeGraph::build(e);
    DecoderConfig cfg;
    cfg.windowRounds = 64;  // covers the whole circuit
    auto whole = makeDecoder(DecoderKind::Fallback, g, cfg);
    auto win = makeDecoder(DecoderKind::Windowed, g, cfg);
    EXPECT_EQ(countMismatches(e, g, *whole, *win, 512, 5), 0);
}

TEST(WindowedDecoder, RunsThroughMonteCarloEngine)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 12,
                                codes::NoiseParams::uniform(3e-3));
    McOptions o;
    o.shots = 2048;
    o.seed = 7;
    o.wordBackend = WordBackend::Scalar64;
    o.decoder = DecoderKind::Windowed;
    auto winRes = runMonteCarlo(e, o);
    EXPECT_STREQ(winRes.decoder, "windowed");
    o.decoder = DecoderKind::Fallback;
    auto refRes = runMonteCarlo(e, o);
    // Same samples, bit-identical streaming decode: identical hits.
    EXPECT_EQ(winRes.anyObservable.hits,
              refRes.anyObservable.hits);
}

TEST(WindowedDecoder, RejectsBadWindowConfig)
{
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(1e-3));
    DecodeGraph g = DecodeGraph::build(e);
    DecoderConfig cfg;
    cfg.commitRounds = 9;  // > windowRounds
    EXPECT_THROW(makeDecoder(DecoderKind::Windowed, g, cfg),
                 FatalError);
    cfg = {};
    cfg.windowRounds = 0;
    EXPECT_THROW(makeDecoder(DecoderKind::Windowed, g, cfg),
                 FatalError);
}

} // namespace
} // namespace traq::decoder
