/**
 * @file
 * Batch-decode and predecode identity tests.
 *
 * The two hot-path additions must be invisible to results:
 *
 *  - Decoder::decodeBatch over a CSR SyndromeBatch must equal
 *    per-shot decode() for every registered decoder kind on
 *    simulator-sampled syndromes (bit identity, not statistics).
 *  - The predecode fast path (peeling isolated adjacent defect
 *    pairs) must produce corrections identical to predecode-off for
 *    every kind, on randomized syndromes and through the full
 *    Monte-Carlo engine at 1 and N threads, while actually peeling
 *    (predecodedPairs > 0) so the test exercises the path.
 *
 * Plus unit tests of the Predecoder's peel conditions on a
 * hand-built chain graph and the TRAQ_PREDECODE loudness contract.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/word.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/decoder/predecode.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"

namespace traq::decoder {
namespace {

using codes::CircuitMeta;
using sim::DetectorErrorModel;
using sim::ErrorMechanism;

/** 1D chain DEM: boundary edge on each end, pair edges between
 *  neighbors (same shape as test_decoder_interface). */
DetectorErrorModel
chainDem(int n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n;
    dem.numObservables = 1;
    ErrorMechanism left;
    left.probability = p;
    left.detectors = {0};
    left.observables = 1;
    dem.errors.push_back(left);
    for (int i = 0; i + 1 < n; ++i) {
        ErrorMechanism e;
        e.probability = p;
        e.detectors = {static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(i + 1)};
        dem.errors.push_back(e);
    }
    ErrorMechanism right;
    right.probability = p;
    right.detectors = {static_cast<std::uint32_t>(n - 1)};
    dem.errors.push_back(right);
    return dem;
}

CircuitMeta
chainMeta(int n)
{
    CircuitMeta meta;
    meta.detectorIsX.assign(n, 0);
    meta.observableIsX.assign(1, 0);
    return meta;
}

/** Sample `batches` simulator batches of `exp` and append each
 *  shot's syndrome (and block view data) to a CSR accumulator. */
struct SampledSyndromes
{
    std::vector<std::uint32_t> offsets{0};
    std::vector<std::uint32_t> defects;

    std::uint64_t shots() const { return offsets.size() - 1; }
    SyndromeBatch view() const
    {
        SyndromeBatch b;
        b.offsets = offsets;
        b.defects = defects;
        return b;
    }
    std::vector<std::uint32_t> syndrome(std::uint64_t s) const
    {
        return {defects.begin() + offsets[s],
                defects.begin() + offsets[s + 1]};
    }
};

SampledSyndromes
sampleSyndromes(const codes::Experiment &exp, unsigned lanes,
                int batches, std::uint64_t seed)
{
    sim::FrameSimulator fsim(seed, lanes);
    sim::FrameBatch batch;
    sim::SyndromeBlock block;
    const std::vector<std::uint64_t> live(lanes, ~0ULL);
    SampledSyndromes out;
    for (int b = 0; b < batches; ++b) {
        fsim.sampleInto(exp.circuit, batch);
        sim::extractSyndromeBlock(batch, live, block);
        for (std::uint64_t s = 0; s < block.shots(); ++s) {
            const auto syn = block.syndrome(s);
            out.defects.insert(out.defects.end(), syn.begin(),
                               syn.end());
            out.offsets.push_back(
                static_cast<std::uint32_t>(out.defects.size()));
        }
    }
    return out;
}

TEST(BatchDecode, MatchesPerShotForAllRegisteredKinds)
{
    // decodeBatch must be bit-identical to per-shot decode() for
    // every registered decoder on real sampled syndromes.  The batch
    // decoder is a separate warm instance, so arena-scratch reuse
    // across shots is exactly what this exercises.
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.02));
    const auto graph =
        DecodeGraph::fromDem(sim::buildDem(e.circuit), e.meta);
    const auto syn =
        sampleSyndromes(e, kWideWordLanes, 4, 0xba7c);
    ASSERT_GT(syn.shots(), 0u);

    for (DecoderKind kind : registeredDecoderKinds()) {
        auto batchDec = makeDecoder(kind, graph);
        auto shotDec = makeDecoder(kind, graph);
        std::vector<std::uint32_t> got(syn.shots());
        batchDec->decodeBatch(syn.view(), got);
        for (std::uint64_t s = 0; s < syn.shots(); ++s)
            ASSERT_EQ(got[s], shotDec->decode(syn.syndrome(s)))
                << decoderKindName(kind) << " shot " << s;
    }
}

TEST(Predecode, OnOffCorrectionsIdenticalForAllKinds)
{
    // The peeler's conservative conditions are supposed to make the
    // fast path invisible: for every registered kind, predecode on
    // and off must emit the same correction on every sampled shot —
    // and the on-decoder must actually peel something, or the test
    // proves nothing.
    codes::SurfaceCode sc(3);
    auto mem = codes::buildMemory(sc, 'Z', 3,
                                  codes::NoiseParams::uniform(0.01));
    codes::TransversalCnotSpec spec;
    spec.distance = 3;
    spec.cnotLayers = 2;
    spec.cnotsPerBatch = 1;
    spec.seRoundsPerBatch = 1;
    spec.noise = codes::NoiseParams::uniform(0.01);
    auto cnot = codes::buildTransversalCnot(spec);

    for (const auto *exp : {&mem, &cnot}) {
        const auto graph = DecodeGraph::fromDem(
            sim::buildDem(exp->circuit), exp->meta);
        const auto syn =
            sampleSyndromes(*exp, kWideWordLanes, 6, 0x9e31);
        for (DecoderKind kind : registeredDecoderKinds()) {
            DecoderConfig off;
            off.predecode = 0;
            DecoderConfig on;
            on.predecode = 1;
            auto decOff = makeDecoder(kind, graph, off);
            auto decOn = makeDecoder(kind, graph, on);
            for (std::uint64_t s = 0; s < syn.shots(); ++s) {
                const auto shot = syn.syndrome(s);
                // The bare MWPM kind throws above its defect cap
                // (by design); only the capped kinds see everything.
                if (kind == DecoderKind::Mwpm && shot.size() > 16)
                    continue;
                ASSERT_EQ(decOn->decode(shot), decOff->decode(shot))
                    << decoderKindName(kind) << " shot " << s;
            }
            EXPECT_GT(decOn->predecodedPairs(), 0u)
                << decoderKindName(kind);
            EXPECT_EQ(decOff->predecodedPairs(), 0u);
            decOn->reset();
            EXPECT_EQ(decOn->predecodedPairs(), 0u);
        }
    }
}

TEST(Predecode, EngineResultsIdenticalAndThreadInvariant)
{
    // Through the full engine: predecode is purely a throughput
    // knob, so every tallied quantity must match the off-run, at any
    // thread count, and the batch path must report its peels.
    codes::SurfaceCode sc(3);
    auto e = codes::buildMemory(sc, 'Z', 3,
                                codes::NoiseParams::uniform(0.01));
    McOptions opts;
    opts.shots = 4000;
    opts.seed = 777;
    opts.shardShots = 512;
    opts.predecode = 0;
    opts.threads = 1;
    const auto off = runMonteCarlo(e, opts);
    EXPECT_EQ(off.predecodedPairs, 0u);

    opts.predecode = 1;
    for (unsigned threads : {1u, 4u}) {
        opts.threads = threads;
        const auto on = runMonteCarlo(e, opts);
        EXPECT_EQ(on.anyObservable.hits, off.anyObservable.hits);
        EXPECT_EQ(on.shots, off.shots);
        ASSERT_EQ(on.perObservable.size(),
                  off.perObservable.size());
        for (std::size_t k = 0; k < off.perObservable.size(); ++k)
            EXPECT_EQ(on.perObservable[k].hits,
                      off.perObservable[k].hits);
        EXPECT_DOUBLE_EQ(on.avgDefects, off.avgDefects);
        EXPECT_EQ(on.mwpmFallbacks, off.mwpmFallbacks);
        EXPECT_GT(on.predecodedPairs, 0u);
    }
}

TEST(Predecode, PeelerHonorsIsolationAndBoundaryGuards)
{
    const int n = 9;
    auto dem = chainDem(n, 0.01);
    const auto g = DecodeGraph::fromDem(dem, chainMeta(n));
    Predecoder pre(g, /*radius=*/2);
    std::vector<std::uint32_t> residue;
    std::vector<std::uint32_t> used;

    // Isolated interior pair: peeled, no residue, interior edges
    // carry no observable.
    std::vector<std::uint32_t> pair{3, 4};
    EXPECT_EQ(pre.peel(pair, {}, residue, &used), 0u);
    EXPECT_TRUE(residue.empty());
    EXPECT_EQ(pre.pairsPeeled(), 1u);
    ASSERT_EQ(used.size(), 1u);
    const GraphEdge &e = g.edges()[used[0]];
    EXPECT_TRUE((e.u == 3 && e.v == 4) || (e.u == 4 && e.v == 3));

    // A lone defect is never peeled.
    std::vector<std::uint32_t> lone{5};
    EXPECT_EQ(pre.peel(lone, {}, residue, nullptr), 0u);
    EXPECT_EQ(residue, lone);

    // Non-adjacent defects are left for the matcher.
    std::vector<std::uint32_t> apart{1, 7};
    pre.peel(apart, {}, residue, nullptr);
    EXPECT_EQ(residue, apart);

    // A third defect adjacent to the pair blocks it (no lone
    // partner / crowded ball).
    std::vector<std::uint32_t> triple{3, 4, 5};
    pre.peel(triple, {}, residue, nullptr);
    EXPECT_EQ(residue, triple);

    // ... and so does one at exactly radius 2 from an endpoint.
    std::vector<std::uint32_t> nearby{3, 4, 6};
    pre.peel(nearby, {}, residue, nullptr);
    EXPECT_EQ(residue, nearby);

    // Isolation is judged against the ORIGINAL defect set: two
    // adjacent pairs too close together both stay.
    std::vector<std::uint32_t> pairs{1, 2, 4, 5};
    pre.peel(pairs, {}, residue, nullptr);
    EXPECT_EQ(residue, pairs);

    // Far-apart pairs peel independently in one call.
    pre.reset();
    std::vector<std::uint32_t> two{0, 1, 7, 8};
    pre.peel(two, {}, residue, nullptr);
    EXPECT_TRUE(residue.empty());
    EXPECT_EQ(pre.pairsPeeled(), 2u);

    // Weight overrides are incompatible with peeling by contract.
    const std::vector<double> w(g.edges().size(), 1.0);
    DecodeContext ctx;
    ctx.weights = w;
    EXPECT_THROW(pre.peel(pair, ctx, residue, nullptr), FatalError);

    EXPECT_THROW(Predecoder(g, 0), FatalError);
}

TEST(Predecode, EnvResolutionParsesKnownValuesAndFailsLoudly)
{
    // Explicit values ignore the environment.
    ASSERT_EQ(setenv("TRAQ_PREDECODE", "1", 1), 0);
    EXPECT_FALSE(resolvePredecode(0));
    ASSERT_EQ(setenv("TRAQ_PREDECODE", "0", 1), 0);
    EXPECT_TRUE(resolvePredecode(1));

    // Auto (< 0) reads TRAQ_PREDECODE.
    for (const char *onWord : {"1", "on", "true"}) {
        ASSERT_EQ(setenv("TRAQ_PREDECODE", onWord, 1), 0);
        EXPECT_TRUE(resolvePredecode(-1)) << onWord;
    }
    for (const char *offWord : {"0", "off", "false", ""}) {
        ASSERT_EQ(setenv("TRAQ_PREDECODE", offWord, 1), 0);
        EXPECT_FALSE(resolvePredecode(-1)) << offWord;
    }
    ASSERT_EQ(setenv("TRAQ_PREDECODE", "yes", 1), 0);
    EXPECT_THROW(resolvePredecode(-1), FatalError);
    ASSERT_EQ(unsetenv("TRAQ_PREDECODE"), 0);
    EXPECT_FALSE(resolvePredecode(-1));
}

} // namespace
} // namespace traq::decoder
