#include "src/estimator/simulation.hh"

#include <cmath>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/estimator/sweep.hh"
#include "src/model/fit.hh"

namespace traq::est {
namespace {

std::int64_t
asInt64(double v)
{
    return std::llround(v);
}

/** Round to a positive integer; rejects zero/negative values before
 *  any unsigned cast can wrap them into huge counts. */
std::uint64_t
asPositive(const char *what, double v)
{
    const std::int64_t n = asInt64(v);
    TRAQ_REQUIRE(n > 0, std::string(what) + " must be positive");
    return static_cast<std::uint64_t>(n);
}

class McLogicalErrorEstimator : public Estimator
{
  public:
    explicit McLogicalErrorEstimator(const McSimSpec &base)
        : base_(base)
    {}

    const char *kind() const override { return "mc-logical-error"; }

    void checkParams(const EstimateRequest &req) const override
    {
        (void)specFor(req.params);
    }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        const McSimSpec spec = specFor(req.params);
        return runEstimate(spec, req);
    }

  private:
    /** Spec application + validity checks, shared with checkParams. */
    McSimSpec specFor(const ParamMap &params) const
    {
        McSimSpec spec = base_;
        for (const auto &[key, v] : params) {
            if (key == "distance")
                spec.distance = static_cast<int>(asInt64(v));
            else if (key == "p")
                spec.pPhys = v;
            else if (key == "rounds")
                spec.rounds = static_cast<int>(asInt64(v));
            else if (key == "cnotLayers")
                spec.cnotLayers = static_cast<int>(asInt64(v));
            else if (key == "cnotsPerBatch")
                spec.cnotsPerBatch = static_cast<int>(asInt64(v));
            else if (key == "seRoundsPerBatch")
                spec.seRoundsPerBatch = static_cast<int>(asInt64(v));
            else if (key == "shots")
                spec.shots = asPositive("shots", v);
            else if (key == "seed")
                spec.seed = static_cast<std::uint64_t>(asInt64(v));
            else if (key == "mcThreads")
                spec.threads = static_cast<unsigned>(
                    asPositive("mcThreads", v));
            else if (key == "predecode")
                spec.predecode = static_cast<int>(asInt64(v));
            else if (key == "globalMemo")
                spec.globalMemo = static_cast<int>(asInt64(v));
            else if (key == "compileCache")
                spec.compileCache = static_cast<int>(asInt64(v));
            else if (key == "erasureAware")
                spec.erasureAware = v != 0.0;
            else if (key.rfind("noise.", 0) == 0)
                // Flat noise-stack encoding; setFlat validates the
                // key shape, makeNoiseSource (at engine compile
                // time) the source and parameter names.
                spec.noiseSpec.setFlat(key, v);
            else
                TRAQ_FATAL("unknown mc-logical-error parameter '" +
                           key + "'");
        }
        TRAQ_REQUIRE(spec.distance >= 3 && spec.distance % 2 == 1,
                     "mc-logical-error needs an odd distance >= 3");
        TRAQ_REQUIRE(spec.shots > 0,
                     "mc-logical-error needs shots > 0");
        return spec;
    }

    EstimateResult runEstimate(const McSimSpec &spec,
                               const EstimateRequest &req) const
    {
        const auto noise = codes::NoiseParams::uniform(spec.pPhys);
        const bool isCnot = spec.cnotLayers > 0;
        codes::Experiment exp;
        int seRounds = 0;
        double x = 0.0;
        if (isCnot) {
            codes::TransversalCnotSpec cnot;
            cnot.distance = spec.distance;
            cnot.cnotLayers = spec.cnotLayers;
            cnot.cnotsPerBatch = spec.cnotsPerBatch;
            cnot.seRoundsPerBatch = spec.seRoundsPerBatch;
            cnot.noise = noise;
            exp = codes::buildTransversalCnot(cnot);
            const int blocks =
                (spec.cnotLayers + spec.cnotsPerBatch - 1) /
                spec.cnotsPerBatch;
            seRounds = blocks * spec.seRoundsPerBatch;
            x = static_cast<double>(spec.cnotsPerBatch) /
                spec.seRoundsPerBatch;
        } else {
            const int rounds =
                spec.rounds > 0 ? spec.rounds : spec.distance;
            codes::SurfaceCode sc(spec.distance);
            exp = codes::buildMemory(sc, 'Z', rounds, noise);
            seRounds = rounds;
        }

        decoder::McOptions mc;
        mc.shots = spec.shots;
        mc.seed = spec.seed;
        mc.decoder = spec.decoder;
        mc.correlationBoost = spec.correlationBoost;
        mc.windowRounds = spec.windowRounds;
        mc.commitRounds = spec.commitRounds;
        mc.threads = spec.threads;
        mc.wordBackend = spec.wordBackend;
        mc.predecode = spec.predecode;
        mc.globalMemo = spec.globalMemo;
        mc.compileCache = spec.compileCache;
        mc.noiseSpec = spec.noiseSpec;
        mc.erasureAware = spec.erasureAware;
        const decoder::McResult res = decoder::runMonteCarlo(exp, mc);

        EstimateResult out;
        out.kind = kind();
        out.params = req.params;
        out.metrics = {
            {"pLogical", res.anyObservable.mean},
            {"pLogicalLo", res.anyObservable.lo},
            {"pLogicalHi", res.anyObservable.hi},
            {"hits", static_cast<double>(res.anyObservable.hits)},
            {"shots", static_cast<double>(res.shots)},
            {"seRounds", static_cast<double>(seRounds)},
            {"pPerRound",
             seRounds ? res.anyObservable.mean / seRounds : 0.0},
            {"avgDefects", res.avgDefects},
            {"wordLanes", static_cast<double>(res.wordLanes)},
            {"predecodedPairs",
             static_cast<double>(res.predecodedPairs)},
        };
        if (isCnot) {
            out.metrics["x"] = x;
            out.metrics["pPerCnot"] =
                res.anyObservable.mean / spec.cnotLayers;
        }
        if (!spec.noiseSpec.empty()) {
            out.metrics["heraldedShots"] =
                static_cast<double>(res.heraldedShots);
            out.metrics["heraldRate"] =
                res.shots ? static_cast<double>(res.heraldedShots) /
                                res.shots
                          : 0.0;
        }
        return out;
    }

  private:
    McSimSpec base_;
};

class McAlphaEstimator : public Estimator
{
  public:
    explicit McAlphaEstimator(const McAlphaSpec &base) : base_(base)
    {}

    const char *kind() const override { return "mc-alpha"; }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        const McAlphaSpec spec = specFor(req.params);
        return runEstimate(spec, req);
    }

    void checkParams(const EstimateRequest &req) const override
    {
        (void)specFor(req.params);
    }

  private:
    /** Spec application + validity checks, shared with checkParams. */
    McAlphaSpec specFor(const ParamMap &params) const
    {
        McAlphaSpec spec = base_;
        for (const auto &[key, v] : params) {
            if (key == "p")
                spec.pPhys = v;
            else if (key == "shots")
                spec.shots = asPositive("shots", v);
            else if (key == "seed")
                spec.seed = static_cast<std::uint64_t>(asInt64(v));
            else if (key == "dMin")
                spec.dMin = static_cast<int>(asInt64(v));
            else if (key == "dMax")
                spec.dMax = static_cast<int>(asInt64(v));
            else if (key == "cnotDMax")
                spec.cnotDMax = static_cast<int>(asInt64(v));
            else if (key == "cnotLayers")
                spec.cnotLayers = static_cast<int>(asInt64(v));
            else if (key == "xMax")
                spec.xMax = static_cast<int>(asInt64(v));
            else if (key == "fixLambda")
                spec.fixLambda = v;
            else if (key == "sweepThreads")
                // 0 = auto (TRAQ_THREADS / hardware), so only
                // negatives are rejected here.
                spec.sweepThreads = static_cast<unsigned>(
                    v == 0.0 ? 0 : asPositive("sweepThreads", v));
            else if (key == "mcThreads")
                spec.mcThreads = static_cast<unsigned>(
                    asPositive("mcThreads", v));
            else
                TRAQ_FATAL("unknown mc-alpha parameter '" + key +
                           "'");
        }
        TRAQ_REQUIRE(spec.dMin >= 3 && spec.dMin % 2 == 1 &&
                         spec.dMax >= spec.dMin,
                     "mc-alpha needs odd distances with "
                     "3 <= dMin <= dMax");
        TRAQ_REQUIRE(spec.cnotLayers > 0 && spec.xMax >= 1,
                     "mc-alpha needs cnotLayers > 0 and xMax >= 1");
        return spec;
    }

    EstimateResult runEstimate(const McAlphaSpec &spec,
                               const EstimateRequest &req) const
    {
        const int cnotDMax = std::max(spec.cnotDMax, spec.dMin);

        std::vector<double> distances;
        for (int d = spec.dMin; d <= spec.dMax; d += 2)
            distances.push_back(d);
        std::vector<double> cnotDistances;
        for (int d = spec.dMin; d <= cnotDMax; d += 2)
            cnotDistances.push_back(d);
        std::vector<double> xs;
        // x beyond the total layer count would mislabel the density.
        for (int xi = 1; xi <= spec.xMax && xi <= spec.cnotLayers;
             xi *= 2)
            xs.push_back(xi);

        McSimSpec mcBase;
        mcBase.pPhys = spec.pPhys;
        mcBase.shots = spec.shots;
        mcBase.seed = spec.seed;
        mcBase.threads = spec.mcThreads;
        mcBase.decoder = spec.decoder;
        const std::shared_ptr<const Estimator> mc =
            makeMcLogicalErrorEstimator(mcBase);

        SweepOptions sweepOpts;
        sweepOpts.threads = spec.sweepThreads;

        // Memory anchors: the x -> 0 limit of Eq. (4) pins Lambda.
        SweepRunner memory(mc,
                           EstimateRequest{"mc-logical-error", {}},
                           sweepOpts);
        memory.addAxis("distance", distances);

        // CNOT grid over (distance, x) at fixed total CX layers.
        SweepRunner cnot(
            mc,
            EstimateRequest{
                "mc-logical-error",
                {{"cnotLayers",
                  static_cast<double>(spec.cnotLayers)}}},
            sweepOpts);
        cnot.addAxis("distance", cnotDistances);
        cnot.addAxis("cnotsPerBatch", xs);

        // The grids are independent until the fit, so run their
        // concatenated job lists on one worker pool instead of two
        // barriered sweeps; Lambda is read back from the memory
        // slice afterwards.
        std::vector<EstimateRequest> jobs;
        jobs.reserve(memory.numJobs() + cnot.numJobs());
        for (std::size_t j = 0; j < memory.numJobs(); ++j)
            jobs.push_back(memory.request(j));
        for (std::size_t j = 0; j < cnot.numJobs(); ++j)
            jobs.push_back(cnot.request(j));
        const SweepResult all = runRequests(*mc, jobs, sweepOpts);
        const std::size_t numMem = memory.numJobs();
        const auto memBegin = all.results.begin();
        const std::vector<EstimateResult>
            memResults(memBegin, memBegin + numMem),
            gridResults(memBegin + numMem, all.results.end());

        double lambda = spec.fixLambda;
        if (lambda <= 0.0) {
            // Eq. (2): consecutive odd distances suppress per-round
            // error by Lambda; chain the pairwise estimates via the
            // geometric mean (endpoints ratio ^ 1/pairs).
            const double first =
                memResults.front().metric("pPerRound");
            const double last =
                memResults.back().metric("pPerRound");
            const auto pairs = static_cast<double>(
                distances.size() - 1);
            TRAQ_REQUIRE(pairs >= 1.0,
                         "mc-alpha needs >= 2 distances to "
                         "estimate Lambda");
            lambda = std::pow(
                model::lambdaFromMemoryPair(first, last),
                1.0 / pairs);
        }

        std::vector<model::CnotDataPoint> data;
        std::uint64_t totalShots = 0;
        for (const EstimateResult &r : memResults)
            totalShots += static_cast<std::uint64_t>(
                r.metric("shots"));
        for (const EstimateResult &r : gridResults) {
            totalShots += static_cast<std::uint64_t>(
                r.metric("shots"));
            if (r.metric("hits") == 0.0)
                continue; // log-fit cannot use zero-failure points
            model::CnotDataPoint pt;
            pt.d = static_cast<int>(r.params.at("distance"));
            pt.x = r.metric("x");
            pt.pL = r.metric("pPerCnot");
            data.push_back(pt);
        }
        TRAQ_REQUIRE(data.size() >= 3,
                     "mc-alpha: too few grid points with observed "
                     "failures; raise shots or p");

        model::CnotFitOptions fitOpts;
        fitOpts.fixLambda = lambda;
        const model::CnotFit fit =
            model::fitCnotAnsatz(data, fitOpts);

        EstimateResult out;
        out.kind = kind();
        out.params = req.params;
        out.feasible = fit.alpha > 0.0 && fit.prefactorC > 0.0;
        out.metrics = {
            {"alpha", fit.alpha},
            {"prefactorC", fit.prefactorC},
            {"lambda", fit.lambda},
            {"rmsLogResidual", fit.rmsLogResidual},
            {"dataPoints", static_cast<double>(data.size())},
            {"totalShots", static_cast<double>(totalShots)},
        };
        return out;
    }

  private:
    McAlphaSpec base_;
};

} // namespace

std::unique_ptr<Estimator>
makeMcLogicalErrorEstimator(const McSimSpec &base)
{
    return std::make_unique<McLogicalErrorEstimator>(base);
}

std::unique_ptr<Estimator>
makeMcAlphaEstimator(const McAlphaSpec &base)
{
    return std::make_unique<McAlphaEstimator>(base);
}

} // namespace traq::est
