/**
 * @file
 * Simulation-backed estimators: the bridge from the Monte-Carlo
 * engine (decoder/monte_carlo.hh) into the unified Estimator
 * registry, so circuit-level simulation runs as declarative
 * SweepRunner grids next to the closed-form resource estimators.
 *
 * Two kinds are registered:
 *
 *  - "mc-logical-error": one Monte-Carlo run.  Builds a surface-code
 *    memory experiment (cnotLayers == 0) or a two-patch transversal
 *    CNOT experiment, samples it with the wide-bit-plane frame
 *    sampler, decodes with exact matching (union-find fallback), and
 *    reports logical failure proportions with Wilson intervals.
 *
 *  - "mc-alpha": the Fig. 6(a) alpha extraction as one estimate.
 *    Runs two SweepRunner grids of "mc-logical-error" jobs — memory
 *    anchors over distance (the x -> 0 limit that pins Lambda via
 *    Eq. (2)) and transversal-CNOT points over (distance, x) — then
 *    fits the Eq. (4) ansatz with model::fitCnotAnsatz.  This
 *    replaces the embedded Ref. [17] reference dataset with fully
 *    in-repo Monte-Carlo data; the fitted alpha reflects *our*
 *    matching decoder, the same decoding-factor sensitivity the
 *    paper explores.
 *
 * Both estimators are deterministic: a fixed request yields
 * bit-identical results for any thread count (the engine's sharded
 * RNG-stream discipline) — which is what makes them usable in
 * memoized sweeps and regression tests.
 */

#ifndef TRAQ_ESTIMATOR_SIMULATION_HH
#define TRAQ_ESTIMATOR_SIMULATION_HH

#include <cstdint>
#include <memory>

#include "src/common/word.hh"
#include "src/decoder/decoder.hh"
#include "src/estimator/estimator.hh"
#include "src/noise/noise.hh"

namespace traq::est {

/** Base specification of one "mc-logical-error" run. */
struct McSimSpec
{
    int distance = 3;
    double pPhys = 3e-3;      //!< uniform circuit noise rate
    int rounds = 0;           //!< memory SE rounds; 0 -> distance
    int cnotLayers = 0;       //!< 0 -> memory experiment
    int cnotsPerBatch = 1;    //!< CX layers per SE block
    int seRoundsPerBatch = 1; //!< SE rounds per SE block
    std::uint64_t shots = 4096;
    std::uint64_t seed = 0xa1fa;
    /** Engine worker threads per estimate.  Default 1: an outer
     *  SweepRunner already parallelizes over grid jobs. */
    unsigned threads = 1;
    /** Decoder kind per worker (TRAQ_DECODER env overrides). */
    decoder::DecoderKind decoder = decoder::DecoderKind::Fallback;
    /** Partner-edge posterior ceiling (correlated decoder). */
    double correlationBoost = 0.5;
    /** Window/commit depths in rounds (windowed decoder). */
    int windowRounds = 6;
    int commitRounds = 2;
    WordBackend wordBackend = WordBackend::Auto;
    /** Predecode tri-state (McOptions::predecode): negative defers
     *  to TRAQ_PREDECODE, 0 off, positive on. */
    int predecode = -1;
    /** Process-global decode memo tri-state (caching tier 1,
     *  McOptions::globalMemo): negative defers to TRAQ_GLOBAL_MEMO
     *  (default ON), 0 off, positive on.  Request parameter
     *  "globalMemo".  Bit-identical either way. */
    int globalMemo = -1;
    /** Compiled-artifact cache tri-state (caching tier 2,
     *  McOptions::compileCache): negative defers to
     *  TRAQ_COMPILE_CACHE (default ON), 0 off, positive on.
     *  Request parameter "compileCache".  Bit-identical either
     *  way; sweep grids sharing a circuit compile it once. */
    int compileCache = -1;
    /**
     * Extra noise-source stack (src/noise) compiled over the
     * experiment circuit.  Request parameters named
     * "noise.<source>.<param>" populate this spec, so a noise stack
     * sweeps and serializes like any other scalar axis.
     */
    noise::NoiseSpec noiseSpec{};
    /** Herald-driven edge reweighting (McOptions::erasureAware);
     *  request parameter "erasureAware" (0 / 1). */
    bool erasureAware = true;
};

/**
 * Base specification of one "mc-alpha" extraction.
 *
 * Lambda comes from the memory anchors over dMin..dMax (Eq. (2)),
 * alpha from the transversal-CNOT grid over dMin..cnotDMax and the
 * x grid.  With the default plain matcher, cross-distance CNOT data
 * is left opt-in via cnotDMax (joint-patch matching alone does not
 * reproduce the paper's MLE cross-d suppression); with
 * decoder = DecoderKind::Correlated the suppression is restored and
 * the full (d, x) Fig. 6 grid fits in one request — see
 * bench_fig6_error_model.
 */
struct McAlphaSpec
{
    double pPhys = 3e-3;
    std::uint64_t shots = 20000; //!< shots per grid point
    std::uint64_t seed = 0xa1fa;
    int dMin = 3;        //!< smallest distance (odd)
    int dMax = 5;        //!< largest memory-anchor distance (odd)
    int cnotDMax = 3;    //!< largest CNOT-grid distance (odd)
    int cnotLayers = 8;  //!< total CX layers per CNOT circuit
    /** x grid: 1, 2, 4, ... <= min(xMax, cnotLayers).  The default
     *  stops at 4: at x == cnotLayers the circuit is a single SE
     *  block whose warmup/readout boundary noise is no longer
     *  amortized, which visibly bends the per-CNOT error away from
     *  the Eq. (4) ansatz. */
    int xMax = 4;
    /** If > 0, hold Lambda fixed in the fit; otherwise Lambda is
     *  estimated from the memory anchors (Eq. (2)). */
    double fixLambda = 0.0;
    unsigned sweepThreads = 0; //!< inner grid workers (0 = auto)
    unsigned mcThreads = 1;    //!< engine threads per grid point
    /** Decoder kind for every grid point (memory and CNOT). */
    decoder::DecoderKind decoder = decoder::DecoderKind::Fallback;
};

/** "mc-logical-error" estimator over a custom base spec. */
std::unique_ptr<Estimator>
makeMcLogicalErrorEstimator(const McSimSpec &base = {});

/** "mc-alpha" estimator over a custom base spec. */
std::unique_ptr<Estimator>
makeMcAlphaEstimator(const McAlphaSpec &base = {});

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_SIMULATION_HH
