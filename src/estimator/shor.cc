#include "src/estimator/shor.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/arch/se_schedule.hh"
#include "src/common/assert.hh"
#include "src/common/math.hh"
#include "src/estimator/calibration.hh"

namespace traq::est {

FactoringReport
estimateFactoring(const FactoringSpec &spec)
{
    TRAQ_REQUIRE(spec.nBits >= 16, "modulus too small");
    TRAQ_REQUIRE(spec.wExp >= 1 && spec.wMul >= 1,
                 "window sizes must be positive");
    FactoringReport r;

    // --- Algorithm counts (Ekerå–Håstad + windowed arithmetic) ---
    r.exponentBits = std::ceil(1.5 * spec.nBits);
    double lookupsPerExponentWindow =
        std::ceil(static_cast<double>(spec.nBits) / spec.wMul);
    // Two multiply-add passes (compute + uncompute) per window.
    r.lookupAdditions =
        2.0 * std::ceil(r.exponentBits / spec.wExp) *
        lookupsPerExponentWindow;

    const int segments = static_cast<int>(
        traq::ceilDiv(spec.nBits, spec.rsep));

    // --- Runway padding from the oblivious-runway budget ---
    if (spec.rpad > 0) {
        r.rpad = spec.rpad;
    } else {
        double uses = segments * r.lookupAdditions;
        r.rpad = static_cast<int>(
            std::ceil(std::log2(uses / spec.runwayErrorBudget)));
    }
    const int bitsWithRunways = spec.nBits + segments * r.rpad;

    // --- CCZ count and per-CCZ budget ---
    const int m = spec.wExp + spec.wMul;
    double cczPerLookup = std::pow(2.0, m) - m - 1;
    double unlookupCcz = std::pow(2.0, m / 2.0);
    r.cczTotal = r.lookupAdditions *
                 (bitsWithRunways + cczPerLookup + unlookupCcz);
    r.targetCczError = spec.cczErrorBudget / r.cczTotal;

    // --- Factory design (solves its own distance) ---
    gadgets::FactorySpec fspec;
    fspec.targetCczError = r.targetCczError;
    fspec.atom = spec.atom;
    fspec.errorModel = spec.errorModel;
    fspec.cultivation = spec.cultivation;
    r.factory = gadgets::designFactory(fspec);

    // --- Compute distance: satisfy the Clifford + idle budget ---
    const double storedLogical =
        3.0 * spec.nBits + segments * r.rpad + 64.0;

    auto gadgetReports = [&](int d) {
        gadgets::AdderSpec as;
        as.nBits = spec.nBits;
        as.rsep = spec.rsep;
        as.rpad = r.rpad;
        as.distance = d;
        as.atom = spec.atom;
        as.errorModel = spec.errorModel;
        as.kappaAdd = kKappaAdd;

        gadgets::LookupSpec ls;
        ls.addressBits = m;
        ls.targetBits = bitsWithRunways;
        ls.distance = d;
        ls.atom = spec.atom;
        ls.errorModel = spec.errorModel;
        ls.kappaLookup = kKappaLookup;
        return std::make_pair(gadgets::designAdder(as),
                              gadgets::designLookup(ls));
    };

    auto idlePeriodFor = [&](int d) {
        if (spec.idlePeriod > 0)
            return spec.idlePeriod;
        return arch::optimalIdlePeriod(d, spec.atom,
                                       spec.errorModel);
    };

    auto idleErrorFor = [&](int d, double seconds, double tau) {
        double perRound =
            spec.errorModel.prefactorC *
            std::pow((arch::kSeRoundErrorWeight *
                          spec.errorModel.pPhys +
                      arch::idleError(tau, spec.atom)) /
                         (arch::kSeRoundErrorWeight *
                          spec.errorModel.pThres),
                     (d + 1) / 2.0);
        return storedLogical * (seconds / tau) * perRound;
    };

    auto totalBudgetError = [&](int d) {
        auto [ar, lr] = gadgetReports(d);
        double seconds = r.lookupAdditions *
                         (ar.timePerAddition + lr.timePerLookup);
        double tau = idlePeriodFor(d);
        return r.lookupAdditions * (ar.logicalErrorPerAddition +
                                    lr.logicalErrorPerLookup) +
               idleErrorFor(d, seconds, tau);
    };

    if (spec.distance > 0) {
        r.distance = spec.distance;
    } else {
        int d = 3;
        while (d < 99 &&
               totalBudgetError(d) > spec.logicalErrorBudget)
            d += 2;
        // A single uniform distance: storage and compute share the
        // factory's distance if larger (Table II uses one d).
        r.distance = std::max(d, r.factory.distance);
    }
    const int d = r.distance;
    r.idlePeriodUsed = idlePeriodFor(d);

    // --- Gadget designs at the resolved distance ---
    gadgets::AdderSpec as;
    as.nBits = spec.nBits;
    as.rsep = spec.rsep;
    as.rpad = r.rpad;
    as.distance = d;
    as.atom = spec.atom;
    as.errorModel = spec.errorModel;
    as.kappaAdd = kKappaAdd;
    r.adder = gadgets::designAdder(as);

    gadgets::LookupSpec ls;
    ls.addressBits = m;
    ls.targetBits = bitsWithRunways;
    ls.distance = d;
    ls.ghzSpacing = 2;
    ls.pipelineCopies = 1;
    ls.atom = spec.atom;
    ls.errorModel = spec.errorModel;
    ls.kappaLookup = kKappaLookup;
    r.lookup = gadgets::designLookup(ls);

    r.timePerLookup = r.lookup.timePerLookup;
    r.timePerAddition = r.adder.timePerAddition;
    r.totalSeconds =
        r.lookupAdditions * (r.timePerLookup + r.timePerAddition);
    r.days = r.totalSeconds / 86400.0;

    // --- Factory count: hide latency behind peak CCZ demand ---
    double demand = std::max(r.adder.cczRate, r.lookup.cczRate);
    if (spec.factories > 0) {
        r.factories = spec.factories;
    } else {
        r.factories = static_cast<int>(std::ceil(
            demand / r.factory.throughput * kFactoryMargin));
    }

    // --- Space breakdown ---
    r.storageQubits = storedLogical * d * d * kStorageOverhead;
    r.adderQubits = r.adder.activePhysicalQubits;
    r.lookupQubits = r.lookup.activePhysicalQubits;
    r.factoryQubits = r.factories * r.factory.qubits;
    double subtotal = r.storageQubits + r.adderQubits +
                      r.lookupQubits + r.factoryQubits;
    r.routingQubits = subtotal * kRoutingOverhead;
    r.physicalQubits = subtotal + r.routingQubits;

    // --- Error accounting ---
    r.algorithmLogicalError =
        r.lookupAdditions * (r.adder.logicalErrorPerAddition +
                             r.lookup.logicalErrorPerLookup);
    r.idleError = idleErrorFor(d, r.totalSeconds, r.idlePeriodUsed);
    r.runwayError = segments * r.lookupAdditions *
                    std::pow(2.0, -r.rpad);
    r.cczError = r.cczTotal * r.factory.cczError;

    r.spacetimeVolume = r.physicalQubits * r.totalSeconds;
    r.feasible =
        r.algorithmLogicalError + r.idleError <=
            spec.logicalErrorBudget &&
        r.runwayError <= spec.runwayErrorBudget * 10 &&
        r.cczError <= spec.cczErrorBudget * 1.2 &&
        r.factory.cultivationFits;

    // --- Fig. 12 phase ledgers ---
    double lookupPhaseTime = r.lookupAdditions * r.timePerLookup;
    double addPhaseTime = r.lookupAdditions * r.timePerAddition;
    double lookupErr =
        r.lookupAdditions * r.lookup.logicalErrorPerLookup;
    double addErr =
        r.lookupAdditions * r.adder.logicalErrorPerAddition;
    double cczErrLookupShare =
        r.cczError * (cczPerLookup + unlookupCcz) /
        (bitsWithRunways + cczPerLookup + unlookupCcz);
    double cczErrAddShare = r.cczError - cczErrLookupShare;
    double idleLookupShare =
        r.idleError * lookupPhaseTime / r.totalSeconds;
    double idleAddShare = r.idleError - idleLookupShare;

    r.lookupPhase.add("cnot-fanout", r.lookupQubits,
                      lookupPhaseTime, lookupErr);
    r.lookupPhase.add("factories", r.factoryQubits,
                      lookupPhaseTime, cczErrLookupShare);
    r.lookupPhase.add("storage", r.storageQubits, lookupPhaseTime,
                      idleLookupShare);
    r.lookupPhase.add("routing", r.routingQubits, lookupPhaseTime,
                      0.0);

    r.additionPhase.add("adder", r.adderQubits, addPhaseTime,
                        addErr);
    r.additionPhase.add("factories", r.factoryQubits, addPhaseTime,
                        cczErrAddShare);
    r.additionPhase.add("storage", r.storageQubits, addPhaseTime,
                        idleAddShare);
    r.additionPhase.add("routing", r.routingQubits, addPhaseTime,
                        0.0);
    return r;
}

} // namespace traq::est
