#include "src/estimator/qldpc.hh"

#include "src/arch/qec_cycle.hh"
#include "src/common/assert.hh"

namespace traq::est {

QldpcStorageReport
applyQldpcStorage(const FactoringReport &base,
                  const FactoringSpec &spec,
                  const QldpcStorageSpec &storage)
{
    TRAQ_REQUIRE(storage.compressionFactor >= 1.0,
                 "compression factor must be >= 1");
    TRAQ_REQUIRE(storage.eligibleFraction >= 0.0 &&
                     storage.eligibleFraction <= 1.0,
                 "eligible fraction must be in [0, 1]");
    QldpcStorageReport r;
    r.surfaceStorageQubits = base.storageQubits;

    double eligible = base.storageQubits * storage.eligibleFraction;
    double ineligible = base.storageQubits - eligible;
    r.denseStorageQubits = eligible / storage.compressionFactor;
    r.residualSurfaceQubits = ineligible;

    double newStorage = r.denseStorageQubits +
                        r.residualSurfaceQubits;
    r.physicalQubits =
        base.physicalQubits - base.storageQubits + newStorage;
    r.footprintReduction =
        1.0 - r.physicalQubits / base.physicalQubits;

    // Storage access pays longer moves (Sec. IV.3.4: "the increase
    // in QEC cycle time due to longer-distance moves for qLDPC
    // codes"); the compute clock is unchanged because active
    // registers stay in surface codes.
    r.computeCycleTime =
        arch::qecCycle(base.distance, spec.atom).total;
    r.accessCycleTime =
        arch::qecCycle(base.distance, spec.atom,
                       storage.accessMovePatches * base.distance)
            .total;

    r.spacetimeVolume = r.physicalQubits * base.totalSeconds;
    return r;
}

} // namespace traq::est
