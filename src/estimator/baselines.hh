/**
 * @file
 * Lattice-surgery baselines for the Fig. 2 comparison.
 *
 * Gidney–Ekerå (the paper's Ref. [8]) is reimplemented from its cost
 * structure: the same windowed-arithmetic lookup-addition counts, but
 * each ripple step pays a full lattice-surgery logical cycle of
 * d * t_cycle (the O(d) the transversal architecture removes) rather
 * than a reaction time.  The model is anchored to their headline
 * (2048-bit RSA: ~8 h, 20 M qubits at 1 us cycles, 10 us reaction)
 * and then rescaled to 900 us QEC cycles exactly as the paper does.
 *
 * Beverland et al. (Ref. [9]) enters as a documented anchor point
 * (they assume 100 us operations and report multi-year runtimes at
 * neutral-atom timescales).
 */

#ifndef TRAQ_ESTIMATOR_BASELINES_HH
#define TRAQ_ESTIMATOR_BASELINES_HH

#include <string>
#include <vector>

namespace traq::est {

/** One point in the Fig. 2 qubits-vs-runtime plane. */
struct BaselinePoint
{
    std::string label;
    double physicalQubits = 0.0;
    double seconds = 0.0;
    double spacetimeVolume = 0.0;   //!< qubit-seconds
};

/** Inputs of the Gidney–Ekerå lattice-surgery model. */
struct GidneyEkeraSpec
{
    int nBits = 2048;
    int wExp = 5;             //!< their window choices (Table II)
    int wMul = 5;
    int rsep = 1024;          //!< their runway separation
    int rpad = 43;
    int distance = 27;
    double tCycle = 1e-6;     //!< QEC cycle time [s]
    double tReaction = 10e-6; //!< reaction time [s]
};

/** Evaluate the Gidney–Ekerå cost model. */
BaselinePoint gidneyEkera(const GidneyEkeraSpec &spec);

/** The Ref. [9]-style anchor at neutral-atom timescales. */
BaselinePoint beverlandAnchor();

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_BASELINES_HH
