#include "src/estimator/optimizer.hh"

#include <limits>

namespace traq::est {

OptimizerResult
optimizeFactoring(const FactoringSpec &base,
                  const OptimizerOptions &opts)
{
    OptimizerResult res;
    double bestVolume = std::numeric_limits<double>::infinity();

    for (int we : opts.wExpCandidates) {
        for (int wm : opts.wMulCandidates) {
            for (int rsep : opts.rsepCandidates) {
                FactoringSpec s = base;
                s.wExp = we;
                s.wMul = wm;
                s.rsep = rsep;
                s.rpad = -1;
                s.distance = base.distance;
                s.factories = -1;
                FactoringReport rep = estimateFactoring(s);
                ++res.evaluated;
                if (!rep.feasible)
                    continue;
                if (opts.maxQubits > 0 &&
                    rep.physicalQubits > opts.maxQubits)
                    continue;
                if (opts.maxSeconds > 0 &&
                    rep.totalSeconds > opts.maxSeconds)
                    continue;
                if (rep.spacetimeVolume < bestVolume) {
                    bestVolume = rep.spacetimeVolume;
                    res.bestSpec = s;
                    res.bestReport = rep;
                    res.found = true;
                }
            }
        }
    }
    return res;
}

} // namespace traq::est
