#include "src/estimator/optimizer.hh"

#include <limits>
#include <memory>

#include "src/estimator/sweep.hh"

namespace traq::est {

const OptimizerPoint *
OptimizerResult::bestUnder(double maxQubits, double maxSeconds) const
{
    const OptimizerPoint *best = nullptr;
    double bestVolume = std::numeric_limits<double>::infinity();
    for (const OptimizerPoint &p : feasiblePoints) {
        if (maxQubits > 0 && p.physicalQubits > maxQubits)
            continue;
        if (maxSeconds > 0 && p.totalSeconds > maxSeconds)
            continue;
        if (p.spacetimeVolume < bestVolume) {
            bestVolume = p.spacetimeVolume;
            best = &p;
        }
    }
    return best;
}

OptimizerResult
optimizeFactoring(const FactoringSpec &base,
                  const OptimizerOptions &opts)
{
    // The search resolves runway padding and factory count per
    // candidate; distance honors any forcing on the base spec.
    FactoringSpec searchBase = base;
    searchBase.rpad = -1;
    searchBase.factories = -1;

    auto axisValues = [](const std::vector<int> &candidates) {
        return std::vector<double>(candidates.begin(),
                                   candidates.end());
    };

    SweepOptions sweepOpts;
    sweepOpts.threads = opts.threads;
    SweepRunner sweep(
        std::shared_ptr<const Estimator>(
            makeFactoringEstimator(searchBase)),
        EstimateRequest{"factoring", {}}, sweepOpts);
    sweep.addAxis("wExp", axisValues(opts.wExpCandidates))
        .addAxis("wMul", axisValues(opts.wMulCandidates))
        .addAxis("rsep", axisValues(opts.rsepCandidates));
    const SweepResult grid = sweep.run();

    OptimizerResult res;
    res.evaluated = grid.results.size();
    for (const EstimateResult &r : grid.results) {
        if (!r.feasible)
            continue;
        OptimizerPoint p;
        p.spec = searchBase;
        p.spec.wExp = static_cast<int>(r.params.at("wExp"));
        p.spec.wMul = static_cast<int>(r.params.at("wMul"));
        p.spec.rsep = static_cast<int>(r.params.at("rsep"));
        p.physicalQubits = r.metric("physicalQubits");
        p.totalSeconds = r.metric("totalSeconds");
        p.spacetimeVolume = r.metric("spacetimeVolume");
        p.distance = static_cast<int>(r.metric("distance"));
        p.factories = static_cast<int>(r.metric("factories"));
        res.feasiblePoints.push_back(std::move(p));
    }

    if (const OptimizerPoint *best =
            res.bestUnder(opts.maxQubits, opts.maxSeconds)) {
        res.found = true;
        res.bestSpec = best->spec;
        res.bestReport = estimateFactoring(best->spec);
    }
    return res;
}

} // namespace traq::est
