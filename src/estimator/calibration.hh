/**
 * @file
 * Calibration constants of the resource estimator.
 *
 * Every constant in this file is a *calibration* — a number chosen to
 * reproduce an operating point the paper quotes, rather than a number
 * printed in the paper itself.  Everything else in the estimator
 * traces directly to paper equations or Table I/II values.
 *
 *  - kKappaAdd: reaction-time multiplier per adder Toffoli step
 *    (CCZ teleport + auto-corrected CZ, Fig. 9(b)).  Calibrated so a
 *    rsep = 96 addition takes the paper's 0.28 s at t_r = 1 ms:
 *    2 * (96 + 43) * kappa * 1 ms = 0.28 s.
 *  - kKappaLookup: multiplier per unary-iteration step; calibrated
 *    so a 2^7-entry lookup takes the paper's 0.17 s at t_r = 1 ms.
 *  - kStorageOverhead: physical qubits per stored logical qubit in
 *    dense idle storage, relative to d^2 data qubits (shared SE
 *    ancillas amortized across the 8 ms idle cadence).
 *  - kFactoriesPerSegment: factories needed to hide the CCZ factory
 *    latency behind one segment's reaction-limited consumption.
 */

#ifndef TRAQ_ESTIMATOR_CALIBRATION_HH
#define TRAQ_ESTIMATOR_CALIBRATION_HH

namespace traq::est {

/** Adder Toffoli-step reaction multiplier (see file comment). */
constexpr double kKappaAdd = 1.0;

/** Lookup unary-iteration step reaction multiplier. */
constexpr double kKappaLookup = 1.31;

/** Physical-per-logical factor for dense idle storage (x d^2). */
constexpr double kStorageOverhead = 1.3;

/** Safety margin on factory count above the peak CCZ demand. */
constexpr double kFactoryMargin = 1.15;

/** Extra control/routing space fraction on top of all components. */
constexpr double kRoutingOverhead = 0.05;

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_CALIBRATION_HH
