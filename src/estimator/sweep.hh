/**
 * @file
 * Declarative, parallel parameter sweeps over the unified Estimator
 * API — the engine behind every figure reproduction that scans an
 * axis (Fig. 2 comparison, Fig. 11–14 sensitivity sweeps, Table II
 * optimization, qLDPC storage).
 *
 * A sweep is a base request plus SweepAxis grids; the runner expands
 * the axes into a cartesian job list (row-major: the first axis
 * varies slowest), executes the jobs on a worker pool using the same
 * shard/merge discipline as MonteCarloEngine — job index, not worker
 * identity, determines where a result lands — and memoizes repeated
 * requests so duplicated grid points and repeated reference solves
 * are evaluated once.  Because every estimator is a deterministic
 * pure function, the result vector is bit-identical for any thread
 * count.
 *
 * Results serialize uniformly: common::Table for terminal output,
 * CSV for spreadsheets, JSON for downstream tooling.
 */

#ifndef TRAQ_ESTIMATOR_SWEEP_HH
#define TRAQ_ESTIMATOR_SWEEP_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/common/table.hh"
#include "src/estimator/estimator.hh"

namespace traq::est {

/** One swept parameter: a name and the values it takes. */
struct SweepAxis
{
    std::string param;
    std::vector<double> values;
};

/** Execution options for a sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = TRAQ_THREADS env or hardware. */
    unsigned threads = 0;
    /** Evaluate duplicated requests once (keyed canonically). */
    bool memoize = true;
};

/** Outcome of a sweep: one result per job, in job order. */
struct SweepResult
{
    std::vector<EstimateResult> results;
    std::size_t evaluated = 0; //!< estimator invocations performed
    std::size_t memoHits = 0;  //!< jobs served from the memo cache
    unsigned threadsUsed = 0;

    /**
     * Value of a named column for one result: "kind" and "feasible"
     * are synthetic; otherwise params are consulted before metrics.
     * Missing names render as the empty string.
     */
    std::string cell(std::size_t row,
                     const std::string &column) const;

    /** Render selected columns as an aligned Table. */
    Table toTable(const std::vector<std::string> &columns) const;

    /**
     * CSV with a header row.  An empty column list selects
     * kind, feasible, every parameter and every metric (sorted
     * union across rows).
     */
    std::string toCsv(std::vector<std::string> columns = {}) const;

    /** JSON array of per-job result objects. */
    std::string toJson() const;

  private:
    std::vector<std::string> defaultColumns() const;
};

/**
 * Execute an explicit request list on a worker pool.  The low-level
 * entry point behind SweepRunner::run(); useful directly when jobs
 * are not a cartesian grid (e.g. zipped axes).  All requests are
 * served by the one estimator instance (estimate() is const and
 * thread-safe by contract).
 */
SweepResult runRequests(const Estimator &estimator,
                        const std::vector<EstimateRequest> &requests,
                        const SweepOptions &opts = {});

/** Declarative grid sweep over one estimator. */
class SweepRunner
{
  public:
    /** Sweep base.kind's registered estimator. */
    explicit SweepRunner(EstimateRequest base,
                         SweepOptions opts = {});

    /** Sweep a caller-supplied estimator (custom base specs). */
    SweepRunner(std::shared_ptr<const Estimator> estimator,
                EstimateRequest base, SweepOptions opts = {});

    /** Append an axis; the first axis added varies slowest. */
    SweepRunner &addAxis(std::string param,
                         std::vector<double> values);

    /** Total grid size (product of axis lengths; 1 when no axes). */
    std::size_t numJobs() const;

    /** The deterministic job -> request mapping. */
    EstimateRequest request(std::size_t job) const;

    /** Expand the grid and execute. */
    SweepResult run() const;

  private:
    std::shared_ptr<const Estimator> estimator_;
    EstimateRequest base_;
    SweepOptions opts_;
    std::vector<SweepAxis> axes_;
};

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_SWEEP_HH
