/**
 * @file
 * Algorithm-parameter optimizer (Sec. IV.2, Table II).
 *
 * Sweeps the windowed-arithmetic and runway parameters, resolving
 * code distance, runway padding and factory count per candidate, and
 * returns the feasible configuration minimizing the space-time
 * volume — the paper's objective (Sec. II.2).
 */

#ifndef TRAQ_ESTIMATOR_OPTIMIZER_HH
#define TRAQ_ESTIMATOR_OPTIMIZER_HH

#include <vector>

#include "src/estimator/shor.hh"

namespace traq::est {

/** Search-space definition. */
struct OptimizerOptions
{
    std::vector<int> wExpCandidates = {2, 3, 4, 5, 6};
    std::vector<int> wMulCandidates = {2, 3, 4, 5, 6};
    std::vector<int> rsepCandidates = {48, 64, 96, 128, 192, 256,
                                       384, 512, 1024};
    /** Optional cap on physical qubits (Fig. 14(d)); <= 0: none. */
    double maxQubits = -1.0;
    /** Optional cap on runtime in seconds; <= 0: none. */
    double maxSeconds = -1.0;
};

/** Result of the sweep. */
struct OptimizerResult
{
    FactoringSpec bestSpec;
    FactoringReport bestReport;
    std::size_t evaluated = 0;
    bool found = false;
};

/**
 * Sweep parameters for the given base spec (whose window/runway
 * fields are overridden by the search).
 */
OptimizerResult optimizeFactoring(const FactoringSpec &base,
                                  const OptimizerOptions &opts = {});

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_OPTIMIZER_HH
