/**
 * @file
 * Algorithm-parameter optimizer (Sec. IV.2, Table II).
 *
 * Sweeps the windowed-arithmetic and runway parameters, resolving
 * code distance, runway padding and factory count per candidate, and
 * returns the feasible configuration minimizing the space-time
 * volume — the paper's objective (Sec. II.2).
 *
 * The grid search is a SweepRunner client: candidates evaluate in
 * parallel (deterministically — the result is independent of the
 * thread count) and every feasible point is retained, so one
 * uncapped sweep can answer all the Fig. 14(d) qubit-cap frontier
 * queries via bestUnder() without re-evaluating the grid.
 */

#ifndef TRAQ_ESTIMATOR_OPTIMIZER_HH
#define TRAQ_ESTIMATOR_OPTIMIZER_HH

#include <cstddef>
#include <vector>

#include "src/estimator/shor.hh"

namespace traq::est {

/** Search-space definition. */
struct OptimizerOptions
{
    std::vector<int> wExpCandidates = {2, 3, 4, 5, 6};
    std::vector<int> wMulCandidates = {2, 3, 4, 5, 6};
    std::vector<int> rsepCandidates = {48, 64, 96, 128, 192, 256,
                                       384, 512, 1024};
    /** Optional cap on physical qubits (Fig. 14(d)); <= 0: none. */
    double maxQubits = -1.0;
    /** Optional cap on runtime in seconds; <= 0: none. */
    double maxSeconds = -1.0;
    /** Sweep worker threads; 0 = TRAQ_THREADS env or hardware. */
    unsigned threads = 0;
};

/** One feasible evaluated configuration with its key metrics. */
struct OptimizerPoint
{
    FactoringSpec spec;
    double physicalQubits = 0.0;
    double totalSeconds = 0.0;
    double spacetimeVolume = 0.0;
    int distance = 0;
    int factories = 0;
};

/** Result of the sweep. */
struct OptimizerResult
{
    FactoringSpec bestSpec;
    FactoringReport bestReport;
    /**
     * Every feasible evaluated point, in grid order (wExp outermost,
     * rsep innermost) — independent of the caps, which only select
     * the best.  Feeds the Fig. 14(d) qubit-cap frontier.
     */
    std::vector<OptimizerPoint> feasiblePoints;
    std::size_t evaluated = 0;
    bool found = false;

    /**
     * Minimum-volume feasible point under the given caps (<= 0: no
     * cap), resolving ties toward the earlier grid point exactly as
     * the sweep's own best selection does; nullptr if none qualify.
     */
    const OptimizerPoint *bestUnder(double maxQubits,
                                    double maxSeconds = -1.0) const;
};

/**
 * Sweep parameters for the given base spec (whose window/runway
 * fields are overridden by the search).
 */
OptimizerResult optimizeFactoring(const FactoringSpec &base,
                                  const OptimizerOptions &opts = {});

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_OPTIMIZER_HH
