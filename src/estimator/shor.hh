/**
 * @file
 * End-to-end resource estimation of Ekerå–Håstad factoring on the
 * transversal architecture (Sec. III.2, IV.2).
 *
 * The cost model follows the paper's decomposition (Fig. 5(b)):
 * modular exponentiation -> windowed arithmetic -> table lookups +
 * additions -> CNOT fan-outs and magic states.  Times come from the
 * reaction-limited gadget models; space from the gadget footprints,
 * dense idle storage and the factory farm; errors from Eq. (4) plus
 * the runway approximation and idle-storage contributions.
 */

#ifndef TRAQ_ESTIMATOR_SHOR_HH
#define TRAQ_ESTIMATOR_SHOR_HH

#include "src/arch/tracker.hh"
#include "src/gadgets/adder.hh"
#include "src/gadgets/factory.hh"
#include "src/gadgets/lookup.hh"
#include "src/model/error_model.hh"
#include "src/platform/params.hh"

namespace traq::est {

/** Inputs of a factoring estimate. */
struct FactoringSpec
{
    int nBits = 2048;
    int wExp = 3;              //!< exponent window (Table II)
    int wMul = 4;              //!< multiplication window
    int rsep = 96;             //!< runway separation
    int rpad = -1;             //!< runway padding (-1: solve)
    int distance = -1;         //!< code distance (-1: solve)
    int factories = -1;        //!< factory count (-1: solve)
    double cczErrorBudget = 0.05;      //!< total CCZ failure budget
    double logicalErrorBudget = 0.25;  //!< Clifford/idle budget
    double runwayErrorBudget = 3e-6;   //!< oblivious-runway budget
    /** Storage SE period [s]; <= 0 re-optimizes per distance. */
    double idlePeriod = 8e-3;
    platform::AtomArrayParams atom =
        platform::AtomArrayParams::paperDefaults();
    model::ErrorModelParams errorModel =
        model::ErrorModelParams::paperDefaults();
    model::CultivationModel cultivation;
};

/** Full output of a factoring estimate. */
struct FactoringReport
{
    // Algorithm counts.
    double exponentBits = 0.0;        //!< n_e = 1.5 n (Ekerå–Håstad)
    double lookupAdditions = 0.0;
    double cczTotal = 0.0;
    double targetCczError = 0.0;

    // Resolved parameters.
    int distance = 0;
    int rpad = 0;
    int factories = 0;
    double idlePeriodUsed = 0.0;

    // Gadget designs.
    gadgets::AdderReport adder;
    gadgets::LookupReport lookup;
    gadgets::FactoryReport factory;

    // Timing.
    double timePerLookup = 0.0;
    double timePerAddition = 0.0;
    double totalSeconds = 0.0;
    double days = 0.0;

    // Space breakdown (physical qubits).
    double storageQubits = 0.0;
    double adderQubits = 0.0;
    double lookupQubits = 0.0;
    double factoryQubits = 0.0;
    double routingQubits = 0.0;
    double physicalQubits = 0.0;

    // Error accounting.
    double algorithmLogicalError = 0.0;
    double idleError = 0.0;
    double runwayError = 0.0;
    double cczError = 0.0;

    double spacetimeVolume = 0.0;     //!< qubits x seconds
    bool feasible = false;

    /** Phase breakdowns for Fig. 12. */
    arch::SpaceTimeLedger lookupPhase;
    arch::SpaceTimeLedger additionPhase;
};

/** Run the estimate for a fully- or partially-specified spec. */
FactoringReport estimateFactoring(const FactoringSpec &spec);

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_SHOR_HH
