/**
 * @file
 * Hybrid qLDPC dense-storage analysis (Sec. IV.3.4).
 *
 * The paper considers storing idle registers in a high-rate qLDPC
 * code while keeping computation in surface codes: with a ~10x
 * denser storage encoding and only the 4-6M idling qubits eligible,
 * they expect a ~20% reduction in space footprint at unchanged run
 * time.  This module applies that transformation to a factoring
 * report, accounting for the longer-range moves qLDPC storage needs
 * (which stretch the storage-access QEC cycles but not the compute
 * clock).
 */

#ifndef TRAQ_ESTIMATOR_QLDPC_HH
#define TRAQ_ESTIMATOR_QLDPC_HH

#include "src/estimator/shor.hh"

namespace traq::est {

/** Parameters of the dense storage code. */
struct QldpcStorageSpec
{
    /** Physical-qubit compression vs surface-code storage (~10x). */
    double compressionFactor = 10.0;
    /**
     * Fraction of the storage register eligible for dense packing
     * (actively-streamed words must stay in surface codes).
     */
    double eligibleFraction = 0.85;
    /**
     * Move distance (in patch widths) between the dense storage zone
     * and the compute zone: longer than the local ~1-patch moves.
     */
    double accessMovePatches = 8.0;
};

/** Outcome of the hybrid-storage transformation. */
struct QldpcStorageReport
{
    double surfaceStorageQubits = 0.0;  //!< before
    double denseStorageQubits = 0.0;    //!< after (eligible part)
    double residualSurfaceQubits = 0.0; //!< ineligible part
    double physicalQubits = 0.0;        //!< new total
    double footprintReduction = 0.0;    //!< fractional saving
    double accessCycleTime = 0.0;       //!< storage-access QEC cycle
    double computeCycleTime = 0.0;      //!< unchanged compute cycle
    double spacetimeVolume = 0.0;
};

/** Apply dense qLDPC storage to a factoring estimate. */
QldpcStorageReport
applyQldpcStorage(const FactoringReport &base,
                  const FactoringSpec &spec,
                  const QldpcStorageSpec &storage = {});

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_QLDPC_HH
