#include "src/estimator/chemistry.hh"

#include "src/gadgets/factory.hh"

#include <cmath>

#include "src/common/assert.hh"
#include "src/estimator/calibration.hh"

namespace traq::est {

ChemistryReport
estimateChemistry(const ChemistrySpec &spec)
{
    TRAQ_REQUIRE(spec.spinOrbitals >= 2, "need at least 2 orbitals");
    TRAQ_REQUIRE(spec.energyError > 0 && spec.lambdaHam > 0,
                 "bad accuracy/lambda");
    ChemistryReport r;

    r.iterations = std::ceil(M_PI * spec.lambdaHam /
                             (2.0 * spec.energyError));

    // Lookup over the THC auxiliary index pairs.
    r.lookupAddressBits = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(spec.thcRank))));

    // Distance: per-iteration error must keep the total phase
    // estimation coherent; budget 10% spread over all iterations.
    double perIterBudget = 0.1 / r.iterations;
    int d = spec.distance > 0
                ? spec.distance
                : model::requiredDistanceCnot(
                      perIterBudget /
                          (4.0 * spec.spinOrbitals),
                      1.0, spec.errorModel);
    r.distance = d;

    gadgets::LookupSpec ls;
    ls.addressBits = r.lookupAddressBits;
    ls.targetBits = 4 * spec.spinOrbitals;
    ls.distance = d;
    ls.atom = spec.atom;
    ls.errorModel = spec.errorModel;
    ls.kappaLookup = kKappaLookup;
    auto lookup = gadgets::designLookup(ls);

    gadgets::AdderSpec as;
    as.nBits = spec.rotationBits;
    as.rsep = spec.rotationBits;   // single segment
    as.rpad = 0;
    as.distance = d;
    as.atom = spec.atom;
    as.errorModel = spec.errorModel;
    as.kappaAdd = kKappaAdd;
    auto adder = gadgets::designAdder(as);

    // PREPARE + PREPARE^dagger: 2 lookups; SELECT: 1 lookup + 2
    // phase-gradient additions (paper: 30% lookup / 70% rotations).
    r.cczPerIteration = 3.0 * (lookup.cczPerLookup +
                               lookup.unlookupCcz) +
                        2.0 * adder.cczPerAddition;
    r.cczTotal = r.cczPerIteration * r.iterations;
    r.timePerIteration = 3.0 * lookup.timePerLookup +
                         2.0 * adder.timePerAddition;
    r.totalSeconds = r.timePerIteration * r.iterations;
    r.days = r.totalSeconds / 86400.0;

    // Space: system + THC registers (~6N logical) + lookup fan-out +
    // a small factory farm sized to the CCZ rate.
    double storedLogical = 6.0 * spec.spinOrbitals + spec.thcRank /
                                                         8.0;
    double storage = storedLogical * d * d * kStorageOverhead;
    double active = lookup.activePhysicalQubits +
                    adder.activePhysicalQubits;
    gadgets::FactorySpec fs;
    fs.targetCczError = 0.05 / r.cczTotal;
    fs.atom = spec.atom;
    fs.errorModel = spec.errorModel;
    auto factory = gadgets::designFactory(fs);
    double demand = (r.cczPerIteration / r.timePerIteration);
    double farms = std::ceil(demand / factory.throughput *
                             kFactoryMargin);
    double factoryQubits = farms * factory.qubits;
    r.physicalQubits = (storage + active + factoryQubits) *
                       (1.0 + kRoutingOverhead);
    r.spacetimeVolume = r.physicalQubits * r.totalSeconds;

    // Lattice-surgery comparison: every reaction-limited step pays a
    // d * t_cycle logical cycle instead (900 us QEC cycles).
    double stepRatio =
        (d * 900e-6) / spec.atom.reactionTime();
    r.latticeSurgerySeconds = r.totalSeconds * stepRatio;
    r.speedup = stepRatio;
    return r;
}

} // namespace traq::est
