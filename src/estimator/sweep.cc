#include "src/estimator/sweep.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

#include "src/common/assert.hh"
#include "src/common/serialize.hh"
#include "src/common/threads.hh"

namespace traq::est {

std::string
SweepResult::cell(std::size_t row, const std::string &column) const
{
    TRAQ_REQUIRE(row < results.size(), "sweep row out of range");
    const EstimateResult &r = results[row];
    if (column == "kind")
        return r.kind;
    if (column == "feasible")
        return r.feasible ? "true" : "false";
    if (auto it = r.params.find(column); it != r.params.end())
        return fmtRoundTrip(it->second);
    if (auto it = r.metrics.find(column); it != r.metrics.end())
        return fmtRoundTrip(it->second);
    return "";
}

std::vector<std::string>
SweepResult::defaultColumns() const
{
    std::set<std::string> params, metrics;
    for (const EstimateResult &r : results) {
        for (const auto &[name, v] : r.params)
            params.insert(name);
        for (const auto &[name, v] : r.metrics)
            metrics.insert(name);
    }
    std::vector<std::string> columns{"kind", "feasible"};
    columns.insert(columns.end(), params.begin(), params.end());
    columns.insert(columns.end(), metrics.begin(), metrics.end());
    return columns;
}

Table
SweepResult::toTable(const std::vector<std::string> &columns) const
{
    Table t(columns);
    for (std::size_t row = 0; row < results.size(); ++row) {
        std::vector<std::string> cells;
        cells.reserve(columns.size());
        for (const std::string &c : columns)
            cells.push_back(cell(row, c));
        t.addRow(std::move(cells));
    }
    return t;
}

std::string
SweepResult::toCsv(std::vector<std::string> columns) const
{
    if (columns.empty())
        columns = defaultColumns();
    std::string out;
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            out += ',';
        out += csvField(columns[c]);
    }
    out += '\n';
    for (std::size_t row = 0; row < results.size(); ++row) {
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c)
                out += ',';
            out += csvField(cell(row, columns[c]));
        }
        out += '\n';
    }
    return out;
}

std::string
SweepResult::toJson() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            out += ",";
        out += est::toJson(results[i]);
    }
    out += "]";
    return out;
}

SweepResult
runRequests(const Estimator &estimator,
            const std::vector<EstimateRequest> &requests,
            const SweepOptions &opts)
{
    SweepResult res;
    res.results.resize(requests.size());
    if (requests.empty()) {
        res.threadsUsed = 0;
        return res;
    }

    // Deduplicate up front: `owner[i]` is the first job with job i's
    // canonical request; only owners are evaluated.  Resolving the
    // memoization serially keeps the worker loop lock-free and the
    // hit counts deterministic for any thread count.
    std::vector<std::size_t> owner(requests.size());
    std::vector<std::size_t> unique;
    if (opts.memoize) {
        std::unordered_map<std::string, std::size_t> firstByKey;
        firstByKey.reserve(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            auto [it, inserted] =
                firstByKey.emplace(canonicalKey(requests[i]), i);
            owner[i] = it->second;
            if (inserted)
                unique.push_back(i);
        }
    } else {
        unique.resize(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i)
            owner[i] = unique[i] = i;
    }

    unsigned threads = resolveThreadCount(opts.threads);
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, unique.size()));

    std::atomic<std::size_t> nextJob{0};
    std::mutex errorMutex;
    std::exception_ptr firstError;

    auto workerMain = [&]() {
        try {
            std::size_t k;
            while ((k = nextJob.fetch_add(1)) < unique.size()) {
                const std::size_t job = unique[k];
                res.results[job] = estimator.estimate(requests[job]);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError)
                firstError = std::current_exception();
            // Drain remaining jobs so peers exit promptly.
            nextJob.store(unique.size());
        }
    };

    if (threads <= 1) {
        workerMain();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(workerMain);
        for (auto &th : pool)
            th.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    for (std::size_t i = 0; i < requests.size(); ++i)
        if (owner[i] != i)
            res.results[i] = res.results[owner[i]];

    res.evaluated = unique.size();
    res.memoHits = requests.size() - unique.size();
    res.threadsUsed = std::max(1u, threads);
    return res;
}

SweepRunner::SweepRunner(EstimateRequest base, SweepOptions opts)
    : estimator_(makeEstimator(base.kind)), base_(std::move(base)),
      opts_(opts)
{}

SweepRunner::SweepRunner(std::shared_ptr<const Estimator> estimator,
                         EstimateRequest base, SweepOptions opts)
    : estimator_(std::move(estimator)), base_(std::move(base)),
      opts_(opts)
{
    TRAQ_REQUIRE(estimator_ != nullptr, "null estimator");
}

SweepRunner &
SweepRunner::addAxis(std::string param, std::vector<double> values)
{
    TRAQ_REQUIRE(!values.empty(), "sweep axis needs values");
    axes_.push_back({std::move(param), std::move(values)});
    return *this;
}

std::size_t
SweepRunner::numJobs() const
{
    std::size_t n = 1;
    for (const SweepAxis &axis : axes_)
        n *= axis.values.size();
    return n;
}

EstimateRequest
SweepRunner::request(std::size_t job) const
{
    TRAQ_REQUIRE(job < numJobs(), "sweep job out of range");
    EstimateRequest req = base_;
    // Row-major: the last axis is the fastest-varying digit.
    for (std::size_t a = axes_.size(); a-- > 0;) {
        const SweepAxis &axis = axes_[a];
        req.params[axis.param] = axis.values[job %
                                             axis.values.size()];
        job /= axis.values.size();
    }
    return req;
}

SweepResult
SweepRunner::run() const
{
    std::vector<EstimateRequest> requests;
    const std::size_t n = numJobs();
    requests.reserve(n);
    for (std::size_t job = 0; job < n; ++job)
        requests.push_back(request(job));
    return runRequests(*estimator_, requests, opts_);
}

} // namespace traq::est
