/**
 * @file
 * Quantum-chemistry (qubitization) resource estimator (Sec. III.3).
 *
 * Ground-state energy estimation via qubitized phase estimation:
 * iterations = ceil(pi * lambda / (2 * eps)), each iteration one
 * PREPARE + SELECT + PREPARE^dagger block.  Following the paper's
 * reading of the tensor-hypercontraction pipeline: PREPARE costs are
 * dominated by table lookup (90-95% of T counts) and SELECT by table
 * lookup plus phase-gradient additions for the controlled rotations.
 * Those are exactly the gadgets built in src/gadgets, so the same
 * O(d) transversal speed-up carries over.
 */

#ifndef TRAQ_ESTIMATOR_CHEMISTRY_HH
#define TRAQ_ESTIMATOR_CHEMISTRY_HH

#include "src/gadgets/adder.hh"
#include "src/gadgets/lookup.hh"
#include "src/model/error_model.hh"
#include "src/platform/params.hh"

namespace traq::est {

/** Inputs of a chemistry estimate. */
struct ChemistrySpec
{
    int spinOrbitals = 108;        //!< N (FeMoCo-class default)
    double lambdaHam = 1500.0;     //!< Hamiltonian 1-norm [Ha]
    double energyError = 1.6e-3;   //!< chemical accuracy [Ha]
    int thcRank = 360;             //!< THC auxiliary dimension
    int rotationBits = 20;         //!< phase-gradient precision
    int distance = -1;             //!< -1: reuse factoring-style solve
    platform::AtomArrayParams atom =
        platform::AtomArrayParams::paperDefaults();
    model::ErrorModelParams errorModel =
        model::ErrorModelParams::paperDefaults();
};

/** Output of a chemistry estimate. */
struct ChemistryReport
{
    double iterations = 0.0;
    int lookupAddressBits = 0;
    double cczPerIteration = 0.0;
    double cczTotal = 0.0;
    double timePerIteration = 0.0;
    double totalSeconds = 0.0;
    double days = 0.0;
    double physicalQubits = 0.0;
    int distance = 0;
    double spacetimeVolume = 0.0;
    /** Same workload on a d*t_cycle lattice-surgery clock. */
    double latticeSurgerySeconds = 0.0;
    double speedup = 0.0;
};

/** Run the chemistry estimate. */
ChemistryReport estimateChemistry(const ChemistrySpec &spec);

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_CHEMISTRY_HH
