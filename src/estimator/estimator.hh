/**
 * @file
 * Unified estimator interface and registry (mirrors the Decoder
 * registry of src/decoder).
 *
 * Every resource estimate in the repo — factoring on the transversal
 * architecture, chemistry, the Gidney–Ekerå lattice-surgery baseline,
 * hybrid qLDPC storage, factory design, idle-storage cadence — is
 * servable from one request shape: a string kind plus a named
 * parameter map.  Results come back as a scalar metric map plus a
 * feasibility flag, serializable to JSON, so sweeps, benches, tests
 * and (eventually) a service front-end all speak the same type.
 *
 * Concrete estimators are registered under a string key; external
 * code may register new kinds (or override built-ins) without
 * touching the harness.  The original free-function entry points
 * (estimateFactoring, estimateChemistry, gidneyEkera,
 * applyQldpcStorage, ...) remain the numeric core; the estimators
 * here are thin, stateless adapters over them.
 *
 * Estimator::estimate() is const and must be thread-safe: the
 * parallel SweepRunner (src/estimator/sweep.hh) shares a single
 * instance across its workers.
 */

#ifndef TRAQ_ESTIMATOR_ESTIMATOR_HH
#define TRAQ_ESTIMATOR_ESTIMATOR_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.hh"
#include "src/estimator/baselines.hh"
#include "src/estimator/chemistry.hh"
#include "src/estimator/qldpc.hh"
#include "src/estimator/shor.hh"

namespace traq::est {

/** Named scalar parameters / metrics. */
using ParamMap = std::map<std::string, double>;

/**
 * One estimate request: which estimator kind, and named parameter
 * overrides applied on top of the estimator's base specification.
 * Integer-valued spec fields (window sizes, distances, counts) are
 * rounded from the double value.  Unknown parameter names throw
 * FatalError — a sweep over a misspelled axis must not silently
 * no-op.
 */
struct EstimateRequest
{
    std::string kind;
    ParamMap params;
};

/** Uniform estimate output: echoed parameters + scalar metrics. */
struct EstimateResult
{
    std::string kind;
    ParamMap params;      //!< the request parameters, as applied
    ParamMap metrics;     //!< named scalar outputs
    bool feasible = true; //!< all budgets/constraints satisfied

    /** Metric by name; throws FatalError if absent. */
    double metric(const std::string &name) const;

    /** True if the metric exists. */
    bool hasMetric(const std::string &name) const;
};

/**
 * Canonical serialization of a request — kind plus sorted
 * exact-round-trip parameter encodings.  Two requests share a key
 * exactly when they are equivalent; the SweepRunner memoization is
 * keyed on this.
 */
std::string canonicalKey(const EstimateRequest &req);

/** Serialize one result as a JSON object. */
std::string toJson(const EstimateResult &res);

/**
 * Serialize one request as a JSON object:
 * {"kind":"factoring","params":{"rsep":96,...}}.  Non-finite
 * parameter values encode as the quoted tags "nan"/"inf"/"-inf"
 * (see jsonNumber), which requestFromJson accepts back, so
 * request -> JSON -> parse -> canonicalKey is a fixed point.
 */
std::string toJson(const EstimateRequest &req);

/**
 * Parse a request from its JSON object form — the inverse of
 * toJson(EstimateRequest).  "params" may be omitted; any other
 * unknown member, a missing/empty "kind", or a parameter value that
 * is neither a number nor a non-finite tag throws FatalError.
 */
EstimateRequest requestFromJson(const json::Value &v);

/** Parse a request from JSON text (convenience over json::parse). */
EstimateRequest requestFromJson(std::string_view text);

/**
 * Parse a result from its JSON object form — the inverse of
 * toJson(EstimateResult).  "feasible" defaults to true and "params"
 * / "metrics" to empty when omitted; unknown members throw.
 */
EstimateResult resultFromJson(const json::Value &v);

/** Parse a result from JSON text. */
EstimateResult resultFromJson(std::string_view text);

/** Abstract resource estimator. */
class Estimator
{
  public:
    virtual ~Estimator() = default;

    /** Stable registry key, e.g. "factoring". */
    virtual const char *kind() const = 0;

    /**
     * Run one estimate.  Must be thread-safe (SweepRunner workers
     * share the instance).  Throws FatalError on unknown parameter
     * names or invalid configurations.
     */
    virtual EstimateResult estimate(const EstimateRequest &req)
        const = 0;

    /**
     * Validate request parameters without running the estimate:
     * throws FatalError with exactly the message estimate() would
     * produce for an unknown parameter name, an unappliable value,
     * or an inconsistent specification; returns normally otherwise.
     * Built-ins implement this by running their spec-application
     * phase on a scratch spec.  The default accepts everything —
     * kinds whose parameter space is not statically checkable defer
     * to estimate(), and the service validation layer then reports
     * those failures as execution errors instead of validation
     * errors.  Must be thread-safe and cheap (no evaluation).
     */
    virtual void checkParams(const EstimateRequest &req) const
    {
        (void)req;
    }
};

/** Factory signature used by the estimator registry. */
using EstimatorFactory =
    std::function<std::unique_ptr<Estimator>()>;

/**
 * Register (or replace) the factory for an estimator kind.
 * Built-ins ("factoring", "chemistry", "gidney-ekera",
 * "qldpc-storage", "factory-design", "idle-storage", and the
 * simulation-backed "mc-logical-error" / "mc-alpha" of
 * src/estimator/simulation.hh) are pre-registered.
 */
void registerEstimator(const std::string &kind,
                       EstimatorFactory factory);

/** Instantiate an estimator; throws FatalError on unknown kinds. */
std::unique_ptr<Estimator> makeEstimator(const std::string &kind);

/** Sorted list of registered kinds. */
std::vector<std::string> registeredEstimators();

// Constructors with non-default base specifications.  Request
// parameters are applied on top of the given base.

/** Factoring estimator over a custom base spec. */
std::unique_ptr<Estimator>
makeFactoringEstimator(const FactoringSpec &base);

/** Chemistry estimator over a custom base spec. */
std::unique_ptr<Estimator>
makeChemistryEstimator(const ChemistrySpec &base);

/** Gidney–Ekerå baseline estimator over a custom base spec. */
std::unique_ptr<Estimator>
makeGidneyEkeraEstimator(const GidneyEkeraSpec &base);

/**
 * Hybrid qLDPC-storage estimator.  Factoring parameters select the
 * underlying computation; storage parameters (compressionFactor,
 * eligibleFraction, accessMovePatches) the dense encoding.  The
 * underlying factoring solve is memoized per distinct factoring
 * parameter set, so sweeping storage parameters pays for one
 * reference solve.
 */
std::unique_ptr<Estimator>
makeQldpcStorageEstimator(const FactoringSpec &factoringBase,
                          const QldpcStorageSpec &storageBase);

} // namespace traq::est

#endif // TRAQ_ESTIMATOR_ESTIMATOR_HH
