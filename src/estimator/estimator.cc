#include "src/estimator/estimator.hh"

#include <cmath>
#include <mutex>
#include <utility>

#include "src/arch/qec_cycle.hh"
#include "src/arch/se_schedule.hh"
#include "src/common/assert.hh"
#include "src/common/serialize.hh"
#include "src/estimator/simulation.hh"
#include "src/gadgets/factory.hh"

namespace traq::est {
namespace {

int
asInt(double v)
{
    return static_cast<int>(std::llround(v));
}

/** Apply an "atom.*" parameter; returns false if key is not one. */
bool
applyAtomParam(platform::AtomArrayParams &atom,
               const std::string &key, double v)
{
    if (key == "atom.siteSpacing")
        atom.siteSpacing = v;
    else if (key == "atom.acceleration")
        atom.acceleration = v;
    else if (key == "atom.gateTime")
        atom.gateTime = v;
    else if (key == "atom.measureTime")
        atom.measureTime = v;
    else if (key == "atom.decodeTime")
        atom.decodeTime = v;
    else if (key == "atom.coherenceTime")
        atom.coherenceTime = v;
    else if (key == "atom.pPhys")
        atom.pPhys = v;
    else if (key == "atom.reactionTime") {
        // The paper splits the reaction time evenly between
        // measurement and decoding (Sec. II.2); Fig. 14(c) sweeps it
        // as one knob.
        atom.measureTime = v / 2.0;
        atom.decodeTime = v / 2.0;
    } else {
        return false;
    }
    return true;
}

/** Apply an "errorModel.*" parameter; false if key is not one. */
bool
applyErrorModelParam(model::ErrorModelParams &em,
                     const std::string &key, double v)
{
    if (key == "errorModel.prefactorC")
        em.prefactorC = v;
    else if (key == "errorModel.pPhys")
        em.pPhys = v;
    else if (key == "errorModel.pThres")
        em.pThres = v;
    else if (key == "errorModel.alpha")
        em.alpha = v;
    else
        return false;
    return true;
}

/** Apply a factoring-spec parameter; false if key is not one. */
bool
applyFactoringParam(FactoringSpec &spec, const std::string &key,
                    double v)
{
    if (key == "nBits")
        spec.nBits = asInt(v);
    else if (key == "wExp")
        spec.wExp = asInt(v);
    else if (key == "wMul")
        spec.wMul = asInt(v);
    else if (key == "rsep")
        spec.rsep = asInt(v);
    else if (key == "rpad")
        spec.rpad = asInt(v);
    else if (key == "distance")
        spec.distance = asInt(v);
    else if (key == "factories")
        spec.factories = asInt(v);
    else if (key == "cczErrorBudget")
        spec.cczErrorBudget = v;
    else if (key == "logicalErrorBudget")
        spec.logicalErrorBudget = v;
    else if (key == "runwayErrorBudget")
        spec.runwayErrorBudget = v;
    else if (key == "idlePeriod")
        spec.idlePeriod = v;
    else if (applyAtomParam(spec.atom, key, v))
        return true;
    else if (applyErrorModelParam(spec.errorModel, key, v))
        return true;
    else
        return false;
    return true;
}

FactoringSpec
factoringSpecFor(const FactoringSpec &base, const ParamMap &params)
{
    FactoringSpec spec = base;
    for (const auto &[key, v] : params)
        if (!applyFactoringParam(spec, key, v))
            TRAQ_FATAL("unknown factoring parameter '" + key + "'");
    return spec;
}

EstimateResult
resultShell(const char *kind, const ParamMap &params)
{
    EstimateResult res;
    res.kind = kind;
    res.params = params;
    return res;
}

class FactoringEstimator : public Estimator
{
  public:
    explicit FactoringEstimator(const FactoringSpec &base)
        : base_(base)
    {}

    const char *kind() const override { return "factoring"; }

    void checkParams(const EstimateRequest &req) const override
    {
        (void)factoringSpecFor(base_, req.params);
    }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        const FactoringSpec spec =
            factoringSpecFor(base_, req.params);
        const FactoringReport rep = estimateFactoring(spec);

        EstimateResult res = resultShell(kind(), req.params);
        res.feasible = rep.feasible;
        res.metrics = {
            {"exponentBits", rep.exponentBits},
            {"lookupAdditions", rep.lookupAdditions},
            {"cczTotal", rep.cczTotal},
            {"distance", static_cast<double>(rep.distance)},
            {"rpad", static_cast<double>(rep.rpad)},
            {"factories", static_cast<double>(rep.factories)},
            {"idlePeriodUsed", rep.idlePeriodUsed},
            {"timePerLookup", rep.timePerLookup},
            {"timePerAddition", rep.timePerAddition},
            {"totalSeconds", rep.totalSeconds},
            {"days", rep.days},
            {"storageQubits", rep.storageQubits},
            {"adderQubits", rep.adderQubits},
            {"lookupQubits", rep.lookupQubits},
            {"factoryQubits", rep.factoryQubits},
            {"routingQubits", rep.routingQubits},
            {"physicalQubits", rep.physicalQubits},
            {"algorithmLogicalError", rep.algorithmLogicalError},
            {"idleError", rep.idleError},
            {"runwayError", rep.runwayError},
            {"cczError", rep.cczError},
            {"spacetimeVolume", rep.spacetimeVolume},
            // Derived timing the Fig. 14(a,b) sweep reports.
            {"qecRound",
             arch::qecCycle(rep.distance, spec.atom).total},
        };
        return res;
    }

  private:
    FactoringSpec base_;
};

class ChemistryEstimator : public Estimator
{
  public:
    explicit ChemistryEstimator(const ChemistrySpec &base)
        : base_(base)
    {}

    const char *kind() const override { return "chemistry"; }

    void checkParams(const EstimateRequest &req) const override
    {
        (void)specFor(req.params);
    }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        const ChemistrySpec spec = specFor(req.params);
        const ChemistryReport rep = estimateChemistry(spec);

        EstimateResult res = resultShell(kind(), req.params);
        res.metrics = {
            {"iterations", rep.iterations},
            {"lookupAddressBits",
             static_cast<double>(rep.lookupAddressBits)},
            {"cczPerIteration", rep.cczPerIteration},
            {"cczTotal", rep.cczTotal},
            {"timePerIteration", rep.timePerIteration},
            {"totalSeconds", rep.totalSeconds},
            {"days", rep.days},
            {"physicalQubits", rep.physicalQubits},
            {"distance", static_cast<double>(rep.distance)},
            {"spacetimeVolume", rep.spacetimeVolume},
            {"latticeSurgerySeconds", rep.latticeSurgerySeconds},
            {"speedup", rep.speedup},
        };
        return res;
    }

  private:
    ChemistrySpec specFor(const ParamMap &params) const
    {
        ChemistrySpec spec = base_;
        for (const auto &[key, v] : params) {
            if (key == "spinOrbitals")
                spec.spinOrbitals = asInt(v);
            else if (key == "lambdaHam")
                spec.lambdaHam = v;
            else if (key == "energyError")
                spec.energyError = v;
            else if (key == "thcRank")
                spec.thcRank = asInt(v);
            else if (key == "rotationBits")
                spec.rotationBits = asInt(v);
            else if (key == "distance")
                spec.distance = asInt(v);
            else if (applyAtomParam(spec.atom, key, v) ||
                     applyErrorModelParam(spec.errorModel, key, v))
                continue;
            else
                TRAQ_FATAL("unknown chemistry parameter '" + key +
                           "'");
        }
        return spec;
    }

    ChemistrySpec base_;
};

class GidneyEkeraEstimator : public Estimator
{
  public:
    explicit GidneyEkeraEstimator(const GidneyEkeraSpec &base)
        : base_(base)
    {}

    const char *kind() const override { return "gidney-ekera"; }

    void checkParams(const EstimateRequest &req) const override
    {
        (void)specFor(req.params);
    }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        const GidneyEkeraSpec spec = specFor(req.params);
        const BaselinePoint p = gidneyEkera(spec);

        EstimateResult res = resultShell(kind(), req.params);
        res.metrics = {
            {"physicalQubits", p.physicalQubits},
            {"totalSeconds", p.seconds},
            {"spacetimeVolume", p.spacetimeVolume},
        };
        return res;
    }

  private:
    GidneyEkeraSpec specFor(const ParamMap &params) const
    {
        GidneyEkeraSpec spec = base_;
        for (const auto &[key, v] : params) {
            if (key == "nBits")
                spec.nBits = asInt(v);
            else if (key == "wExp")
                spec.wExp = asInt(v);
            else if (key == "wMul")
                spec.wMul = asInt(v);
            else if (key == "rsep")
                spec.rsep = asInt(v);
            else if (key == "rpad")
                spec.rpad = asInt(v);
            else if (key == "distance")
                spec.distance = asInt(v);
            else if (key == "tCycle")
                spec.tCycle = v;
            else if (key == "tReaction")
                spec.tReaction = v;
            else
                TRAQ_FATAL("unknown gidney-ekera parameter '" + key +
                           "'");
        }
        return spec;
    }

    GidneyEkeraSpec base_;
};

class QldpcStorageEstimator : public Estimator
{
  public:
    QldpcStorageEstimator(const FactoringSpec &factoringBase,
                          const QldpcStorageSpec &storageBase)
        : factoringBase_(factoringBase), storageBase_(storageBase)
    {}

    const char *kind() const override { return "qldpc-storage"; }

    void checkParams(const EstimateRequest &req) const override
    {
        ParamMap factoringParams;
        (void)splitParams(req.params, factoringParams);
        (void)factoringSpecFor(factoringBase_, factoringParams);
    }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        ParamMap factoringParams;
        const QldpcStorageSpec storage =
            splitParams(req.params, factoringParams);
        const FactoringSpec spec =
            factoringSpecFor(factoringBase_, factoringParams);
        const FactoringReport &base = solveBase(factoringParams,
                                                spec);
        const QldpcStorageReport rep =
            applyQldpcStorage(base, spec, storage);

        EstimateResult res = resultShell(kind(), req.params);
        res.feasible = base.feasible;
        res.metrics = {
            {"surfaceStorageQubits", rep.surfaceStorageQubits},
            {"denseStorageQubits", rep.denseStorageQubits},
            {"residualSurfaceQubits", rep.residualSurfaceQubits},
            {"physicalQubits", rep.physicalQubits},
            {"footprintReduction", rep.footprintReduction},
            {"accessCycleTime", rep.accessCycleTime},
            {"computeCycleTime", rep.computeCycleTime},
            {"spacetimeVolume", rep.spacetimeVolume},
            {"totalSeconds", base.totalSeconds},
            {"basePhysicalQubits", base.physicalQubits},
        };
        return res;
    }

  private:
    /**
     * Split the flat parameter map into storage-spec overrides and
     * the residue destined for the factoring spec (whose applier
     * rejects unknown names).
     */
    QldpcStorageSpec splitParams(const ParamMap &params,
                                 ParamMap &factoringParams) const
    {
        QldpcStorageSpec storage = storageBase_;
        for (const auto &[key, v] : params) {
            if (key == "compressionFactor")
                storage.compressionFactor = v;
            else if (key == "eligibleFraction")
                storage.eligibleFraction = v;
            else if (key == "accessMovePatches")
                storage.accessMovePatches = v;
            else
                factoringParams[key] = v;  // validated by the
                                           // factoring applier
        }
        return storage;
    }

    /**
     * Memoized reference solve: sweeping storage parameters reuses
     * the (expensive) factoring estimate for identical factoring
     * parameter sets.
     */
    const FactoringReport &solveBase(const ParamMap &factoringParams,
                                     const FactoringSpec &spec) const
    {
        EstimateRequest keyReq{"factoring", factoringParams};
        const std::string key = canonicalKey(keyReq);
        {
            std::lock_guard<std::mutex> lock(cacheMutex_);
            auto it = cache_.find(key);
            if (it != cache_.end())
                return it->second;
        }
        // Solve outside the lock so distinct parameter sets run in
        // parallel; a racing duplicate solve is deterministic, and
        // the losing insert is discarded.  std::map references stay
        // valid across later insertions.
        FactoringReport report = estimateFactoring(spec);
        std::lock_guard<std::mutex> lock(cacheMutex_);
        return cache_.emplace(key, std::move(report)).first->second;
    }

    FactoringSpec factoringBase_;
    QldpcStorageSpec storageBase_;
    mutable std::mutex cacheMutex_;
    mutable std::map<std::string, FactoringReport> cache_;
};

class FactoryDesignEstimator : public Estimator
{
  public:
    const char *kind() const override { return "factory-design"; }

    void checkParams(const EstimateRequest &req) const override
    {
        (void)specFor(req.params);
    }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        const gadgets::FactorySpec spec = specFor(req.params);
        const gadgets::FactoryReport rep =
            gadgets::designFactory(spec);

        EstimateResult res = resultShell(kind(), req.params);
        res.metrics = {
            {"distance", static_cast<double>(rep.distance)},
            {"tInputError", rep.tInputError},
            {"cczError", rep.cczError},
            {"qubits", rep.qubits},
            {"cczTime", rep.cczTime},
            {"volume", rep.qubits * rep.cczTime},
            {"throughput", rep.throughput},
            {"retryOverhead", rep.retryOverhead},
            {"cultivationRows",
             static_cast<double>(rep.cultivationRows)},
            {"cultivationFits", rep.cultivationFits ? 1.0 : 0.0},
        };
        return res;
    }

  private:
    gadgets::FactorySpec specFor(const ParamMap &params) const
    {
        gadgets::FactorySpec spec;
        for (const auto &[key, v] : params) {
            if (key == "targetCczError")
                spec.targetCczError = v;
            else if (key == "seRoundsPerGate")
                spec.seRoundsPerGate = v;
            else if (key == "forcedDistance")
                spec.forcedDistance = asInt(v);
            else if (applyAtomParam(spec.atom, key, v) ||
                     applyErrorModelParam(spec.errorModel, key, v))
                continue;
            else
                TRAQ_FATAL("unknown factory-design parameter '" +
                           key + "'");
        }
        return spec;
    }
};

class IdleStorageEstimator : public Estimator
{
  public:
    const char *kind() const override { return "idle-storage"; }

    void checkParams(const EstimateRequest &req) const override
    {
        (void)specFor(req.params);
    }

    EstimateResult estimate(const EstimateRequest &req) const override
    {
        const Spec spec = specFor(req.params);

        EstimateResult res = resultShell(kind(), req.params);
        res.metrics = {
            {"optimalPeriod",
             arch::optimalIdlePeriod(spec.d, spec.atom, spec.em)},
            {"approxPeriod",
             arch::optimalIdlePeriodApprox(spec.d, spec.atom,
                                           spec.em)},
        };
        if (spec.sePeriod > 0.0)
            res.metrics["rate"] = arch::idleLogicalErrorRate(
                spec.sePeriod, spec.d, spec.atom, spec.em);
        return res;
    }

  private:
    struct Spec
    {
        int d = 27;
        double sePeriod = 0.0;  // <= 0: report only the optimum
        platform::AtomArrayParams atom =
            platform::AtomArrayParams::paperDefaults();
        model::ErrorModelParams em =
            model::ErrorModelParams::paperDefaults();
    };

    Spec specFor(const ParamMap &params) const
    {
        Spec spec;
        for (const auto &[key, v] : params) {
            if (key == "distance")
                spec.d = asInt(v);
            else if (key == "sePeriod")
                spec.sePeriod = v;
            else if (applyAtomParam(spec.atom, key, v) ||
                     applyErrorModelParam(spec.em, key, v))
                continue;
            else
                TRAQ_FATAL("unknown idle-storage parameter '" + key +
                           "'");
        }
        return spec;
    }
};

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, EstimatorFactory> &
registry()
{
    // Built-ins are seeded on first access so makeEstimator works
    // without any static-initialization-order coupling.
    static std::map<std::string, EstimatorFactory> r = {
        {"factoring",
         [] { return makeFactoringEstimator(FactoringSpec{}); }},
        {"chemistry",
         [] { return makeChemistryEstimator(ChemistrySpec{}); }},
        {"gidney-ekera",
         [] { return makeGidneyEkeraEstimator(GidneyEkeraSpec{}); }},
        {"qldpc-storage",
         [] {
             return makeQldpcStorageEstimator(FactoringSpec{},
                                              QldpcStorageSpec{});
         }},
        {"factory-design",
         [] { return std::make_unique<FactoryDesignEstimator>(); }},
        {"idle-storage",
         [] { return std::make_unique<IdleStorageEstimator>(); }},
        // Simulation-backed kinds (src/estimator/simulation.hh):
        // Monte-Carlo logical error rates and the Fig. 6(a) alpha
        // extraction, served through the same request shape.
        {"mc-logical-error",
         [] { return makeMcLogicalErrorEstimator(); }},
        {"mc-alpha", [] { return makeMcAlphaEstimator(); }},
    };
    return r;
}

} // namespace

double
EstimateResult::metric(const std::string &name) const
{
    auto it = metrics.find(name);
    if (it == metrics.end())
        TRAQ_FATAL("estimate result has no metric '" + name + "'");
    return it->second;
}

bool
EstimateResult::hasMetric(const std::string &name) const
{
    return metrics.count(name) != 0;
}

std::string
canonicalKey(const EstimateRequest &req)
{
    std::string key = req.kind;
    for (const auto &[name, v] : req.params) {
        key += '|';
        key += name;
        key += '=';
        key += fmtRoundTrip(v);
    }
    return key;
}

namespace {

std::string
paramMapToJson(const ParamMap &m)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, v] : m) {
        if (!first)
            out += ",";
        first = false;
        out += jsonQuote(name);
        out += ":";
        out += jsonNumber(v);
    }
    out += "}";
    return out;
}

ParamMap
paramMapFromJson(const json::Value &v, const char *what)
{
    ParamMap m;
    for (const auto &[name, val] : v.asObject()) {
        TRAQ_REQUIRE(val.isNumber() || val.isString(),
                     std::string(what) + " '" + name +
                         "' must be a number or a non-finite tag");
        m[name] = val.asNumberOrTag();
    }
    return m;
}

} // namespace

std::string
toJson(const EstimateResult &res)
{
    std::string out = "{\"kind\":";
    out += jsonQuote(res.kind);
    out += ",\"feasible\":";
    out += res.feasible ? "true" : "false";
    out += ",\"params\":";
    out += paramMapToJson(res.params);
    out += ",\"metrics\":";
    out += paramMapToJson(res.metrics);
    out += "}";
    return out;
}

std::string
toJson(const EstimateRequest &req)
{
    std::string out = "{\"kind\":";
    out += jsonQuote(req.kind);
    out += ",\"params\":";
    out += paramMapToJson(req.params);
    out += "}";
    return out;
}

EstimateRequest
requestFromJson(const json::Value &v)
{
    EstimateRequest req;
    for (const auto &[key, val] : v.asObject()) {
        if (key == "kind")
            req.kind = val.asString();
        else if (key == "params")
            req.params = paramMapFromJson(val, "request parameter");
        else
            TRAQ_FATAL("unknown EstimateRequest member '" + key +
                       "'");
    }
    TRAQ_REQUIRE(!req.kind.empty(),
                 "EstimateRequest JSON needs a non-empty \"kind\"");
    return req;
}

EstimateRequest
requestFromJson(std::string_view text)
{
    return requestFromJson(json::parse(text));
}

EstimateResult
resultFromJson(const json::Value &v)
{
    EstimateResult res;
    for (const auto &[key, val] : v.asObject()) {
        if (key == "kind")
            res.kind = val.asString();
        else if (key == "feasible")
            res.feasible = val.asBool();
        else if (key == "params")
            res.params = paramMapFromJson(val, "result parameter");
        else if (key == "metrics")
            res.metrics = paramMapFromJson(val, "result metric");
        else
            TRAQ_FATAL("unknown EstimateResult member '" + key +
                       "'");
    }
    TRAQ_REQUIRE(!res.kind.empty(),
                 "EstimateResult JSON needs a non-empty \"kind\"");
    return res;
}

EstimateResult
resultFromJson(std::string_view text)
{
    return resultFromJson(json::parse(text));
}

void
registerEstimator(const std::string &kind, EstimatorFactory factory)
{
    TRAQ_REQUIRE(factory != nullptr, "null estimator factory");
    TRAQ_REQUIRE(!kind.empty(), "empty estimator kind");
    std::lock_guard<std::mutex> lock(registryMutex());
    registry()[kind] = std::move(factory);
}

std::unique_ptr<Estimator>
makeEstimator(const std::string &kind)
{
    EstimatorFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(kind);
        TRAQ_REQUIRE(it != registry().end(),
                     "no estimator registered for kind '" + kind +
                         "'");
        factory = it->second;
    }
    return factory();
}

std::vector<std::string>
registeredEstimators()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> kinds;
    kinds.reserve(registry().size());
    for (const auto &[kind, factory] : registry())
        kinds.push_back(kind);
    return kinds;
}

std::unique_ptr<Estimator>
makeFactoringEstimator(const FactoringSpec &base)
{
    return std::make_unique<FactoringEstimator>(base);
}

std::unique_ptr<Estimator>
makeChemistryEstimator(const ChemistrySpec &base)
{
    return std::make_unique<ChemistryEstimator>(base);
}

std::unique_ptr<Estimator>
makeGidneyEkeraEstimator(const GidneyEkeraSpec &base)
{
    return std::make_unique<GidneyEkeraEstimator>(base);
}

std::unique_ptr<Estimator>
makeQldpcStorageEstimator(const FactoringSpec &factoringBase,
                          const QldpcStorageSpec &storageBase)
{
    return std::make_unique<QldpcStorageEstimator>(factoringBase,
                                                   storageBase);
}

} // namespace traq::est
