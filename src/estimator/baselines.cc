#include "src/estimator/baselines.hh"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hh"

namespace traq::est {

BaselinePoint
gidneyEkera(const GidneyEkeraSpec &spec)
{
    TRAQ_REQUIRE(spec.nBits >= 16, "modulus too small");
    BaselinePoint p;
    p.label = "Gidney-Ekera (lattice surgery)";

    // Lookup-addition count with their window sizes.
    double ne = std::ceil(1.5 * spec.nBits);
    double lookupAdds = 2.0 * std::ceil(ne / spec.wExp) *
                        std::ceil(static_cast<double>(spec.nBits) /
                                  spec.wMul);

    // Each addition ripples 2*(rsep + rpad) sequential Toffoli steps
    // per runway segment (segments in parallel); in lattice surgery
    // each step costs a logical cycle d * t_cycle, floored by the
    // reaction time.
    double stepTime = std::max(spec.distance * spec.tCycle,
                               spec.tReaction);
    double perLookupAdd = 2.0 * (spec.rsep + spec.rpad) * stepTime;
    p.seconds = lookupAdds * perLookupAdd;

    // Space: anchored to their 20M-qubit headline at d = 27,
    // scaling with the patch area.
    p.physicalQubits =
        20e6 * (static_cast<double>(spec.distance) / 27.0) *
        (static_cast<double>(spec.distance) / 27.0) *
        (static_cast<double>(spec.nBits) / 2048.0);
    p.spacetimeVolume = p.physicalQubits * p.seconds;
    return p;
}

BaselinePoint
beverlandAnchor()
{
    BaselinePoint p;
    p.label = "Beverland et al. (100 us ops)";
    // Documented approximation (DESIGN.md): ~25 M qubits, ~6 years
    // for 2048-bit factoring at 100 us-class operation times.
    p.physicalQubits = 25e6;
    p.seconds = 6.0 * 365.25 * 86400.0;
    p.spacetimeVolume = p.physicalQubits * p.seconds;
    return p;
}

} // namespace traq::est
