/**
 * @file
 * Heisenberg-picture propagation of Pauli operators through Clifford
 * circuits, with exact phase tracking.
 *
 * Used to verify code constructions: e.g. that a transversal physical
 * CNOT between two surface-code patches maps logical X_A to X_A X_B,
 * or that the S/S_DAG pattern on the [[8,3,2]] code preserves its
 * stabilizer group.
 */

#ifndef TRAQ_SIM_CONJUGATE_HH
#define TRAQ_SIM_CONJUGATE_HH

#include "src/sim/circuit.hh"
#include "src/sim/pauli.hh"

namespace traq::sim {

/**
 * Return U P U^dagger for the unitary part of the circuit.
 * The circuit must contain only unitary gates (and annotations/TICKs,
 * which are ignored); measurements or noise are rejected.
 */
PauliString conjugateByCircuit(const PauliString &p,
                               const Circuit &circuit);

} // namespace traq::sim

#endif // TRAQ_SIM_CONJUGATE_HH
