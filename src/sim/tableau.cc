#include "src/sim/tableau.hh"

#include "src/common/assert.hh"
#include "src/common/gf2.hh"

namespace traq::sim {

TableauSim::TableauSim(std::size_t numQubits, std::uint64_t seed)
    : n_(numQubits),
      wordsPerRow_((numQubits + 63) / 64),
      rng_(seed)
{
    // 2n tableau rows plus one scratch row used by measurement.
    const std::size_t rows = 2 * n_ + 1;
    xBits_.assign(rows * wordsPerRow_, 0);
    zBits_.assign(rows * wordsPerRow_, 0);
    sign_.assign(rows, 0);
    // Identity tableau: destabilizer i = X_i, stabilizer i = Z_i.
    for (std::size_t i = 0; i < n_; ++i) {
        setXBit(i, i, true);
        setZBit(n_ + i, i, true);
    }
}

bool
TableauSim::xBit(std::size_t row, std::size_t q) const
{
    return (xBits_[row * wordsPerRow_ + q / 64] >> (q % 64)) & 1;
}

bool
TableauSim::zBit(std::size_t row, std::size_t q) const
{
    return (zBits_[row * wordsPerRow_ + q / 64] >> (q % 64)) & 1;
}

void
TableauSim::setXBit(std::size_t row, std::size_t q, bool v)
{
    std::uint64_t mask = 1ULL << (q % 64);
    auto &word = xBits_[row * wordsPerRow_ + q / 64];
    word = v ? (word | mask) : (word & ~mask);
}

void
TableauSim::setZBit(std::size_t row, std::size_t q, bool v)
{
    std::uint64_t mask = 1ULL << (q % 64);
    auto &word = zBits_[row * wordsPerRow_ + q / 64];
    word = v ? (word | mask) : (word & ~mask);
}

int
TableauSim::rowSumPhase(std::size_t h, std::size_t i) const
{
    // Sum over qubits of g(x_i, z_i, x_h, z_h) as in
    // Aaronson & Gottesman (2004), Eq. for rowsum.
    int sum = 0;
    for (std::size_t q = 0; q < n_; ++q) {
        int xi = xBit(i, q), zi = zBit(i, q);
        int xh = xBit(h, q), zh = zBit(h, q);
        if (!xi && !zi)
            continue;
        if (xi && zi)
            sum += zh - xh;
        else if (xi && !zi)
            sum += zh * (2 * xh - 1);
        else
            sum += xh * (1 - 2 * zh);
    }
    return sum;
}

void
TableauSim::rowSum(std::size_t h, std::size_t i)
{
    int total = 2 * sign_[h] + 2 * sign_[i] + rowSumPhase(h, i);
    total = ((total % 4) + 4) % 4;
    // Destabilizer rows (h < n) may acquire imaginary phases when
    // multiplied by an anticommuting stabilizer during measurement;
    // their signs are never read, so only stabilizer/scratch rows
    // must stay real (Aaronson-Gottesman invariant).
    TRAQ_ASSERT(h < n_ || total == 0 || total == 2,
                "rowsum produced imaginary stabilizer phase");
    sign_[h] = static_cast<std::uint8_t>(total / 2);
    for (std::size_t w = 0; w < wordsPerRow_; ++w) {
        xBits_[h * wordsPerRow_ + w] ^= xBits_[i * wordsPerRow_ + w];
        zBits_[h * wordsPerRow_ + w] ^= zBits_[i * wordsPerRow_ + w];
    }
}

void
TableauSim::h(std::size_t q)
{
    for (std::size_t r = 0; r < 2 * n_; ++r) {
        bool xb = xBit(r, q), zb = zBit(r, q);
        if (xb && zb)
            sign_[r] ^= 1;
        setXBit(r, q, zb);
        setZBit(r, q, xb);
    }
}

void
TableauSim::s(std::size_t q)
{
    for (std::size_t r = 0; r < 2 * n_; ++r) {
        bool xb = xBit(r, q), zb = zBit(r, q);
        if (xb && zb)
            sign_[r] ^= 1;
        setZBit(r, q, xb ^ zb);
    }
}

void
TableauSim::sdag(std::size_t q)
{
    // S_DAG = Z . S
    s(q);
    z(q);
}

void
TableauSim::x(std::size_t q)
{
    for (std::size_t r = 0; r < 2 * n_; ++r)
        if (zBit(r, q))
            sign_[r] ^= 1;
}

void
TableauSim::z(std::size_t q)
{
    for (std::size_t r = 0; r < 2 * n_; ++r)
        if (xBit(r, q))
            sign_[r] ^= 1;
}

void
TableauSim::y(std::size_t q)
{
    for (std::size_t r = 0; r < 2 * n_; ++r)
        if (xBit(r, q) ^ zBit(r, q))
            sign_[r] ^= 1;
}

void
TableauSim::sqrtX(std::size_t q)
{
    // SQRT_X = H . S . H
    h(q);
    s(q);
    h(q);
}

void
TableauSim::sqrtXDag(std::size_t q)
{
    h(q);
    sdag(q);
    h(q);
}

void
TableauSim::cx(std::size_t a, std::size_t b)
{
    for (std::size_t r = 0; r < 2 * n_; ++r) {
        bool xa = xBit(r, a), za = zBit(r, a);
        bool xb = xBit(r, b), zb = zBit(r, b);
        if (xa && zb && (xb == za))
            sign_[r] ^= 1;
        setXBit(r, b, xb ^ xa);
        setZBit(r, a, za ^ zb);
    }
}

void
TableauSim::cz(std::size_t a, std::size_t b)
{
    for (std::size_t r = 0; r < 2 * n_; ++r) {
        bool xa = xBit(r, a), za = zBit(r, a);
        bool xb = xBit(r, b), zb = zBit(r, b);
        if (xa && xb && (za ^ zb))
            sign_[r] ^= 1;
        setZBit(r, a, za ^ xb);
        setZBit(r, b, zb ^ xa);
    }
}

void
TableauSim::swapq(std::size_t a, std::size_t b)
{
    for (std::size_t r = 0; r < 2 * n_; ++r) {
        bool xa = xBit(r, a), za = zBit(r, a);
        bool xb = xBit(r, b), zb = zBit(r, b);
        setXBit(r, a, xb);
        setZBit(r, a, zb);
        setXBit(r, b, xa);
        setZBit(r, b, za);
    }
}

MeasureResult
TableauSim::measure(std::size_t q, bool forceZero)
{
    TRAQ_REQUIRE(q < n_, "measure target out of range");
    // Look for a stabilizer row anticommuting with Z_q (x bit set).
    std::size_t p = 2 * n_;
    for (std::size_t i = n_; i < 2 * n_; ++i) {
        if (xBit(i, q)) {
            p = i;
            break;
        }
    }

    MeasureResult res;
    if (p != 2 * n_) {
        // Random outcome.
        res.random = true;
        for (std::size_t i = 0; i < 2 * n_; ++i)
            if (i != p && xBit(i, q))
                rowSum(i, p);
        // Destabilizer row p-n := old stabilizer row p.
        for (std::size_t w = 0; w < wordsPerRow_; ++w) {
            xBits_[(p - n_) * wordsPerRow_ + w] =
                xBits_[p * wordsPerRow_ + w];
            zBits_[(p - n_) * wordsPerRow_ + w] =
                zBits_[p * wordsPerRow_ + w];
        }
        sign_[p - n_] = sign_[p];
        // Stabilizer row p := +/- Z_q.
        bool outcome = forceZero ? false : (rng_.next() & 1);
        for (std::size_t w = 0; w < wordsPerRow_; ++w) {
            xBits_[p * wordsPerRow_ + w] = 0;
            zBits_[p * wordsPerRow_ + w] = 0;
        }
        setZBit(p, q, true);
        sign_[p] = outcome ? 1 : 0;
        res.value = outcome;
    } else {
        // Deterministic outcome: accumulate into the scratch row.
        const std::size_t scratch = 2 * n_;
        for (std::size_t w = 0; w < wordsPerRow_; ++w) {
            xBits_[scratch * wordsPerRow_ + w] = 0;
            zBits_[scratch * wordsPerRow_ + w] = 0;
        }
        sign_[scratch] = 0;
        for (std::size_t i = 0; i < n_; ++i)
            if (xBit(i, q))
                rowSum(scratch, i + n_);
        res.value = sign_[scratch] != 0;
    }
    return res;
}

MeasureResult
TableauSim::measureX(std::size_t q, bool forceZero)
{
    h(q);
    MeasureResult res = measure(q, forceZero);
    h(q);
    return res;
}

void
TableauSim::reset(std::size_t q)
{
    MeasureResult res = measure(q);
    if (res.value)
        x(q);
}

void
TableauSim::resetX(std::size_t q)
{
    reset(q);
    h(q);
}

void
TableauSim::applySingle(Gate g, std::size_t q)
{
    switch (g) {
      case Gate::I:
        break;
      case Gate::X:
        x(q);
        break;
      case Gate::Y:
        y(q);
        break;
      case Gate::Z:
        z(q);
        break;
      case Gate::H:
        h(q);
        break;
      case Gate::S:
        s(q);
        break;
      case Gate::S_DAG:
        sdag(q);
        break;
      case Gate::SQRT_X:
        sqrtX(q);
        break;
      case Gate::SQRT_X_DAG:
        sqrtXDag(q);
        break;
      default:
        TRAQ_PANIC("applySingle: not a single-qubit unitary");
    }
}

void
TableauSim::applyPair(Gate g, std::size_t a, std::size_t b)
{
    switch (g) {
      case Gate::CX:
        cx(a, b);
        break;
      case Gate::CZ:
        cz(a, b);
        break;
      case Gate::SWAP:
        swapq(a, b);
        break;
      default:
        TRAQ_PANIC("applyPair: not a two-qubit unitary");
    }
}

std::vector<bool>
TableauSim::run(const Circuit &circuit, bool noiseless)
{
    TRAQ_REQUIRE(circuit.numQubits() <= n_,
                 "circuit uses more qubits than the simulator has");
    std::vector<bool> record;
    record.reserve(circuit.numMeasurements());

    for (const auto &inst : circuit.instructions()) {
        const GateInfo &info = gateInfo(inst.gate);
        if (info.unitary) {
            if (info.twoQubit) {
                for (std::size_t i = 0; i + 1 < inst.targets.size();
                     i += 2)
                    applyPair(inst.gate, inst.targets[i],
                              inst.targets[i + 1]);
            } else {
                for (std::uint32_t q : inst.targets)
                    applySingle(inst.gate, q);
            }
        } else if (info.noise) {
            if (noiseless)
                continue;
            const double p = inst.arg;
            switch (inst.gate) {
              case Gate::X_ERROR:
                for (std::uint32_t q : inst.targets)
                    if (rng_.bernoulli(p))
                        x(q);
                break;
              case Gate::Y_ERROR:
                for (std::uint32_t q : inst.targets)
                    if (rng_.bernoulli(p))
                        y(q);
                break;
              case Gate::Z_ERROR:
                for (std::uint32_t q : inst.targets)
                    if (rng_.bernoulli(p))
                        z(q);
                break;
              case Gate::DEPOLARIZE1:
                for (std::uint32_t q : inst.targets) {
                    if (rng_.bernoulli(p)) {
                        switch (rng_.below(3)) {
                          case 0: x(q); break;
                          case 1: y(q); break;
                          default: z(q); break;
                        }
                    }
                }
                break;
              case Gate::DEPOLARIZE2:
                for (std::size_t i = 0; i + 1 < inst.targets.size();
                     i += 2) {
                    if (rng_.bernoulli(p)) {
                        // One of 15 non-identity Pauli pairs.
                        std::uint64_t k = rng_.below(15) + 1;
                        std::size_t pa = k / 4, pb = k % 4;
                        auto applyP = [this](std::size_t pk,
                                             std::size_t q) {
                            switch (pk) {
                              case 1: x(q); break;
                              case 2: y(q); break;
                              case 3: z(q); break;
                              default: break;
                            }
                        };
                        applyP(pa, inst.targets[i]);
                        applyP(pb, inst.targets[i + 1]);
                    }
                }
                break;
              default:
                TRAQ_PANIC("unhandled noise channel");
            }
        } else if (info.measurement || info.reset) {
            for (std::uint32_t q : inst.targets) {
                switch (inst.gate) {
                  case Gate::M:
                    record.push_back(measure(q, noiseless).value);
                    break;
                  case Gate::MX:
                    record.push_back(measureX(q, noiseless).value);
                    break;
                  case Gate::MR: {
                    MeasureResult res = measure(q, noiseless);
                    record.push_back(res.value);
                    if (res.value)
                        x(q);
                    break;
                  }
                  case Gate::R:
                    reset(q);
                    break;
                  case Gate::RX:
                    resetX(q);
                    break;
                  default:
                    TRAQ_PANIC("unhandled measurement/reset");
                }
            }
        }
        // Annotations are no-ops during state evolution.
    }
    return record;
}

PauliString
TableauSim::stabilizer(std::size_t i) const
{
    TRAQ_REQUIRE(i < n_, "stabilizer index out of range");
    PauliString p(n_);
    std::size_t row = n_ + i;
    for (std::size_t q = 0; q < n_; ++q) {
        p.setX(q, xBit(row, q));
        p.setZ(q, zBit(row, q));
    }
    // Aaronson–Gottesman rows represent
    // (-1)^sign · prod_q (i^{x z} X^x Z^z), i.e. Y sites are literal
    // Y operators; the row sign is the full phase.
    p.setPhase(sign_[row] ? 2 : 0);
    return p;
}

PauliString
TableauSim::destabilizer(std::size_t i) const
{
    TRAQ_REQUIRE(i < n_, "destabilizer index out of range");
    PauliString p(n_);
    for (std::size_t q = 0; q < n_; ++q) {
        p.setX(q, xBit(i, q));
        p.setZ(q, zBit(i, q));
    }
    p.setPhase(sign_[i] ? 2 : 0);
    return p;
}

bool
TableauSim::stateStabilizedBy(const PauliString &p) const
{
    TRAQ_REQUIRE(p.numQubits() == n_, "stateStabilizedBy size mismatch");
    // Solve for a combination of stabilizer rows whose symplectic
    // vector matches p, then check that the phases agree.
    Gf2Matrix m(n_, 2 * n_);
    for (std::size_t i = 0; i < n_; ++i) {
        PauliString s = stabilizer(i);
        for (std::size_t q = 0; q < n_; ++q) {
            if (s.xBit(q))
                m.set(i, q, true);
            if (s.zBit(q))
                m.set(i, n_ + q, true);
        }
    }
    // Solve M^T c = target.
    Gf2Matrix mt = m.transpose();
    std::vector<int> target(2 * n_, 0);
    for (std::size_t q = 0; q < n_; ++q) {
        target[q] = p.xBit(q) ? 1 : 0;
        target[n_ + q] = p.zBit(q) ? 1 : 0;
    }
    std::vector<int> combo;
    if (!mt.solve(target, &combo))
        return false;
    PauliString prod(n_);
    for (std::size_t i = 0; i < n_; ++i)
        if (combo[i])
            prod.multiplyBy(stabilizer(i));
    return prod == p;
}

} // namespace traq::sim
