#include "src/sim/dem.hh"

#include <algorithm>
#include <map>

#include "src/common/assert.hh"
#include "src/common/math.hh"

namespace traq::sim {
namespace {

/** Single-shot sparse frame used for symbolic propagation. */
struct SingleFrame
{
    std::vector<std::uint8_t> xf;
    std::vector<std::uint8_t> zf;
    std::vector<std::uint32_t> touched;

    explicit SingleFrame(std::size_t n) : xf(n, 0), zf(n, 0) {}

    void
    clear()
    {
        for (std::uint32_t q : touched) {
            xf[q] = 0;
            zf[q] = 0;
        }
        touched.clear();
    }

    void
    touch(std::uint32_t q)
    {
        touched.push_back(q);
    }
};

/** Pauli component codes: 1 = X, 2 = Y, 3 = Z (0 = I). */
void
applyComponent(SingleFrame &f, std::uint32_t q, int pauli)
{
    if (pauli == 1 || pauli == 2) {
        f.xf[q] ^= 1;
        f.touch(q);
    }
    if (pauli == 2 || pauli == 3) {
        f.zf[q] ^= 1;
        f.touch(q);
    }
}

} // namespace

double
DetectorErrorModel::totalErrorWeight() const
{
    double sum = 0.0;
    for (const auto &e : errors)
        sum += e.probability;
    return sum;
}

DetectorErrorModel
buildDem(const Circuit &circuit, bool discardInvisible)
{
    const auto &insts = circuit.instructions();
    const std::size_t n = circuit.numQubits();
    const std::size_t numMeas = circuit.numMeasurements();

    // Pass 1: measurement offset before each instruction, and the
    // absolute measurement indices behind each detector / observable.
    std::vector<std::uint64_t> measBefore(insts.size() + 1, 0);
    {
        std::uint64_t m = 0;
        for (std::size_t i = 0; i < insts.size(); ++i) {
            measBefore[i] = m;
            if (gateInfo(insts[i].gate).measurement)
                m += insts[i].targets.size();
        }
        measBefore[insts.size()] = m;
    }

    // Reverse index: measurement -> detectors / observable mask.
    std::vector<std::vector<std::uint32_t>> measToDets(numMeas);
    std::vector<std::uint32_t> measToObs(numMeas, 0);
    {
        std::uint32_t detId = 0;
        for (std::size_t i = 0; i < insts.size(); ++i) {
            const Instruction &inst = insts[i];
            if (inst.gate == Gate::DETECTOR) {
                for (std::uint32_t lb : inst.targets) {
                    std::uint64_t abs = measBefore[i] - lb;
                    measToDets[abs].push_back(detId);
                }
                ++detId;
            } else if (inst.gate == Gate::OBSERVABLE_INCLUDE) {
                auto idx = static_cast<std::uint32_t>(inst.arg);
                TRAQ_REQUIRE(idx < 32,
                             "at most 32 observables supported");
                for (std::uint32_t lb : inst.targets) {
                    std::uint64_t abs = measBefore[i] - lb;
                    measToObs[abs] ^= (1u << idx);
                }
            }
        }
    }

    // Propagate one Pauli component injected just after instruction
    // `pos` and return its symptoms.
    SingleFrame frame(n);
    auto propagate = [&](std::size_t pos,
                         std::vector<std::uint32_t> *dets,
                         std::uint32_t *obs) {
        std::uint64_t measIdx = measBefore[pos + 1];
        std::vector<std::uint32_t> detParity;
        *obs = 0;
        for (std::size_t i = pos + 1; i < insts.size(); ++i) {
            const Instruction &inst = insts[i];
            const GateInfo &info = gateInfo(inst.gate);
            if (info.noise || info.annotation)
                continue;
            if (info.unitary) {
                switch (inst.gate) {
                  case Gate::I:
                  case Gate::X:
                  case Gate::Y:
                  case Gate::Z:
                    break;
                  case Gate::H:
                    for (std::uint32_t q : inst.targets) {
                        std::swap(frame.xf[q], frame.zf[q]);
                        frame.touch(q);
                    }
                    break;
                  case Gate::S:
                  case Gate::S_DAG:
                    for (std::uint32_t q : inst.targets) {
                        frame.zf[q] ^= frame.xf[q];
                        frame.touch(q);
                    }
                    break;
                  case Gate::SQRT_X:
                  case Gate::SQRT_X_DAG:
                    for (std::uint32_t q : inst.targets) {
                        frame.xf[q] ^= frame.zf[q];
                        frame.touch(q);
                    }
                    break;
                  case Gate::CX:
                    for (std::size_t t = 0;
                         t + 1 < inst.targets.size(); t += 2) {
                        std::uint32_t a = inst.targets[t];
                        std::uint32_t b = inst.targets[t + 1];
                        frame.xf[b] ^= frame.xf[a];
                        frame.zf[a] ^= frame.zf[b];
                        frame.touch(a);
                        frame.touch(b);
                    }
                    break;
                  case Gate::CZ:
                    for (std::size_t t = 0;
                         t + 1 < inst.targets.size(); t += 2) {
                        std::uint32_t a = inst.targets[t];
                        std::uint32_t b = inst.targets[t + 1];
                        frame.zf[a] ^= frame.xf[b];
                        frame.zf[b] ^= frame.xf[a];
                        frame.touch(a);
                        frame.touch(b);
                    }
                    break;
                  case Gate::SWAP:
                    for (std::size_t t = 0;
                         t + 1 < inst.targets.size(); t += 2) {
                        std::uint32_t a = inst.targets[t];
                        std::uint32_t b = inst.targets[t + 1];
                        std::swap(frame.xf[a], frame.xf[b]);
                        std::swap(frame.zf[a], frame.zf[b]);
                        frame.touch(a);
                        frame.touch(b);
                    }
                    break;
                  default:
                    TRAQ_PANIC("DEM propagate: unhandled unitary");
                }
            } else {
                // Measurements and resets.
                for (std::uint32_t q : inst.targets) {
                    switch (inst.gate) {
                      case Gate::M:
                      case Gate::MR:
                        if (frame.xf[q]) {
                            for (std::uint32_t d : measToDets[measIdx])
                                detParity.push_back(d);
                            *obs ^= measToObs[measIdx];
                        }
                        ++measIdx;
                        if (inst.gate == Gate::MR) {
                            frame.xf[q] = 0;
                            frame.touch(q);
                        }
                        break;
                      case Gate::MX:
                        if (frame.zf[q]) {
                            for (std::uint32_t d : measToDets[measIdx])
                                detParity.push_back(d);
                            *obs ^= measToObs[measIdx];
                        }
                        ++measIdx;
                        break;
                      case Gate::R:
                      case Gate::RX:
                        frame.xf[q] = 0;
                        frame.zf[q] = 0;
                        frame.touch(q);
                        break;
                      default:
                        TRAQ_PANIC("DEM propagate: unhandled op");
                    }
                }
            }
        }
        // Reduce detector list to its XOR (odd-multiplicity entries).
        std::sort(detParity.begin(), detParity.end());
        dets->clear();
        for (std::size_t i = 0; i < detParity.size();) {
            std::size_t j = i;
            while (j < detParity.size() &&
                   detParity[j] == detParity[i])
                ++j;
            if ((j - i) % 2)
                dets->push_back(detParity[i]);
            i = j;
        }
    };

    // Pass 2: enumerate error components.  Each merged entry keeps
    // the XOR-combined probability plus the union of herald channels
    // whose erasure components merged into it (the provenance the
    // decode graph exposes for erasure-aware reweighting).
    struct MergedMech
    {
        double p = 0.0;
        std::vector<std::uint32_t> channels;
    };
    std::map<std::pair<std::vector<std::uint32_t>, std::uint32_t>,
             MergedMech> merged;
    std::vector<std::uint32_t> dets;
    std::uint32_t obs = 0;
    // Herald channel counter: one id per HERALDED_ERASE target in
    // instruction order — the exact numbering the frame sampler
    // emits herald planes in.
    std::uint32_t heraldChannel = 0;

    auto record = [&](double p, std::int64_t channel = -1) {
        if (p <= 0.0)
            return;
        if (discardInvisible && dets.empty() && obs == 0)
            return;
        auto key = std::make_pair(dets, obs);
        auto [it, fresh] = merged.try_emplace(key);
        it->second.p = pXor(it->second.p, p);
        (void)fresh;
        if (channel >= 0) {
            auto &ch = it->second.channels;
            const auto c = static_cast<std::uint32_t>(channel);
            auto pos = std::lower_bound(ch.begin(), ch.end(), c);
            if (pos == ch.end() || *pos != c)
                ch.insert(pos, c);
        }
    };

    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        if (!gateInfo(inst.gate).noise)
            continue;
        const double p = inst.arg;
        switch (inst.gate) {
          case Gate::X_ERROR:
          case Gate::Y_ERROR:
          case Gate::Z_ERROR: {
            int pauli = inst.gate == Gate::X_ERROR
                            ? 1
                            : (inst.gate == Gate::Y_ERROR ? 2 : 3);
            for (std::uint32_t q : inst.targets) {
                frame.clear();
                applyComponent(frame, q, pauli);
                propagate(i, &dets, &obs);
                record(p);
            }
            break;
          }
          case Gate::DEPOLARIZE1:
            for (std::uint32_t q : inst.targets) {
                for (int pauli = 1; pauli <= 3; ++pauli) {
                    frame.clear();
                    applyComponent(frame, q, pauli);
                    propagate(i, &dets, &obs);
                    record(p / 3.0);
                }
            }
            break;
          case Gate::DEPOLARIZE2:
            for (std::size_t t = 0; t + 1 < inst.targets.size();
                 t += 2) {
                std::uint32_t a = inst.targets[t];
                std::uint32_t b = inst.targets[t + 1];
                for (int k = 1; k < 16; ++k) {
                    frame.clear();
                    applyComponent(frame, a, k / 4);
                    applyComponent(frame, b, k % 4);
                    propagate(i, &dets, &obs);
                    record(p / 15.0);
                }
            }
            break;
          case Gate::HERALDED_ERASE:
            // Erasure = maximally mixed replacement: I/X/Y/Z at p/4
            // each.  The I component is invisible; the Pauli
            // components carry the target's herald channel id so the
            // decode graph knows which edges a flagged erasure can
            // explain.
            for (std::uint32_t q : inst.targets) {
                const std::uint32_t channel = heraldChannel++;
                for (int pauli = 1; pauli <= 3; ++pauli) {
                    frame.clear();
                    applyComponent(frame, q, pauli);
                    propagate(i, &dets, &obs);
                    record(p / 4.0, channel);
                }
            }
            break;
          case Gate::CORRELATED_PAULI2:
            // Perfectly correlated pair channel: XX / YY / ZZ at
            // p/3 each, no single-sided components.
            for (std::size_t t = 0; t + 1 < inst.targets.size();
                 t += 2) {
                std::uint32_t a = inst.targets[t];
                std::uint32_t b = inst.targets[t + 1];
                for (int pauli = 1; pauli <= 3; ++pauli) {
                    frame.clear();
                    applyComponent(frame, a, pauli);
                    applyComponent(frame, b, pauli);
                    propagate(i, &dets, &obs);
                    record(p / 3.0);
                }
            }
            break;
          default:
            TRAQ_PANIC("buildDem: unhandled noise channel");
        }
    }

    DetectorErrorModel dem;
    dem.numDetectors = static_cast<std::uint32_t>(
        circuit.numDetectors());
    dem.numObservables = circuit.numObservables();
    dem.numHeraldChannels = circuit.numHeraldChannels();
    dem.errors.reserve(merged.size());
    for (auto &[key, m] : merged) {
        ErrorMechanism e;
        e.detectors = key.first;
        e.observables = key.second;
        e.probability = m.p;
        e.channels = std::move(m.channels);
        dem.errors.push_back(std::move(e));
    }
    return dem;
}

} // namespace traq::sim
