/**
 * @file
 * Pauli strings with phase tracking.
 *
 * A PauliString represents i^phase * P_0 ⊗ P_1 ⊗ ... with each P_q in
 * {I, X, Y, Z} encoded by (x, z) bits per qubit (Y = XZ up to phase;
 * we use the convention Y := i·X·Z so phases compose exactly under
 * multiplication).  Used by the tableau simulator's test hooks and the
 * CSS code machinery.
 */

#ifndef TRAQ_SIM_PAULI_HH
#define TRAQ_SIM_PAULI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace traq::sim {

/** A phased Pauli operator on n qubits. */
class PauliString
{
  public:
    PauliString() = default;
    explicit PauliString(std::size_t n);

    /**
     * Parse from text like "+XXI", "-XZY", "iZZ" (leading sign one of
     * "+", "-", "i", "-i"; defaults to "+").
     */
    static PauliString fromText(const std::string &text);

    std::size_t numQubits() const { return n_; }

    /** Phase exponent k in i^k, k in {0,1,2,3}. */
    int phase() const { return phase_; }
    void setPhase(int k) { phase_ = ((k % 4) + 4) % 4; }

    bool xBit(std::size_t q) const { return x_[q]; }
    bool zBit(std::size_t q) const { return z_[q]; }
    void setX(std::size_t q, bool v) { x_[q] = v; }
    void setZ(std::size_t q, bool v) { z_[q] = v; }

    /** Set qubit q to one of 'I','X','Y','Z'. */
    void setPauli(std::size_t q, char p);
    char pauli(std::size_t q) const;

    /** Number of non-identity sites. */
    std::size_t weight() const;

    /** True if this commutes with other (phases ignored). */
    bool commutesWith(const PauliString &other) const;

    /** Group product: *this = *this · rhs (exact phase tracking). */
    void multiplyBy(const PauliString &rhs);

    bool operator==(const PauliString &o) const;

    /** Text form, e.g. "-XZIY". */
    std::string str() const;

  private:
    std::size_t n_ = 0;
    int phase_ = 0;               //!< exponent of i
    std::vector<bool> x_;
    std::vector<bool> z_;
};

} // namespace traq::sim

#endif // TRAQ_SIM_PAULI_HH
