/**
 * @file
 * Frame-sampler kernel bodies, compiled once per dispatch level.
 *
 * This header is included by exactly three translation units
 * (frame_kernels_{baseline,avx2,avx512}.cc), each defining
 * TRAQ_KERNEL_NS to its level name and compiled with the matching
 * arch flags.  Everything here is plain 64-bit integer code — the
 * levels differ only in how the compiler vectorizes the lane loops,
 * so all three copies are bit-identical by construction.
 *
 * Two kernels live here:
 *  - sampleInto: the lane-templated Pauli-frame sampler moved out of
 *    frame.cc (per-gate XOR loops, fused noise channels, heralded
 *    erasure planes);
 *  - extractBlock: CSR syndrome extraction via a blocked 64x64
 *    bit-matrix transpose of the detector/herald planes (lane-major
 *    in, shot-major out) instead of per-bit countr_zero walks over
 *    the planes.  Each shot's defects then stream out of its own
 *    contiguous row words — sequential, vector-friendly, and
 *    bit-identical to extractSyndromeBlockScalar.
 */

#ifndef TRAQ_KERNEL_NS
#error "frame_kernels_impl.hh requires TRAQ_KERNEL_NS"
#endif

#include <algorithm>
#include <bit>

#include "src/common/assert.hh"
#include "src/common/math.hh"
#include "src/sim/frame_kernels.hh"

namespace traq::sim::kernels {
namespace TRAQ_KERNEL_NS {
namespace {

/** Single-qubit channels fusable into one plane draw. */
bool
fusableNoise(Gate g)
{
    return g == Gate::X_ERROR || g == Gate::Z_ERROR ||
           g == Gate::Y_ERROR || g == Gate::DEPOLARIZE1;
}

/** Probability of the fused channel for two back-to-back copies. */
double
fuseProb(Gate g, double p1, double p2)
{
    if (g == Gate::DEPOLARIZE1)
        // Composition of depolarizing channels is depolarizing:
        // the Pauli-invariant factor (1 - 4p/3) multiplies.
        return p1 + p2 - 4.0 * p1 * p2 / 3.0;
    // Independent flips combine by XOR.
    return pXor(p1, p2);
}

template <unsigned L>
void
applyNoise(FrameSimState &st, const Instruction &inst, double p,
           unsigned lanes, FrameBatch &out)
{
    const unsigned nl = L ? L : lanes;
    std::uint64_t *e = st.plane.data();
    std::uint64_t *xf = st.xf.data();
    std::uint64_t *zf = st.zf.data();
    switch (inst.gate) {
      case Gate::X_ERROR:
        for (std::uint32_t q : inst.targets) {
            st.rng.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l)
                xf[q * nl + l] ^= e[l];
        }
        break;
      case Gate::Z_ERROR:
        for (std::uint32_t q : inst.targets) {
            st.rng.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l)
                zf[q * nl + l] ^= e[l];
        }
        break;
      case Gate::Y_ERROR:
        for (std::uint32_t q : inst.targets) {
            st.rng.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                xf[q * nl + l] ^= e[l];
                zf[q * nl + l] ^= e[l];
            }
        }
        break;
      case Gate::DEPOLARIZE1:
        for (std::uint32_t q : inst.targets) {
            st.rng.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = e[l];
                if (!rest)
                    continue;
                // For each erred shot pick X, Y or Z uniformly.
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    switch (st.rng.below(3)) {
                      case 0:
                        xf[q * nl + l] ^= bit;
                        break;
                      case 1:
                        xf[q * nl + l] ^= bit;
                        zf[q * nl + l] ^= bit;
                        break;
                      default:
                        zf[q * nl + l] ^= bit;
                        break;
                    }
                }
            }
        }
        break;
      case Gate::HERALDED_ERASE:
        // One herald plane per target, appended in instruction /
        // target order so plane c is channel c of the circuit's
        // numbering (the same order the DEM assigns channel tags).
        // The erased qubit is replaced by the maximally mixed state:
        // I, X, Y or Z with probability 1/4 each, herald set either
        // way.
        for (std::uint32_t q : inst.targets) {
            st.rng.bernoulliPlane(p, e, nl);
            const std::size_t base = out.heralds.size();
            out.heralds.insert(out.heralds.end(), e, e + nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = out.heralds[base + l];
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    switch (st.rng.below(4)) {
                      case 0:
                        break;  // I: erased but frame unchanged
                      case 1:
                        xf[q * nl + l] ^= bit;
                        break;
                      case 2:
                        xf[q * nl + l] ^= bit;
                        zf[q * nl + l] ^= bit;
                        break;
                      default:
                        zf[q * nl + l] ^= bit;
                        break;
                    }
                }
            }
        }
        break;
      case Gate::CORRELATED_PAULI2:
        for (std::size_t i = 0; i + 1 < inst.targets.size(); i += 2) {
            const std::uint32_t a = inst.targets[i];
            const std::uint32_t b = inst.targets[i + 1];
            st.rng.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = e[l];
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    // XX, YY or ZZ uniformly — both qubits get the
                    // same Pauli (the correlation is the point).
                    switch (st.rng.below(3)) {
                      case 0:
                        xf[a * nl + l] ^= bit;
                        xf[b * nl + l] ^= bit;
                        break;
                      case 1:
                        xf[a * nl + l] ^= bit;
                        zf[a * nl + l] ^= bit;
                        xf[b * nl + l] ^= bit;
                        zf[b * nl + l] ^= bit;
                        break;
                      default:
                        zf[a * nl + l] ^= bit;
                        zf[b * nl + l] ^= bit;
                        break;
                    }
                }
            }
        }
        break;
      case Gate::DEPOLARIZE2:
        for (std::size_t i = 0; i + 1 < inst.targets.size(); i += 2) {
            const std::uint32_t a = inst.targets[i];
            const std::uint32_t b = inst.targets[i + 1];
            st.rng.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = e[l];
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    const std::uint64_t k = st.rng.below(15) + 1;
                    const std::size_t pa = k / 4, pb = k % 4;
                    if (pa == 1 || pa == 2)
                        xf[a * nl + l] ^= bit;
                    if (pa == 2 || pa == 3)
                        zf[a * nl + l] ^= bit;
                    if (pb == 1 || pb == 2)
                        xf[b * nl + l] ^= bit;
                    if (pb == 2 || pb == 3)
                        zf[b * nl + l] ^= bit;
                }
            }
        }
        break;
      default:
        TRAQ_PANIC("applyNoise: not a noise instruction");
    }
}

template <unsigned L>
void
sampleIntoBody(FrameSimState &st, const Circuit &circuit,
               unsigned lanes, FrameBatch &out)
{
    const unsigned nl = L ? L : lanes;
    const std::size_t n = circuit.numQubits();
    st.xf.assign(n * nl, 0);
    st.zf.assign(n * nl, 0);
    st.mrec.clear();
    st.mrec.reserve(circuit.numMeasurements() * nl);
    st.numRec = 0;
    st.plane.resize(nl);
    std::uint64_t *xf = st.xf.data();
    std::uint64_t *zf = st.zf.data();

    out.lanes = nl;
    out.detectors.clear();
    out.detectors.reserve(circuit.numDetectors() * nl);
    out.observables.assign(circuit.numObservables() * nl, 0);
    out.heralds.clear();
    out.heralds.reserve(circuit.numHeraldChannels() * nl);

    const auto &insts = circuit.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        const GateInfo &info = gateInfo(inst.gate);
        if (info.unitary) {
            switch (inst.gate) {
              case Gate::I:
              case Gate::X:
              case Gate::Y:
              case Gate::Z:
                // Deterministic Paulis commute into the reference.
                break;
              case Gate::H:
                for (std::uint32_t q : inst.targets)
                    for (unsigned l = 0; l < nl; ++l)
                        std::swap(xf[q * nl + l], zf[q * nl + l]);
                break;
              case Gate::S:
              case Gate::S_DAG:
                // S X S^-1 = Y: an X frame gains a Z component; Z
                // frames are unchanged.  Same frame action for S_DAG.
                for (std::uint32_t q : inst.targets)
                    for (unsigned l = 0; l < nl; ++l)
                        zf[q * nl + l] ^= xf[q * nl + l];
                break;
              case Gate::SQRT_X:
              case Gate::SQRT_X_DAG:
                // Z frame gains an X component.
                for (std::uint32_t q : inst.targets)
                    for (unsigned l = 0; l < nl; ++l)
                        xf[q * nl + l] ^= zf[q * nl + l];
                break;
              case Gate::CX:
                for (std::size_t t = 0; t + 1 < inst.targets.size();
                     t += 2) {
                    const std::uint32_t a = inst.targets[t];
                    const std::uint32_t b = inst.targets[t + 1];
                    for (unsigned l = 0; l < nl; ++l) {
                        xf[b * nl + l] ^= xf[a * nl + l];
                        zf[a * nl + l] ^= zf[b * nl + l];
                    }
                }
                break;
              case Gate::CZ:
                for (std::size_t t = 0; t + 1 < inst.targets.size();
                     t += 2) {
                    const std::uint32_t a = inst.targets[t];
                    const std::uint32_t b = inst.targets[t + 1];
                    for (unsigned l = 0; l < nl; ++l) {
                        zf[a * nl + l] ^= xf[b * nl + l];
                        zf[b * nl + l] ^= xf[a * nl + l];
                    }
                }
                break;
              case Gate::SWAP:
                for (std::size_t t = 0; t + 1 < inst.targets.size();
                     t += 2) {
                    const std::uint32_t a = inst.targets[t];
                    const std::uint32_t b = inst.targets[t + 1];
                    for (unsigned l = 0; l < nl; ++l) {
                        std::swap(xf[a * nl + l], xf[b * nl + l]);
                        std::swap(zf[a * nl + l], zf[b * nl + l]);
                    }
                }
                break;
              default:
                TRAQ_PANIC("frame sim: unhandled unitary");
            }
        } else if (info.noise) {
            // Fuse runs of the same single-qubit channel on the same
            // target list into one plane draw.
            double p = inst.arg;
            while (fusableNoise(inst.gate) &&
                   i + 1 < insts.size() &&
                   insts[i + 1].gate == inst.gate &&
                   insts[i + 1].targets == inst.targets) {
                p = fuseProb(inst.gate, p, insts[i + 1].arg);
                ++i;
            }
            applyNoise<L>(st, inst, p, nl, out);
        } else if (info.measurement || info.reset) {
            for (std::uint32_t q : inst.targets) {
                switch (inst.gate) {
                  case Gate::M:
                    for (unsigned l = 0; l < nl; ++l)
                        st.mrec.push_back(xf[q * nl + l]);
                    ++st.numRec;
                    break;
                  case Gate::MX:
                    for (unsigned l = 0; l < nl; ++l)
                        st.mrec.push_back(zf[q * nl + l]);
                    ++st.numRec;
                    break;
                  case Gate::MR:
                    for (unsigned l = 0; l < nl; ++l) {
                        st.mrec.push_back(xf[q * nl + l]);
                        xf[q * nl + l] = 0;
                    }
                    ++st.numRec;
                    break;
                  case Gate::R:
                    for (unsigned l = 0; l < nl; ++l) {
                        xf[q * nl + l] = 0;
                        // Z frames on freshly reset qubits are
                        // irrelevant; clear for determinism.
                        zf[q * nl + l] = 0;
                    }
                    break;
                  case Gate::RX:
                    for (unsigned l = 0; l < nl; ++l) {
                        zf[q * nl + l] = 0;
                        xf[q * nl + l] = 0;
                    }
                    break;
                  default:
                    TRAQ_PANIC("frame sim: unhandled meas/reset");
                }
            }
        } else if (inst.gate == Gate::DETECTOR) {
            const std::size_t base = out.detectors.size();
            out.detectors.resize(base + nl, 0);
            for (std::uint32_t lb : inst.targets) {
                const std::size_t rec = (st.numRec - lb) * nl;
                for (unsigned l = 0; l < nl; ++l)
                    out.detectors[base + l] ^= st.mrec[rec + l];
            }
        } else if (inst.gate == Gate::OBSERVABLE_INCLUDE) {
            const auto idx = static_cast<std::size_t>(inst.arg);
            for (std::uint32_t lb : inst.targets) {
                const std::size_t rec = (st.numRec - lb) * nl;
                for (unsigned l = 0; l < nl; ++l)
                    out.observables[idx * nl + l] ^= st.mrec[rec + l];
            }
        }
        // TICK: no-op.
    }
}

void
sampleIntoKernel(FrameSimState &st, const Circuit &circuit,
                 unsigned lanes, FrameBatch &out)
{
    // Dispatch once per batch to a lane-count-specialized body so
    // the per-lane inner loops unroll (and vectorize — one 512-bit
    // op per 8-lane plane at the avx512 level) for the common
    // widths; other widths take the generic runtime-lane path.
    switch (lanes) {
      case 1:
        sampleIntoBody<1>(st, circuit, lanes, out);
        break;
      case 2:
        sampleIntoBody<2>(st, circuit, lanes, out);
        break;
      case 4:
        sampleIntoBody<4>(st, circuit, lanes, out);
        break;
      case 8:
        sampleIntoBody<8>(st, circuit, lanes, out);
        break;
      default:
        sampleIntoBody<0>(st, circuit, lanes, out);
        break;
    }
}

/** In-place 64x64 bit-matrix transpose (recursive block swap, the
 *  Hacker's Delight scheme oriented for LSB-first bit numbering):
 *  output word j bit i == input word i bit j.  Each level swaps the
 *  high-bit half of the low rows with the low-bit half of the high
 *  rows — the main-diagonal transpose. */
inline void
transpose64(std::uint64_t a[64])
{
    std::uint64_t m = 0x00000000FFFFFFFFULL;
    for (unsigned j = 32; j; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
            const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
        }
    }
}

/**
 * Transpose lane-major bit planes into shot-major rows.  Plane p of
 * `planes` (words [p * lanes, (p + 1) * lanes)) lands in bit p of
 * the rows: row s (words [s * rowWords, (s + 1) * rowWords)) holds
 * plane p's shot-s bit at word p / 64, bit p % 64.  Shots whose
 * liveMask bit is clear come out all-zero.
 */
void
transposePlanes(const std::uint64_t *planes, std::size_t numPlanes,
                unsigned lanes,
                std::span<const std::uint64_t> liveMask,
                std::vector<std::uint64_t> &rows)
{
    const std::size_t rowWords = (numPlanes + 63) / 64;
    rows.resize(64ULL * lanes * rowWords);
    std::uint64_t tile[64];
    for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t mask = liveMask[l];
        for (std::size_t pw = 0; pw < rowWords; ++pw) {
            const std::size_t pBase = pw * 64;
            const std::size_t pEnd =
                std::min<std::size_t>(numPlanes, pBase + 64);
            std::uint64_t any = 0;
            for (std::size_t p = pBase; p < pEnd; ++p) {
                const std::uint64_t w =
                    planes[p * lanes + l] & mask;
                tile[p - pBase] = w;
                any |= w;
            }
            // Column pw of the 64 rows belonging to lane l.
            std::uint64_t *col =
                rows.data() + 64ULL * l * rowWords + pw;
            if (!any) {
                // Sparse fast path: an all-zero tile transposes to
                // an all-zero column, no shuffling needed.
                for (unsigned s = 0; s < 64; ++s)
                    col[s * rowWords] = 0;
                continue;
            }
            for (std::size_t p = pEnd; p < pBase + 64; ++p)
                tile[p - pBase] = 0;
            transpose64(tile);
            for (unsigned s = 0; s < 64; ++s)
                col[s * rowWords] = tile[s];
        }
    }
}

/** Stream a shot-major bit-row matrix into a CSR id list: row s's
 *  set bits (ascending) append to ids, offsets[s + 1] = total. */
void
rowsToCsr(const std::vector<std::uint64_t> &rows,
          std::size_t rowWords, std::uint64_t shots,
          std::vector<std::uint32_t> &offsets,
          std::vector<std::uint32_t> &ids)
{
    offsets.resize(shots + 1);
    offsets[0] = 0;
    ids.clear();
    const std::uint64_t *row = rows.data();
    for (std::uint64_t s = 0; s < shots; ++s, row += rowWords) {
        for (std::size_t w = 0; w < rowWords; ++w) {
            std::uint64_t word = row[w];
            const std::uint32_t base =
                static_cast<std::uint32_t>(w * 64);
            while (word) {
                ids.push_back(
                    base + static_cast<std::uint32_t>(
                               std::countr_zero(word)));
                word &= word - 1;
            }
        }
        offsets[s + 1] = static_cast<std::uint32_t>(ids.size());
    }
}

void
extractBlockKernel(const FrameBatch &batch,
                   std::span<const std::uint64_t> liveMask,
                   SyndromeBlock &out)
{
    const unsigned lanes = batch.lanes;
    TRAQ_REQUIRE(lanes >= 1, "batch has no lanes");
    TRAQ_REQUIRE(liveMask.size() == lanes,
                 "liveMask needs one word per lane");
    const std::uint64_t shots = batch.shots();
    const std::size_t numDet = batch.numDetectors();
    const std::size_t numObs = batch.numObservables();
    TRAQ_REQUIRE(numObs <= 32,
                 "SyndromeBlock packs observables into 32-bit masks");

    out.lanes = lanes;
    auto &rows = BlockScratchAccess::rowBits(out);

    // Detector planes: transpose to shot-major rows, then stream
    // each shot's row words into the CSR lists.  Ids ascend within a
    // shot by construction — the same order the scalar walk emits.
    transposePlanes(batch.detectors.data(), numDet, lanes, liveMask,
                    rows);
    rowsToCsr(rows, (numDet + 63) / 64, shots, out.offsets,
              out.defects);

    // Observable planes scatter into the per-shot flip masks with
    // the set-bit walk: there are at most 32 of them, so a transpose
    // buys nothing.
    out.observables.assign(shots, 0);
    for (std::size_t k = 0; k < numObs; ++k) {
        const std::uint32_t bit = 1u << k;
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.observables[k * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                out.observables[base + s] |= bit;
            }
        }
    }

    // Herald planes get the same transpose treatment; circuits
    // without heralded channels skip the transpose and emit all-zero
    // offset rows.
    const std::size_t numHer = batch.numHeraldChannels();
    if (numHer == 0) {
        out.heraldOffsets.assign(shots + 1, 0);
        out.heraldIds.clear();
        return;
    }
    transposePlanes(batch.heralds.data(), numHer, lanes, liveMask,
                    rows);
    rowsToCsr(rows, (numHer + 63) / 64, shots, out.heraldOffsets,
              out.heraldIds);
}

/** Truthful compile-time codegen of THIS translation unit. */
constexpr const char *
kernelCodegen()
{
#if defined(__AVX512F__)
    return "avx512f";
#elif defined(__AVX2__)
    return "avx2";
#else
    return "baseline";
#endif
}

} // namespace

const FrameKernels &
table()
{
    static const FrameKernels t{kernelCodegen(), &sampleIntoKernel,
                                &extractBlockKernel};
    return t;
}

} // namespace TRAQ_KERNEL_NS
} // namespace traq::sim::kernels
