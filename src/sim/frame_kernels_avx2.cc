/** AVX2 copy of the frame-sampler kernels.  CMake compiles this TU
 *  with -mavx2 when the compiler supports it; otherwise it is plain
 *  baseline code and resolveCpuDispatch never selects it
 *  (TRAQ_DISPATCH_NO_AVX2). */

#define TRAQ_KERNEL_NS avx2_level
#include "src/sim/frame_kernels_impl.hh"

namespace traq::sim::kernels {

const FrameKernels &
avx2Kernels()
{
    return avx2_level::table();
}

} // namespace traq::sim::kernels
