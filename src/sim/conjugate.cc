#include "src/sim/conjugate.hh"

#include "src/common/assert.hh"

namespace traq::sim {
namespace {

/** Local Pauli code: 0=I, 1=X, 2=Y, 3=Z. */
int
codeOf(const PauliString &p, std::size_t q)
{
    int x = p.xBit(q) ? 1 : 0;
    int z = p.zBit(q) ? 1 : 0;
    if (x && z)
        return 2;
    if (x)
        return 1;
    if (z)
        return 3;
    return 0;
}

void
setCode(PauliString &p, std::size_t q, int code)
{
    p.setX(q, code == 1 || code == 2);
    p.setZ(q, code == 2 || code == 3);
}

/**
 * Apply a single-qubit conjugation table: map[c] is the image code of
 * input code c, ph[c] the acquired phase exponent (power of i).
 */
void
applyTable(PauliString &p, std::size_t q, const int map[4],
           const int ph[4])
{
    int c = codeOf(p, q);
    p.setPhase(p.phase() + ph[c]);
    setCode(p, q, map[c]);
}

/**
 * Conjugate the two-qubit restriction of `p` at (a, b) through a gate
 * whose generator images are given (all with + sign, as is the case
 * for CX, CZ and SWAP).  Uses the exact decomposition
 * P_ab = i^{#Y} X_a^xa Z_a^za X_b^xb Z_b^zb.
 */
void
applyTwoQubit(PauliString &p, std::size_t a, std::size_t b,
              const PauliString &imgXa, const PauliString &imgZa,
              const PauliString &imgXb, const PauliString &imgZb)
{
    const std::size_t n = p.numQubits();
    bool xa = p.xBit(a), za = p.zBit(a);
    bool xb = p.xBit(b), zb = p.zBit(b);
    int yCount = (xa && za ? 1 : 0) + (xb && zb ? 1 : 0);

    PauliString acc(n);
    acc.setPhase(yCount);   // Y = i·X·Z per Y site
    if (xa)
        acc.multiplyBy(imgXa);
    if (za)
        acc.multiplyBy(imgZa);
    if (xb)
        acc.multiplyBy(imgXb);
    if (zb)
        acc.multiplyBy(imgZb);

    setCode(p, a, 0);
    setCode(p, b, 0);
    p.multiplyBy(acc);
}

PauliString
single(std::size_t n, std::size_t q, char c)
{
    PauliString p(n);
    p.setPauli(q, c);
    return p;
}

PauliString
pair(std::size_t n, std::size_t qa, char ca, std::size_t qb, char cb)
{
    PauliString p(n);
    p.setPauli(qa, ca);
    p.setPauli(qb, cb);
    return p;
}

} // namespace

PauliString
conjugateByCircuit(const PauliString &p, const Circuit &circuit)
{
    PauliString out = p;
    const std::size_t n = out.numQubits();

    // Single-qubit conjugation tables (image code, phase) for
    // inputs I, X, Y, Z.
    static const int hMap[4] = {0, 3, 2, 1};
    static const int hPh[4] = {0, 0, 2, 0};           // H Y H = -Y
    static const int sMap[4] = {0, 2, 1, 3};
    static const int sPh[4] = {0, 0, 2, 0};           // S: X->Y, Y->-X
    static const int sdMap[4] = {0, 2, 1, 3};
    static const int sdPh[4] = {0, 2, 0, 0};          // S^: X->-Y, Y->X
    static const int xMap[4] = {0, 1, 2, 3};
    static const int xPh[4] = {0, 0, 2, 2};
    static const int yMap[4] = {0, 1, 2, 3};
    static const int yPh[4] = {0, 2, 0, 2};
    static const int zMap[4] = {0, 1, 2, 3};
    static const int zPh[4] = {0, 2, 2, 0};
    static const int sxMap[4] = {0, 1, 3, 2};
    static const int sxPh[4] = {0, 0, 0, 2};   // SQRT_X: Y->Z, Z->-Y
    static const int sxdMap[4] = {0, 1, 3, 2};
    static const int sxdPh[4] = {0, 0, 2, 0};  // inverse: Y->-Z, Z->Y

    for (const auto &inst : circuit.instructions()) {
        const GateInfo &info = gateInfo(inst.gate);
        if (info.annotation)
            continue;
        TRAQ_REQUIRE(info.unitary,
                     "conjugateByCircuit: circuit must be unitary");
        switch (inst.gate) {
          case Gate::I:
            break;
          case Gate::H:
            for (auto q : inst.targets)
                applyTable(out, q, hMap, hPh);
            break;
          case Gate::S:
            for (auto q : inst.targets)
                applyTable(out, q, sMap, sPh);
            break;
          case Gate::S_DAG:
            for (auto q : inst.targets)
                applyTable(out, q, sdMap, sdPh);
            break;
          case Gate::X:
            for (auto q : inst.targets)
                applyTable(out, q, xMap, xPh);
            break;
          case Gate::Y:
            for (auto q : inst.targets)
                applyTable(out, q, yMap, yPh);
            break;
          case Gate::Z:
            for (auto q : inst.targets)
                applyTable(out, q, zMap, zPh);
            break;
          case Gate::SQRT_X:
            for (auto q : inst.targets)
                applyTable(out, q, sxMap, sxPh);
            break;
          case Gate::SQRT_X_DAG:
            for (auto q : inst.targets)
                applyTable(out, q, sxdMap, sxdPh);
            break;
          case Gate::CX:
            for (std::size_t i = 0; i + 1 < inst.targets.size();
                 i += 2) {
                std::size_t c = inst.targets[i];
                std::size_t t = inst.targets[i + 1];
                applyTwoQubit(out, c, t,
                              pair(n, c, 'X', t, 'X'),   // X_c image
                              single(n, c, 'Z'),         // Z_c image
                              single(n, t, 'X'),         // X_t image
                              pair(n, c, 'Z', t, 'Z'));  // Z_t image
            }
            break;
          case Gate::CZ:
            for (std::size_t i = 0; i + 1 < inst.targets.size();
                 i += 2) {
                std::size_t a = inst.targets[i];
                std::size_t b = inst.targets[i + 1];
                applyTwoQubit(out, a, b,
                              pair(n, a, 'X', b, 'Z'),   // X_a image
                              single(n, a, 'Z'),
                              pair(n, a, 'Z', b, 'X'),   // X_b image
                              single(n, b, 'Z'));
            }
            break;
          case Gate::SWAP:
            for (std::size_t i = 0; i + 1 < inst.targets.size();
                 i += 2) {
                std::size_t a = inst.targets[i];
                std::size_t b = inst.targets[i + 1];
                int ca = codeOf(out, a);
                int cb = codeOf(out, b);
                setCode(out, a, cb);
                setCode(out, b, ca);
            }
            break;
          default:
            TRAQ_PANIC("conjugateByCircuit: unhandled gate");
        }
    }
    return out;
}

} // namespace traq::sim
