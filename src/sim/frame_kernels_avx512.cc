/** AVX-512 copy of the frame-sampler kernels.  CMake compiles this
 *  TU with -mavx512f -mavx512bw -mavx2 when the compiler supports
 *  them; otherwise it is plain baseline code and resolveCpuDispatch
 *  never selects it (TRAQ_DISPATCH_NO_AVX512). */

#define TRAQ_KERNEL_NS avx512_level
#include "src/sim/frame_kernels_impl.hh"

namespace traq::sim::kernels {

const FrameKernels &
avx512Kernels()
{
    return avx512_level::table();
}

} // namespace traq::sim::kernels
