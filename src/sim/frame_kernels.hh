/**
 * @file
 * Runtime-dispatched frame-sampler kernels.
 *
 * The hot bodies of the frame simulator — the per-gate lane loops of
 * sampleInto and the bit-matrix-transpose syndrome extraction — are
 * compiled three times into one binary, once per CpuDispatch level
 * (baseline / AVX2 / AVX-512; see CMakeLists per-TU arch flags), and
 * selected at run time via cpuid or the TRAQ_CPU_DISPATCH override.
 * Every level runs the *same* plain 64-bit source, so all levels are
 * bit-identical by construction; the ISA only changes how the
 * compiler schedules the lane loops (one 512-bit op per 8-lane plane
 * at the avx512 level instead of eight scalar ops).
 *
 * Callers resolve a level once (per run, or at FrameSimulator
 * construction) and hold the returned table: dispatch costs one
 * indirect call per *batch*, not per instruction.
 */

#ifndef TRAQ_SIM_FRAME_KERNELS_HH
#define TRAQ_SIM_FRAME_KERNELS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/word.hh"
#include "src/sim/frame.hh"

namespace traq::sim::kernels {

/** One dispatch level's compiled kernel entry points. */
struct FrameKernels
{
    /**
     * Vector codegen this copy was actually compiled with
     * ("avx512f" / "avx2" / "baseline") — truthful per translation
     * unit, so a build whose compiler lacks -mavx2 reports baseline
     * for every level.
     */
    const char *codegen;
    /** One whole batch of the circuit (the sampleInto hot body). */
    void (*sampleInto)(FrameSimState &st, const Circuit &circuit,
                       unsigned lanes, FrameBatch &out);
    /** Blocked bit-matrix-transpose CSR extraction; bit-identical
     *  to extractSyndromeBlockScalar (locked by tests). */
    void (*extractBlock)(const FrameBatch &batch,
                         std::span<const std::uint64_t> liveMask,
                         SyndromeBlock &out);
};

/** The three compiled copies (always present, even when the build
 *  could not enable the matching ISA — then they are baseline code
 *  and resolveCpuDispatch refuses to select them). */
const FrameKernels &baselineKernels();
const FrameKernels &avx2Kernels();
const FrameKernels &avx512Kernels();

/**
 * Kernel table for a dispatch level.  Auto resolves via
 * resolveCpuDispatch (TRAQ_CPU_DISPATCH env var, else the best
 * cpuid-supported level) and inherits its loud-failure contract.
 */
const FrameKernels &frameKernels(CpuDispatch level);

/** Keyhole into SyndromeBlock's private scratch for the per-level
 *  kernel namespaces (they cannot all be friends by name). */
struct BlockScratchAccess
{
    static std::vector<std::uint32_t> &cursor(SyndromeBlock &b)
    {
        return b.cursor_;
    }
    /** Shot-major transposed bit rows (transpose extraction). */
    static std::vector<std::uint64_t> &rowBits(SyndromeBlock &b)
    {
        return b.rowBits_;
    }
};

} // namespace traq::sim::kernels

#endif // TRAQ_SIM_FRAME_KERNELS_HH
