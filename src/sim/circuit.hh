/**
 * @file
 * Stabilizer circuit intermediate representation.
 *
 * A Circuit is a flat list of instructions over integer qubit indices.
 * DETECTOR and OBSERVABLE_INCLUDE instructions reference prior
 * measurements by lookback (k means "the k-th most recent measurement",
 * i.e. Stim's rec[-k]), which makes circuits composable: appending more
 * rounds never invalidates existing annotations.
 *
 * The textual format is a Stim-compatible subset, e.g.:
 *
 *     R 0 1 2
 *     H 0
 *     CX 0 1 1 2
 *     X_ERROR(0.001) 0 1
 *     M 0 1
 *     DETECTOR rec[-1] rec[-2]
 *     OBSERVABLE_INCLUDE(0) rec[-1]
 */

#ifndef TRAQ_SIM_CIRCUIT_HH
#define TRAQ_SIM_CIRCUIT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/gates.hh"

namespace traq::sim {

/** One instruction: a gate, an optional argument, and its targets. */
struct Instruction
{
    Gate gate = Gate::TICK;
    /** Noise probability, or observable index for OBSERVABLE_INCLUDE. */
    double arg = 0.0;
    /**
     * Qubit indices, or measurement lookbacks for DETECTOR /
     * OBSERVABLE_INCLUDE (value k refers to rec[-k], k >= 1).
     */
    std::vector<std::uint32_t> targets;
};

/** A stabilizer circuit plus its record/annotation bookkeeping. */
class Circuit
{
  public:
    /** Append a fully-formed instruction (validated). */
    void append(const Instruction &inst);

    /** Append by gate kind. */
    void append(Gate g, std::vector<std::uint32_t> targets,
                double arg = 0.0);

    /** Append by gate name (for parser and tests). */
    void append(std::string_view name,
                std::vector<std::uint32_t> targets, double arg = 0.0);

    /** @name Convenience builders. */
    /// @{
    void h(std::uint32_t q) { append(Gate::H, {q}); }
    void s(std::uint32_t q) { append(Gate::S, {q}); }
    void sdag(std::uint32_t q) { append(Gate::S_DAG, {q}); }
    void x(std::uint32_t q) { append(Gate::X, {q}); }
    void y(std::uint32_t q) { append(Gate::Y, {q}); }
    void z(std::uint32_t q) { append(Gate::Z, {q}); }
    void cx(std::uint32_t c, std::uint32_t t) { append(Gate::CX, {c, t}); }
    void cz(std::uint32_t a, std::uint32_t b) { append(Gate::CZ, {a, b}); }
    void swapq(std::uint32_t a, std::uint32_t b)
    { append(Gate::SWAP, {a, b}); }
    void r(std::uint32_t q) { append(Gate::R, {q}); }
    void rx(std::uint32_t q) { append(Gate::RX, {q}); }
    void m(std::uint32_t q) { append(Gate::M, {q}); }
    void mx(std::uint32_t q) { append(Gate::MX, {q}); }
    void mr(std::uint32_t q) { append(Gate::MR, {q}); }
    void tick() { append(Gate::TICK, {}); }
    /** DETECTOR with lookbacks (k => rec[-k]). */
    void detector(std::vector<std::uint32_t> lookbacks)
    { append(Gate::DETECTOR, std::move(lookbacks)); }
    /** OBSERVABLE_INCLUDE(index) with lookbacks. */
    void observable(std::uint32_t index,
                    std::vector<std::uint32_t> lookbacks)
    { append(Gate::OBSERVABLE_INCLUDE, std::move(lookbacks),
             static_cast<double>(index)); }
    void xError(double p, std::vector<std::uint32_t> qs)
    { append(Gate::X_ERROR, std::move(qs), p); }
    void zError(double p, std::vector<std::uint32_t> qs)
    { append(Gate::Z_ERROR, std::move(qs), p); }
    void depolarize1(double p, std::vector<std::uint32_t> qs)
    { append(Gate::DEPOLARIZE1, std::move(qs), p); }
    void depolarize2(double p, std::vector<std::uint32_t> qPairs)
    { append(Gate::DEPOLARIZE2, std::move(qPairs), p); }
    void heraldedErase(double p, std::vector<std::uint32_t> qs)
    { append(Gate::HERALDED_ERASE, std::move(qs), p); }
    void correlatedPauli2(double p, std::vector<std::uint32_t> qPairs)
    { append(Gate::CORRELATED_PAULI2, std::move(qPairs), p); }
    /// @}

    /** Concatenate another circuit (annotations stay valid). */
    void append(const Circuit &other);

    const std::vector<Instruction> &instructions() const
    { return insts_; }

    /** One past the largest qubit index used. */
    std::uint32_t numQubits() const { return numQubits_; }
    std::uint64_t numMeasurements() const { return numMeasurements_; }
    std::uint64_t numDetectors() const { return numDetectors_; }
    /** One past the largest observable index used. */
    std::uint32_t numObservables() const { return numObservables_; }
    /**
     * Herald channels declared so far: each HERALDED_ERASE target is
     * one channel, numbered in instruction order.  The frame sampler
     * emits one herald bit-plane per channel and the DEM tags the
     * erasure's error mechanisms with the same ids.
     */
    std::uint32_t numHeraldChannels() const
    { return numHeraldChannels_; }

    /** Total instruction target count (a cheap size proxy). */
    std::size_t totalTargets() const;

    /** Render in the textual format. */
    std::string str() const;

    /** Parse the textual format; throws FatalError on bad input. */
    static Circuit parse(std::string_view text);

  private:
    std::vector<Instruction> insts_;
    std::uint32_t numQubits_ = 0;
    std::uint64_t numMeasurements_ = 0;
    std::uint64_t numDetectors_ = 0;
    std::uint32_t numObservables_ = 0;
    std::uint32_t numHeraldChannels_ = 0;

    void validate(const Instruction &inst) const;
    void bump(const Instruction &inst);
};

} // namespace traq::sim

#endif // TRAQ_SIM_CIRCUIT_HH
