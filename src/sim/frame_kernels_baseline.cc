/** Baseline (portable x86-64) copy of the frame-sampler kernels.
 *  No extra arch flags: this TU compiles at whatever level the core
 *  library uses (so TRAQ_ENABLE_AVX2 builds report avx2 here too). */

#define TRAQ_KERNEL_NS baseline_level
#include "src/sim/frame_kernels_impl.hh"

namespace traq::sim::kernels {

const FrameKernels &
baselineKernels()
{
    return baseline_level::table();
}

} // namespace traq::sim::kernels
