#include "src/sim/frame.hh"

#include <bit>

#include "src/common/assert.hh"
#include "src/common/math.hh"

namespace traq::sim {
namespace {

/** Single-qubit channels fusable into one plane draw. */
bool
fusableNoise(Gate g)
{
    return g == Gate::X_ERROR || g == Gate::Z_ERROR ||
           g == Gate::Y_ERROR || g == Gate::DEPOLARIZE1;
}

/** Probability of the fused channel for two back-to-back copies. */
double
fuseProb(Gate g, double p1, double p2)
{
    if (g == Gate::DEPOLARIZE1)
        // Composition of depolarizing channels is depolarizing:
        // the Pauli-invariant factor (1 - 4p/3) multiplies.
        return p1 + p2 - 4.0 * p1 * p2 / 3.0;
    // Independent flips combine by XOR.
    return pXor(p1, p2);
}

} // namespace

void
extractSyndromes(const FrameBatch &batch,
                 std::span<const std::uint64_t> liveMask,
                 std::span<std::vector<std::uint32_t>> out)
{
    const unsigned lanes = batch.lanes;
    TRAQ_REQUIRE(lanes >= 1, "batch has no lanes");
    TRAQ_REQUIRE(liveMask.size() == lanes,
                 "liveMask needs one word per lane");
    TRAQ_REQUIRE(out.size() >= batch.shots(),
                 "syndrome output must cover the batch");
    const std::size_t numDet = batch.numDetectors();
    for (std::size_t d = 0; d < numDet; ++d) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.detectors[d * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                out[base + s].push_back(
                    static_cast<std::uint32_t>(d));
            }
        }
    }
}

void
extractSyndromeBlock(const FrameBatch &batch,
                     std::span<const std::uint64_t> liveMask,
                     SyndromeBlock &out)
{
    const unsigned lanes = batch.lanes;
    TRAQ_REQUIRE(lanes >= 1, "batch has no lanes");
    TRAQ_REQUIRE(liveMask.size() == lanes,
                 "liveMask needs one word per lane");
    const std::uint64_t shots = batch.shots();
    const std::size_t numDet = batch.numDetectors();
    const std::size_t numObs = batch.numObservables();
    TRAQ_REQUIRE(numObs <= 32,
                 "SyndromeBlock packs observables into 32-bit masks");

    out.lanes = lanes;
    out.offsets.assign(shots + 1, 0);
    out.observables.assign(shots, 0);

    // Counting pass: offsets[s + 1] accumulates shot s's defect
    // count.  Only set bits are visited; zero words — the common
    // case below threshold — cost one compare.
    for (std::size_t d = 0; d < numDet; ++d) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.detectors[d * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                ++out.offsets[base + s + 1];
            }
        }
    }
    for (std::uint64_t s = 0; s < shots; ++s)
        out.offsets[s + 1] += out.offsets[s];
    out.defects.resize(out.offsets[shots]);

    // Fill pass: repeat the walk with per-shot cursors.  Detector
    // ids ascend with d, so each shot's syndrome comes out sorted —
    // same order extractSyndromes appends in.
    out.cursor_.assign(out.offsets.begin(), out.offsets.end() - 1);
    for (std::size_t d = 0; d < numDet; ++d) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.detectors[d * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                out.defects[out.cursor_[base + s]++] =
                    static_cast<std::uint32_t>(d);
            }
        }
    }

    // Observable planes scatter into the per-shot flip masks the
    // same way (set bits only — no per-shot transpose loop).
    for (std::size_t k = 0; k < numObs; ++k) {
        const std::uint32_t bit = 1u << k;
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.observables[k * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                out.observables[base + s] |= bit;
            }
        }
    }

    // Herald planes get the same two-pass CSR treatment; channel ids
    // ascend with the plane index, so each shot's list comes out
    // sorted.  Circuits without heralded channels pay two assigns
    // and skip both loops.
    const std::size_t numHer = batch.numHeraldChannels();
    out.heraldOffsets.assign(shots + 1, 0);
    for (std::size_t c = 0; c < numHer; ++c) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.heralds[c * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                ++out.heraldOffsets[base + s + 1];
            }
        }
    }
    for (std::uint64_t s = 0; s < shots; ++s)
        out.heraldOffsets[s + 1] += out.heraldOffsets[s];
    out.heraldIds.resize(out.heraldOffsets[shots]);
    if (numHer) {
        out.cursor_.assign(out.heraldOffsets.begin(),
                           out.heraldOffsets.end() - 1);
        for (std::size_t c = 0; c < numHer; ++c) {
            for (unsigned l = 0; l < lanes; ++l) {
                std::uint64_t word =
                    batch.heralds[c * lanes + l] & liveMask[l];
                const std::size_t base = 64u * l;
                while (word) {
                    const int s = std::countr_zero(word);
                    word &= word - 1;
                    out.heraldIds[out.cursor_[base + s]++] =
                        static_cast<std::uint32_t>(c);
                }
            }
        }
    }
}

FrameSimulator::FrameSimulator(std::uint64_t seed, unsigned lanes)
    : rng_(seed), lanes_(lanes)
{
    TRAQ_REQUIRE(lanes_ >= 1, "frame sim needs at least one lane");
}

template <unsigned L>
void
FrameSimulator::applyNoise(const Instruction &inst, double p,
                           unsigned lanes, FrameBatch &out)
{
    const unsigned nl = L ? L : lanes;
    std::uint64_t *e = plane_.data();
    switch (inst.gate) {
      case Gate::X_ERROR:
        for (std::uint32_t q : inst.targets) {
            rng_.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l)
                xf_[q * nl + l] ^= e[l];
        }
        break;
      case Gate::Z_ERROR:
        for (std::uint32_t q : inst.targets) {
            rng_.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l)
                zf_[q * nl + l] ^= e[l];
        }
        break;
      case Gate::Y_ERROR:
        for (std::uint32_t q : inst.targets) {
            rng_.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                xf_[q * nl + l] ^= e[l];
                zf_[q * nl + l] ^= e[l];
            }
        }
        break;
      case Gate::DEPOLARIZE1:
        for (std::uint32_t q : inst.targets) {
            rng_.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = e[l];
                if (!rest)
                    continue;
                // For each erred shot pick X, Y or Z uniformly.
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    switch (rng_.below(3)) {
                      case 0:
                        xf_[q * nl + l] ^= bit;
                        break;
                      case 1:
                        xf_[q * nl + l] ^= bit;
                        zf_[q * nl + l] ^= bit;
                        break;
                      default:
                        zf_[q * nl + l] ^= bit;
                        break;
                    }
                }
            }
        }
        break;
      case Gate::HERALDED_ERASE:
        // One herald plane per target, appended in instruction /
        // target order so plane c is channel c of the circuit's
        // numbering (the same order the DEM assigns channel tags).
        // The erased qubit is replaced by the maximally mixed state:
        // I, X, Y or Z with probability 1/4 each, herald set either
        // way.
        for (std::uint32_t q : inst.targets) {
            rng_.bernoulliPlane(p, e, nl);
            const std::size_t base = out.heralds.size();
            out.heralds.insert(out.heralds.end(), e, e + nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = out.heralds[base + l];
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    switch (rng_.below(4)) {
                      case 0:
                        break;  // I: erased but frame unchanged
                      case 1:
                        xf_[q * nl + l] ^= bit;
                        break;
                      case 2:
                        xf_[q * nl + l] ^= bit;
                        zf_[q * nl + l] ^= bit;
                        break;
                      default:
                        zf_[q * nl + l] ^= bit;
                        break;
                    }
                }
            }
        }
        break;
      case Gate::CORRELATED_PAULI2:
        for (std::size_t i = 0; i + 1 < inst.targets.size(); i += 2) {
            const std::uint32_t a = inst.targets[i];
            const std::uint32_t b = inst.targets[i + 1];
            rng_.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = e[l];
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    // XX, YY or ZZ uniformly — both qubits get the
                    // same Pauli (the correlation is the point).
                    switch (rng_.below(3)) {
                      case 0:
                        xf_[a * nl + l] ^= bit;
                        xf_[b * nl + l] ^= bit;
                        break;
                      case 1:
                        xf_[a * nl + l] ^= bit;
                        zf_[a * nl + l] ^= bit;
                        xf_[b * nl + l] ^= bit;
                        zf_[b * nl + l] ^= bit;
                        break;
                      default:
                        zf_[a * nl + l] ^= bit;
                        zf_[b * nl + l] ^= bit;
                        break;
                    }
                }
            }
        }
        break;
      case Gate::DEPOLARIZE2:
        for (std::size_t i = 0; i + 1 < inst.targets.size(); i += 2) {
            const std::uint32_t a = inst.targets[i];
            const std::uint32_t b = inst.targets[i + 1];
            rng_.bernoulliPlane(p, e, nl);
            for (unsigned l = 0; l < nl; ++l) {
                std::uint64_t rest = e[l];
                while (rest) {
                    const int s = std::countr_zero(rest);
                    rest &= rest - 1;
                    const std::uint64_t bit = 1ULL << s;
                    const std::uint64_t k = rng_.below(15) + 1;
                    const std::size_t pa = k / 4, pb = k % 4;
                    if (pa == 1 || pa == 2)
                        xf_[a * nl + l] ^= bit;
                    if (pa == 2 || pa == 3)
                        zf_[a * nl + l] ^= bit;
                    if (pb == 1 || pb == 2)
                        xf_[b * nl + l] ^= bit;
                    if (pb == 2 || pb == 3)
                        zf_[b * nl + l] ^= bit;
                }
            }
        }
        break;
      default:
        TRAQ_PANIC("applyNoise: not a noise instruction");
    }
}

FrameBatch
FrameSimulator::sample(const Circuit &circuit)
{
    FrameBatch out;
    sampleInto(circuit, out);
    return out;
}

void
FrameSimulator::sampleInto(const Circuit &circuit, FrameBatch &out)
{
    // Dispatch once per batch to a lane-count-specialized body so
    // the per-lane inner loops unroll (and can vectorize — one
    // 256-bit op per 4-lane plane when the build enables AVX2) for
    // the common widths; other widths take the generic runtime-lane
    // path.
    switch (lanes_) {
      case 1:
        sampleIntoImpl<1>(circuit, out);
        break;
      case 2:
        sampleIntoImpl<2>(circuit, out);
        break;
      case 4:
        sampleIntoImpl<4>(circuit, out);
        break;
      case 8:
        sampleIntoImpl<8>(circuit, out);
        break;
      default:
        sampleIntoImpl<0>(circuit, out);
        break;
    }
}

template <unsigned L>
void
FrameSimulator::sampleIntoImpl(const Circuit &circuit,
                               FrameBatch &out)
{
    const unsigned nl = L ? L : lanes_;
    const std::size_t n = circuit.numQubits();
    xf_.assign(n * nl, 0);
    zf_.assign(n * nl, 0);
    mrec_.clear();
    mrec_.reserve(circuit.numMeasurements() * nl);
    numRec_ = 0;
    plane_.resize(nl);

    out.lanes = nl;
    out.detectors.clear();
    out.detectors.reserve(circuit.numDetectors() * nl);
    out.observables.assign(circuit.numObservables() * nl, 0);
    out.heralds.clear();
    out.heralds.reserve(circuit.numHeraldChannels() * nl);

    const auto &insts = circuit.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction &inst = insts[i];
        const GateInfo &info = gateInfo(inst.gate);
        if (info.unitary) {
            switch (inst.gate) {
              case Gate::I:
              case Gate::X:
              case Gate::Y:
              case Gate::Z:
                // Deterministic Paulis commute into the reference.
                break;
              case Gate::H:
                for (std::uint32_t q : inst.targets)
                    for (unsigned l = 0; l < nl; ++l)
                        std::swap(xf_[q * nl + l], zf_[q * nl + l]);
                break;
              case Gate::S:
              case Gate::S_DAG:
                // S X S^-1 = Y: an X frame gains a Z component; Z
                // frames are unchanged.  Same frame action for S_DAG.
                for (std::uint32_t q : inst.targets)
                    for (unsigned l = 0; l < nl; ++l)
                        zf_[q * nl + l] ^= xf_[q * nl + l];
                break;
              case Gate::SQRT_X:
              case Gate::SQRT_X_DAG:
                // Z frame gains an X component.
                for (std::uint32_t q : inst.targets)
                    for (unsigned l = 0; l < nl; ++l)
                        xf_[q * nl + l] ^= zf_[q * nl + l];
                break;
              case Gate::CX:
                for (std::size_t t = 0; t + 1 < inst.targets.size();
                     t += 2) {
                    const std::uint32_t a = inst.targets[t];
                    const std::uint32_t b = inst.targets[t + 1];
                    for (unsigned l = 0; l < nl; ++l) {
                        xf_[b * nl + l] ^= xf_[a * nl + l];
                        zf_[a * nl + l] ^= zf_[b * nl + l];
                    }
                }
                break;
              case Gate::CZ:
                for (std::size_t t = 0; t + 1 < inst.targets.size();
                     t += 2) {
                    const std::uint32_t a = inst.targets[t];
                    const std::uint32_t b = inst.targets[t + 1];
                    for (unsigned l = 0; l < nl; ++l) {
                        zf_[a * nl + l] ^= xf_[b * nl + l];
                        zf_[b * nl + l] ^= xf_[a * nl + l];
                    }
                }
                break;
              case Gate::SWAP:
                for (std::size_t t = 0; t + 1 < inst.targets.size();
                     t += 2) {
                    const std::uint32_t a = inst.targets[t];
                    const std::uint32_t b = inst.targets[t + 1];
                    for (unsigned l = 0; l < nl; ++l) {
                        std::swap(xf_[a * nl + l], xf_[b * nl + l]);
                        std::swap(zf_[a * nl + l], zf_[b * nl + l]);
                    }
                }
                break;
              default:
                TRAQ_PANIC("frame sim: unhandled unitary");
            }
        } else if (info.noise) {
            // Fuse runs of the same single-qubit channel on the same
            // target list into one plane draw.
            double p = inst.arg;
            while (fusableNoise(inst.gate) &&
                   i + 1 < insts.size() &&
                   insts[i + 1].gate == inst.gate &&
                   insts[i + 1].targets == inst.targets) {
                p = fuseProb(inst.gate, p, insts[i + 1].arg);
                ++i;
            }
            applyNoise<L>(inst, p, nl, out);
        } else if (info.measurement || info.reset) {
            for (std::uint32_t q : inst.targets) {
                switch (inst.gate) {
                  case Gate::M:
                    for (unsigned l = 0; l < nl; ++l)
                        mrec_.push_back(xf_[q * nl + l]);
                    ++numRec_;
                    break;
                  case Gate::MX:
                    for (unsigned l = 0; l < nl; ++l)
                        mrec_.push_back(zf_[q * nl + l]);
                    ++numRec_;
                    break;
                  case Gate::MR:
                    for (unsigned l = 0; l < nl; ++l) {
                        mrec_.push_back(xf_[q * nl + l]);
                        xf_[q * nl + l] = 0;
                    }
                    ++numRec_;
                    break;
                  case Gate::R:
                    for (unsigned l = 0; l < nl; ++l) {
                        xf_[q * nl + l] = 0;
                        // Z frames on freshly reset qubits are
                        // irrelevant; clear for determinism.
                        zf_[q * nl + l] = 0;
                    }
                    break;
                  case Gate::RX:
                    for (unsigned l = 0; l < nl; ++l) {
                        zf_[q * nl + l] = 0;
                        xf_[q * nl + l] = 0;
                    }
                    break;
                  default:
                    TRAQ_PANIC("frame sim: unhandled meas/reset");
                }
            }
        } else if (inst.gate == Gate::DETECTOR) {
            const std::size_t base = out.detectors.size();
            out.detectors.resize(base + nl, 0);
            for (std::uint32_t lb : inst.targets) {
                const std::size_t rec = (numRec_ - lb) * nl;
                for (unsigned l = 0; l < nl; ++l)
                    out.detectors[base + l] ^= mrec_[rec + l];
            }
        } else if (inst.gate == Gate::OBSERVABLE_INCLUDE) {
            const auto idx = static_cast<std::size_t>(inst.arg);
            for (std::uint32_t lb : inst.targets) {
                const std::size_t rec = (numRec_ - lb) * nl;
                for (unsigned l = 0; l < nl; ++l)
                    out.observables[idx * nl + l] ^= mrec_[rec + l];
            }
        }
        // TICK: no-op.
    }
}

std::vector<std::uint64_t>
FrameSimulator::countObservableFlips(const Circuit &circuit,
                                     std::uint64_t minShots,
                                     std::uint64_t *shotsOut)
{
    std::vector<std::uint64_t> counts(circuit.numObservables(), 0);
    std::uint64_t shots = 0;
    FrameBatch batch;
    while (shots < minShots) {
        sampleInto(circuit, batch);
        for (std::size_t k = 0; k < counts.size(); ++k)
            for (unsigned l = 0; l < lanes_; ++l)
                counts[k] += static_cast<std::uint64_t>(
                    std::popcount(batch.observables[k * lanes_ + l]));
        shots += batch.shots();
    }
    if (shotsOut)
        *shotsOut = shots;
    return counts;
}

} // namespace traq::sim
