#include "src/sim/frame.hh"

#include <bit>

#include "src/common/assert.hh"
#include "src/sim/frame_kernels.hh"

namespace traq::sim {

void
extractSyndromes(const FrameBatch &batch,
                 std::span<const std::uint64_t> liveMask,
                 std::span<std::vector<std::uint32_t>> out)
{
    const unsigned lanes = batch.lanes;
    TRAQ_REQUIRE(lanes >= 1, "batch has no lanes");
    TRAQ_REQUIRE(liveMask.size() == lanes,
                 "liveMask needs one word per lane");
    TRAQ_REQUIRE(out.size() >= batch.shots(),
                 "syndrome output must cover the batch");
    const std::size_t numDet = batch.numDetectors();
    for (std::size_t d = 0; d < numDet; ++d) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.detectors[d * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                out[base + s].push_back(
                    static_cast<std::uint32_t>(d));
            }
        }
    }
}

void
extractSyndromeBlock(const FrameBatch &batch,
                     std::span<const std::uint64_t> liveMask,
                     SyndromeBlock &out)
{
    kernels::frameKernels(CpuDispatch::Auto)
        .extractBlock(batch, liveMask, out);
}

void
extractSyndromeBlockScalar(const FrameBatch &batch,
                           std::span<const std::uint64_t> liveMask,
                           SyndromeBlock &out)
{
    const unsigned lanes = batch.lanes;
    TRAQ_REQUIRE(lanes >= 1, "batch has no lanes");
    TRAQ_REQUIRE(liveMask.size() == lanes,
                 "liveMask needs one word per lane");
    const std::uint64_t shots = batch.shots();
    const std::size_t numDet = batch.numDetectors();
    const std::size_t numObs = batch.numObservables();
    TRAQ_REQUIRE(numObs <= 32,
                 "SyndromeBlock packs observables into 32-bit masks");

    out.lanes = lanes;
    out.offsets.assign(shots + 1, 0);
    out.observables.assign(shots, 0);

    // Counting pass: offsets[s + 1] accumulates shot s's defect
    // count.  Only set bits are visited; zero words — the common
    // case below threshold — cost one compare.
    for (std::size_t d = 0; d < numDet; ++d) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.detectors[d * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                ++out.offsets[base + s + 1];
            }
        }
    }
    for (std::uint64_t s = 0; s < shots; ++s)
        out.offsets[s + 1] += out.offsets[s];
    out.defects.resize(out.offsets[shots]);

    // Fill pass: repeat the walk with per-shot cursors.  Detector
    // ids ascend with d, so each shot's syndrome comes out sorted —
    // same order extractSyndromes appends in.
    out.cursor_.assign(out.offsets.begin(), out.offsets.end() - 1);
    for (std::size_t d = 0; d < numDet; ++d) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.detectors[d * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                out.defects[out.cursor_[base + s]++] =
                    static_cast<std::uint32_t>(d);
            }
        }
    }

    // Observable planes scatter into the per-shot flip masks the
    // same way (set bits only — no per-shot transpose loop).
    for (std::size_t k = 0; k < numObs; ++k) {
        const std::uint32_t bit = 1u << k;
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.observables[k * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                out.observables[base + s] |= bit;
            }
        }
    }

    // Herald planes get the same two-pass CSR treatment; channel ids
    // ascend with the plane index, so each shot's list comes out
    // sorted.  Circuits without heralded channels pay two assigns
    // and skip both loops.
    const std::size_t numHer = batch.numHeraldChannels();
    out.heraldOffsets.assign(shots + 1, 0);
    for (std::size_t c = 0; c < numHer; ++c) {
        for (unsigned l = 0; l < lanes; ++l) {
            std::uint64_t word =
                batch.heralds[c * lanes + l] & liveMask[l];
            const std::size_t base = 64u * l;
            while (word) {
                const int s = std::countr_zero(word);
                word &= word - 1;
                ++out.heraldOffsets[base + s + 1];
            }
        }
    }
    for (std::uint64_t s = 0; s < shots; ++s)
        out.heraldOffsets[s + 1] += out.heraldOffsets[s];
    out.heraldIds.resize(out.heraldOffsets[shots]);
    if (numHer) {
        out.cursor_.assign(out.heraldOffsets.begin(),
                           out.heraldOffsets.end() - 1);
        for (std::size_t c = 0; c < numHer; ++c) {
            for (unsigned l = 0; l < lanes; ++l) {
                std::uint64_t word =
                    batch.heralds[c * lanes + l] & liveMask[l];
                const std::size_t base = 64u * l;
                while (word) {
                    const int s = std::countr_zero(word);
                    word &= word - 1;
                    out.heraldIds[out.cursor_[base + s]++] =
                        static_cast<std::uint32_t>(c);
                }
            }
        }
    }
}

FrameSimulator::FrameSimulator(std::uint64_t seed, unsigned lanes,
                               CpuDispatch dispatch)
    : st_(seed), lanes_(lanes),
      kernels_(&kernels::frameKernels(dispatch))
{
    TRAQ_REQUIRE(lanes_ >= 1, "frame sim needs at least one lane");
}

FrameBatch
FrameSimulator::sample(const Circuit &circuit)
{
    FrameBatch out;
    sampleInto(circuit, out);
    return out;
}

void
FrameSimulator::sampleInto(const Circuit &circuit, FrameBatch &out)
{
    kernels_->sampleInto(st_, circuit, lanes_, out);
}

std::vector<std::uint64_t>
FrameSimulator::countObservableFlips(const Circuit &circuit,
                                     std::uint64_t minShots,
                                     std::uint64_t *shotsOut)
{
    std::vector<std::uint64_t> counts(circuit.numObservables(), 0);
    std::uint64_t shots = 0;
    FrameBatch batch;
    while (shots < minShots) {
        sampleInto(circuit, batch);
        for (std::size_t k = 0; k < counts.size(); ++k)
            for (unsigned l = 0; l < lanes_; ++l)
                counts[k] += static_cast<std::uint64_t>(
                    std::popcount(batch.observables[k * lanes_ + l]));
        shots += batch.shots();
    }
    if (shotsOut)
        *shotsOut = shots;
    return counts;
}

} // namespace traq::sim
