#include "src/sim/frame.hh"

#include <bit>

#include "src/common/assert.hh"

namespace traq::sim {

void
extractSyndromes(const FrameBatch &batch, std::uint64_t liveMask,
                 std::span<std::vector<std::uint32_t>, 64> out)
{
    for (std::size_t d = 0; d < batch.detectors.size(); ++d) {
        std::uint64_t word = batch.detectors[d] & liveMask;
        while (word) {
            const int s = std::countr_zero(word);
            word &= word - 1;
            out[s].push_back(static_cast<std::uint32_t>(d));
        }
    }
}

FrameSimulator::FrameSimulator(std::uint64_t seed)
    : rng_(seed)
{}

void
FrameSimulator::applyNoise(const Instruction &inst)
{
    const double p = inst.arg;
    switch (inst.gate) {
      case Gate::X_ERROR:
        for (std::uint32_t q : inst.targets)
            xf_[q] ^= rng_.bernoulliWord(p);
        break;
      case Gate::Z_ERROR:
        for (std::uint32_t q : inst.targets)
            zf_[q] ^= rng_.bernoulliWord(p);
        break;
      case Gate::Y_ERROR:
        for (std::uint32_t q : inst.targets) {
            std::uint64_t e = rng_.bernoulliWord(p);
            xf_[q] ^= e;
            zf_[q] ^= e;
        }
        break;
      case Gate::DEPOLARIZE1:
        for (std::uint32_t q : inst.targets) {
            std::uint64_t e = rng_.bernoulliWord(p);
            if (!e)
                continue;
            // For each erred shot pick X, Y or Z uniformly.
            std::uint64_t rest = e;
            while (rest) {
                int s = __builtin_ctzll(rest);
                rest &= rest - 1;
                std::uint64_t bit = 1ULL << s;
                switch (rng_.below(3)) {
                  case 0:
                    xf_[q] ^= bit;
                    break;
                  case 1:
                    xf_[q] ^= bit;
                    zf_[q] ^= bit;
                    break;
                  default:
                    zf_[q] ^= bit;
                    break;
                }
            }
        }
        break;
      case Gate::DEPOLARIZE2:
        for (std::size_t i = 0; i + 1 < inst.targets.size(); i += 2) {
            std::uint32_t a = inst.targets[i];
            std::uint32_t b = inst.targets[i + 1];
            std::uint64_t e = rng_.bernoulliWord(p);
            std::uint64_t rest = e;
            while (rest) {
                int s = __builtin_ctzll(rest);
                rest &= rest - 1;
                std::uint64_t bit = 1ULL << s;
                std::uint64_t k = rng_.below(15) + 1;
                std::size_t pa = k / 4, pb = k % 4;
                if (pa == 1 || pa == 2)
                    xf_[a] ^= bit;
                if (pa == 2 || pa == 3)
                    zf_[a] ^= bit;
                if (pb == 1 || pb == 2)
                    xf_[b] ^= bit;
                if (pb == 2 || pb == 3)
                    zf_[b] ^= bit;
            }
        }
        break;
      default:
        TRAQ_PANIC("applyNoise: not a noise instruction");
    }
}

FrameBatch
FrameSimulator::sample(const Circuit &circuit)
{
    FrameBatch out;
    sampleInto(circuit, out);
    return out;
}

void
FrameSimulator::sampleInto(const Circuit &circuit, FrameBatch &out)
{
    const std::size_t n = circuit.numQubits();
    xf_.assign(n, 0);
    zf_.assign(n, 0);
    mrec_.clear();
    mrec_.reserve(circuit.numMeasurements());

    out.detectors.clear();
    out.detectors.reserve(circuit.numDetectors());
    out.observables.assign(circuit.numObservables(), 0);

    for (const auto &inst : circuit.instructions()) {
        const GateInfo &info = gateInfo(inst.gate);
        if (info.unitary) {
            switch (inst.gate) {
              case Gate::I:
              case Gate::X:
              case Gate::Y:
              case Gate::Z:
                // Deterministic Paulis commute into the reference.
                break;
              case Gate::H:
                for (std::uint32_t q : inst.targets)
                    std::swap(xf_[q], zf_[q]);
                break;
              case Gate::S:
              case Gate::S_DAG:
                // S X S^-1 = Y: an X frame gains a Z component; Z
                // frames are unchanged.  Same frame action for S_DAG.
                for (std::uint32_t q : inst.targets)
                    zf_[q] ^= xf_[q];
                break;
              case Gate::SQRT_X:
              case Gate::SQRT_X_DAG:
                // Z frame gains an X component.
                for (std::uint32_t q : inst.targets)
                    xf_[q] ^= zf_[q];
                break;
              case Gate::CX:
                for (std::size_t i = 0; i + 1 < inst.targets.size();
                     i += 2) {
                    std::uint32_t a = inst.targets[i];
                    std::uint32_t b = inst.targets[i + 1];
                    xf_[b] ^= xf_[a];
                    zf_[a] ^= zf_[b];
                }
                break;
              case Gate::CZ:
                for (std::size_t i = 0; i + 1 < inst.targets.size();
                     i += 2) {
                    std::uint32_t a = inst.targets[i];
                    std::uint32_t b = inst.targets[i + 1];
                    zf_[a] ^= xf_[b];
                    zf_[b] ^= xf_[a];
                }
                break;
              case Gate::SWAP:
                for (std::size_t i = 0; i + 1 < inst.targets.size();
                     i += 2) {
                    std::uint32_t a = inst.targets[i];
                    std::uint32_t b = inst.targets[i + 1];
                    std::swap(xf_[a], xf_[b]);
                    std::swap(zf_[a], zf_[b]);
                }
                break;
              default:
                TRAQ_PANIC("frame sim: unhandled unitary");
            }
        } else if (info.noise) {
            applyNoise(inst);
        } else if (info.measurement || info.reset) {
            for (std::uint32_t q : inst.targets) {
                switch (inst.gate) {
                  case Gate::M:
                    mrec_.push_back(xf_[q]);
                    break;
                  case Gate::MX:
                    mrec_.push_back(zf_[q]);
                    break;
                  case Gate::MR:
                    mrec_.push_back(xf_[q]);
                    xf_[q] = 0;
                    break;
                  case Gate::R:
                    xf_[q] = 0;
                    // Z frames on freshly reset qubits are
                    // irrelevant; clear for determinism.
                    zf_[q] = 0;
                    break;
                  case Gate::RX:
                    zf_[q] = 0;
                    xf_[q] = 0;
                    break;
                  default:
                    TRAQ_PANIC("frame sim: unhandled meas/reset");
                }
            }
        } else if (inst.gate == Gate::DETECTOR) {
            std::uint64_t word = 0;
            for (std::uint32_t lb : inst.targets)
                word ^= mrec_[mrec_.size() - lb];
            out.detectors.push_back(word);
        } else if (inst.gate == Gate::OBSERVABLE_INCLUDE) {
            auto idx = static_cast<std::size_t>(inst.arg);
            for (std::uint32_t lb : inst.targets)
                out.observables[idx] ^= mrec_[mrec_.size() - lb];
        }
        // TICK: no-op.
    }
}

std::vector<std::uint64_t>
FrameSimulator::countObservableFlips(const Circuit &circuit,
                                     std::uint64_t minShots,
                                     std::uint64_t *shotsOut)
{
    std::vector<std::uint64_t> counts(circuit.numObservables(), 0);
    std::uint64_t shots = 0;
    FrameBatch batch;
    while (shots < minShots) {
        sampleInto(circuit, batch);
        for (std::size_t k = 0; k < counts.size(); ++k)
            counts[k] += __builtin_popcountll(batch.observables[k]);
        shots += 64;
    }
    if (shotsOut)
        *shotsOut = shots;
    return counts;
}

} // namespace traq::sim
