/**
 * @file
 * Aaronson–Gottesman stabilizer tableau simulator.
 *
 * Exact simulation of Clifford circuits with measurement, used as the
 * ground-truth reference for the fast Pauli-frame sampler and for
 * verifying code constructions (stabilizer groups, logical action of
 * transversal gates).  The representation is the standard 2n x (2n+1)
 * binary tableau: rows 0..n-1 are destabilizers, rows n..2n-1 are
 * stabilizers.
 */

#ifndef TRAQ_SIM_TABLEAU_HH
#define TRAQ_SIM_TABLEAU_HH

#include <cstdint>
#include <vector>

#include "src/common/rng.hh"
#include "src/sim/circuit.hh"
#include "src/sim/pauli.hh"

namespace traq::sim {

/** Result of a single measurement. */
struct MeasureResult
{
    bool value = false;     //!< measured bit
    bool random = false;    //!< true if the outcome was 50/50
};

/** Stabilizer state simulator over n qubits, starting in |0...0>. */
class TableauSim
{
  public:
    explicit TableauSim(std::size_t numQubits,
                        std::uint64_t seed = 0x7261712dULL);

    std::size_t numQubits() const { return n_; }

    /** @name Clifford gates. */
    /// @{
    void h(std::size_t q);
    void s(std::size_t q);
    void sdag(std::size_t q);
    void x(std::size_t q);
    void y(std::size_t q);
    void z(std::size_t q);
    void sqrtX(std::size_t q);
    void sqrtXDag(std::size_t q);
    void cx(std::size_t a, std::size_t b);
    void cz(std::size_t a, std::size_t b);
    void swapq(std::size_t a, std::size_t b);
    /// @}

    /**
     * Measure qubit q in the Z basis.
     * @param forceZero if the outcome is random, deterministically
     *        project onto 0 (used for reference samples).
     */
    MeasureResult measure(std::size_t q, bool forceZero = false);

    /** Measure in the X basis (H-conjugated Z measurement). */
    MeasureResult measureX(std::size_t q, bool forceZero = false);

    /** Reset to |0> (measure, flip if 1). */
    void reset(std::size_t q);

    /** Reset to |+>. */
    void resetX(std::size_t q);

    /**
     * Execute a circuit.  Noise channels are sampled with the internal
     * RNG unless noiseless is true (in which case they are skipped and
     * random measurement results are forced to zero — this yields the
     * canonical reference sample).
     * @return the measurement record.
     */
    std::vector<bool> run(const Circuit &circuit,
                          bool noiseless = false);

    /** Stabilizer generator row i (0..n-1) as a PauliString. */
    PauliString stabilizer(std::size_t i) const;

    /** Destabilizer generator row i (0..n-1). */
    PauliString destabilizer(std::size_t i) const;

    /**
     * True if p (with its phase) is an element of the stabilizer group
     * of the current state.  O(n^3); intended for tests.
     */
    bool stateStabilizedBy(const PauliString &p) const;

    /** Direct access to the RNG (tests may reseed). */
    Rng &rng() { return rng_; }

  private:
    std::size_t n_;
    // Row-major bit storage: for row r, xBit(r,q), zBit(r,q), sign_[r].
    std::vector<std::uint64_t> xBits_;
    std::vector<std::uint64_t> zBits_;
    std::vector<std::uint8_t> sign_;   //!< r in {0,1}: sign (-1)^r
    std::size_t wordsPerRow_;
    Rng rng_;

    bool xBit(std::size_t row, std::size_t q) const;
    bool zBit(std::size_t row, std::size_t q) const;
    void setXBit(std::size_t row, std::size_t q, bool v);
    void setZBit(std::size_t row, std::size_t q, bool v);

    /** row h *= row i (Pauli product with exact sign tracking). */
    void rowSum(std::size_t h, std::size_t i);

    /** Phase contribution g() of the rowsum, summed over qubits. */
    int rowSumPhase(std::size_t h, std::size_t i) const;

    void applySingle(Gate g, std::size_t q);
    void applyPair(Gate g, std::size_t a, std::size_t b);
};

} // namespace traq::sim

#endif // TRAQ_SIM_TABLEAU_HH
