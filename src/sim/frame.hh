/**
 * @file
 * Bit-sliced Pauli-frame Monte-Carlo sampler with wide bit-plane
 * batches.
 *
 * Simulates lanes * 64 shots of a noisy stabilizer circuit
 * simultaneously by tracking, for every qubit, the X/Z difference
 * ("frame") between each noisy shot and the noiseless reference
 * execution.  Because detectors and observables are parity checks on
 * measurements, their *flips* are exactly what a decoder consumes, so
 * no reference sample is needed.
 *
 * This is the same architectural idea as Stim's frame simulator.  The
 * word width is a runtime property (see common/word.hh): one lane is
 * the classic portable 64-shot batch; kWideWordLanes lanes (256-bit
 * planes by default) amortize instruction dispatch and the sparse
 * Bernoulli sampler's one-draw-per-plane floor over 4x the shots,
 * which is what makes large-shot-count logical-error-rate estimation
 * fast.  Back-to-back single-qubit noise channels of the same kind on
 * the same targets are fused into a single Bernoulli plane draw.
 *
 * The hot bodies (per-gate lane loops, transpose extraction) live in
 * frame_kernels_impl.hh, compiled once per CpuDispatch level and
 * selected at run time (see frame_kernels.hh) — the simulator here
 * resolves a level at construction and pays one indirect call per
 * batch.
 */

#ifndef TRAQ_SIM_FRAME_HH
#define TRAQ_SIM_FRAME_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.hh"
#include "src/common/word.hh"
#include "src/sim/circuit.hh"

namespace traq::sim {

namespace kernels {
struct FrameKernels;
struct BlockScratchAccess;
} // namespace kernels

/**
 * Result of one (lanes * 64)-shot batch.
 *
 * Planes are stored lane-major per entry: detector d occupies words
 * [d * lanes, (d + 1) * lanes), and bit s of lane l is shot
 * l * 64 + s.  With lanes == 1 this is the historical flat layout
 * (detectors[d] is detector d's 64-shot word).
 */
struct FrameBatch
{
    unsigned lanes = 1;
    /** Detector planes: bit = detection event in that shot. */
    std::vector<std::uint64_t> detectors;
    /** Observable planes: bit = logical flip of that observable. */
    std::vector<std::uint64_t> observables;
    /**
     * Heralded-erasure planes, one per HERALDED_ERASE target in
     * instruction order (Circuit::numHeraldChannels): bit = that
     * shot's erasure fired and was flagged.  Empty when the circuit
     * carries no heralded channels, so noise-model-free sampling is
     * bit-identical to the pre-herald sampler.
     */
    std::vector<std::uint64_t> heralds;

    std::uint64_t shots() const { return 64ULL * lanes; }
    std::size_t numDetectors() const
    { return lanes ? detectors.size() / lanes : 0; }
    std::size_t numObservables() const
    { return lanes ? observables.size() / lanes : 0; }
    std::size_t numHeraldChannels() const
    { return lanes ? heralds.size() / lanes : 0; }

    /** The lane words of one detector / observable / herald plane. */
    std::span<const std::uint64_t> detector(std::size_t d) const
    { return {detectors.data() + d * lanes, lanes}; }
    std::span<const std::uint64_t> observable(std::size_t k) const
    { return {observables.data() + k * lanes, lanes}; }
    std::span<const std::uint64_t> herald(std::size_t c) const
    { return {heralds.data() + c * lanes, lanes}; }
};

/**
 * Scatter a batch's detector planes into per-shot syndrome lists
 * (appending detector ids in ascending order).  Word-level: zero
 * words — the common case below threshold — are skipped wholesale
 * and set bits are walked with countr_zero.  liveMask holds one word
 * per lane; shots whose mask bit is clear are ignored.  out must
 * cover the batch's 64 * lanes shots (shot l * 64 + s lands in
 * out[l * 64 + s]) and arrive cleared: entries are appended, not
 * reset.  Kept for tests and back-compat callers; the engine hot
 * path uses extractSyndromeBlock below, which produces the same
 * syndromes without the per-shot vector traffic.
 */
void extractSyndromes(const FrameBatch &batch,
                      std::span<const std::uint64_t> liveMask,
                      std::span<std::vector<std::uint32_t>> out);

/**
 * SoA view of one batch's decode inputs: per-shot syndromes in CSR
 * layout plus per-shot actual observable-flip masks.
 *
 * Shot s's flipped detectors are defects[offsets[s] .. offsets[s+1])
 * in ascending order; observables[s] is the shot's logical flip
 * mask (bit k = observable k).  All three arrays are flat and reused
 * across batches, so a warm extraction performs no heap allocation —
 * this is what the decoders' decodeBatch entry point consumes.
 */
struct SyndromeBlock
{
    /** Lanes of the source batch (shots() == 64 * lanes). */
    unsigned lanes = 1;
    /** CSR row starts; size shots() + 1 after extraction. */
    std::vector<std::uint32_t> offsets;
    /** Flipped detector ids, shot-major, ascending within a shot. */
    std::vector<std::uint32_t> defects;
    /** Per-shot actual observable flip masks. */
    std::vector<std::uint32_t> observables;
    /** CSR row starts of the herald lists; size shots() + 1 (all
     *  zero rows when the batch carries no herald planes). */
    std::vector<std::uint32_t> heraldOffsets;
    /** Fired herald channel ids, shot-major, ascending per shot. */
    std::vector<std::uint32_t> heraldIds;

    std::uint64_t shots() const { return 64ULL * lanes; }

    /** Shot s's syndrome (flipped detector ids, ascending). */
    std::span<const std::uint32_t> syndrome(std::uint64_t s) const
    {
        return {defects.data() + offsets[s],
                offsets[s + 1] - offsets[s]};
    }

    /** Shot s's fired herald channels (ascending). */
    std::span<const std::uint32_t> heralds(std::uint64_t s) const
    {
        return {heraldIds.data() + heraldOffsets[s],
                heraldOffsets[s + 1] - heraldOffsets[s]};
    }

  private:
    friend void extractSyndromeBlockScalar(
        const FrameBatch &, std::span<const std::uint64_t>,
        SyndromeBlock &);
    friend struct kernels::BlockScratchAccess;
    std::vector<std::uint32_t> cursor_;  //!< fill-pass scratch
    /** Shot-major transposed bit rows (transpose extraction). */
    std::vector<std::uint64_t> rowBits_;
};

/**
 * Extract a whole batch into a SyndromeBlock.  Routes to the
 * runtime-dispatched transpose kernel (frame_kernels.hh, Auto
 * level): detector and herald planes are turned shot-major by a
 * blocked 64x64 bit-matrix transpose and each shot's row words
 * stream straight into the CSR lists.  Masked-out shots (liveMask
 * bit clear) get empty syndromes and zero masks.  Equivalent to
 * extractSyndromes shot for shot and to extractSyndromeBlockScalar
 * bit for bit — locked by tests — with flat reused storage instead
 * of 64 * lanes per-shot vectors: the decode hot path's
 * allocation-free SoA hand-off.
 */
void extractSyndromeBlock(const FrameBatch &batch,
                          std::span<const std::uint64_t> liveMask,
                          SyndromeBlock &out);

/**
 * The pre-dispatch scalar extraction: a counting pass and a fill
 * pass walking only the *set* bits of the planes with countr_zero.
 * Kept as the portable reference the transpose kernels are locked
 * against (and as the better choice for very sparse planes hit once;
 * the engine always goes through extractSyndromeBlock).
 */
void extractSyndromeBlockScalar(const FrameBatch &batch,
                                std::span<const std::uint64_t> liveMask,
                                SyndromeBlock &out);

/**
 * The frame simulator's mutable sampling state, grouped so the
 * runtime-dispatched kernel copies (frame_kernels_impl.hh) can run
 * the hot loops over it as free functions.
 */
struct FrameSimState
{
    explicit FrameSimState(std::uint64_t seed) : rng(seed) {}

    Rng rng;
    std::vector<std::uint64_t> xf;    //!< X frame planes per qubit
    std::vector<std::uint64_t> zf;    //!< Z frame planes per qubit
    std::vector<std::uint64_t> mrec;  //!< measurement flip planes
    std::vector<std::uint64_t> plane; //!< Bernoulli plane scratch
    std::uint64_t numRec = 0;         //!< measurements recorded
};

/** Bit-sliced frame simulator over a configurable word width. */
class FrameSimulator
{
  public:
    /**
     * @param seed  RNG seed (reassignable via rng()).
     * @param lanes 64-bit lanes per sampling plane; each batch
     *              simulates lanes * 64 shots.  1 is the portable
     *              64-shot path; kWideWordLanes the wide backend.
     *              Any positive count works (tests use odd widths).
     * @param dispatch CPU dispatch level for the kernel copies,
     *              resolved here once (Auto: TRAQ_CPU_DISPATCH env
     *              var, else best supported).  Purely a scheduling
     *              choice — samples are bit-identical across levels.
     */
    explicit FrameSimulator(std::uint64_t seed = 0x66726d65ULL,
                            unsigned lanes = 1,
                            CpuDispatch dispatch = CpuDispatch::Auto);

    unsigned lanes() const { return lanes_; }
    /** Shots per sample()/sampleInto() call (64 * lanes). */
    std::uint64_t shotsPerBatch() const { return 64ULL * lanes_; }

    /** Run one batch of the circuit. */
    FrameBatch sample(const Circuit &circuit);

    /**
     * Run one batch into an existing FrameBatch, reusing its
     * allocations.  The hot path for long runs: after the first call
     * the per-batch cost is pure simulation, no heap traffic.
     */
    void sampleInto(const Circuit &circuit, FrameBatch &out);

    /**
     * Run at least minShots shots (rounded up to whole batches) and
     * count, for each observable, shots where the decoder-free logical
     * value flipped.  Convenience for noise-only sanity tests.
     */
    std::vector<std::uint64_t>
    countObservableFlips(const Circuit &circuit,
                         std::uint64_t minShots,
                         std::uint64_t *shotsOut);

    Rng &rng() { return st_.rng; }

  private:
    FrameSimState st_;
    unsigned lanes_ = 1;
    /** Resolved kernel table (one indirect call per batch). */
    const kernels::FrameKernels *kernels_ = nullptr;
};

} // namespace traq::sim

#endif // TRAQ_SIM_FRAME_HH
