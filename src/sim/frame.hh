/**
 * @file
 * Bit-sliced Pauli-frame Monte-Carlo sampler.
 *
 * Simulates 64 shots of a noisy stabilizer circuit simultaneously by
 * tracking, for every qubit, the X/Z difference ("frame") between each
 * noisy shot and the noiseless reference execution.  Because detectors
 * and observables are parity checks on measurements, their *flips* are
 * exactly what a decoder consumes, so no reference sample is needed.
 *
 * This is the same architectural idea as Stim's frame simulator and is
 * what makes large-shot-count logical-error-rate estimation tractable.
 */

#ifndef TRAQ_SIM_FRAME_HH
#define TRAQ_SIM_FRAME_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.hh"
#include "src/sim/circuit.hh"

namespace traq::sim {

/** Result of one 64-shot batch. */
struct FrameBatch
{
    /** detector word d: bit s = detection event in shot s. */
    std::vector<std::uint64_t> detectors;
    /** observable word k: bit s = logical flip of observable k. */
    std::vector<std::uint64_t> observables;
};

/**
 * Scatter a batch's detector words into per-shot syndrome lists
 * (appending detector ids in ascending order).  Word-level: zero
 * words — the common case below threshold — are skipped wholesale
 * and set bits are walked with countr_zero.  Shots outside liveMask
 * are ignored; out must cover 64 shots and arrive cleared (entries
 * are appended, not reset).  Shared by the Monte-Carlo engine and
 * the decoder benches so both measure the same extraction.
 */
void extractSyndromes(const FrameBatch &batch, std::uint64_t liveMask,
                      std::span<std::vector<std::uint32_t>, 64> out);

/** 64-way bit-sliced frame simulator. */
class FrameSimulator
{
  public:
    explicit FrameSimulator(std::uint64_t seed = 0x66726d65ULL);

    /** Run one 64-shot batch of the circuit. */
    FrameBatch sample(const Circuit &circuit);

    /**
     * Run one 64-shot batch into an existing FrameBatch, reusing its
     * allocations.  The hot path for long runs: after the first call
     * the per-batch cost is pure simulation, no heap traffic.
     */
    void sampleInto(const Circuit &circuit, FrameBatch &out);

    /**
     * Run at least minShots shots (rounded up to batches of 64) and
     * count, for each observable, shots where the decoder-free logical
     * value flipped.  Convenience for noise-only sanity tests.
     */
    std::vector<std::uint64_t>
    countObservableFlips(const Circuit &circuit,
                         std::uint64_t minShots,
                         std::uint64_t *shotsOut);

    Rng &rng() { return rng_; }

  private:
    Rng rng_;
    std::vector<std::uint64_t> xf_;   //!< X frame per qubit
    std::vector<std::uint64_t> zf_;   //!< Z frame per qubit
    std::vector<std::uint64_t> mrec_; //!< measurement flip words

    void applyNoise(const Instruction &inst);
};

} // namespace traq::sim

#endif // TRAQ_SIM_FRAME_HH
