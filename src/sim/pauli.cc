#include "src/sim/pauli.hh"

#include "src/common/assert.hh"

namespace traq::sim {

PauliString::PauliString(std::size_t n)
    : n_(n), x_(n, false), z_(n, false)
{}

PauliString
PauliString::fromText(const std::string &text)
{
    std::size_t i = 0;
    int phase = 0;
    if (i < text.size() && text[i] == '+') {
        ++i;
    } else if (i < text.size() && text[i] == '-') {
        phase = 2;
        ++i;
        if (i < text.size() && text[i] == 'i') {
            phase = 3;
            ++i;
        }
    } else if (i < text.size() && text[i] == 'i') {
        phase = 1;
        ++i;
    }
    PauliString p(text.size() - i);
    p.phase_ = phase;
    for (std::size_t q = 0; i < text.size(); ++i, ++q)
        p.setPauli(q, text[i]);
    return p;
}

void
PauliString::setPauli(std::size_t q, char p)
{
    TRAQ_REQUIRE(q < n_, "PauliString::setPauli out of range");
    switch (p) {
      case 'I':
        x_[q] = false;
        z_[q] = false;
        break;
      case 'X':
        x_[q] = true;
        z_[q] = false;
        break;
      case 'Y':
        x_[q] = true;
        z_[q] = true;
        break;
      case 'Z':
        x_[q] = false;
        z_[q] = true;
        break;
      default:
        TRAQ_FATAL(std::string("bad Pauli character: ") + p);
    }
}

char
PauliString::pauli(std::size_t q) const
{
    if (x_[q])
        return z_[q] ? 'Y' : 'X';
    return z_[q] ? 'Z' : 'I';
}

std::size_t
PauliString::weight() const
{
    std::size_t w = 0;
    for (std::size_t q = 0; q < n_; ++q)
        if (x_[q] || z_[q])
            ++w;
    return w;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    TRAQ_REQUIRE(n_ == other.n_, "commutesWith size mismatch");
    int anti = 0;
    for (std::size_t q = 0; q < n_; ++q) {
        anti ^= (x_[q] && other.z_[q]) ? 1 : 0;
        anti ^= (z_[q] && other.x_[q]) ? 1 : 0;
    }
    return anti == 0;
}

void
PauliString::multiplyBy(const PauliString &rhs)
{
    TRAQ_REQUIRE(n_ == rhs.n_, "multiplyBy size mismatch");
    // With the convention Y = i·X·Z and per-site form
    // i^{x·z} X^x Z^z, the product phase accumulates
    //   (a) a factor i^{x2·z1·2} from commuting Z^z1 past X^x2
    //   (b) re-normalization of the Y factors.
    // Doing it per site with a small lookup is clearest.  Entry
    // [p1][p2] is the phase exponent of P1·P2 relative to the bitwise
    // XOR result, with I=0, X=1, Y=2, Z=3.
    static const int kPhase[4][4] = {
        // I   X   Y   Z     (rhs)
        {  0,  0,  0,  0 },  // I
        {  0,  0,  1,  3 },  // X  (X·Y = iZ, X·Z = -iY)
        {  0,  3,  0,  1 },  // Y  (Y·X = -iZ, Y·Z = iX)
        {  0,  1,  3,  0 },  // Z  (Z·X = iY, Z·Y = -iX)
    };
    auto code = [](bool xb, bool zb) {
        if (xb && zb)
            return 2;  // Y
        if (xb)
            return 1;  // X
        if (zb)
            return 3;  // Z
        return 0;      // I
    };
    int ph = phase_ + rhs.phase_;
    for (std::size_t q = 0; q < n_; ++q) {
        ph += kPhase[code(x_[q], z_[q])][code(rhs.x_[q], rhs.z_[q])];
        x_[q] = x_[q] ^ rhs.x_[q];
        z_[q] = z_[q] ^ rhs.z_[q];
    }
    phase_ = ((ph % 4) + 4) % 4;
}

bool
PauliString::operator==(const PauliString &o) const
{
    return n_ == o.n_ && phase_ == o.phase_ && x_ == o.x_ && z_ == o.z_;
}

std::string
PauliString::str() const
{
    static const char *kPrefix[4] = {"+", "i", "-", "-i"};
    std::string out = kPrefix[phase_];
    for (std::size_t q = 0; q < n_; ++q)
        out += pauli(q);
    return out;
}

} // namespace traq::sim
