#include "src/sim/circuit.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "src/common/assert.hh"
#include "src/common/serialize.hh"
#include "src/common/strings.hh"

namespace traq::sim {
namespace {

// Numeric token parsing for Circuit::parse.  std::stod / std::stol
// would leak std::invalid_argument / std::out_of_range on malformed
// tokens and silently accept trailing garbage ("12x" parses as 12);
// the parser's loudness contract is FatalError with the offending
// line, always.

double
parseArgToken(std::string_view tok, std::string_view line)
{
    double v = 0.0;
    auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v);
    TRAQ_REQUIRE(ec == std::errc() &&
                     ptr == tok.data() + tok.size(),
                 "malformed numeric argument '" + std::string(tok) +
                     "' in: " + std::string(line));
    return v;
}

std::uint32_t
parseIndexToken(std::string_view tok, std::string_view line)
{
    std::uint32_t v = 0;
    auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v);
    TRAQ_REQUIRE(ec == std::errc() &&
                     ptr == tok.data() + tok.size(),
                 "malformed index '" + std::string(tok) +
                     "' in: " + std::string(line));
    return v;
}

} // namespace

void
Circuit::validate(const Instruction &inst) const
{
    const GateInfo &info = gateInfo(inst.gate);
    if (info.twoQubit) {
        TRAQ_REQUIRE(inst.targets.size() % 2 == 0,
                     std::string(info.name) +
                         " requires an even number of targets");
        // Within each pair the two qubits must differ.
        for (std::size_t i = 0; i + 1 < inst.targets.size(); i += 2) {
            TRAQ_REQUIRE(inst.targets[i] != inst.targets[i + 1],
                         std::string(info.name) +
                             " pair targets must differ");
        }
    }
    if (info.noise) {
        TRAQ_REQUIRE(inst.arg >= 0.0 && inst.arg <= 1.0,
                     "noise probability out of [0,1]");
    }
    if (inst.gate == Gate::OBSERVABLE_INCLUDE) {
        // The index is stored in the double arg; reject anything
        // whose index + 1 would not fit the uint32 bookkeeping in
        // bump() (NaN included), and non-integral values the
        // str() uint cast would silently truncate.
        TRAQ_REQUIRE(inst.arg >= 0.0 && inst.arg < 4294967295.0 &&
                         inst.arg == std::floor(inst.arg),
                     "observable index must be an integer in "
                     "[0, 2^32 - 1)");
    } else if (!info.noise) {
        // Only noise channels and OBSERVABLE_INCLUDE carry an
        // argument; accepting one elsewhere would drop it silently
        // on the next str() round trip.
        TRAQ_REQUIRE(inst.arg == 0.0,
                     std::string(info.name) +
                         " takes no argument");
    }
    if (inst.gate == Gate::DETECTOR ||
        inst.gate == Gate::OBSERVABLE_INCLUDE) {
        for (std::uint32_t lb : inst.targets) {
            TRAQ_REQUIRE(lb >= 1 && lb <= numMeasurements_,
                         "record lookback out of range");
        }
    }
    if (inst.gate == Gate::TICK) {
        TRAQ_REQUIRE(inst.targets.empty(), "TICK takes no targets");
    }
}

void
Circuit::bump(const Instruction &inst)
{
    const GateInfo &info = gateInfo(inst.gate);
    if (!info.annotation) {
        for (std::uint32_t q : inst.targets)
            numQubits_ = std::max(numQubits_, q + 1);
    }
    if (info.measurement)
        numMeasurements_ += inst.targets.size();
    if (inst.gate == Gate::DETECTOR)
        ++numDetectors_;
    if (inst.gate == Gate::OBSERVABLE_INCLUDE) {
        auto idx = static_cast<std::uint32_t>(inst.arg);
        numObservables_ = std::max(numObservables_, idx + 1);
    }
    if (inst.gate == Gate::HERALDED_ERASE)
        numHeraldChannels_ +=
            static_cast<std::uint32_t>(inst.targets.size());
}

void
Circuit::append(const Instruction &inst)
{
    validate(inst);
    insts_.push_back(inst);
    bump(inst);
}

void
Circuit::append(Gate g, std::vector<std::uint32_t> targets, double arg)
{
    Instruction inst;
    inst.gate = g;
    inst.arg = arg;
    inst.targets = std::move(targets);
    append(inst);
}

void
Circuit::append(std::string_view name,
                std::vector<std::uint32_t> targets, double arg)
{
    auto g = gateFromName(name);
    TRAQ_REQUIRE(g.has_value(),
                 "unknown gate name: " + std::string(name));
    append(*g, std::move(targets), arg);
}

void
Circuit::append(const Circuit &other)
{
    for (const auto &inst : other.insts_)
        append(inst);
}

std::size_t
Circuit::totalTargets() const
{
    std::size_t n = 0;
    for (const auto &inst : insts_)
        n += inst.targets.size();
    return n;
}

std::string
Circuit::str() const
{
    std::ostringstream os;
    for (const auto &inst : insts_) {
        const GateInfo &info = gateInfo(inst.gate);
        os << info.name;
        if (info.noise || inst.gate == Gate::OBSERVABLE_INCLUDE) {
            // Noise probabilities print in shortest exact-round-trip
            // form: parse(str()) must reproduce inst.arg bit for bit
            // (the "%g" 6-significant-digit form silently corrupted
            // e.g. 0.0001234567890123 on the way around).
            if (info.noise)
                os << '(' << fmtRoundTrip(inst.arg) << ')';
            else
                os << '(' << static_cast<unsigned>(inst.arg) << ')';
        }
        const bool isRec = inst.gate == Gate::DETECTOR ||
                           inst.gate == Gate::OBSERVABLE_INCLUDE;
        for (std::uint32_t t : inst.targets) {
            if (isRec)
                os << " rec[-" << t << "]";
            else
                os << " " << t;
        }
        os << "\n";
    }
    return os.str();
}

Circuit
Circuit::parse(std::string_view text)
{
    Circuit c;
    for (const auto &rawLine : splitChar(text, '\n')) {
        std::string_view line = trim(rawLine);
        if (line.empty() || line[0] == '#')
            continue;
        // Tokenize: NAME or NAME(arg), then targets.
        auto tokens = splitWhitespace(line);
        std::string head = tokens[0];
        double arg = 0.0;
        auto paren = head.find('(');
        if (paren != std::string::npos) {
            TRAQ_REQUIRE(head.back() == ')',
                         "malformed argument in: " + std::string(line));
            arg = parseArgToken(head.substr(paren + 1,
                                            head.size() - paren - 2),
                                line);
            head = head.substr(0, paren);
        }
        auto g = gateFromName(head);
        TRAQ_REQUIRE(g.has_value(), "unknown gate: " + head);

        std::vector<std::uint32_t> targets;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
            const std::string &tok = tokens[i];
            if (startsWith(tok, "rec[")) {
                TRAQ_REQUIRE(startsWith(tok, "rec[-") &&
                                 tok.back() == ']',
                             "malformed rec target: " + tok);
                std::uint32_t v = parseIndexToken(
                    std::string_view(tok).substr(5, tok.size() - 6),
                    line);
                TRAQ_REQUIRE(v >= 1, "rec lookback must be >= 1");
                targets.push_back(v);
            } else {
                targets.push_back(parseIndexToken(tok, line));
            }
        }
        c.append(*g, std::move(targets), arg);
    }
    return c;
}

} // namespace traq::sim
