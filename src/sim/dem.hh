/**
 * @file
 * Detector error model (DEM) extraction.
 *
 * Decomposes every noise channel in a circuit into independent Pauli
 * error components (X_ERROR -> {X}, DEPOLARIZE1 -> {X,Y,Z} at p/3,
 * DEPOLARIZE2 -> 15 two-qubit components at p/15), symbolically
 * propagates each component through the remainder of the circuit, and
 * records which detectors it flips and which logical observables it
 * toggles.  Components with identical symptoms are merged with
 * XOR-probability combination.
 *
 * The output is the exact analogue of Stim's DEM and is what the
 * decoding-graph builder consumes.  Correlated decoding of transversal
 * gates (the paper's Refs [17,18]) falls out naturally: a CX between
 * two code patches propagates frames across patches, so the DEM
 * contains cross-patch error mechanisms and the decoder sees one joint
 * problem.
 */

#ifndef TRAQ_SIM_DEM_HH
#define TRAQ_SIM_DEM_HH

#include <cstdint>
#include <vector>

#include "src/sim/circuit.hh"

namespace traq::sim {

/** One independent error mechanism and its symptoms. */
struct ErrorMechanism
{
    double probability = 0.0;
    std::vector<std::uint32_t> detectors;  //!< sorted detector ids
    std::uint32_t observables = 0;         //!< bitmask (<= 32 logicals)
    /**
     * Herald channels that can produce this mechanism (sorted,
     * usually empty): the error components of a HERALDED_ERASE
     * instruction carry the erasure's channel id, and merging keeps
     * the union.  This is the mechanism provenance the decode graph
     * turns into per-shot erasure reweighting.
     */
    std::vector<std::uint32_t> channels;
};

/** The full error model of one circuit. */
struct DetectorErrorModel
{
    std::uint32_t numDetectors = 0;
    std::uint32_t numObservables = 0;
    /** Herald channels of the source circuit (see Circuit). */
    std::uint32_t numHeraldChannels = 0;
    std::vector<ErrorMechanism> errors;

    /** Sum of error probabilities (expected symptom count scale). */
    double totalErrorWeight() const;
};

/**
 * Extract the detector error model of a noisy circuit.
 *
 * @param circuit the annotated noisy circuit.
 * @param discardInvisible drop mechanisms that flip no detector and no
 *        observable (true for decoding; false to audit noise volume).
 */
DetectorErrorModel buildDem(const Circuit &circuit,
                            bool discardInvisible = true);

} // namespace traq::sim

#endif // TRAQ_SIM_DEM_HH
