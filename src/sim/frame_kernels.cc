#include "src/sim/frame_kernels.hh"

namespace traq::sim::kernels {

const FrameKernels &
frameKernels(CpuDispatch level)
{
    switch (resolveCpuDispatch(level)) {
      case CpuDispatch::Avx512:
        return avx512Kernels();
      case CpuDispatch::Avx2:
        return avx2Kernels();
      default:
        return baselineKernels();
    }
}

} // namespace traq::sim::kernels
