#include "src/sim/gates.hh"

#include <array>

#include "src/common/assert.hh"

namespace traq::sim {
namespace {

constexpr std::array<GateInfo, 27> kGateTable = {{
    // gate, name, two, unitary, noise, meas, reset, annotation
    {Gate::I,          "I",          false, true,  false, false, false, false},
    {Gate::X,          "X",          false, true,  false, false, false, false},
    {Gate::Y,          "Y",          false, true,  false, false, false, false},
    {Gate::Z,          "Z",          false, true,  false, false, false, false},
    {Gate::H,          "H",          false, true,  false, false, false, false},
    {Gate::S,          "S",          false, true,  false, false, false, false},
    {Gate::S_DAG,      "S_DAG",      false, true,  false, false, false, false},
    {Gate::SQRT_X,     "SQRT_X",     false, true,  false, false, false, false},
    {Gate::SQRT_X_DAG, "SQRT_X_DAG", false, true,  false, false, false, false},
    {Gate::CX,         "CX",         true,  true,  false, false, false, false},
    {Gate::CZ,         "CZ",         true,  true,  false, false, false, false},
    {Gate::SWAP,       "SWAP",       true,  true,  false, false, false, false},
    {Gate::R,          "R",          false, false, false, false, true,  false},
    {Gate::RX,         "RX",         false, false, false, false, true,  false},
    {Gate::M,          "M",          false, false, false, true,  false, false},
    {Gate::MX,         "MX",         false, false, false, true,  false, false},
    {Gate::MR,         "MR",         false, false, false, true,  true,  false},
    {Gate::X_ERROR,    "X_ERROR",    false, false, true,  false, false, false},
    {Gate::Y_ERROR,    "Y_ERROR",    false, false, true,  false, false, false},
    {Gate::Z_ERROR,    "Z_ERROR",    false, false, true,  false, false, false},
    {Gate::DEPOLARIZE1, "DEPOLARIZE1",
                       false, false, true,  false, false, false},
    {Gate::DEPOLARIZE2, "DEPOLARIZE2",
                       true,  false, true,  false, false, false},
    {Gate::HERALDED_ERASE, "HERALDED_ERASE",
                       false, false, true,  false, false, false},
    {Gate::CORRELATED_PAULI2, "CORRELATED_PAULI2",
                       true,  false, true,  false, false, false},
    {Gate::TICK,       "TICK",       false, false, false, false, false, true},
    {Gate::DETECTOR,   "DETECTOR",   false, false, false, false, false, true},
    {Gate::OBSERVABLE_INCLUDE, "OBSERVABLE_INCLUDE",
                       false, false, false, false, false, true},
}};

} // namespace

const GateInfo &
gateInfo(Gate g)
{
    for (const auto &info : kGateTable)
        if (info.gate == g)
            return info;
    TRAQ_PANIC("unknown gate kind");
}

std::optional<Gate>
gateFromName(std::string_view name)
{
    for (const auto &info : kGateTable)
        if (name == info.name)
            return info.gate;
    return std::nullopt;
}

std::string_view
gateName(Gate g)
{
    return gateInfo(g).name;
}

} // namespace traq::sim
