/**
 * @file
 * Gate set of the stabilizer circuit IR.
 *
 * The instruction set is a compact subset of Stim's: Clifford unitaries,
 * resets and measurements in Z/X bases, Pauli noise channels, and the
 * annotation instructions (TICK / DETECTOR / OBSERVABLE_INCLUDE) needed
 * to define decoding problems.  This is the full set required by the
 * paper's circuits: surface-code syndrome extraction, transversal
 * CNOT/H/S blocks, GHZ fan-out preparation, and the [[8,3,2]] factory
 * Cliffords.
 */

#ifndef TRAQ_SIM_GATES_HH
#define TRAQ_SIM_GATES_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace traq::sim {

/** All instruction kinds understood by the simulators. */
enum class Gate : std::uint8_t
{
    // Single-qubit Cliffords.
    I,
    X,
    Y,
    Z,
    H,
    S,
    S_DAG,
    SQRT_X,
    SQRT_X_DAG,
    // Two-qubit Cliffords (targets consumed in pairs).
    CX,
    CZ,
    SWAP,
    // Resets and measurements.
    R,      //!< reset to |0>
    RX,     //!< reset to |+>
    M,      //!< Z-basis measurement
    MX,     //!< X-basis measurement
    MR,     //!< Z-basis measure-and-reset
    // Pauli noise channels (arg = probability).
    X_ERROR,
    Y_ERROR,
    Z_ERROR,
    DEPOLARIZE1,
    DEPOLARIZE2,    //!< targets consumed in pairs
    /**
     * Heralded erasure: with probability arg the target is replaced
     * by the maximally mixed state (Pauli twirl: I/X/Y/Z at arg/4
     * each) AND the event is flagged.  Each target is one herald
     * channel, numbered in instruction order across the circuit
     * (Circuit::numHeraldChannels); the frame sampler emits one
     * herald bit-plane per channel so decoders can reweight the
     * erased qubit's edges per shot (erasure-aware decoding).
     */
    HERALDED_ERASE,
    /**
     * Correlated two-qubit Pauli channel: with probability arg one
     * of XX / YY / ZZ (uniformly) hits the pair.  Unlike
     * DEPOLARIZE2 there are no single-sided components — the
     * mechanism is perfectly correlated across the pair.
     */
    CORRELATED_PAULI2,   //!< targets consumed in pairs
    // Annotations.
    TICK,
    DETECTOR,             //!< targets are rec lookbacks (k => rec[-k])
    OBSERVABLE_INCLUDE,   //!< arg = observable index; targets lookbacks
};

/** Static metadata about a gate kind. */
struct GateInfo
{
    Gate gate;
    const char *name;
    bool twoQubit;       //!< targets consumed as pairs
    bool unitary;        //!< Clifford unitary
    bool noise;          //!< probabilistic error channel
    bool measurement;    //!< produces a measurement record entry
    bool reset;          //!< (also) performs a reset
    bool annotation;     //!< TICK / DETECTOR / OBSERVABLE_INCLUDE
};

/** Metadata lookup for a gate kind. */
const GateInfo &gateInfo(Gate g);

/** Case-sensitive name lookup ("CX", "DEPOLARIZE1", ...). */
std::optional<Gate> gateFromName(std::string_view name);

/** Canonical gate name. */
std::string_view gateName(Gate g);

} // namespace traq::sim

#endif // TRAQ_SIM_GATES_HH
