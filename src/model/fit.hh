/**
 * @file
 * Model fitting: a generic Nelder–Mead simplex minimizer and the
 * fit of the Eq. (4) ansatz to transversal-CNOT logical error data
 * (Fig. 6(a) of the paper).
 *
 * Substitution note (see DESIGN.md): the authors fit against the raw
 * depth-32 random-Clifford MLE-decoder data of their Ref. [17], which
 * is not available offline.  We embed a reference dataset
 * reconstructed from the *reported* fit (alpha ~ 1/6, Lambda_MLE ~ 20,
 * C ~ 0.1) with deterministic scatter, which exercises the same
 * fitting path.  A fully in-repo alternative now exists: the
 * "mc-alpha" estimator (src/estimator/simulation.hh) generates
 * CnotDataPoints from our own circuit-level Monte Carlo via
 * SweepRunner grids and feeds them to fitCnotAnsatz, so alpha can be
 * extracted end-to-end without any embedded data (the absolute
 * calibration then reflects our matching decoder rather than the
 * paper's MLE decoder).
 */

#ifndef TRAQ_MODEL_FIT_HH
#define TRAQ_MODEL_FIT_HH

#include <functional>
#include <vector>

#include "src/model/error_model.hh"

namespace traq::model {

/** Options for the Nelder–Mead minimizer. */
struct NelderMeadOptions
{
    int maxIterations = 2000;
    double tolerance = 1e-10;   //!< simplex spread convergence
    double initialStep = 0.25;  //!< relative initial simplex size
};

/** Result of a minimization. */
struct MinimizeResult
{
    std::vector<double> x;
    double value = 0.0;
    int iterations = 0;
    bool converged = false;
};

/** Derivative-free minimization of fn over R^n. */
MinimizeResult
nelderMead(const std::function<double(const std::vector<double> &)> &fn,
           std::vector<double> x0,
           const NelderMeadOptions &opts = {});

/** One (d, x, pL) sample of per-CNOT logical error. */
struct CnotDataPoint
{
    int d = 3;
    double x = 1.0;   //!< CNOTs per SE round
    double pL = 0.0;  //!< logical error per CNOT per qubit pair
};

/**
 * Reference dataset reconstructed from the reported Ref. [17] fit
 * (see file comment): distances 3..7, x in {1/4 .. 4}, p_phys = 0.1%.
 */
std::vector<CnotDataPoint> referenceRef17Data();

/** Fitted Eq. (4) parameters. */
struct CnotFit
{
    double alpha = 0.0;
    double prefactorC = 0.0;
    double lambda = 0.0;
    double rmsLogResidual = 0.0;
};

/** Options for fitCnotAnsatz. */
struct CnotFitOptions
{
    /** If > 0, hold Lambda fixed and fit only (alpha, C). */
    double fixLambda = -1.0;
    /** Simplex minimizer settings. */
    NelderMeadOptions nelderMead{};
};

/**
 * Least-squares fit of log p_L to the Eq. (4) ansatz over the data
 * — the Fig. 6(a) extraction.  Works on any CnotDataPoint source:
 * the embedded reference dataset or in-repo Monte-Carlo sweeps (see
 * the "mc-alpha" estimator).
 */
CnotFit fitCnotAnsatz(const std::vector<CnotDataPoint> &data,
                      const CnotFitOptions &opts = {});

/** Back-compat shim over fitCnotAnsatz. */
CnotFit fitCnotModel(const std::vector<CnotDataPoint> &data,
                     double fixLambda = -1.0);

/**
 * Lambda estimate from two memory anchors (Eq. (2)): per-round
 * logical error at distances d and d + 2 gives
 * Lambda = pPerRound(d) / pPerRound(d + 2).  Throws unless both
 * rates are positive and suppressing.
 */
double lambdaFromMemoryPair(double pPerRoundD,
                            double pPerRoundDPlus2);

} // namespace traq::model

#endif // TRAQ_MODEL_FIT_HH
