/**
 * @file
 * The paper's logical error model for transversal architectures
 * (Sec. III.4, Eqs. (2)-(6)).
 *
 * The central object is the decoding factor `alpha`, which captures
 * how much each transversal CNOT inflates the effective noise a
 * syndrome-extraction round must handle:
 *
 *   p_L,memory(d)    = C * (1/Lambda)^((d+1)/2)                 (Eq. 2)
 *   p_L,CNOT(d, x)   = (2C/x) * ((1+alpha x)/Lambda)^((d+1)/2)  (Eq. 4)
 *   p_thres,eff(x)   = p_thres / (1 + alpha x)                  (Eq. 5)
 *   V_CNOT(x)  ~ d(x)^2 * (4/x + 1)                             (Eq. 6)
 *
 * with Lambda = p_thres / p_phys and x the number of transversal
 * CNOTs per SE round.  Defaults follow the paper: C = 0.1,
 * p_phys = 1e-3, p_thres = 1%, alpha = 1/6.
 */

#ifndef TRAQ_MODEL_ERROR_MODEL_HH
#define TRAQ_MODEL_ERROR_MODEL_HH

namespace traq::model {

/** Parameters of the logical error model. */
struct ErrorModelParams
{
    double prefactorC = 0.1;   //!< C in Eqs. (2)/(4)
    double pPhys = 1e-3;       //!< physical error rate
    double pThres = 0.01;      //!< memory threshold
    double alpha = 1.0 / 6.0;  //!< decoding factor (Sec. III.4)

    /** Lambda = p_thres / p_phys (error suppression per d += 2). */
    double lambda() const { return pThres / pPhys; }

    /** Effective Lambda with x CNOTs per SE round. */
    double lambdaEff(double x) const
    {
        return lambda() / (1.0 + alpha * x);
    }

    static ErrorModelParams paperDefaults() { return {}; }
};

/** Eq. (2): logical error per qubit per SE round (memory). */
double memoryErrorPerRound(int d, const ErrorModelParams &p);

/**
 * Eq. (4): logical error per transversal CNOT (two qubits) when x
 * CNOTs are performed per SE round.  As x -> 0 this reproduces the
 * accumulated memory error over 1/x rounds.
 */
double cnotLogicalError(int d, double x, const ErrorModelParams &p);

/** Eq. (5): effective threshold under x CNOTs per SE round. */
double effectiveThreshold(double x, const ErrorModelParams &p);

/**
 * Per-qubit per-SE-round error with an explicit extra physical error
 * contribution pExtra added to the SE budget (used for idle storage,
 * Eq. (3) specialization): C * ((p_SE + pExtra)/p_thres)^((d+1)/2)
 * where p_SE is the baseline physical rate.
 */
double roundErrorWithExtra(int d, double pExtra,
                           const ErrorModelParams &p);

/**
 * Smallest odd distance d >= 3 with memoryErrorPerRound <= target.
 * Throws if the system is above threshold.
 */
int requiredDistanceMemory(double targetPerRound,
                           const ErrorModelParams &p);

/** Smallest odd distance with cnotLogicalError(d, x) <= target. */
int requiredDistanceCnot(double targetPerCnot, double x,
                         const ErrorModelParams &p);

/**
 * Eq. (6): relative space-time volume per logical CNOT at x CNOTs
 * per SE round, with the distance chosen for the target error.
 * Units: d^2 * (4/x + 1) (qubit-gate counts, arbitrary scale).
 */
double volumePerCnot(double x, double targetPerCnot,
                     const ErrorModelParams &p);

/**
 * argmin over x (scanned on a log grid) of volumePerCnot — the
 * paper's "optimal number of CNOTs per SE round" (Fig. 6(b)); the
 * optimum is typically >= 1.
 */
double optimalCnotsPerRound(double targetPerCnot,
                            const ErrorModelParams &p);

} // namespace traq::model

#endif // TRAQ_MODEL_ERROR_MODEL_HH
