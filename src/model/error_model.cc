#include "src/model/error_model.hh"

#include <cmath>
#include <limits>

#include "src/common/assert.hh"
#include "src/common/math.hh"

namespace traq::model {

double
memoryErrorPerRound(int d, const ErrorModelParams &p)
{
    TRAQ_REQUIRE(d >= 3, "distance must be >= 3");
    double base = 1.0 / p.lambda();
    return p.prefactorC * std::pow(base, (d + 1) / 2.0);
}

double
cnotLogicalError(int d, double x, const ErrorModelParams &p)
{
    TRAQ_REQUIRE(d >= 3, "distance must be >= 3");
    TRAQ_REQUIRE(x > 0.0, "CNOTs per SE round must be positive");
    double base = (1.0 + p.alpha * x) / p.lambda();
    return 2.0 * p.prefactorC / x * std::pow(base, (d + 1) / 2.0);
}

double
effectiveThreshold(double x, const ErrorModelParams &p)
{
    return p.pThres / (1.0 + p.alpha * x);
}

double
roundErrorWithExtra(int d, double pExtra, const ErrorModelParams &p)
{
    TRAQ_REQUIRE(d >= 3, "distance must be >= 3");
    double base = (p.pPhys + pExtra) / p.pThres;
    return p.prefactorC * std::pow(base, (d + 1) / 2.0);
}

namespace {

/** Smallest odd d >= 3 from the generic exponential-suppression law
 *  pref * base^((d+1)/2) <= target, base < 1. */
int
solveDistance(double pref, double base, double target)
{
    TRAQ_REQUIRE(base < 1.0,
                 "above threshold: no distance reaches the target");
    TRAQ_REQUIRE(target > 0.0 && pref > 0.0,
                 "target and prefactor must be positive");
    if (pref <= target)
        return 3;
    double halves = std::log(target / pref) / std::log(base);
    int d = traq::ceilOdd(2.0 * halves - 1.0);
    // Guard against floating-point edge cases; the relative slack
    // keeps the solver an exact inverse of the forward formula.
    const double slack = 1.0 + 1e-9;
    while (pref * std::pow(base, (d + 1) / 2.0) > target * slack)
        d += 2;
    while (d > 3 &&
           pref * std::pow(base, (d - 1) / 2.0) <= target * slack)
        d -= 2;
    return d;
}

} // namespace

int
requiredDistanceMemory(double targetPerRound,
                       const ErrorModelParams &p)
{
    return solveDistance(p.prefactorC, 1.0 / p.lambda(),
                         targetPerRound);
}

int
requiredDistanceCnot(double targetPerCnot, double x,
                     const ErrorModelParams &p)
{
    return solveDistance(2.0 * p.prefactorC / x,
                         (1.0 + p.alpha * x) / p.lambda(),
                         targetPerCnot);
}

double
volumePerCnot(double x, double targetPerCnot,
              const ErrorModelParams &p)
{
    int d = requiredDistanceCnot(targetPerCnot, x, p);
    return static_cast<double>(d) * d * (4.0 / x + 1.0);
}

double
optimalCnotsPerRound(double targetPerCnot, const ErrorModelParams &p)
{
    double bestX = 0.25;
    double bestV = std::numeric_limits<double>::infinity();
    // Log-grid over x in [1/8, 8]; the threshold constraint
    // (1 + alpha x) < Lambda bounds the search from above.
    for (double x = 0.125; x <= 8.0; x *= std::pow(2.0, 0.25)) {
        if ((1.0 + p.alpha * x) / p.lambda() >= 1.0)
            break;
        double v = volumePerCnot(x, targetPerCnot, p);
        if (v < bestV) {
            bestV = v;
            bestX = x;
        }
    }
    return bestX;
}

} // namespace traq::model
