#include "src/model/cultivation.hh"

#include <cmath>

#include "src/common/assert.hh"

namespace traq::model {

double
CultivationModel::volumeQubitRounds(double eps) const
{
    TRAQ_REQUIRE(eps > 0.0 && eps < 1.0,
                 "cultivation error must be in (0, 1)");
    return anchorVolume * std::pow(anchorError / eps, exponent);
}

double
CultivationModel::errorForVolume(double volume) const
{
    TRAQ_REQUIRE(volume > 0.0, "volume must be positive");
    return anchorError * std::pow(anchorVolume / volume,
                                  1.0 / exponent);
}

double
CultivationModel::volumeAtPhysicalError(double eps,
                                        double pPhys) const
{
    const double gammaP = 2.0;
    double scale = std::pow(pPhys / 1e-3, gammaP);
    return volumeQubitRounds(eps) * std::max(0.05, scale);
}

} // namespace traq::model
