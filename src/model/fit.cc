#include "src/model/fit.hh"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hh"

namespace traq::model {

MinimizeResult
nelderMead(const std::function<double(const std::vector<double> &)> &fn,
           std::vector<double> x0, const NelderMeadOptions &opts)
{
    const std::size_t n = x0.size();
    TRAQ_REQUIRE(n >= 1, "nelderMead needs at least one dimension");

    // Initial simplex: x0 plus per-axis displaced vertices.
    std::vector<std::vector<double>> pts(n + 1, x0);
    for (std::size_t i = 0; i < n; ++i) {
        double step = opts.initialStep *
                      (std::fabs(x0[i]) > 1e-12 ? std::fabs(x0[i])
                                                : 1.0);
        pts[i + 1][i] += step;
    }
    std::vector<double> vals(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        vals[i] = fn(pts[i]);

    MinimizeResult res;
    int iter = 0;
    for (; iter < opts.maxIterations; ++iter) {
        // Order: best first.
        std::vector<std::size_t> order(n + 1);
        for (std::size_t i = 0; i <= n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return vals[a] < vals[b];
                  });
        std::size_t best = order[0], worst = order[n];
        std::size_t second = order[n - 1];

        if (std::fabs(vals[worst] - vals[best]) <
            opts.tolerance * (std::fabs(vals[best]) + 1e-30)) {
            res.converged = true;
            break;
        }

        // Centroid of all but the worst.
        std::vector<double> centroid(n, 0.0);
        for (std::size_t i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (std::size_t k = 0; k < n; ++k)
                centroid[k] += pts[i][k];
        }
        for (double &c : centroid)
            c /= static_cast<double>(n);

        auto blend = [&](double t) {
            std::vector<double> p(n);
            for (std::size_t k = 0; k < n; ++k)
                p[k] = centroid[k] + t * (pts[worst][k] - centroid[k]);
            return p;
        };

        std::vector<double> refl = blend(-1.0);
        double fRefl = fn(refl);
        if (fRefl < vals[best]) {
            std::vector<double> expd = blend(-2.0);
            double fExp = fn(expd);
            if (fExp < fRefl) {
                pts[worst] = expd;
                vals[worst] = fExp;
            } else {
                pts[worst] = refl;
                vals[worst] = fRefl;
            }
        } else if (fRefl < vals[second]) {
            pts[worst] = refl;
            vals[worst] = fRefl;
        } else {
            std::vector<double> contr = blend(0.5);
            double fContr = fn(contr);
            if (fContr < vals[worst]) {
                pts[worst] = contr;
                vals[worst] = fContr;
            } else {
                // Shrink toward the best vertex.
                for (std::size_t i = 0; i <= n; ++i) {
                    if (i == best)
                        continue;
                    for (std::size_t k = 0; k < n; ++k)
                        pts[i][k] = pts[best][k] +
                                    0.5 * (pts[i][k] - pts[best][k]);
                    vals[i] = fn(pts[i]);
                }
            }
        }
    }

    std::size_t bestIdx = 0;
    for (std::size_t i = 1; i <= n; ++i)
        if (vals[i] < vals[bestIdx])
            bestIdx = i;
    res.x = pts[bestIdx];
    res.value = vals[bestIdx];
    res.iterations = iter;
    return res;
}

std::vector<CnotDataPoint>
referenceRef17Data()
{
    // Reconstructed from the reported fit: alpha = 1/6,
    // Lambda_MLE = 20, C = 0.1 at p_phys = 0.1% (see header), with
    // fixed +-10% multiplicative scatter standing in for the
    // statistical error bars of the original dataset.
    ErrorModelParams ref;
    ref.alpha = 1.0 / 6.0;
    ref.prefactorC = 0.1;
    ref.pPhys = 1e-3;
    ref.pThres = 0.02;   // Lambda_MLE = 20
    static const double jitter[] = {1.08, 0.93, 1.05, 0.91, 1.10,
                                    0.95, 1.02, 0.97, 1.06, 0.94,
                                    1.01, 0.99, 1.07, 0.92, 1.04};
    std::vector<CnotDataPoint> data;
    int j = 0;
    for (int d : {3, 5, 7}) {
        for (double x : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            CnotDataPoint pt;
            pt.d = d;
            pt.x = x;
            pt.pL = cnotLogicalError(d, x, ref) *
                    jitter[j % 15];
            ++j;
            data.push_back(pt);
        }
    }
    return data;
}

CnotFit
fitCnotAnsatz(const std::vector<CnotDataPoint> &data,
              const CnotFitOptions &opts)
{
    TRAQ_REQUIRE(data.size() >= 3, "need at least 3 data points");
    const double fixLambda = opts.fixLambda;

    auto loss = [&](const std::vector<double> &v) {
        double alpha = v[0];
        double c = v[1];
        double lambda = fixLambda > 0 ? fixLambda : v[2];
        if (alpha <= 0 || alpha > 10 || c <= 0 || lambda <= 1.0)
            return 1e12;
        double sum = 0.0;
        for (const auto &pt : data) {
            double base = (1.0 + alpha * pt.x) / lambda;
            // With lambda free, sub-threshold suppression (base < 1)
            // regularizes the three-parameter fit.  At fixed lambda
            // the prediction stays log-defined for any base > 0, and
            // near-threshold Monte-Carlo anchors (small measured
            // Lambda) legitimately push dense-x points past 1, so
            // only the free fit keeps the hard wall.
            if (base <= 0.0 ||
                (fixLambda <= 0 && base >= 1.0))
                return 1e12;
            double pred = 2.0 * c / pt.x *
                          std::pow(base, (pt.d + 1) / 2.0);
            double r = std::log(pred) - std::log(pt.pL);
            sum += r * r;
        }
        return sum / static_cast<double>(data.size());
    };

    std::vector<double> x0 =
        fixLambda > 0 ? std::vector<double>{0.3, 0.05}
                      : std::vector<double>{0.3, 0.05, 12.0};
    auto wrapped = [&](const std::vector<double> &v) {
        std::vector<double> full = v;
        if (fixLambda > 0)
            full = {v[0], v[1]};
        return loss(full);
    };
    MinimizeResult r = nelderMead(wrapped, x0, opts.nelderMead);

    CnotFit fit;
    fit.alpha = r.x[0];
    fit.prefactorC = r.x[1];
    fit.lambda = fixLambda > 0 ? fixLambda : r.x[2];
    fit.rmsLogResidual = std::sqrt(r.value);
    return fit;
}

CnotFit
fitCnotModel(const std::vector<CnotDataPoint> &data, double fixLambda)
{
    CnotFitOptions opts;
    opts.fixLambda = fixLambda;
    return fitCnotAnsatz(data, opts);
}

double
lambdaFromMemoryPair(double pPerRoundD, double pPerRoundDPlus2)
{
    TRAQ_REQUIRE(pPerRoundD > 0.0 && pPerRoundDPlus2 > 0.0,
                 "memory anchors need nonzero failure rates");
    const double lambda = pPerRoundD / pPerRoundDPlus2;
    TRAQ_REQUIRE(lambda > 1.0,
                 "memory anchors show no error suppression "
                 "(above threshold?)");
    return lambda;
}

} // namespace traq::model
