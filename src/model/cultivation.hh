/**
 * @file
 * Magic-state cultivation cost model (first stage of the factory,
 * Sec. III.6; the paper's Ref. [97], Gidney–Shutty–Jones).
 *
 * Substitution note: the original cost curve (expected volume vs
 * output infidelity, their Fig. 1) is not available offline; we model
 * it as a power law anchored at the paper's quoted operating point —
 * a per-|T> error of 7.7e-7 costs an expected 1.5e4 qubit-rounds —
 * with exponent 0.786 chosen to also pass through the low-fidelity
 * regime (~2e3 qubit-rounds at 1e-5).  All factory sizing flows
 * through this one model.
 */

#ifndef TRAQ_MODEL_CULTIVATION_HH
#define TRAQ_MODEL_CULTIVATION_HH

namespace traq::model {

/** Power-law cultivation cost curve. */
struct CultivationModel
{
    double anchorError = 7.7e-7;    //!< paper's |T> error target
    double anchorVolume = 1.5e4;    //!< qubit-rounds at the anchor
    double exponent = 0.786;        //!< d ln V / d ln (1/eps)

    /** Expected qubit-rounds to cultivate one |T> at error eps. */
    double volumeQubitRounds(double eps) const;

    /** Inverse: achievable error given a qubit-round budget. */
    double errorForVolume(double volume) const;

    /**
     * Physical-error-rate sensitivity (Sec. IV.3.1): post-selection
     * cost scales roughly exponentially in p_phys; we expose a simple
     * rescaling of the volume by (p/1e-3)^gammaP with gammaP ~ 2.
     */
    double volumeAtPhysicalError(double eps, double pPhys) const;
};

} // namespace traq::model

#endif // TRAQ_MODEL_CULTIVATION_HH
