/**
 * @file
 * Movement scheduling: accumulate a sequence of block moves, gates and
 * measurements into a total wall-clock time, tracking the largest
 * single move (which bounds the logical clock, Sec. III.1).
 *
 * The paper's gadget layouts are designed so every step moves at most
 * a small constant number of sites (sqrt(2) d for the adder MAJ block,
 * 2d for the lookup fan-out); MoveSchedule is how those claims become
 * numbers in the benches.
 */

#ifndef TRAQ_PLATFORM_MOVEMENT_HH
#define TRAQ_PLATFORM_MOVEMENT_HH

#include <string>
#include <vector>

#include "src/platform/params.hh"

namespace traq::platform {

/** One step of a movement schedule. */
struct MoveStep
{
    std::string label;
    double distance = 0.0;    //!< meters moved (0 for gate/measure)
    double duration = 0.0;    //!< seconds
};

/** Accumulates gadget execution steps into a timeline. */
class MoveSchedule
{
  public:
    explicit MoveSchedule(const AtomArrayParams &params)
        : params_(params)
    {}

    /** Move a block a given number of grid sites. */
    void addMoveSites(double sites, const std::string &label = "move");

    /** Parallel two-qubit gate layer. */
    void addGateLayer(const std::string &label = "gate");

    /** Measurement step (optionally pipelined into a move). */
    void addMeasurement(const std::string &label = "measure");

    /**
     * Measurement overlapped with a block move: contributes
     * max(measure, move) — the pipelining trick of Sec. IV.2.
     */
    void addPipelinedMeasureMove(double sites,
                                 const std::string &label =
                                     "measure+move");

    double totalTime() const { return total_; }
    double maxMoveDistance() const { return maxMove_; }
    const std::vector<MoveStep> &steps() const { return steps_; }

  private:
    AtomArrayParams params_;
    std::vector<MoveStep> steps_;
    double total_ = 0.0;
    double maxMove_ = 0.0;

    void push(const std::string &label, double dist, double dur);
};

} // namespace traq::platform

#endif // TRAQ_PLATFORM_MOVEMENT_HH
