/**
 * @file
 * Neutral-atom platform parameters (Table I of the paper) and derived
 * quantities.
 *
 * All times in seconds, lengths in meters.
 */

#ifndef TRAQ_PLATFORM_PARAMS_HH
#define TRAQ_PLATFORM_PARAMS_HH

namespace traq::platform {

/** Physical parameters of a reconfigurable atom array (Table I). */
struct AtomArrayParams
{
    double siteSpacing = 12e-6;      //!< l: grid pitch [m]
    double acceleration = 5500.0;    //!< a: effective accel [m/s^2]
    double gateTime = 1e-6;          //!< two-qubit gate [s]
    double measureTime = 500e-6;     //!< qubit measurement [s]
    double decodeTime = 500e-6;      //!< decoder latency [s]
    double coherenceTime = 10.0;     //!< T_coh [s]
    double pPhys = 1e-3;             //!< physical error rate

    /**
     * Reaction time: measurement -> decode -> conditional operation
     * (Sec. II.2); the paper assumes 1 ms from 500 us measurement
     * plus 500 us decoding.
     */
    double reactionTime() const { return measureTime + decodeTime; }

    /** Table I defaults. */
    static AtomArrayParams paperDefaults() { return {}; }
};

/**
 * Eq. (1): time to move an atom a distance L with constant-
 * magnitude acceleration/deceleration: t = 2 sqrt(L / a).
 */
double moveTime(double distance, const AtomArrayParams &p);

/** Move time across k sites of the grid. */
double moveTimeSites(double sites, const AtomArrayParams &p);

/** Physical width of a distance-d surface-code patch [m]. */
double patchWidth(int d, const AtomArrayParams &p);

/** Time to move a code patch across its own width (Sec. IV.2). */
double patchMoveTime(int d, const AtomArrayParams &p);

} // namespace traq::platform

#endif // TRAQ_PLATFORM_PARAMS_HH
