#include "src/platform/movement.hh"

#include <algorithm>

namespace traq::platform {

void
MoveSchedule::push(const std::string &label, double dist, double dur)
{
    steps_.push_back({label, dist, dur});
    total_ += dur;
    maxMove_ = std::max(maxMove_, dist);
}

void
MoveSchedule::addMoveSites(double sites, const std::string &label)
{
    double dist = sites * params_.siteSpacing;
    push(label, dist, moveTime(dist, params_));
}

void
MoveSchedule::addGateLayer(const std::string &label)
{
    push(label, 0.0, params_.gateTime);
}

void
MoveSchedule::addMeasurement(const std::string &label)
{
    push(label, 0.0, params_.measureTime);
}

void
MoveSchedule::addPipelinedMeasureMove(double sites,
                                      const std::string &label)
{
    double dist = sites * params_.siteSpacing;
    double dur = std::max(params_.measureTime,
                          moveTime(dist, params_));
    push(label, dist, dur);
}

} // namespace traq::platform
