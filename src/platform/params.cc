#include "src/platform/params.hh"

#include <cmath>

#include "src/common/assert.hh"

namespace traq::platform {

double
moveTime(double distance, const AtomArrayParams &p)
{
    TRAQ_REQUIRE(distance >= 0.0, "distance must be non-negative");
    TRAQ_REQUIRE(p.acceleration > 0.0, "acceleration must be positive");
    if (distance == 0.0)
        return 0.0;
    return 2.0 * std::sqrt(distance / p.acceleration);
}

double
moveTimeSites(double sites, const AtomArrayParams &p)
{
    return moveTime(sites * p.siteSpacing, p);
}

double
patchWidth(int d, const AtomArrayParams &p)
{
    TRAQ_REQUIRE(d >= 1, "distance must be positive");
    return d * p.siteSpacing;
}

double
patchMoveTime(int d, const AtomArrayParams &p)
{
    return moveTime(patchWidth(d, p), p);
}

} // namespace traq::platform
