#include "src/service/validation.hh"

#include <utility>

#include "src/common/assert.hh"
#include "src/common/json.hh"

namespace traq::service {

std::shared_ptr<const est::Estimator>
EstimatorPool::get(const std::string &kind)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = instances_.find(kind);
        if (it != instances_.end())
            return it->second;
    }
    // Instantiate outside the lock (factories may be arbitrarily
    // expensive); a racing duplicate create is harmless — the first
    // insert wins so every caller shares one instance.
    std::shared_ptr<const est::Estimator> fresh =
        est::makeEstimator(kind);
    std::lock_guard<std::mutex> lock(mutex_);
    return instances_.emplace(kind, std::move(fresh))
        .first->second;
}

ParsedLine
parseRequestLine(std::string_view text)
{
    ParsedLine line;
    json::Value doc;
    try {
        doc = json::parse(text);
    } catch (const FatalError &e) {
        line.error = {errc::json, e.what()};
        return line;
    }
    try {
        if (doc.isArray()) {
            // Parse the whole batch before reporting success so a
            // malformed element fails the line atomically.
            line.batch = true;
            line.requests.reserve(doc.asArray().size());
            for (const json::Value &elem : doc.asArray())
                line.requests.push_back(est::requestFromJson(elem));
        } else {
            line.requests.push_back(est::requestFromJson(doc));
        }
    } catch (const FatalError &e) {
        line.error = {errc::shape, e.what()};
        line.requests.clear();
    }
    return line;
}

Validated
Validator::validate(est::EstimateRequest req) const
{
    Validated v;
    v.request = std::move(req);
    if (computeKey_)
        v.key = est::canonicalKey(v.request);
    std::shared_ptr<const est::Estimator> estimator;
    try {
        estimator = pool_->get(v.request.kind);
    } catch (const FatalError &e) {
        v.error = {errc::kind, e.what()};
        return v;
    }
    try {
        estimator->checkParams(v.request);
    } catch (const FatalError &e) {
        v.error = {errc::param, e.what()};
    }
    return v;
}

} // namespace traq::service
