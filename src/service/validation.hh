/**
 * @file
 * Validation / admission layer of the service tier.
 *
 * Sits between the wire (raw request lines) and the scheduler: it
 * turns text into checked work, so by the time a job reaches the
 * ready queue the only failures left are evaluation-time ones.
 * Three steps, each with its own structured error class (job.hh
 * errc):
 *
 *   1. parseRequestLine — JSON text -> EstimateRequest(s).  A line
 *      that is not JSON is errc::json; JSON of the wrong shape for
 *      an EstimateRequest is errc::shape.  Neither ever reaches the
 *      scheduler, matching the pre-split traq_serve behavior where
 *      malformed lines were answered directly and never counted in
 *      queue statistics.
 *   2. kind resolution — the EstimatorPool instantiates (and caches)
 *      the estimator for the request kind; an unknown kind is
 *      errc::kind with makeEstimator's exact FatalError message.
 *   3. per-kind parameter checks — Estimator::checkParams runs the
 *      kind's spec-application phase on a scratch spec, so an
 *      unknown parameter name or unappliable value is rejected at
 *      admission (errc::param) with byte-identical diagnostics to
 *      what estimate() would have thrown from a worker.
 *
 * Steps 2 and 3 produce a Validated ticket: either a request plus
 * its canonical cache key, or a structured JobError.  Both outcomes
 * are admitted to the scheduler — deterministic validation failures
 * are cached and persisted exactly like evaluation failures were in
 * the monolithic JobQueue, so stats counters and golden output bytes
 * are unchanged.
 */

#ifndef TRAQ_SERVICE_VALIDATION_HH
#define TRAQ_SERVICE_VALIDATION_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/estimator/estimator.hh"
#include "src/service/job.hh"

namespace traq::service {

/**
 * Shared per-kind estimator instances.  estimate() is const and
 * thread-safe by contract, so one instance per kind is shared by the
 * validator (checkParams) and every scheduler worker; sharing keeps
 * per-instance memo caches (e.g. qldpc-storage's reference solve)
 * warm across jobs.  Thread-safe.
 */
class EstimatorPool
{
  public:
    /**
     * The estimator for @p kind, instantiating on first use.
     * Throws FatalError ("no estimator registered for kind ...")
     * for unknown kinds — the caller owns classifying that.
     */
    std::shared_ptr<const est::Estimator>
    get(const std::string &kind);

  private:
    std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const est::Estimator>>
        instances_;
};

/** One parsed request line: an error, a single job, or a batch. */
struct ParsedLine
{
    bool batch = false;
    std::vector<est::EstimateRequest> requests;
    JobError error; //!< non-empty: nothing may be submitted
};

/**
 * Parse one wire line (a request object or an array of them) into
 * requests.  Never throws: malformed input comes back as a
 * structured JobError (errc::json / errc::shape) whose message is
 * the exact FatalError text, so drivers emit the same bytes the
 * pre-split traq_serve did.  A batch parses atomically: one bad
 * element fails the whole line.
 */
ParsedLine parseRequestLine(std::string_view text);

/** Admission ticket: a validated request or a structured error. */
struct Validated
{
    est::EstimateRequest request;
    std::string key; //!< canonicalKey; empty when caching is off
    JobError error;  //!< non-empty: failed validation

    bool ok() const { return error.empty(); }
};

/**
 * Request validator: kind resolution + per-kind parameter checks +
 * cache-key computation.  Stateless apart from the shared pool;
 * thread-safe.
 */
class Validator
{
  public:
    /**
     * @param pool        shared estimator instances (also used by
     *                    the scheduler workers).
     * @param computeKey  compute est::canonicalKey for cacheable
     *                    admission; off when the result cache is
     *                    off.
     */
    Validator(std::shared_ptr<EstimatorPool> pool, bool computeKey)
        : pool_(std::move(pool)), computeKey_(computeKey)
    {}

    /**
     * Validate one request.  Never throws FatalError: an unknown
     * kind (errc::kind) or rejected parameter (errc::param) comes
     * back as a Validated carrying the structured error — with the
     * exact message estimate() would have produced — because
     * deterministic validation failures are admitted, cached, and
     * persisted like any other outcome.  Kinds whose checkParams is
     * the accept-everything default defer bad parameters to
     * evaluation (errc::estimate, assigned by the scheduler).
     */
    Validated validate(est::EstimateRequest req) const;

  private:
    std::shared_ptr<EstimatorPool> pool_;
    bool computeKey_ = true;
};

} // namespace traq::service

#endif // TRAQ_SERVICE_VALIDATION_HH
