#include "src/service/wire.hh"

#include <charconv>

#include "src/common/assert.hh"

namespace traq::service::wire {

std::string
tagLine(std::size_t index, std::string_view payload)
{
    TRAQ_REQUIRE(!payload.empty() &&
                     (payload[0] == '{' || payload[0] == '['),
                 "tagLine: payload must be an object or array");
    std::string out = "{\"index\":" + std::to_string(index);
    if (payload[0] == '{') {
        // Splice the index member into the existing object.  An
        // empty object "{}" has nothing to join with a comma.
        if (payload.size() > 2)
            out += ',';
        out.append(payload.begin() + 1, payload.end());
    } else {
        out += ",\"batch\":";
        out.append(payload);
        out += '}';
    }
    return out;
}

TaggedLine
splitTagged(std::string_view line)
{
    constexpr std::string_view prefix = "{\"index\":";
    TRAQ_REQUIRE(line.substr(0, prefix.size()) == prefix,
                 "splitTagged: missing index tag: " +
                     std::string(line.substr(0, 32)));
    std::string_view rest = line.substr(prefix.size());
    TaggedLine out;
    const auto [ptr, ec] = std::from_chars(
        rest.data(), rest.data() + rest.size(), out.index);
    TRAQ_REQUIRE(ec == std::errc() && ptr != rest.data(),
                 "splitTagged: malformed index: " +
                     std::string(line.substr(0, 32)));
    rest.remove_prefix(
        static_cast<std::size_t>(ptr - rest.data()));
    if (rest == "}") {
        // Tagged empty object: the payload was "{}".
        out.payload = "{}";
        return out;
    }
    TRAQ_REQUIRE(!rest.empty() && rest[0] == ',',
                 "splitTagged: malformed tagged line: " +
                     std::string(line.substr(0, 32)));
    rest.remove_prefix(1);
    constexpr std::string_view batch = "\"batch\":[";
    if (rest.substr(0, batch.size()) == batch) {
        TRAQ_REQUIRE(!rest.empty() && rest.back() == '}',
                     "splitTagged: unterminated batch line");
        out.payload.assign(rest.begin() + batch.size() - 1,
                           rest.end() - 1);
        return out;
    }
    out.payload = "{";
    out.payload.append(rest);
    return out;
}

} // namespace traq::service::wire
