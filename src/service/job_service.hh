/**
 * @file
 * Service facade: the one object drivers construct.
 *
 * JobService wires the three service layers together — a shared
 * EstimatorPool, a Validator (admission checks, validation.hh), and
 * a Scheduler (worker pool + cache + bounded ready queue,
 * scheduler.hh) — behind the API the old monolithic JobQueue had,
 * plus the completion-order streaming primitives the streaming
 * drivers (traq_serve, traq_dispatch) build on.
 *
 * The behavioral contract is unchanged from the monolith:
 *
 *  - JobIds are 0-based submission indices; reading outcomes back
 *    in JobId order is byte-identical for any worker count, because
 *    estimators are deterministic pure functions and outcomes are
 *    never indexed by worker identity;
 *  - completed jobs are memoized by est::canonicalKey, including
 *    deterministic failures (a request that fails validation or
 *    throws FatalError once fails with the same message forever;
 *    transient system errors are reported but evicted);
 *  - cache accounting is resolved serially at submission, so the
 *    hits/evaluated/failed counters depend only on the submission
 *    sequence and can appear in golden outputs;
 *  - a cache file (explicit option > TRAQ_CACHE_FILE env > off)
 *    pre-loads the persistent store at construction and appends
 *    cacheable completions; a path with the cache off fails loudly.
 *
 * What the split adds on top: submit() validates eagerly (unknown
 * kinds and rejected parameters never occupy a worker), errors are
 * structured (JobOutcome::errorCode), submission backpressure is
 * bounded (JobQueueOptions::readyCapacity), and completions can be
 * consumed in completion order (waitCompleted) for streaming
 * output.
 *
 * src/service/job_queue.hh keeps the old spelling (JobQueue) as an
 * alias of this class, so pre-split callers compile unchanged.
 */

#ifndef TRAQ_SERVICE_JOB_SERVICE_HH
#define TRAQ_SERVICE_JOB_SERVICE_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/service/job.hh"
#include "src/service/scheduler.hh"
#include "src/service/validation.hh"

namespace traq::service {

/** Execution options for a JobService. */
struct JobQueueOptions
{
    /** Worker threads; 0 = TRAQ_THREADS env or hardware. */
    unsigned threads = 0;
    /** Memoize completed jobs by est::canonicalKey. */
    bool cache = true;
    /**
     * Persistent content-addressed store backing the result cache
     * (caching tier 3; common/castore.hh).  Explicit non-empty path
     * wins, otherwise the TRAQ_CACHE_FILE environment variable,
     * otherwise no persistence.  Requires cache == true; a path
     * with the cache off fails loudly (the store IS the cache's
     * disk form, silently ignoring it would be a lie).
     */
    std::string cacheFile;
    /**
     * Bound on evaluations queued ahead of the workers: submit()
     * blocks while the ready queue is full, so a streaming producer
     * holds a bounded footprint.  0 = auto (max(64, 8 * threads)).
     * Cache hits and validation rejections never occupy a slot.
     */
    std::size_t readyCapacity = 0;
};

/** Queue counters; see SchedulerStats for field semantics. */
using JobQueueStats = SchedulerStats;

/** Layered estimate-serving front-end; see the file comment. */
class JobService
{
  public:
    /** Job handle: the 0-based submission index. */
    using JobId = service::JobId;

    explicit JobService(JobQueueOptions opts = {});

    /** Drains outstanding work, then joins the workers. */
    ~JobService() = default;

    JobService(const JobService &) = delete;
    JobService &operator=(const JobService &) = delete;

    /**
     * Validate and enqueue one request.  Returns once the job is
     * admitted; blocks only when the ready queue is full
     * (backpressure).  Validation failures are admitted as terminal
     * jobs, never thrown.
     */
    JobId submit(est::EstimateRequest req);

    /** Enqueue a batch; JobIds are consecutive in request order. */
    std::vector<JobId>
    submitBatch(std::vector<est::EstimateRequest> reqs);

    /**
     * Block until job id is terminal.  The reference stays valid
     * for the service's lifetime.
     */
    const JobOutcome &wait(JobId id);

    /** Block until every submitted job is terminal. */
    void drain();

    /**
     * Declare that no further submissions will happen; unblocks
     * waitCompleted() consumers once the stream is exhausted.
     */
    void closeSubmissions();

    /**
     * Next job id in completion order (each id announced exactly
     * once); std::nullopt after closeSubmissions() once drained.
     */
    std::optional<JobId> waitCompleted();

    JobQueueStats stats() const;

    /** Resolved worker count. */
    unsigned threads() const;

  private:
    std::shared_ptr<EstimatorPool> pool_;
    Validator validator_;
    std::unique_ptr<Scheduler> scheduler_;
};

} // namespace traq::service

#endif // TRAQ_SERVICE_JOB_SERVICE_HH
