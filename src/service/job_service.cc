#include "src/service/job_service.hh"

#include <utility>

#include "src/common/assert.hh"
#include "src/common/castore.hh"

namespace traq::service {
namespace {

std::shared_ptr<EstimatorPool>
makePool()
{
    return std::make_shared<EstimatorPool>();
}

SchedulerOptions
schedulerOptions(const JobQueueOptions &opts)
{
    // Resolve the persistent-store policy here, at the facade, so
    // the contradiction check fires before any worker spawns and
    // keeps the message the monolithic JobQueue used.
    const std::string cachePath = resolveCacheFile(opts.cacheFile);
    if (!cachePath.empty())
        TRAQ_REQUIRE(opts.cache,
                     "JobQueue: a cache file requires the result "
                     "cache (the store is its disk form; refusing "
                     "to silently ignore the path)");
    SchedulerOptions sched;
    sched.threads = opts.threads;
    sched.cache = opts.cache;
    sched.cacheFile = cachePath;
    sched.readyCapacity = opts.readyCapacity;
    return sched;
}

} // namespace

JobService::JobService(JobQueueOptions opts)
    : pool_(makePool()), validator_(pool_, opts.cache),
      scheduler_(std::make_unique<Scheduler>(schedulerOptions(opts),
                                             pool_))
{}

JobService::JobId
JobService::submit(est::EstimateRequest req)
{
    return scheduler_->admit(validator_.validate(std::move(req)));
}

std::vector<JobService::JobId>
JobService::submitBatch(std::vector<est::EstimateRequest> reqs)
{
    std::vector<JobId> ids;
    ids.reserve(reqs.size());
    for (est::EstimateRequest &req : reqs)
        ids.push_back(submit(std::move(req)));
    return ids;
}

const JobOutcome &
JobService::wait(JobId id)
{
    return scheduler_->wait(id);
}

void
JobService::drain()
{
    scheduler_->drain();
}

void
JobService::closeSubmissions()
{
    scheduler_->closeSubmissions();
}

std::optional<JobId>
JobService::waitCompleted()
{
    return scheduler_->waitCompleted();
}

JobQueueStats
JobService::stats() const
{
    return scheduler_->stats();
}

unsigned
JobService::threads() const
{
    return scheduler_->threads();
}

} // namespace traq::service
