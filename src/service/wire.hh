/**
 * @file
 * Wire format shared by the streaming drivers (traq_serve,
 * traq_dispatch).
 *
 * Ordered mode emits the classic per-line payloads in input order:
 * a result object (est::toJson), an array of result objects for a
 * batch line, or {"error":"..."}.  Unordered (streaming) mode emits
 * the same payloads in completion order, each tagged with the
 * 0-based ordinal of its input line so a consumer can reorder:
 *
 *   object payload  {"kind":...}   ->  {"index":N,"kind":...}
 *   error payload   {"error":...}  ->  {"index":N,"error":...}
 *   batch payload   [...]          ->  {"index":N,"batch":[...]}
 *
 * tagLine / splitTagged are exact inverses on these shapes, which
 * is what lets the dispatcher run its workers unordered and still
 * reproduce byte-identical ordered output: strip the tag, reorder
 * by index, and the bytes are the single-process ordered stream.
 */

#ifndef TRAQ_SERVICE_WIRE_HH
#define TRAQ_SERVICE_WIRE_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace traq::service::wire {

/**
 * Tag one ordered-format payload line (no trailing newline) with
 * its input-line index.  @p payload must start with '{' (result or
 * error object) or '[' (batch array).
 */
std::string tagLine(std::size_t index, std::string_view payload);

/** One untagged result: input-line index + ordered-format payload. */
struct TaggedLine
{
    std::size_t index = 0;
    std::string payload;
};

/**
 * Invert tagLine: parse the index prefix and reconstruct the
 * ordered-format payload.  Throws FatalError on anything that is
 * not a well-formed tagged line — a dispatcher must fail loudly on
 * a corrupt worker stream, not emit garbage downstream.
 */
TaggedLine splitTagged(std::string_view line);

} // namespace traq::service::wire

#endif // TRAQ_SERVICE_WIRE_HH
