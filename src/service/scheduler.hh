/**
 * @file
 * Scheduler layer of the service tier: worker pool, result cache,
 * bounded ready queue, and completion streaming.
 *
 * The scheduler accepts Validated admission tickets (validation.hh)
 * and owns everything after admission:
 *
 *  - the canonicalKey result cache, including pre-loading the
 *    persistent CaStore (caching tier 3) at construction and
 *    appending cacheable completions — successes and deterministic
 *    FatalError failures, never transient errors;
 *  - cache accounting resolved serially at admission under one
 *    lock, so the hits/evaluated/failed counters depend only on the
 *    admission sequence, never on worker timing, and can appear in
 *    golden outputs;
 *  - a worker pool (shared resolveThreadCount policy) feeding off a
 *    *bounded* ready queue: admit() blocks while the queue is full,
 *    so an unbounded producer (a streaming driver reading stdin
 *    faster than estimates run) holds a bounded memory footprint.
 *    Cache hits and pre-failed tickets bypass the bound — they
 *    never occupy a ready slot;
 *  - completion streaming: every job id is announced exactly once,
 *    in completion order, through waitCompleted() — the primitive
 *    under traq_serve's unordered mode.  wait(id) still provides
 *    submission-order readback for ordered output.
 *
 * Each evaluation entry carries a checked JobStateMachine (job.hh):
 * submitted -> validated -> scheduled -> running -> done/failed,
 * with the cache-hit and validation-rejected shortcuts.  An illegal
 * transition is a loud TRAQ_FATAL at the buggy call site.
 */

#ifndef TRAQ_SERVICE_SCHEDULER_HH
#define TRAQ_SERVICE_SCHEDULER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/castore.hh"
#include "src/service/job.hh"
#include "src/service/validation.hh"

namespace traq::service {

/** Execution options for a Scheduler. */
struct SchedulerOptions
{
    /** Worker threads; 0 = TRAQ_THREADS env or hardware. */
    unsigned threads = 0;
    /** Memoize completed jobs by canonical key. */
    bool cache = true;
    /**
     * Resolved persistent-store path (the facade applies the
     * explicit-option > TRAQ_CACHE_FILE > off policy and the
     * cache-required check before handing the path down); "" = no
     * persistence.
     */
    std::string cacheFile;
    /**
     * Ready-queue bound: admit() blocks while this many evaluations
     * are queued and not yet picked up by a worker.  0 = auto
     * (max(64, 8 * threads)).
     */
    std::size_t readyCapacity = 0;
};

/**
 * Scheduler counters.  Deterministic functions of the admission
 * sequence except inflight (a live gauge) and readyHighWater (the
 * deepest the bounded ready queue ever got — timing-dependent, but
 * never above the bound).
 */
struct SchedulerStats
{
    std::size_t submitted = 0; //!< tickets admitted
    std::size_t evaluated = 0; //!< evaluations scheduled (unique keys)
    std::size_t cacheHits = 0; //!< jobs served by an existing entry
    /** Subset of cacheHits served by an entry pre-loaded from the
     *  persistent store (0 without a cache file). */
    std::size_t persistentHits = 0;
    std::size_t failed = 0;    //!< terminal outcomes with ok == false
    std::size_t inflight = 0;  //!< admitted, not yet terminal
    /** Peak ready-queue depth; <= the configured bound. */
    std::size_t readyHighWater = 0;
};

/** Worker pool + cache + bounded queue; see the file comment. */
class Scheduler
{
  public:
    /**
     * @param pool shared estimator instances, the same pool the
     *             validator resolves kinds through.
     */
    Scheduler(SchedulerOptions opts,
              std::shared_ptr<EstimatorPool> pool);

    /** Drains outstanding work, then joins the workers. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit one validated ticket; returns its JobId (the 0-based
     * admission index).  Cache hits and validation-rejected tickets
     * complete immediately; fresh evaluations enter the bounded
     * ready queue, blocking while it is full.  Admission accounting
     * (evaluated / cacheHits / persistentHits / failed for
     * validation rejections) happens here, serially.
     */
    JobId admit(Validated ticket);

    /**
     * Block until job @p id is terminal.  The reference stays valid
     * for the scheduler's lifetime.
     */
    const JobOutcome &wait(JobId id);

    /** Block until every admitted job is terminal. */
    void drain();

    /**
     * Declare that no further admit() calls will happen, unblocking
     * waitCompleted() consumers once the stream is exhausted.
     */
    void closeSubmissions();

    /**
     * Next job id in completion order.  Every admitted id is
     * announced exactly once (duplicates of one cache entry are
     * announced individually).  Blocks until an id is available;
     * returns std::nullopt once closeSubmissions() has been called
     * and every announced id has been consumed.
     */
    std::optional<JobId> waitCompleted();

    SchedulerStats stats() const;

    /** Resolved worker count. */
    unsigned threads() const { return threads_; }

    /** Resolved ready-queue bound. */
    std::size_t readyCapacity() const { return readyCapacity_; }

  private:
    /**
     * One unit of evaluation.  Duplicate admissions alias the same
     * entry; jobRefs counts aliases still waiting so the inflight
     * gauge can settle without scanning the job table, and waiters
     * lists their ids for completion-order announcement.
     */
    struct Entry
    {
        est::EstimateRequest request;
        std::string key; //!< canonicalKey; empty when cache is off
        JobOutcome outcome;
        JobStateMachine state;
        bool done = false;
        /** Pre-loaded from the persistent store (tier 3): hits on
         *  this entry count as persistentHits. */
        bool fromStore = false;
        std::size_t jobRefs = 0;
        std::vector<JobId> waiters; //!< ids waiting on completion
    };

    void workerMain();
    void runEntry(Entry &entry);
    /** Complete @p entry under the lock; returns the ids to
     *  announce (already pushed to completed_). */
    void finishLocked(Entry &entry, JobOutcome outcome);

    SchedulerOptions opts_;
    unsigned threads_ = 1;
    std::size_t readyCapacity_ = 0;
    std::shared_ptr<EstimatorPool> pool_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;  //!< ready_ / stop_ changes
    std::condition_variable doneCv_;  //!< entry completions
    std::condition_variable spaceCv_; //!< ready_ slots freed
    std::condition_variable streamCv_; //!< completed_ / closed_
    std::deque<Entry *> ready_;
    std::vector<std::shared_ptr<Entry>> jobs_; //!< JobId -> entry
    std::unordered_map<std::string, std::shared_ptr<Entry>> byKey_;
    std::deque<JobId> completed_; //!< announced, not yet consumed
    SchedulerStats stats_;
    /** Tier-3 persistent store; detached when no cacheFile. */
    CaStore store_;
    bool stop_ = false;
    bool closed_ = false;
    std::vector<std::thread> workers_;
};

} // namespace traq::service

#endif // TRAQ_SERVICE_SCHEDULER_HH
