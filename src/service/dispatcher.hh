/**
 * @file
 * Sharded multi-worker dispatcher: fans a request-line stream out
 * across N traq_serve subprocesses and merges their streaming
 * output back into one result stream.
 *
 * Each worker is a child process running traq_serve in its default
 * streaming mode, connected by a pipe pair (stdin for request
 * lines, stdout for tagged result lines).  The dispatcher:
 *
 *  - shards round-robin across *live* workers, with a bounded
 *    per-shard inflight window: submit() blocks while every live
 *    worker is at its bound, so a fast producer cannot buffer an
 *    unbounded request backlog inside slow children;
 *  - remaps indices: each worker sees a dense local index sequence
 *    (a worker skips nothing, so its tag ordinals are exactly the
 *    lines the dispatcher wrote to it), and a per-worker reader
 *    thread translates local tags back to the caller's global
 *    indices;
 *  - isolates failures: a worker that dies (crash, kill, exit)
 *    takes only its own unacknowledged jobs with it.  Those lines
 *    are requeued onto the surviving workers — results are the
 *    at-least-once retry side; the exactly-once output guarantee
 *    comes from index dedup in waitResult() (a line acknowledged by
 *    a worker just before death may race its requeue; the second
 *    copy is dropped).  Only a *complete* worker line (trailing
 *    newline seen) counts as acknowledged — a torn final line from
 *    a dying worker is discarded, never emitted.  So the requeue
 *    guarantee holds through the whole drain, every worker's stdin
 *    — including drained, idle workers' — stays open until every
 *    submitted index has been answered: an idle worker is the
 *    retry target if a still-busy one dies, and releasing it early
 *    (EOF → exit) would strand the requeue with no live shard;
 *  - fails loudly (FatalError) only when no live worker remains and
 *    unfinished jobs exist — with zero workers nothing can ever
 *    complete, and silence would hang the caller.
 *
 * Because every worker runs the same deterministic estimators, the
 * merged results — reordered by global index — are byte-identical
 * to a single traq_serve --ordered run over the same stream, for
 * any worker count.  CI diffs exactly that.
 */

#ifndef TRAQ_SERVICE_DISPATCHER_HH
#define TRAQ_SERVICE_DISPATCHER_HH

#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <sys/types.h>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/service/wire.hh"

namespace traq::service {

/** Execution options for a Dispatcher. */
struct DispatcherOptions
{
    /** Path to the traq_serve executable. */
    std::string servePath;
    /** Worker process count (>= 1). */
    unsigned workers = 2;
    /**
     * Per-worker inflight bound: lines written to a worker but not
     * yet answered.  submit() blocks while every live worker is at
     * the bound.  0 = default (32).
     */
    std::size_t inflight = 0;
    /**
     * Extra arguments forwarded to every worker (e.g. --threads,
     * --cache).  The dispatcher itself adds nothing; per-worker
     * cache files are the caller's job (traq_dispatch suffixes
     * ".wN" — stores are single-writer, common/castore.hh).
     */
    std::vector<std::string> workerArgs;
    /**
     * Per-worker value for the TRAQ_CACHE_FILE environment
     * variable; "" entries unset it.  Size must be 0 (inherit) or
     * == workers.  This is how traq_dispatch keeps a cache-file
     * environment inherited from the parent from pointing every
     * worker at the same single-writer store.
     */
    std::vector<std::string> workerCacheFiles;
};

/** One merged result: global input-line index + untagged payload. */
struct DispatchResult
{
    std::size_t index = 0;
    std::string payload; //!< ordered-format line (wire.hh)
};

/** Multi-process sharding front-end; see the file comment. */
class Dispatcher
{
  public:
    explicit Dispatcher(DispatcherOptions opts);

    /** Closes worker stdins, drains, reaps every child. */
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /**
     * Shard one request line (no trailing newline) under global
     * index @p index.  Blocks while every live worker is at the
     * inflight bound; throws FatalError when no live worker
     * remains.
     */
    void submit(std::size_t index, const std::string &line);

    /**
     * Declare end of input.  Worker stdins are NOT closed yet
     * unless every submitted index is already answered: drained
     * workers stay available as retry targets for a busy worker's
     * death.  waitResult() drains the remaining answers and
     * releases the children (stdin EOF) once the drain completes.
     */
    void closeSubmissions();

    /**
     * Next merged result in arrival order, deduplicated by global
     * index (exactly one result per submitted index, ever).
     * Blocks; returns std::nullopt when every submitted index has
     * been answered and submissions are closed.  Throws FatalError
     * when unfinished jobs remain but every worker is dead.
     */
    std::optional<DispatchResult> waitResult();

    /** Live worker count (for tests and diagnostics). */
    unsigned liveWorkers() const;

    /** Child pids, one per worker slot; -1 after reap (tests kill
     *  a worker through this to exercise the retry path). */
    std::vector<pid_t> workerPids() const;

  private:
    /** One pending job as a worker knows it. */
    struct Job
    {
        std::size_t index = 0; //!< global index
        std::string line;      //!< raw request line
    };

    /** One worker subprocess and its reader state. */
    struct Worker
    {
        pid_t pid = -1;
        int stdinFd = -1;        //!< dispatcher -> child; -1 = closed
        std::FILE *out = nullptr; //!< child stdout, read side
        bool alive = false;
        bool stdinOpen = false; //!< accepts new sends (logical)
        /** A send is mid-write on stdinFd with the lock dropped.
         *  While set, the worker is skipped by every selection
         *  loop (serialises writes so local-index assignment order
         *  matches pipe arrival order) and stdinFd must not be
         *  closed by another thread (closing an fd under a
         *  concurrent ::write races fd reuse) — closeStdin()
         *  defers the ::close to sendToWorker(). */
        bool writing = false;
        std::size_t nextLocal = 0; //!< next local index to assign
        /** Local index -> job; erased on acknowledgement.  Kept
         *  (not cleared) after death so results buffered in the
         *  dead worker's pipe can still be mapped. */
        std::unordered_map<std::size_t, Job> unacked;
        std::thread reader;
    };

    void spawnWorker(std::size_t slot);
    void readerMain(std::size_t slot);
    /** Mark a worker dead and requeue its unacked jobs (lock
     *  held). */
    void workerLost(std::size_t slot);
    /** Logically close a worker's stdin (lock held); the ::close
     *  itself is deferred while Worker::writing is set. */
    void closeStdin(Worker &w);
    /** Close every worker's stdin once submissions are closed and
     *  answered_ == submitted_ (lock held); no-op before then. */
    void releaseWorkersIfDone();
    /** Write one job to a worker (lock held for bookkeeping; the
     *  write itself is outside).  Returns false when the worker's
     *  pipe broke. */
    bool sendToWorker(std::size_t slot, Job job,
                      std::unique_lock<std::mutex> &lock);
    void pumpRequeued(std::unique_lock<std::mutex> &lock);

    DispatcherOptions opts_;
    std::size_t inflightBound_ = 32;

    mutable std::mutex mutex_;
    std::condition_variable resultCv_; //!< results_ / liveness
    std::condition_variable spaceCv_;  //!< inflight slots freed
    std::vector<Worker> workers_;
    std::deque<Job> requeued_; //!< jobs orphaned by a dead worker
    std::deque<DispatchResult> results_;
    std::vector<bool> emitted_; //!< by global index (dedup)
    std::size_t submitted_ = 0;
    std::size_t answered_ = 0; //!< distinct indices emitted
    std::size_t rrNext_ = 0;   //!< round-robin cursor
    bool closed_ = false;
};

} // namespace traq::service

#endif // TRAQ_SERVICE_DISPATCHER_HH
