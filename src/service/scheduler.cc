#include "src/service/scheduler.hh"

#include <algorithm>
#include <utility>

#include "src/common/assert.hh"
#include "src/common/json.hh"
#include "src/common/threads.hh"

namespace traq::service {
namespace {

/**
 * Inverse of JobOutcome::toJson(): stored values are either a result
 * object or {"error":"..."}.  Malformed store content throws
 * FatalError — records are checksummed, so this only fires on
 * hand-edited files, and silence would serve garbage.  The store
 * does not record error classes, so a re-loaded failure reports the
 * evaluation class (every persisted failure was a deterministic
 * FatalError from validation or evaluation).
 */
JobOutcome
outcomeFromStoredJson(const std::string &text)
{
    JobOutcome outcome;
    const json::Value v = json::parse(text);
    if (v.isObject()) {
        if (const json::Value *err = v.find("error")) {
            outcome.ok = false;
            outcome.error = err->asString();
            outcome.errorCode = errc::estimate;
            return outcome;
        }
    }
    outcome.result = est::resultFromJson(v);
    outcome.ok = true;
    return outcome;
}

} // namespace

Scheduler::Scheduler(SchedulerOptions opts,
                     std::shared_ptr<EstimatorPool> pool)
    : opts_(std::move(opts)), pool_(std::move(pool))
{
    TRAQ_REQUIRE(pool_ != nullptr,
                 "Scheduler needs an estimator pool");
    if (!opts_.cacheFile.empty()) {
        TRAQ_REQUIRE(opts_.cache,
                     "Scheduler: a cache file requires the result "
                     "cache (the store is its disk form)");
        store_.open(opts_.cacheFile);
        // Pre-load every stored outcome as a done cache entry:
        // admission-time hits on them are plain map lookups, so a
        // restarted worker serves warm traffic at warm-cache speed.
        store_.forEach([this](const std::string &key,
                              const std::string &value) {
            auto entry = std::make_shared<Entry>();
            entry->key = key;
            entry->outcome = outcomeFromStoredJson(value);
            entry->done = true;
            entry->fromStore = true;
            entry->state.step(JobState::Validated);
            entry->state.step(entry->outcome.ok ? JobState::Done
                                                : JobState::Failed);
            byKey_.emplace(key, std::move(entry));
        });
    }
    threads_ = resolveThreadCount(opts_.threads);
    readyCapacity_ =
        opts_.readyCapacity
            ? opts_.readyCapacity
            : std::max<std::size_t>(64, 8 * std::size_t{threads_});
    workers_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
        workers_.emplace_back([this] { workerMain(); });
}

Scheduler::~Scheduler()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    spaceCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

JobId
Scheduler::admit(Validated ticket)
{
    std::shared_ptr<Entry> entry;
    JobId id = 0;
    std::string persist; //!< store append for validation failures
    bool terminalAtAdmit = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        id = jobs_.size();
        ++stats_.submitted;
        if (!ticket.key.empty()) {
            // Cache membership is decided here, serially, so the
            // hit/evaluated counters depend only on the admission
            // sequence — not on whether a worker finished the first
            // occurrence yet.
            auto it = byKey_.find(ticket.key);
            if (it != byKey_.end()) {
                entry = it->second;
                ++stats_.cacheHits;
                if (entry->fromStore)
                    ++stats_.persistentHits;
                jobs_.push_back(entry);
                if (entry->done) {
                    completed_.push_back(id);
                    lock.unlock();
                    streamCv_.notify_all();
                } else {
                    ++entry->jobRefs;
                    ++stats_.inflight;
                    entry->waiters.push_back(id);
                }
                return id;
            }
        }
        entry = std::make_shared<Entry>();
        entry->request = std::move(ticket.request);
        entry->key = ticket.key;
        if (!entry->key.empty())
            byKey_.emplace(entry->key, entry);
        ++stats_.evaluated;
        jobs_.push_back(entry);
        if (!ticket.error.empty()) {
            // Deterministic validation rejection: terminal at
            // admission, cached and persisted exactly like an
            // evaluation-time FatalError was in the monolithic
            // queue (same counters, same message bytes).
            entry->state.step(JobState::Failed);
            entry->outcome.ok = false;
            entry->outcome.error = ticket.error.message;
            entry->outcome.errorCode = ticket.error.code;
            entry->done = true;
            terminalAtAdmit = true;
            ++stats_.failed;
            completed_.push_back(id);
            if (store_.attached() && !entry->key.empty())
                persist = entry->outcome.toJson();
        } else {
            entry->state.step(JobState::Validated);
            entry->jobRefs = 1;
            entry->waiters.push_back(id);
            ++stats_.inflight;
            // Bounded admission: hold the producer while the ready
            // queue is full.  Cache hits and rejections above never
            // reach this wait — they occupy no ready slot.
            spaceCv_.wait(lock, [this] {
                return ready_.size() < readyCapacity_ || stop_;
            });
            entry->state.step(JobState::Scheduled);
            ready_.push_back(entry.get());
            stats_.readyHighWater =
                std::max(stats_.readyHighWater, ready_.size());
        }
    }
    if (terminalAtAdmit) {
        streamCv_.notify_all();
        if (!persist.empty())
            store_.put(entry->key, persist);
    } else {
        workCv_.notify_one();
    }
    return id;
}

const JobOutcome &
Scheduler::wait(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    TRAQ_REQUIRE(id < jobs_.size(), "job id out of range");
    Entry &entry = *jobs_[id];
    doneCv_.wait(lock, [&entry] { return entry.done; });
    return entry.outcome;
}

void
Scheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [this] { return stats_.inflight == 0; });
}

void
Scheduler::closeSubmissions()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    streamCv_.notify_all();
}

std::optional<JobId>
Scheduler::waitCompleted()
{
    std::unique_lock<std::mutex> lock(mutex_);
    streamCv_.wait(lock, [this] {
        return !completed_.empty() ||
               (closed_ && stats_.inflight == 0);
    });
    if (!completed_.empty()) {
        const JobId id = completed_.front();
        completed_.pop_front();
        return id;
    }
    return std::nullopt; // closed and fully drained
}

SchedulerStats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
Scheduler::workerMain()
{
    while (true) {
        Entry *entry = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] {
                return stop_ || !ready_.empty();
            });
            if (ready_.empty())
                return; // stop_ set and no work left
            entry = ready_.front();
            ready_.pop_front();
            entry->state.step(JobState::Running);
        }
        spaceCv_.notify_one();
        runEntry(*entry);
    }
}

void
Scheduler::runEntry(Entry &entry)
{
    JobOutcome outcome;
    // Persist successes and deterministic failures; transient
    // errors are evicted from the in-memory cache and must not be
    // frozen into the store either.
    bool persistable = false;
    try {
        // Unknown kinds were already rejected at validation; the
        // pool lookup here is a cheap shared-instance fetch.
        const std::shared_ptr<const est::Estimator> estimator =
            pool_->get(entry.request.kind);
        outcome.result = estimator->estimate(entry.request);
        outcome.ok = true;
        persistable = true;
    } catch (const FatalError &e) {
        // Deterministic user error the per-kind checkParams could
        // not rule out statically: the same request fails the same
        // way forever, so the failure is cacheable like a result.
        outcome.ok = false;
        outcome.error = e.what();
        outcome.errorCode = errc::estimate;
        persistable = true;
    } catch (const std::exception &e) {
        // Transient system failure (bad_alloc, thread creation):
        // report it to the attached jobs but evict the cache entry
        // so a later identical request re-evaluates.
        outcome.ok = false;
        outcome.error = e.what();
        outcome.errorCode = errc::system;
        std::lock_guard<std::mutex> lock(mutex_);
        if (!entry.key.empty()) {
            auto it = byKey_.find(entry.key);
            if (it != byKey_.end() && it->second.get() == &entry)
                byKey_.erase(it);
        }
    }
    // Serialize for the store before the outcome is moved into the
    // entry; the append itself happens after completion is
    // published, outside the scheduler lock (the store has its
    // own).
    std::string stored;
    if (store_.attached() && !entry.key.empty() && persistable)
        stored = outcome.toJson();
    finishLocked(entry, std::move(outcome));
    doneCv_.notify_all();
    streamCv_.notify_all();
    if (!stored.empty())
        store_.put(entry.key, stored);
}

void
Scheduler::finishLocked(Entry &entry, JobOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entry.state.step(outcome.ok ? JobState::Done
                                : JobState::Failed);
    entry.outcome = std::move(outcome);
    entry.done = true;
    if (!entry.outcome.ok)
        ++stats_.failed;
    stats_.inflight -= entry.jobRefs;
    entry.jobRefs = 0;
    for (const JobId id : entry.waiters)
        completed_.push_back(id);
    entry.waiters.clear();
}

} // namespace traq::service
