/**
 * @file
 * Job-queue front-end over the unified Estimator registry: the piece
 * that turns "a registry plus a SweepRunner" into something that can
 * serve estimate traffic.
 *
 * A JobQueue owns a worker pool (sized by the shared
 * resolveThreadCount policy: explicit option > TRAQ_THREADS >
 * hardware) and accepts EstimateRequests one at a time or in
 * batches.  Each submission returns a JobId in submission order;
 * wait(id) blocks until that job's terminal JobOutcome is available.
 * Because estimators are deterministic pure functions and outcomes
 * are indexed by submission order — never by worker identity — the
 * sequence of outcomes read back in JobId order is byte-identical
 * for any worker count, the same discipline MonteCarloEngine and
 * SweepRunner follow.
 *
 * Completed jobs are memoized in a canonicalKey-keyed result cache
 * (including deterministic failures: a request that throws
 * FatalError once throws the same message forever; transient
 * system errors like bad_alloc are reported to the waiting jobs but
 * evicted so a later identical request re-evaluates): a duplicate
 * submission attaches to the existing entry — whether it is still
 * in flight or already done — and never schedules a second
 * evaluation.  Cache accounting is
 * resolved at submission time under one lock, so the
 * hits/evaluated/failed counters depend only on the submission
 * sequence, not on worker timing, and can appear in golden outputs.
 *
 * Errors are service-shaped: a job whose estimator throws FatalError
 * (unknown kind, unknown parameter, invalid configuration) completes
 * with ok == false and the diagnostic in JobOutcome::error; the
 * queue and its workers keep running.
 */

#ifndef TRAQ_SERVICE_JOB_QUEUE_HH
#define TRAQ_SERVICE_JOB_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/castore.hh"
#include "src/estimator/estimator.hh"

namespace traq::service {

/** Execution options for a JobQueue. */
struct JobQueueOptions
{
    /** Worker threads; 0 = TRAQ_THREADS env or hardware. */
    unsigned threads = 0;
    /** Memoize completed jobs by est::canonicalKey. */
    bool cache = true;
    /**
     * Persistent content-addressed store backing the result cache
     * (caching tier 3; common/castore.hh).  Explicit non-empty path
     * wins, otherwise the TRAQ_CACHE_FILE environment variable,
     * otherwise no persistence.  At construction every stored
     * outcome is pre-loaded into the in-memory cache (so a restart
     * serves warm traffic immediately); cacheable completions —
     * successes and deterministic FatalError failures, never
     * transient errors — are appended.  Requires cache == true;
     * a path with the cache off fails loudly (the store IS the
     * cache's disk form, silently ignoring it would be a lie).
     */
    std::string cacheFile;
};

/** Terminal state of one job. */
struct JobOutcome
{
    bool ok = false;
    est::EstimateResult result; //!< valid when ok
    std::string error;          //!< FatalError message when !ok

    /**
     * Service-shaped JSON: est::toJson(result) when ok, else
     * {"error":"..."}.
     */
    std::string toJson() const;
};

/**
 * Queue counters.  All values are deterministic functions of the
 * submission sequence (cache membership is resolved serially at
 * submit time) except inflight, which is a live gauge.
 */
struct JobQueueStats
{
    std::size_t submitted = 0; //!< jobs accepted
    std::size_t evaluated = 0; //!< evaluations scheduled (unique keys)
    std::size_t cacheHits = 0; //!< jobs served by an existing entry
    /** Subset of cacheHits served by an entry pre-loaded from the
     *  persistent store (0 without a cache file). */
    std::size_t persistentHits = 0;
    std::size_t failed = 0;    //!< evaluations that threw
    std::size_t inflight = 0;  //!< submitted, not yet terminal
};

/** Parallel estimate-serving front-end; see the file comment. */
class JobQueue
{
  public:
    /** Job handle: the 0-based submission index. */
    using JobId = std::size_t;

    explicit JobQueue(JobQueueOptions opts = {});

    /** Drains outstanding work, then joins the workers. */
    ~JobQueue();

    JobQueue(const JobQueue &) = delete;
    JobQueue &operator=(const JobQueue &) = delete;

    /** Enqueue one request; returns immediately. */
    JobId submit(est::EstimateRequest req);

    /** Enqueue a batch; JobIds are consecutive in request order. */
    std::vector<JobId> submitBatch(
        std::vector<est::EstimateRequest> reqs);

    /**
     * Block until job id is terminal.  The reference stays valid for
     * the queue's lifetime.
     */
    const JobOutcome &wait(JobId id);

    /** Block until every submitted job is terminal. */
    void drain();

    JobQueueStats stats() const;

    /** Resolved worker count. */
    unsigned threads() const { return threads_; }

  private:
    /**
     * One unit of evaluation.  Duplicate submissions alias the same
     * entry; jobRefs counts aliases still waiting so the inflight
     * gauge can settle without scanning the job table.
     */
    struct Entry
    {
        est::EstimateRequest request;
        std::string key; //!< canonicalKey; empty when cache is off
        JobOutcome outcome;
        bool done = false;
        /** Pre-loaded from the persistent store (tier 3): hits on
         *  this entry count as persistentHits. */
        bool fromStore = false;
        std::size_t jobRefs = 0;
    };

    void workerMain();
    void runEntry(Entry &entry);

    JobQueueOptions opts_;
    unsigned threads_ = 1;

    mutable std::mutex mutex_;
    std::condition_variable workCv_; //!< pending_ / stop_ changes
    std::condition_variable doneCv_; //!< entry completions
    std::deque<Entry *> pending_;
    std::vector<std::shared_ptr<Entry>> jobs_; //!< JobId -> entry
    std::unordered_map<std::string, std::shared_ptr<Entry>> byKey_;
    /** Shared per-kind estimator instances (estimate() is const and
     *  thread-safe by contract; sharing keeps per-instance memo
     *  caches, e.g. qldpc-storage's reference solve, warm). */
    std::map<std::string, std::shared_ptr<const est::Estimator>>
        estimators_;
    JobQueueStats stats_;
    /** Tier-3 persistent store; detached when no cacheFile. */
    CaStore store_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace traq::service

#endif // TRAQ_SERVICE_JOB_QUEUE_HH
