/**
 * @file
 * Compatibility spelling of the service facade.
 *
 * The monolithic JobQueue was split into layers — job.hh (states,
 * outcomes, structured errors), validation.hh (parse + admission
 * checks), scheduler.hh (workers, cache, bounded ready queue,
 * completion streaming) — fronted by the JobService facade
 * (job_service.hh).  The facade preserves the old contract exactly
 * (submission-order JobIds, thread-count byte-identity, serial
 * cache accounting, persistent-store semantics), so existing
 * callers keep compiling against the old name via this alias.
 * New code should include job_service.hh directly.
 */

#ifndef TRAQ_SERVICE_JOB_QUEUE_HH
#define TRAQ_SERVICE_JOB_QUEUE_HH

#include "src/service/job_service.hh"

namespace traq::service {

/** Pre-split name of the service facade. */
using JobQueue = JobService;

} // namespace traq::service

#endif // TRAQ_SERVICE_JOB_QUEUE_HH
