#include "src/service/dispatcher.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>

#include "src/common/assert.hh"
#include "src/common/strings.hh"

extern char **environ;

namespace traq::service {
namespace {

/** Copy the environment, overriding TRAQ_CACHE_FILE.  An empty
 *  @p cacheFile with @p override set unsets the variable, so a
 *  parent's env cannot point every worker at one single-writer
 *  store. */
std::vector<std::string>
childEnv(bool override, const std::string &cacheFile)
{
    std::vector<std::string> env;
    for (char **e = environ; *e != nullptr; ++e) {
        if (override &&
            startsWith(*e, "TRAQ_CACHE_FILE="))
            continue;
        env.emplace_back(*e);
    }
    if (override && !cacheFile.empty())
        env.push_back("TRAQ_CACHE_FILE=" + cacheFile);
    return env;
}

/** Write all of @p data to @p fd; false on any write error (the
 *  worker's pipe is gone). */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

Dispatcher::Dispatcher(DispatcherOptions opts)
    : opts_(std::move(opts))
{
    TRAQ_REQUIRE(opts_.workers >= 1,
                 "dispatcher needs at least one worker");
    TRAQ_REQUIRE(!opts_.servePath.empty(),
                 "dispatcher needs the traq_serve path");
    TRAQ_REQUIRE(opts_.workerCacheFiles.empty() ||
                     opts_.workerCacheFiles.size() == opts_.workers,
                 "dispatcher: workerCacheFiles must be empty or "
                 "one per worker");
    inflightBound_ = opts_.inflight ? opts_.inflight : 32;
    // A worker death must surface as a write error we handle, not
    // a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    workers_.resize(opts_.workers);
    for (std::size_t slot = 0; slot < opts_.workers; ++slot)
        spawnWorker(slot);
}

void
Dispatcher::spawnWorker(std::size_t slot)
{
    int inPipe[2];  // dispatcher -> child stdin
    int outPipe[2]; // child stdout -> dispatcher
    TRAQ_REQUIRE(::pipe(inPipe) == 0 && ::pipe(outPipe) == 0,
                 "dispatcher: pipe() failed");

    // Prebuild argv/envp before fork: with reader threads running,
    // the child may only touch async-signal-safe calls (dup2,
    // close, execve, _exit).
    std::vector<std::string> argStore;
    argStore.push_back(opts_.servePath);
    for (const std::string &a : opts_.workerArgs)
        argStore.push_back(a);
    std::vector<char *> argv;
    for (std::string &a : argStore)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    const bool overrideEnv = !opts_.workerCacheFiles.empty();
    std::vector<std::string> envStore = childEnv(
        overrideEnv,
        overrideEnv ? opts_.workerCacheFiles[slot] : std::string());
    std::vector<char *> envp;
    for (std::string &e : envStore)
        envp.push_back(e.data());
    envp.push_back(nullptr);

    const pid_t pid = ::fork();
    TRAQ_REQUIRE(pid >= 0, "dispatcher: fork() failed");
    if (pid == 0) {
        ::dup2(inPipe[0], 0);
        ::dup2(outPipe[1], 1);
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::execve(argv[0], argv.data(), envp.data());
        _exit(127); // exec failed; EOF on our pipes reports it
    }
    ::close(inPipe[0]);
    ::close(outPipe[1]);

    Worker &w = workers_[slot];
    w.pid = pid;
    w.stdinFd = inPipe[1];
    w.out = ::fdopen(outPipe[0], "r");
    TRAQ_REQUIRE(w.out != nullptr, "dispatcher: fdopen() failed");
    w.alive = true;
    w.stdinOpen = true;
    w.reader = std::thread([this, slot] { readerMain(slot); });
}

Dispatcher::~Dispatcher()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        for (Worker &w : workers_)
            closeStdin(w);
    }
    for (Worker &w : workers_) {
        if (w.reader.joinable())
            w.reader.join();
        if (w.out != nullptr)
            std::fclose(w.out);
        if (w.pid > 0)
            ::waitpid(w.pid, nullptr, 0);
    }
}

void
Dispatcher::closeStdin(Worker &w)
{
    w.stdinOpen = false;
    // Closing the fd while another thread is blocked in writeAll()
    // on it would race: the writer could get EBADF or scribble on
    // an unrelated fd if the number is reused.  Defer the ::close
    // to sendToWorker(), which performs it after writeAll returns.
    if (!w.writing && w.stdinFd != -1) {
        ::close(w.stdinFd);
        w.stdinFd = -1;
    }
}

void
Dispatcher::releaseWorkersIfDone()
{
    // Until every submitted index is answered, every stdin stays
    // open — a drained worker is the retry target if a still-busy
    // one dies; closing it early (EOF, child exits) would strand
    // that requeue with no live shard.
    if (!closed_ || answered_ < submitted_ || !requeued_.empty())
        return;
    for (Worker &w : workers_)
        closeStdin(w);
}

void
Dispatcher::workerLost(std::size_t slot)
{
    Worker &w = workers_[slot];
    if (!w.alive)
        return;
    w.alive = false;
    closeStdin(w);
    // Requeue everything unacknowledged.  The map itself is kept:
    // results already buffered in the dead worker's pipe still
    // arrive through its reader, and need the local -> global
    // mapping; emitted_ dedup in the ack path keeps the output
    // exactly-once when both the late ack and the retry land.
    for (const auto &[local, job] : w.unacked) {
        if (job.index < emitted_.size() && emitted_[job.index])
            continue;
        requeued_.push_back(job);
    }
    resultCv_.notify_all();
    spaceCv_.notify_all();
}

void
Dispatcher::readerMain(std::size_t slot)
{
    Worker &w = workers_[slot];
    char *buf = nullptr;
    std::size_t cap = 0;
    ssize_t n;
    while ((n = ::getline(&buf, &cap, w.out)) > 0) {
        if (buf[n - 1] != '\n') {
            // Torn final line from a dying worker: unacknowledged
            // by definition, never parsed, never emitted — the
            // retry path owns it now.
            break;
        }
        const wire::TaggedLine tagged =
            wire::splitTagged(std::string_view(
                buf, static_cast<std::size_t>(n - 1)));
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = w.unacked.find(tagged.index);
        TRAQ_REQUIRE(it != w.unacked.end(),
                     "dispatcher: worker answered unknown line");
        const std::size_t global = it->second.index;
        w.unacked.erase(it);
        if (!emitted_[global]) {
            emitted_[global] = true;
            ++answered_;
            results_.push_back({global, tagged.payload});
        }
        resultCv_.notify_all();
        spaceCv_.notify_all();
    }
    ::free(buf);
    std::lock_guard<std::mutex> lock(mutex_);
    workerLost(slot);
}

bool
Dispatcher::sendToWorker(std::size_t slot, Job job,
                         std::unique_lock<std::mutex> &lock)
{
    Worker &w = workers_[slot];
    const std::size_t local = w.nextLocal++;
    w.unacked.emplace(local, job);
    const int fd = w.stdinFd;
    // The write happens without the lock: a full pipe must not
    // stall acknowledgement processing (that would deadlock against
    // a busy worker).  The unacked entry is registered first, so
    // the ack cannot race past the bookkeeping; the writing flag
    // keeps this worker out of every selection loop while the lock
    // is down, so local indices are assigned in the exact order
    // lines reach the pipe, and keeps closeStdin() from closing
    // the fd under this write.
    w.writing = true;
    lock.unlock();
    const bool ok = writeAll(fd, job.line + "\n");
    lock.lock();
    w.writing = false;
    if (!w.stdinOpen && w.stdinFd != -1) {
        // closeStdin() wanted this fd gone mid-write; finish now.
        ::close(w.stdinFd);
        w.stdinFd = -1;
    }
    if (!ok && w.alive)
        workerLost(slot); // requeues this job with the rest
    // The worker is selectable again (or newly dead); both the
    // submit side and the drain side may be waiting to re-probe.
    spaceCv_.notify_all();
    resultCv_.notify_all();
    return ok;
}

void
Dispatcher::pumpRequeued(std::unique_lock<std::mutex> &lock)
{
    while (!requeued_.empty()) {
        const Job job = requeued_.front();
        if (job.index < emitted_.size() && emitted_[job.index]) {
            requeued_.pop_front();
            continue; // late ack beat the retry
        }
        std::size_t slot = workers_.size();
        for (std::size_t probe = 0; probe < workers_.size();
             ++probe) {
            const std::size_t s =
                (rrNext_ + probe) % workers_.size();
            if (workers_[s].alive && workers_[s].stdinOpen &&
                !workers_[s].writing &&
                workers_[s].unacked.size() < inflightBound_) {
                slot = s;
                break;
            }
        }
        if (slot == workers_.size())
            return; // no capacity now; retried on the next wake
        rrNext_ = (slot + 1) % workers_.size();
        requeued_.pop_front();
        sendToWorker(slot, job, lock);
    }
}

void
Dispatcher::submit(std::size_t index, const std::string &line)
{
    std::unique_lock<std::mutex> lock(mutex_);
    TRAQ_REQUIRE(!closed_, "dispatcher: submit after close");
    if (index >= emitted_.size())
        emitted_.resize(index + 1, false);
    ++submitted_;
    Job job{index, line};
    while (true) {
        pumpRequeued(lock);
        std::size_t slot = workers_.size();
        for (std::size_t probe = 0; probe < workers_.size();
             ++probe) {
            const std::size_t s =
                (rrNext_ + probe) % workers_.size();
            if (workers_[s].alive && workers_[s].stdinOpen &&
                !workers_[s].writing &&
                workers_[s].unacked.size() < inflightBound_) {
                slot = s;
                break;
            }
        }
        if (slot < workers_.size()) {
            rrNext_ = (slot + 1) % workers_.size();
            // Success or failure, this call is done with the job:
            // on success it is inflight; on failure the worker's
            // death requeued it (the unacked entry predates the
            // write) and pumpRequeued — on the next submit, or in
            // waitResult — drains it to a survivor.  Looping to
            // resend here would submit a second, moved-from copy.
            sendToWorker(slot, std::move(job), lock);
            return;
        }
        bool anyLive = false;
        for (const Worker &w : workers_)
            anyLive = anyLive || (w.alive && w.stdinOpen);
        if (!anyLive)
            TRAQ_FATAL("dispatcher: every worker is dead with "
                       "work outstanding");
        spaceCv_.wait(lock);
    }
}

void
Dispatcher::closeSubmissions()
{
    std::unique_lock<std::mutex> lock(mutex_);
    closed_ = true;
    releaseWorkersIfDone();
    // A waitResult() that saw the last ack before closed_ was set
    // is parked on resultCv_ with nothing left to notify it.
    resultCv_.notify_all();
}

std::optional<DispatchResult>
Dispatcher::waitResult()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        pumpRequeued(lock);
        releaseWorkersIfDone();
        if (!results_.empty()) {
            DispatchResult r = std::move(results_.front());
            results_.pop_front();
            return r;
        }
        if (closed_ && answered_ == submitted_)
            return std::nullopt;
        bool anyLive = false;
        for (const Worker &w : workers_)
            anyLive = anyLive || w.alive;
        if (!anyLive && answered_ < submitted_)
            TRAQ_FATAL("dispatcher: every worker is dead with "
                       "work outstanding");
        resultCv_.wait(lock);
    }
}

unsigned
Dispatcher::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    unsigned n = 0;
    for (const Worker &w : workers_)
        n += w.alive ? 1 : 0;
    return n;
}

std::vector<pid_t>
Dispatcher::workerPids() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<pid_t> pids;
    pids.reserve(workers_.size());
    for (const Worker &w : workers_)
        pids.push_back(w.alive ? w.pid : -1);
    return pids;
}

} // namespace traq::service
