#include "src/service/job.hh"

#include "src/common/assert.hh"
#include "src/common/serialize.hh"

namespace traq::service {

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Submitted: return "submitted";
      case JobState::Validated: return "validated";
      case JobState::Scheduled: return "scheduled";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
    }
    TRAQ_FATAL("jobStateName: invalid JobState");
}

bool
jobStateCanStep(JobState from, JobState to)
{
    switch (from) {
      case JobState::Submitted:
        return to == JobState::Validated || to == JobState::Failed;
      case JobState::Validated:
        return to == JobState::Scheduled || to == JobState::Done ||
               to == JobState::Failed;
      case JobState::Scheduled:
        return to == JobState::Running;
      case JobState::Running:
        return to == JobState::Done || to == JobState::Failed;
      case JobState::Done:
      case JobState::Failed:
        return false; // terminal
    }
    TRAQ_FATAL("jobStateCanStep: invalid JobState");
}

bool
jobStateTerminal(JobState s)
{
    return s == JobState::Done || s == JobState::Failed;
}

std::string
JobOutcome::toJson() const
{
    if (ok)
        return est::toJson(result);
    return "{\"error\":" + jsonQuote(error) + "}";
}

void
JobStateMachine::step(JobState to)
{
    TRAQ_REQUIRE(jobStateCanStep(state_, to),
                 std::string("illegal job transition ") +
                     jobStateName(state_) + " -> " +
                     jobStateName(to));
    state_ = to;
}

} // namespace traq::service
