/**
 * @file
 * Job identity layer of the service tier: the types every other
 * service layer (validation, scheduler, facade, dispatcher) speaks.
 *
 * A job is one submitted EstimateRequest moving through an explicit
 * state machine:
 *
 *     submitted --> validated --> scheduled --> running --> done
 *          \             \                          \
 *           \             `--> done (cache hit)      `--> failed
 *            `--> failed (validation rejected)
 *
 * Transitions are checked (jobStateCanStep + JobStateMachine), so a
 * scheduler bug that skips a stage fails loudly instead of silently
 * mislabeling a job.  Terminal states (done, failed) have no exits.
 *
 * Errors are structured: a JobError carries a stable machine
 *-readable code (which layer rejected the job and why) next to the
 * human-readable message, instead of the raw FatalError capture the
 * old monolithic JobQueue did.  The message strings are still the
 * exact FatalError texts the underlying layers produce, so output
 * bytes and goldens are unchanged.
 */

#ifndef TRAQ_SERVICE_JOB_HH
#define TRAQ_SERVICE_JOB_HH

#include <cstddef>
#include <string>

#include "src/estimator/estimator.hh"

namespace traq::service {

/** Job handle: the 0-based submission index. */
using JobId = std::size_t;

/** Lifecycle of one job; see the file comment for the diagram. */
enum class JobState
{
    Submitted, //!< accepted, not yet validated
    Validated, //!< parsed + per-kind checks passed, key computed
    Scheduled, //!< admitted to the ready queue (or joined inflight)
    Running,   //!< a worker is evaluating the entry
    Done,      //!< terminal, outcome.ok == true
    Failed,    //!< terminal, outcome.ok == false
};

/** Number of JobState values (for exhaustive tables). */
inline constexpr int kJobStateCount = 6;

/** Stable lowercase name, e.g. "scheduled". */
const char *jobStateName(JobState s);

/**
 * Transition legality table.  Allowed steps:
 *   submitted -> validated | failed
 *   validated -> scheduled | done | failed
 *   scheduled -> running
 *   running   -> done | failed
 * Everything else — including any exit from a terminal state and
 * any self-transition — is illegal.
 */
bool jobStateCanStep(JobState from, JobState to);

/** True for done / failed. */
bool jobStateTerminal(JobState s);

/**
 * Stable error-class codes carried by JobError.  Which layer
 * rejected the job, and why:
 *   json     — the input line was not parseable JSON
 *   shape    — parseable JSON, wrong shape for an EstimateRequest
 *   kind     — no estimator registered for the kind
 *   param    — the kind rejected a parameter name or value
 *   estimate — the evaluation itself threw FatalError
 *   system   — transient std::exception (bad_alloc, ...); never
 *              cached
 */
namespace errc {
inline constexpr const char *json = "json";
inline constexpr const char *shape = "shape";
inline constexpr const char *kind = "kind";
inline constexpr const char *param = "param";
inline constexpr const char *estimate = "estimate";
inline constexpr const char *system = "system";
} // namespace errc

/** Structured rejection: class code + exact FatalError message. */
struct JobError
{
    std::string code;    //!< one of the errc constants
    std::string message; //!< human-readable diagnostic

    bool empty() const { return code.empty() && message.empty(); }
};

/** Terminal state of one job. */
struct JobOutcome
{
    bool ok = false;
    est::EstimateResult result; //!< valid when ok
    std::string error;          //!< diagnostic message when !ok
    std::string errorCode;      //!< errc class when !ok ("" when ok)

    /**
     * Service-shaped JSON: est::toJson(result) when ok, else
     * {"error":"..."} — the error code is service metadata, not
     * wire format, so the bytes match the pre-split JobQueue.
     */
    std::string toJson() const;
};

/**
 * Checked per-job state tracker: step() enforces the legality
 * table, so an illegal transition is a loud TRAQ_FATAL at the
 * buggy call site rather than a silently wrong stats line.
 */
class JobStateMachine
{
  public:
    JobState state() const { return state_; }

    /** Advance to @p to; TRAQ_FATAL when the step is illegal. */
    void step(JobState to);

  private:
    JobState state_ = JobState::Submitted;
};

} // namespace traq::service

#endif // TRAQ_SERVICE_JOB_HH
