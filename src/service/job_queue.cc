#include "src/service/job_queue.hh"

#include <utility>

#include "src/common/assert.hh"
#include "src/common/json.hh"
#include "src/common/serialize.hh"
#include "src/common/threads.hh"

namespace traq::service {
namespace {

/**
 * Inverse of JobOutcome::toJson(): stored values are either a result
 * object or {"error":"..."}.  Malformed store content throws
 * FatalError — records are checksummed, so this only fires on
 * hand-edited files, and silence would serve garbage.
 */
JobOutcome
outcomeFromStoredJson(const std::string &text)
{
    JobOutcome outcome;
    const json::Value v = json::parse(text);
    if (v.isObject()) {
        if (const json::Value *err = v.find("error")) {
            outcome.ok = false;
            outcome.error = err->asString();
            return outcome;
        }
    }
    outcome.result = est::resultFromJson(v);
    outcome.ok = true;
    return outcome;
}

} // namespace

std::string
JobOutcome::toJson() const
{
    if (ok)
        return est::toJson(result);
    return "{\"error\":" + jsonQuote(error) + "}";
}

JobQueue::JobQueue(JobQueueOptions opts) : opts_(opts)
{
    const std::string cachePath = resolveCacheFile(opts_.cacheFile);
    if (!cachePath.empty()) {
        TRAQ_REQUIRE(opts_.cache,
                     "JobQueue: a cache file requires the result "
                     "cache (the store is its disk form; refusing "
                     "to silently ignore the path)");
        store_.open(cachePath);
        // Pre-load every stored outcome as a done cache entry:
        // submission-time hits on them are plain map lookups, so a
        // restarted worker serves warm traffic at warm-cache speed.
        store_.forEach([this](const std::string &key,
                              const std::string &value) {
            auto entry = std::make_shared<Entry>();
            entry->key = key;
            entry->outcome = outcomeFromStoredJson(value);
            entry->done = true;
            entry->fromStore = true;
            byKey_.emplace(key, std::move(entry));
        });
    }
    threads_ = resolveThreadCount(opts_.threads);
    workers_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
        workers_.emplace_back([this] { workerMain(); });
}

JobQueue::~JobQueue()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

JobQueue::JobId
JobQueue::submit(est::EstimateRequest req)
{
    std::shared_ptr<Entry> entry;
    JobId id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = jobs_.size();
        ++stats_.submitted;
        if (opts_.cache) {
            // Cache membership is decided here, serially, so the
            // hit/evaluated counters depend only on the submission
            // sequence — not on whether a worker finished the first
            // occurrence yet.
            const std::string key = est::canonicalKey(req);
            auto it = byKey_.find(key);
            if (it != byKey_.end()) {
                entry = it->second;
                ++stats_.cacheHits;
                if (entry->fromStore)
                    ++stats_.persistentHits;
                jobs_.push_back(entry);
                if (!entry->done) {
                    ++entry->jobRefs;
                    ++stats_.inflight;
                }
                return id;
            }
            entry = std::make_shared<Entry>();
            entry->request = std::move(req);
            entry->key = key;
            byKey_.emplace(key, entry);
        } else {
            entry = std::make_shared<Entry>();
            entry->request = std::move(req);
        }
        ++stats_.evaluated;
        entry->jobRefs = 1;
        ++stats_.inflight;
        jobs_.push_back(entry);
        pending_.push_back(entry.get());
    }
    workCv_.notify_one();
    return id;
}

std::vector<JobQueue::JobId>
JobQueue::submitBatch(std::vector<est::EstimateRequest> reqs)
{
    std::vector<JobId> ids;
    ids.reserve(reqs.size());
    for (est::EstimateRequest &req : reqs)
        ids.push_back(submit(std::move(req)));
    return ids;
}

const JobOutcome &
JobQueue::wait(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    TRAQ_REQUIRE(id < jobs_.size(), "job id out of range");
    Entry &entry = *jobs_[id];
    doneCv_.wait(lock, [&entry] { return entry.done; });
    return entry.outcome;
}

void
JobQueue::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [this] { return stats_.inflight == 0; });
}

JobQueueStats
JobQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
JobQueue::workerMain()
{
    while (true) {
        Entry *entry = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] {
                return stop_ || !pending_.empty();
            });
            if (pending_.empty())
                return;  // stop_ set and no work left
            entry = pending_.front();
            pending_.pop_front();
        }
        runEntry(*entry);
    }
}

void
JobQueue::runEntry(Entry &entry)
{
    JobOutcome outcome;
    // Persist successes and deterministic failures; transient
    // errors are evicted from the in-memory cache and must not be
    // frozen into the store either.
    bool persistable = false;
    try {
        std::shared_ptr<const est::Estimator> estimator;
        const std::string &kind = entry.request.kind;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = estimators_.find(kind);
            if (it != estimators_.end())
                estimator = it->second;
        }
        if (!estimator) {
            // makeEstimator throws FatalError on unknown kinds —
            // that is this job's failure, not the queue's.  A racing
            // duplicate create is harmless; the first insert wins so
            // every worker shares one instance (and its memo
            // caches).
            std::shared_ptr<const est::Estimator> fresh =
                est::makeEstimator(kind);
            std::lock_guard<std::mutex> lock(mutex_);
            estimator =
                estimators_.emplace(kind, std::move(fresh))
                    .first->second;
        }
        outcome.result = estimator->estimate(entry.request);
        outcome.ok = true;
        persistable = true;
    } catch (const FatalError &e) {
        // Deterministic user error (unknown kind/parameter, invalid
        // configuration): the same request fails the same way
        // forever, so the failure is cacheable like a result.
        outcome.ok = false;
        outcome.error = e.what();
        persistable = true;
    } catch (const std::exception &e) {
        // Transient system failure (bad_alloc, thread creation):
        // report it to the attached jobs but evict the cache entry
        // so a later identical request re-evaluates.
        outcome.ok = false;
        outcome.error = e.what();
        std::lock_guard<std::mutex> lock(mutex_);
        if (!entry.key.empty()) {
            auto it = byKey_.find(entry.key);
            if (it != byKey_.end() && it->second.get() == &entry)
                byKey_.erase(it);
        }
    }
    // Serialize for the store before the outcome is moved into the
    // entry; the append itself happens after completion is
    // published, outside the queue lock (the store has its own).
    std::string stored;
    if (store_.attached() && !entry.key.empty() && persistable)
        stored = outcome.toJson();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry.outcome = std::move(outcome);
        entry.done = true;
        if (!entry.outcome.ok)
            ++stats_.failed;
        stats_.inflight -= entry.jobRefs;
        entry.jobRefs = 0;
    }
    doneCv_.notify_all();
    if (!stored.empty())
        store_.put(entry.key, stored);
}

} // namespace traq::service
