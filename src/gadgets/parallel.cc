#include "src/gadgets/parallel.hh"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hh"

namespace traq::gadgets {

ParallelPlan
planBellParallel(double tBlock, double reactionTime,
                 double activeFraction)
{
    TRAQ_REQUIRE(tBlock > 0.0 && reactionTime > 0.0,
                 "durations must be positive");
    TRAQ_REQUIRE(activeFraction > 0.0 && activeFraction <= 1.0,
                 "active fraction must be in (0, 1]");
    ParallelPlan p;
    p.copies = std::max(
        1, static_cast<int>(std::floor(tBlock / reactionTime)));
    // With `copies` staggered blocks each lasting tBlock, one block
    // completes every tBlock / copies ~ reactionTime.
    p.effectiveRate = p.copies / tBlock;
    p.qubitOverhead = p.copies * activeFraction;
    return p;
}

} // namespace traq::gadgets
