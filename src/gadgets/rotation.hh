/**
 * @file
 * Rotation synthesis cost model (Fig. 1 / Sec. III.3).
 *
 * Arbitrary-angle Rz rotations are synthesised either as Clifford+T
 * sequences (repeat-until-success / Ross-Selinger style,
 * T-count ~ b * log2(1/eps) + c) or via addition into a phase-
 * gradient state (Gidney's trick: one b-bit addition per rotation,
 * b = ceil(log2(1/eps))).  The estimator exposes both so algorithm
 * code can pick the cheaper one — the paper's chemistry pipeline
 * uses the phase-gradient route for the SELECT rotations.
 */

#ifndef TRAQ_GADGETS_ROTATION_HH
#define TRAQ_GADGETS_ROTATION_HH

#include "src/model/error_model.hh"
#include "src/platform/params.hh"

namespace traq::gadgets {

/** Cost of synthesising one Rz(theta) to accuracy eps. */
struct RotationCost
{
    double tCount = 0.0;        //!< |T> states consumed
    double cczCount = 0.0;      //!< |CCZ> states consumed
    double time = 0.0;          //!< reaction-limited latency [s]
    int gradientBits = 0;       //!< phase-gradient register width
};

/** Ross–Selinger-style direct Clifford+T synthesis. */
RotationCost synthesizeCliffordT(double eps,
                                 const platform::AtomArrayParams &p);

/**
 * Phase-gradient addition synthesis: one b-bit addition into a
 * shared phase-gradient resource register.
 * @param kappaAdd reaction multiplier per adder step (calibration).
 */
RotationCost
synthesizePhaseGradient(double eps,
                        const platform::AtomArrayParams &p,
                        double kappaAdd = 1.0);

/** The cheaper of the two routes by T-equivalent count. */
RotationCost chooseRotationRoute(double eps,
                                 const platform::AtomArrayParams &p);

} // namespace traq::gadgets

#endif // TRAQ_GADGETS_ROTATION_HH
