/**
 * @file
 * Measurement-based GHZ state preparation (Fig. 10(b)).
 *
 * n GHZ qubits are prepared in |+>, interleaved helper ancillas
 * measure ZZ of each neighbouring pair (two CX layers + measurement),
 * projecting the register onto a GHZ state up to Pauli corrections
 * determined by the helper outcomes.  Constant depth regardless of n
 * — the key to the constant-move-distance CNOT fan-out.
 *
 * Provides both a circuit generator (verified against the tableau
 * simulator in tests) and a cost model.
 */

#ifndef TRAQ_GADGETS_GHZ_HH
#define TRAQ_GADGETS_GHZ_HH

#include <cstdint>

#include "src/model/error_model.hh"
#include "src/platform/params.hh"
#include "src/sim/circuit.hh"

namespace traq::gadgets {

/**
 * Circuit preparing an n-qubit GHZ state on qubits {0..n-1} using
 * helpers {n..2n-2}: RX on GHZ qubits, CX layers onto helpers, helper
 * measurement.  The caller applies X corrections from the helper
 * outcomes (prefix parities); tests verify the stabilizers directly.
 */
sim::Circuit ghzPrepCircuit(int n);

/** Cost model of one GHZ preparation round. */
struct GhzCost
{
    double time = 0.0;            //!< 2 CX layers + helper measure
    double logicalQubits = 0.0;   //!< GHZ + helpers
    double logicalError = 0.0;    //!< per preparation
};

GhzCost ghzCost(int n, int distance,
                const platform::AtomArrayParams &atom,
                const model::ErrorModelParams &em);

} // namespace traq::gadgets

#endif // TRAQ_GADGETS_GHZ_HH
