/**
 * @file
 * Cuccaro ripple-carry adder gadget with oblivious carry runways
 * (Sec. III.7, Fig. 9).
 *
 * The adder computes |a>|b> -> |a>|a+b> from MAJ/UMA blocks, one CCZ
 * (Toffoli) per bit (the UMA Toffoli is uncomputed measurement-based,
 * following Gidney's temporary-AND trick the paper builds on), laid
 * out in a 3x2 logical-block region with maximum move distance
 * sqrt(2)*d*l per step (Fig. 9(c)).  Oblivious carry runways
 * (Ref. [66]) split the carry chain into segments of `rsep` bits
 * padded with `rpad` runway bits so segments ripple in parallel,
 * making the addition reaction-limited with depth ~ 2*rsep.
 *
 * A classical bit-level emulator of the MAJ/UMA circuit is included
 * so tests can prove functional correctness of the construction.
 */

#ifndef TRAQ_GADGETS_ADDER_HH
#define TRAQ_GADGETS_ADDER_HH

#include <cstdint>
#include <vector>

#include "src/model/error_model.hh"
#include "src/platform/params.hh"

namespace traq::gadgets {

/** Inputs of an adder design. */
struct AdderSpec
{
    int nBits = 2048;
    int rsep = 96;          //!< runway separation (segment length)
    int rpad = 43;          //!< runway padding bits
    int distance = 27;
    platform::AtomArrayParams atom =
        platform::AtomArrayParams::paperDefaults();
    model::ErrorModelParams errorModel =
        model::ErrorModelParams::paperDefaults();
    /**
     * Reaction-time multiplier per Toffoli step (CCZ teleport +
     * auto-corrected CZ): calibrated in estimator/calibration.hh.
     */
    double kappaAdd = 1.45;
};

/** Resulting adder design and costs. */
struct AdderReport
{
    int segments = 0;
    int bitsWithRunways = 0;
    double cczPerAddition = 0.0;
    double timePerAddition = 0.0;     //!< reaction-limited [s]
    double maxMoveSites = 0.0;        //!< sqrt(2)*d (Fig. 9(c))
    double activeLogicalQubits = 0.0; //!< 3x2 blocks + CCZ/CZ ancillas
    double activePhysicalQubits = 0.0;
    double logicalErrorPerAddition = 0.0;
    double runwayApproxError = 0.0;   //!< per addition, ~S * 2^-rpad
    double cczRate = 0.0;             //!< peak CCZ demand [1/s]
};

/** Design an adder meeting the spec. */
AdderReport designAdder(const AdderSpec &spec);

/**
 * Classical emulation of the Cuccaro MAJ/UMA gate sequence on bit
 * vectors: returns a + b (mod 2^nBits) by literally executing the
 * CNOT/Toffoli network of Fig. 9(a).  Exposed for property tests.
 */
std::uint64_t cuccaroEmulate(std::uint64_t a, std::uint64_t b,
                             int nBits);

/**
 * Same emulation with carry runways: the register is split into
 * segments which ripple independently and the runway carries are
 * added back classically (piecewise addition, Ref. [66]).  Exact for
 * the final (non-oblivious) correction step used in tests.
 */
std::uint64_t runwayAddEmulate(std::uint64_t a, std::uint64_t b,
                               int nBits, int rsep);

} // namespace traq::gadgets

#endif // TRAQ_GADGETS_ADDER_HH
