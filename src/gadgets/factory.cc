#include "src/gadgets/factory.hh"

#include <cmath>

#include "src/arch/qec_cycle.hh"
#include "src/common/assert.hh"

namespace traq::gadgets {

double
factoryQubitRounds()
{
    // 12 logical qubits (4 outputs + 8 factory qubits) active over
    // ~10 SE rounds (4 CNOT layers, input growth, teleportation and
    // the post-selected output measurement).
    return 12.0 * 10.0;
}

FactoryReport
designFactory(const FactorySpec &spec)
{
    TRAQ_REQUIRE(spec.targetCczError > 0.0,
                 "target CCZ error must be positive");
    FactoryReport r;

    // Split the budget: half to the quadratic T-input term, half to
    // the Clifford operations protected by the inner surface code.
    const double tBudget = spec.targetCczError / 2.0;
    const double cliffordBudget = spec.targetCczError / 2.0;

    // Eq. (8): p_CCZ = 28 p_T^2  =>  p_T = sqrt(budget / 28).
    r.tInputError = std::sqrt(tBudget / 28.0);

    // Distance: Clifford error = qubit-rounds x per-round Eq. (4)
    // error at x = 1/seRoundsPerGate CNOTs per round.
    const double x = 1.0 / spec.seRoundsPerGate;
    if (spec.forcedDistance > 0) {
        r.distance = spec.forcedDistance;
    } else {
        r.distance = model::requiredDistanceCnot(
            cliffordBudget / factoryQubitRounds() * 2.0, x,
            spec.errorModel);
    }
    // Per-CNOT error covers 2 qubits; qubit-rounds uses per-qubit:
    r.cliffordError =
        factoryQubitRounds() *
        model::cnotLogicalError(r.distance, x, spec.errorModel) / 2.0;
    r.cczError = 28.0 * r.tInputError * r.tInputError +
                 r.cliffordError;

    // Timing: 4 transversal CNOT layers each followed by
    // seRoundsPerGate SE rounds, plus the teleported-T layer and the
    // post-selected output measurement (reaction-limited each).
    // This is the pipeline initiation interval; input growth runs
    // concurrently on the cultivation rows.
    arch::QecCycleTiming cyc =
        arch::qecCycle(r.distance, spec.atom);
    double gateStage = 4.0 * spec.seRoundsPerGate * cyc.total;
    double teleportStage = 2.0 * spec.atom.reactionTime();
    r.cczTime = gateStage + teleportStage;

    // Post-selection: any single input-T error is detected with
    // probability ~8 p_T; cultivation acceptance is folded into its
    // volume curve.
    r.retryOverhead = 1.0 / (1.0 - 8.0 * r.tInputError);
    r.throughput = 1.0 / (r.cczTime * r.retryOverhead);

    // Cultivation supply: each 12d x 1d row provides 12 d^2 qubits
    // continuously; a |T> costs cultivationVolume qubit-rounds, so a
    // row sustains (12 d^2 / volume) |T> per SE round.  Size the
    // number of rows so 8 |T> arrive per factory cycle.
    r.cultivationVolume = spec.cultivation.volumeAtPhysicalError(
        r.tInputError, spec.errorModel.pPhys);
    double rowQubits = 12.0 * r.distance * r.distance;
    double tPerRowPerSecond =
        rowQubits / r.cultivationVolume / cyc.total;
    double tRateNeeded = 8.0 * r.throughput;
    r.cultivationRows = std::max(
        1, static_cast<int>(std::ceil(tRateNeeded /
                                      tPerRowPerSecond)));
    // Beyond ~a dozen rows the cultivation area would rival the
    // factory itself — flag such designs as unbalanced.
    r.cultivationFits = r.cultivationRows <= 12;

    // Footprint (Fig. 8(d)): 12d x 3d factory + cultivation rows.
    r.footprintWidthSites = 12 * r.distance;
    r.footprintHeightSites = (3 + r.cultivationRows) * r.distance;
    r.qubits = static_cast<double>(r.footprintWidthSites) *
               r.footprintHeightSites;
    return r;
}

} // namespace traq::gadgets
