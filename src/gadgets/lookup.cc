#include "src/gadgets/lookup.hh"

#include <cmath>

#include "src/arch/qec_cycle.hh"
#include "src/common/assert.hh"
#include "src/common/math.hh"

namespace traq::gadgets {

LookupReport
designLookup(const LookupSpec &spec)
{
    TRAQ_REQUIRE(spec.addressBits >= 1 && spec.addressBits <= 24,
                 "address bits out of range");
    TRAQ_REQUIRE(spec.ghzSpacing >= 1, "GHZ spacing must be >= 1");
    LookupReport r;
    r.entries = 1ULL << spec.addressBits;

    // Unary iteration: 2^m - m - 1 temporary ANDs (Babbush et al.);
    // uncomputation is measurement-based with ~2^(m/2) phase fixups.
    r.cczPerLookup = static_cast<double>(r.entries) -
                     spec.addressBits - 1;
    r.unlookupCcz = std::pow(2.0, spec.addressBits / 2.0);

    // Reaction-limited iteration walk.
    r.iterationTime = static_cast<double>(r.entries) *
                      spec.kappaLookup * spec.atom.reactionTime();

    // GHZ fan-out: measurement-based prep (2 CX layers + helper
    // measurement) + transversal CX onto targets + X measurement of
    // the GHZ register; approximately 2 QEC cycles, divided across
    // pipeline copies.
    arch::QecCycleTiming cyc = arch::qecCycle(spec.distance,
                                              spec.atom);
    r.fanoutTime = 2.0 * cyc.total /
                   std::max(1, spec.pipelineCopies);
    r.timePerLookup = r.iterationTime + r.fanoutTime;

    // Fig. 10(c): snaking layout with 2d max move.
    r.maxMoveSites = 2.0 * spec.distance;

    // Space: address tree (~2 m logical), GHZ register (targets /
    // spacing), helper ancillas (one per GHZ qubit), pipeline copies.
    r.ghzLogicalQubits =
        static_cast<double>(spec.targetBits) / spec.ghzSpacing *
        spec.pipelineCopies;
    r.helperLogicalQubits = r.ghzLogicalQubits;
    r.activeLogicalQubits = 2.0 * spec.addressBits +
                            r.ghzLogicalQubits +
                            r.helperLogicalQubits;
    double physPerLogical =
        2.0 * spec.distance * spec.distance;
    r.activePhysicalQubits = r.activeLogicalQubits * physPerLogical;

    // Logical error: iteration steps on the address tree plus the
    // GHZ fan-out.  The fan-out couples the whole GHZ + target
    // register into one correlated-decoding window of ~d/2 rounds
    // (Sec. III.8: the fan-out dominates the decoding volume), so its
    // contribution scales with that window.
    double perCnot = model::cnotLogicalError(spec.distance, 1.0,
                                             spec.errorModel);
    double iterationError =
        static_cast<double>(r.entries) * 2.0 * perCnot / 2.0;
    double fanoutWindowRounds = spec.distance / 2.0;
    double fanoutError = (2.0 * r.ghzLogicalQubits +
                          spec.targetBits) *
                         fanoutWindowRounds * perCnot / 2.0;
    r.logicalErrorPerLookup = iterationError + fanoutError;

    r.cczRate = (r.cczPerLookup + r.unlookupCcz) / r.timePerLookup;
    return r;
}

std::uint64_t
qromEmulate(const std::vector<std::uint64_t> &table,
            std::uint64_t address)
{
    TRAQ_REQUIRE(!table.empty(), "table must be non-empty");
    TRAQ_REQUIRE(address < table.size(), "address out of range");
    // Unary iteration: maintain a one-hot "selected" flag computed by
    // temporary ANDs down the address bits, exactly mirroring the
    // circuit's control structure: at step i the flag is
    // AND_k (address_k == i_k).
    std::uint64_t target = 0;
    for (std::uint64_t i = 0; i < table.size(); ++i) {
        // Temporary AND chain (classically: equality test built up
        // bit by bit, as the unary-iteration tree does).
        bool flag = true;
        for (std::size_t bit = 0;
             (std::size_t{1} << bit) < table.size(); ++bit) {
            bool want = (i >> bit) & 1;
            bool have = (address >> bit) & 1;
            flag = flag && (want == have);
        }
        if (flag)
            target ^= table[i];   // CNOT fan-out of the entry
    }
    return target;
}

std::uint64_t
ghzFanoutEmulate(std::uint64_t mask, bool control)
{
    if (!control)
        return 0;
    // GHZ register in |0...0> + |1...1>; transversal CNOTs copy the
    // shared bit onto every masked target; the X-basis measurement of
    // the GHZ register yields a parity whose correction is a Pauli
    // frame update (no data change).  Classically: every masked
    // target flips with the control.
    return mask;
}

} // namespace traq::gadgets
