/**
 * @file
 * Quantum look-up table (QROM) gadget with GHZ-assisted CNOT fan-out
 * (Sec. III.8, Fig. 10).
 *
 * The unary-iteration circuit walks all 2^m address values using
 * temporary AND gates (one Toffoli + one CNOT per entry on average);
 * the data load is a CNOT fan-out implemented with measurement-based
 * GHZ states so that every atom move is a small constant distance
 * (2*d*l in the Fig. 10(c) layout).
 *
 * A classical emulator of the unary-iteration + fan-out network is
 * included for functional correctness tests.
 */

#ifndef TRAQ_GADGETS_LOOKUP_HH
#define TRAQ_GADGETS_LOOKUP_HH

#include <cstdint>
#include <vector>

#include "src/model/error_model.hh"
#include "src/platform/params.hh"

namespace traq::gadgets {

/** Inputs of a lookup design. */
struct LookupSpec
{
    int addressBits = 7;      //!< m = wexp + wmul
    int targetBits = 2048;    //!< fan-out register width
    int distance = 27;
    /** GHZ grid spacing: one GHZ qubit per this many targets. */
    int ghzSpacing = 2;
    /** Concurrent pipeline copies of the GHZ prep stage. */
    int pipelineCopies = 1;
    platform::AtomArrayParams atom =
        platform::AtomArrayParams::paperDefaults();
    model::ErrorModelParams errorModel =
        model::ErrorModelParams::paperDefaults();
    /** Reaction-time multiplier per unary-iteration step. */
    double kappaLookup = 1.33;
};

/** Resulting lookup design and costs. */
struct LookupReport
{
    std::uint64_t entries = 0;        //!< 2^m
    double cczPerLookup = 0.0;        //!< 2^m - m - 1 temporary ANDs
    double unlookupCcz = 0.0;         //!< ~2^(m/2) (measurement-based)
    double iterationTime = 0.0;       //!< reaction-limited walk [s]
    double fanoutTime = 0.0;          //!< GHZ prep + transversal CX
    double timePerLookup = 0.0;
    double maxMoveSites = 0.0;        //!< 2d (Fig. 10(c))
    double ghzLogicalQubits = 0.0;
    double helperLogicalQubits = 0.0;
    double activeLogicalQubits = 0.0;
    double activePhysicalQubits = 0.0;
    double logicalErrorPerLookup = 0.0;
    double cczRate = 0.0;             //!< CCZ demand [1/s]
};

/** Design a lookup meeting the spec. */
LookupReport designLookup(const LookupSpec &spec);

/**
 * Classical emulation of the unary-iteration QROM: walks the control
 * tree exactly as the circuit does (one temporary AND per step) and
 * applies the CNOT fan-out of each selected entry.
 * @param table 2^m entries of target-register values.
 * @param address the address register value.
 * @return the target register after the lookup.
 */
std::uint64_t qromEmulate(const std::vector<std::uint64_t> &table,
                          std::uint64_t address);

/**
 * Emulation of the GHZ-assisted fan-out: prepare a GHZ word, apply
 * transversal CNOTs onto the masked targets, and account the X-basis
 * GHZ measurement corrections.  Returns the target register change
 * (must equal the mask when control = 1).
 */
std::uint64_t ghzFanoutEmulate(std::uint64_t mask, bool control);

} // namespace traq::gadgets

#endif // TRAQ_GADGETS_LOOKUP_HH
