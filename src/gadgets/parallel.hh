/**
 * @file
 * Space-time trade-offs via Bell-pair bending (Sec. III.5, Fig. 7).
 *
 * Sequentially-dependent circuit blocks of duration t_block can run
 * concurrently, offset by the reaction time t_r, using Bell pairs to
 * "bend qubits backwards in time": tblock / tr copies execute in
 * parallel, each holding its qubits only while active.
 */

#ifndef TRAQ_GADGETS_PARALLEL_HH
#define TRAQ_GADGETS_PARALLEL_HH

#include "src/platform/params.hh"

namespace traq::gadgets {

/** Result of a Bell-parallelization plan. */
struct ParallelPlan
{
    int copies = 1;            //!< blocks running concurrently
    double effectiveRate = 0;  //!< blocks completed per second
    double qubitOverhead = 1;  //!< relative to a single copy
};

/**
 * Plan the parallel execution of repeated blocks.
 * @param tBlock duration of one block [s].
 * @param reactionTime the offset between successive copies [s].
 * @param activeFraction fraction of the block during which its
 *        qubits are actually held (idle qubits can be reused).
 */
ParallelPlan planBellParallel(double tBlock, double reactionTime,
                              double activeFraction = 1.0);

} // namespace traq::gadgets

#endif // TRAQ_GADGETS_PARALLEL_HH
