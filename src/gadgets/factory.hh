/**
 * @file
 * The 8T-to-CCZ magic-state factory (Sec. III.6, Fig. 8).
 *
 * Two stages:
 *  1. magic state cultivation produces |T> states at error p_T
 *     (cost model in src/model/cultivation.hh); eight cultivations
 *     fit in the 12d x 1d bottom row of the factory footprint;
 *  2. the 8T-to-CCZ factory converts them into one |CCZ> with
 *     quadratic suppression p_CCZ ~ 28 p_T^2 (Eq. (8)) upon
 *     post-selection, using 4 transversal CNOT layers (with 1 SE
 *     round each) on logical qubits further encoded in the [[8,3,2]]
 *     code, followed by teleported T gates.
 *
 * Footprint (Fig. 8(d)): 12d x 3d for the factory plus 12d x 1d for
 * cultivation = 12d x 4d sites.
 */

#ifndef TRAQ_GADGETS_FACTORY_HH
#define TRAQ_GADGETS_FACTORY_HH

#include "src/model/cultivation.hh"
#include "src/model/error_model.hh"
#include "src/platform/params.hh"

namespace traq::gadgets {

/** Inputs of a factory design. */
struct FactorySpec
{
    double targetCczError = 1.6e-11;   //!< paper's factoring budget
    double seRoundsPerGate = 1.0;      //!< SE rounds per CNOT layer
    platform::AtomArrayParams atom =
        platform::AtomArrayParams::paperDefaults();
    model::ErrorModelParams errorModel =
        model::ErrorModelParams::paperDefaults();
    model::CultivationModel cultivation;
    /** Force a distance (-1: solve from the error budget). */
    int forcedDistance = -1;
};

/** Resulting factory design and costs. */
struct FactoryReport
{
    int distance = 0;
    double tInputError = 0.0;        //!< required per-|T> error
    double cczError = 0.0;           //!< achieved |CCZ> error
    double cliffordError = 0.0;      //!< factory Clifford share
    /** Fig. 8(d) footprint in grid sites (width x height). */
    int footprintWidthSites = 0;
    int footprintHeightSites = 0;
    double qubits = 0.0;             //!< total sites occupied
    double cczTime = 0.0;            //!< initiation interval [s]
    double throughput = 0.0;         //!< |CCZ> per second (pipelined)
    double retryOverhead = 1.0;      //!< post-selection repeat factor
    double cultivationVolume = 0.0;  //!< qubit-rounds per |T>
    /**
     * Rows of 12d x 1d cultivation area needed to sustain 8 |T> per
     * factory cycle.  The paper's Fig. 8(d) allots one row; with our
     * power-law cultivation cost model the sustained rate needs up
     * to a few rows (documented substitution, see DESIGN.md).
     */
    int cultivationRows = 1;
    bool cultivationFits = false;    //!< rows <= 4
};

/** Design a factory meeting the spec. */
FactoryReport designFactory(const FactorySpec &spec);

/**
 * Number of factory logical-qubit SE-round slots contributing
 * Clifford noise per |CCZ| output (12 logical qubits over the CNOT +
 * teleportation stages); exposed for tests.
 */
double factoryQubitRounds();

} // namespace traq::gadgets

#endif // TRAQ_GADGETS_FACTORY_HH
