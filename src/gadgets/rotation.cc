#include "src/gadgets/rotation.hh"

#include <cmath>

#include "src/common/assert.hh"

namespace traq::gadgets {

RotationCost
synthesizeCliffordT(double eps, const platform::AtomArrayParams &p)
{
    TRAQ_REQUIRE(eps > 0.0 && eps < 1.0,
                 "rotation accuracy must be in (0, 1)");
    RotationCost r;
    // Ross-Selinger: T-count ~ 1.15 log2(1/eps) + 9.2.
    r.tCount = 1.15 * std::log2(1.0 / eps) + 9.2;
    r.cczCount = 0.0;
    // Sequential T teleportations, one reaction step each.
    r.time = r.tCount * p.reactionTime();
    return r;
}

RotationCost
synthesizePhaseGradient(double eps,
                        const platform::AtomArrayParams &p,
                        double kappaAdd)
{
    TRAQ_REQUIRE(eps > 0.0 && eps < 1.0,
                 "rotation accuracy must be in (0, 1)");
    RotationCost r;
    r.gradientBits =
        static_cast<int>(std::ceil(std::log2(1.0 / eps)));
    // One b-bit addition into the gradient register: one CCZ per bit
    // (Sec. III.7 adder), rippling 2b reaction-limited steps.
    r.cczCount = r.gradientBits;
    r.tCount = 0.0;
    r.time = 2.0 * r.gradientBits * kappaAdd * p.reactionTime();
    return r;
}

RotationCost
chooseRotationRoute(double eps, const platform::AtomArrayParams &p)
{
    RotationCost direct = synthesizeCliffordT(eps, p);
    RotationCost gradient = synthesizePhaseGradient(eps, p);
    // Compare in T-equivalents: 1 CCZ distils from 8 |T> inputs but
    // is itself worth ~2 |T> in teleportation cost; use 4 as the
    // conversion midpoint (8T -> 1 CCZ factory, Sec. III.6).
    double directT = direct.tCount;
    double gradientT = 4.0 * gradient.cczCount;
    return directT <= gradientT ? direct : gradient;
}

} // namespace traq::gadgets
