#include "src/gadgets/ghz.hh"

#include "src/arch/qec_cycle.hh"
#include "src/common/assert.hh"

namespace traq::gadgets {

sim::Circuit
ghzPrepCircuit(int n)
{
    TRAQ_REQUIRE(n >= 2, "GHZ needs at least two qubits");
    sim::Circuit c;
    // GHZ qubits 0..n-1 in |+>, helpers n..2n-2 in |0>.
    for (int q = 0; q < n; ++q)
        c.rx(static_cast<std::uint32_t>(q));
    for (int h = 0; h < n - 1; ++h)
        c.r(static_cast<std::uint32_t>(n + h));
    // Helper h measures Z_h Z_{h+1}: two CX layers (left neighbours,
    // then right neighbours) keep the depth at two.
    std::vector<std::uint32_t> layer1, layer2;
    for (int h = 0; h < n - 1; ++h) {
        layer1.push_back(static_cast<std::uint32_t>(h));
        layer1.push_back(static_cast<std::uint32_t>(n + h));
        layer2.push_back(static_cast<std::uint32_t>(h + 1));
        layer2.push_back(static_cast<std::uint32_t>(n + h));
    }
    c.append(sim::Gate::CX, layer1);
    c.append(sim::Gate::CX, layer2);
    for (int h = 0; h < n - 1; ++h)
        c.m(static_cast<std::uint32_t>(n + h));
    return c;
}

GhzCost
ghzCost(int n, int distance, const platform::AtomArrayParams &atom,
        const model::ErrorModelParams &em)
{
    GhzCost g;
    arch::QecCycleTiming cyc = arch::qecCycle(distance, atom);
    // Two CX layers with local moves plus the helper measurement;
    // about half a QEC cycle of gates plus a measurement.
    g.time = 0.5 * cyc.seGatePhase + atom.measureTime;
    g.logicalQubits = 2.0 * n - 1.0;
    double perCnot = model::cnotLogicalError(distance, 1.0, em);
    g.logicalError = n * perCnot;
    return g;
}

} // namespace traq::gadgets
