#include "src/gadgets/adder.hh"

#include <cmath>

#include "src/common/assert.hh"
#include "src/common/math.hh"

namespace traq::gadgets {

AdderReport
designAdder(const AdderSpec &spec)
{
    TRAQ_REQUIRE(spec.nBits >= 1, "adder needs at least one bit");
    TRAQ_REQUIRE(spec.rsep >= 1 && spec.rpad >= 0,
                 "invalid runway parameters");
    AdderReport r;
    r.segments = static_cast<int>(
        traq::ceilDiv(spec.nBits, spec.rsep));
    r.bitsWithRunways = spec.nBits + r.segments * spec.rpad;

    // One CCZ per bit (UMA uncomputation is measurement-based).
    r.cczPerAddition = r.bitsWithRunways;

    // Reaction-limited: each segment ripples rsep MAJ steps forward
    // and rsep UMA steps back, each step costing kappaAdd reaction
    // times; segments run in parallel.
    double perSegmentBits =
        static_cast<double>(spec.rsep) + spec.rpad;
    r.timePerAddition = 2.0 * perSegmentBits * spec.kappaAdd *
                        spec.atom.reactionTime();

    // Fig. 9(c): the MAJ block fits in a 3x2 logical region with max
    // move distance sqrt(2) d l.
    r.maxMoveSites = std::sqrt(2.0) * spec.distance;

    // Per segment: 3x2 block of logical qubits plus 3 CCZ ancillae
    // and 6 CZ correction qubits and 2 bridge qubits ~ 17 logical.
    const double logicalPerSegment = 6.0 + 3.0 + 6.0 + 2.0;
    r.activeLogicalQubits = logicalPerSegment * r.segments;
    double physPerLogical =
        2.0 * spec.distance * spec.distance;   // data + ancilla
    r.activePhysicalQubits = r.activeLogicalQubits * physPerLogical;

    // Logical error: every bit-step involves ~2 transversal CNOT
    // equivalents on the 3x2 block at x = 1 CNOT per SE round.
    double perCnot = model::cnotLogicalError(
        spec.distance, 1.0, spec.errorModel);
    r.logicalErrorPerAddition =
        2.0 * r.bitsWithRunways * perCnot;

    // Oblivious runway approximation error (Ref. [66]).
    r.runwayApproxError =
        r.segments * std::pow(2.0, -spec.rpad);

    // Peak CCZ demand: during the MAJ phase each segment consumes one
    // CCZ per kappaAdd * t_r.
    r.cczRate = r.segments /
                (spec.kappaAdd * spec.atom.reactionTime());
    return r;
}

namespace {

/** MAJ block on (c, b, a): in-place majority / carry computation. */
void
majBits(int &c, int &b, int &a)
{
    // CNOT a->b; CNOT a->c; Toffoli(c, b -> a).
    b ^= a;
    c ^= a;
    a ^= (c & b);
}

/** UMA block (2-CNOT variant) undoing MAJ and producing the sum. */
void
umaBits(int &c, int &b, int &a)
{
    a ^= (c & b);
    c ^= a;
    b ^= c;
}

} // namespace

std::uint64_t
cuccaroEmulate(std::uint64_t a, std::uint64_t b, int nBits)
{
    TRAQ_REQUIRE(nBits >= 1 && nBits <= 63, "nBits must be in [1,63]");
    std::vector<int> av(nBits), bv(nBits);
    for (int i = 0; i < nBits; ++i) {
        av[i] = (a >> i) & 1;
        bv[i] = (b >> i) & 1;
    }
    int carry = 0;   // |c_in> ancilla
    // MAJ ripple: after step i, av[i] holds carry_{i+1}.
    // Chain: MAJ(c, b0, a0); MAJ(a0, b1, a1); ...
    std::vector<int *> carryWire(nBits + 1);
    carryWire[0] = &carry;
    for (int i = 0; i < nBits; ++i) {
        majBits(*carryWire[i], bv[i], av[i]);
        carryWire[i + 1] = &av[i];
    }
    // (A final CNOT would extract carry-out; dropped for mod-2^n.)
    for (int i = nBits - 1; i >= 0; --i)
        umaBits(*carryWire[i], bv[i], av[i]);
    TRAQ_ASSERT(carry == 0, "Cuccaro ancilla must return to zero");

    std::uint64_t sum = 0;
    for (int i = 0; i < nBits; ++i) {
        sum |= static_cast<std::uint64_t>(bv[i]) << i;
        // The a register must be restored (reversibility).
        TRAQ_ASSERT(av[i] == static_cast<int>((a >> i) & 1),
                    "Cuccaro adder must restore the a register");
    }
    return sum;
}

std::uint64_t
runwayAddEmulate(std::uint64_t a, std::uint64_t b, int nBits,
                 int rsep)
{
    TRAQ_REQUIRE(nBits >= 1 && nBits <= 63, "nBits must be in [1,63]");
    TRAQ_REQUIRE(rsep >= 1, "rsep must be positive");
    // Piecewise addition: each segment adds independently recording
    // its carry-out into the runway, then runway carries are rippled
    // into the next segment (the final correction step).
    std::uint64_t sum = 0;
    int carry = 0;
    for (int base = 0; base < nBits; base += rsep) {
        int len = std::min(rsep, nBits - base);
        std::uint64_t mask = (len >= 63)
                                 ? ~0ULL
                                 : ((1ULL << len) - 1);
        std::uint64_t sa = (a >> base) & mask;
        std::uint64_t sb = (b >> base) & mask;
        // Segment addition via the gate-level Cuccaro emulation (one
        // extra bit of headroom captures the carry-out).
        std::uint64_t seg =
            cuccaroEmulate(sa, sb + carry, len + 1);
        sum |= (seg & mask) << base;
        carry = static_cast<int>((seg >> len) & 1);
    }
    std::uint64_t mod = (nBits >= 63) ? ~0ULL
                                      : ((1ULL << nBits) - 1);
    return sum & mod;
}

} // namespace traq::gadgets
