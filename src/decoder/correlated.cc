#include "src/decoder/correlated.hh"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hh"

namespace traq::decoder {

CorrelatedDecoder::CorrelatedDecoder(const DecodeGraph &graph,
                                     const DecoderConfig &config)
    // The inner composite never peels (this decoder owns the peeler)
    // but does get the reach cache: the first matching pass runs
    // under the default context, where cached searches apply; the
    // reweighted second pass bypasses the cache automatically.
    : graph_(graph),
      inner_(graph, config.mwpmMaxDefects, /*predecode=*/false,
             /*predecodeRadius=*/2, resolveReachCache(config.reachCache))
{
    TRAQ_REQUIRE(config.correlationBoost > 0.0 &&
                     config.correlationBoost <= 0.5,
                 "correlationBoost must be in (0, 0.5]");
    boostCap_ = config.correlationBoost;
    if (resolvePredecode(config.predecode))
        pre_ = std::make_unique<Predecoder>(graph_,
                                            config.predecodeRadius);
    weights_.reserve(graph_.edges().size());
    for (const auto &e : graph_.edges())
        weights_.push_back(e.weight);
}

std::uint32_t
CorrelatedDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
CorrelatedDecoder::decodeSpan(
    std::span<const std::uint32_t> syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
CorrelatedDecoder::decodeEx(
    std::span<const std::uint32_t> syndrome,
    const DecodeContext &ctx, std::vector<std::uint32_t> *usedEdges)
{
    if (syndrome.empty())
        return 0;

    // External overrides (herald-zeroed weights) replace the graph
    // weights as the base of both passes.  The scratch copy is
    // reassigned every overridden call, so no restore pass is needed
    // on that path.
    const bool hasOverride = !ctx.weights.empty();
    std::vector<double> *wp = &weights_;
    if (hasOverride) {
        TRAQ_REQUIRE(ctx.weights.size() == graph_.edges().size(),
                     "weight override must cover all edges");
        ovWeights_.assign(ctx.weights.begin(), ctx.weights.end());
        wp = &ovWeights_;
    }

    // Predecode peels only the *first* (evidence) pass: the peeled
    // edges seed used_ so partner reweighting sees the same evidence
    // the first pass would have produced by matching those pairs
    // itself, and the residue keeps the first matching cheap.  The
    // second pass — whose reweighted edges could legally reroute a
    // peeled pair — always decodes the full syndrome, so its result
    // is identical to predecode-off by construction.
    used_.clear();
    std::uint32_t preCorrection = 0;
    std::span<const std::uint32_t> syn = syndrome;
    if (pre_ && !hasOverride) {
        preCorrection = pre_->peel(syndrome, ctx, residue_,
                                   &used_);
        syn = residue_;
    }

    if (graph_.numPartnerLinks() == 0) {
        // No correlation hints (e.g. hand-built DEMs): one pass.
        if (usedEdges)
            usedEdges->insert(usedEdges->end(), used_.begin(),
                              used_.end());
        return preCorrection ^ inner_.decodeEx(syn, ctx, usedEdges);
    }

    const std::uint32_t first =
        preCorrection ^ inner_.decodeEx(syn, ctx, &used_);
    // Two matched paths can share an edge; each distinct edge is one
    // piece of evidence, not one per traversal.
    std::sort(used_.begin(), used_.end());
    used_.erase(std::unique(used_.begin(), used_.end()),
                used_.end());

    // Reweight the partners of every edge the first pass used with
    // the posterior that their shared mechanism fired.  Posteriors
    // from several used edges accumulate; a partner's weight only
    // ever decreases (evidence can make an edge more likely, never
    // less), and never below the configured cap's weight.
    touched_.clear();
    bool boosted = false;
    for (std::uint32_t ei : used_) {
        const auto qs = graph_.partners(ei);
        const auto cond = graph_.partnerCond(ei);
        for (std::size_t k = 0; k < qs.size(); ++k) {
            const std::uint32_t q = qs[k];
            const GraphEdge &eq = graph_.edges()[q];
            const double base =
                hasOverride ? ctx.weights[q] : eq.weight;
            const double cur = (*wp)[q];
            // Combine the existing belief with the new evidence as
            // independent alternatives: p' = p + c - p * c, capped
            // at the configured posterior ceiling.  An untouched
            // override weight converts back to a probability via
            // the log-odds it encodes (clamped to the >= 0 domain
            // the matcher uses).
            const double pPrior =
                cur != base
                    ? 1.0 / (1.0 + std::exp(cur))
                    : (hasOverride
                           ? 1.0 / (1.0 +
                                    std::exp(std::max(base, 0.0)))
                           : eq.probability);
            const double p2 = std::min(
                boostCap_, pPrior + cond[k] - pPrior * cond[k]);
            const double w2 =
                std::log((1.0 - p2) / std::max(p2, 1e-12));
            if (w2 < cur) {
                // Record the first effective touch only, so the
                // restoration below rewinds exactly once.
                if (!hasOverride && cur == base)
                    touched_.push_back(q);
                (*wp)[q] = w2;
                boosted = true;
            }
        }
    }
    if (!boosted)
        return first;  // no evidence worth a second pass

    ++secondPasses_;
    DecodeContext second = ctx;
    second.weights = *wp;
    const std::uint32_t correction =
        inner_.decodeEx(syndrome, second, usedEdges);
    for (std::uint32_t q : touched_)
        weights_[q] = graph_.edges()[q].weight;
    return correction;
}

} // namespace traq::decoder
