/**
 * @file
 * Process-global syndrome-keyed decode memo (caching tier 1).
 *
 * PR 8's decode memo deduplicates syndromes *within* one batch; this
 * promotes it to a process-wide cache shared across batches, shards,
 * engine runs, and sweep jobs.  Entries are keyed by a
 * DecodeSetupKey — a 128-bit digest of the DecodeGraph content hash
 * plus the decoder kind and every config field the decode result can
 * depend on — together with the full (defects, heralds) content, so
 * a replay is only ever served for the exact same decoding problem.
 *
 * Correctness rests on the same property the per-batch memo uses:
 * thanks to the deterministic tie-break epsilon, every decoder's
 * correction *and* its counter deltas (fallbacks, predecoded pairs)
 * are pure functions of (graph, config, defects, heralds).  Entries
 * therefore replay both, keeping corrections and tallies
 * bit-identical with the cache on/off and across thread counts.
 * Only the hit counters are timing-dependent (a racing insert may
 * land before or after another thread's lookup) and they are
 * reported separately from the deterministic tallies.
 *
 * The cache is sharded (64 shards, striped std::mutex) and
 * capacity-bounded; on overflow a shard evicts an arbitrary resident
 * entry, which is always safe — eviction can only turn a future hit
 * into a recomputation of the identical result.
 */

#ifndef TRAQ_DECODER_GLOBAL_MEMO_HH
#define TRAQ_DECODER_GLOBAL_MEMO_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/decoder/decoder.hh"

namespace traq::decoder {

/** Sharded, capacity-bounded process-wide decode-result cache. */
class GlobalDecodeMemo
{
  public:
    /** Everything a replay must reproduce for one syndrome. */
    struct Value
    {
        /** Predicted logical-observable flip mask. */
        std::uint32_t predicted = 0;
        /** fallbacks() increments of the original decode. */
        std::uint32_t fallbacks = 0;
        /** predecodedPairs() increments of the original decode. */
        std::uint32_t peels = 0;
    };

    /** Aggregated across shards; hit/miss counts are monotonic. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;
    };

    /** Default capacity (total entries across all shards). */
    static constexpr std::size_t kDefaultCapacity = 1u << 18;

    explicit GlobalDecodeMemo(std::size_t capacity = kDefaultCapacity);

    /** The process-wide instance the engine and batch decode use. */
    static GlobalDecodeMemo &instance();

    /**
     * Look up the decode result for (setup, defects, heralds).
     * A hash collision with different content is a miss (content is
     * compared in full, never trusted from the hash alone).
     * @return true and fill @p out on a hit.
     */
    bool lookup(const DecodeSetupKey &setup,
                std::span<const std::uint32_t> defects,
                std::span<const std::uint32_t> heralds, Value &out);

    /**
     * Insert a decode result.  If another thread already claimed the
     * slot (same hash), the first claimant is kept — like the
     * per-batch memo, a collision degrades to recomputation, never a
     * wrong replay.  Evicts an arbitrary entry of the target shard
     * when it is at capacity.
     */
    void insert(const DecodeSetupKey &setup,
                std::span<const std::uint32_t> defects,
                std::span<const std::uint32_t> heralds,
                const Value &v);

    /** Drop every entry (benches isolate measurements with this). */
    void clear();

    /**
     * Change the total capacity (distributed over the shards; each
     * shard holds at least one entry).  Existing overflow is evicted
     * lazily on the next insert into a full shard.
     */
    void setCapacity(std::size_t entries);

    std::size_t capacity() const { return capacity_.load(); }

    Stats stats() const;

  private:
    struct Entry
    {
        DecodeSetupKey setup;
        /** defects followed by heralds (exact-compare content). */
        std::vector<std::uint32_t> content;
        std::uint32_t numDefects = 0;
        Value value;
    };

    struct Shard
    {
        mutable std::mutex m;
        std::unordered_map<std::uint64_t, Entry> map;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
    };

    static constexpr std::size_t kShards = 64;

    std::size_t shardCap() const
    {
        const std::size_t per = capacity_.load() / kShards;
        return per == 0 ? 1 : per;
    }

    std::atomic<std::size_t> capacity_;
    std::vector<Shard> shards_;
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_GLOBAL_MEMO_HH
