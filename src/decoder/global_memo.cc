#include "src/decoder/global_memo.hh"

#include <algorithm>

namespace traq::decoder {
namespace {

/** splitmix64-style mixing step (same shape as the batch memo's
 *  hashSyndrome, with a multiply to spread shard selection bits). */
inline std::uint64_t
mixHash(std::uint64_t h, std::uint64_t x)
{
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    return h ^ (h >> 29);
}

/** Map key: setup digest mixed with the full syndrome content. */
inline std::uint64_t
entryHash(const DecodeSetupKey &setup,
          std::span<const std::uint32_t> defects,
          std::span<const std::uint32_t> heralds)
{
    std::uint64_t h = mixHash(setup.a, setup.b);
    h = mixHash(h, defects.size());
    for (std::uint32_t x : defects)
        h = mixHash(h, x);
    h = mixHash(h, heralds.size());
    for (std::uint32_t x : heralds)
        h = mixHash(h, x);
    return h;
}

/** Exact content compare backing every hash hit. */
inline bool
entryMatches(const GlobalDecodeMemo::Value &, const DecodeSetupKey &a,
             std::span<const std::uint32_t> defects,
             std::span<const std::uint32_t> heralds,
             const DecodeSetupKey &b, std::uint32_t numDefects,
             std::span<const std::uint32_t> content)
{
    if (!(a == b))
        return false;
    if (content.size() != defects.size() + heralds.size() ||
        numDefects != defects.size())
        return false;
    return std::equal(defects.begin(), defects.end(),
                      content.begin()) &&
           std::equal(heralds.begin(), heralds.end(),
                      content.begin() + defects.size());
}

} // namespace

GlobalDecodeMemo::GlobalDecodeMemo(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), shards_(kShards)
{
}

GlobalDecodeMemo &
GlobalDecodeMemo::instance()
{
    static GlobalDecodeMemo memo;
    return memo;
}

bool
GlobalDecodeMemo::lookup(const DecodeSetupKey &setup,
                         std::span<const std::uint32_t> defects,
                         std::span<const std::uint32_t> heralds,
                         Value &out)
{
    const std::uint64_t h = entryHash(setup, defects, heralds);
    Shard &shard = shards_[(h >> 58) % kShards];
    std::lock_guard<std::mutex> lock(shard.m);
    auto it = shard.map.find(h);
    if (it != shard.map.end() &&
        entryMatches(it->second.value, setup, defects, heralds,
                     it->second.setup, it->second.numDefects,
                     it->second.content)) {
        out = it->second.value;
        ++shard.hits;
        return true;
    }
    ++shard.misses;
    return false;
}

void
GlobalDecodeMemo::insert(const DecodeSetupKey &setup,
                         std::span<const std::uint32_t> defects,
                         std::span<const std::uint32_t> heralds,
                         const Value &v)
{
    const std::uint64_t h = entryHash(setup, defects, heralds);
    Shard &shard = shards_[(h >> 58) % kShards];
    std::lock_guard<std::mutex> lock(shard.m);
    auto [it, inserted] = shard.map.try_emplace(h);
    if (!inserted)
        return; // First claimant wins (collision or racing insert).
    if (shard.map.size() > shardCap()) {
        // Evict an arbitrary *other* resident entry: recomputation
        // of an identical result is the only possible consequence.
        auto victim = shard.map.begin();
        if (victim == it)
            ++victim;
        shard.map.erase(victim);
        ++shard.evictions;
    }
    Entry &e = it->second;
    e.setup = setup;
    e.numDefects = static_cast<std::uint32_t>(defects.size());
    e.content.reserve(defects.size() + heralds.size());
    e.content.assign(defects.begin(), defects.end());
    e.content.insert(e.content.end(), heralds.begin(), heralds.end());
    e.value = v;
    ++shard.inserts;
}

void
GlobalDecodeMemo::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.m);
        shard.map.clear();
    }
}

void
GlobalDecodeMemo::setCapacity(std::size_t entries)
{
    capacity_ = entries == 0 ? 1 : entries;
}

GlobalDecodeMemo::Stats
GlobalDecodeMemo::stats() const
{
    Stats s;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.m);
        s.hits += shard.hits;
        s.misses += shard.misses;
        s.inserts += shard.inserts;
        s.evictions += shard.evictions;
        s.entries += shard.map.size();
    }
    return s;
}

} // namespace traq::decoder
