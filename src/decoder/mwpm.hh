/**
 * @file
 * Exact minimum-weight perfect matching decoder for small defect sets.
 *
 * Pairwise defect distances are computed with Dijkstra over the
 * shared DecodeGraph (the virtual boundary acts as an always-available
 * partner), and the optimal pairing is found by bitmask dynamic
 * programming — exact for up to ~20 defects, which covers the
 * below-threshold sampling regime used to extract the paper's
 * decoding factor alpha.  Fallback above the cap is FallbackDecoder's
 * job (it routes oversized syndromes to union-find).
 *
 * The extended entry point decodeEx() is what the composite decoders
 * build on: a DecodeContext can reweight edges (correlated two-pass
 * decoding) or hide future rounds (windowed streaming decoding), and
 * the matched correction can be reported as the list of graph edges
 * it traverses — the edge posteriors the correlated decoder feeds
 * back across partner hyperedges.
 *
 * Dijkstra's distance/predecessor arrays are epoch-stamped and the
 * DP tables are reused members, so a decode allocates nothing warm
 * and clears only what it reaches — the per-worker arena scratch the
 * batch decode path leans on.
 */

#ifndef TRAQ_DECODER_MWPM_HH
#define TRAQ_DECODER_MWPM_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/predecode.hh"

namespace traq::decoder {

/** Exact MWPM decoder over the shared decode graph. */
class MwpmDecoder final : public Decoder
{
  public:
    /**
     * @param graph decode graph.
     * @param maxDefects largest syndrome size decoded exactly.  The
     *        cap applies to the syndrome as handed in — predecode
     *        peeling never widens what this decoder accepts, so
     *        predecode on/off route identically.
     * @param predecode peel isolated adjacent pairs first (see
     *        Predecoder); off by default.
     * @param predecodeRadius isolation radius for the peeler.
     * @param reachCache share Dijkstra searches across decodes whose
     *        source defect recurs (see the SsspSlot cache below);
     *        bit-identical on/off.  Off by default at the class
     *        level; the factory resolves DecoderConfig::reachCache /
     *        TRAQ_REACH_CACHE (default on).
     */
    explicit MwpmDecoder(const DecodeGraph &graph,
                         std::size_t maxDefects = 18,
                         bool predecode = false,
                         int predecodeRadius = 2,
                         bool reachCache = false);

    /** True if this syndrome is within the exact-decoding cap. */
    bool canDecode(std::span<const std::uint32_t> syndrome) const
    {
        return syndrome.size() <= maxDefects_;
    }

    /**
     * Decode one syndrome.  Throws FatalError above the cap; use
     * FallbackDecoder when syndromes may exceed it.
     * @return predicted logical-observable flip mask.
     */
    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    std::uint32_t
    decodeSpan(std::span<const std::uint32_t> syndrome) override;

    /**
     * Decode under a context (reweighted edges and/or a round
     * horizon).  If usedEdges is non-null the edges traversed by the
     * matched correction are appended to it (unsorted, duplicates
     * possible when two paths share an edge).
     */
    std::uint32_t
    decodeEx(std::span<const std::uint32_t> syndrome,
             const DecodeContext &ctx,
             std::vector<std::uint32_t> *usedEdges);

    std::uint32_t
    decodeWithContext(std::span<const std::uint32_t> syndrome,
                      const DecodeContext &ctx) override
    {
        return decodeEx(syndrome, ctx, nullptr);
    }

    void reset() override
    {
        if (pre_)
            pre_->reset();
        invalidateReachCache();
    }

    /** Dijkstra searches answered from the reach cache. */
    std::uint64_t reachCacheHits() const { return cacheHits_; }

    /** Drop every cached single-source search (epoch bump). */
    void invalidateReachCache();
    const char *name() const override { return "mwpm"; }
    std::uint64_t predecodedPairs() const override
    {
        return pre_ ? pre_->pairsPeeled() : 0;
    }

  private:
    const DecodeGraph &graph_;
    std::size_t maxDefects_;
    std::unique_ptr<Predecoder> pre_;
    std::vector<std::uint32_t> residue_;  //!< post-peel syndrome

    // Epoch-stamped Dijkstra scratch: dist_/fromEdge_ entries are
    // valid only when distStamp_ matches the current search's epoch.
    std::uint32_t epoch_ = 0;
    std::vector<std::uint32_t> distStamp_;
    std::vector<double> dist_;
    std::vector<std::int32_t> fromEdge_;

    struct Reach
    {
        double dist = 0.0;
        std::uint32_t obs = 0;
        /** Graph edges of the shortest path (empty if unreachable). */
        std::vector<std::uint32_t> edges;
    };

    // Reused per-decode tables (rows keep their capacity warm).
    std::vector<std::vector<Reach>> pair_;
    std::vector<Reach> toBoundary_;
    std::vector<double> best_;
    std::vector<std::int32_t> choice_;

    /**
     * Reach cache: a snapshot of one full single-source Dijkstra
     * (distance + predecessor edge per node, plus the best boundary
     * exit).  Defect positions recur heavily across the shots of a
     * batch — especially once the engine sorts shots by defect count
     * — so the search from a recurring source is answered by reading
     * the snapshot instead of re-running the priority queue.  Valid
     * only for the default context (no weight overrides, no round
     * horizon): context decodes bypass the cache entirely, which is
     * what keeps correlated/windowed passes exact.  Slots are
     * epoch-stamped; invalidateReachCache() bumps the epoch instead
     * of clearing per-node state.
     */
    struct SsspSlot
    {
        std::vector<double> dist;          //!< kInf where unreached
        std::vector<std::int32_t> fromEdge;
        double boundaryDist = 0.0;
        std::int32_t boundaryNode = -1;
        std::int32_t boundaryEdge = -1;
    };
    bool reachCache_ = false;
    std::uint32_t cacheEpoch_ = 1;
    std::uint64_t cacheHits_ = 0;
    std::vector<std::uint32_t> cacheStampOf_; //!< per node
    std::vector<std::uint32_t> cacheSlotOf_;  //!< valid when stamped
    std::vector<SsspSlot> slots_;

    // Best boundary exit found by the latest searchFrom().
    double searchBoundaryDist_ = 0.0;
    std::int32_t searchBoundaryNode_ = -1;
    std::int32_t searchBoundaryEdge_ = -1;

    /**
     * Single-source shortest paths from a defect; returns distance,
     * path-observable mask, and path edges to every target plus the
     * boundary, honoring the context's weights and round horizon.
     */
    void dijkstra(std::uint32_t source,
                  std::span<const std::uint32_t> targets,
                  const DecodeContext &ctx, bool wantEdges,
                  std::vector<Reach> *out, Reach *boundary);

    /** The priority-queue loop of dijkstra(); fills the epoch-stamped
     *  scratch and the searchBoundary*_ members. */
    void searchFrom(std::uint32_t source, const DecodeContext &ctx);

    /** Cached-path equivalent of dijkstra(): snapshot the search on
     *  first use of a source, then answer from the slot. */
    const SsspSlot &ensureSlot(std::uint32_t source,
                               const DecodeContext &ctx);

    /** Turn a distance/predecessor store (scratch or slot) into the
     *  per-target Reach rows dijkstra() reports. */
    template <class DistFn, class EdgeFn>
    void fillReaches(std::uint32_t source,
                     std::span<const std::uint32_t> targets,
                     bool wantEdges, DistFn distOf, EdgeFn fromEdgeOf,
                     double boundaryDist, std::int32_t boundaryNode,
                     std::int32_t boundaryEdge, std::vector<Reach> *out,
                     Reach *boundary);
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_MWPM_HH
