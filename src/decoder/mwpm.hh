/**
 * @file
 * Exact minimum-weight perfect matching decoder for small defect sets.
 *
 * Pairwise defect distances are computed with Dijkstra over the
 * decoding graph (the virtual boundary acts as an always-available
 * partner), and the optimal pairing is found by bitmask dynamic
 * programming — exact for up to ~20 defects, which covers the
 * below-threshold sampling regime used to extract the paper's
 * decoding factor alpha.  Fallback above the cap is FallbackDecoder's
 * job (it routes oversized syndromes to union-find).
 */

#ifndef TRAQ_DECODER_MWPM_HH
#define TRAQ_DECODER_MWPM_HH

#include <cstdint>
#include <vector>

#include "src/decoder/decoder.hh"
#include "src/decoder/graph.hh"

namespace traq::decoder {

/** Exact MWPM decoder over a fixed decoding graph. */
class MwpmDecoder final : public Decoder
{
  public:
    /**
     * @param graph decoding graph.
     * @param maxDefects largest syndrome size decoded exactly.
     */
    explicit MwpmDecoder(const DecodingGraph &graph,
                         std::size_t maxDefects = 18);

    /** True if this syndrome is within the exact-decoding cap. */
    bool canDecode(const std::vector<std::uint32_t> &syndrome) const
    {
        return syndrome.size() <= maxDefects_;
    }

    /**
     * Decode one syndrome.  Throws FatalError above the cap; use
     * FallbackDecoder when syndromes may exceed it.
     * @return predicted logical-observable flip mask.
     */
    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    const char *name() const override { return "mwpm"; }

  private:
    const DecodingGraph &graph_;
    std::size_t maxDefects_;

    // Scratch for Dijkstra.
    std::vector<double> dist_;
    std::vector<std::int32_t> fromEdge_;

    struct Reach
    {
        double dist = 0.0;
        std::uint32_t obs = 0;
    };

    /**
     * Single-source shortest paths from a defect; returns distance and
     * path-observable mask to every node plus the boundary.
     */
    void dijkstra(std::uint32_t source,
                  const std::vector<std::uint32_t> &targets,
                  std::vector<Reach> *out, Reach *boundary);
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_MWPM_HH
