/**
 * @file
 * Exact minimum-weight perfect matching decoder for small defect sets.
 *
 * Pairwise defect distances are computed with Dijkstra over the
 * decoding graph (the virtual boundary acts as an always-available
 * partner), and the optimal pairing is found by bitmask dynamic
 * programming — exact for up to ~20 defects, which covers the
 * below-threshold sampling regime used to extract the paper's
 * decoding factor alpha.  Falls back is the caller's responsibility
 * (see MonteCarlo, which switches to union-find above the cap).
 */

#ifndef TRAQ_DECODER_MWPM_HH
#define TRAQ_DECODER_MWPM_HH

#include <cstdint>
#include <vector>

#include "src/decoder/graph.hh"

namespace traq::decoder {

/** Exact MWPM decoder over a fixed decoding graph. */
class MwpmDecoder
{
  public:
    /**
     * @param graph decoding graph.
     * @param maxDefects largest syndrome size decoded exactly.
     */
    explicit MwpmDecoder(const DecodingGraph &graph,
                         std::size_t maxDefects = 18);

    /** True if this syndrome is within the exact-decoding cap. */
    bool canDecode(const std::vector<std::uint32_t> &syndrome) const
    {
        return syndrome.size() <= maxDefects_;
    }

    /**
     * Decode one syndrome.
     * @return predicted logical-observable flip mask.
     */
    std::uint32_t decode(const std::vector<std::uint32_t> &syndrome);

  private:
    const DecodingGraph &graph_;
    std::size_t maxDefects_;

    // Scratch for Dijkstra.
    std::vector<double> dist_;
    std::vector<std::int32_t> fromEdge_;

    struct Reach
    {
        double dist = 0.0;
        std::uint32_t obs = 0;
    };

    /**
     * Single-source shortest paths from a defect; returns distance and
     * path-observable mask to every node plus the boundary.
     */
    void dijkstra(std::uint32_t source,
                  const std::vector<std::uint32_t> &targets,
                  std::vector<Reach> *out, Reach *boundary);
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_MWPM_HH
