/**
 * @file
 * Two-pass correlated matching decoder.
 *
 * A plain matcher decodes the decomposed graph as if its edges were
 * independent, but the DecodeGraph knows better: edges decomposed
 * from one physical mechanism (a Y data error's X/Z halves, or the
 * per-patch halves of an error propagated through a transversal
 * CNOT) carry partner hints.  This decoder runs matching twice:
 *
 *  1. a first pass over the syndrome with the base weights, keeping
 *     the list of graph edges its correction traverses;
 *  2. every partner of a used edge is reweighted with the posterior
 *     probability DecoderConfig::correlationBoost (the mechanism
 *     evidently fired, so its other half is nearly free);
 *  3. a second pass over the same syndrome with the reweighted graph
 *     produces the final correction.
 *
 * This is the matching-with-correlation-reweighting idea of
 * Fowler's correlated MWPM, applied across the transversal-CNOT
 * hyperedges of Refs [17,18]: it is what restores monotone
 * cross-distance suppression on transversal-CNOT circuits (the
 * d=5-worse-than-d=3 inversion of the plain joint matcher) and what
 * the paper's alpha ~ 1/6 per-CNOT error model presumes.
 *
 * Both passes route through the MWPM->union-find fallback composite,
 * so oversized syndromes degrade gracefully and are counted.
 */

#ifndef TRAQ_DECODER_CORRELATED_HH
#define TRAQ_DECODER_CORRELATED_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/predecode.hh"

namespace traq::decoder {

/** Two-pass correlated matcher over the shared decode graph. */
class CorrelatedDecoder final : public Decoder
{
  public:
    CorrelatedDecoder(const DecodeGraph &graph,
                      const DecoderConfig &config);

    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    std::uint32_t
    decodeSpan(std::span<const std::uint32_t> syndrome) override;

    /**
     * Context-aware decode: the round horizon (if any) applies to
     * both passes.  External weight overrides (the erasure-aware
     * path) become the base weights of both passes: partner
     * reweighting then lowers edges below their *overridden* weight,
     * so herald-zeroed edges stay free and correlation evidence
     * still stacks on the rest.  With predecode on, peeled edges
     * join the first pass's evidence, so partner reweighting sees
     * the same mechanisms either way (peeling is skipped under an
     * override, matching the other decoders).
     */
    std::uint32_t
    decodeEx(std::span<const std::uint32_t> syndrome,
             const DecodeContext &ctx,
             std::vector<std::uint32_t> *usedEdges);

    std::uint32_t
    decodeWithContext(std::span<const std::uint32_t> syndrome,
                      const DecodeContext &ctx) override
    {
        return decodeEx(syndrome, ctx, nullptr);
    }

    void reset() override
    {
        inner_.reset();
        secondPasses_ = 0;
        if (pre_)
            pre_->reset();
    }
    const char *name() const override { return "correlated"; }
    std::uint64_t fallbacks() const override
    {
        return inner_.fallbacks();
    }
    std::uint64_t predecodedPairs() const override
    {
        return pre_ ? pre_->pairsPeeled() : 0;
    }

    /** Second passes actually run (some partner edge reweighted). */
    std::uint64_t reweightedPasses() const { return secondPasses_; }

  private:
    const DecodeGraph &graph_;
    FallbackDecoder inner_;
    std::unique_ptr<Predecoder> pre_;
    std::vector<std::uint32_t> residue_;  //!< post-peel syndrome
    double boostCap_;               //!< posterior probability ceiling
    std::vector<double> weights_;   //!< base weights, patched per shot
    std::vector<double> ovWeights_; //!< override-base scratch
    std::vector<std::uint32_t> used_;
    std::vector<std::uint32_t> touched_;
    std::uint64_t secondPasses_ = 0;
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_CORRELATED_HH
