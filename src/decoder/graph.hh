/**
 * @file
 * Decoding graph construction from a detector error model.
 *
 * Surface-code DEMs under depolarizing noise contain hyperedges (e.g.
 * a Y data error flips two X-type and two Z-type detectors).  As is
 * standard for matching-type decoders, each mechanism is decomposed by
 * detector basis into at most one X-part and one Z-part, each with
 * <= 2 detectors, giving a graph whose nodes are detectors plus a
 * virtual boundary.  Logical-observable masks ride on the part whose
 * detector basis matches the observable basis.
 *
 * Cross-patch mechanisms created by transversal CNOTs decompose the
 * same way, so a single graph expresses the *joint* (correlated)
 * decoding problem of Refs [17,18].
 */

#ifndef TRAQ_DECODER_GRAPH_HH
#define TRAQ_DECODER_GRAPH_HH

#include <cstdint>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/sim/dem.hh"

namespace traq::decoder {

/** Sentinel node id for the virtual boundary. */
constexpr std::int32_t kBoundary = -1;

/** One decoding-graph edge (u == kBoundary for boundary edges). */
struct GraphEdge
{
    std::int32_t u = kBoundary;
    std::int32_t v = kBoundary;
    double probability = 0.0;
    double weight = 0.0;            //!< ln((1-p)/p), clipped
    std::uint32_t observables = 0;  //!< logical masks flipped
};

/** Matching/union-find decoding graph. */
class DecodingGraph
{
  public:
    /**
     * Build from a DEM plus detector-basis metadata.
     * @param dem the detector error model.
     * @param meta detector/observable bases from the circuit builder.
     */
    static DecodingGraph fromDem(const sim::DetectorErrorModel &dem,
                                 const codes::CircuitMeta &meta);

    std::size_t numNodes() const { return numNodes_; }
    const std::vector<GraphEdge> &edges() const { return edges_; }

    /** Edge indices incident to node n (boundary edges included). */
    const std::vector<std::uint32_t> &
    incident(std::size_t n) const
    {
        return adj_[n];
    }

    /** Mechanisms needing >2 detectors per basis (should be 0). */
    std::size_t numUnsplittable() const { return numUnsplittable_; }

    /**
     * Mechanisms flipping an observable with no same-basis detector
     * (invisible logical errors; should be 0 for d >= 3 circuits).
     */
    std::size_t numUndetectableLogical() const
    {
        return numUndetectableLogical_;
    }

  private:
    std::size_t numNodes_ = 0;
    std::vector<GraphEdge> edges_;
    std::vector<std::vector<std::uint32_t>> adj_;
    std::size_t numUnsplittable_ = 0;
    std::size_t numUndetectableLogical_ = 0;
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_GRAPH_HH
