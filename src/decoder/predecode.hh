/**
 * @file
 * Predecode fast path: peel isolated defect pairs before matching.
 *
 * Below threshold most syndromes are a handful of well-separated
 * single-mechanism events: two defects joined by one graph edge with
 * nothing else nearby.  Running Dijkstra + DP matching (or union-find
 * growth) on those is pure overhead — the optimal correction for an
 * isolated adjacent pair is the edge itself.  This is the sparse
 * predecoding idea of the union-find / sparse-blossom line of work:
 * handle the easy, overwhelmingly common structure in O(degree) and
 * hand only the residue to the full decoder.
 *
 * The peeler is deliberately conservative so that predecode on/off
 * produce identical corrections (a property the tests lock in on
 * randomized syndromes): a pair (u, v) is peeled only when
 *
 *  - u and v are joined by a visible graph edge (the cheapest such
 *    edge is the correction),
 *  - no *other* defect of the original syndrome lies within
 *    `radius` hops of u or v (so no alternative pairing can involve
 *    them), and
 *  - the pair edge is no costlier than the defects' direct boundary
 *    exits (so matching them to each other, not to the boundary, is
 *    optimal).
 *
 * Isolation is evaluated against the original defect set, never the
 * partially-peeled one, so the peel is order-independent and
 * deterministic.  All scratch is epoch-stamped: a peel touches only
 * the syndrome's neighborhood, not O(nodes).
 */

#ifndef TRAQ_DECODER_PREDECODE_HH
#define TRAQ_DECODER_PREDECODE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/decoder/decode_graph.hh"

namespace traq::decoder {

/** Isolated-pair peeler shared by the outermost decoder stages. */
class Predecoder
{
  public:
    /**
     * @param graph  shared decode graph.
     * @param radius isolation radius in graph hops (>= 1); larger is
     *               more conservative (fewer peels, safer identity).
     */
    explicit Predecoder(const DecodeGraph &graph, int radius = 2);

    /**
     * Peel isolated adjacent pairs from `syndrome` (flipped detector
     * ids, ascending).  The un-peeled defects are written to
     * `residue` (cleared first, order preserved); the return value
     * is the XOR of the peeled edges' observable masks.  If
     * usedEdges is non-null the peeled edge indices are appended —
     * the correlated decoder feeds them into partner reweighting as
     * first-pass evidence.  Honors ctx.maxRound (hidden edges
     * neither connect nor count toward isolation); callers must not
     * pass ctx.weights overrides (peel conditions use base weights).
     */
    std::uint32_t peel(std::span<const std::uint32_t> syndrome,
                       const DecodeContext &ctx,
                       std::vector<std::uint32_t> &residue,
                       std::vector<std::uint32_t> *usedEdges);

    /** Pairs peeled since reset(). */
    std::uint64_t pairsPeeled() const { return pairsPeeled_; }
    void reset() { pairsPeeled_ = 0; }

  private:
    const DecodeGraph &graph_;
    int radius_;
    std::uint64_t pairsPeeled_ = 0;

    // Epoch-stamped scratch: a mark is valid iff its stamp equals
    // the current epoch, so per-call resets are O(syndrome), not
    // O(nodes).
    std::uint32_t epoch_ = 0;
    std::vector<std::uint32_t> defectStamp_;
    std::vector<std::uint32_t> consumedStamp_;
    /** BFS visit marks get their own epoch, bumped per crowded()
     *  call: one peel runs several isolation checks, and a node the
     *  first ball visited must not look visited to the next. */
    std::uint32_t visitEpoch_ = 0;
    std::vector<std::uint32_t> visitStamp_;
    std::vector<std::uint32_t> bfs_;

    void bumpEpoch();
    /** True if a defect other than u/v lies within radius_ hops. */
    bool crowded(std::uint32_t u, std::uint32_t v,
                 const DecodeContext &ctx);
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_PREDECODE_HH
