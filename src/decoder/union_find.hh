/**
 * @file
 * Weighted union-find decoder (Delfosse–Nickerson style).
 *
 * Odd-parity clusters grow their boundary edges in unit weight
 * increments until they merge with another defect cluster or touch the
 * virtual boundary; the correction is then extracted by peeling a
 * spanning forest of the grown region.  This is the "fast but less
 * accurate than matching/MLE" end of the decoder spectrum the paper
 * sweeps via the decoding factor alpha (Sec. III.4, Fig. 13(a)).
 *
 * Like the exact matcher, it is a client of the shared DecodeGraph:
 * decodeEx() accepts a DecodeContext with reweighted edges (the
 * correlated decoder's second pass falls back here above the MWPM
 * cap) and/or a round horizon (windowed streaming decode), and can
 * report the correction's edges.
 *
 * All per-decode state is an epoch-stamped arena: a mark is valid
 * only if its stamp matches the current decode's epoch, so a decode
 * touches O(syndrome neighborhood) memory instead of re-clearing
 * O(nodes + edges) arrays — the property that makes batch decoding
 * (decodeBatch over a whole sampler block) scale with defect count,
 * not graph size.
 */

#ifndef TRAQ_DECODER_UNION_FIND_HH
#define TRAQ_DECODER_UNION_FIND_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/predecode.hh"

namespace traq::decoder {

/** Union-find decoder over the shared decode graph. */
class UnionFindDecoder final : public Decoder
{
  public:
    /**
     * @param graph decode graph.
     * @param predecode peel isolated adjacent defect pairs before
     *        growing clusters (see Predecoder).  Off by default;
     *        composites construct their inner stages without it so
     *        only the outermost decoder peels.
     * @param predecodeRadius isolation radius for the peeler.
     */
    explicit UnionFindDecoder(const DecodeGraph &graph,
                              bool predecode = false,
                              int predecodeRadius = 2);

    /**
     * Decode one syndrome (list of flipped detector ids).
     * @return the predicted logical-observable flip mask.
     */
    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    std::uint32_t
    decodeSpan(std::span<const std::uint32_t> syndrome) override;

    /**
     * Decode under a context.  Non-default weights are requantized
     * per call (an O(edges) pass — acceptable because composite
     * decoders only route the rare oversized syndromes here).  If
     * usedEdges is non-null the correction's flipped edges are
     * appended to it.
     */
    std::uint32_t
    decodeEx(std::span<const std::uint32_t> syndrome,
             const DecodeContext &ctx,
             std::vector<std::uint32_t> *usedEdges);

    std::uint32_t
    decodeWithContext(std::span<const std::uint32_t> syndrome,
                      const DecodeContext &ctx) override
    {
        return decodeEx(syndrome, ctx, nullptr);
    }

    void reset() override
    {
        if (pre_)
            pre_->reset();
    }
    const char *name() const override { return "union-find"; }
    std::uint64_t predecodedPairs() const override
    {
        return pre_ ? pre_->pairsPeeled() : 0;
    }

  private:
    const DecodeGraph &graph_;
    std::unique_ptr<Predecoder> pre_;
    std::vector<std::uint32_t> residue_;  //!< post-peel syndrome
    std::vector<std::uint32_t> edgeWeightQ_;  //!< quantized weights
    std::vector<std::uint32_t> ctxWeightQ_;   //!< per-call override

    // Epoch-stamped arena (see file comment).  Node state is
    // initialized on first touch per decode; edge growth likewise.
    std::uint32_t epoch_ = 0;
    std::vector<std::uint32_t> nodeStamp_;
    std::vector<std::int32_t> parent_;
    std::vector<std::int32_t> rankArr_;
    std::vector<std::uint8_t> parity_;     //!< defect parity per root
    std::vector<std::uint8_t> touchesBoundary_;
    std::vector<std::uint8_t> defect_;
    std::vector<std::vector<std::uint32_t>> frontier_;
    std::vector<std::uint32_t> growthStamp_;
    std::vector<std::uint32_t> growth_;    //!< per-edge grown amount
    // Peel-stage arena (boundary super-node is index numNodes).
    std::vector<std::uint32_t> adjStamp_;
    std::vector<std::vector<std::uint32_t>> peelAdj_;
    std::vector<std::uint32_t> visitedStamp_;
    std::vector<std::int32_t> parentEdge_;

    void bumpEpoch();
    /** Initialize node i's arena slots once per epoch. */
    void touchNode(std::int32_t i);
    std::uint32_t growthOf(std::uint32_t ei) const
    {
        return growthStamp_[ei] == epoch_ ? growth_[ei] : 0;
    }
    void growEdge(std::uint32_t ei)
    {
        if (growthStamp_[ei] != epoch_) {
            growthStamp_[ei] = epoch_;
            growth_[ei] = 0;
        }
        ++growth_[ei];
    }

    std::int32_t find(std::int32_t a);
    void unite(std::int32_t a, std::int32_t b);

    static std::uint32_t quantize(double w);

    std::uint32_t peel(const std::vector<std::uint32_t> &solidEdges,
                       std::vector<std::uint32_t> *usedEdges);
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_UNION_FIND_HH
