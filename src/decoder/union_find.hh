/**
 * @file
 * Weighted union-find decoder (Delfosse–Nickerson style).
 *
 * Odd-parity clusters grow their boundary edges in unit weight
 * increments until they merge with another defect cluster or touch the
 * virtual boundary; the correction is then extracted by peeling a
 * spanning forest of the grown region.  This is the "fast but less
 * accurate than matching/MLE" end of the decoder spectrum the paper
 * sweeps via the decoding factor alpha (Sec. III.4, Fig. 13(a)).
 */

#ifndef TRAQ_DECODER_UNION_FIND_HH
#define TRAQ_DECODER_UNION_FIND_HH

#include <cstdint>
#include <vector>

#include "src/decoder/decoder.hh"
#include "src/decoder/graph.hh"

namespace traq::decoder {

/** Union-find decoder over a fixed decoding graph. */
class UnionFindDecoder final : public Decoder
{
  public:
    explicit UnionFindDecoder(const DecodingGraph &graph);

    /**
     * Decode one syndrome (list of flipped detector ids).
     * @return the predicted logical-observable flip mask.
     */
    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    const char *name() const override { return "union-find"; }

  private:
    const DecodingGraph &graph_;
    std::vector<std::uint32_t> edgeWeightQ_;  //!< quantized weights

    // Per-decode scratch (sized once, reset cheaply per call).
    std::vector<std::int32_t> parent_;
    std::vector<std::int32_t> rankArr_;
    std::vector<std::uint8_t> parity_;     //!< defect parity per root
    std::vector<std::uint8_t> touchesBoundary_;
    std::vector<std::uint32_t> growth_;    //!< per-edge grown amount
    std::vector<std::uint8_t> defect_;

    std::int32_t find(std::int32_t a);
    void unite(std::int32_t a, std::int32_t b);

    std::uint32_t peel(const std::vector<std::uint32_t> &solidEdges);
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_UNION_FIND_HH
