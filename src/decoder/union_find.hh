/**
 * @file
 * Weighted union-find decoder (Delfosse–Nickerson style).
 *
 * Odd-parity clusters grow their boundary edges in unit weight
 * increments until they merge with another defect cluster or touch the
 * virtual boundary; the correction is then extracted by peeling a
 * spanning forest of the grown region.  This is the "fast but less
 * accurate than matching/MLE" end of the decoder spectrum the paper
 * sweeps via the decoding factor alpha (Sec. III.4, Fig. 13(a)).
 *
 * Like the exact matcher, it is a client of the shared DecodeGraph:
 * decodeEx() accepts a DecodeContext with reweighted edges (the
 * correlated decoder's second pass falls back here above the MWPM
 * cap) and/or a round horizon (windowed streaming decode), and can
 * report the correction's edges.
 */

#ifndef TRAQ_DECODER_UNION_FIND_HH
#define TRAQ_DECODER_UNION_FIND_HH

#include <cstdint>
#include <vector>

#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"

namespace traq::decoder {

/** Union-find decoder over the shared decode graph. */
class UnionFindDecoder final : public Decoder
{
  public:
    explicit UnionFindDecoder(const DecodeGraph &graph);

    /**
     * Decode one syndrome (list of flipped detector ids).
     * @return the predicted logical-observable flip mask.
     */
    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    /**
     * Decode under a context.  Non-default weights are requantized
     * per call (an O(edges) pass — acceptable because composite
     * decoders only route the rare oversized syndromes here).  If
     * usedEdges is non-null the correction's flipped edges are
     * appended to it.
     */
    std::uint32_t
    decodeEx(const std::vector<std::uint32_t> &syndrome,
             const DecodeContext &ctx,
             std::vector<std::uint32_t> *usedEdges);

    const char *name() const override { return "union-find"; }

  private:
    const DecodeGraph &graph_;
    std::vector<std::uint32_t> edgeWeightQ_;  //!< quantized weights
    std::vector<std::uint32_t> ctxWeightQ_;   //!< per-call override

    // Per-decode scratch (sized once, reset cheaply per call).
    std::vector<std::int32_t> parent_;
    std::vector<std::int32_t> rankArr_;
    std::vector<std::uint8_t> parity_;     //!< defect parity per root
    std::vector<std::uint8_t> touchesBoundary_;
    std::vector<std::uint32_t> growth_;    //!< per-edge grown amount
    std::vector<std::uint8_t> defect_;

    std::int32_t find(std::int32_t a);
    void unite(std::int32_t a, std::int32_t b);

    static std::uint32_t quantize(double w);

    std::uint32_t peel(const std::vector<std::uint32_t> &solidEdges,
                       std::vector<std::uint32_t> *usedEdges);
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_UNION_FIND_HH
