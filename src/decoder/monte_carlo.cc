#include "src/decoder/monte_carlo.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <mutex>
#include <thread>

#include "src/common/assert.hh"
#include "src/common/rng.hh"
#include "src/common/threads.hh"
#include "src/decoder/global_memo.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"
#include "src/sim/frame_kernels.hh"

namespace traq::decoder {

namespace {

/** Memo key for the erasure path: defects and fired heralds hashed
 *  together (collisions are resolved by a full compare). */
inline std::uint64_t
hashShot(std::span<const std::uint32_t> syn,
         std::span<const std::uint32_t> heralds)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ syn.size();
    for (std::uint32_t x : syn)
        h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= 0xc2b2ae3d27d4eb4fULL + heralds.size();
    for (std::uint32_t c : heralds)
        h ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

} // namespace

/** Per-thread state: decoder, sampler, and reusable scratch. */
struct MonteCarloEngine::Worker
{
    Worker(unsigned lanes, CpuDispatch dispatch)
        : fsim(0, lanes, dispatch),
          kern(&sim::kernels::frameKernels(dispatch)), live(lanes, 0),
          predicted(64ULL * lanes, 0)
    {}

    std::unique_ptr<Decoder> dec;
    sim::FrameSimulator fsim;
    /** Dispatch-resolved kernel table (extraction entry point). */
    const sim::kernels::FrameKernels *kern;
    sim::FrameBatch batch;
    /** Per-lane live-shot masks for the current batch. */
    std::vector<std::uint64_t> live;
    /** CSR syndromes + actual flip masks for one batch (SoA). */
    sim::SyndromeBlock block;
    /** Per-shot predicted flip masks for one batch. */
    std::vector<std::uint32_t> predicted;
    /** Sort + memo scratch for the batch decode path. */
    BatchDecodeScratch scratch;
    /** Per-edge weights for erasure reweighting (graph weights
     *  between shots; fired channels' edges zeroed per shot). */
    std::vector<double> ctxWeights;
    std::vector<std::uint32_t> ctxTouched;
    /** Erasure-path memo: shot hash -> first shot index, plus the
     *  per-shot counter deltas replayed shots must reproduce. */
    std::unordered_map<std::uint64_t, std::uint32_t> heraldMemo;
    std::vector<std::uint64_t> shotFallbacks;
    std::vector<std::uint64_t> shotPeels;
};

MonteCarloEngine::MonteCarloEngine(const codes::Experiment &exp,
                                   const McOptions &opts)
    : exp_(exp), opts_(opts)
{
    recompile();
}

void
MonteCarloEngine::recompile()
{
    noiseKey_ = opts_.noiseSpec.canonical();
    // Tier 2: the compiled circuit, DEM and decode graph may come
    // from (and be shared through) the process-wide compile cache —
    // byte-identical artifacts either way, so everything downstream
    // is oblivious to where the setup came from.
    setup_ = compileDecodeSetup(
        exp_, opts_.noiseSpec,
        resolveCompileCache(opts_.compileCache));
    circuit_ =
        setup_->compiled ? &*setup_->compiled : &exp_.circuit;
    TRAQ_REQUIRE(setup_->graph.numUndetectableLogical() == 0,
                 "circuit has undetectable logical errors");
}

Tally
MonteCarloEngine::runShard(std::uint64_t shard,
                           std::uint64_t shardShots, Worker &w)
{
    const auto &circuit = *circuit_;
    const DecodeGraph &graph = setup_->graph;
    const std::uint32_t numObs = circuit.numObservables();
    const bool haveHeralds = circuit.numHeraldChannels() > 0;
    const bool erasureAware = haveHeralds && opts_.erasureAware;
    const unsigned lanes = w.fsim.lanes();
    const std::uint64_t batchShots = w.fsim.shotsPerBatch();
    std::uint64_t globalHits = 0;

    Tally tally;
    tally.ensureBins(numObs);

    // The shard's identity, not the executing worker's, fixes the
    // RNG stream: determinism for any thread count.
    w.fsim.rng() = Rng(opts_.seed, shard);

    const std::uint64_t fallbacksBefore = w.dec->fallbacks();
    const std::uint64_t predecodesBefore = w.dec->predecodedPairs();
    // Counter increments owed by memo-replayed shots: added on top
    // of the decoder's own deltas so fallback/predecode statistics
    // are bit-identical memo on/off.
    std::uint64_t replayedFallbacks = 0;
    std::uint64_t replayedPeels = 0;
    std::uint64_t done = 0;

    while (done < shardShots) {
        w.fsim.sampleInto(circuit, w.batch);
        const std::uint64_t n =
            std::min<std::uint64_t>(batchShots, shardShots - done);
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t lo = 64ULL * l;
            const std::uint64_t liveHere =
                n <= lo ? 0 : std::min<std::uint64_t>(64, n - lo);
            w.live[l] = liveHere == 64 ? ~0ULL
                                       : ((1ULL << liveHere) - 1);
        }

        // Straight from lane-major planes to a CSR block via the
        // dispatch-resolved transpose kernel.  Masked-out tail shots
        // come out empty, so decoding the first n rows of the block
        // is exact.
        w.kern->extractBlock(w.batch, w.live, w.block);
        tally.weight += w.block.offsets[n];

        SyndromeBatch view;
        view.offsets = {w.block.offsets.data(),
                        static_cast<std::size_t>(n) + 1};
        view.defects = {w.block.defects.data(),
                        w.block.offsets[n]};

        if (erasureAware) {
            // Per-shot decode: shots with fired heralds get a
            // context that zeroes the weight of every edge those
            // channels can explain; clean shots take the plain path.
            // With memoization on, shots whose (defects, heralds)
            // match an earlier shot of the batch replay its result
            // (and its counter deltas) instead of decoding.
            if (memoOn_) {
                w.heraldMemo.clear();
                w.shotFallbacks.assign(n, 0);
                w.shotPeels.assign(n, 0);
            }
            for (std::uint64_t s = 0; s < n; ++s) {
                const auto syn = view.syndrome(s);
                const auto heralds = w.block.heralds(s);
                if (!heralds.empty())
                    ++tally.aux3;
                if (memoOn_) {
                    auto [it, inserted] = w.heraldMemo.try_emplace(
                        hashShot(syn, heralds),
                        static_cast<std::uint32_t>(s));
                    if (!inserted) {
                        const std::uint32_t p = it->second;
                        const auto psyn = view.syndrome(p);
                        const auto pher = w.block.heralds(p);
                        if (psyn.size() == syn.size() &&
                            pher.size() == heralds.size() &&
                            std::equal(syn.begin(), syn.end(),
                                       psyn.begin()) &&
                            std::equal(heralds.begin(),
                                       heralds.end(),
                                       pher.begin())) {
                            w.predicted[s] = w.predicted[p];
                            w.shotFallbacks[s] = w.shotFallbacks[p];
                            w.shotPeels[s] = w.shotPeels[p];
                            replayedFallbacks += w.shotFallbacks[p];
                            replayedPeels += w.shotPeels[p];
                            ++tally.aux4;
                            continue;
                        }
                        // Hash collision: decode normally.  The map
                        // keeps the first claimant, so only the
                        // colliding syndrome loses its memo slot.
                    }
                    // Tier 1: (defects, heralds) decoded by any
                    // earlier batch/shard/run replays cached result
                    // and deltas — same values a decode would
                    // produce, so tallies cannot tell.
                    if (globalMemo_ != nullptr) {
                        GlobalDecodeMemo::Value v;
                        if (globalMemo_->lookup(setupKey_, syn,
                                                heralds, v)) {
                            w.predicted[s] = v.predicted;
                            w.shotFallbacks[s] = v.fallbacks;
                            w.shotPeels[s] = v.peels;
                            replayedFallbacks += v.fallbacks;
                            replayedPeels += v.peels;
                            ++globalHits;
                            continue;
                        }
                    }
                }
                const std::uint64_t fb0 = w.dec->fallbacks();
                const std::uint64_t pp0 = w.dec->predecodedPairs();
                if (heralds.empty()) {
                    w.predicted[s] = w.dec->decodeSpan(syn);
                } else {
                    for (std::uint32_t c : heralds)
                        for (std::uint32_t ei :
                             graph.channelEdges(c))
                            if (w.ctxWeights[ei] != 0.0) {
                                w.ctxTouched.push_back(ei);
                                w.ctxWeights[ei] = 0.0;
                            }
                    DecodeContext ctx;
                    ctx.weights = w.ctxWeights;
                    w.predicted[s] =
                        w.dec->decodeWithContext(syn, ctx);
                    for (std::uint32_t ei : w.ctxTouched)
                        w.ctxWeights[ei] = graph.edges()[ei].weight;
                    w.ctxTouched.clear();
                }
                if (memoOn_) {
                    w.shotFallbacks[s] = w.dec->fallbacks() - fb0;
                    w.shotPeels[s] =
                        w.dec->predecodedPairs() - pp0;
                    if (globalMemo_ != nullptr)
                        globalMemo_->insert(
                            setupKey_, syn, heralds,
                            {w.predicted[s],
                             static_cast<std::uint32_t>(
                                 w.shotFallbacks[s]),
                             static_cast<std::uint32_t>(
                                 w.shotPeels[s])});
                }
            }
        } else {
            // Sorted (and, by default, memoized) batch decode: cheap
            // shots drain first with a warm arena, repeated
            // syndromes replay from the per-batch memo, and the
            // predictions are scattered back to shot order — output
            // bit-identical to in-order decoding either way (see
            // decodeBatchSorted).
            const BatchDecodeStats st = decodeBatchSorted(
                *w.dec, view,
                {w.predicted.data(), static_cast<std::size_t>(n)},
                w.scratch, memoOn_, globalMemo_, setupKey_);
            tally.aux4 += st.memoHits;
            globalHits += st.globalHits;
            replayedFallbacks += st.replayedFallbacks;
            replayedPeels += st.replayedPeels;
            if (haveHeralds)
                for (std::uint64_t s = 0; s < n; ++s)
                    if (w.block.heraldOffsets[s + 1] >
                        w.block.heraldOffsets[s])
                        ++tally.aux3;
        }

        for (std::uint64_t s = 0; s < n; ++s) {
            std::uint32_t diff =
                w.predicted[s] ^ w.block.observables[s];
            if (diff)
                ++tally.anyHits;
            while (diff) {
                const int k = std::countr_zero(diff);
                diff &= diff - 1;
                ++tally.binHits[k];
            }
        }
        done += n;
        tally.shots += n;
    }
    tally.aux =
        w.dec->fallbacks() - fallbacksBefore + replayedFallbacks;
    tally.aux2 = w.dec->predecodedPairs() - predecodesBefore +
                 replayedPeels;
    // Tier-1 hits are timing-dependent (they depend on what other
    // shards/runs cached first), so they bypass the deterministic
    // tally and accumulate on an engine-level counter instead.
    crossBatchHits_.fetch_add(globalHits,
                              std::memory_order_relaxed);
    return tally;
}

McResult
MonteCarloEngine::run()
{
    return run(opts_);
}

McResult
MonteCarloEngine::run(const McOptions &opts)
{
    opts_ = opts;
    // A changed noise spec invalidates the compiled circuit, the
    // DEM and the decode graph; an unchanged one reuses them all
    // (the sweep-amortization contract of this class).
    if (opts_.noiseSpec.canonical() != noiseKey_)
        recompile();
    // Resolve the word backend once per run so every worker uses the
    // same lane count even if the environment changes mid-run.
    lanes_ = wordBackendLanes(opts_.wordBackend);
    const std::uint64_t batchShots = 64ULL * lanes_;
    // Shards are whole sampler batches so shard boundaries never
    // split a batch (which would entangle RNG streams).
    shardUnit_ = std::max<std::uint64_t>(batchShots,
                                         opts_.shardShots);
    shardUnit_ =
        (shardUnit_ + batchShots - 1) / batchShots * batchShots;

    const std::uint32_t numObs = circuit_->numObservables();
    const std::uint64_t numShards =
        (opts_.shots + shardUnit_ - 1) / shardUnit_;

    unsigned threads = resolveThreadCount(opts_.threads);
    threads = static_cast<unsigned>(
        std::min<std::uint64_t>(threads, std::max<std::uint64_t>(
                                             1, numShards)));

    std::vector<Tally> shardTallies(numShards);
    std::atomic<std::uint64_t> nextShard{0};
    std::mutex errorMutex;
    std::exception_ptr firstError;

    // Resolve the decoder once per run so every worker (and the
    // result metadata) agrees even if the environment changes.
    const DecoderKind kind = resolveDecoderKind(opts_.decoder);
    DecoderConfig decCfg;
    decCfg.mwpmMaxDefects = opts_.mwpmMaxDefects;
    decCfg.correlationBoost = opts_.correlationBoost;
    decCfg.windowRounds = opts_.windowRounds;
    decCfg.commitRounds = opts_.commitRounds;
    // Resolve the predecode tri-state once per run (same reason as
    // the backend/decoder above: one env read, every worker agrees).
    decCfg.predecode = resolvePredecode(opts_.predecode) ? 1 : 0;
    decCfg.predecodeRadius = opts_.predecodeRadius;
    decCfg.reachCache = resolveReachCache(opts_.reachCache) ? 1 : 0;
    // Same once-per-run resolution for the memo switch and the CPU
    // dispatch level (one env/cpuid read, every worker agrees).
    memoOn_ = resolveDecodeMemo(opts_.decodeMemo);
    dispatch_ = resolveCpuDispatch(opts_.cpuDispatch);
    // Tier 1 rides on the per-batch memo's replay bookkeeping, so
    // decodeMemo=off silently disables it too (the memo is the
    // feature; the global tier only widens its key space).
    globalMemo_ = memoOn_ && resolveGlobalMemo(opts_.globalMemo)
                      ? &GlobalDecodeMemo::instance()
                      : nullptr;
    setupKey_ = decodeSetupKey(setup_->graph, kind, decCfg);
    crossBatchHits_.store(0, std::memory_order_relaxed);

    auto workerMain = [&]() {
        try {
            Worker w(lanes_, dispatch_);
            w.dec = makeDecoder(kind, setup_->graph, decCfg);
            if (opts_.erasureAware &&
                circuit_->numHeraldChannels() > 0) {
                const auto &edges = setup_->graph.edges();
                w.ctxWeights.reserve(edges.size());
                for (const auto &e : edges)
                    w.ctxWeights.push_back(e.weight);
            }
            std::uint64_t shard;
            while ((shard = nextShard.fetch_add(1)) < numShards) {
                const std::uint64_t lo = shard * shardUnit_;
                const std::uint64_t size = std::min<std::uint64_t>(
                    shardUnit_, opts_.shots - lo);
                shardTallies[shard] = runShard(shard, size, w);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError)
                firstError = std::current_exception();
            // Drain remaining shards so peers exit promptly.
            nextShard.store(numShards);
        }
    };

    if (threads <= 1) {
        workerMain();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(workerMain);
        for (auto &th : pool)
            th.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    // Merge in shard order.  The counts are commutative sums so any
    // order would do, but fixed order keeps the loop auditable.
    Tally total;
    total.ensureBins(numObs);
    for (const auto &t : shardTallies)
        total.merge(t);

    McResult res;
    res.shots = total.shots;
    // Every shard samples in whole batches; the tail batch is
    // sampled in full but only partially decoded.
    res.sampledShots = 0;
    for (std::uint64_t shard = 0; shard < numShards; ++shard) {
        const std::uint64_t lo = shard * shardUnit_;
        const std::uint64_t size =
            std::min<std::uint64_t>(shardUnit_, opts_.shots - lo);
        res.sampledShots +=
            (size + batchShots - 1) / batchShots * batchShots;
    }
    for (std::uint32_t k = 0; k < numObs; ++k)
        res.perObservable.push_back(total.binProportion(k));
    res.anyObservable = total.anyProportion();
    res.avgDefects =
        total.shots
            ? static_cast<double>(total.weight) / total.shots
            : 0.0;
    res.mwpmFallbacks = total.aux;
    res.predecodedPairs = total.aux2;
    res.heraldedShots = total.aux3;
    res.memoHits = total.aux4;
    res.crossBatchHits =
        crossBatchHits_.load(std::memory_order_relaxed);
    res.decoder = decoderKindName(kind);
    res.cpuDispatch = cpuDispatchName(dispatch_);
    res.shards = numShards;
    res.threadsUsed = threads;
    res.wordLanes = lanes_;
    return res;
}

McResult
runMonteCarlo(const codes::Experiment &exp, const McOptions &opts)
{
    MonteCarloEngine engine(exp, opts);
    return engine.run();
}

} // namespace traq::decoder
