#include "src/decoder/monte_carlo.hh"

#include "src/common/assert.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/union_find.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"

namespace traq::decoder {

McResult
runMonteCarlo(const codes::Experiment &exp, const McOptions &opts)
{
    const auto &circuit = exp.circuit;
    sim::DetectorErrorModel dem = sim::buildDem(circuit);
    DecodingGraph graph = DecodingGraph::fromDem(dem, exp.meta);
    TRAQ_REQUIRE(graph.numUndetectableLogical() == 0,
                 "circuit has undetectable logical errors");

    UnionFindDecoder uf(graph);
    MwpmDecoder mwpm(graph, opts.mwpmMaxDefects);

    const std::uint32_t numObs = circuit.numObservables();
    std::vector<std::uint64_t> failures(numObs, 0);
    std::uint64_t anyFailures = 0;
    std::uint64_t shots = 0;
    std::uint64_t totalDefects = 0;
    std::uint64_t fallbacks = 0;

    sim::FrameSimulator fsim(opts.seed);
    std::vector<std::uint32_t> syndrome;

    while (shots < opts.shots) {
        sim::FrameBatch batch = fsim.sample(circuit);
        const std::uint64_t batchShots =
            std::min<std::uint64_t>(64, opts.shots - shots);
        for (std::uint64_t s = 0; s < batchShots; ++s) {
            syndrome.clear();
            for (std::size_t d = 0; d < batch.detectors.size(); ++d)
                if ((batch.detectors[d] >> s) & 1)
                    syndrome.push_back(
                        static_cast<std::uint32_t>(d));
            totalDefects += syndrome.size();

            std::uint32_t predicted;
            if (opts.decoder == DecoderKind::Mwpm &&
                mwpm.canDecode(syndrome)) {
                predicted = mwpm.decode(syndrome);
            } else {
                if (opts.decoder == DecoderKind::Mwpm)
                    ++fallbacks;
                predicted = uf.decode(syndrome);
            }

            std::uint32_t actual = 0;
            for (std::uint32_t k = 0; k < numObs; ++k)
                if ((batch.observables[k] >> s) & 1)
                    actual |= (1u << k);

            std::uint32_t diff = predicted ^ actual;
            if (diff)
                ++anyFailures;
            for (std::uint32_t k = 0; k < numObs; ++k)
                if ((diff >> k) & 1)
                    ++failures[k];
        }
        shots += batchShots;
    }

    McResult res;
    res.shots = shots;
    for (std::uint32_t k = 0; k < numObs; ++k)
        res.perObservable.push_back(wilson(failures[k], shots));
    res.anyObservable = wilson(anyFailures, shots);
    res.avgDefects =
        shots ? static_cast<double>(totalDefects) / shots : 0.0;
    res.mwpmFallbacks = fallbacks;
    return res;
}

} // namespace traq::decoder
