#include "src/decoder/compile_cache.hh"

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/sim/dem.hh"

namespace traq::decoder {
namespace {

/** Bounded entry count; one entry holds a circuit + graph, so keep
 *  this to "every distinct circuit of a big sweep", not unbounded. */
constexpr std::size_t kCompileCacheCapacity = 64;

struct CompileCache
{
    std::mutex m;
    std::unordered_map<std::string,
                       std::shared_ptr<const CompiledDecodeSetup>>
        map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

CompileCache &
cache()
{
    static CompileCache c;
    return c;
}

/**
 * Exact cache key: circuit text, detector metadata, canonical noise
 * spec.  Circuit::parse(str()) is an exact fixed point (locked by
 * tests), so the text uniquely identifies the sampled circuit; the
 * metadata and spec cover everything else fromDem consumes.  Unit
 * separators (0x1f) keep fields from running into each other.
 */
std::string
cacheKey(const codes::Experiment &exp, const noise::NoiseSpec &spec)
{
    std::string key = exp.circuit.str();
    key += '\x1f';
    key += spec.canonical();
    key += '\x1f';
    const codes::CircuitMeta &meta = exp.meta;
    auto appendInts = [&key](const auto &v) {
        for (auto x : v) {
            key += std::to_string(static_cast<long long>(x));
            key += ',';
        }
        key += ';';
    };
    appendInts(meta.detectorIsX);
    appendInts(meta.observableIsX);
    appendInts(meta.detectorPatch);
    appendInts(meta.detectorRound);
    appendInts(meta.observablePatch);
    key += std::to_string(meta.numRounds);
    return key;
}

std::shared_ptr<const CompiledDecodeSetup>
buildSetup(const codes::Experiment &exp, const noise::NoiseSpec &spec)
{
    auto setup = std::make_shared<CompiledDecodeSetup>();
    const sim::Circuit *circuit = &exp.circuit;
    if (!spec.empty()) {
        setup->compiled =
            noise::NoiseModel::fromSpec(spec).compile(exp.circuit);
        circuit = &*setup->compiled;
    }
    setup->graph =
        DecodeGraph::fromDem(sim::buildDem(*circuit), exp.meta);
    return setup;
}

} // namespace

std::shared_ptr<const CompiledDecodeSetup>
compileDecodeSetup(const codes::Experiment &exp,
                   const noise::NoiseSpec &spec, bool useCache)
{
    if (!useCache)
        return buildSetup(exp, spec);

    const std::string key = cacheKey(exp, spec);
    CompileCache &c = cache();
    {
        std::lock_guard<std::mutex> lock(c.m);
        auto it = c.map.find(key);
        if (it != c.map.end()) {
            ++c.hits;
            return it->second;
        }
        ++c.misses;
    }

    // Compile outside the lock: misses on *different* keys must not
    // serialize.  Two racing misses on the same key both compile and
    // the first insert wins — identical artifacts either way.
    auto setup = buildSetup(exp, spec);

    std::lock_guard<std::mutex> lock(c.m);
    auto [it, inserted] = c.map.try_emplace(key, setup);
    if (!inserted)
        return it->second;
    if (c.map.size() > kCompileCacheCapacity) {
        auto victim = c.map.begin();
        if (victim == it)
            ++victim;
        c.map.erase(victim);
        ++c.evictions;
    }
    return setup;
}

CompileCacheStats
compileCacheStats()
{
    CompileCache &c = cache();
    std::lock_guard<std::mutex> lock(c.m);
    return {c.hits, c.misses, c.evictions, c.map.size()};
}

void
clearCompileCache()
{
    CompileCache &c = cache();
    std::lock_guard<std::mutex> lock(c.m);
    c.map.clear();
}

} // namespace traq::decoder
