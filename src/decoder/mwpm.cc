#include "src/decoder/mwpm.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/common/assert.hh"

namespace traq::decoder {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

MwpmDecoder::MwpmDecoder(const DecodingGraph &graph,
                         std::size_t maxDefects)
    : graph_(graph), maxDefects_(maxDefects)
{
    TRAQ_REQUIRE(maxDefects_ <= 22,
                 "bitmask matching is limited to 22 defects");
}

void
MwpmDecoder::dijkstra(std::uint32_t source,
                      const std::vector<std::uint32_t> &targets,
                      std::vector<Reach> *out, Reach *boundary)
{
    const std::size_t n = graph_.numNodes();
    dist_.assign(n, kInf);
    fromEdge_.assign(n, -1);
    double bestBoundary = kInf;
    std::int32_t boundaryEdgeNode = -1;  // node from which we exit
    std::int32_t boundaryEdge = -1;

    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist_[source] = 0.0;
    pq.emplace(0.0, source);

    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > dist_[u])
            continue;
        if (d >= bestBoundary) {
            // Everything reachable closer than the boundary has been
            // settled; remaining paths can't improve any pairing that
            // would rather use two boundary exits.  (We still settle
            // all nodes for exactness of defect-defect distances.)
        }
        for (std::uint32_t ei : graph_.incident(u)) {
            const GraphEdge &e = graph_.edges()[ei];
            if (e.u == kBoundary) {
                if (d + e.weight < bestBoundary) {
                    bestBoundary = d + e.weight;
                    boundaryEdgeNode = static_cast<std::int32_t>(u);
                    boundaryEdge = static_cast<std::int32_t>(ei);
                }
                continue;
            }
            std::uint32_t w = (static_cast<std::uint32_t>(e.u) == u)
                                  ? static_cast<std::uint32_t>(e.v)
                                  : static_cast<std::uint32_t>(e.u);
            if (d + e.weight < dist_[w]) {
                dist_[w] = d + e.weight;
                fromEdge_[w] = static_cast<std::int32_t>(ei);
                pq.emplace(dist_[w], w);
            }
        }
    }

    auto pathObs = [&](std::uint32_t node) {
        std::uint32_t obs = 0;
        std::uint32_t cur = node;
        while (cur != source) {
            std::int32_t ei = fromEdge_[cur];
            TRAQ_ASSERT(ei >= 0, "broken Dijkstra predecessor chain");
            const GraphEdge &e = graph_.edges()[ei];
            obs ^= e.observables;
            cur = (static_cast<std::uint32_t>(e.u) == cur)
                      ? static_cast<std::uint32_t>(e.v)
                      : static_cast<std::uint32_t>(e.u);
        }
        return obs;
    };

    out->assign(targets.size(), Reach{kInf, 0});
    for (std::size_t i = 0; i < targets.size(); ++i) {
        if (dist_[targets[i]] < kInf) {
            (*out)[i].dist = dist_[targets[i]];
            (*out)[i].obs = pathObs(targets[i]);
        }
    }
    boundary->dist = bestBoundary;
    boundary->obs = 0;
    if (boundaryEdgeNode >= 0) {
        boundary->obs =
            pathObs(static_cast<std::uint32_t>(boundaryEdgeNode)) ^
            graph_.edges()[boundaryEdge].observables;
    }
}

std::uint32_t
MwpmDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    const std::size_t m = syndrome.size();
    if (m == 0)
        return 0;
    TRAQ_REQUIRE(m <= maxDefects_,
                 "syndrome exceeds exact matching cap");

    // Pairwise distances and boundary exits.
    std::vector<std::vector<Reach>> pair(m);
    std::vector<Reach> toBoundary(m);
    for (std::size_t i = 0; i < m; ++i) {
        std::vector<Reach> row;
        dijkstra(syndrome[i], syndrome, &row, &toBoundary[i]);
        pair[i] = std::move(row);
    }

    // DP over subsets: best[mask] = min cost to pair up defects in
    // mask (each either with another defect or with the boundary).
    const std::size_t full = (std::size_t{1} << m) - 1;
    std::vector<double> best(full + 1, kInf);
    std::vector<std::int32_t> choice(full + 1, -1);
    best[0] = 0.0;
    for (std::size_t mask = 1; mask <= full; ++mask) {
        int i = __builtin_ctzll(mask);
        std::size_t rest = mask ^ (std::size_t{1} << i);
        // Option 1: defect i exits via the boundary.
        if (best[rest] + toBoundary[i].dist < best[mask]) {
            best[mask] = best[rest] + toBoundary[i].dist;
            choice[mask] = -2;  // boundary marker
        }
        // Option 2: pair with defect j.
        std::size_t sub = rest;
        while (sub) {
            int j = __builtin_ctzll(sub);
            sub &= sub - 1;
            double c = best[rest ^ (std::size_t{1} << j)] +
                       pair[i][j].dist;
            if (c < best[mask]) {
                best[mask] = c;
                choice[mask] = j;
            }
        }
    }

    // Reconstruct and accumulate observable masks.
    std::uint32_t correction = 0;
    std::size_t mask = full;
    while (mask) {
        int i = __builtin_ctzll(mask);
        if (choice[mask] == -2) {
            correction ^= toBoundary[i].obs;
            mask ^= (std::size_t{1} << i);
        } else {
            int j = choice[mask];
            TRAQ_ASSERT(j >= 0, "matching reconstruction failed");
            correction ^= pair[i][j].obs;
            mask ^= (std::size_t{1} << i);
            mask ^= (std::size_t{1} << j);
        }
    }
    return correction;
}

} // namespace traq::decoder
