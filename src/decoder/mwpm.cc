#include "src/decoder/mwpm.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/common/assert.hh"

namespace traq::decoder {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Reach-cache size guards: one slot snapshots O(numNodes) doubles, so
// very large graphs (or adversarially many distinct sources) fall
// back to the uncached search instead of ballooning memory.  Both
// paths are bit-identical, so the guard is purely a resource cap.
constexpr std::size_t kReachCacheMaxNodes = 16384;
constexpr std::size_t kReachCacheMaxSlots = 4096;

/** Context-aware edge weight: override wins, clamped to >= 0 so a
 *  posterior-boosted (near-certain) edge cannot go negative.  The
 *  tie-break epsilon makes the optimal matching generically unique
 *  (see tieBreakEpsilon), which the predecode identity relies on. */
inline double
ctxWeight(const GraphEdge &e, std::uint32_t ei,
          const DecodeContext &ctx)
{
    const double w =
        ctx.weights.empty() ? e.weight : ctx.weights[ei];
    return (w < 0.0 ? 0.0 : w) + tieBreakEpsilon(ei);
}

/** True if the context hides this edge (beyond the round horizon). */
inline bool
ctxHides(const GraphEdge &e, const DecodeContext &ctx)
{
    return ctx.maxRound >= 0 && e.round > ctx.maxRound;
}

} // namespace

MwpmDecoder::MwpmDecoder(const DecodeGraph &graph,
                         std::size_t maxDefects, bool predecode,
                         int predecodeRadius, bool reachCache)
    : graph_(graph), maxDefects_(maxDefects), reachCache_(reachCache)
{
    TRAQ_REQUIRE(maxDefects_ <= 22,
                 "bitmask matching is limited to 22 defects");
    if (predecode)
        pre_ = std::make_unique<Predecoder>(graph_, predecodeRadius);
    distStamp_.assign(graph_.numNodes(), 0);
    dist_.assign(graph_.numNodes(), kInf);
    fromEdge_.assign(graph_.numNodes(), -1);
    if (reachCache_) {
        cacheStampOf_.assign(graph_.numNodes(), 0);
        cacheSlotOf_.assign(graph_.numNodes(), 0);
    }
}

void
MwpmDecoder::invalidateReachCache()
{
    if (!reachCache_)
        return;
    slots_.clear();
    if (++cacheEpoch_ == 0) {
        std::fill(cacheStampOf_.begin(), cacheStampOf_.end(), 0);
        cacheEpoch_ = 1;
    }
}

void
MwpmDecoder::searchFrom(std::uint32_t source, const DecodeContext &ctx)
{
    // One stamp epoch per search: dist_/fromEdge_ are valid only for
    // nodes the search actually reached, so the reset is O(1), not
    // O(nodes).
    if (++epoch_ == 0) {
        std::fill(distStamp_.begin(), distStamp_.end(), 0);
        epoch_ = 1;
    }
    auto distOf = [&](std::uint32_t node) {
        return distStamp_[node] == epoch_ ? dist_[node] : kInf;
    };
    double bestBoundary = kInf;
    std::int32_t boundaryEdgeNode = -1;  // node from which we exit
    std::int32_t boundaryEdge = -1;

    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    distStamp_[source] = epoch_;
    dist_[source] = 0.0;
    fromEdge_[source] = -1;
    pq.emplace(0.0, source);

    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > dist_[u])
            continue;
        for (std::uint32_t ei : graph_.incident(u)) {
            const GraphEdge &e = graph_.edges()[ei];
            if (ctxHides(e, ctx))
                continue;
            const double w = ctxWeight(e, ei, ctx);
            if (e.u == kBoundary) {
                if (d + w < bestBoundary) {
                    bestBoundary = d + w;
                    boundaryEdgeNode = static_cast<std::int32_t>(u);
                    boundaryEdge = static_cast<std::int32_t>(ei);
                }
                continue;
            }
            std::uint32_t v = (static_cast<std::uint32_t>(e.u) == u)
                                  ? static_cast<std::uint32_t>(e.v)
                                  : static_cast<std::uint32_t>(e.u);
            if (d + w < distOf(v)) {
                distStamp_[v] = epoch_;
                dist_[v] = d + w;
                fromEdge_[v] = static_cast<std::int32_t>(ei);
                pq.emplace(dist_[v], v);
            }
        }
    }
    searchBoundaryDist_ = bestBoundary;
    searchBoundaryNode_ = boundaryEdgeNode;
    searchBoundaryEdge_ = boundaryEdge;
}

template <class DistFn, class EdgeFn>
void
MwpmDecoder::fillReaches(std::uint32_t source,
                         std::span<const std::uint32_t> targets,
                         bool wantEdges, DistFn distOf,
                         EdgeFn fromEdgeOf, double boundaryDist,
                         std::int32_t boundaryNode,
                         std::int32_t boundaryEdge,
                         std::vector<Reach> *out, Reach *boundary)
{
    auto fillPath = [&](std::uint32_t node, Reach *r) {
        r->obs = 0;
        r->edges.clear();
        std::uint32_t cur = node;
        while (cur != source) {
            std::int32_t ei = fromEdgeOf(cur);
            TRAQ_ASSERT(ei >= 0, "broken Dijkstra predecessor chain");
            const GraphEdge &e = graph_.edges()[ei];
            r->obs ^= e.observables;
            if (wantEdges)
                r->edges.push_back(static_cast<std::uint32_t>(ei));
            cur = (static_cast<std::uint32_t>(e.u) == cur)
                      ? static_cast<std::uint32_t>(e.v)
                      : static_cast<std::uint32_t>(e.u);
        }
    };

    out->resize(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        Reach &r = (*out)[i];
        r.dist = distOf(targets[i]);
        r.obs = 0;
        r.edges.clear();
        if (r.dist < kInf)
            fillPath(targets[i], &r);
    }
    boundary->dist = boundaryDist;
    boundary->obs = 0;
    boundary->edges.clear();
    if (boundaryNode >= 0) {
        fillPath(static_cast<std::uint32_t>(boundaryNode), boundary);
        boundary->obs ^= graph_.edges()[boundaryEdge].observables;
        boundary->edges.push_back(
            static_cast<std::uint32_t>(boundaryEdge));
    }
}

void
MwpmDecoder::dijkstra(std::uint32_t source,
                      std::span<const std::uint32_t> targets,
                      const DecodeContext &ctx, bool wantEdges,
                      std::vector<Reach> *out, Reach *boundary)
{
    searchFrom(source, ctx);
    fillReaches(
        source, targets, wantEdges,
        [&](std::uint32_t node) {
            return distStamp_[node] == epoch_ ? dist_[node] : kInf;
        },
        [&](std::uint32_t node) { return fromEdge_[node]; },
        searchBoundaryDist_, searchBoundaryNode_, searchBoundaryEdge_,
        out, boundary);
}

const MwpmDecoder::SsspSlot &
MwpmDecoder::ensureSlot(std::uint32_t source, const DecodeContext &ctx)
{
    if (cacheStampOf_[source] == cacheEpoch_) {
        ++cacheHits_;
        return slots_[cacheSlotOf_[source]];
    }
    // First occurrence of this source in the current epoch: run the
    // real search into the epoch-stamped scratch, then snapshot it.
    // The snapshot IS the scratch state, so the cached and uncached
    // paths read identical distances and predecessor edges.
    searchFrom(source, ctx);
    cacheStampOf_[source] = cacheEpoch_;
    cacheSlotOf_[source] = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    SsspSlot &slot = slots_.back();
    const std::size_t n = graph_.numNodes();
    slot.dist.assign(n, kInf);
    slot.fromEdge.assign(n, -1);
    for (std::size_t node = 0; node < n; ++node) {
        if (distStamp_[node] == epoch_) {
            slot.dist[node] = dist_[node];
            slot.fromEdge[node] = fromEdge_[node];
        }
    }
    slot.boundaryDist = searchBoundaryDist_;
    slot.boundaryNode = searchBoundaryNode_;
    slot.boundaryEdge = searchBoundaryEdge_;
    return slot;
}

std::uint32_t
MwpmDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
MwpmDecoder::decodeSpan(std::span<const std::uint32_t> syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
MwpmDecoder::decodeEx(std::span<const std::uint32_t> syndrome,
                      const DecodeContext &ctx,
                      std::vector<std::uint32_t> *usedEdges)
{
    TRAQ_REQUIRE(ctx.weights.empty() ||
                     ctx.weights.size() == graph_.edges().size(),
                 "context weight override size mismatch");
    if (syndrome.empty())
        return 0;
    // The cap is checked against the original syndrome, not the
    // post-peel residue, so predecode cannot change what this
    // decoder accepts (or how FallbackDecoder routes).
    TRAQ_REQUIRE(syndrome.size() <= maxDefects_,
                 "syndrome exceeds exact matching cap");

    std::uint32_t preCorrection = 0;
    std::span<const std::uint32_t> syn = syndrome;
    if (pre_ && ctx.weights.empty()) {
        preCorrection = pre_->peel(syndrome, ctx, residue_,
                                   usedEdges);
        syn = residue_;
    }
    const std::size_t m = syn.size();
    if (m == 0)
        return preCorrection;

    // Pairwise distances and boundary exits.  The reach cache only
    // answers default-context searches: weight overrides (correlated
    // second pass) and round horizons (windowed) change the metric,
    // so those decodes always run the uncached search.
    const bool cacheable = reachCache_ && ctx.weights.empty() &&
                           ctx.maxRound < 0 &&
                           graph_.numNodes() <= kReachCacheMaxNodes;
    const bool wantEdges = usedEdges != nullptr;
    pair_.resize(std::max(pair_.size(), m));
    toBoundary_.resize(std::max(toBoundary_.size(), m));
    for (std::size_t i = 0; i < m; ++i) {
        if (cacheable && (cacheStampOf_[syn[i]] == cacheEpoch_ ||
                          slots_.size() < kReachCacheMaxSlots)) {
            const SsspSlot &slot = ensureSlot(syn[i], ctx);
            fillReaches(
                syn[i], syn, wantEdges,
                [&](std::uint32_t node) { return slot.dist[node]; },
                [&](std::uint32_t node) {
                    return slot.fromEdge[node];
                },
                slot.boundaryDist, slot.boundaryNode,
                slot.boundaryEdge, &pair_[i], &toBoundary_[i]);
        } else {
            dijkstra(syn[i], syn, ctx, wantEdges, &pair_[i],
                     &toBoundary_[i]);
        }
    }

    // DP over subsets: best[mask] = min cost to pair up defects in
    // mask (each either with another defect or with the boundary).
    const std::size_t full = (std::size_t{1} << m) - 1;
    best_.assign(full + 1, kInf);
    choice_.assign(full + 1, -1);
    best_[0] = 0.0;
    for (std::size_t mask = 1; mask <= full; ++mask) {
        int i = __builtin_ctzll(mask);
        std::size_t rest = mask ^ (std::size_t{1} << i);
        // Option 1: defect i exits via the boundary.
        if (best_[rest] + toBoundary_[i].dist < best_[mask]) {
            best_[mask] = best_[rest] + toBoundary_[i].dist;
            choice_[mask] = -2;  // boundary marker
        }
        // Option 2: pair with defect j.
        std::size_t sub = rest;
        while (sub) {
            int j = __builtin_ctzll(sub);
            sub &= sub - 1;
            double c = best_[rest ^ (std::size_t{1} << j)] +
                       pair_[i][j].dist;
            if (c < best_[mask]) {
                best_[mask] = c;
                choice_[mask] = j;
            }
        }
    }

    // Reconstruct and accumulate observable masks / used edges.
    std::uint32_t correction = preCorrection;
    std::size_t mask = full;
    while (mask) {
        int i = __builtin_ctzll(mask);
        const Reach *r;
        if (choice_[mask] == -2) {
            r = &toBoundary_[i];
            mask ^= (std::size_t{1} << i);
        } else {
            int j = choice_[mask];
            TRAQ_ASSERT(j >= 0, "matching reconstruction failed");
            r = &pair_[i][j];
            mask ^= (std::size_t{1} << i);
            mask ^= (std::size_t{1} << j);
        }
        correction ^= r->obs;
        if (usedEdges)
            usedEdges->insert(usedEdges->end(), r->edges.begin(),
                              r->edges.end());
    }
    return correction;
}

} // namespace traq::decoder
