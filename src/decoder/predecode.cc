#include "src/decoder/predecode.hh"

#include <algorithm>
#include <limits>

#include "src/common/assert.hh"

namespace traq::decoder {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline bool
ctxHides(const GraphEdge &e, const DecodeContext &ctx)
{
    return ctx.maxRound >= 0 && e.round > ctx.maxRound;
}

} // namespace

Predecoder::Predecoder(const DecodeGraph &graph, int radius)
    : graph_(graph), radius_(radius)
{
    TRAQ_REQUIRE(radius_ >= 1, "predecode radius must be >= 1");
    defectStamp_.assign(graph_.numNodes(), 0);
    consumedStamp_.assign(graph_.numNodes(), 0);
    visitStamp_.assign(graph_.numNodes(), 0);
}

void
Predecoder::bumpEpoch()
{
    if (++epoch_ == 0) {
        // Stamp wrap: invalidate everything once per 2^32 calls.
        std::fill(defectStamp_.begin(), defectStamp_.end(), 0);
        std::fill(consumedStamp_.begin(), consumedStamp_.end(), 0);
        epoch_ = 1;
    }
}

bool
Predecoder::crowded(std::uint32_t u, std::uint32_t v,
                    const DecodeContext &ctx)
{
    // Hop-limited BFS from {u, v} over visible edges; any *other*
    // original defect inside the ball rejects the pair.  The ball is
    // O(degree^radius) nodes — constant for fixed radius.  Visit
    // marks live on their own epoch so consecutive balls within one
    // peel don't shadow each other.
    if (++visitEpoch_ == 0) {
        std::fill(visitStamp_.begin(), visitStamp_.end(), 0);
        visitEpoch_ = 1;
    }
    bfs_.clear();
    bfs_.push_back(u);
    bfs_.push_back(v);
    visitStamp_[u] = visitEpoch_;
    visitStamp_[v] = visitEpoch_;
    std::size_t head = 0;
    for (int hop = 0; hop < radius_; ++hop) {
        const std::size_t levelEnd = bfs_.size();
        for (; head < levelEnd; ++head) {
            const std::uint32_t x = bfs_[head];
            for (std::uint32_t ei : graph_.incident(x)) {
                const GraphEdge &e = graph_.edges()[ei];
                if (e.u == kBoundary || ctxHides(e, ctx))
                    continue;
                const auto y = static_cast<std::uint32_t>(
                    static_cast<std::uint32_t>(e.u) == x ? e.v
                                                         : e.u);
                if (visitStamp_[y] == visitEpoch_)
                    continue;
                visitStamp_[y] = visitEpoch_;
                if (defectStamp_[y] == epoch_)
                    return true;  // another defect in the ball
                bfs_.push_back(y);
            }
        }
    }
    return false;
}

std::uint32_t
Predecoder::peel(std::span<const std::uint32_t> syndrome,
                 const DecodeContext &ctx,
                 std::vector<std::uint32_t> &residue,
                 std::vector<std::uint32_t> *usedEdges)
{
    TRAQ_REQUIRE(ctx.weights.empty(),
                 "predecode peels against base weights only");
    residue.clear();
    if (syndrome.size() < 2) {
        residue.assign(syndrome.begin(), syndrome.end());
        return 0;
    }

    bumpEpoch();
    for (std::uint32_t d : syndrome)
        defectStamp_[d] = epoch_;

    std::uint32_t correction = 0;
    for (std::uint32_t d : syndrome) {
        if (consumedStamp_[d] == epoch_)
            continue;
        // Scan d's incident edges for adjacent defects and its
        // cheapest direct boundary exit.
        std::int32_t partner = -1;
        std::int32_t pairEdge = -1;
        double pairW = kInf;
        double boundaryD = kInf;
        bool lone = true;
        for (std::uint32_t ei : graph_.incident(d)) {
            const GraphEdge &e = graph_.edges()[ei];
            if (ctxHides(e, ctx))
                continue;
            if (e.u == kBoundary) {
                boundaryD = std::min(boundaryD,
                                     e.weight + tieBreakEpsilon(ei));
                continue;
            }
            const auto other = static_cast<std::uint32_t>(
                static_cast<std::uint32_t>(e.u) == d ? e.v : e.u);
            if (defectStamp_[other] != epoch_)
                continue;
            if (partner >= 0 &&
                static_cast<std::uint32_t>(partner) != other) {
                lone = false;  // two distinct adjacent defects
                break;
            }
            partner = static_cast<std::int32_t>(other);
            // Same perturbed weights as the matcher (tieBreakEpsilon)
            // so parallel-edge and guard ties resolve identically.
            const double w = e.weight + tieBreakEpsilon(ei);
            if (w < pairW) {
                pairW = w;
                pairEdge = static_cast<std::int32_t>(ei);
            }
        }
        if (!lone || partner < 0 ||
            consumedStamp_[static_cast<std::uint32_t>(partner)] ==
                epoch_)
            continue;
        const auto v = static_cast<std::uint32_t>(partner);

        // The partner's direct boundary exit, for the optimality
        // guard below.
        double boundaryV = kInf;
        for (std::uint32_t ei : graph_.incident(v)) {
            const GraphEdge &e = graph_.edges()[ei];
            if (e.u == kBoundary && !ctxHides(e, ctx))
                boundaryV = std::min(
                    boundaryV, e.weight + tieBreakEpsilon(ei));
        }
        // Matching the pair to itself must beat sending both defects
        // out through the boundary.
        if (pairW > boundaryD + boundaryV)
            continue;
        if (crowded(d, v, ctx))
            continue;

        consumedStamp_[d] = epoch_;
        consumedStamp_[v] = epoch_;
        correction ^=
            graph_.edges()[static_cast<std::uint32_t>(pairEdge)]
                .observables;
        if (usedEdges)
            usedEdges->push_back(
                static_cast<std::uint32_t>(pairEdge));
        ++pairsPeeled_;
    }

    for (std::uint32_t d : syndrome)
        if (consumedStamp_[d] != epoch_)
            residue.push_back(d);
    return correction;
}

} // namespace traq::decoder
