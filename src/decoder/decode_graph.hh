/**
 * @file
 * Shared detector-graph layer for all decoders.
 *
 * Surface-code DEMs under depolarizing noise contain hyperedges (a Y
 * data error flips two X-type and two Z-type detectors; an error
 * propagated through a transversal CNOT flips detectors in *both*
 * patches).  As is standard for matching-type decoders, each
 * mechanism is decomposed by basis into parts with <= 2 detectors
 * each — but unlike an ad-hoc per-decoder build, the resulting edges
 * remember each other: every edge carries the list of *partner*
 * edges that came from the same physical mechanism, with the
 * posterior probability that the partner's half fired given this
 * edge is used (shared mechanism mass over edge mass).  Those
 * correlation hints are what the two-pass correlated decoder
 * consumes to restore the cross-patch correlations a plain matcher
 * throws away (Refs [17,18]; the paper's alpha ~ 1/6 per-CNOT
 * scaling assumes a correlation-aware decoder).
 *
 * Detector metadata (basis, patch, SE round) rides along from
 * codes::CircuitMeta, so clients can slice the graph by time — the
 * windowed streaming decoder decodes against a growing round
 * horizon without rebuilding anything.
 *
 * All decoders (mwpm, union_find, fallback, correlated, windowed)
 * are clients of this one graph; per-decode variation (reweighted
 * edges, round limits) is expressed through DecodeContext rather
 * than by building new graphs.
 */

#ifndef TRAQ_DECODER_DECODE_GRAPH_HH
#define TRAQ_DECODER_DECODE_GRAPH_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/sim/dem.hh"

namespace traq::decoder {

/** Sentinel node id for the virtual boundary. */
constexpr std::int32_t kBoundary = -1;

/** One decoding-graph edge (u == kBoundary for boundary edges). */
struct GraphEdge
{
    std::int32_t u = kBoundary;
    std::int32_t v = kBoundary;
    double probability = 0.0;
    double weight = 0.0;            //!< ln((1-p)/p), clipped
    std::uint32_t observables = 0;  //!< logical masks flipped
    /**
     * Largest SE round among the edge's real endpoints (0 when the
     * source metadata carries no rounds).  The windowed decoder
     * excludes edges beyond its horizon by this field.
     */
    std::int32_t round = 0;
};

/**
 * Deterministic per-edge tie-break epsilon.
 *
 * Structured decode graphs (uniform noise, symmetric layouts)
 * produce exactly tied minimum-weight matchings whose observable
 * parities can differ, and which tied solution a DP lands on depends
 * on recursion order — so removing defects (the predecode fast path)
 * could legally change the answer.  Adding a distinct tiny epsilon
 * per edge makes every edge-set total generically unique: the
 * optimal matching becomes a function of the syndrome alone, and
 * peeling a pair of it leaves the residue's optimum unchanged.  The
 * scale (~1e-9) is far below any real weight difference but far
 * above double rounding at path magnitudes, so only exact ties are
 * affected.  splitmix64 on the edge index keeps it deterministic
 * and uncorrelated with edge order.
 */
inline double
tieBreakEpsilon(std::uint32_t edgeIndex)
{
    std::uint64_t z = edgeIndex + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    // [1, 2) * 1e-9: strictly positive and distinct per edge.
    return (1.0 + static_cast<double>(z >> 11) * 0x1.0p-53) * 1e-9;
}

/**
 * Per-decode parameters threaded through the decoder clients.
 * Decoders fall back to the graph's own weights / full horizon when
 * the fields are left at their defaults.
 */
struct DecodeContext
{
    /**
     * Per-edge weight overrides (same indexing as edges()); empty
     * means "use GraphEdge::weight".  Entries are clamped to >= 0 at
     * the point of use so posterior-boosted (near-certain) edges
     * cannot produce negative path costs.
     */
    std::span<const double> weights{};
    /** If >= 0, edges with round > maxRound are invisible. */
    std::int32_t maxRound = -1;
};

/** Matching/union-find decode graph shared by every decoder. */
class DecodeGraph
{
  public:
    /**
     * Build from a DEM plus detector-basis/patch/round metadata.
     * Metadata vectors beyond detectorIsX may be empty (hand-built
     * DEMs): patches and rounds then default to 0.
     * @param dem the detector error model.
     * @param meta detector/observable metadata from the circuit
     *        builder.
     */
    static DecodeGraph fromDem(const sim::DetectorErrorModel &dem,
                               const codes::CircuitMeta &meta);

    /** Convenience: buildDem + fromDem for one experiment. */
    static DecodeGraph build(const codes::Experiment &exp);

    std::size_t numNodes() const { return numNodes_; }
    const std::vector<GraphEdge> &edges() const { return edges_; }

    /** Edge indices incident to node n (boundary edges included). */
    const std::vector<std::uint32_t> &
    incident(std::size_t n) const
    {
        return adj_[n];
    }

    /**
     * Correlated sibling edges of edge ei: edges produced by
     * decomposing the same error mechanism(s).  When one of them is
     * part of a correction, the physical mechanism likely fired, so
     * its partners become near-certain — the reweighting signal of
     * the correlated decoder.
     */
    std::span<const std::uint32_t> partners(std::uint32_t ei) const
    {
        return {partnerList_.data() + partnerStart_[ei],
                partnerStart_[ei + 1] - partnerStart_[ei]};
    }

    /**
     * Posterior probability that partner k of edge ei also fired,
     * given a correction used ei: the probability mass of the shared
     * mechanisms divided by ei's total probability.  Indexed in step
     * with partners(ei).
     */
    std::span<const double> partnerCond(std::uint32_t ei) const
    {
        return {partnerCondP_.data() + partnerStart_[ei],
                partnerStart_[ei + 1] - partnerStart_[ei]};
    }

    /** Total partner links (2x the number of correlated pairs). */
    std::size_t numPartnerLinks() const { return partnerList_.size(); }

    /** Herald channels of the source DEM (0 = no erasure noise). */
    std::uint32_t numHeraldChannels() const
    {
        return numHeraldChannels_;
    }

    /**
     * Herald channels whose erasure components contributed to edge
     * ei (mechanism provenance, sorted; usually empty).
     */
    std::span<const std::uint32_t> edgeChannels(std::uint32_t ei) const
    {
        return {channelList_.data() + channelStart_[ei],
                channelStart_[ei + 1] - channelStart_[ei]};
    }

    /**
     * Edges a fired herald channel c can explain (sorted edge
     * indices).  The erasure-aware decode path zeroes these edges'
     * weights in a per-shot DecodeContext override: an erased qubit's
     * Paulis are uniformly random, so traversing its edges carries no
     * evidence cost.
     */
    std::span<const std::uint32_t> channelEdges(std::uint32_t c) const
    {
        return {channelEdgeList_.data() + channelEdgeStart_[c],
                channelEdgeStart_[c + 1] - channelEdgeStart_[c]};
    }

    /** SE round of a detector (0 when metadata had no rounds). */
    std::int32_t detectorRound(std::uint32_t d) const
    {
        return detectorRound_.empty()
                   ? 0
                   : detectorRound_[d];
    }

    /** Patch of a detector (0 when metadata had no patches). */
    std::int32_t detectorPatch(std::uint32_t d) const
    {
        return detectorPatch_.empty()
                   ? 0
                   : detectorPatch_[d];
    }

    /** Patch of a logical observable (0 when metadata had none). */
    std::int32_t observablePatch(std::uint32_t k) const
    {
        return observablePatch_.empty()
                   ? 0
                   : observablePatch_[k];
    }

    /** One past the largest detector round in the graph. */
    int numRounds() const { return numRounds_; }

    /** Same-basis mechanism parts needing > 2 detectors (the
     *  cross-patch hyperedges transversal CNOTs create). */
    std::size_t numUnsplittable() const { return numUnsplittable_; }

    /**
     * Mechanisms flipping an observable with no same-basis detector
     * (invisible logical errors; should be 0 for d >= 3 circuits).
     */
    std::size_t numUndetectableLogical() const
    {
        return numUndetectableLogical_;
    }

    /**
     * 64-bit digest of everything a decoder's output can depend on:
     * edges (endpoints, probabilities, weights, observables, rounds),
     * partner posteriors, herald-channel provenance, and detector
     * metadata.  Two graphs with equal hashes decode every syndrome
     * identically for every decoder kind (modulo the negligible
     * collision probability, which the process-global memo resolves
     * by also comparing syndrome content).  Computed once in
     * fromDem(); 0 for a default-constructed graph.
     */
    std::uint64_t contentHash() const { return contentHash_; }

  private:
    std::uint64_t computeContentHash() const;

    std::size_t numNodes_ = 0;
    std::vector<GraphEdge> edges_;
    std::vector<std::vector<std::uint32_t>> adj_;
    /** CSR partner lists: edge ei's partners live in
     *  partnerList_[partnerStart_[ei] .. partnerStart_[ei+1]). */
    std::vector<std::size_t> partnerStart_;
    std::vector<std::uint32_t> partnerList_;
    std::vector<double> partnerCondP_;
    /** CSR herald-channel provenance per edge, and its transpose
     *  (edges per channel) for the per-shot erasure reweighting. */
    std::uint32_t numHeraldChannels_ = 0;
    std::vector<std::size_t> channelStart_;
    std::vector<std::uint32_t> channelList_;
    std::vector<std::size_t> channelEdgeStart_;
    std::vector<std::uint32_t> channelEdgeList_;
    std::vector<std::int32_t> detectorPatch_;
    std::vector<std::int32_t> detectorRound_;
    std::vector<std::int32_t> observablePatch_;
    int numRounds_ = 1;
    std::size_t numUnsplittable_ = 0;
    std::size_t numUndetectableLogical_ = 0;
    std::uint64_t contentHash_ = 0;
};

/** Back-compat alias for the pre-refactor name. */
using DecodingGraph = DecodeGraph;

} // namespace traq::decoder

#endif // TRAQ_DECODER_DECODE_GRAPH_HH
