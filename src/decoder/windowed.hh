/**
 * @file
 * Sliding-window streaming decoder.
 *
 * Real-time decoding (the ~500 us per-QEC-round budget of Table I)
 * cannot wait for a shot's full detection record; it must decode a
 * bounded window of recent rounds and commit corrections behind a
 * lag.  This decoder models that pipeline on the shared DecodeGraph:
 *
 *  - rounds up to `base + windowRounds` are visible; the inner
 *    matcher decodes the pending defects against that horizon
 *    (DecodeContext::maxRound — no graph rebuilds);
 *  - correction edges lying entirely at rounds < base + commitRounds
 *    are committed: their observable masks accumulate and their
 *    endpoints' defect parity is toggled, which re-injects an
 *    artificial defect when a matched path crosses the commit
 *    boundary;
 *  - uncommitted match edges are discarded and their defects stay
 *    pending for the next window, whose horizon advances by
 *    commitRounds.  The final window (horizon past the last round)
 *    commits everything.
 *
 * Because committed regions stay part of the visible graph, any
 * leftover parity can still reach old edges, and with a reasonable
 * lookahead (windowRounds - commitRounds >= the error correlation
 * length) the stream reproduces the whole-history decode bit for
 * bit on memory circuits — the acceptance criterion the tests lock
 * in.
 *
 * With predecode on, isolated adjacent pairs are peeled up front
 * (they are single-mechanism events no window boundary can split
 * differently) and only the residue streams through the windows.
 */

#ifndef TRAQ_DECODER_WINDOWED_HH
#define TRAQ_DECODER_WINDOWED_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/predecode.hh"

namespace traq::decoder {

/** Streaming sliding-window decoder over the shared decode graph. */
class WindowedDecoder final : public Decoder
{
  public:
    WindowedDecoder(const DecodeGraph &graph,
                    const DecoderConfig &config);

    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    std::uint32_t
    decodeSpan(std::span<const std::uint32_t> syndrome) override;

    /**
     * Context-aware decode: per-edge weight overrides (the
     * erasure-aware path) apply to every window's inner decode; the
     * streaming round horizon stays this decoder's own (a caller
     * maxRound is rejected — the window schedule owns it).
     */
    std::uint32_t
    decodeWithContext(std::span<const std::uint32_t> syndrome,
                      const DecodeContext &ctx) override;

    void reset() override
    {
        inner_.reset();
        windowsDecoded_ = 0;
        if (pre_)
            pre_->reset();
    }
    const char *name() const override { return "windowed"; }
    std::uint64_t fallbacks() const override
    {
        return inner_.fallbacks();
    }
    std::uint64_t predecodedPairs() const override
    {
        return pre_ ? pre_->pairsPeeled() : 0;
    }

    /** Window decode steps run since reset() (all shots). */
    std::uint64_t windowsDecoded() const { return windowsDecoded_; }

  private:
    const DecodeGraph &graph_;
    FallbackDecoder inner_;
    std::unique_ptr<Predecoder> pre_;
    std::vector<std::uint32_t> residue_;  //!< post-peel syndrome
    int window_;
    int commit_;

    std::vector<std::uint8_t> parity_;    //!< pending defect parity
    std::vector<std::uint32_t> pending_;  //!< candidate defect nodes
    std::vector<std::uint32_t> sub_;      //!< per-window sub-syndrome
    std::vector<std::uint32_t> used_;     //!< per-window match edges
    std::uint64_t windowsDecoded_ = 0;
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_WINDOWED_HH
