/**
 * @file
 * Process-global compiled-artifact cache (caching tier 2).
 *
 * Compiling one Monte-Carlo decoding setup — noise-spec compile of
 * the circuit, DEM construction, DecodeGraph build — costs far more
 * than many whole estimator jobs, yet every MonteCarloEngine pays it
 * at construction.  SweepRunner grids and repeated service requests
 * routinely share one circuit across jobs that differ only in seed /
 * shots / p-axis parameters baked into the circuit string, so this
 * cache memoizes the full Circuit→DEM→DecodeGraph pipeline
 * process-wide, keyed by the exact circuit text, the detector
 * metadata, and the canonical noise spec.
 *
 * Entries are immutable shared_ptrs: engines keep their setup alive
 * independently of eviction, so a bounded cache can never invalidate
 * a running engine.  Keys are exact strings (no hashing shortcuts),
 * so a hit always returns artifacts byte-identical to a fresh
 * compile — the cache is a pure throughput knob (TRAQ_COMPILE_CACHE,
 * default ON; see resolveCompileCache in decoder.hh).
 */

#ifndef TRAQ_DECODER_COMPILE_CACHE_HH
#define TRAQ_DECODER_COMPILE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "src/codes/experiments.hh"
#include "src/decoder/decode_graph.hh"
#include "src/noise/noise.hh"

namespace traq::decoder {

/** Everything recompile() produces for one (circuit, noise) pair. */
struct CompiledDecodeSetup
{
    /**
     * Noise-compiled circuit; disengaged when the spec was empty
     * (the engine then samples the experiment's own circuit, which
     * the cache must not reference — entries outlive callers).
     */
    std::optional<sim::Circuit> compiled;
    DecodeGraph graph;
};

/** Monotonic counters of the process-wide compile cache. */
struct CompileCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
};

/**
 * Compile (or fetch) the decode setup for (exp, spec).  With
 * @p useCache false the pipeline runs unconditionally and the cache
 * is neither read nor written.  Thread-safe; concurrent misses on
 * the same key may both compile, and the first finisher's entry is
 * kept (identical artifacts either way).
 */
std::shared_ptr<const CompiledDecodeSetup>
compileDecodeSetup(const codes::Experiment &exp,
                   const noise::NoiseSpec &spec, bool useCache);

CompileCacheStats compileCacheStats();

/** Drop all entries (benches isolate measurements with this).
 *  In-use setups stay alive through their shared_ptrs. */
void clearCompileCache();

} // namespace traq::decoder

#endif // TRAQ_DECODER_COMPILE_CACHE_HH
