#include "src/decoder/windowed.hh"

#include <algorithm>

#include "src/common/assert.hh"

namespace traq::decoder {

WindowedDecoder::WindowedDecoder(const DecodeGraph &graph,
                                 const DecoderConfig &config)
    // Windowed passes decode under a round horizon, which bypasses
    // the reach cache; only the short-circuit full-history decode
    // (syndromes confined to the first window) benefits from it.
    : graph_(graph),
      inner_(graph, config.mwpmMaxDefects, /*predecode=*/false,
             /*predecodeRadius=*/2,
             resolveReachCache(config.reachCache)),
      window_(config.windowRounds), commit_(config.commitRounds)
{
    TRAQ_REQUIRE(window_ >= 1, "windowRounds must be >= 1");
    TRAQ_REQUIRE(commit_ >= 1 && commit_ <= window_,
                 "need 1 <= commitRounds <= windowRounds");
    if (resolvePredecode(config.predecode))
        pre_ = std::make_unique<Predecoder>(graph_,
                                            config.predecodeRadius);
    parity_.assign(graph_.numNodes(), 0);
}

std::uint32_t
WindowedDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    return decodeSpan(syndrome);
}

std::uint32_t
WindowedDecoder::decodeSpan(std::span<const std::uint32_t> syndrome)
{
    return decodeWithContext(syndrome, {});
}

std::uint32_t
WindowedDecoder::decodeWithContext(
    std::span<const std::uint32_t> syndrome, const DecodeContext &ctx)
{
    TRAQ_REQUIRE(ctx.maxRound < 0,
                 "windowed decoder owns the round horizon");
    if (syndrome.empty())
        return 0;

    // Peel isolated adjacent pairs before streaming: each is a
    // single-mechanism event whose two defects no window boundary
    // could split into different commits anyway.  Skipped under a
    // weight override (matching the other decoders' peelers).
    std::uint32_t preCorrection = 0;
    std::span<const std::uint32_t> syn = syndrome;
    if (pre_ && ctx.weights.empty()) {
        preCorrection = pre_->peel(syndrome, {}, residue_, nullptr);
        syn = residue_;
        if (syn.empty())
            return preCorrection;
    }

    const int rounds = graph_.numRounds();
    if (window_ >= rounds) {
        // The window already covers the whole history.
        ++windowsDecoded_;
        return preCorrection ^ inner_.decodeEx(syn, ctx, nullptr);
    }

    // parity_ is all-zero between calls (every window run ends with
    // all pending defects consumed), so only touched nodes need
    // clearing — no O(numNodes) sweep per shot.
    for (std::uint32_t d : syn)
        parity_[d] ^= 1;
    // Candidate pending nodes; parity_ is the source of truth,
    // entries may be stale or duplicated.
    pending_.assign(syn.begin(), syn.end());

    std::uint32_t correction = preCorrection;
    for (int base = 0;; base += commit_) {
        const int horizon = base + window_ - 1;
        const bool last = horizon >= rounds - 1;
        const int commitEnd = base + commit_;

        // Sub-syndrome: pending defects inside the horizon.
        std::vector<std::uint32_t> &sub = sub_;
        sub.clear();
        for (std::uint32_t d : pending_)
            if (parity_[d] && graph_.detectorRound(d) <= horizon)
                sub.push_back(d);
        std::sort(sub.begin(), sub.end());
        sub.erase(std::unique(sub.begin(), sub.end()), sub.end());

        if (!sub.empty()) {
            ++windowsDecoded_;
            DecodeContext wctx = ctx;
            wctx.maxRound = horizon;
            used_.clear();
            const std::uint32_t corr =
                inner_.decodeEx(sub, wctx, &used_);
            if (last) {
                // Final window: everything commits.
                correction ^= corr;
                for (std::uint32_t d : sub)
                    parity_[d] = 0;
            } else {
                // Commit match edges behind the commit boundary;
                // toggling endpoint parity re-injects an artificial
                // defect when a path crosses the boundary.
                for (std::uint32_t ei : used_) {
                    const GraphEdge &e = graph_.edges()[ei];
                    if (e.round >= commitEnd)
                        continue;
                    correction ^= e.observables;
                    if (e.u != kBoundary) {
                        parity_[e.u] ^= 1;
                        pending_.push_back(
                            static_cast<std::uint32_t>(e.u));
                    }
                    parity_[e.v] ^= 1;
                    pending_.push_back(
                        static_cast<std::uint32_t>(e.v));
                }
            }
        }
        if (last)
            break;
    }
    return correction;
}

} // namespace traq::decoder
