#include "src/decoder/fallback.hh"

namespace traq::decoder {

FallbackDecoder::FallbackDecoder(const DecodeGraph &graph,
                                 std::size_t mwpmMaxDefects,
                                 bool predecode, int predecodeRadius,
                                 bool reachCache)
    : mwpm_(graph, mwpmMaxDefects, /*predecode=*/false,
            /*predecodeRadius=*/2, reachCache),
      uf_(graph)
{
    if (predecode)
        pre_ = std::make_unique<Predecoder>(graph, predecodeRadius);
}

std::uint32_t
FallbackDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
FallbackDecoder::decodeSpan(std::span<const std::uint32_t> syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
FallbackDecoder::decodeEx(std::span<const std::uint32_t> syndrome,
                          const DecodeContext &ctx,
                          std::vector<std::uint32_t> *usedEdges)
{
    // Route on the original syndrome size so predecode on/off pick
    // the same engine (and count fallbacks identically); only then
    // peel and hand the residue down.
    const bool exact = mwpm_.canDecode(syndrome);
    std::uint32_t preCorrection = 0;
    std::span<const std::uint32_t> syn = syndrome;
    if (pre_ && ctx.weights.empty()) {
        preCorrection = pre_->peel(syndrome, ctx, residue_,
                                   usedEdges);
        syn = residue_;
    }
    if (exact)
        return preCorrection ^ mwpm_.decodeEx(syn, ctx, usedEdges);
    ++fallbacks_;
    return preCorrection ^ uf_.decodeEx(syn, ctx, usedEdges);
}

} // namespace traq::decoder
