#include "src/decoder/fallback.hh"

namespace traq::decoder {

FallbackDecoder::FallbackDecoder(const DecodeGraph &graph,
                                 std::size_t mwpmMaxDefects)
    : mwpm_(graph, mwpmMaxDefects), uf_(graph)
{}

std::uint32_t
FallbackDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
FallbackDecoder::decodeEx(const std::vector<std::uint32_t> &syndrome,
                          const DecodeContext &ctx,
                          std::vector<std::uint32_t> *usedEdges)
{
    if (mwpm_.canDecode(syndrome))
        return mwpm_.decodeEx(syndrome, ctx, usedEdges);
    ++fallbacks_;
    return uf_.decodeEx(syndrome, ctx, usedEdges);
}

} // namespace traq::decoder
