#include "src/decoder/fallback.hh"

namespace traq::decoder {

FallbackDecoder::FallbackDecoder(const DecodingGraph &graph,
                                 std::size_t mwpmMaxDefects)
    : mwpm_(graph, mwpmMaxDefects), uf_(graph)
{}

std::uint32_t
FallbackDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    if (mwpm_.canDecode(syndrome))
        return mwpm_.decode(syndrome);
    ++fallbacks_;
    return uf_.decode(syndrome);
}

} // namespace traq::decoder
