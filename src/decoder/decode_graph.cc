#include "src/decoder/decode_graph.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <utility>

#include "src/common/assert.hh"
#include "src/common/math.hh"

namespace traq::decoder {
namespace {

/** Key of one edge during accumulation: packed endpoints + obs. */
using EdgeKey = std::pair<std::uint64_t, std::uint32_t>;

/** splitmix64-style mixing step for the content digest. */
inline std::uint64_t
mixHash(std::uint64_t h, std::uint64_t x)
{
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    return h ^ (h >> 29);
}

} // namespace

std::uint64_t
DecodeGraph::computeContentHash() const
{
    std::uint64_t h = mixHash(0x7261712d67726170ULL, numNodes_);
    for (const GraphEdge &e : edges_) {
        h = mixHash(h, static_cast<std::uint32_t>(e.u));
        h = mixHash(h, static_cast<std::uint32_t>(e.v));
        h = mixHash(h, std::bit_cast<std::uint64_t>(e.probability));
        h = mixHash(h, std::bit_cast<std::uint64_t>(e.weight));
        h = mixHash(h, e.observables);
        h = mixHash(h, static_cast<std::uint32_t>(e.round));
    }
    h = mixHash(h, partnerList_.size());
    for (std::size_t i = 0; i < partnerList_.size(); ++i) {
        h = mixHash(h, partnerList_[i]);
        h = mixHash(h, std::bit_cast<std::uint64_t>(partnerCondP_[i]));
    }
    h = mixHash(h, numHeraldChannels_);
    for (std::size_t ei = 0; ei + 1 < channelStart_.size(); ++ei) {
        h = mixHash(h, channelStart_[ei + 1] - channelStart_[ei]);
        for (std::size_t k = channelStart_[ei];
             k < channelStart_[ei + 1]; ++k)
            h = mixHash(h, channelList_[k]);
    }
    for (std::int32_t p : detectorPatch_)
        h = mixHash(h, static_cast<std::uint32_t>(p));
    for (std::int32_t r : detectorRound_)
        h = mixHash(h, static_cast<std::uint32_t>(r));
    for (std::int32_t p : observablePatch_)
        h = mixHash(h, static_cast<std::uint32_t>(p));
    h = mixHash(h, static_cast<std::uint64_t>(numRounds_));
    // A zero digest marks "default-constructed": remap it.
    return h == 0 ? 0x9e3779b97f4a7c15ULL : h;
}

DecodeGraph
DecodeGraph::build(const codes::Experiment &exp)
{
    return fromDem(sim::buildDem(exp.circuit), exp.meta);
}

DecodeGraph
DecodeGraph::fromDem(const sim::DetectorErrorModel &dem,
                     const codes::CircuitMeta &meta)
{
    TRAQ_REQUIRE(meta.detectorIsX.size() == dem.numDetectors,
                 "detector metadata size mismatch");
    TRAQ_REQUIRE(meta.detectorPatch.empty() ||
                     meta.detectorPatch.size() == dem.numDetectors,
                 "detector patch metadata size mismatch");
    TRAQ_REQUIRE(meta.detectorRound.empty() ||
                     meta.detectorRound.size() == dem.numDetectors,
                 "detector round metadata size mismatch");
    DecodeGraph g;
    g.numNodes_ = dem.numDetectors;
    g.detectorPatch_ = meta.detectorPatch;
    g.detectorRound_ = meta.detectorRound;
    g.observablePatch_ = meta.observablePatch;
    // Rounds: at least what the builder declared, and at least one
    // past every detector round actually present.
    g.numRounds_ = std::max(1, meta.numRounds);
    for (std::int32_t r : g.detectorRound_)
        g.numRounds_ = std::max(g.numRounds_, r + 1);

    // Observable masks routed to X-basis vs Z-basis graph parts.
    std::uint32_t xObsMask = 0, zObsMask = 0;
    for (std::size_t k = 0; k < meta.observableIsX.size(); ++k) {
        if (meta.observableIsX[k])
            xObsMask |= (1u << k);
        else
            zObsMask |= (1u << k);
    }

    // Accumulate edges keyed by (endpoints, obs) for probability
    // merging; boundary encoded as numDetectors.
    std::map<EdgeKey, double> acc;
    auto edgeKey = [&](std::int64_t a, std::int64_t b) {
        std::uint64_t ua = static_cast<std::uint64_t>(
            a < 0 ? dem.numDetectors : a);
        std::uint64_t ub = static_cast<std::uint64_t>(
            b < 0 ? dem.numDetectors : b);
        if (ua > ub)
            std::swap(ua, ub);
        return (ua << 32) | ub;
    };

    // Per-mechanism decomposition scratch, and the sibling groups of
    // mechanisms that split into >= 2 parts (the correlation hints).
    std::vector<EdgeKey> mechParts;
    std::vector<std::pair<std::vector<EdgeKey>, double>>
        siblingGroups;
    // Herald-channel provenance per accumulated edge key: every part
    // of a channel-tagged mechanism inherits the tag.
    std::map<EdgeKey, std::vector<std::uint32_t>> keyChannels;

    auto addPart = [&](std::int64_t a, std::int64_t b,
                       std::uint32_t obs, double p) {
        EdgeKey key{edgeKey(a, b), obs};
        auto [it, fresh] = acc.try_emplace(key, 0.0);
        it->second = pXor(it->second, p);
        (void)fresh;
        mechParts.push_back(key);
    };

    // Decompose the detectors of one basis into <= 2-detector
    // parts.  Cross-patch mechanisms (transversal CNOTs) keep their
    // sorted-consecutive pairing: detector ids are patch-major per
    // round, so a 4-detector cross-patch mechanism splits into the
    // two per-patch pairs, while odd splits retain a cross-patch
    // edge — which measurably helps the matcher (the joint problem
    // of Refs [17,18] genuinely couples the patches).  What the
    // parts lose in independence they keep as partner hints.
    auto addBasis = [&](const std::vector<std::uint32_t> &dets,
                        std::uint32_t obs, double p) {
        if (dets.empty()) {
            if (obs != 0)
                ++g.numUndetectableLogical_;
            return;
        }
        if (dets.size() <= 2) {
            addPart(dets[0],
                    dets.size() == 2
                        ? static_cast<std::int64_t>(dets[1])
                        : -1,
                    obs, p);
            return;
        }
        ++g.numUnsplittable_;
        for (std::size_t i = 0; i < dets.size(); i += 2) {
            if (i + 1 < dets.size())
                addPart(dets[i], dets[i + 1], i == 0 ? obs : 0, p);
            else
                addPart(dets[i], -1, i == 0 ? obs : 0, p);
        }
    };

    for (const auto &mech : dem.errors) {
        std::vector<std::uint32_t> detsX, detsZ;
        for (std::uint32_t d : mech.detectors) {
            if (meta.detectorIsX[d])
                detsX.push_back(d);
            else
                detsZ.push_back(d);
        }
        mechParts.clear();
        // X-basis detectors flag Z-type faults, which flip X-type
        // logicals; mirror for Z-basis detectors.
        addBasis(detsX, mech.observables & xObsMask,
                 mech.probability);
        addBasis(detsZ, mech.observables & zObsMask,
                 mech.probability);
        if (mechParts.size() >= 2)
            siblingGroups.emplace_back(mechParts,
                                       mech.probability);
        if (!mech.channels.empty()) {
            for (const EdgeKey &key : mechParts) {
                auto &chs = keyChannels[key];
                for (std::uint32_t c : mech.channels) {
                    auto pos =
                        std::lower_bound(chs.begin(), chs.end(), c);
                    if (pos == chs.end() || *pos != c)
                        chs.insert(pos, c);
                }
            }
        }
    }

    // Materialize edges; parallel edges with differing obs stay
    // distinct (the decoders handle multi-edges).
    g.adj_.assign(g.numNodes_, {});
    std::map<EdgeKey, std::uint32_t> keyToEdge;
    for (const auto &[key, p] : acc) {
        if (p <= 0.0)
            continue;
        std::uint64_t packed = key.first;
        std::uint32_t obs = key.second;
        auto ua = static_cast<std::uint32_t>(packed >> 32);
        auto ub = static_cast<std::uint32_t>(packed & 0xffffffffu);
        GraphEdge e;
        e.u = (ua == dem.numDetectors) ? kBoundary
                                       : static_cast<std::int32_t>(ua);
        e.v = (ub == dem.numDetectors) ? kBoundary
                                       : static_cast<std::int32_t>(ub);
        // Orient boundary to u for convenience.
        if (e.v == kBoundary && e.u != kBoundary)
            std::swap(e.u, e.v);
        e.probability = p;
        double pc = std::clamp(p, 1e-12, 0.5);
        e.weight = std::log((1.0 - pc) / pc);
        e.observables = obs;
        e.round = 0;
        if (e.u != kBoundary)
            e.round = std::max(
                e.round, g.detectorRound(
                             static_cast<std::uint32_t>(e.u)));
        if (e.v != kBoundary)
            e.round = std::max(
                e.round, g.detectorRound(
                             static_cast<std::uint32_t>(e.v)));
        auto idx = static_cast<std::uint32_t>(g.edges_.size());
        keyToEdge.emplace(key, idx);
        g.edges_.push_back(e);
        if (e.u != kBoundary)
            g.adj_[static_cast<std::size_t>(e.u)].push_back(idx);
        if (e.v != kBoundary)
            g.adj_[static_cast<std::size_t>(e.v)].push_back(idx);
    }

    // Herald-channel provenance CSR (edge -> channels) and its
    // transpose (channel -> edges).  Both sides iterate edges in
    // index order, so every list comes out sorted.
    g.numHeraldChannels_ = dem.numHeraldChannels;
    g.channelStart_.assign(g.edges_.size() + 1, 0);
    for (const auto &[key, chs] : keyChannels) {
        auto it = keyToEdge.find(key);
        if (it != keyToEdge.end())
            g.channelStart_[it->second + 1] = chs.size();
    }
    for (std::size_t i = 0; i < g.edges_.size(); ++i)
        g.channelStart_[i + 1] += g.channelStart_[i];
    g.channelList_.assign(g.channelStart_.back(), 0);
    std::vector<std::size_t> chCount(g.numHeraldChannels_ + 1, 0);
    for (const auto &[key, chs] : keyChannels) {
        auto it = keyToEdge.find(key);
        if (it == keyToEdge.end())
            continue;
        std::size_t at = g.channelStart_[it->second];
        for (std::uint32_t c : chs) {
            g.channelList_[at++] = c;
            ++chCount[c + 1];
        }
    }
    g.channelEdgeStart_.assign(g.numHeraldChannels_ + 1, 0);
    for (std::uint32_t c = 0; c < g.numHeraldChannels_; ++c)
        g.channelEdgeStart_[c + 1] =
            g.channelEdgeStart_[c] + chCount[c + 1];
    g.channelEdgeList_.assign(g.channelEdgeStart_.back(), 0);
    std::vector<std::size_t> chFill(g.channelEdgeStart_.begin(),
                                    g.channelEdgeStart_.end() - 1);
    for (std::uint32_t ei = 0;
         ei < static_cast<std::uint32_t>(g.edges_.size()); ++ei)
        for (std::uint32_t c : g.edgeChannels(ei))
            g.channelEdgeList_[chFill[c]++] = ei;

    // Partner hints: edges decomposed from one mechanism reference
    // each other.  Many mechanisms can merge onto the same edge pair
    // and the same ordered link, so each directed link (a -> b)
    // accumulates the total probability mass of the mechanisms behind
    // it; normalized by the source edge's own probability this is the
    // posterior P(b's mechanism half | a used) the correlated decoder
    // reweights with.
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> links;
    for (const auto &[group, pm] : siblingGroups) {
        std::vector<std::uint32_t> ids;
        for (const EdgeKey &key : group) {
            auto it = keyToEdge.find(key);
            if (it != keyToEdge.end())
                ids.push_back(it->second);
        }
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        for (std::size_t i = 0; i < ids.size(); ++i)
            for (std::size_t j = 0; j < ids.size(); ++j)
                if (i != j)
                    links[{ids[i], ids[j]}] += pm;
    }

    std::vector<std::size_t> count(g.edges_.size() + 1, 0);
    for (const auto &[ab, pm] : links)
        ++count[ab.first];
    g.partnerStart_.assign(g.edges_.size() + 1, 0);
    for (std::size_t i = 0; i < g.edges_.size(); ++i)
        g.partnerStart_[i + 1] = g.partnerStart_[i] + count[i];
    g.partnerList_.assign(g.partnerStart_.back(), 0);
    g.partnerCondP_.assign(g.partnerStart_.back(), 0.0);
    std::vector<std::size_t> fill(g.partnerStart_.begin(),
                                  g.partnerStart_.end() - 1);
    for (const auto &[ab, pm] : links) {
        const auto [a, b] = ab;
        const double pa = g.edges_[a].probability;
        g.partnerList_[fill[a]] = b;
        g.partnerCondP_[fill[a]] =
            pa > 0.0 ? std::min(1.0, pm / pa) : 0.0;
        ++fill[a];
    }
    g.contentHash_ = g.computeContentHash();
    return g;
}

} // namespace traq::decoder
