/**
 * @file
 * MWPM -> union-find fallback composite decoder.
 *
 * Exact matching is the accuracy reference but is exponential in the
 * defect count, so it only handles small syndromes; union-find handles
 * anything.  This composite owns the routing policy that used to be
 * inlined in runMonteCarlo: decode exactly when the syndrome is within
 * the MWPM cap, otherwise fall back to union-find and count it.  The
 * fallback count feeds McResult::mwpmFallbacks, which the paper-level
 * sweeps use to check the exact decoder actually covered the
 * below-threshold regime being measured.
 *
 * decodeEx() forwards the DecodeContext to whichever stage handles
 * the syndrome, so the correlated and windowed decoders can use the
 * composite as their inner engine.  When predecode is enabled the
 * composite owns the peeler (its inner stages never peel), and both
 * the routing decision and the fallback count key off the *original*
 * syndrome size — peeling changes the work, never the route.
 */

#ifndef TRAQ_DECODER_FALLBACK_HH
#define TRAQ_DECODER_FALLBACK_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/predecode.hh"
#include "src/decoder/union_find.hh"

namespace traq::decoder {

/** Exact-MWPM-first decoder with union-find fallback. */
class FallbackDecoder final : public Decoder
{
  public:
    FallbackDecoder(const DecodeGraph &graph,
                    std::size_t mwpmMaxDefects = 16,
                    bool predecode = false, int predecodeRadius = 2,
                    bool reachCache = false);

    std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) override;

    std::uint32_t
    decodeSpan(std::span<const std::uint32_t> syndrome) override;

    /** Context-aware decode (see Decoder clients of DecodeGraph). */
    std::uint32_t
    decodeEx(std::span<const std::uint32_t> syndrome,
             const DecodeContext &ctx,
             std::vector<std::uint32_t> *usedEdges);

    std::uint32_t
    decodeWithContext(std::span<const std::uint32_t> syndrome,
                      const DecodeContext &ctx) override
    {
        return decodeEx(syndrome, ctx, nullptr);
    }

    void reset() override
    {
        fallbacks_ = 0;
        if (pre_)
            pre_->reset();
        mwpm_.invalidateReachCache();
    }
    const char *name() const override { return "mwpm+uf-fallback"; }
    std::uint64_t fallbacks() const override { return fallbacks_; }
    std::uint64_t predecodedPairs() const override
    {
        return pre_ ? pre_->pairsPeeled() : 0;
    }

  private:
    MwpmDecoder mwpm_;
    UnionFindDecoder uf_;
    std::unique_ptr<Predecoder> pre_;
    std::vector<std::uint32_t> residue_;  //!< post-peel syndrome
    std::uint64_t fallbacks_ = 0;
};

} // namespace traq::decoder

#endif // TRAQ_DECODER_FALLBACK_HH
