/**
 * @file
 * Monte-Carlo logical-error-rate estimation harness.
 *
 * Glues together the frame sampler (batches of 64 noisy shots), the
 * decoding graph, and a decoder; counts shots where the decoder's
 * predicted observable flip disagrees with the actual one.  This is
 * the engine behind the simulation cross-checks of the paper's
 * logical error model (Fig. 6(a)) and the alpha extraction.
 */

#ifndef TRAQ_DECODER_MONTE_CARLO_HH
#define TRAQ_DECODER_MONTE_CARLO_HH

#include <cstdint>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/common/stats.hh"
#include "src/decoder/graph.hh"

namespace traq::decoder {

/** Decoder selection for the Monte-Carlo harness. */
enum class DecoderKind
{
    UnionFind,
    /** Exact MWPM, falling back to union-find above the defect cap. */
    Mwpm,
};

/** Options for a Monte-Carlo run. */
struct McOptions
{
    std::uint64_t shots = 10000;
    std::uint64_t seed = 0x5eed;
    DecoderKind decoder = DecoderKind::Mwpm;
    std::size_t mwpmMaxDefects = 16;
};

/** Results of a Monte-Carlo run. */
struct McResult
{
    std::uint64_t shots = 0;
    /** Per-observable logical failure proportion. */
    std::vector<Proportion> perObservable;
    /** Shots where any observable failed. */
    Proportion anyObservable;
    double avgDefects = 0.0;       //!< mean syndrome size
    std::uint64_t mwpmFallbacks = 0; //!< shots decoded by UF fallback
};

/** Run the Monte-Carlo estimation for one experiment. */
McResult runMonteCarlo(const codes::Experiment &exp,
                       const McOptions &opts);

} // namespace traq::decoder

#endif // TRAQ_DECODER_MONTE_CARLO_HH
