/**
 * @file
 * Sharded, multithreaded Monte-Carlo logical-error-rate engine.
 *
 * The run is split into fixed-size shards (whole frame-simulator
 * batches of 64 * lanes shots; see common/word.hh for the word-width
 * backends).  Shard i always samples from the RNG stream Rng(seed, i)
 * regardless of which worker executes it, and per-shard tallies are
 * pure integer counts merged at the end, so the result is
 * bit-identical for any thread count — threads=1 and threads=N agree
 * exactly (per backend; the scalar and wide backends consume
 * randomness in different orders).  Each worker owns its decoder
 * instance (via makeDecoder) and reusable sampling/syndrome
 * scratch, so the hot loop is allocation-free and scales with
 * cores.
 *
 * This is the engine behind the simulation cross-checks of the
 * paper's logical error model (Fig. 6(a)) and the alpha extraction;
 * decoder throughput against the ~500 us decode budget of Table I is
 * why the hot path is SoA end-to-end: each batch is extracted
 * straight from its lane-major bit planes into a CSR SyndromeBlock
 * (via the runtime-dispatched transpose kernels of sim/frame) and
 * decoded through decodeBatchSorted — ascending defect count, with
 * repeated syndromes replayed from the per-batch memo — so the
 * decoder's arena scratch stays warm across the whole block.
 */

#ifndef TRAQ_DECODER_MONTE_CARLO_HH
#define TRAQ_DECODER_MONTE_CARLO_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/common/stats.hh"
#include "src/common/word.hh"
#include "src/decoder/compile_cache.hh"
#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"
#include "src/noise/noise.hh"

namespace traq::decoder {

/** Options for a Monte-Carlo run. */
struct McOptions
{
    std::uint64_t shots = 10000;
    std::uint64_t seed = 0x5eed;
    /**
     * Decoder to instantiate per worker (see makeDecoder).  The
     * TRAQ_DECODER environment variable (a decoderKindName string,
     * e.g. "correlated") overrides this at run() time.
     */
    DecoderKind decoder = DecoderKind::Fallback;
    std::size_t mwpmMaxDefects = 16;
    /** Partner-edge posterior for the correlated decoder. */
    double correlationBoost = 0.5;
    /** Window/commit depths (rounds) for the windowed decoder. */
    int windowRounds = 6;
    int commitRounds = 2;
    /**
     * Predecode fast path (DecoderConfig::predecode): peel isolated
     * adjacent defect pairs before the full decoder.  Tri-state:
     * negative defers to the TRAQ_PREDECODE env var (default off),
     * 0 off, positive on.  Corrections are identical either way —
     * the peeler's conditions are conservative — so this is purely a
     * throughput knob; McResult::predecodedPairs reports the hits.
     */
    int predecode = -1;
    /** Isolation radius (graph hops) for the predecode peeler. */
    int predecodeRadius = 2;
    /**
     * Syndrome-keyed decode memoization: within each batch, shots
     * whose (defects, fired heralds) match an earlier shot replay
     * that shot's correction instead of re-decoding.  Results —
     * corrections, failure counts, fallback/predecode statistics —
     * are bit-identical on/off; McResult::memoHits reports the
     * replays.  Tri-state: negative defers to TRAQ_DECODE_MEMO
     * (default ON; see resolveDecodeMemo), 0 off, positive on.
     */
    int decodeMemo = -1;
    /**
     * MWPM reach cache (DecoderConfig::reachCache): share Dijkstra
     * searches across shots whose source defect recurs.  Tri-state:
     * negative defers to TRAQ_REACH_CACHE (default ON), 0 off,
     * positive on.  Bit-identical either way.
     */
    int reachCache = -1;
    /**
     * Process-global decode memo (caching tier 1): distinct
     * syndromes already decoded by *any* batch, shard, or earlier
     * run of this process replay their correction and counter
     * deltas instead of decoding.  Requires the per-batch memo
     * (decodeMemo) to be on; corrections and tallies are
     * bit-identical on/off and across thread counts, only
     * McResult::crossBatchHits (timing-dependent) varies.
     * Tri-state: negative defers to TRAQ_GLOBAL_MEMO (default ON),
     * 0 off, positive on.
     */
    int globalMemo = -1;
    /**
     * Compiled-artifact cache (caching tier 2, compile_cache.hh):
     * reuse the noise-compiled circuit + DEM + DecodeGraph across
     * engines that share the exact circuit, metadata, and noise
     * spec.  Bit-identical either way.  Tri-state: negative defers
     * to TRAQ_COMPILE_CACHE (default ON), 0 off, positive on.
     */
    int compileCache = -1;
    /**
     * Runtime CPU dispatch level for the sampler/extraction kernels
     * (common/word.hh).  Auto defers to TRAQ_CPU_DISPATCH and then
     * cpuid (best supported level).  All levels are bit-identical;
     * McResult::cpuDispatch reports the level that actually ran.
     */
    CpuDispatch cpuDispatch = CpuDispatch::Auto;
    /** Worker threads; 0 = TRAQ_THREADS env or hardware (see
     *  common/threads.hh). */
    unsigned threads = 0;
    /**
     * Sampling word backend (common/word.hh).  Auto defers to the
     * TRAQ_WORD_BACKEND env var, defaulting to the wide backend.
     * Results are bit-identical across thread counts for a fixed
     * backend; the two backends agree statistically (and exactly on
     * noiseless / certain-error circuits) but consume randomness in
     * different orders.
     */
    WordBackend wordBackend = WordBackend::Auto;
    /**
     * Shots per shard (rounded up to a whole number of sampler
     * batches, i.e. a multiple of 64 * lanes).  The shard is the
     * unit of deterministic RNG assignment and of work stealing;
     * smaller shards balance better, larger shards amortize decoder
     * setup.
     */
    std::uint64_t shardShots = 4096;
    /**
     * Extra noise-source stack (src/noise) compiled over the
     * experiment's circuit before sampling.  Empty (the default)
     * runs the circuit exactly as built — bit-identical to an engine
     * without this field.  The engine rebuilds its DEM and decode
     * graph whenever the spec changes between run() calls.
     */
    noise::NoiseSpec noiseSpec{};
    /**
     * Use per-shot heralded-erasure flags: shots with fired heralds
     * are decoded under a DecodeContext that zeroes the weight of
     * every edge the fired channels can explain (an erased qubit's
     * replacement Pauli is uniformly random, so traversing its edges
     * carries no evidence cost).  Off = erasure-blind decoding of
     * the same circuit; only meaningful when the noise spec emits
     * HERALDED_ERASE instructions.
     */
    bool erasureAware = true;
};

/** Results of a Monte-Carlo run. */
struct McResult
{
    /** Decoded shots (exactly the requested count). */
    std::uint64_t shots = 0;
    /**
     * Shots actually produced by the sampler (shots rounded up to
     * whole (64 * lanes)-shot batches).  The excess tail shots are
     * sampled but never decoded; reported so callers can see the
     * waste instead of it being silent.
     */
    std::uint64_t sampledShots = 0;
    /** Per-observable logical failure proportion. */
    std::vector<Proportion> perObservable;
    /** Shots where any observable failed. */
    Proportion anyObservable;
    double avgDefects = 0.0;         //!< mean syndrome size
    std::uint64_t mwpmFallbacks = 0; //!< shots decoded by UF fallback
    /** Defect pairs peeled by the predecode fast path (0 when off). */
    std::uint64_t predecodedPairs = 0;
    /** Shots with at least one fired herald flag (0 without
     *  herald-emitting noise). */
    std::uint64_t heraldedShots = 0;
    /** Shots answered by replaying a memoized correction (0 when
     *  decode memoization is off). */
    std::uint64_t memoHits = 0;
    /**
     * Distinct syndromes served from the process-global memo
     * (caching tier 1) instead of decoding.  Unlike every other
     * count here this depends on what earlier batches/runs cached
     * and on thread timing, so it is informational only and
     * excluded from the bit-identity contract.
     */
    std::uint64_t crossBatchHits = 0;
    /** Name of the decoder kind actually run (after TRAQ_DECODER). */
    const char *decoder = "";
    /** CPU dispatch level the kernels actually ran at (after
     *  TRAQ_CPU_DISPATCH / cpuid): "baseline", "avx2", "avx512". */
    const char *cpuDispatch = "";
    std::uint64_t shards = 0;        //!< shards the run was split into
    unsigned threadsUsed = 0;        //!< workers actually spawned
    unsigned wordLanes = 0;          //!< 64-bit lanes per batch used
};

/**
 * Reusable Monte-Carlo engine for one experiment.
 *
 * Builds the DEM and decoding graph once; run() may be called
 * repeatedly, optionally with fresh options (different shot counts,
 * seeds, thread counts) to amortize graph construction across a
 * sweep.  Not thread-safe itself — workers are internal.  The
 * referenced experiment must outlive the engine.
 */
class MonteCarloEngine
{
  public:
    MonteCarloEngine(const codes::Experiment &exp,
                     const McOptions &opts);

    /** Execute the run described by the construction options. */
    McResult run();

    /** Execute with different options against the same graph. */
    McResult run(const McOptions &opts);

    const DecodeGraph &graph() const { return setup_->graph; }

  private:
    struct Worker;

    const codes::Experiment &exp_;
    McOptions opts_;
    /** Compiled circuit + DEM + decode graph, possibly shared with
     *  other engines through the tier-2 compile cache.  The
     *  shared_ptr keeps it alive independently of cache eviction. */
    std::shared_ptr<const CompiledDecodeSetup> setup_;
    /** Circuit actually sampled: &exp_.circuit or the setup's
     *  noise-compiled copy. */
    const sim::Circuit *circuit_ = nullptr;
    /** Canonical key of the spec setup_ was built for. */
    std::string noiseKey_;
    unsigned lanes_ = 1;          //!< resolved word lanes per batch
    std::uint64_t shardUnit_ = 0; //!< shots/shard, multiple of batch
    bool memoOn_ = true;          //!< resolved decode-memo switch
    /** Tier-1 global memo, resolved per run; null when off. */
    GlobalDecodeMemo *globalMemo_ = nullptr;
    /** Setup key the workers memoize under (tier 1). */
    DecodeSetupKey setupKey_{};
    /** Tier-1 hits across all workers of the current run. */
    std::atomic<std::uint64_t> crossBatchHits_{0};
    /** Dispatch level resolved once per run (workers all agree). */
    CpuDispatch dispatch_ = CpuDispatch::Auto;

    /** (Re)compile the noise spec and rebuild DEM + decode graph. */
    void recompile();

    /** Decode shard `shard` (shardShots shots) into a fresh tally. */
    Tally runShard(std::uint64_t shard, std::uint64_t shardShots,
                   Worker &w);
};

/** One-shot convenience wrapper around MonteCarloEngine. */
McResult runMonteCarlo(const codes::Experiment &exp,
                       const McOptions &opts);

} // namespace traq::decoder

#endif // TRAQ_DECODER_MONTE_CARLO_HH
