/**
 * @file
 * Polymorphic decoder interface and factory.
 *
 * Every decoder consumes one syndrome (the list of flipped detector
 * ids) and predicts the logical-observable flip mask.  Concrete
 * decoders (union-find, exact MWPM, the MWPM->UF fallback composite)
 * implement this interface over a shared DecodingGraph; the
 * Monte-Carlo engine and benches are written against the interface
 * only, so a new decoder plugs in by registering a factory under a
 * DecoderKind without touching the harness.
 *
 * Decoder instances own their scratch buffers and are NOT thread
 * safe; parallel callers (MonteCarloEngine workers) each create
 * their own instance via makeDecoder().
 */

#ifndef TRAQ_DECODER_DECODER_HH
#define TRAQ_DECODER_DECODER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/decoder/graph.hh"

namespace traq::decoder {

/** Decoder selection for makeDecoder() and the Monte-Carlo harness. */
enum class DecoderKind
{
    /** Weighted union-find: fast, slightly less accurate. */
    UnionFind,
    /** Exact MWPM; throws above the defect cap (no fallback). */
    Mwpm,
    /** Exact MWPM with union-find fallback above the cap (default). */
    Fallback,
};

/** Human-readable name of a decoder kind. */
const char *decoderKindName(DecoderKind kind);

/** Construction-time options shared by all decoder kinds. */
struct DecoderConfig
{
    /** Largest syndrome the exact MWPM stage decodes. */
    std::size_t mwpmMaxDefects = 16;
};

/** Abstract decoder over a fixed decoding graph. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one syndrome (flipped detector ids, ascending).
     * @return predicted logical-observable flip mask.
     */
    virtual std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) = 0;

    /** Clear per-run statistics (fallback counters etc.). */
    virtual void reset() {}

    /** Short stable identifier, e.g. "union-find". */
    virtual const char *name() const = 0;

    /** Syndromes routed to a fallback stage since reset(). */
    virtual std::uint64_t fallbacks() const { return 0; }
};

/** Factory signature used by the decoder registry. */
using DecoderFactory = std::function<std::unique_ptr<Decoder>(
    const DecodingGraph &, const DecoderConfig &)>;

/**
 * Register (or replace) the factory for a decoder kind.  Built-in
 * kinds are pre-registered; external code may override them or
 * claim a new enum value without touching the harness.
 */
void registerDecoder(DecoderKind kind, DecoderFactory factory);

/**
 * Instantiate a decoder.  Each call returns a fresh instance with
 * its own scratch state, suitable for per-thread use.
 */
std::unique_ptr<Decoder> makeDecoder(DecoderKind kind,
                                     const DecodingGraph &graph,
                                     const DecoderConfig &config = {});

} // namespace traq::decoder

#endif // TRAQ_DECODER_DECODER_HH
