/**
 * @file
 * Polymorphic decoder interface and factory.
 *
 * Every decoder consumes one syndrome (the list of flipped detector
 * ids) and predicts the logical-observable flip mask.  Concrete
 * decoders (union-find, exact MWPM, the MWPM->UF fallback composite,
 * the two-pass correlated matcher, the sliding-window streaming
 * decoder) implement this interface as clients of one shared
 * DecodeGraph; the Monte-Carlo engine and benches are written
 * against the interface only, so a new decoder plugs in by
 * registering a factory under a DecoderKind without touching the
 * harness.
 *
 * Decoder instances own their scratch buffers and are NOT thread
 * safe; parallel callers (MonteCarloEngine workers) each create
 * their own instance via makeDecoder().
 */

#ifndef TRAQ_DECODER_DECODER_HH
#define TRAQ_DECODER_DECODER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/assert.hh"
#include "src/decoder/decode_graph.hh"

namespace traq::decoder {

/** Decoder selection for makeDecoder() and the Monte-Carlo harness. */
enum class DecoderKind
{
    /** Weighted union-find: fast, slightly less accurate. */
    UnionFind,
    /** Exact MWPM; throws above the defect cap (no fallback). */
    Mwpm,
    /** Exact MWPM with union-find fallback above the cap (default). */
    Fallback,
    /**
     * Two-pass correlated matching: a first matching pass estimates
     * which error mechanisms fired, partner edges across
     * transversal-CNOT / Y-error hyperedges are reweighted with that
     * posterior, and a second pass produces the correction.  This is
     * the correlation-aware decoding the paper's alpha ~ 1/6
     * per-CNOT error model assumes (Refs [17,18]).
     */
    Correlated,
    /**
     * Sliding-window streaming decode: rounds enter in windows of
     * DecoderConfig::windowRounds, corrections commit
     * DecoderConfig::commitRounds at a time, and defects matched
     * across a commit boundary are re-decoded in the next window.
     * Models the real-time budget of Table I (~500 us per round).
     */
    Windowed,
};

/**
 * Human-readable name of a decoder kind.  Throws FatalError for a
 * value outside the enum (no silent "unknown" string).
 */
const char *decoderKindName(DecoderKind kind);

/**
 * Parse a decoder kind from its decoderKindName() string (e.g. from
 * the TRAQ_DECODER environment variable).  Throws FatalError on an
 * unknown name, listing the registered ones.
 */
DecoderKind decoderKindFromName(std::string_view name);

/** All kinds with a registered factory, in enum order. */
std::vector<DecoderKind> registeredDecoderKinds();

/**
 * Resolve the decoder kind for a run: the TRAQ_DECODER environment
 * variable (a decoderKindName() string) wins when set and non-empty,
 * otherwise the requested kind is returned unchanged.
 */
DecoderKind resolveDecoderKind(DecoderKind requested);

/**
 * Resolve a DecoderConfig::predecode tri-state: 0 -> off, positive
 * -> on, negative (Auto) -> the TRAQ_PREDECODE environment variable
 * ("1"/"on"/"true" vs "0"/"off"/"false", unset or empty -> off).
 * Any other value throws FatalError listing the known spellings —
 * same loudness contract as TRAQ_DECODER / TRAQ_WORD_BACKEND.
 */
bool resolvePredecode(int requested);

/**
 * Resolve the syndrome-keyed decode-memoization tri-state used by
 * decodeBatchSorted() and the Monte-Carlo engine: 0 -> off, positive
 * -> on, negative (Auto) -> the TRAQ_DECODE_MEMO environment
 * variable ("1"/"on"/"true" vs "0"/"off"/"false").  Unlike predecode
 * the feature defaults ON when the variable is unset or empty —
 * memoization is bit-identical by construction, so there is no
 * accuracy trade-off to opt into.  Unknown spellings throw
 * FatalError (same loudness contract as TRAQ_DECODER).
 */
bool resolveDecodeMemo(int requested);

/**
 * Resolve the MWPM reach-cache tri-state (DecoderConfig::reachCache
 * / TRAQ_REACH_CACHE).  Same contract as resolveDecodeMemo: default
 * ON, bit-identical either way, unknown spellings fatal.
 */
bool resolveReachCache(int requested);

/**
 * Resolve the process-global decode-memo tri-state (caching tier 1,
 * TRAQ_GLOBAL_MEMO).  Same contract as resolveDecodeMemo: default
 * ON, bit-identical either way, unknown spellings fatal.  The global
 * tier piggybacks on the per-batch memo's replay bookkeeping, so the
 * engine only consults it when the per-batch memo is on too.
 */
bool resolveGlobalMemo(int requested);

/**
 * Resolve the compiled-artifact cache tri-state (caching tier 2,
 * TRAQ_COMPILE_CACHE; see compile_cache.hh).  Same contract as
 * resolveDecodeMemo: default ON, bit-identical either way, unknown
 * spellings fatal.
 */
bool resolveCompileCache(int requested);

/** Construction-time options shared by all decoder kinds. */
struct DecoderConfig
{
    /** Largest syndrome the exact MWPM stage decodes. */
    std::size_t mwpmMaxDefects = 16;
    /**
     * Ceiling on the posterior probability a partner edge of a
     * first-pass correction can be boosted to (correlated decoder).
     * The boost itself is the graph's per-link conditional
     * P(partner | edge used); 0.5 caps it at "free to use", lower
     * values cap the reweighting earlier.
     */
    double correlationBoost = 0.5;
    /**
     * Rounds visible per window (windowed decoder).  The default
     * 6-round window with a 2-round commit reproduces whole-history
     * decoding bit for bit on the memory circuits the tests lock in
     * (the 4-round lookahead exceeds the error correlation length
     * at circuit noise rates of interest).
     */
    int windowRounds = 6;
    /** Rounds committed per window step; <= windowRounds. */
    int commitRounds = 2;
    /**
     * Predecode fast path: peel isolated adjacent defect pairs (both
     * endpoints of one edge, no other defect within predecodeRadius
     * hops) before the full decoder runs on the residue.  Tri-state:
     * negative defers to the TRAQ_PREDECODE environment variable
     * (see resolvePredecode; default off), 0 forces off, positive
     * forces on.  Only the outermost decoder of a composite peels —
     * inner stages always see the already-peeled residue.
     */
    int predecode = -1;
    /** Isolation radius (graph hops) for the predecode peeler. */
    int predecodeRadius = 2;
    /**
     * MWPM reach cache: share single-source Dijkstra searches across
     * decodes whose source defect recurs (bit-identical on/off).
     * Tri-state like predecode: negative defers to TRAQ_REACH_CACHE
     * (see resolveReachCache; default ON), 0 forces off, positive
     * forces on.  Applies to every kind with an MWPM stage.
     */
    int reachCache = -1;
};

/**
 * SoA view over one batch of syndromes in CSR layout: shot s's
 * flipped detectors are defects[offsets[s] .. offsets[s+1]),
 * ascending.  This is the decoder-side shape of sim::SyndromeBlock
 * (spans, so the decoder layer needs no sim dependency) and the
 * input of Decoder::decodeBatch.
 */
struct SyndromeBatch
{
    /** CSR row starts; size shots() + 1. */
    std::span<const std::uint32_t> offsets;
    /** Flipped detector ids, shot-major, ascending within a shot. */
    std::span<const std::uint32_t> defects;

    std::uint64_t shots() const
    {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }

    std::span<const std::uint32_t> syndrome(std::uint64_t s) const
    {
        return {defects.data() + offsets[s],
                offsets[s + 1] - offsets[s]};
    }
};

/** Abstract decoder over a fixed decode graph. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one syndrome (flipped detector ids, ascending).
     * @return predicted logical-observable flip mask.
     */
    virtual std::uint32_t
    decode(const std::vector<std::uint32_t> &syndrome) = 0;

    /**
     * Span-based decode, bit-identical to decode().  The base
     * implementation copies into a reused scratch vector and calls
     * decode(), so subclasses that only override decode() (external
     * registrations, test doubles) keep working; the built-in
     * decoders override this to skip the copy.
     */
    virtual std::uint32_t
    decodeSpan(std::span<const std::uint32_t> syndrome)
    {
        spanScratch_.assign(syndrome.begin(), syndrome.end());
        return decode(spanScratch_);
    }

    /**
     * Decode a whole batch of syndromes, writing out[s] for shot s
     * (out.size() >= batch.shots()).  Defined as the shot loop over
     * decodeSpan() — bit-identical to per-shot decoding by
     * construction, for any override of the per-shot entry points —
     * and the engine's hot-path entry: one virtual call per batch,
     * arena scratch staying warm across the N shots.
     */
    virtual void decodeBatch(const SyndromeBatch &batch,
                             std::span<std::uint32_t> out)
    {
        const std::uint64_t n = batch.shots();
        for (std::uint64_t s = 0; s < n; ++s)
            out[s] = decodeSpan(batch.syndrome(s));
    }

    /**
     * Decode one syndrome under per-shot context overrides — the
     * erasure-aware entry point.  The engine zeroes the weights of
     * edges explainable by fired herald channels and hands the
     * override span in here; every built-in decoder kind overrides
     * this to thread the context through its matching passes.  The
     * base implementation only accepts an empty context (it routes
     * to decodeSpan), so external registrations that predate the
     * context stay correct rather than silently ignoring overrides.
     */
    virtual std::uint32_t
    decodeWithContext(std::span<const std::uint32_t> syndrome,
                      const DecodeContext &ctx)
    {
        TRAQ_REQUIRE(ctx.weights.empty() && ctx.maxRound < 0,
                     "decodeWithContext: this decoder does not "
                     "support context overrides");
        return decodeSpan(syndrome);
    }

    /** Clear per-run statistics (fallback counters etc.). */
    virtual void reset() {}

    /** Short stable identifier, e.g. "union-find". */
    virtual const char *name() const = 0;

    /** Syndromes routed to a fallback stage since reset(). */
    virtual std::uint64_t fallbacks() const { return 0; }

    /** Defect pairs peeled by the predecode fast path since
     *  reset(); 0 when predecode is off or unsupported. */
    virtual std::uint64_t predecodedPairs() const { return 0; }

  private:
    std::vector<std::uint32_t> spanScratch_;
};

/**
 * Identity of one decoding problem setup: a 128-bit digest of the
 * DecodeGraph content hash plus the decoder kind and every
 * DecoderConfig field a decode result can depend on (tri-states
 * resolved first, so an explicit value and the equivalent env
 * default share entries).  Two independent mixes make an accidental
 * cross-setup collision (~2^-128) irrelevant in practice; the
 * process-global memo additionally compares syndrome content in
 * full, so even a collision cannot replay a wrong correction for a
 * *different* syndrome of the colliding setup.
 */
struct DecodeSetupKey
{
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    bool operator==(const DecodeSetupKey &) const = default;
};

/** Compute the setup key for (graph, kind, config). */
DecodeSetupKey decodeSetupKey(const DecodeGraph &graph,
                              DecoderKind kind,
                              const DecoderConfig &config);

class GlobalDecodeMemo;

/** What decodeBatchSorted() did beyond plain decoding. */
struct BatchDecodeStats
{
    /** Shots answered by replaying a memoized correction. */
    std::uint64_t memoHits = 0;
    /**
     * Distinct syndromes of this batch answered from the
     * process-global memo (tier 1) instead of decoding.  Unlike the
     * deterministic per-batch counters this depends on what other
     * batches/threads cached first, so it is reported separately and
     * never folded into tallies.
     */
    std::uint64_t globalHits = 0;
    /**
     * Fallback-counter increments that would have happened had the
     * replayed shots been decoded for real.  Memoization replays
     * these alongside the correction so fallbacks()-style statistics
     * stay bit-identical memo on/off: callers add replayedFallbacks
     * to the decoder's own counter delta.
     */
    std::uint64_t replayedFallbacks = 0;
    /** Same, for the predecodedPairs() counter. */
    std::uint64_t replayedPeels = 0;
};

/**
 * Reusable scratch for decodeBatchSorted().  All vectors keep their
 * capacity warm across batches; the memo map is cleared per call (the
 * memo key space is one batch — recurring syndromes across batches
 * are re-decoded, which keeps the map small and the arena per-run).
 */
struct BatchDecodeScratch
{
    std::vector<std::uint32_t> perm;
    std::vector<std::uint32_t> sortedOffsets;
    std::vector<std::uint32_t> sortedDefects;
    std::vector<std::uint32_t> predictedSorted;
    // Memo path: CSR over the batch's distinct syndromes plus the
    // per-unique decode results and counter deltas to replay.
    std::vector<std::uint32_t> uniqueOf;
    std::vector<std::uint32_t> uniqueOffsets;
    std::vector<std::uint32_t> uniqueDefects;
    std::vector<std::uint32_t> predictedUnique;
    std::vector<std::uint64_t> uniqueFallbacks;
    std::vector<std::uint64_t> uniquePeels;
    std::unordered_map<std::uint64_t, std::uint32_t> memo;
};

/**
 * Decode a batch in ascending-defect-count order, optionally
 * memoizing by syndrome content.
 *
 * Shots are stable-sorted by defect count (cheap shots first: warms
 * the decoder's arena scratch and the MWPM reach cache on the easy
 * mass of the distribution) and results are scattered back to shot
 * order, so out[s] is bit-identical to decoding shot s directly —
 * the engine's sorted hot path, now reusable by benches and tests.
 *
 * With memo on, shots whose defect list matches an earlier shot of
 * the same batch replay that shot's correction instead of decoding
 * (hash-keyed, with a full content compare on hit, so a hash
 * collision degrades to a duplicate decode, never a wrong replay).
 * Counter deltas (fallbacks, predecoded pairs) recorded for each
 * distinct syndrome are replayed too — see BatchDecodeStats — so
 * every observable statistic is identical memo on/off.
 *
 * With @p global non-null (requires memo on), each distinct syndrome
 * is first looked up in the process-global memo under @p setup
 * (tier 1): hits replay the cached correction and counter deltas,
 * misses decode and insert.  Because cached values equal what the
 * decode would have produced, out/tallies stay bit-identical for
 * any global-cache state; only BatchDecodeStats::globalHits varies.
 *
 * @param out predicted flip mask per shot; size >= batch.shots().
 * @param global process-global memo, or nullptr to skip tier 1.
 * @param setup key identifying (graph, kind, config); required when
 *        @p global is set.
 */
BatchDecodeStats decodeBatchSorted(Decoder &dec,
                                   const SyndromeBatch &batch,
                                   std::span<std::uint32_t> out,
                                   BatchDecodeScratch &scratch,
                                   bool memo,
                                   GlobalDecodeMemo *global = nullptr,
                                   DecodeSetupKey setup = {});

/** Factory signature used by the decoder registry. */
using DecoderFactory = std::function<std::unique_ptr<Decoder>(
    const DecodeGraph &, const DecoderConfig &)>;

/**
 * Register (or replace) the factory for a decoder kind.  Built-in
 * kinds are pre-registered; external code may override them or
 * claim a new enum value without touching the harness.
 */
void registerDecoder(DecoderKind kind, DecoderFactory factory);

/**
 * Instantiate a decoder.  Each call returns a fresh instance with
 * its own scratch state, suitable for per-thread use.  Throws
 * FatalError when no factory is registered for the kind.
 */
std::unique_ptr<Decoder> makeDecoder(DecoderKind kind,
                                     const DecodeGraph &graph,
                                     const DecoderConfig &config = {});

} // namespace traq::decoder

#endif // TRAQ_DECODER_DECODER_HH
