#include "src/decoder/union_find.hh"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hh"

namespace traq::decoder {

std::uint32_t
UnionFindDecoder::quantize(double w)
{
    // Quantize edge weights to small integers (>= 1) so growth can
    // proceed in unit steps.  Typical weights at p ~ 1e-3 are ~7, so
    // rounding keeps relative ordering to ~15%.
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(std::max(1.0, w))));
}

UnionFindDecoder::UnionFindDecoder(const DecodeGraph &graph,
                                   bool predecode,
                                   int predecodeRadius)
    : graph_(graph)
{
    if (predecode)
        pre_ = std::make_unique<Predecoder>(graph_, predecodeRadius);
    edgeWeightQ_.reserve(graph_.edges().size());
    for (const auto &e : graph_.edges())
        edgeWeightQ_.push_back(quantize(e.weight));

    const std::size_t n = graph_.numNodes();
    nodeStamp_.assign(n, 0);
    parent_.assign(n, 0);
    rankArr_.assign(n, 0);
    parity_.assign(n, 0);
    touchesBoundary_.assign(n, 0);
    defect_.assign(n, 0);
    frontier_.resize(n);
    growthStamp_.assign(graph_.edges().size(), 0);
    growth_.assign(graph_.edges().size(), 0);
    adjStamp_.assign(n + 1, 0);
    peelAdj_.resize(n + 1);
    visitedStamp_.assign(n + 1, 0);
    parentEdge_.assign(n + 1, -1);
}

void
UnionFindDecoder::bumpEpoch()
{
    if (++epoch_ == 0) {
        // Stamp wrap: invalidate everything once per 2^32 decodes.
        std::fill(nodeStamp_.begin(), nodeStamp_.end(), 0);
        std::fill(growthStamp_.begin(), growthStamp_.end(), 0);
        std::fill(adjStamp_.begin(), adjStamp_.end(), 0);
        std::fill(visitedStamp_.begin(), visitedStamp_.end(), 0);
        epoch_ = 1;
    }
}

void
UnionFindDecoder::touchNode(std::int32_t i)
{
    if (nodeStamp_[i] != epoch_) {
        nodeStamp_[i] = epoch_;
        parent_[i] = i;
        rankArr_[i] = 0;
        parity_[i] = 0;
        touchesBoundary_[i] = 0;
        defect_[i] = 0;
        frontier_[i].clear();
    }
}

std::int32_t
UnionFindDecoder::find(std::int32_t a)
{
    while (parent_[a] != a) {
        parent_[a] = parent_[parent_[a]];
        a = parent_[a];
    }
    return a;
}

void
UnionFindDecoder::unite(std::int32_t a, std::int32_t b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return;
    if (rankArr_[a] < rankArr_[b])
        std::swap(a, b);
    parent_[b] = a;
    parity_[a] ^= parity_[b];
    touchesBoundary_[a] |= touchesBoundary_[b];
    if (rankArr_[a] == rankArr_[b])
        ++rankArr_[a];
}

std::uint32_t
UnionFindDecoder::decode(const std::vector<std::uint32_t> &syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
UnionFindDecoder::decodeSpan(std::span<const std::uint32_t> syndrome)
{
    return decodeEx(syndrome, {}, nullptr);
}

std::uint32_t
UnionFindDecoder::decodeEx(std::span<const std::uint32_t> syndrome,
                           const DecodeContext &ctx,
                           std::vector<std::uint32_t> *usedEdges)
{
    // Resolve the effective quantized weights for this call.
    TRAQ_REQUIRE(ctx.weights.empty() ||
                     ctx.weights.size() == graph_.edges().size(),
                 "context weight override size mismatch");
    const std::vector<std::uint32_t> *wq = &edgeWeightQ_;
    if (!ctx.weights.empty()) {
        ctxWeightQ_.resize(ctx.weights.size());
        for (std::size_t i = 0; i < ctx.weights.size(); ++i)
            ctxWeightQ_[i] = quantize(ctx.weights[i]);
        wq = &ctxWeightQ_;
    }
    const std::vector<std::uint32_t> &weightQ = *wq;
    const std::int32_t maxRound = ctx.maxRound;
    auto hidden = [&](const GraphEdge &e) {
        return maxRound >= 0 && e.round > maxRound;
    };

    std::uint32_t preCorrection = 0;
    std::span<const std::uint32_t> syn = syndrome;
    if (pre_ && ctx.weights.empty()) {
        preCorrection = pre_->peel(syndrome, ctx, residue_,
                                   usedEdges);
        syn = residue_;
    }

    bumpEpoch();
    for (std::uint32_t d : syn) {
        touchNode(static_cast<std::int32_t>(d));
        parity_[d] ^= 1;
        defect_[d] ^= 1;
    }

    // Frontier edge lists, indexed by cluster root (lazily cleaned).
    std::vector<std::int32_t> active;
    for (std::uint32_t d : syn) {
        if (parity_[d]) {
            frontier_[d] = graph_.incident(d);
            active.push_back(static_cast<std::int32_t>(d));
        }
    }

    std::vector<std::uint32_t> solid;
    std::size_t guard = 0;
    while (!active.empty()) {
        TRAQ_ASSERT(++guard < 100000,
                    "union-find growth failed to terminate");
        std::vector<std::int32_t> nextActive;
        for (std::int32_t rootRaw : active) {
            std::int32_t root = find(rootRaw);
            if (root != rootRaw)
                continue;  // absorbed earlier this pass
            if (!parity_[root] || touchesBoundary_[root])
                continue;

            std::vector<std::uint32_t> local =
                std::move(frontier_[root]);
            frontier_[root].clear();
            std::vector<std::uint32_t> keep, pending;
            std::size_t idx = 0;
            for (; idx < local.size(); ++idx) {
                std::uint32_t ei = local[idx];
                const GraphEdge &e = graph_.edges()[ei];
                if (hidden(e))
                    continue;  // beyond the round horizon
                if (growthOf(ei) >= weightQ[ei])
                    continue;  // already solid
                if (e.u == kBoundary) {
                    if (find(e.v) != root)
                        continue;  // stale
                    growEdge(ei);
                    if (growth_[ei] < weightQ[ei]) {
                        keep.push_back(ei);
                        continue;
                    }
                    solid.push_back(ei);
                    touchesBoundary_[root] = 1;
                    ++idx;
                    break;  // cluster neutralized
                }
                touchNode(e.u);
                touchNode(e.v);
                std::int32_t ru = find(e.u);
                std::int32_t rv = find(e.v);
                if (ru == rv)
                    continue;  // internal edge
                if (ru != root && rv != root)
                    continue;  // stale inherited edge
                growEdge(ei);
                if (growth_[ei] < weightQ[ei]) {
                    keep.push_back(ei);
                    continue;
                }
                solid.push_back(ei);
                // Merge with the far cluster.
                std::int32_t farNode = (ru == root) ? e.v : e.u;
                std::int32_t farRoot = (ru == root) ? rv : ru;
                unite(root, farRoot);
                std::int32_t merged = find(root);
                if (!frontier_[farRoot].empty()) {
                    for (std::uint32_t fe : frontier_[farRoot])
                        pending.push_back(fe);
                    frontier_[farRoot].clear();
                }
                for (std::uint32_t fe :
                     graph_.incident(
                         static_cast<std::size_t>(farNode)))
                    pending.push_back(fe);
                root = merged;
                if (!parity_[root] || touchesBoundary_[root]) {
                    ++idx;
                    break;  // neutralized by merge
                }
            }
            // Deposit kept, pending, and any unprocessed tail into the
            // (possibly new) root's frontier.
            std::int32_t m = find(root);
            auto &dst = frontier_[m];
            for (std::uint32_t fe : keep)
                dst.push_back(fe);
            for (std::uint32_t fe : pending)
                dst.push_back(fe);
            for (; idx < local.size(); ++idx)
                dst.push_back(local[idx]);
            if (dst.size() > 2048) {
                std::sort(dst.begin(), dst.end());
                dst.erase(std::unique(dst.begin(), dst.end()),
                          dst.end());
            }
            // An odd cluster with an empty frontier can never grow
            // again (every incident edge is beyond the context's
            // round horizon); drop it rather than spin — the
            // defect stays unmatched, like MWPM's quiet behavior.
            if (parity_[m] && !touchesBoundary_[m] && !dst.empty())
                nextActive.push_back(m);
        }
        // Deduplicate the active list by current root.
        for (auto &r : nextActive)
            r = find(r);
        std::sort(nextActive.begin(), nextActive.end());
        nextActive.erase(
            std::unique(nextActive.begin(), nextActive.end()),
            nextActive.end());
        active = std::move(nextActive);
    }

    return preCorrection ^ peel(solid, usedEdges);
}

std::uint32_t
UnionFindDecoder::peel(const std::vector<std::uint32_t> &solidEdges,
                       std::vector<std::uint32_t> *usedEdges)
{
    // Build adjacency over solid edges; the boundary is a super-node
    // with id n so excess defects can drain into it.  Adjacency and
    // visit marks are epoch-stamped (same epoch as the growth stage)
    // so only the solid region is ever cleared.
    const auto n = static_cast<std::int32_t>(graph_.numNodes());
    auto touchPeel = [&](std::int32_t node) {
        if (adjStamp_[node] != epoch_) {
            adjStamp_[node] = epoch_;
            peelAdj_[node].clear();
        }
    };
    for (std::uint32_t ei : solidEdges) {
        const GraphEdge &e = graph_.edges()[ei];
        std::int32_t u = (e.u == kBoundary) ? n : e.u;
        touchPeel(u);
        touchPeel(e.v);
        peelAdj_[u].push_back(ei);
        peelAdj_[e.v].push_back(ei);
    }

    std::uint32_t correction = 0;
    auto visited = [&](std::int32_t node) {
        return visitedStamp_[node] == epoch_;
    };

    // Root trees at the boundary first.
    std::vector<std::int32_t> roots;
    roots.push_back(n);
    for (std::uint32_t ei : solidEdges) {
        const GraphEdge &e = graph_.edges()[ei];
        if (e.u != kBoundary)
            roots.push_back(e.u);
        roots.push_back(e.v);
    }

    for (std::int32_t rootNode : roots) {
        if (visited(rootNode) || adjStamp_[rootNode] != epoch_)
            continue;
        visitedStamp_[rootNode] = epoch_;
        std::vector<std::int32_t> order{rootNode};
        std::size_t head = 0;
        while (head < order.size()) {
            std::int32_t u = order[head++];
            for (std::uint32_t ei : peelAdj_[u]) {
                const GraphEdge &e = graph_.edges()[ei];
                std::int32_t a = (e.u == kBoundary) ? n : e.u;
                std::int32_t b = e.v;
                std::int32_t w = (a == u) ? b : a;
                if (visited(w))
                    continue;
                visitedStamp_[w] = epoch_;
                parentEdge_[w] = static_cast<std::int32_t>(ei);
                order.push_back(w);
            }
        }
        // Peel leaves-first (reverse BFS order); defects migrate
        // toward the root, flipping tree edges as they go.
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            std::int32_t u = *it;
            if (u == rootNode || u == n)
                continue;
            if (defect_[u]) {
                const GraphEdge &e = graph_.edges()[parentEdge_[u]];
                correction ^= e.observables;
                if (usedEdges)
                    usedEdges->push_back(static_cast<std::uint32_t>(
                        parentEdge_[u]));
                std::int32_t a = (e.u == kBoundary) ? n : e.u;
                std::int32_t b = e.v;
                std::int32_t other = (a == u) ? b : a;
                defect_[u] = 0;
                if (other != n)
                    defect_[other] ^= 1;
            }
        }
    }
    return correction;
}

} // namespace traq::decoder
