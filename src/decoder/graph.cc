#include "src/decoder/graph.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/assert.hh"
#include "src/common/math.hh"

namespace traq::decoder {

DecodingGraph
DecodingGraph::fromDem(const sim::DetectorErrorModel &dem,
                       const codes::CircuitMeta &meta)
{
    TRAQ_REQUIRE(meta.detectorIsX.size() == dem.numDetectors,
                 "detector metadata size mismatch");
    DecodingGraph g;
    g.numNodes_ = dem.numDetectors;

    // Observable masks routed to X-basis vs Z-basis graph parts.
    std::uint32_t xObsMask = 0, zObsMask = 0;
    for (std::size_t k = 0; k < meta.observableIsX.size(); ++k) {
        if (meta.observableIsX[k])
            xObsMask |= (1u << k);
        else
            zObsMask |= (1u << k);
    }

    // Accumulate edges keyed by (endpoints, obs) for probability
    // merging; boundary encoded as numDetectors.
    std::map<std::pair<std::uint64_t, std::uint32_t>, double> acc;
    auto edgeKey = [&](std::int64_t a, std::int64_t b) {
        std::uint64_t ua = static_cast<std::uint64_t>(
            a < 0 ? dem.numDetectors : a);
        std::uint64_t ub = static_cast<std::uint64_t>(
            b < 0 ? dem.numDetectors : b);
        if (ua > ub)
            std::swap(ua, ub);
        return (ua << 32) | ub;
    };

    auto addEdge = [&](std::int64_t a, std::int64_t b,
                       std::uint32_t obs, double p) {
        auto key = std::make_pair(edgeKey(a, b), obs);
        auto [it, fresh] = acc.try_emplace(key, 0.0);
        it->second = pXor(it->second, p);
        (void)fresh;
    };

    auto addPart = [&](const std::vector<std::uint32_t> &dets,
                       std::uint32_t obs, double p) {
        if (dets.empty()) {
            if (obs != 0)
                ++g.numUndetectableLogical_;
            return;
        }
        if (dets.size() <= 2) {
            addEdge(dets[0],
                    dets.size() == 2
                        ? static_cast<std::int64_t>(dets[1])
                        : -1,
                    obs, p);
            return;
        }
        // Fallback decomposition into consecutive pairs; counted so
        // tests can assert it never happens for our circuits.
        ++g.numUnsplittable_;
        for (std::size_t i = 0; i < dets.size(); i += 2) {
            if (i + 1 < dets.size())
                addEdge(dets[i], dets[i + 1], i == 0 ? obs : 0, p);
            else
                addEdge(dets[i], -1, i == 0 ? obs : 0, p);
        }
    };

    for (const auto &mech : dem.errors) {
        std::vector<std::uint32_t> detsX, detsZ;
        for (std::uint32_t d : mech.detectors) {
            if (meta.detectorIsX[d])
                detsX.push_back(d);
            else
                detsZ.push_back(d);
        }
        // X-basis detectors flag Z-type faults, which flip X-type
        // logicals; mirror for Z-basis detectors.
        addPart(detsX, mech.observables & xObsMask,
                mech.probability);
        addPart(detsZ, mech.observables & zObsMask,
                mech.probability);
    }

    // Materialize edges; merge parallel edges with differing obs by
    // keeping them distinct (the decoders handle multi-edges).
    g.adj_.assign(g.numNodes_, {});
    for (const auto &[key, p] : acc) {
        if (p <= 0.0)
            continue;
        std::uint64_t packed = key.first;
        std::uint32_t obs = key.second;
        auto ua = static_cast<std::uint32_t>(packed >> 32);
        auto ub = static_cast<std::uint32_t>(packed & 0xffffffffu);
        GraphEdge e;
        e.u = (ua == dem.numDetectors) ? kBoundary
                                       : static_cast<std::int32_t>(ua);
        e.v = (ub == dem.numDetectors) ? kBoundary
                                       : static_cast<std::int32_t>(ub);
        // Orient boundary to u for convenience.
        if (e.v == kBoundary && e.u != kBoundary)
            std::swap(e.u, e.v);
        e.probability = p;
        double pc = std::clamp(p, 1e-12, 0.5);
        e.weight = std::log((1.0 - pc) / pc);
        e.observables = obs;
        auto idx = static_cast<std::uint32_t>(g.edges_.size());
        g.edges_.push_back(e);
        if (e.u != kBoundary)
            g.adj_[static_cast<std::size_t>(e.u)].push_back(idx);
        if (e.v != kBoundary)
            g.adj_[static_cast<std::size_t>(e.v)].push_back(idx);
    }
    return g;
}

} // namespace traq::decoder
