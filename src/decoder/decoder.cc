#include "src/decoder/decoder.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/assert.hh"
#include "src/decoder/correlated.hh"
#include "src/decoder/global_memo.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/union_find.hh"
#include "src/decoder/windowed.hh"

namespace traq::decoder {
namespace {

/** Kind/name table: the single source for the round-trip helpers. */
constexpr struct
{
    DecoderKind kind;
    const char *name;
} kKindNames[] = {
    {DecoderKind::UnionFind, "union-find"},
    {DecoderKind::Mwpm, "mwpm"},
    {DecoderKind::Fallback, "mwpm+uf-fallback"},
    {DecoderKind::Correlated, "correlated"},
    {DecoderKind::Windowed, "windowed"},
};

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<DecoderKind, DecoderFactory> &
registry()
{
    // Built-ins are seeded on first access so makeDecoder works
    // without any static-initialization-order coupling.
    // Each factory resolves the predecode tri-state and hands it to
    // the *outermost* decoder only; composites construct their inner
    // stages without it, so a syndrome is peeled at most once.
    static std::map<DecoderKind, DecoderFactory> r = {
        {DecoderKind::UnionFind,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<UnionFindDecoder>(
                 g, resolvePredecode(c.predecode),
                 c.predecodeRadius);
         }},
        {DecoderKind::Mwpm,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<MwpmDecoder>(
                 g, c.mwpmMaxDefects,
                 resolvePredecode(c.predecode), c.predecodeRadius,
                 resolveReachCache(c.reachCache));
         }},
        {DecoderKind::Fallback,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<FallbackDecoder>(
                 g, c.mwpmMaxDefects,
                 resolvePredecode(c.predecode), c.predecodeRadius,
                 resolveReachCache(c.reachCache));
         }},
        {DecoderKind::Correlated,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<CorrelatedDecoder>(g, c);
         }},
        {DecoderKind::Windowed,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<WindowedDecoder>(g, c);
         }},
    };
    return r;
}

} // namespace

const char *
decoderKindName(DecoderKind kind)
{
    for (const auto &entry : kKindNames)
        if (entry.kind == kind)
            return entry.name;
    TRAQ_FATAL("decoderKindName: unknown DecoderKind value " +
               std::to_string(static_cast<int>(kind)));
}

DecoderKind
decoderKindFromName(std::string_view name)
{
    std::string known;
    for (const auto &entry : kKindNames) {
        if (name == entry.name)
            return entry.kind;
        known += known.empty() ? "" : ", ";
        known += entry.name;
    }
    TRAQ_FATAL("unknown decoder kind '" + std::string(name) +
               "' (known: " + known + ")");
}

std::vector<DecoderKind>
registeredDecoderKinds()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<DecoderKind> kinds;
    kinds.reserve(registry().size());
    for (const auto &[kind, factory] : registry())
        kinds.push_back(kind);
    return kinds;
}

bool
resolvePredecode(int requested)
{
    if (requested >= 0)
        return requested != 0;
    if (const char *env = std::getenv("TRAQ_PREDECODE")) {
        const std::string_view v(env);
        if (v.empty() || v == "0" || v == "off" || v == "false")
            return false;
        if (v == "1" || v == "on" || v == "true")
            return true;
        TRAQ_FATAL("unknown TRAQ_PREDECODE value '" +
                   std::string(v) +
                   "' (known: 0/off/false, 1/on/true)");
    }
    return false;
}

namespace {

/** Shared body of the default-ON tri-state resolvers. */
bool
resolveOnByDefault(int requested, const char *envName)
{
    if (requested >= 0)
        return requested != 0;
    if (const char *env = std::getenv(envName)) {
        const std::string_view v(env);
        if (!v.empty()) {
            if (v == "0" || v == "off" || v == "false")
                return false;
            if (v == "1" || v == "on" || v == "true")
                return true;
            TRAQ_FATAL("unknown " + std::string(envName) +
                       " value '" + std::string(v) +
                       "' (known: 0/off/false, 1/on/true)");
        }
    }
    return true;
}

} // namespace

bool
resolveDecodeMemo(int requested)
{
    return resolveOnByDefault(requested, "TRAQ_DECODE_MEMO");
}

bool
resolveReachCache(int requested)
{
    return resolveOnByDefault(requested, "TRAQ_REACH_CACHE");
}

bool
resolveGlobalMemo(int requested)
{
    return resolveOnByDefault(requested, "TRAQ_GLOBAL_MEMO");
}

bool
resolveCompileCache(int requested)
{
    return resolveOnByDefault(requested, "TRAQ_COMPILE_CACHE");
}

DecoderKind
resolveDecoderKind(DecoderKind requested)
{
    if (const char *env = std::getenv("TRAQ_DECODER")) {
        if (env[0] != '\0')
            return decoderKindFromName(env);
    }
    return requested;
}

void
registerDecoder(DecoderKind kind, DecoderFactory factory)
{
    TRAQ_REQUIRE(factory != nullptr, "null decoder factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    registry()[kind] = std::move(factory);
}

std::unique_ptr<Decoder>
makeDecoder(DecoderKind kind, const DecodeGraph &graph,
            const DecoderConfig &config)
{
    DecoderFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(kind);
        if (it == registry().end())
            TRAQ_FATAL(
                "no decoder factory registered for kind " +
                std::to_string(static_cast<int>(kind)));
        factory = it->second;
    }
    return factory(graph, config);
}

namespace {

/** FNV-style content hash of a defect list (memo key; collisions
 *  are resolved by a full compare, never trusted). */
inline std::uint64_t
hashSyndrome(std::span<const std::uint32_t> syn)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ syn.size();
    for (std::uint32_t x : syn)
        h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

/** One mixing step of the setup-key digests. */
inline std::uint64_t
mixKey(std::uint64_t h, std::uint64_t x)
{
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    return h ^ (h >> 33);
}

} // namespace

DecodeSetupKey
decodeSetupKey(const DecodeGraph &graph, DecoderKind kind,
               const DecoderConfig &config)
{
    // Tri-states are resolved here so an explicit request and the
    // equivalent env default land on the same entries.  Every field
    // below can change a decode result for at least one kind;
    // reachCache is included conservatively (it is bit-identical by
    // contract, but keying on it costs only duplicate entries).
    const std::uint64_t fields[] = {
        graph.contentHash(),
        static_cast<std::uint64_t>(kind),
        config.mwpmMaxDefects,
        std::bit_cast<std::uint64_t>(config.correlationBoost),
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(config.windowRounds)),
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(config.commitRounds)),
        resolvePredecode(config.predecode) ? 1u : 0u,
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(config.predecodeRadius)),
        resolveReachCache(config.reachCache) ? 1u : 0u,
    };
    DecodeSetupKey key{0x74696572316d656dULL, 0x71756272612d636bULL};
    for (std::uint64_t f : fields) {
        key.a = mixKey(key.a, f);
        key.b = mixKey(key.b, ~f);
    }
    return key;
}

BatchDecodeStats
decodeBatchSorted(Decoder &dec, const SyndromeBatch &batch,
                  std::span<std::uint32_t> out,
                  BatchDecodeScratch &scratch, bool memo,
                  GlobalDecodeMemo *global, DecodeSetupKey setup)
{
    TRAQ_REQUIRE(global == nullptr || memo,
                 "decodeBatchSorted: the global memo rides on the "
                 "per-batch memo's replay bookkeeping (memo on)");
    BatchDecodeStats stats;
    const std::uint64_t n = batch.shots();
    TRAQ_REQUIRE(out.size() >= n,
                 "decodeBatchSorted output must cover the batch");
    if (n == 0)
        return stats;

    // Ascending defect count, stable within a count class: the order
    // is a pure function of the batch, so the decode sequence — and
    // with it every tie-break-sensitive result — is deterministic.
    auto &perm = scratch.perm;
    perm.resize(n);
    for (std::uint64_t s = 0; s < n; ++s)
        perm[s] = static_cast<std::uint32_t>(s);
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return batch.offsets[a + 1] -
                                    batch.offsets[a] <
                                batch.offsets[b + 1] -
                                    batch.offsets[b];
                     });

    if (!memo) {
        // Rebuild the CSR in sorted order and decode it with the one
        // virtual decodeBatch call (the pre-memo engine hot path).
        scratch.sortedOffsets.assign(1, 0);
        scratch.sortedDefects.clear();
        scratch.sortedDefects.reserve(batch.defects.size());
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto syn = batch.syndrome(perm[i]);
            scratch.sortedDefects.insert(scratch.sortedDefects.end(),
                                         syn.begin(), syn.end());
            scratch.sortedOffsets.push_back(
                static_cast<std::uint32_t>(
                    scratch.sortedDefects.size()));
        }
        const SyndromeBatch view{scratch.sortedOffsets,
                                 scratch.sortedDefects};
        scratch.predictedSorted.resize(n);
        dec.decodeBatch(view, scratch.predictedSorted);
        for (std::uint64_t i = 0; i < n; ++i)
            out[perm[i]] = scratch.predictedSorted[i];
        return stats;
    }

    // Memo path: collapse the batch to its distinct syndromes (CSR
    // over "unique rows"), decode each once, replay everywhere else.
    scratch.memo.clear();
    scratch.uniqueOf.resize(n);
    scratch.uniqueOffsets.assign(1, 0);
    scratch.uniqueDefects.clear();
    auto appendUnique =
        [&](std::span<const std::uint32_t> syn) -> std::uint32_t {
        scratch.uniqueDefects.insert(scratch.uniqueDefects.end(),
                                     syn.begin(), syn.end());
        scratch.uniqueOffsets.push_back(static_cast<std::uint32_t>(
            scratch.uniqueDefects.size()));
        return static_cast<std::uint32_t>(
            scratch.uniqueOffsets.size() - 2);
    };
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto syn = batch.syndrome(perm[i]);
        auto [it, inserted] = scratch.memo.try_emplace(
            hashSyndrome(syn),
            static_cast<std::uint32_t>(scratch.uniqueOffsets.size() -
                                       1));
        if (inserted) {
            scratch.uniqueOf[i] = appendUnique(syn);
            continue;
        }
        const std::uint32_t u = it->second;
        const auto useen = std::span<const std::uint32_t>(
            scratch.uniqueDefects.data() + scratch.uniqueOffsets[u],
            scratch.uniqueOffsets[u + 1] - scratch.uniqueOffsets[u]);
        if (useen.size() == syn.size() &&
            std::equal(useen.begin(), useen.end(), syn.begin())) {
            ++stats.memoHits;
            scratch.uniqueOf[i] = u;
        } else {
            // Hash collision: decode it as its own row.  The map
            // keeps the first claimant, so later copies of *that*
            // syndrome still hit; later copies of this one re-collide
            // and re-decode — correct, just not deduplicated.
            scratch.uniqueOf[i] = appendUnique(syn);
        }
    }

    // Decode each distinct syndrome once, in first-occurrence order
    // (which inherits the defect-count sort), recording the counter
    // deltas the replayed shots must reproduce.  With tier 1 active,
    // a distinct syndrome cached by an earlier batch replays instead
    // of decoding — the cached deltas equal what the decode would
    // have produced, so the accounting below cannot tell the
    // difference.
    const std::size_t numUnique = scratch.uniqueOffsets.size() - 1;
    const SyndromeBatch uview{scratch.uniqueOffsets,
                              scratch.uniqueDefects};
    scratch.predictedUnique.resize(numUnique);
    scratch.uniqueFallbacks.resize(numUnique);
    scratch.uniquePeels.resize(numUnique);
    const std::uint64_t fbBase = dec.fallbacks();
    const std::uint64_t ppBase = dec.predecodedPairs();
    for (std::size_t u = 0; u < numUnique; ++u) {
        const auto syn = uview.syndrome(u);
        if (global != nullptr) {
            GlobalDecodeMemo::Value v;
            if (global->lookup(setup, syn, {}, v)) {
                scratch.predictedUnique[u] = v.predicted;
                scratch.uniqueFallbacks[u] = v.fallbacks;
                scratch.uniquePeels[u] = v.peels;
                ++stats.globalHits;
                continue;
            }
        }
        const std::uint64_t fb0 = dec.fallbacks();
        const std::uint64_t pp0 = dec.predecodedPairs();
        scratch.predictedUnique[u] = dec.decodeSpan(syn);
        scratch.uniqueFallbacks[u] = dec.fallbacks() - fb0;
        scratch.uniquePeels[u] = dec.predecodedPairs() - pp0;
        if (global != nullptr)
            global->insert(
                setup, syn, {},
                {scratch.predictedUnique[u],
                 static_cast<std::uint32_t>(
                     scratch.uniqueFallbacks[u]),
                 static_cast<std::uint32_t>(scratch.uniquePeels[u])});
    }

    // Replayed counter shares: everything the batch owes minus what
    // the decoder actually incremented while decoding the uniques.
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint32_t u = scratch.uniqueOf[i];
        out[perm[i]] = scratch.predictedUnique[u];
        stats.replayedFallbacks += scratch.uniqueFallbacks[u];
        stats.replayedPeels += scratch.uniquePeels[u];
    }
    stats.replayedFallbacks -= dec.fallbacks() - fbBase;
    stats.replayedPeels -= dec.predecodedPairs() - ppBase;
    return stats;
}

} // namespace traq::decoder
