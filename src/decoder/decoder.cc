#include "src/decoder/decoder.hh"

#include <map>
#include <mutex>

#include "src/common/assert.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/union_find.hh"

namespace traq::decoder {
namespace {

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<DecoderKind, DecoderFactory> &
registry()
{
    // Built-ins are seeded on first access so makeDecoder works
    // without any static-initialization-order coupling.
    static std::map<DecoderKind, DecoderFactory> r = {
        {DecoderKind::UnionFind,
         [](const DecodingGraph &g, const DecoderConfig &) {
             return std::make_unique<UnionFindDecoder>(g);
         }},
        {DecoderKind::Mwpm,
         [](const DecodingGraph &g, const DecoderConfig &c) {
             return std::make_unique<MwpmDecoder>(g,
                                                  c.mwpmMaxDefects);
         }},
        {DecoderKind::Fallback,
         [](const DecodingGraph &g, const DecoderConfig &c) {
             return std::make_unique<FallbackDecoder>(
                 g, c.mwpmMaxDefects);
         }},
    };
    return r;
}

} // namespace

const char *
decoderKindName(DecoderKind kind)
{
    switch (kind) {
      case DecoderKind::UnionFind:
        return "union-find";
      case DecoderKind::Mwpm:
        return "mwpm";
      case DecoderKind::Fallback:
        return "mwpm+uf-fallback";
    }
    return "unknown";
}

void
registerDecoder(DecoderKind kind, DecoderFactory factory)
{
    TRAQ_REQUIRE(factory != nullptr, "null decoder factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    registry()[kind] = std::move(factory);
}

std::unique_ptr<Decoder>
makeDecoder(DecoderKind kind, const DecodingGraph &graph,
            const DecoderConfig &config)
{
    DecoderFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(kind);
        TRAQ_REQUIRE(it != registry().end(),
                     "no decoder registered for kind");
        factory = it->second;
    }
    return factory(graph, config);
}

} // namespace traq::decoder
