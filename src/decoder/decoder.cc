#include "src/decoder/decoder.hh"

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/assert.hh"
#include "src/decoder/correlated.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/union_find.hh"
#include "src/decoder/windowed.hh"

namespace traq::decoder {
namespace {

/** Kind/name table: the single source for the round-trip helpers. */
constexpr struct
{
    DecoderKind kind;
    const char *name;
} kKindNames[] = {
    {DecoderKind::UnionFind, "union-find"},
    {DecoderKind::Mwpm, "mwpm"},
    {DecoderKind::Fallback, "mwpm+uf-fallback"},
    {DecoderKind::Correlated, "correlated"},
    {DecoderKind::Windowed, "windowed"},
};

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<DecoderKind, DecoderFactory> &
registry()
{
    // Built-ins are seeded on first access so makeDecoder works
    // without any static-initialization-order coupling.
    // Each factory resolves the predecode tri-state and hands it to
    // the *outermost* decoder only; composites construct their inner
    // stages without it, so a syndrome is peeled at most once.
    static std::map<DecoderKind, DecoderFactory> r = {
        {DecoderKind::UnionFind,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<UnionFindDecoder>(
                 g, resolvePredecode(c.predecode),
                 c.predecodeRadius);
         }},
        {DecoderKind::Mwpm,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<MwpmDecoder>(
                 g, c.mwpmMaxDefects,
                 resolvePredecode(c.predecode), c.predecodeRadius);
         }},
        {DecoderKind::Fallback,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<FallbackDecoder>(
                 g, c.mwpmMaxDefects,
                 resolvePredecode(c.predecode), c.predecodeRadius);
         }},
        {DecoderKind::Correlated,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<CorrelatedDecoder>(g, c);
         }},
        {DecoderKind::Windowed,
         [](const DecodeGraph &g, const DecoderConfig &c) {
             return std::make_unique<WindowedDecoder>(g, c);
         }},
    };
    return r;
}

} // namespace

const char *
decoderKindName(DecoderKind kind)
{
    for (const auto &entry : kKindNames)
        if (entry.kind == kind)
            return entry.name;
    TRAQ_FATAL("decoderKindName: unknown DecoderKind value " +
               std::to_string(static_cast<int>(kind)));
}

DecoderKind
decoderKindFromName(std::string_view name)
{
    std::string known;
    for (const auto &entry : kKindNames) {
        if (name == entry.name)
            return entry.kind;
        known += known.empty() ? "" : ", ";
        known += entry.name;
    }
    TRAQ_FATAL("unknown decoder kind '" + std::string(name) +
               "' (known: " + known + ")");
}

std::vector<DecoderKind>
registeredDecoderKinds()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<DecoderKind> kinds;
    kinds.reserve(registry().size());
    for (const auto &[kind, factory] : registry())
        kinds.push_back(kind);
    return kinds;
}

bool
resolvePredecode(int requested)
{
    if (requested >= 0)
        return requested != 0;
    if (const char *env = std::getenv("TRAQ_PREDECODE")) {
        const std::string_view v(env);
        if (v.empty() || v == "0" || v == "off" || v == "false")
            return false;
        if (v == "1" || v == "on" || v == "true")
            return true;
        TRAQ_FATAL("unknown TRAQ_PREDECODE value '" +
                   std::string(v) +
                   "' (known: 0/off/false, 1/on/true)");
    }
    return false;
}

DecoderKind
resolveDecoderKind(DecoderKind requested)
{
    if (const char *env = std::getenv("TRAQ_DECODER")) {
        if (env[0] != '\0')
            return decoderKindFromName(env);
    }
    return requested;
}

void
registerDecoder(DecoderKind kind, DecoderFactory factory)
{
    TRAQ_REQUIRE(factory != nullptr, "null decoder factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    registry()[kind] = std::move(factory);
}

std::unique_ptr<Decoder>
makeDecoder(DecoderKind kind, const DecodeGraph &graph,
            const DecoderConfig &config)
{
    DecoderFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(kind);
        if (it == registry().end())
            TRAQ_FATAL(
                "no decoder factory registered for kind " +
                std::to_string(static_cast<int>(kind)));
        factory = it->second;
    }
    return factory(graph, config);
}

} // namespace traq::decoder
