#include "src/arch/se_schedule.hh"

#include <cmath>
#include <limits>

#include "src/arch/qec_cycle.hh"
#include "src/common/assert.hh"

namespace traq::arch {

double
idleError(double tau, const platform::AtomArrayParams &p)
{
    TRAQ_REQUIRE(tau >= 0.0, "idle time must be non-negative");
    return -std::expm1(-tau / p.coherenceTime);
}

double
idleLogicalErrorRate(double tau, int d,
                     const platform::AtomArrayParams &p,
                     const model::ErrorModelParams &em)
{
    TRAQ_REQUIRE(tau > 0.0, "SE period must be positive");
    double pRound = kSeRoundErrorWeight * em.pPhys + idleError(tau, p);
    double base = pRound / (kSeRoundErrorWeight * em.pThres);
    if (base >= 1.0)
        return std::numeric_limits<double>::infinity();
    double pL = em.prefactorC * std::pow(base, (d + 1) / 2.0);
    return pL / tau;
}

double
optimalIdlePeriod(int d, const platform::AtomArrayParams &p,
                  const model::ErrorModelParams &em)
{
    // An SE round cannot be scheduled more often than it takes to
    // execute: floor the period at the QEC cycle time.
    double floor = qecCycle(d, p).total;
    double best = floor;
    double bestRate = std::numeric_limits<double>::infinity();
    for (double tau = floor; tau <= 10.0; tau *= 1.05) {
        double r = idleLogicalErrorRate(tau, d, p, em);
        if (r < bestRate) {
            bestRate = r;
            best = tau;
        }
    }
    return best;
}

double
optimalIdlePeriodApprox(int d, const platform::AtomArrayParams &p,
                        const model::ErrorModelParams &em)
{
    double k = (d + 1) / 2.0;
    TRAQ_REQUIRE(k > 1.0, "distance too small for the approximation");
    return kSeRoundErrorWeight * em.pPhys * p.coherenceTime /
           (k - 1.0);
}

} // namespace traq::arch
