/**
 * @file
 * Syndrome-extraction cadence policy (Sec. IV.2, Fig. 11(c,d)).
 *
 * During gate operation the paper uses 1 SE round per transversal
 * gate; during idle storage SE is run only every ~8 ms, chosen so the
 * accumulated idle (coherence) error per round is comparable to the
 * gate-error contribution of the SE round itself.
 */

#ifndef TRAQ_ARCH_SE_SCHEDULE_HH
#define TRAQ_ARCH_SE_SCHEDULE_HH

#include "src/model/error_model.hh"
#include "src/platform/params.hh"

namespace traq::arch {

/**
 * Effective physical error contribution of one SE round per data
 * qubit: four CX gates plus reset/measurement leakage, expressed as a
 * multiple of p_phys.  (The weight 6 = 4 CX + ~2 for SPAM matches the
 * paper's "idle error becomes comparable to gate errors" crossover at
 * ~8 ms for a 10 s coherence time.)
 */
constexpr double kSeRoundErrorWeight = 6.0;

/** Idle physical error accumulated over time tau (depolarizing). */
double idleError(double tau, const platform::AtomArrayParams &p);

/**
 * Logical error rate per qubit per unit time when idling with SE
 * period tau (Eq. (3) specialization; Fig. 11(d)).
 */
double idleLogicalErrorRate(double tau, int d,
                            const platform::AtomArrayParams &p,
                            const model::ErrorModelParams &em);

/**
 * SE period minimizing the idle logical error rate (Fig. 11(c)):
 * scanned on a log grid; approximately
 * tau* = w p T_coh / ((d+1)/2 - 1).
 */
double optimalIdlePeriod(int d, const platform::AtomArrayParams &p,
                         const model::ErrorModelParams &em);

/** Closed-form approximation of the optimum (for cross-checks). */
double optimalIdlePeriodApprox(int d,
                               const platform::AtomArrayParams &p,
                               const model::ErrorModelParams &em);

} // namespace traq::arch

#endif // TRAQ_ARCH_SE_SCHEDULE_HH
