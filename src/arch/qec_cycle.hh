/**
 * @file
 * Logical QEC-cycle timing for the transversal architecture
 * (Sec. IV.2): syndrome-extraction CX layers built from short local
 * moves, with ancilla measurement pipelined against the block moves of
 * the next transversal gate.
 *
 * With Table I parameters this reproduces the paper's quoted numbers:
 * "the gates in a QEC cycle taking around 400 us" and "moving a code
 * patch across the distance of a logical qubit takes around 500 us,
 * which is equal to the measurement time".
 */

#ifndef TRAQ_ARCH_QEC_CYCLE_HH
#define TRAQ_ARCH_QEC_CYCLE_HH

#include "src/platform/params.hh"

namespace traq::arch {

/** Timing breakdown of one logical QEC cycle. */
struct QecCycleTiming
{
    double seGatePhase = 0.0;     //!< 4 CX layers incl. ancilla moves
    double measurePhase = 0.0;    //!< max(measure, pipelined move)
    double total = 0.0;
    double patchMove = 0.0;       //!< transversal block move time
};

/**
 * Timing of one SE round plus a transversal logical gate, with the
 * ancilla measurement pipelined against the inter-patch block move
 * of the transversal gate.
 *
 * @param d code distance.
 * @param moveSites distance (in grid sites) of the transversal-gate
 *        block move; defaults to d (one patch width).
 */
QecCycleTiming
qecCycle(int d, const platform::AtomArrayParams &p,
         double moveSites = -1.0);

/**
 * Reaction-limited step time: the latency from a logical measurement
 * to the dependent conditional operation (Sec. III.5); the clock of
 * Toffoli-chain execution in the adder and lookup gadgets.
 */
double reactionStep(const platform::AtomArrayParams &p);

} // namespace traq::arch

#endif // TRAQ_ARCH_QEC_CYCLE_HH
