#include "src/arch/tracker.hh"

#include <algorithm>

#include "src/common/assert.hh"

namespace traq::arch {

void
SpaceTimeLedger::add(const std::string &name, double qubits,
                     double seconds, double errorBudget)
{
    TRAQ_REQUIRE(qubits >= 0.0 && seconds >= 0.0 &&
                     errorBudget >= 0.0,
                 "ledger entries must be non-negative");
    entries_.push_back({name, qubits, seconds, errorBudget});
}

double
SpaceTimeLedger::totalQubits() const
{
    double q = 0.0;
    for (const auto &e : entries_)
        q += e.qubits;
    return q;
}

double
SpaceTimeLedger::makespan() const
{
    double t = 0.0;
    for (const auto &e : entries_)
        t = std::max(t, e.seconds);
    return t;
}

double
SpaceTimeLedger::totalVolume() const
{
    double v = 0.0;
    for (const auto &e : entries_)
        v += e.volume();
    return v;
}

double
SpaceTimeLedger::totalError() const
{
    double err = 0.0;
    for (const auto &e : entries_)
        err += e.errorBudget;
    return err;
}

std::vector<std::pair<std::string, double>>
SpaceTimeLedger::spaceFractions() const
{
    double total = totalQubits();
    std::vector<std::pair<std::string, double>> out;
    for (const auto &e : entries_)
        out.emplace_back(e.name,
                         total > 0 ? e.qubits / total : 0.0);
    return out;
}

std::vector<std::pair<std::string, double>>
SpaceTimeLedger::errorFractions() const
{
    double total = totalError();
    std::vector<std::pair<std::string, double>> out;
    for (const auto &e : entries_)
        out.emplace_back(e.name,
                         total > 0 ? e.errorBudget / total : 0.0);
    return out;
}

} // namespace traq::arch
