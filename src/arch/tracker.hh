/**
 * @file
 * Space-time and error-budget ledger.
 *
 * Gadget and estimator code register named components (qubits used,
 * duration active, logical error contributed); the ledger produces
 * the totals and breakdown rows behind Fig. 12 and the headline
 * space-time volume objective (Sec. II.2).
 */

#ifndef TRAQ_ARCH_TRACKER_HH
#define TRAQ_ARCH_TRACKER_HH

#include <string>
#include <vector>

namespace traq::arch {

/** One accounted component of the computation. */
struct LedgerEntry
{
    std::string name;
    double qubits = 0.0;        //!< physical qubits held
    double seconds = 0.0;       //!< wall-clock time held
    double errorBudget = 0.0;   //!< total logical error contributed

    double volume() const { return qubits * seconds; }
};

/** Accumulates component usage into totals and breakdowns. */
class SpaceTimeLedger
{
  public:
    void add(const std::string &name, double qubits, double seconds,
             double errorBudget = 0.0);

    const std::vector<LedgerEntry> &entries() const
    {
        return entries_;
    }

    /** Peak concurrent qubits = sum of component qubits (components
     *  are modelled as concurrent). */
    double totalQubits() const;

    /** Max of component durations (components run concurrently). */
    double makespan() const;

    /** Sum of qubit-seconds over components. */
    double totalVolume() const;

    /** Sum of error budgets. */
    double totalError() const;

    /** Fraction of space by component (for Fig. 12(a)). */
    std::vector<std::pair<std::string, double>>
    spaceFractions() const;

    /** Fraction of error budget by component (Fig. 12(b)). */
    std::vector<std::pair<std::string, double>>
    errorFractions() const;

  private:
    std::vector<LedgerEntry> entries_;
};

} // namespace traq::arch

#endif // TRAQ_ARCH_TRACKER_HH
