#include "src/arch/qec_cycle.hh"

#include <algorithm>

#include "src/common/assert.hh"

namespace traq::arch {

QecCycleTiming
qecCycle(int d, const platform::AtomArrayParams &p, double moveSites)
{
    TRAQ_REQUIRE(d >= 3, "distance must be >= 3");
    if (moveSites < 0.0)
        moveSites = d;
    QecCycleTiming t;
    // Four CX layers; each layer moves the ancilla block to the next
    // plaquette corner (~1 site) and applies a gate.
    t.seGatePhase =
        4.0 * (platform::moveTimeSites(1.0, p) + p.gateTime);
    t.patchMove = platform::moveTimeSites(moveSites, p);
    // Ancilla measurement is pipelined against the transversal-gate
    // block move of the data qubits (Sec. IV.2).
    t.measurePhase = std::max(p.measureTime, t.patchMove);
    t.total = t.seGatePhase + t.measurePhase;
    return t;
}

double
reactionStep(const platform::AtomArrayParams &p)
{
    return p.reactionTime();
}

} // namespace traq::arch
