/**
 * @file
 * Umbrella header for the traq library: transversal resource
 * analysis for reconfigurable atom arrays.
 *
 * Re-exports the full public API.  Downstream users normally need
 * only a subset:
 *   - estimators:   src/estimator/{shor,optimizer,baselines,
 *                   chemistry,qldpc}.hh
 *   - gadgets:      src/gadgets/{factory,adder,lookup,ghz,parallel,
 *                   rotation}.hh
 *   - error model:  src/model/{error_model,fit,cultivation}.hh
 *   - platform:     src/platform/{params,movement}.hh and
 *                   src/arch/{qec_cycle,se_schedule,tracker}.hh
 *   - simulation:   src/sim/*.hh, src/codes/*.hh, src/decoder/*.hh
 */

#ifndef TRAQ_TRAQ_HH
#define TRAQ_TRAQ_HH

#include "src/common/assert.hh"
#include "src/common/gf2.hh"
#include "src/common/math.hh"
#include "src/common/rng.hh"
#include "src/common/serialize.hh"
#include "src/common/stats.hh"
#include "src/common/strings.hh"
#include "src/common/table.hh"
#include "src/common/threads.hh"

#include "src/sim/circuit.hh"
#include "src/sim/conjugate.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"
#include "src/sim/gates.hh"
#include "src/sim/pauli.hh"
#include "src/sim/tableau.hh"

#include "src/codes/css.hh"
#include "src/codes/experiments.hh"
#include "src/codes/surface_code.hh"

#include "src/decoder/correlated.hh"
#include "src/decoder/decode_graph.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/fallback.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/union_find.hh"
#include "src/decoder/windowed.hh"

#include "src/noise/noise.hh"

#include "src/model/cultivation.hh"
#include "src/model/error_model.hh"
#include "src/model/fit.hh"

#include "src/platform/movement.hh"
#include "src/platform/params.hh"

#include "src/arch/qec_cycle.hh"
#include "src/arch/se_schedule.hh"
#include "src/arch/tracker.hh"

#include "src/gadgets/adder.hh"
#include "src/gadgets/factory.hh"
#include "src/gadgets/ghz.hh"
#include "src/gadgets/lookup.hh"
#include "src/gadgets/parallel.hh"
#include "src/gadgets/rotation.hh"

#include "src/estimator/baselines.hh"
#include "src/estimator/calibration.hh"
#include "src/estimator/chemistry.hh"
#include "src/estimator/estimator.hh"
#include "src/estimator/optimizer.hh"
#include "src/estimator/qldpc.hh"
#include "src/estimator/shor.hh"
#include "src/estimator/sweep.hh"

#endif // TRAQ_TRAQ_HH
