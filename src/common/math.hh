/**
 * @file
 * Small numeric helpers shared across the analytic models.
 *
 * Probabilities in the resource models are combined under the usual
 * independent-error approximations; this header centralizes those
 * operations so the conventions (e.g. XOR-combination of independent
 * flip probabilities) live in exactly one place.
 */

#ifndef TRAQ_COMMON_MATH_HH
#define TRAQ_COMMON_MATH_HH

#include <cstdint>
#include <vector>

namespace traq {

/**
 * Probability that an odd number of two independent events occur
 * (XOR-combination of error probabilities): a(1-b) + b(1-a).
 */
double pXor(double a, double b);

/** Probability that at least one of two independent events occurs. */
double pOr(double a, double b);

/** Union bound / additive combination, clamped to [0, 1]. */
double pClamp(double p);

/** 1 - (1-p)^n, computed stably for tiny p via expm1/log1p. */
double pAtLeastOnceOf(double p, double n);

/** Round up to the nearest odd integer >= 3 (surface-code distances). */
int ceilOdd(double x);

/** Integer ceil division for non-negative values. */
std::int64_t ceilDiv(std::int64_t a, std::int64_t b);

/** x rounded up to a multiple of m (m > 0). */
std::int64_t roundUp(std::int64_t x, std::int64_t m);

/** log2 of a positive double. */
double log2d(double x);

/** Binomial coefficient as double (n up to ~1000, k small). */
double binomialCoeff(int n, int k);

/**
 * Probability of an odd number of successes among n independent
 * Bernoulli(p) trials: (1 - (1-2p)^n) / 2.  This is the exact
 * accumulation law for XOR-type logical failures.
 */
double pOddOf(double p, double n);

/** Linear interpolation of y(x) on a sorted table (clamped ends). */
double interp(const std::vector<double> &xs,
              const std::vector<double> &ys, double x);

} // namespace traq

#endif // TRAQ_COMMON_MATH_HH
