#include "src/common/word.hh"

#include <cstdlib>
#include <string>
#include <string_view>

#include "src/common/assert.hh"

namespace traq {

WordBackend
resolveWordBackend(WordBackend requested)
{
    if (requested != WordBackend::Auto)
        return requested;
    if (const char *env = std::getenv("TRAQ_WORD_BACKEND")) {
        const std::string_view v(env);
        if (v.empty())
            return WordBackend::Wide;
        if (v == "64" || v == "scalar" || v == "scalar64")
            return WordBackend::Scalar64;
        if (v == "256" || v == "wide" || v == "wide256")
            return WordBackend::Wide;
        if (v == "512" || v == "wide512")
            return WordBackend::Wide512;
        TRAQ_FATAL("unknown TRAQ_WORD_BACKEND value '" +
                   std::string(v) +
                   "' (known: 64/scalar/scalar64, "
                   "256/wide/wide256, 512/wide512)");
    }
    return WordBackend::Wide;
}

unsigned
wordBackendLanes(WordBackend backend)
{
    switch (resolveWordBackend(backend)) {
      case WordBackend::Scalar64:
        return 1;
      case WordBackend::Wide512:
        return kWide512WordLanes;
      default:
        return kWideWordLanes;
    }
}

const char *
wordBackendName(WordBackend backend)
{
    switch (resolveWordBackend(backend)) {
      case WordBackend::Scalar64:
        return "scalar64";
      case WordBackend::Wide512:
        return kWide512WordLanes == 1 ? "wide512(64)" : "wide512";
      default:
        return kWideWordLanes == 1 ? "wide(64)" : "wide256";
    }
}

const char *
wordBackendCodegen()
{
#if defined(__AVX512F__)
    return "avx512f";
#elif defined(__AVX2__)
    return "avx2";
#else
    return "baseline";
#endif
}

} // namespace traq
