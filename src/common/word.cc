#include "src/common/word.hh"

#include <cstdlib>
#include <string>
#include <string_view>

#include "src/common/assert.hh"

namespace traq {

WordBackend
resolveWordBackend(WordBackend requested)
{
    if (requested != WordBackend::Auto)
        return requested;
    if (const char *env = std::getenv("TRAQ_WORD_BACKEND")) {
        const std::string_view v(env);
        if (v.empty())
            return WordBackend::Wide;
        if (v == "64" || v == "scalar" || v == "scalar64")
            return WordBackend::Scalar64;
        if (v == "256" || v == "wide" || v == "wide256")
            return WordBackend::Wide;
        if (v == "512" || v == "wide512")
            return WordBackend::Wide512;
        TRAQ_FATAL("unknown TRAQ_WORD_BACKEND value '" +
                   std::string(v) +
                   "' (known: 64/scalar/scalar64, "
                   "256/wide/wide256, 512/wide512)");
    }
    return WordBackend::Wide;
}

unsigned
wordBackendLanes(WordBackend backend)
{
    switch (resolveWordBackend(backend)) {
      case WordBackend::Scalar64:
        return 1;
      case WordBackend::Wide512:
        return kWide512WordLanes;
      default:
        return kWideWordLanes;
    }
}

const char *
wordBackendName(WordBackend backend)
{
    switch (resolveWordBackend(backend)) {
      case WordBackend::Scalar64:
        return "scalar64";
      case WordBackend::Wide512:
        return kWide512WordLanes == 1 ? "wide512(64)" : "wide512";
      default:
        return kWideWordLanes == 1 ? "wide(64)" : "wide256";
    }
}

const char *
wordBackendCompiled()
{
#if defined(__AVX512F__)
    return "avx512f";
#elif defined(__AVX2__)
    return "avx2";
#else
    return "baseline";
#endif
}

bool
cpuDispatchSupported(CpuDispatch level)
{
    switch (level) {
      case CpuDispatch::Auto:
      case CpuDispatch::Baseline:
        return true;
      case CpuDispatch::Avx2:
#if defined(TRAQ_DISPATCH_NO_AVX2) ||                               \
    !(defined(__x86_64__) || defined(__i386__))
        return false;
#else
        return __builtin_cpu_supports("avx2") != 0;
#endif
      case CpuDispatch::Avx512:
#if defined(TRAQ_DISPATCH_NO_AVX512) ||                             \
    !(defined(__x86_64__) || defined(__i386__))
        return false;
#else
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512bw") != 0;
#endif
    }
    return false;
}

namespace {

/** Best level this build + CPU can run (never below Baseline). */
CpuDispatch
bestSupportedDispatch()
{
    if (cpuDispatchSupported(CpuDispatch::Avx512))
        return CpuDispatch::Avx512;
    if (cpuDispatchSupported(CpuDispatch::Avx2))
        return CpuDispatch::Avx2;
    return CpuDispatch::Baseline;
}

/** Fatal unless the concrete level can actually run here. */
CpuDispatch
requireSupported(CpuDispatch level)
{
    if (!cpuDispatchSupported(level))
        TRAQ_FATAL(std::string("CPU dispatch level '") +
                   cpuDispatchName(level) +
                   "' is not supported by this build/CPU "
                   "(refusing to silently degrade; use "
                   "TRAQ_CPU_DISPATCH=baseline or =auto)");
    return level;
}

} // namespace

CpuDispatch
resolveCpuDispatch(CpuDispatch requested)
{
    if (requested != CpuDispatch::Auto)
        return requireSupported(requested);
    if (const char *env = std::getenv("TRAQ_CPU_DISPATCH")) {
        const std::string_view v(env);
        if (v.empty() || v == "auto")
            return bestSupportedDispatch();
        if (v == "baseline")
            return CpuDispatch::Baseline;
        if (v == "avx2")
            return requireSupported(CpuDispatch::Avx2);
        if (v == "avx512" || v == "avx512f")
            return requireSupported(CpuDispatch::Avx512);
        TRAQ_FATAL("unknown TRAQ_CPU_DISPATCH value '" +
                   std::string(v) +
                   "' (known: auto, baseline, avx2, "
                   "avx512/avx512f)");
    }
    return bestSupportedDispatch();
}

const char *
cpuDispatchName(CpuDispatch level)
{
    switch (level) {
      case CpuDispatch::Auto:
        return "auto";
      case CpuDispatch::Baseline:
        return "baseline";
      case CpuDispatch::Avx2:
        return "avx2";
      case CpuDispatch::Avx512:
        return "avx512";
    }
    return "baseline";
}

} // namespace traq
