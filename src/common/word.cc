#include "src/common/word.hh"

#include <cstdlib>
#include <string_view>

namespace traq {

WordBackend
resolveWordBackend(WordBackend requested)
{
    if (requested != WordBackend::Auto)
        return requested;
    if (const char *env = std::getenv("TRAQ_WORD_BACKEND")) {
        const std::string_view v(env);
        if (v == "64" || v == "scalar" || v == "scalar64")
            return WordBackend::Scalar64;
    }
    return WordBackend::Wide;
}

unsigned
wordBackendLanes(WordBackend backend)
{
    return resolveWordBackend(backend) == WordBackend::Scalar64
               ? 1
               : kWideWordLanes;
}

const char *
wordBackendName(WordBackend backend)
{
    switch (resolveWordBackend(backend)) {
      case WordBackend::Scalar64:
        return "scalar64";
      default:
        return kWideWordLanes == 1 ? "wide(64)" : "wide256";
    }
}

} // namespace traq
