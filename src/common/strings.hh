/**
 * @file
 * Small string utilities used by the circuit parser and reports.
 */

#ifndef TRAQ_COMMON_STRINGS_HH
#define TRAQ_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace traq {

/** Split on any run of whitespace; no empty tokens. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Split on a single-character delimiter, keeping empty fields. */
std::vector<std::string> splitChar(std::string_view s, char delim);

/** Trim ASCII whitespace from both ends. */
std::string_view trim(std::string_view s);

/** Join elements with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** True if s begins with prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Uppercase an ASCII string. */
std::string toUpper(std::string_view s);

} // namespace traq

#endif // TRAQ_COMMON_STRINGS_HH
