#include "src/common/castore.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sys/file.h>
#include <vector>

#include "src/common/assert.hh"

namespace traq {
namespace {

constexpr char kFileMagic[8] = {'T', 'R', 'A', 'Q',
                                'C', 'A', 'S', '1'};
constexpr std::uint32_t kRecordMagic = 0x51525443u; // "CTRQ" LE
/** Per-field sanity bound: a length beyond this is corruption, not
 *  a real record (keys/values are JSON strings, not blobs). */
constexpr std::uint32_t kMaxFieldLen = 1u << 30;

std::uint64_t
fnv1a(std::uint64_t h, const std::string &bytes)
{
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
recordChecksum(const std::string &key, const std::string &value)
{
    return fnv1a(fnv1a(0xcbf29ce484222325ULL, key), value);
}

void
putLe32(std::string &out, std::uint32_t x)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((x >> (8 * i)) & 0xff));
}

void
putLe64(std::string &out, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((x >> (8 * i)) & 0xff));
}

std::uint32_t
getLe32(const char *p)
{
    std::uint32_t x = 0;
    for (int i = 3; i >= 0; --i)
        x = (x << 8) | static_cast<unsigned char>(p[i]);
    return x;
}

std::uint64_t
getLe64(const char *p)
{
    std::uint64_t x = 0;
    for (int i = 7; i >= 0; --i)
        x = (x << 8) | static_cast<unsigned char>(p[i]);
    return x;
}

std::string
encodeRecord(const std::string &key, const std::string &value)
{
    std::string rec;
    rec.reserve(20 + key.size() + value.size());
    putLe32(rec, kRecordMagic);
    putLe32(rec, static_cast<std::uint32_t>(key.size()));
    putLe32(rec, static_cast<std::uint32_t>(value.size()));
    putLe64(rec, recordChecksum(key, value));
    rec += key;
    rec += value;
    return rec;
}

/**
 * Take the single-writer lock on an open store file, failing loudly
 * when another holder exists.  flock() locks the open file
 * description, so this rejects both a second process and a second
 * CaStore in this process — concurrent appends would interleave
 * records and the "corruption lives only at the tail" recovery
 * guarantee would be gone.  Dispatchers that shard work across
 * processes give each worker its own store file instead (the
 * traq_dispatch per-worker ".wN" suffix).
 */
void
lockSingleWriter(std::FILE *file, const std::string &path)
{
    if (::flock(fileno(file), LOCK_EX | LOCK_NB) == 0)
        return;
    const int err = errno;
    std::fclose(file);
    if (err == EWOULDBLOCK || err == EAGAIN)
        TRAQ_FATAL("castore: '" + path +
                   "' is locked by another process (stores are "
                   "single-writer; give each worker its own cache "
                   "file)");
    TRAQ_FATAL("castore: cannot lock '" + path +
               "': " + std::strerror(err));
}

} // namespace

CaStore::~CaStore()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
CaStore::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TRAQ_REQUIRE(file_ == nullptr, "CaStore::open: already open");
    TRAQ_REQUIRE(!path.empty(), "CaStore::open: empty path");
    path_ = path;
    map_.clear();
    loadStats_ = {};

    // "a+b" creates the file when absent and never truncates; reads
    // start wherever we seek, appends always land at the end.
    std::FILE *f = std::fopen(path.c_str(), "a+b");
    if (f == nullptr)
        TRAQ_FATAL("castore: cannot open or create '" + path + "'");
    lockSingleWriter(f, path_); // closes f and throws on failure
    file_ = f;
    std::fseek(file_, 0, SEEK_END);
    const long fileSize = std::ftell(file_);
    if (fileSize == 0) {
        // Fresh (or freshly created) store: stamp the header.
        std::fwrite(kFileMagic, 1, sizeof(kFileMagic), file_);
        std::fflush(file_);
        return;
    }

    std::fseek(file_, 0, SEEK_SET);
    std::vector<char> buf(static_cast<std::size_t>(fileSize));
    const std::size_t got =
        std::fread(buf.data(), 1, buf.size(), file_);
    buf.resize(got);

    std::size_t off = 0;
    bool bad = false;
    if (buf.size() < sizeof(kFileMagic) ||
        std::memcmp(buf.data(), kFileMagic, sizeof(kFileMagic)) !=
            0) {
        std::fprintf(stderr,
                     "castore: '%s' has no valid header (%zu "
                     "bytes); rebuilding as an empty store\n",
                     path.c_str(), buf.size());
        bad = true;
        ++loadStats_.droppedRecords;
    } else {
        off = sizeof(kFileMagic);
        while (off < buf.size()) {
            const std::size_t remaining = buf.size() - off;
            if (remaining < 20) {
                bad = true; // torn record header
                break;
            }
            const char *p = buf.data() + off;
            const std::uint32_t magic = getLe32(p);
            const std::uint32_t keyLen = getLe32(p + 4);
            const std::uint32_t valLen = getLe32(p + 8);
            const std::uint64_t sum = getLe64(p + 12);
            if (magic != kRecordMagic || keyLen > kMaxFieldLen ||
                valLen > kMaxFieldLen ||
                remaining - 20 <
                    static_cast<std::size_t>(keyLen) + valLen) {
                bad = true;
                break;
            }
            std::string key(p + 20, keyLen);
            std::string value(p + 20 + keyLen, valLen);
            if (recordChecksum(key, value) != sum) {
                bad = true;
                break;
            }
            // Append-only: the first occurrence of a key wins.
            if (map_.emplace(std::move(key), std::move(value))
                    .second)
                ++loadStats_.entries;
            off += 20 + static_cast<std::size_t>(keyLen) + valLen;
        }
        if (bad) {
            // Count the bad record; anything after it is hidden
            // behind a possibly-corrupt length field, so it is
            // dropped wholesale and reported by byte count.
            ++loadStats_.droppedRecords;
            std::fprintf(
                stderr,
                "castore: '%s' is truncated or corrupt at offset "
                "%zu (%zu trailing bytes dropped); keeping %zu "
                "valid entries and rebuilding\n",
                path.c_str(), off, buf.size() - off,
                loadStats_.entries);
        }
    }

    if (bad) {
        loadStats_.recovered = true;
        rebuild();
    }
}

void
CaStore::rebuild()
{
    // Rewrite header + surviving records to a sibling file, then
    // rename over the damaged one — a crash mid-rebuild leaves
    // either the old recoverable file or the new valid one.
    const std::string tmp = path_ + ".rebuild";
    std::FILE *out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr)
        TRAQ_FATAL("castore: cannot create rebuild file '" + tmp +
                   "'");
    std::fwrite(kFileMagic, 1, sizeof(kFileMagic), out);
    for (const auto &[key, value] : map_) {
        const std::string rec = encodeRecord(key, value);
        std::fwrite(rec.data(), 1, rec.size(), out);
    }
    std::fflush(out);
    std::fclose(out);
    std::fclose(file_);
    file_ = nullptr;
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        TRAQ_FATAL("castore: cannot replace '" + path_ +
                   "' with its rebuild");
    std::FILE *f = std::fopen(path_.c_str(), "a+b");
    if (f == nullptr)
        TRAQ_FATAL("castore: cannot reopen rebuilt '" + path_ +
                   "'");
    // The rename dropped the lock with the old inode; retake it on
    // the rebuilt file before any further appends.
    lockSingleWriter(f, path_);
    file_ = f;
}

bool
CaStore::get(const std::string &key, std::string &value) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end())
        return false;
    value = it->second;
    return true;
}

bool
CaStore::put(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TRAQ_REQUIRE(file_ != nullptr, "CaStore::put before open");
    if (!map_.emplace(key, value).second)
        return false;
    const std::string rec = encodeRecord(key, value);
    std::fwrite(rec.data(), 1, rec.size(), file_);
    std::fflush(file_);
    return true;
}

std::size_t
CaStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

void
CaStore::forEach(const std::function<void(const std::string &,
                                          const std::string &)> &fn)
    const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, value] : map_)
        fn(key, value);
}

std::string
resolveCacheFile(const std::string &requested)
{
    if (!requested.empty())
        return requested;
    if (const char *env = std::getenv("TRAQ_CACHE_FILE"))
        return env;
    return "";
}

} // namespace traq
