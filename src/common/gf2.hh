/**
 * @file
 * Dense GF(2) linear algebra on bit-packed rows.
 *
 * Used by the generic CSS-code machinery (stabilizer rank, logical
 * operator extraction, brute-force distance checks on small codes).
 * Rows are packed 64 columns per word; all sizes here are small
 * (hundreds of columns), so dense Gaussian elimination is appropriate.
 */

#ifndef TRAQ_COMMON_GF2_HH
#define TRAQ_COMMON_GF2_HH

#include <cstdint>
#include <vector>

namespace traq {

/** A dense matrix over GF(2) with bit-packed rows. */
class Gf2Matrix
{
  public:
    Gf2Matrix() = default;

    /** rows x cols all-zero matrix. */
    Gf2Matrix(std::size_t rows, std::size_t cols);

    /** Build from explicit 0/1 entries (row-major vectors). */
    static Gf2Matrix
    fromRows(const std::vector<std::vector<int>> &rows);

    std::size_t rows() const { return nRows_; }
    std::size_t cols() const { return nCols_; }

    bool get(std::size_t r, std::size_t c) const;
    void set(std::size_t r, std::size_t c, bool v);

    /** XOR row src into row dst. */
    void xorRow(std::size_t dst, std::size_t src);

    void swapRows(std::size_t a, std::size_t b);

    /** Matrix product over GF(2). */
    Gf2Matrix multiply(const Gf2Matrix &rhs) const;

    Gf2Matrix transpose() const;

    /**
     * In-place row reduction to (column-)echelon form.
     * @return the rank.  pivots, if non-null, receives the pivot column
     * of each of the first rank rows.
     */
    std::size_t rowReduce(std::vector<std::size_t> *pivots = nullptr);

    /** Rank without modifying this matrix. */
    std::size_t rank() const;

    /**
     * Basis of the null space {x : M x = 0}, one row per basis vector
     * (each of length cols()).
     */
    Gf2Matrix nullSpace() const;

    /**
     * Try to solve M x = b.
     * @return true and fill x on success; false if inconsistent.
     */
    bool solve(const std::vector<int> &b, std::vector<int> *x) const;

    /** Row r as a 0/1 vector. */
    std::vector<int> rowVector(std::size_t r) const;

    /** Weight (number of ones) of row r. */
    std::size_t rowWeight(std::size_t r) const;

    /** Append a row given as a 0/1 vector (must match cols()). */
    void appendRow(const std::vector<int> &row);

  private:
    std::size_t nRows_ = 0;
    std::size_t nCols_ = 0;
    std::size_t wordsPerRow_ = 0;
    std::vector<std::uint64_t> bits_;

    std::uint64_t *rowPtr(std::size_t r);
    const std::uint64_t *rowPtr(std::size_t r) const;
};

} // namespace traq

#endif // TRAQ_COMMON_GF2_HH
