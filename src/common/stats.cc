#include "src/common/stats.hh"

#include <cmath>

#include "src/common/assert.hh"

namespace traq {

Proportion
wilson(std::uint64_t hits, std::uint64_t shots, double z)
{
    Proportion p;
    p.hits = hits;
    p.shots = shots;
    if (shots == 0)
        return p;
    double n = static_cast<double>(shots);
    double phat = static_cast<double>(hits) / n;
    p.mean = phat;
    double z2 = z * z;
    double denom = 1.0 + z2 / n;
    double center = (phat + z2 / (2.0 * n)) / denom;
    double half = z * std::sqrt(phat * (1.0 - phat) / n +
                                z2 / (4.0 * n * n)) / denom;
    p.lo = center - half;
    p.hi = center + half;
    if (p.lo < 0.0)
        p.lo = 0.0;
    if (p.hi > 1.0)
        p.hi = 1.0;
    return p;
}

void
Tally::ensureBins(std::size_t n)
{
    if (binHits.size() < n)
        binHits.resize(n, 0);
}

Tally &
Tally::merge(const Tally &other)
{
    TRAQ_REQUIRE(binHits.size() == other.binHits.size() ||
                     binHits.empty() || other.binHits.empty(),
                 "merging tallies with different bin counts");
    shots += other.shots;
    anyHits += other.anyHits;
    weight += other.weight;
    aux += other.aux;
    aux2 += other.aux2;
    aux3 += other.aux3;
    aux4 += other.aux4;
    ensureBins(other.binHits.size());
    for (std::size_t i = 0; i < other.binHits.size(); ++i)
        binHits[i] += other.binHits[i];
    return *this;
}

Proportion
Tally::binProportion(std::size_t bin, double z) const
{
    TRAQ_REQUIRE(bin < binHits.size(), "tally bin out of range");
    return wilson(binHits[bin], shots, z);
}

Proportion
Tally::anyProportion(double z) const
{
    return wilson(anyHits, shots, z);
}

void
RunningStats::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

LineFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    TRAQ_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
                 "fitLine needs at least two (x, y) pairs");
    double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    TRAQ_REQUIRE(denom != 0.0, "fitLine: degenerate x values");
    LineFit f;
    f.slope = (n * sxy - sx * sy) / denom;
    f.intercept = (sy - f.slope * sx) / n;
    double ssTot = syy - sy * sy / n;
    double ssRes = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double r = ys[i] - (f.intercept + f.slope * xs[i]);
        ssRes += r * r;
    }
    f.r2 = (ssTot > 0) ? 1.0 - ssRes / ssTot : 1.0;
    return f;
}

} // namespace traq
