/**
 * @file
 * Persistent content-addressed store (caching tier 3).
 *
 * An append-only, checksummed key/value file: the disk form of the
 * service layer's canonicalKey result cache, so warm-cache
 * throughput survives process restarts and a store file can be
 * copied between workers.  Keys are canonical request keys, values
 * are the exact service-shaped JSON the queue would emit — replaying
 * a stored value is byte-identical to re-evaluating by construction
 * (estimators are deterministic pure functions).
 *
 * Format: an 8-byte file magic ("TRAQCAS1"), then records of
 *   u32 record magic | u32 keyLen | u32 valLen |
 *   u64 FNV-1a(key bytes, value bytes) | key | value
 * with all integers little-endian.  Append-only means corruption
 * can only live at the tail (a torn write) or from external
 * tampering; open() verifies every record and on the first bad one
 * it *loudly* warns on stderr, drops the bad suffix, and rebuilds
 * the file from the valid prefix — never TRAQ_FATAL for a
 * recoverable file, because a service must come back up after a
 * crash mid-append.  An unopenable path (missing directory,
 * permissions) IS fatal: that is a configuration error, not a
 * recoverable state.
 *
 * Concurrency: one writer per file, enforced.  open() takes an
 * exclusive flock() on the store and fails loudly — never blocks,
 * never silently shares — when another holder exists (a second
 * process, or a second CaStore in this process).  Concurrent
 * appends would interleave records and void the "corruption lives
 * only at the tail" recovery guarantee.  Sharing across workers
 * means copying the file or giving each worker its own (the
 * traq_dispatch sharder suffixes a per-worker ".wN"), not
 * concurrent appends.  Within one process, appends on the single
 * owner are serialized by an internal mutex.
 */

#ifndef TRAQ_COMMON_CASTORE_HH
#define TRAQ_COMMON_CASTORE_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

namespace traq {

/** Append-only checksummed key/value store; see the file comment. */
class CaStore
{
  public:
    /** What open() found (and possibly repaired). */
    struct LoadStats
    {
        /** Records loaded (first occurrence of each key wins). */
        std::size_t entries = 0;
        /** Bad records *detected* (at most one per open: parsing
         *  stops at the first, because a bad length field hides
         *  every record boundary after it — that suffix is dropped
         *  wholesale and reported by byte count on stderr). */
        std::size_t droppedRecords = 0;
        /** True when the file was rebuilt from its valid prefix. */
        bool recovered = false;
    };

    CaStore() = default;
    ~CaStore();

    CaStore(const CaStore &) = delete;
    CaStore &operator=(const CaStore &) = delete;

    /**
     * Open (creating if absent) the store at @p path, loading every
     * valid record.  Truncation/corruption is detected by record
     * magic + lengths + checksum, warned about loudly on stderr, and
     * repaired by rebuilding the file from the valid prefix.  Throws
     * FatalError only when the path cannot be opened or created.
     */
    void open(const std::string &path);

    /** True after a successful open(). */
    bool attached() const { return file_ != nullptr; }

    /** Fetch a value; returns false when the key is absent. */
    bool get(const std::string &key, std::string &value) const;

    /**
     * Append a record (no-op returning false when the key is already
     * present — append-only stores never rewrite history).  The
     * record is flushed before returning so a crash after put() is
     * at worst a torn *next* record.
     */
    bool put(const std::string &key, const std::string &value);

    /** Resident entry count. */
    std::size_t size() const;

    /** Visit every entry (under the store lock). */
    void forEach(const std::function<void(const std::string &,
                                          const std::string &)> &fn)
        const;

    const LoadStats &loadStats() const { return loadStats_; }

    const std::string &path() const { return path_; }

  private:
    void rebuild();

    mutable std::mutex mutex_;
    std::string path_;
    std::FILE *file_ = nullptr;
    std::unordered_map<std::string, std::string> map_;
    LoadStats loadStats_;
};

/**
 * Resolve the persistent-store path: an explicit non-empty
 * @p requested wins, otherwise the TRAQ_CACHE_FILE environment
 * variable, otherwise "" (no persistent tier).  Any non-empty value
 * is a filesystem path; a path that cannot be opened fails loudly in
 * CaStore::open().
 */
std::string resolveCacheFile(const std::string &requested);

} // namespace traq

#endif // TRAQ_COMMON_CASTORE_HH
