#include "src/common/rng.hh"

#include <cmath>

namespace traq {
namespace {

inline std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : Rng(seed, 0)
{}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // splitmix64 advances its state by a fixed gamma per draw, so
    // starting stream k at seed + 4k*gamma hands it the k-th disjoint
    // 4-word window of the same splitmix sequence; stream 0 matches
    // the plain Rng(seed) construction exactly.
    std::uint64_t sm = seed + stream * (4 * 0x9e3779b97f4a7c15ULL);
    for (auto &word : s_)
        word = splitmix64(sm);
    // Avoid the all-zero state (cannot occur from splitmix64 in
    // practice, but cheap to guarantee).
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = (~bound + 1) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::bernoulliWord(double p)
{
    std::uint64_t w;
    bernoulliPlane(p, &w, 1);
    return w;
}

void
Rng::bernoulliPlane(double p, std::uint64_t *words,
                    std::size_t numWords)
{
    // !(p > 0) also routes NaN to the all-zeros branch.
    if (!(p > 0.0)) {
        for (std::size_t w = 0; w < numWords; ++w)
            words[w] = 0;
        return;
    }
    if (p >= 1.0) {
        for (std::size_t w = 0; w < numWords; ++w)
            words[w] = ~0ULL;
        return;
    }

    // Geometric gap sampling: the number of failures before the next
    // success is floor(log(u) / log(1 - p)) for u uniform on (0, 1).
    // Walking successes instead of trials costs one log per set bit
    // plus one per plane, so at physical error rates the plane cost
    // is dominated by the single terminating draw — and halves again
    // every time the plane width doubles.
    auto sparseFill = [&](double q, bool setOnes) {
        const double invLogQ = 1.0 / std::log1p(-q);
        const double total =
            static_cast<double>(numWords) * 64.0;
        double pos = 0.0;
        for (;;) {
            double u = uniform();
            while (u == 0.0) // 2^-53 tail; redraw keeps u in (0, 1)
                u = uniform();
            pos += std::floor(std::log(u) * invLogQ);
            if (pos >= total)
                break;
            const auto bit = static_cast<std::uint64_t>(pos);
            if (setOnes)
                words[bit >> 6] |= 1ULL << (bit & 63);
            else
                words[bit >> 6] &= ~(1ULL << (bit & 63));
            pos += 1.0;
        }
    };

    if (p <= 0.25) {
        for (std::size_t w = 0; w < numWords; ++w)
            words[w] = 0;
        sparseFill(p, /*setOnes=*/true);
    } else if (p >= 0.75) {
        // Dense: start from all-ones and clear the (sparse) zeros.
        for (std::size_t w = 0; w < numWords; ++w)
            words[w] = ~0ULL;
        sparseFill(1.0 - p, /*setOnes=*/false);
    } else {
        for (std::size_t w = 0; w < numWords; ++w) {
            std::uint64_t bits = 0;
            for (int i = 0; i < 64; ++i)
                bits |= static_cast<std::uint64_t>(uniform() < p)
                        << i;
            words[w] = bits;
        }
    }
}

} // namespace traq
