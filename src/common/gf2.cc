#include "src/common/gf2.hh"

#include <algorithm>

#include "src/common/assert.hh"

namespace traq {

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : nRows_(rows), nCols_(cols),
      wordsPerRow_((cols + 63) / 64),
      bits_(rows * wordsPerRow_, 0)
{}

Gf2Matrix
Gf2Matrix::fromRows(const std::vector<std::vector<int>> &rows)
{
    TRAQ_REQUIRE(!rows.empty(), "fromRows: empty row list");
    Gf2Matrix m(rows.size(), rows[0].size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        TRAQ_REQUIRE(rows[r].size() == m.nCols_,
                     "fromRows: ragged row lengths");
        for (std::size_t c = 0; c < m.nCols_; ++c)
            if (rows[r][c] & 1)
                m.set(r, c, true);
    }
    return m;
}

std::uint64_t *
Gf2Matrix::rowPtr(std::size_t r)
{
    return bits_.data() + r * wordsPerRow_;
}

const std::uint64_t *
Gf2Matrix::rowPtr(std::size_t r) const
{
    return bits_.data() + r * wordsPerRow_;
}

bool
Gf2Matrix::get(std::size_t r, std::size_t c) const
{
    TRAQ_ASSERT(r < nRows_ && c < nCols_, "Gf2Matrix::get out of range");
    return (rowPtr(r)[c / 64] >> (c % 64)) & 1;
}

void
Gf2Matrix::set(std::size_t r, std::size_t c, bool v)
{
    TRAQ_ASSERT(r < nRows_ && c < nCols_, "Gf2Matrix::set out of range");
    std::uint64_t mask = 1ULL << (c % 64);
    if (v)
        rowPtr(r)[c / 64] |= mask;
    else
        rowPtr(r)[c / 64] &= ~mask;
}

void
Gf2Matrix::xorRow(std::size_t dst, std::size_t src)
{
    std::uint64_t *d = rowPtr(dst);
    const std::uint64_t *s = rowPtr(src);
    for (std::size_t w = 0; w < wordsPerRow_; ++w)
        d[w] ^= s[w];
}

void
Gf2Matrix::swapRows(std::size_t a, std::size_t b)
{
    if (a == b)
        return;
    std::uint64_t *pa = rowPtr(a);
    std::uint64_t *pb = rowPtr(b);
    for (std::size_t w = 0; w < wordsPerRow_; ++w)
        std::swap(pa[w], pb[w]);
}

Gf2Matrix
Gf2Matrix::multiply(const Gf2Matrix &rhs) const
{
    TRAQ_REQUIRE(nCols_ == rhs.nRows_, "Gf2Matrix::multiply shape");
    Gf2Matrix out(nRows_, rhs.nCols_);
    for (std::size_t r = 0; r < nRows_; ++r) {
        for (std::size_t k = 0; k < nCols_; ++k) {
            if (get(r, k)) {
                std::uint64_t *o = out.rowPtr(r);
                const std::uint64_t *s = rhs.rowPtr(k);
                for (std::size_t w = 0; w < out.wordsPerRow_; ++w)
                    o[w] ^= s[w];
            }
        }
    }
    return out;
}

Gf2Matrix
Gf2Matrix::transpose() const
{
    Gf2Matrix out(nCols_, nRows_);
    for (std::size_t r = 0; r < nRows_; ++r)
        for (std::size_t c = 0; c < nCols_; ++c)
            if (get(r, c))
                out.set(c, r, true);
    return out;
}

std::size_t
Gf2Matrix::rowReduce(std::vector<std::size_t> *pivots)
{
    std::size_t rank = 0;
    if (pivots)
        pivots->clear();
    for (std::size_t col = 0; col < nCols_ && rank < nRows_; ++col) {
        std::size_t pivot = rank;
        while (pivot < nRows_ && !get(pivot, col))
            ++pivot;
        if (pivot == nRows_)
            continue;
        swapRows(rank, pivot);
        for (std::size_t r = 0; r < nRows_; ++r)
            if (r != rank && get(r, col))
                xorRow(r, rank);
        if (pivots)
            pivots->push_back(col);
        ++rank;
    }
    return rank;
}

std::size_t
Gf2Matrix::rank() const
{
    Gf2Matrix copy = *this;
    return copy.rowReduce();
}

Gf2Matrix
Gf2Matrix::nullSpace() const
{
    Gf2Matrix red = *this;
    std::vector<std::size_t> pivots;
    std::size_t rank = red.rowReduce(&pivots);

    std::vector<bool> isPivot(nCols_, false);
    for (std::size_t c : pivots)
        isPivot[c] = true;

    std::vector<std::size_t> freeCols;
    for (std::size_t c = 0; c < nCols_; ++c)
        if (!isPivot[c])
            freeCols.push_back(c);

    Gf2Matrix basis(freeCols.size(), nCols_);
    for (std::size_t i = 0; i < freeCols.size(); ++i) {
        std::size_t fc = freeCols[i];
        basis.set(i, fc, true);
        // Back-substitute: pivot row r has pivot column pivots[r]; the
        // value of that pivot variable equals the row's entry at fc.
        for (std::size_t r = 0; r < rank; ++r)
            if (red.get(r, fc))
                basis.set(i, pivots[r], true);
    }
    return basis;
}

bool
Gf2Matrix::solve(const std::vector<int> &b, std::vector<int> *x) const
{
    TRAQ_REQUIRE(b.size() == nRows_, "Gf2Matrix::solve: rhs size");
    // Augment with b as an extra column.
    Gf2Matrix aug(nRows_, nCols_ + 1);
    for (std::size_t r = 0; r < nRows_; ++r) {
        for (std::size_t c = 0; c < nCols_; ++c)
            if (get(r, c))
                aug.set(r, c, true);
        if (b[r] & 1)
            aug.set(r, nCols_, true);
    }
    std::vector<std::size_t> pivots;
    std::size_t rank = aug.rowReduce(&pivots);
    // Inconsistent if any pivot landed in the augmented column.
    for (std::size_t r = 0; r < rank; ++r)
        if (pivots[r] == nCols_)
            return false;
    if (x) {
        x->assign(nCols_, 0);
        for (std::size_t r = 0; r < rank; ++r)
            if (aug.get(r, nCols_))
                (*x)[pivots[r]] = 1;
    }
    return true;
}

std::vector<int>
Gf2Matrix::rowVector(std::size_t r) const
{
    std::vector<int> v(nCols_, 0);
    for (std::size_t c = 0; c < nCols_; ++c)
        v[c] = get(r, c) ? 1 : 0;
    return v;
}

std::size_t
Gf2Matrix::rowWeight(std::size_t r) const
{
    std::size_t w = 0;
    const std::uint64_t *p = rowPtr(r);
    for (std::size_t i = 0; i < wordsPerRow_; ++i)
        w += static_cast<std::size_t>(__builtin_popcountll(p[i]));
    return w;
}

void
Gf2Matrix::appendRow(const std::vector<int> &row)
{
    TRAQ_REQUIRE(row.size() == nCols_ || nRows_ == 0,
                 "appendRow: width mismatch");
    if (nRows_ == 0 && nCols_ == 0) {
        nCols_ = row.size();
        wordsPerRow_ = (nCols_ + 63) / 64;
    }
    bits_.resize((nRows_ + 1) * wordsPerRow_, 0);
    ++nRows_;
    for (std::size_t c = 0; c < nCols_; ++c)
        if (row[c] & 1)
            set(nRows_ - 1, c, true);
}

} // namespace traq
