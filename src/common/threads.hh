/**
 * @file
 * Shared worker-thread-count policy for the parallel subsystems.
 *
 * Every parallel engine in traq (MonteCarloEngine, SweepRunner)
 * resolves its worker count the same way: an explicit option wins,
 * then the TRAQ_THREADS environment variable, then the hardware
 * concurrency.  Centralizing the rule keeps batch jobs and CI able
 * to pin parallelism for the whole process with one knob.
 */

#ifndef TRAQ_COMMON_THREADS_HH
#define TRAQ_COMMON_THREADS_HH

namespace traq {

/**
 * Resolve a worker-thread count.
 *
 * @param requested explicit request; > 0 wins unconditionally.
 * @return requested if positive; else TRAQ_THREADS if set to a
 *         positive integer; else std::thread::hardware_concurrency
 *         (at least 1).  Malformed or non-positive TRAQ_THREADS
 *         values are ignored.
 */
unsigned resolveThreadCount(unsigned requested);

} // namespace traq

#endif // TRAQ_COMMON_THREADS_HH
