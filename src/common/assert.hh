/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * traq::panic() is for internal invariant violations (bugs in traq
 * itself); traq::fatal() is for user errors (bad parameters, impossible
 * configurations).  Both print a location-tagged message; panic aborts
 * (so it can be caught by a debugger / produce a core), fatal throws a
 * std::runtime_error so library users and tests can recover.
 */

#ifndef TRAQ_COMMON_ASSERT_HH
#define TRAQ_COMMON_ASSERT_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace traq {

/** Exception type thrown by fatal() for user-recoverable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << file << ":" << line << ": " << msg;
    throw FatalError(oss.str());
}

} // namespace detail
} // namespace traq

/** Abort with a message; use for "should never happen" conditions. */
#define TRAQ_PANIC(msg)                                                     \
    ::traq::detail::panicImpl(__FILE__, __LINE__, (msg))

/** Throw FatalError; use for invalid user input / configuration. */
#define TRAQ_FATAL(msg)                                                     \
    ::traq::detail::fatalImpl(__FILE__, __LINE__, (msg))

/** Internal invariant check; compiled in all build types. */
#define TRAQ_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::traq::detail::panicImpl(__FILE__, __LINE__,                   \
                std::string("assertion failed: " #cond ": ") + (msg));      \
        }                                                                   \
    } while (0)

/** User-input validation; throws FatalError on failure. */
#define TRAQ_REQUIRE(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::traq::detail::fatalImpl(__FILE__, __LINE__,                   \
                std::string("requirement failed: " #cond ": ") + (msg));    \
        }                                                                   \
    } while (0)

#endif // TRAQ_COMMON_ASSERT_HH
