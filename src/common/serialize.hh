/**
 * @file
 * Serialization helpers shared by the sweep/report machinery: stable
 * textual encodings of doubles (exact round-trip), CSV field quoting
 * and JSON string escaping.
 *
 * Stability matters twice over: sweep outputs are diffed across runs
 * and thread counts (bit-identical results must serialize to
 * identical bytes), and memoization keys are built from serialized
 * parameter maps (two requests must collide exactly when their
 * parameters are bitwise equal).
 */

#ifndef TRAQ_COMMON_SERIALIZE_HH
#define TRAQ_COMMON_SERIALIZE_HH

#include <string>
#include <string_view>

namespace traq {

/**
 * Shortest decimal form of v that parses back to exactly the same
 * double (std::to_chars round-trip guarantee).  Non-finite values
 * encode as "nan", "inf", "-inf"; negative zero as "0".
 */
std::string fmtRoundTrip(double v);

/**
 * JSON number token for v.  Finite values use fmtRoundTrip; JSON has
 * no non-finite literals, so those encode as the quoted tags
 * "\"nan\"", "\"inf\"", "\"-inf\"" — the same spellings fmtRoundTrip
 * (and therefore est::canonicalKey) uses, and the ones
 * json::Value::asNumberOrTag accepts on input.  Request -> JSON ->
 * parse -> canonicalKey is a fixed point under this policy.
 */
std::string jsonNumber(double v);

/** Escape and double-quote a JSON string. */
std::string jsonQuote(std::string_view s);

/**
 * CSV field per RFC 4180: quoted (with doubled inner quotes) only
 * when the value contains a comma, quote, or newline.
 */
std::string csvField(std::string_view s);

} // namespace traq

#endif // TRAQ_COMMON_SERIALIZE_HH
