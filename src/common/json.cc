#include "src/common/json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/common/assert.hh"
#include "src/common/serialize.hh"

namespace traq::json {

std::string_view
kindName(Kind k)
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "unknown";
}

Value
Value::object(Object members)
{
    std::sort(members.begin(), members.end(),
              [](const Member &a, const Member &b) {
                  return a.first < b.first;
              });
    for (std::size_t i = 0; i + 1 < members.size(); ++i) {
        TRAQ_REQUIRE(members[i].first != members[i + 1].first,
                     "duplicate JSON object key '" +
                         members[i].first + "'");
    }
    return Value(Repr(std::move(members)));
}

Kind
Value::kind() const
{
    switch (repr_.index()) {
      case 0: return Kind::Null;
      case 1: return Kind::Bool;
      case 2: return Kind::Number;
      case 3: return Kind::String;
      case 4: return Kind::Array;
      default: return Kind::Object;
    }
}

namespace {

[[noreturn]] void
kindMismatch(Kind want, Kind got)
{
    TRAQ_FATAL("JSON value is " + std::string(kindName(got)) +
               ", expected " + std::string(kindName(want)));
}

} // namespace

bool
Value::asBool() const
{
    if (const bool *b = std::get_if<bool>(&repr_))
        return *b;
    kindMismatch(Kind::Bool, kind());
}

double
Value::asNumber() const
{
    if (const double *v = std::get_if<double>(&repr_))
        return *v;
    kindMismatch(Kind::Number, kind());
}

const std::string &
Value::asString() const
{
    if (const std::string *s = std::get_if<std::string>(&repr_))
        return *s;
    kindMismatch(Kind::String, kind());
}

const Value::Array &
Value::asArray() const
{
    if (const Array *a = std::get_if<Array>(&repr_))
        return *a;
    kindMismatch(Kind::Array, kind());
}

const Value::Object &
Value::asObject() const
{
    if (const Object *o = std::get_if<Object>(&repr_))
        return *o;
    kindMismatch(Kind::Object, kind());
}

double
Value::asNumberOrTag() const
{
    if (const double *v = std::get_if<double>(&repr_))
        return *v;
    if (const std::string *s = std::get_if<std::string>(&repr_)) {
        if (*s == "nan")
            return std::nan("");
        if (*s == "inf")
            return std::numeric_limits<double>::infinity();
        if (*s == "-inf")
            return -std::numeric_limits<double>::infinity();
        TRAQ_FATAL("JSON string '" + *s +
                   "' is not a number tag (expected \"nan\", "
                   "\"inf\" or \"-inf\")");
    }
    kindMismatch(Kind::Number, kind());
}

const Value *
Value::find(std::string_view key) const
{
    const Object &members = asObject();
    auto it = std::lower_bound(
        members.begin(), members.end(), key,
        [](const Member &m, std::string_view k) {
            return m.first < k;
        });
    if (it == members.end() || it->first != key)
        return nullptr;
    return &it->second;
}

const Value &
Value::at(std::string_view key) const
{
    const Value *v = find(key);
    if (v == nullptr)
        TRAQ_FATAL("JSON object has no member '" + std::string(key) +
                   "'");
    return *v;
}

std::string
Value::dump() const
{
    switch (kind()) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return asBool() ? "true" : "false";
      case Kind::Number:
        return jsonNumber(asNumber());
      case Kind::String:
        return jsonQuote(asString());
      case Kind::Array: {
        std::string out = "[";
        bool first = true;
        for (const Value &v : asArray()) {
            if (!first)
                out += ',';
            first = false;
            out += v.dump();
        }
        out += ']';
        return out;
      }
      case Kind::Object: {
        std::string out = "{";
        bool first = true;
        for (const Member &m : asObject()) {
            if (!first)
                out += ',';
            first = false;
            out += jsonQuote(m.first);
            out += ':';
            out += m.second.dump();
        }
        out += '}';
        return out;
      }
    }
    return "null";  // unreachable
}

namespace {

/**
 * Recursive-descent parser over a string_view.  Positions are plain
 * byte offsets; line/column are derived lazily on error so the happy
 * path carries no bookkeeping.
 */
class Parser
{
  public:
    Parser(std::string_view text, const ParseLimits &limits)
        : text_(text), limits_(limits)
    {}

    Value parseDocument()
    {
        Value v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &msg) const
    {
        // Derive the 1-based line/column of pos_ for the diagnostic.
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        TRAQ_FATAL("JSON parse error at line " +
                   std::to_string(line) + ", column " +
                   std::to_string(col) + ": " + msg);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWhitespace()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    void expect(char c, const char *what)
    {
        if (atEnd() || peek() != c)
            fail(std::string("expected ") + what);
        ++pos_;
    }

    /** True (and consume) if the literal is next. */
    bool consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    Value parseValue()
    {
        skipWhitespace();
        if (atEnd())
            fail("unexpected end of input, expected a value");
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Value::string(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value::boolean(true);
            fail("invalid literal (expected 'true')");
          case 'f':
            if (consumeLiteral("false"))
                return Value::boolean(false);
            fail("invalid literal (expected 'false')");
          case 'n':
            if (consumeLiteral("null"))
                return Value::null();
            fail("invalid literal (expected 'null')");
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return Value::number(parseNumber());
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    Value parseObject()
    {
        if (++depth_ > limits_.maxDepth)
            fail("nesting deeper than " +
                 std::to_string(limits_.maxDepth) + " levels");
        expect('{', "'{'");
        Value::Object members;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            --depth_;
            return Value::object(std::move(members));
        }
        while (true) {
            skipWhitespace();
            if (atEnd() || peek() != '"')
                fail("expected a quoted object key");
            std::string key = parseString();
            skipWhitespace();
            expect(':', "':' after object key");
            Value v = parseValue();
            // Duplicate keys are rejected by Value::object's
            // post-sort check at object close — O(n log n), not a
            // per-member scan an untrusted fat object could turn
            // quadratic.
            members.emplace_back(std::move(key), std::move(v));
            skipWhitespace();
            if (atEnd())
                fail("unterminated object (expected ',' or '}')");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                break;
            }
            fail("expected ',' or '}' in object");
        }
        --depth_;
        return Value::object(std::move(members));
    }

    Value parseArray()
    {
        if (++depth_ > limits_.maxDepth)
            fail("nesting deeper than " +
                 std::to_string(limits_.maxDepth) + " levels");
        expect('[', "'['");
        Value::Array elems;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            --depth_;
            return Value::array(std::move(elems));
        }
        while (true) {
            elems.push_back(parseValue());
            skipWhitespace();
            if (atEnd())
                fail("unterminated array (expected ',' or ']')");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                break;
            }
            fail("expected ',' or ']' in array");
        }
        --depth_;
        return Value::array(std::move(elems));
    }

    std::string parseString()
    {
        expect('"', "'\"'");
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                fail("unterminated escape sequence");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (!consumeLiteral("\\u"))
                        fail("high surrogate not followed by "
                             "\\u low surrogate");
                    const unsigned lo = parseHex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail(std::string("invalid escape '\\") + esc + "'");
            }
        }
    }

    unsigned parseHex4()
    {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                fail("unterminated \\u escape");
            const char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return cp;
    }

    static void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    double parseNumber()
    {
        // Scan the token extent by the JSON number grammar first —
        // from_chars alone is laxer (it accepts "inf", hex floats,
        // leading zeros) than the loudness contract allows.
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        if (atEnd() || peek() < '0' || peek() > '9')
            fail("malformed number (expected a digit)");
        if (peek() == '0') {
            ++pos_;
            if (!atEnd() && peek() >= '0' && peek() <= '9')
                fail("malformed number (leading zero)");
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("malformed number (expected a fraction digit)");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("malformed number (expected an exponent "
                     "digit)");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        const std::string_view tok =
            text_.substr(start, pos_ - start);
        double v = 0.0;
        auto [ptr, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (ec == std::errc::result_out_of_range) {
            // from_chars reports both directions as out-of-range;
            // only overflow is an error.  Underflow (e.g. 1e-400)
            // rounds toward zero like every mainstream JSON parser.
            const double rounded =
                std::strtod(std::string(tok).c_str(), nullptr);
            if (std::isfinite(rounded))
                return rounded;
            pos_ = start;
            fail("number out of double range: '" +
                 std::string(tok) + "'");
        }
        if (ec != std::errc() || ptr != tok.data() + tok.size() ||
            !std::isfinite(v)) {
            pos_ = start;
            fail("malformed number '" + std::string(tok) + "'");
        }
        return v;
    }

    std::string_view text_;
    ParseLimits limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

} // namespace

Value
parse(std::string_view text, const ParseLimits &limits)
{
    Parser parser(text, limits);
    return parser.parseDocument();
}

} // namespace traq::json
