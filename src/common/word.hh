/**
 * @file
 * Wide bit-plane word configuration for the frame sampler.
 *
 * The bit-sliced simulator historically processed exactly 64 shots
 * per pass (one machine word).  This header generalizes the word to
 * a configurable number of 64-bit lanes: a "plane" of lanes * 64
 * Bernoulli trials is drawn in one call, frames are lanes words per
 * qubit, and one pass over the circuit simulates lanes * 64 shots.
 * Wider planes amortize both the per-instruction dispatch cost and
 * the at-least-one-RNG-draw-per-plane floor of the sparse Bernoulli
 * sampler (see Rng::bernoulliPlane), which is where the throughput
 * win over the 64-bit path comes from.
 *
 * Three backends are exposed:
 *  - Scalar64: the portable one-lane path (64 shots per batch);
 *  - Wide:     kWideWordLanes lanes (256-bit planes by default);
 *  - Wide512:  kWide512WordLanes lanes (512-bit planes by default).
 *
 * Selection is per run: engines take a WordBackend option whose Auto
 * value defers to the TRAQ_WORD_BACKEND environment variable ("64" /
 * "scalar" vs "256" / "wide" vs "512" / "wide512"), defaulting to
 * Wide.  An unrecognized TRAQ_WORD_BACKEND value throws FatalError
 * listing the known names — a typo'd backend must not silently fall
 * back to the default (same loudness contract as TRAQ_DECODER).
 * Each backend is individually deterministic — for a fixed backend,
 * any thread count reproduces the single-thread tallies
 * bit-identically — but distinct backends consume randomness in
 * different orders, so they agree statistically, not bit-for-bit
 * (and exactly on deterministic circuits).
 *
 * Orthogonal to the backend (how many lanes a plane has) is the
 * *dispatch level* (what vector ISA executes the lane loops).  The
 * frame-sampler kernels are compiled three times — baseline, AVX2,
 * AVX-512 — into one binary, and CpuDispatch picks the level at run
 * time via cpuid, so shipped builds get vector codegen by default
 * instead of behind the historical compile-time TRAQ_ENABLE_AVX2 /
 * TRAQ_ENABLE_AVX512 opt-ins (still honored: they raise the level
 * of the *baseline* translation units too).  The lane loops are
 * plain 64-bit XOR/AND/shift code, so every dispatch level produces
 * bit-identical planes on any x86-64 machine; the ISA only changes
 * how the compiler schedules them.  An unrecognized
 * TRAQ_CPU_DISPATCH value, or an explicitly requested level the
 * build or CPU cannot run, throws FatalError — same loudness
 * contract as TRAQ_WORD_BACKEND.
 *
 * Building with -DTRAQ_FORCE_WORD64 collapses the wide backends to a
 * single lane so CI can keep all code paths green from one test
 * suite.
 */

#ifndef TRAQ_COMMON_WORD_HH
#define TRAQ_COMMON_WORD_HH

namespace traq {

/** Lanes (64-bit words) per sampling plane of the wide backend. */
#ifdef TRAQ_FORCE_WORD64
inline constexpr unsigned kWideWordLanes = 1;
inline constexpr unsigned kWide512WordLanes = 1;
#else
inline constexpr unsigned kWideWordLanes = 4;    //!< 256-bit planes
inline constexpr unsigned kWide512WordLanes = 8; //!< 512-bit planes
#endif

/** Bit-plane backend selector for sampling engines. */
enum class WordBackend
{
    Auto,     //!< TRAQ_WORD_BACKEND env var, else Wide
    Scalar64, //!< portable one-lane path: 64 shots per batch
    Wide,     //!< kWideWordLanes lanes per batch
    Wide512,  //!< kWide512WordLanes lanes per batch
};

/**
 * Resolve Auto against the TRAQ_WORD_BACKEND environment variable
 * ("64"/"scalar"/"scalar64" -> Scalar64, "256"/"wide"/"wide256" ->
 * Wide, "512"/"wide512" -> Wide512, unset or empty -> Wide).  Any
 * other value throws FatalError listing the known names.  Scalar64,
 * Wide, and Wide512 pass through unchanged.
 */
WordBackend resolveWordBackend(WordBackend requested);

/** Lanes per plane for a resolved backend (Auto is resolved first). */
unsigned wordBackendLanes(WordBackend backend);

/** Short human-readable backend name ("scalar64" / "wide256" /
 *  "wide512"...). */
const char *wordBackendName(WordBackend backend);

/**
 * Compile-time vector codegen of the *core* library translation
 * units: "avx512f", "avx2", or "baseline".  This is what the
 * historical TRAQ_ENABLE_AVX2/512 CMake options control.  The
 * frame-sampler kernels are additionally compiled per dispatch level
 * (see CpuDispatch below), so the level that actually runs is
 * cpuDispatchName(resolveCpuDispatch(...)), not this.
 */
const char *wordBackendCompiled();

/**
 * Runtime CPU dispatch level for the multi-versioned sampler /
 * extraction kernels.  Orthogonal to WordBackend: the backend fixes
 * the plane width (shots per batch and RNG consumption order, hence
 * the sampled bits), the dispatch level only fixes which compiled
 * copy of the bit-identical lane loops executes.
 */
enum class CpuDispatch
{
    Auto,     //!< TRAQ_CPU_DISPATCH env var, else best supported
    Baseline, //!< portable x86-64 codegen
    Avx2,     //!< 256-bit vector codegen
    Avx512,   //!< 512-bit vector codegen
};

/**
 * True when this build carries a `level` copy of the kernels AND the
 * running CPU can execute it.  Baseline is always supported; Auto is
 * reported supported (it resolves to a supported level).
 */
bool cpuDispatchSupported(CpuDispatch level);

/**
 * Resolve Auto against the TRAQ_CPU_DISPATCH environment variable
 * ("baseline", "avx2", "avx512"/"avx512f"; unset, empty or "auto"
 * -> the highest cpuDispatchSupported level).  An unknown value
 * throws FatalError listing the known names, and a level that is
 * known but not supported (by this build or this CPU) — whether
 * requested explicitly or via the environment — throws FatalError
 * rather than silently degrading.  Baseline/Avx2/Avx512 arguments
 * pass through the same support check.
 */
CpuDispatch resolveCpuDispatch(CpuDispatch requested);

/** Short stable level name ("auto"/"baseline"/"avx2"/"avx512"). */
const char *cpuDispatchName(CpuDispatch level);

} // namespace traq

#endif // TRAQ_COMMON_WORD_HH
