/**
 * @file
 * Wide bit-plane word configuration for the frame sampler.
 *
 * The bit-sliced simulator historically processed exactly 64 shots
 * per pass (one machine word).  This header generalizes the word to
 * a configurable number of 64-bit lanes: a "plane" of lanes * 64
 * Bernoulli trials is drawn in one call, frames are lanes words per
 * qubit, and one pass over the circuit simulates lanes * 64 shots.
 * Wider planes amortize both the per-instruction dispatch cost and
 * the at-least-one-RNG-draw-per-plane floor of the sparse Bernoulli
 * sampler (see Rng::bernoulliPlane), which is where the throughput
 * win over the 64-bit path comes from; building the library with
 * -DTRAQ_ENABLE_AVX2=ON (or -DTRAQ_ENABLE_AVX512=ON) additionally
 * lets the 4-lane (8-lane) plane ops compile to single 256-bit
 * (512-bit) vector instructions (the default build stays on the
 * portable x86-64 baseline).
 *
 * Three backends are exposed:
 *  - Scalar64: the portable one-lane path (64 shots per batch);
 *  - Wide:     kWideWordLanes lanes (256-bit planes by default);
 *  - Wide512:  kWide512WordLanes lanes (512-bit planes by default).
 *
 * Selection is per run: engines take a WordBackend option whose Auto
 * value defers to the TRAQ_WORD_BACKEND environment variable ("64" /
 * "scalar" vs "256" / "wide" vs "512" / "wide512"), defaulting to
 * Wide.  An unrecognized TRAQ_WORD_BACKEND value throws FatalError
 * listing the known names — a typo'd backend must not silently fall
 * back to the default (same loudness contract as TRAQ_DECODER).
 * Each backend is individually deterministic — for a fixed backend,
 * any thread count reproduces the single-thread tallies
 * bit-identically — but distinct backends consume randomness in
 * different orders, so they agree statistically, not bit-for-bit
 * (and exactly on deterministic circuits).
 *
 * The lane loops are plain 64-bit code, so every backend runs — and
 * produces bit-identical planes — on any x86-64 machine; vector ISAs
 * only change how the compiler schedules them.  wordBackendCodegen()
 * reports the compile-time detection result ("avx512f" / "avx2" /
 * "baseline") so benches can label whether the wide512 path is
 * native 512-bit code or the scalar-emulated fallback.
 *
 * Building with -DTRAQ_FORCE_WORD64 collapses the wide backends to a
 * single lane so CI can keep all code paths green from one test
 * suite.
 */

#ifndef TRAQ_COMMON_WORD_HH
#define TRAQ_COMMON_WORD_HH

namespace traq {

/** Lanes (64-bit words) per sampling plane of the wide backend. */
#ifdef TRAQ_FORCE_WORD64
inline constexpr unsigned kWideWordLanes = 1;
inline constexpr unsigned kWide512WordLanes = 1;
#else
inline constexpr unsigned kWideWordLanes = 4;    //!< 256-bit planes
inline constexpr unsigned kWide512WordLanes = 8; //!< 512-bit planes
#endif

/** Bit-plane backend selector for sampling engines. */
enum class WordBackend
{
    Auto,     //!< TRAQ_WORD_BACKEND env var, else Wide
    Scalar64, //!< portable one-lane path: 64 shots per batch
    Wide,     //!< kWideWordLanes lanes per batch
    Wide512,  //!< kWide512WordLanes lanes per batch
};

/**
 * Resolve Auto against the TRAQ_WORD_BACKEND environment variable
 * ("64"/"scalar"/"scalar64" -> Scalar64, "256"/"wide"/"wide256" ->
 * Wide, "512"/"wide512" -> Wide512, unset or empty -> Wide).  Any
 * other value throws FatalError listing the known names.  Scalar64,
 * Wide, and Wide512 pass through unchanged.
 */
WordBackend resolveWordBackend(WordBackend requested);

/** Lanes per plane for a resolved backend (Auto is resolved first). */
unsigned wordBackendLanes(WordBackend backend);

/** Short human-readable backend name ("scalar64" / "wide256" /
 *  "wide512"...). */
const char *wordBackendName(WordBackend backend);

/**
 * Compile-time vector codegen the library was built with: "avx512f",
 * "avx2", or "baseline".  Purely informational — all backends are
 * bit-identical across codegen levels; this only tells benches
 * whether the 8-lane plane ops are native 512-bit instructions or
 * the scalar-emulated fallback.
 */
const char *wordBackendCodegen();

} // namespace traq

#endif // TRAQ_COMMON_WORD_HH
